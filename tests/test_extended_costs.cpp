// Cost-shape properties of the extended collectives and the heuristic's
// coverage of them: crossovers land where the algorithm structure says they
// should, and the default selection resolves every collective.
#include <gtest/gtest.h>

#include <cmath>

#include "benchdata/dataset.hpp"
#include "collectives/types.hpp"
#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "minimpi/cost_executor.hpp"
#include "minimpi/schedule.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/network.hpp"

namespace {

using namespace acclaim;
using coll::Algorithm;
using coll::Collective;
using coll::CollParams;

class ExtendedCosts : public testing::Test {
 protected:
  ExtendedCosts() : topo_(simnet::bebop_like()), net_(topo_, 1) {}

  double cost_of(Algorithm alg, int nnodes, int ppn, std::uint64_t msg) const {
    std::vector<int> ids(static_cast<std::size_t>(nnodes));
    for (int i = 0; i < nnodes; ++i) {
      ids[static_cast<std::size_t>(i)] = i;
    }
    const simnet::Allocation alloc(ids);
    const minimpi::RankMap rm(alloc, ppn);
    minimpi::CostExecutor cost(net_, rm);
    CollParams p;
    p.nranks = nnodes * ppn;
    p.ppn = ppn;
    p.count = msg;
    p.type_size = 1;
    coll::build_schedule(alg, p, cost);
    return cost.elapsed_us();
  }

  simnet::Topology topo_;
  simnet::NetworkModel net_;
};

TEST_F(ExtendedCosts, AlltoallBruckWinsTinyBlocksPairwiseWinsLarge) {
  // Bruck trades extra data volume for log2(p) latency: the textbook
  // small-message/large-message crossover.
  EXPECT_LT(cost_of(Algorithm::AlltoallBruck, 16, 2, 16),
            cost_of(Algorithm::AlltoallPairwise, 16, 2, 16));
  EXPECT_LT(cost_of(Algorithm::AlltoallPairwise, 16, 2, 1 << 14),
            cost_of(Algorithm::AlltoallBruck, 16, 2, 1 << 14));
}

TEST_F(ExtendedCosts, GatherTreeVsLinearTradeoff) {
  // The two gather algorithms trade total traffic against incast: binomial
  // forwards subtree payloads log2(p) times (n*log2(p)/2 blocks on the
  // wire), linear sends each block exactly once but funnels p-1 streams
  // into the root, which the contention model serializes (bounded by the
  // adaptive-routing cap). Under the cap, linear's single round wins on
  // wall-clock while binomial's traffic multiplier is real and measurable —
  // the classic reason selections must be *tuned* per machine rather than
  // assumed.
  EXPECT_LT(cost_of(Algorithm::GatherLinear, 32, 4, 1 << 14),
            cost_of(Algorithm::GatherBinomial, 32, 4, 1 << 14));
  // Traffic: binomial moves strictly more bytes than linear's n-1 blocks.
  minimpi::RecordingSink binom;
  minimpi::RecordingSink linear;
  CollParams p;
  p.nranks = 32;
  p.count = 1024;
  p.type_size = 8;
  coll::build_schedule(Algorithm::GatherBinomial, p, binom);
  coll::build_schedule(Algorithm::GatherLinear, p, linear);
  EXPECT_GT(binom.network_bytes(), 2 * linear.network_bytes());
  // And binomial needs only ~log2(p) network rounds vs the contention the
  // single linear round absorbs.
  EXPECT_LT(binom.rounds().size(), 10u);
}

TEST_F(ExtendedCosts, LinearWinsTinyCommunicators) {
  // With 2 ranks the tree collapses and the linear algorithm's single
  // direct transfer avoids the staging copies.
  EXPECT_LE(cost_of(Algorithm::GatherLinear, 2, 1, 256),
            cost_of(Algorithm::GatherBinomial, 2, 1, 256));
}

TEST_F(ExtendedCosts, BarrierScalesLogarithmically) {
  // Dissemination time grows ~log2(p): quadrupling ranks adds two rounds,
  // nowhere near quadrupling the time.
  const double t8 = cost_of(Algorithm::BarrierDissemination, 8, 1, 8);
  const double t32 = cost_of(Algorithm::BarrierDissemination, 32, 1, 8);
  EXPECT_LT(t32, 2.5 * t8);
  EXPECT_GT(t32, t8);
}

TEST_F(ExtendedCosts, ReduceScatterHalvingVsPairwiseCrossover) {
  // Recursive halving moves asymptotically less data; pairwise avoids the
  // staging and fold overheads at small sizes.
  EXPECT_LT(cost_of(Algorithm::ReduceScatterBlockRecursiveHalving, 16, 2, 1 << 14),
            cost_of(Algorithm::ReduceScatterBlockPairwise, 16, 2, 1 << 14));
}

TEST(ExtendedHeuristic, CoversEveryCollective) {
  // The default selection must resolve every collective at representative
  // scenarios, always to an algorithm of that collective.
  for (Collective c : coll::all_collectives()) {
    for (int nodes : {2, 9, 32}) {
      for (std::uint64_t msg : {8ull, 4096ull, 1ull << 20}) {
        const bench::Scenario s{c, nodes, 4, msg};
        const Algorithm a = core::mpich_default_selection(s);
        EXPECT_EQ(coll::algorithm_info(a).collective, c) << s.to_string();
        EXPECT_FALSE(coll::algorithm_info(a).experimental) << s.to_string();
      }
    }
  }
}

TEST(ExtendedHeuristic, KnownCutoffsForNewCollectives) {
  using core::mpich_default_selection;
  EXPECT_EQ(mpich_default_selection({Collective::Gather, 2, 2, 64}),
            Algorithm::GatherLinear);
  EXPECT_EQ(mpich_default_selection({Collective::Gather, 16, 4, 64}),
            Algorithm::GatherBinomial);
  EXPECT_EQ(mpich_default_selection({Collective::Alltoall, 8, 4, 128}),
            Algorithm::AlltoallBruck);
  EXPECT_EQ(mpich_default_selection({Collective::Alltoall, 8, 4, 4096}),
            Algorithm::AlltoallPairwise);
  EXPECT_EQ(mpich_default_selection({Collective::ReduceScatterBlock, 4, 2, 1024}),
            Algorithm::ReduceScatterBlockRecursiveHalving);
  EXPECT_EQ(mpich_default_selection({Collective::ReduceScatterBlock, 32, 8, 1 << 18}),
            Algorithm::ReduceScatterBlockPairwise);
  EXPECT_EQ(mpich_default_selection({Collective::Barrier, 8, 4, 8}),
            Algorithm::BarrierDissemination);
}

TEST(ExtendedAutotuning, ModelCoversExtendedCollectives) {
  // The registry-driven model machinery works for the extended set too:
  // encode, fit, select on a gather dataset from the tiny machine.
  const simnet::MachineConfig machine = simnet::tiny_test_machine();
  const bench::FeatureGrid grid = bench::FeatureGrid::p2(8, 2, 64, 4096);
  const bench::Dataset ds = bench::precollect(machine, grid, {Collective::Gather}, 3);
  std::vector<core::LabeledPoint> data;
  for (const auto& p : ds.points(Collective::Gather)) {
    data.push_back({p, ds.at(p).mean_us});
  }
  core::CollectiveModel model(Collective::Gather);
  model.fit(data, 4);
  const core::Evaluator ev(ds);
  EXPECT_LT(ev.average_slowdown(ds.scenarios(Collective::Gather), model), 1.10);
}

}  // namespace

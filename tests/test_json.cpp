// Unit tests for the JSON reader/writer used by the MPICH-style selection
// configuration files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using acclaim::util::Json;
using acclaim::util::JsonObject;

TEST(Json, ScalarsRoundTrip) {
  EXPECT_EQ(Json::parse("null").dump(), "null");
  EXPECT_EQ(Json::parse("true").dump(), "true");
  EXPECT_EQ(Json::parse("false").dump(), "false");
  EXPECT_EQ(Json::parse("42").dump(), "42");
  EXPECT_EQ(Json::parse("-7").dump(), "-7");
  EXPECT_EQ(Json::parse("2.5").dump(), "2.5");
  EXPECT_EQ(Json::parse("\"hi\"").dump(), "\"hi\"");
}

TEST(Json, NumbersParseExactly) {
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(Json::parse("-2.5E-2").as_number(), -0.025);
  EXPECT_EQ(Json::parse("1048576").as_int(), 1048576);
  EXPECT_THROW(Json::parse("2.5").as_int(), acclaim::InvalidArgument);
}

TEST(Json, ObjectsPreserveInsertionOrder) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  EXPECT_EQ(j.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, NestedStructureRoundTrip) {
  const std::string text = R"({
    "collective": "bcast",
    "rules": [
      {"msg_size_le": 32, "algorithm": "binomial"},
      {"msg_size_le": 1048576, "algorithm": "scatter_ring_allgather"}
    ],
    "complete": true
  })";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.at("collective").as_string(), "bcast");
  ASSERT_TRUE(j.at("rules").is_array());
  ASSERT_EQ(j.at("rules").as_array().size(), 2u);
  EXPECT_EQ(j.at("rules").as_array()[0].at("msg_size_le").as_int(), 32);
  EXPECT_TRUE(j.at("complete").as_bool());
  // Re-parse of the dump equals the original document.
  EXPECT_TRUE(Json::parse(j.dump(2)) == j);
  EXPECT_TRUE(Json::parse(j.dump(0)) == j);
}

TEST(Json, StringEscapes) {
  const Json j = Json::parse(R"("a\"b\\c\nd\teA")");
  EXPECT_EQ(j.as_string(), "a\"b\\c\nd\teA");
  EXPECT_TRUE(Json::parse(j.dump()) == j);
}

TEST(Json, UnicodeEscapesEncodeUtf8) {
  EXPECT_EQ(Json::parse(R"("é")").as_string(), "\xc3\xa9");
  EXPECT_EQ(Json::parse(R"("€")").as_string(), "\xe2\x82\xac");
}

TEST(Json, ParseErrorsCarryPosition) {
  try {
    Json::parse("{\"a\": }");
    FAIL() << "expected ParseError";
  } catch (const acclaim::ParseError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_GT(e.column(), 1u);
  }
  EXPECT_THROW(Json::parse(""), acclaim::ParseError);
  EXPECT_THROW(Json::parse("[1, 2"), acclaim::ParseError);
  EXPECT_THROW(Json::parse("{\"a\":1} extra"), acclaim::ParseError);
  EXPECT_THROW(Json::parse("nul"), acclaim::ParseError);
  EXPECT_THROW(Json::parse("01a"), acclaim::ParseError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("[1,2,3]");
  EXPECT_THROW(j.as_object(), acclaim::InvalidArgument);
  EXPECT_THROW(j.as_string(), acclaim::InvalidArgument);
  EXPECT_THROW(j.at("key"), acclaim::InvalidArgument);
  const Json o = Json::parse("{\"k\": 1}");
  EXPECT_THROW(o.at("missing"), acclaim::NotFoundError);
  EXPECT_TRUE(o.contains("k"));
  EXPECT_FALSE(o.contains("missing"));
}

TEST(Json, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "acclaim_json_test.json";
  Json j = Json::object();
  j["alg"] = "ring";
  j["sizes"] = Json::array();
  j["sizes"].push_back(1);
  j["sizes"].push_back(1024);
  j.dump_file(path);
  const Json back = Json::parse_file(path);
  EXPECT_TRUE(back == j);
  std::remove(path.c_str());
  EXPECT_THROW(Json::parse_file("/nonexistent/path.json"), acclaim::IoError);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::parse("[]").dump(2), "[]");
  EXPECT_EQ(Json::parse("{}").dump(2), "{}");
  EXPECT_TRUE(Json::parse("[]").as_array().empty());
}

TEST(Json, IndentedDumpIsStable) {
  Json j = Json::object();
  j["a"] = Json::array();
  j["a"].push_back(Json::parse("{\"x\": 1}"));
  const std::string expected =
      "{\n  \"a\": [\n    {\n      \"x\": 1\n    }\n  ]\n}";
  EXPECT_EQ(j.dump(2), expected);
}

TEST(JsonObject, AtMutatesInPlace) {
  JsonObject o;
  o["k"] = 1;
  o.at("k") = 2;
  EXPECT_EQ(o.at("k").as_int(), 2);
  EXPECT_EQ(o.size(), 1u);
}

}  // namespace

// Correctness and cost tests for the experimental SMP-aware (hierarchical)
// collective algorithms: results must match the flat algorithms' semantics
// for any (nranks, ppn) split, and the hierarchy must actually pay off on
// the cost model (intra-node rounds are cheap).
#include <gtest/gtest.h>

#include <tuple>

#include "collectives/types.hpp"
#include "minimpi/cost_executor.hpp"
#include "minimpi/data_executor.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/network.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;
using coll::Algorithm;
using coll::Collective;
using coll::CollParams;
using minimpi::BufKind;
using minimpi::DataExecutor;

double input_value(int rank, std::uint64_t i) {
  return static_cast<double>(rank + 1) * 100.0 + static_cast<double>(i);
}

using SmpCase = std::tuple<int, int, int>;  // nranks, ppn, root
class SmpCollectives : public testing::TestWithParam<SmpCase> {};

TEST_P(SmpCollectives, BcastDeliversEverywhere) {
  const auto [nranks, ppn, root] = GetParam();
  CollParams p;
  p.nranks = nranks;
  p.ppn = ppn;
  p.root = root;
  p.count = 16;
  const auto sizes = coll::buffer_requirements(Collective::Bcast, p);
  DataExecutor exec(nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes);
  auto& payload = exec.buffer(root, BufKind::Recv);
  for (std::uint64_t i = 0; i < p.count; ++i) {
    payload[i] = input_value(root, i);
  }
  build_schedule(Algorithm::BcastSmpBinomial, p, exec);
  for (int r = 0; r < nranks; ++r) {
    for (std::uint64_t i = 0; i < p.count; ++i) {
      ASSERT_DOUBLE_EQ(exec.buffer(r, BufKind::Recv)[i], input_value(root, i))
          << "rank " << r;
    }
  }
}

TEST_P(SmpCollectives, ReduceSumsAtRoot) {
  const auto [nranks, ppn, root] = GetParam();
  CollParams p;
  p.nranks = nranks;
  p.ppn = ppn;
  p.root = root;
  p.count = 8;
  const auto sizes = coll::buffer_requirements(Collective::Reduce, p);
  DataExecutor exec(nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes);
  for (int r = 0; r < nranks; ++r) {
    for (std::uint64_t i = 0; i < p.count; ++i) {
      exec.buffer(r, BufKind::Send)[i] = input_value(r, i);
    }
  }
  build_schedule(Algorithm::ReduceSmpBinomial, p, exec);
  for (std::uint64_t i = 0; i < p.count; ++i) {
    double expect = 0.0;
    for (int s = 0; s < nranks; ++s) {
      expect += input_value(s, i);
    }
    ASSERT_NEAR(exec.buffer(root, BufKind::Recv)[i], expect, 1e-6);
  }
}

TEST_P(SmpCollectives, AllreduceSumsEverywhere) {
  const auto [nranks, ppn, root] = GetParam();
  (void)root;  // allreduce has no root
  CollParams p;
  p.nranks = nranks;
  p.ppn = ppn;
  p.count = 8;
  const auto sizes = coll::buffer_requirements(Collective::Allreduce, p);
  DataExecutor exec(nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes);
  for (int r = 0; r < nranks; ++r) {
    for (std::uint64_t i = 0; i < p.count; ++i) {
      exec.buffer(r, BufKind::Send)[i] = input_value(r, i);
    }
  }
  build_schedule(Algorithm::AllreduceSmp, p, exec);
  for (int r = 0; r < nranks; ++r) {
    for (std::uint64_t i = 0; i < p.count; ++i) {
      double expect = 0.0;
      for (int s = 0; s < nranks; ++s) {
        expect += input_value(s, i);
      }
      ASSERT_NEAR(exec.buffer(r, BufKind::Recv)[i], expect, 1e-6) << "rank " << r;
    }
  }
}

TEST_P(SmpCollectives, BarrierSchedulesValidly) {
  const auto [nranks, ppn, root] = GetParam();
  (void)root;
  CollParams p;
  p.nranks = nranks;
  p.ppn = ppn;
  p.count = 1;
  minimpi::RecordingSink sink;
  ASSERT_NO_THROW(build_schedule(Algorithm::BarrierSmp, p, sink));
  for (const auto& round : sink.rounds()) {
    ASSERT_NO_THROW(minimpi::validate_round(round, nranks));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Splits, SmpCollectives,
    testing::Values(SmpCase{1, 1, 0}, SmpCase{8, 1, 0},    // flat degenerations
                    SmpCase{8, 4, 0}, SmpCase{8, 4, 5},    // even split, off-leader root
                    SmpCase{12, 4, 11},                    // root on last node
                    SmpCase{10, 4, 3},                     // ragged last node
                    SmpCase{24, 8, 9}, SmpCase{7, 3, 6}),  // non-P2 everything
    [](const testing::TestParamInfo<SmpCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_ppn" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SmpRegistry, ExperimentalGating) {
  // Default views exclude the SMP family; opting in reveals it.
  EXPECT_EQ(coll::algorithms_for(Collective::Bcast).size(), 3u);
  // Opt-in reveals smp_binomial and pipeline_chain.
  EXPECT_EQ(coll::algorithms_for(Collective::Bcast, true).size(), 5u);
  EXPECT_EQ(coll::algorithms_for(Collective::Allreduce).size(), 2u);
  EXPECT_EQ(coll::algorithms_for(Collective::Allreduce, true).size(), 3u);
  EXPECT_TRUE(coll::algorithm_info(Algorithm::BcastSmpBinomial).experimental);
  EXPECT_FALSE(coll::algorithm_info(Algorithm::BcastBinomial).experimental);
  EXPECT_EQ(coll::parse_algorithm(Collective::Bcast, "smp_binomial"),
            Algorithm::BcastSmpBinomial);
}

TEST(SmpCosts, HierarchyBeatsFlatRecursiveDoublingAtHighPpn) {
  // Flat recursive-doubling allreduce makes every rank exchange the full
  // vector every round — 16 concurrent NIC flows per node on the inter-node
  // rounds. The SMP variant sends only one leader flow per node, so it wins
  // decisively at high ppn. (Flat *binomial bcast* is already implicitly
  // hierarchical under the block mapping — its low-mask hops are intra-node
  // — which is why the SMP gain shows on allreduce, not bcast.)
  const simnet::Topology topo(simnet::bebop_like());
  const simnet::NetworkModel net(topo, 1);
  std::vector<int> ids(8);
  for (int i = 0; i < 8; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const int ppn = 16;
  const minimpi::RankMap rm(alloc, ppn);
  auto cost_of = [&](Algorithm alg) {
    minimpi::CostExecutor cost(net, rm);
    CollParams p;
    p.nranks = 8 * ppn;
    p.ppn = ppn;
    p.count = 64 * 1024;
    p.type_size = 1;
    coll::build_schedule(alg, p, cost);
    return cost.elapsed_us();
  };
  EXPECT_LT(cost_of(Algorithm::AllreduceSmp),
            0.7 * cost_of(Algorithm::AllreduceRecursiveDoubling));
}

}  // namespace

// ------------------------------------------------- pipelined chain family

namespace {

using PipeCase = std::tuple<int, std::uint64_t, int>;  // nranks, count, root
class PipelineChain : public testing::TestWithParam<PipeCase> {};

TEST_P(PipelineChain, BcastDeliversEverywhere) {
  const auto [nranks, count, root] = GetParam();
  CollParams p;
  p.nranks = nranks;
  p.count = count;
  p.root = root;
  const auto sizes = coll::buffer_requirements(Collective::Bcast, p);
  DataExecutor exec(nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes);
  auto& payload = exec.buffer(root, BufKind::Recv);
  for (std::uint64_t i = 0; i < p.count; ++i) {
    payload[i] = input_value(root, i);
  }
  build_schedule(Algorithm::BcastPipelineChain, p, exec);
  for (int r = 0; r < nranks; ++r) {
    for (std::uint64_t i = 0; i < p.count; ++i) {
      ASSERT_DOUBLE_EQ(exec.buffer(r, BufKind::Recv)[i], input_value(root, i))
          << "rank " << r << " elem " << i;
    }
  }
}

TEST_P(PipelineChain, ReduceSumsAtRoot) {
  const auto [nranks, count, root] = GetParam();
  CollParams p;
  p.nranks = nranks;
  p.count = count;
  p.root = root;
  const auto sizes = coll::buffer_requirements(Collective::Reduce, p);
  DataExecutor exec(nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes);
  for (int r = 0; r < nranks; ++r) {
    for (std::uint64_t i = 0; i < p.count; ++i) {
      exec.buffer(r, BufKind::Send)[i] = input_value(r, i);
    }
  }
  build_schedule(Algorithm::ReducePipelineChain, p, exec);
  for (std::uint64_t i = 0; i < p.count; ++i) {
    double expect = 0.0;
    for (int s = 0; s < nranks; ++s) {
      expect += input_value(s, i);
    }
    ASSERT_NEAR(exec.buffer(root, BufKind::Recv)[i], expect, 1e-6) << "elem " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PipelineChain,
    testing::Values(PipeCase{1, 16, 0},                 // degenerate
                    PipeCase{2, 1, 0},                  // single segment
                    PipeCase{5, 100, 0},                // sub-segment payload
                    PipeCase{8, 4096, 3},               // multi-segment (32 KiB), rotated root
                    PipeCase{13, 3000, 12}),            // non-P2 ranks, ragged last segment
    [](const testing::TestParamInfo<PipeCase>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

TEST(PipelineChainShape, PipelinesRatherThanSerializes) {
  // With S segments over n ranks the schedule takes (n-1) + (S-1) rounds —
  // far fewer than the (n-1)*S a non-pipelined chain would need.
  minimpi::RecordingSink sink;
  CollParams p;
  p.nranks = 8;
  p.count = 8 * 8192;  // 64 KiB over 8 KiB segments -> S = 8
  p.type_size = 1;
  build_schedule(Algorithm::BcastPipelineChain, p, sink);
  EXPECT_EQ(sink.rounds().size(), 7u + 7u);
  // Interior rounds carry multiple concurrent hops (the pipeline is full).
  std::size_t max_concurrency = 0;
  for (const auto& round : sink.rounds()) {
    max_concurrency = std::max(max_concurrency, round.transfers.size());
  }
  EXPECT_GE(max_concurrency, 7u);
}

TEST(PipelineChainShape, BeatsBinomialForHugeMessagesOnAChain) {
  // Large-message regime: segment pipelining approaches bandwidth-bound
  // time while binomial retransmits the full payload log2(n) times.
  const simnet::Topology topo(simnet::bebop_like());
  const simnet::NetworkModel net(topo, 1);
  std::vector<int> ids(8);
  for (int i = 0; i < 8; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const minimpi::RankMap rm(alloc, 1);
  auto cost_of = [&](Algorithm alg) {
    minimpi::CostExecutor cost(net, rm);
    CollParams p;
    p.nranks = 8;
    p.count = 4 << 20;  // 4 MiB
    p.type_size = 1;
    coll::build_schedule(alg, p, cost);
    return cost.elapsed_us();
  };
  EXPECT_LT(cost_of(Algorithm::BcastPipelineChain), cost_of(Algorithm::BcastBinomial));
}

}  // namespace

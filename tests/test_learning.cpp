// Tests for the active learner, the collection scheduler, baselines, and
// acquisition traces — the training-loop behaviours the paper's evaluation
// rests on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/active_learner.hpp"
#include "core/baselines.hpp"
#include "core/evaluator.hpp"
#include "core/scheduler.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;
using bench::BenchmarkPoint;
using bench::Scenario;
using coll::Collective;

// ---------------------------------------------------------------- scheduler

class SchedulerTest : public testing::Test {
 protected:
  SchedulerTest() : topo_(testing_support::small_machine()) {}  // 16 nodes, 4/rack

  static BenchmarkPoint point_needing(int nnodes) {
    return {{Collective::Bcast, nnodes, 2, 1024}, coll::Algorithm::BcastBinomial};
  }

  simnet::Topology topo_;
};

TEST_F(SchedulerTest, PacksRackDisjointBenchmarks) {
  // Four 2-node benchmarks on a 16-node allocation with 4-node racks: each
  // placement retires its whole rack, so exactly 4 fit, one per rack.
  std::vector<BenchmarkPoint> pool(8, point_needing(2));
  std::vector<std::size_t> ranked = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> ids(16);
  for (int i = 0; i < 16; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const core::CollectionScheduler sched;
  const auto batch = sched.plan(pool, ranked, topo_, alloc);
  ASSERT_EQ(batch.items.size(), 4u);
  std::set<int> racks;
  for (const auto& item : batch.items) {
    for (int k = 0; k < item.point.scenario.nnodes; ++k) {
      racks.insert(topo_.rack_of(alloc.node(item.first_node + k)));
    }
  }
  EXPECT_EQ(racks.size(), 4u);  // pairwise rack-disjoint
}

TEST_F(SchedulerTest, StopsAtFirstMisfit) {
  // Highest-priority point needs 12 nodes -> uses racks 0..2; the next needs
  // 8 but only rack 3 (4 nodes) remains: the greedy exits (paper step 4).
  std::vector<BenchmarkPoint> pool = {point_needing(12), point_needing(8), point_needing(2)};
  std::vector<int> ids(16);
  for (int i = 0; i < 16; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const core::CollectionScheduler sched;
  const auto batch = sched.plan(pool, {0, 1, 2}, topo_, alloc);
  ASSERT_EQ(batch.items.size(), 1u);
  EXPECT_EQ(batch.consumed, (std::vector<std::size_t>{0}));
}

TEST_F(SchedulerTest, NaiveSchedulerPacksMoreButSharesRacks) {
  std::vector<BenchmarkPoint> pool(8, point_needing(2));
  std::vector<std::size_t> ranked = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> ids(16);
  for (int i = 0; i < 16; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const core::CollectionScheduler naive(core::CollectionSchedulerConfig{false, 1 << 20});
  const auto batch = naive.plan(pool, ranked, topo_, alloc);
  EXPECT_EQ(batch.items.size(), 8u);  // 8 x 2 nodes fill all 16
  // Benchmarks 0 and 1 share rack 0 — the congestion hazard of §III-D.
  EXPECT_EQ(topo_.rack_of(alloc.node(batch.items[0].first_node)),
            topo_.rack_of(alloc.node(batch.items[1].first_node)));
}

TEST_F(SchedulerTest, ScoresPlacementsWithSuppliedOracle) {
  std::vector<BenchmarkPoint> pool(8, point_needing(2));
  std::vector<std::size_t> ranked = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> ids(16);
  for (int i = 0; i < 16; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const core::CollectionScheduler sched;

  // No oracle: the plan carries no predictions.
  const auto unscored = sched.plan(pool, ranked, topo_, alloc);
  EXPECT_TRUE(unscored.predicted_us.empty());
  EXPECT_EQ(unscored.predicted_longest, -1);

  // An oracle keyed on the placement slot: predictions land in slot order,
  // the makespan is the max, and the witness points at it. The same
  // placements are chosen either way — scoring never changes the plan.
  const core::SoloCostFn oracle = [](const core::ScheduledBenchmark& item) {
    return 100.0 + item.first_node;
  };
  const auto scored = sched.plan(pool, ranked, topo_, alloc, oracle);
  ASSERT_EQ(scored.items.size(), unscored.items.size());
  ASSERT_EQ(scored.predicted_us.size(), scored.items.size());
  for (std::size_t i = 0; i < scored.items.size(); ++i) {
    EXPECT_EQ(scored.items[i].first_node, unscored.items[i].first_node);
    EXPECT_EQ(scored.predicted_us[i], 100.0 + scored.items[i].first_node);
  }
  EXPECT_EQ(scored.predicted_makespan_us,
            100.0 + scored.items.back().first_node);
  EXPECT_EQ(scored.predicted_longest, static_cast<int>(scored.items.size()) - 1);
}

TEST_F(SchedulerTest, PredictedLongestBreaksTiesTowardFirstSlot) {
  std::vector<BenchmarkPoint> pool(4, point_needing(2));
  std::vector<int> ids(16);
  for (int i = 0; i < 16; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const core::CollectionScheduler sched;
  const core::SoloCostFn constant = [](const core::ScheduledBenchmark&) { return 7.0; };
  const auto batch = sched.plan(pool, {0, 1, 2, 3}, topo_, alloc, constant);
  ASSERT_GT(batch.items.size(), 1u);
  EXPECT_EQ(batch.predicted_makespan_us, 7.0);
  EXPECT_EQ(batch.predicted_longest, 0);  // fixed-order argmax: first wins
}

TEST_F(SchedulerTest, MaxParallelPlacementExposesMoreParallelism) {
  // One node per rack ("max-parallel", Fig. 13) lets four 1-node benchmarks
  // run at once; a single-rack placement of the same size allows only one.
  // Needs a machine with >= 4 rack pairs and >= 4 nodes per rack.
  simnet::MachineConfig m = testing_support::small_machine();
  m.total_nodes = 32;  // 8 racks of 4, 4 pairs
  const simnet::Topology topo(m);
  std::vector<BenchmarkPoint> pool(6, point_needing(1));
  std::vector<std::size_t> ranked = {0, 1, 2, 3, 4, 5};
  const core::CollectionScheduler sched;
  const auto maxp =
      sched.plan(pool, ranked, topo, simnet::fig13_placement(topo, "max-parallel", 4));
  const auto single =
      sched.plan(pool, ranked, topo, simnet::fig13_placement(topo, "single-rack", 4));
  EXPECT_EQ(maxp.items.size(), 4u);
  EXPECT_EQ(single.items.size(), 1u);
}

// ------------------------------------------------------------ active learner

class LearnerTest : public testing::Test {
 protected:
  LearnerTest()
      : ds_(testing_support::small_dataset()),
        space_(testing_support::small_space()),
        ev_(ds_) {}

  core::ActiveLearnerConfig fast_config() const {
    core::ActiveLearnerConfig cfg;
    cfg.forest.n_trees = 40;
    cfg.seed = 11;
    // The tiny test machine's surfaces are noisier relative to their spread
    // than the figure-scale dataset's; loosen the variance criterion the
    // way a deployment would tune it for its machine.
    cfg.variance_rel_tol = 0.02;
    cfg.patience = 4;
    return cfg;
  }

  const bench::Dataset& ds_;
  core::FeatureSpace space_;
  core::Evaluator ev_;
};

TEST_F(LearnerTest, ConvergesWellUnderSlowdownCriterion) {
  core::DatasetEnvironment env(ds_);
  core::AcclaimAcquisition policy;
  core::ActiveLearner learner(Collective::Bcast, space_, env, policy, fast_config());
  const auto test = space_.scenarios(Collective::Bcast);
  learner.set_monitor([&](const core::CollectiveModel& m) {
    return ev_.average_slowdown(test, m);
  });
  const core::TrainingResult result = learner.run();
  ASSERT_TRUE(result.converged);
  // Converged without exhausting the candidate pool...
  EXPECT_LT(result.collected.size(),
            space_.candidates(Collective::Bcast).size() * 4 / 5);
  // ...and with good final selections (paper's criterion is 1.03; allow a
  // small margin since variance convergence may fire slightly early, as the
  // paper itself reports slowdowns of ~1.04 at the variance point).
  EXPECT_LT(ev_.average_slowdown(test, result.model), 1.06);
  // History is complete and monotone in points/clock.
  ASSERT_EQ(result.history.size(), static_cast<std::size_t>(result.iterations));
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_GE(result.history[i].points_collected, result.history[i - 1].points_collected);
    EXPECT_GE(result.history[i].clock_s, result.history[i - 1].clock_s);
  }
  EXPECT_NEAR(result.train_time_s, result.history.back().clock_s, 1e-9);
}

TEST_F(LearnerTest, WarmStartConvergesOnFewerFreshPointsWithoutQualityLoss) {
  // Cold run first: its model and points become the transfer donor.
  core::DatasetEnvironment cold_env(ds_);
  core::AcclaimAcquisition cold_policy;
  core::ActiveLearner cold_learner(Collective::Bcast, space_, cold_env, cold_policy,
                                   fast_config());
  const core::TrainingResult cold = cold_learner.run();
  ASSERT_TRUE(cold.converged);
  EXPECT_FALSE(cold.warm_started);

  // Warm run on the same environment: the learner starts from the donor and
  // only has to confirm that fresh measurements agree with it, so it must
  // converge on far fewer freshly collected points.
  core::DatasetEnvironment warm_env(ds_);
  core::AcclaimAcquisition warm_policy;
  core::ActiveLearner warm_learner(Collective::Bcast, space_, warm_env, warm_policy,
                                   fast_config());
  core::WarmStart warm_start{cold.model, cold.collected};
  warm_learner.set_warm_start(warm_start);
  const core::TrainingResult warm = warm_learner.run();
  ASSERT_TRUE(warm.converged);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_GE(warm.collected.size(), static_cast<std::size_t>(warm_start.min_new_points));
  EXPECT_LT(warm.collected.size(), cold.collected.size() / 2);
  EXPECT_LT(warm.train_time_s, cold.train_time_s);

  // The transferred knowledge survives the refits on fresh points.
  const auto test = space_.scenarios(Collective::Bcast);
  EXPECT_LT(ev_.average_slowdown(test, warm.model), 1.06);
}

TEST_F(LearnerTest, WarmStartRejectsUntrainedOrMismatchedDonors) {
  core::DatasetEnvironment env(ds_);
  core::AcclaimAcquisition policy;
  core::ActiveLearner learner(Collective::Bcast, space_, env, policy, fast_config());
  // Untrained donor model.
  EXPECT_THROW(learner.set_warm_start({core::CollectiveModel(Collective::Bcast), {}}),
               InvalidArgument);
  // Donor trained for another collective.
  core::DatasetEnvironment donor_env(ds_);
  core::AcclaimAcquisition donor_policy;
  core::ActiveLearnerConfig donor_cfg = fast_config();
  donor_cfg.max_points = 30;
  donor_cfg.patience = 1 << 20;
  core::ActiveLearner donor_learner(Collective::Reduce, space_, donor_env, donor_policy,
                                    donor_cfg);
  const core::TrainingResult donor = donor_learner.run();
  EXPECT_THROW(learner.set_warm_start({donor.model, donor.collected}), InvalidArgument);
}

TEST_F(LearnerTest, CollectsNonP2VariantsAtTheConfiguredCadence) {
  core::DatasetEnvironment env(ds_);
  core::AcclaimAcquisition policy;
  core::ActiveLearnerConfig cfg = fast_config();
  cfg.max_points = 50;
  cfg.patience = 1 << 20;  // run to the cap
  core::ActiveLearner learner(Collective::Bcast, space_, env, policy, cfg);
  const auto result = learner.run();
  ASSERT_EQ(result.collected.size(), 50u);
  int nonp2 = 0;
  for (const auto& lp : result.collected) {
    if (!util::is_power_of_two(lp.point.scenario.msg_bytes)) {
      ++nonp2;
    }
  }
  // 50 picks at cadence 5 -> 10 non-P2 (the 80-20 split), give or take
  // anchors below the non-P2 threshold.
  EXPECT_GE(nonp2, 7);
  EXPECT_LE(nonp2, 12);
}

TEST_F(LearnerTest, VarianceGuidedIsCompetitiveWithRandomAtEqualBudget) {
  // On the small test space random sampling is a strong baseline; the
  // variance-guided learner must at least stay in the same quality band
  // (the figure-scale comparisons live in the bench harnesses).
  const auto test = space_.scenarios(Collective::Allgather);
  auto run_with = [&](core::AcquisitionPolicy& policy, std::uint64_t seed) {
    core::DatasetEnvironment env(ds_);
    core::ActiveLearnerConfig cfg = fast_config();
    cfg.max_points = 140;
    cfg.patience = 1 << 20;
    cfg.seed = seed;
    core::ActiveLearner learner(Collective::Allgather, space_, env, policy, cfg);
    return ev_.average_slowdown(test, learner.run().model);
  };
  double acclaim_sum = 0.0;
  double random_sum = 0.0;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    core::AcclaimAcquisition a;
    core::RandomAcquisition r;
    acclaim_sum += run_with(a, s);
    random_sum += run_with(r, s);
  }
  EXPECT_LT(acclaim_sum / 3.0, (random_sum / 3.0) * 1.15 + 0.05);
}

TEST_F(LearnerTest, ParallelCollectionReducesClockNotQuality) {
  const simnet::Topology topo(testing_support::small_machine());
  std::vector<int> ids(16);
  for (int i = 0; i < 16; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);

  auto run = [&](bool parallel) {
    core::LiveEnvironment env(topo, alloc, 9);
    core::AcclaimAcquisition policy;
    core::ActiveLearnerConfig cfg = fast_config();
    cfg.max_points = 40;
    cfg.patience = 1 << 20;
    cfg.parallel_collection = parallel;
    core::ActiveLearner learner(Collective::Reduce, space_, env, policy, cfg);
    return learner.run();
  };
  const auto seq = run(false);
  const auto par = run(true);
  EXPECT_EQ(seq.collected.size(), 40u);
  // A parallel batch may overshoot the cap by up to one batch.
  EXPECT_GE(par.collected.size(), 40u);
  EXPECT_LT(par.train_time_s / static_cast<double>(par.collected.size()),
            seq.train_time_s / static_cast<double>(seq.collected.size()));
  // Parallel mode actually batched something.
  int max_batch = 1;
  for (const auto& rec : par.history) {
    max_batch = std::max(max_batch, rec.batch_size);
  }
  EXPECT_GT(max_batch, 1);
}

// ---------------------------------------------------------------- baselines

TEST_F(LearnerTest, HunoldTrainsPerAlgorithmModels) {
  core::HunoldAutotuner tuner(Collective::Bcast);
  const double cost = tuner.fit(ds_, 0.5, 21);
  EXPECT_GT(cost, 0.0);
  ASSERT_TRUE(tuner.trained());
  const auto test = space_.scenarios(Collective::Bcast);
  const double slow = ev_.average_slowdown(
      test, [&](const Scenario& s) { return tuner.select(s); });
  EXPECT_LT(slow, 1.25);  // with half the data it should be decent
  EXPECT_THROW(tuner.fit(ds_, 0.0, 1), InvalidArgument);
  EXPECT_THROW(tuner.fit(ds_, 1.5, 1), InvalidArgument);
}

TEST_F(LearnerTest, AcclaimCompetitiveWithHunoldAtEqualBudget) {
  // The Fig. 3 relationship at figure scale is checked by the benches; here
  // we assert the miniature comparison stays in the same quality band.
  const auto test = space_.scenarios(Collective::Bcast);
  core::DatasetEnvironment env(ds_);
  core::AcclaimAcquisition policy;
  core::ActiveLearnerConfig cfg = fast_config();
  cfg.max_points = 80;
  cfg.patience = 1 << 20;
  core::ActiveLearner learner(Collective::Bcast, space_, env, policy, cfg);
  const double acclaim_slow = ev_.average_slowdown(test, learner.run().model);

  const std::size_t pool = ds_.points(Collective::Bcast).size();
  core::HunoldAutotuner hunold(Collective::Bcast);
  hunold.fit(ds_, 80.0 / static_cast<double>(pool), 22);
  const double hunold_slow =
      ev_.average_slowdown(test, [&](const Scenario& s) { return hunold.select(s); });
  EXPECT_LT(acclaim_slow, hunold_slow * 1.10 + 0.05);
}

TEST_F(LearnerTest, AcquisitionTracePrefixesAreConsistent) {
  core::DatasetEnvironment env(ds_);
  core::AcclaimAcquisition policy;
  core::TraceConfig cfg;
  cfg.forest.n_trees = 40;
  cfg.max_points = 30;
  cfg.seed = 4;
  const core::AcquisitionTrace trace =
      core::trace_acquisition(Collective::Reduce, space_, env, policy, cfg);
  ASSERT_EQ(trace.steps.size(), 30u);
  // Costs are cumulative and increasing.
  for (std::size_t i = 1; i < trace.steps.size(); ++i) {
    EXPECT_GT(trace.steps[i].cum_cost_s, trace.steps[i - 1].cum_cost_s);
  }
  EXPECT_DOUBLE_EQ(trace.prefix_cost_s(0), 0.0);
  EXPECT_DOUBLE_EQ(trace.prefix_cost_s(30), trace.steps.back().cum_cost_s);
  EXPECT_EQ(trace.prefix(10).size(), 10u);
  EXPECT_THROW(trace.prefix(31), InvalidArgument);
  // Training on a prefix yields a usable model.
  const auto model = core::train_on_prefix(trace, 30, cfg.forest, 5);
  EXPECT_TRUE(model.trained());
}

TEST_F(LearnerTest, FactTestSetCollectionIsCostly) {
  // Fig. 6's premise: the test set covers 20% of the *full* feature space
  // (including the non-P2 values applications use), and every algorithm of
  // every test scenario must be benchmarked. That cost is real and charged.
  const auto p2_test = core::fact_test_scenarios(space_, Collective::Bcast, 0.2, 31);
  EXPECT_EQ(p2_test.size(),
            static_cast<std::size_t>(std::llround(
                0.2 * static_cast<double>(space_.scenarios(Collective::Bcast).size()))));
  // Full-space sample from the dataset's scenarios (P2 + non-P2).
  const auto all = ds_.scenarios(Collective::Bcast);
  util::Rng rng(31);
  const auto pick = rng.sample_without_replacement(all.size(), all.size() / 5);
  std::vector<Scenario> test;
  for (std::size_t i : pick) {
    test.push_back(all[i]);
  }
  core::DatasetEnvironment env(ds_);
  const double test_cost = core::test_set_collection_cost_s(test, env);
  EXPECT_GT(test_cost, 0.0);
  EXPECT_NEAR(env.clock_s(), test_cost, 1e-9);
  // Every algorithm of every scenario was charged.
  double expected = 0.0;
  for (const Scenario& s : test) {
    for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
      expected += ds_.at(bench::BenchmarkPoint{s, a}).collect_cost_s;
    }
  }
  EXPECT_NEAR(test_cost, expected, 1e-6 * expected);
}

}  // namespace

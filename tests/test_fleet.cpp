// Tests for the fleet-scale trace replay (ROADMAP "fleet-scale trace
// replay"): warm-start transfer economics, model-store population and
// republish versioning, config validation, and the cross-thread bitwise
// determinism contract the golden fingerprint encodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fleet/fleet.hpp"
#include "serve/model_store.hpp"
#include "simnet/machine.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace acclaim;

/// Restores the global pool width other suites rely on.
class ThreadGuard {
 public:
  ThreadGuard() : original_(util::global_threads()) {}
  ~ThreadGuard() { util::set_global_threads(original_); }

 private:
  int original_;
};

/// A replay small enough for unit tests: few jobs and tiny forests. The
/// arrival gaps exceed the per-job training time so models publish before
/// the next job arrives and transfer chains can form even in a short stream.
fleet::FleetConfig small_fleet(int jobs = 6) {
  fleet::FleetConfig config;
  config.machine = simnet::bebop_like();
  config.stream.n_jobs = jobs;
  config.stream.mean_interarrival_s = 240.0;
  config.stream.node_choices = {4, 8};
  config.stream.ppn_choices = {2, 4};
  config.stream.seed = 21;
  config.learner.forest.n_trees = 10;
  config.learner.max_points = 40;
  config.trace_calls = 64;
  return config;
}

TEST(FleetReplay, WarmFleetTrainsCheaperAndPopulatesTheStore) {
  fleet::FleetConfig cold_cfg = small_fleet();
  cold_cfg.warm_start = false;
  serve::ModelStore cold_store;
  const fleet::FleetResult cold = fleet::replay_fleet(cold_cfg, cold_store);

  fleet::FleetConfig warm_cfg = small_fleet();
  serve::ModelStore warm_store;
  const fleet::FleetResult warm = fleet::replay_fleet(warm_cfg, warm_store);

  ASSERT_EQ(cold.jobs.size(), 6u);
  ASSERT_EQ(warm.jobs.size(), 6u);
  EXPECT_EQ(cold.totals.warm_jobs, 0u);
  // The stream repeats (app, scale) combinations within a few jobs, so the
  // warm arm must find donors and spend measurably less simulated time.
  EXPECT_GE(warm.totals.warm_jobs, 1u);
  EXPECT_LT(warm.totals.training_s, cold.totals.training_s);
  EXPECT_GT(warm.totals.mean_transfer_distance, -1.0);

  // Both arms publish every job's models.
  EXPECT_GT(cold_store.size(), 0u);
  EXPECT_GT(warm_store.size(), 0u);

  for (const fleet::JobOutcome& job : warm.jobs) {
    EXPECT_DOUBLE_EQ(job.completion_s, job.arrival_s + job.training_s);
    EXPECT_GT(job.points, 0u);
    if (job.warm_collectives == 0) {
      EXPECT_EQ(job.transfer_distance, -1.0);
    } else {
      EXPECT_GE(job.transfer_distance, 0.0);
    }
  }
  // Different training paths must change the fingerprint.
  EXPECT_NE(cold.fingerprint, warm.fingerprint);
}

TEST(FleetReplay, RepublishesExistingKeysWithIncreasingVersions) {
  // One scale only: every job of the same app republishes the identical
  // (collective, comm size, topology) keys.
  fleet::FleetConfig config = small_fleet(8);
  config.stream.node_choices = {4, 4};
  config.stream.ppn_choices = {2};
  serve::ModelStore store;
  const fleet::FleetResult result = fleet::replay_fleet(config, store);

  std::size_t publishes = 0;
  for (const fleet::JobOutcome& job : result.jobs) {
    publishes += static_cast<std::size_t>(job.total_collectives);
  }
  ASSERT_GT(publishes, store.size());  // pigeonhole: 8 jobs, 4 apps

  std::uint64_t max_version = 0;
  std::set<std::uint64_t> versions;
  for (const serve::ModelKey& key : store.keys()) {
    const auto snap = store.lookup(key);
    ASSERT_NE(snap, nullptr);
    ASSERT_NE(snap->support, nullptr);  // fleet always attaches transfer points
    EXPECT_FALSE(snap->support->empty());
    versions.insert(snap->version);
    max_version = std::max(max_version, snap->version);
  }
  EXPECT_EQ(versions.size(), store.size());  // versions stay unique
  // Republishing burned versions beyond the surviving key count.
  EXPECT_GT(max_version, store.size());
}

TEST(FleetReplay, FingerprintIsBitwiseDeterministicAcrossThreadCounts) {
  ThreadGuard guard;
  util::set_global_threads(1);
  serve::ModelStore golden_store;
  const fleet::FleetResult golden = fleet::replay_fleet(small_fleet(4), golden_store);
  ASSERT_FALSE(golden.fingerprint.empty());

  for (int threads : {2, 5}) {
    util::set_global_threads(threads);
    serve::ModelStore store;
    const fleet::FleetResult result = fleet::replay_fleet(small_fleet(4), store);
    EXPECT_EQ(result.fingerprint, golden.fingerprint) << "threads=" << threads;
    EXPECT_EQ(result.totals.points, golden.totals.points) << "threads=" << threads;
  }
}

TEST(FleetReplay, FingerprintSeparatesStreamsAndArms) {
  serve::ModelStore a_store;
  const auto a = fleet::replay_fleet(small_fleet(4), a_store);

  fleet::FleetConfig other = small_fleet(4);
  other.stream.seed = 22;
  serve::ModelStore b_store;
  const auto b = fleet::replay_fleet(other, b_store);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(FleetReplay, RejectsInconsistentConfigs) {
  serve::ModelStore store;

  fleet::FleetConfig no_jobs = small_fleet();
  no_jobs.stream.n_jobs = 0;
  EXPECT_THROW(fleet::replay_fleet(no_jobs, store), InvalidArgument);

  fleet::FleetConfig bad_gap = small_fleet();
  bad_gap.stream.mean_interarrival_s = 0.0;
  EXPECT_THROW(fleet::replay_fleet(bad_gap, store), InvalidArgument);

  fleet::FleetConfig too_big = small_fleet();
  too_big.stream.node_choices = {too_big.machine.total_nodes * 2};
  EXPECT_THROW(fleet::replay_fleet(too_big, store), InvalidArgument);

  fleet::FleetConfig bad_range = small_fleet();
  bad_range.min_msg = 1024;
  bad_range.max_msg = 8;
  EXPECT_THROW(fleet::replay_fleet(bad_range, store), InvalidArgument);
}

TEST(FleetReplay, RejectsRankProductsBeyondTheServingCap) {
  // Regression: nnodes x ppn used to be multiplied as a plain int, so a ppn
  // choice large enough to push the product past 2^31 overflowed before any
  // validation saw it (node choices are bounded by the machine, ppn choices
  // are not). The product now goes through serve::checked_comm_size, which
  // rejects anything above the joint rank cap in 64-bit arithmetic.
  serve::ModelStore store;
  fleet::FleetConfig config = small_fleet();
  config.stream.ppn_choices = {1 << 29};
  EXPECT_THROW(fleet::replay_fleet(config, store), InvalidArgument);
}

}  // namespace

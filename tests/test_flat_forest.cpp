// Differential suite pinning the SoA FlatForest engine to the pointer
// forest: randomized forests x randomized feature rows must produce
// bitwise-identical predictions, per-tree outputs, and fused jackknife
// results, including degenerate trees (single leaf, constant features,
// duplicate thresholds) and adversarial row values (NaN, infinities,
// extremes). This suite is the contract flat_forest.hpp's header states.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/forest.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim;

/// Seeded random training set: `n_features` columns, mixed continuous and
/// small-integer (duplicate-threshold-inducing) features.
void random_data(util::Rng& rng, std::size_t n_features, std::size_t n_samples,
                 std::vector<ml::FeatureRow>& X, std::vector<double>& y) {
  X.clear();
  y.clear();
  for (std::size_t i = 0; i < n_samples; ++i) {
    ml::FeatureRow row(n_features);
    double label = 0.0;
    for (std::size_t f = 0; f < n_features; ++f) {
      // Even columns continuous, odd columns drawn from {0,1,2,3} so many
      // split candidates tie at identical thresholds.
      row[f] = (f % 2 == 0) ? rng.uniform(-3.0, 3.0)
                            : static_cast<double>(rng.uniform_int(0, 3));
      label += row[f] * (0.3 + 0.2 * static_cast<double>(f));
    }
    X.push_back(std::move(row));
    y.push_back(label + rng.normal(0.0, 0.1));
  }
}

/// Random probe rows over (and beyond) the training range.
std::vector<ml::FeatureRow> random_rows(util::Rng& rng, std::size_t n_features,
                                        std::size_t n_rows) {
  std::vector<ml::FeatureRow> rows;
  for (std::size_t i = 0; i < n_rows; ++i) {
    ml::FeatureRow row(n_features);
    for (double& v : row) {
      v = rng.uniform(-10.0, 10.0);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Ground truth independent of either engine: walk the fitted pointer trees
/// directly.
std::vector<double> reference_tree_preds(const ml::RandomForest& forest,
                                         const ml::FeatureRow& row) {
  std::vector<double> out;
  for (const ml::DecisionTree& tree : forest.trees()) {
    out.push_back(tree.predict(row));
  }
  return out;
}

double reference_mean(const std::vector<double>& preds) {
  double sum = 0.0;
  for (double v : preds) {
    sum += v;
  }
  return sum / static_cast<double>(preds.size());
}

TEST(FlatForestBuild, ArenaCoversEveryNodeOfEveryTree) {
  util::Rng rng(11);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  random_data(rng, 4, 120, X, y);
  ml::ForestParams params;
  params.n_trees = 9;
  ml::RandomForest forest;
  forest.fit(X, y, params, 5);

  const ml::FlatForest& flat = forest.flat();
  ASSERT_TRUE(flat.built());
  EXPECT_EQ(flat.n_trees(), forest.n_trees());
  EXPECT_EQ(flat.n_features(), 4u);
  std::size_t total = 0;
  for (const ml::DecisionTree& tree : forest.trees()) {
    total += tree.node_count();
  }
  EXPECT_EQ(flat.n_nodes(), total);
}

TEST(FlatForestDifferential, RandomForestsBitwiseEqualAcrossEngines) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n_features = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
    std::vector<ml::FeatureRow> X;
    std::vector<double> y;
    random_data(rng, n_features, 40 + static_cast<std::size_t>(rng.uniform_int(0, 160)), X, y);
    ml::ForestParams params;
    params.n_trees = 1 + static_cast<int>(rng.uniform_int(0, 40));
    params.bootstrap = trial % 2 == 0;
    params.tree.max_depth = 2 + static_cast<int>(rng.uniform_int(0, 20));
    params.tree.min_samples_leaf = 1 + static_cast<int>(rng.uniform_int(0, 4));
    ml::RandomForest forest;
    forest.fit(X, y, params, static_cast<std::uint64_t>(100 + trial));

    for (const ml::FeatureRow& row : random_rows(rng, n_features, 25)) {
      const std::vector<double> ref = reference_tree_preds(forest, row);

      ml::ForestBackendGuard flat_guard(ml::ForestBackend::Flat);
      std::vector<double> flat_preds;
      forest.predict_trees(row, flat_preds);
      ASSERT_EQ(flat_preds, ref) << "trial=" << trial;
      ASSERT_EQ(forest.predict(row), reference_mean(ref)) << "trial=" << trial;

      ml::ForestBackendGuard ptr_guard(ml::ForestBackend::Pointer);
      std::vector<double> ptr_preds;
      forest.predict_trees(row, ptr_preds);
      ASSERT_EQ(ptr_preds, ref) << "trial=" << trial;
      ASSERT_EQ(forest.predict(row), reference_mean(ref)) << "trial=" << trial;
    }
  }
}

TEST(FlatForestDifferential, BatchedMatchesScalarForRandomBatchSizes) {
  util::Rng rng(31);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  random_data(rng, 5, 150, X, y);
  ml::ForestParams params;
  params.n_trees = 17;
  ml::RandomForest forest;
  forest.fit(X, y, params, 9);
  const ml::FlatForest& flat = forest.flat();

  // Sizes straddling the kernel's lane width: tail-only, one full block,
  // full blocks plus tail, and larger random batches.
  for (const std::size_t n_rows : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                                   std::size_t{9}, std::size_t{16}, std::size_t{21},
                                   static_cast<std::size_t>(rng.uniform_int(30, 200))}) {
    const std::vector<ml::FeatureRow> rows = random_rows(rng, 5, n_rows);
    std::vector<double> batched(n_rows * flat.n_trees());
    flat.predict_trees_batch(rows.data(), n_rows, batched.data());
    std::vector<double> scalar;
    for (std::size_t r = 0; r < n_rows; ++r) {
      flat.predict_trees(rows[r], scalar);
      for (std::size_t t = 0; t < flat.n_trees(); ++t) {
        ASSERT_EQ(batched[r * flat.n_trees() + t], scalar[t])
            << "n_rows=" << n_rows << " row=" << r << " tree=" << t;
      }
      ASSERT_EQ(scalar, reference_tree_preds(forest, rows[r]));
    }
  }
}

TEST(FlatForestDifferential, FusedJackknifeMatchesScalarReductions) {
  util::Rng rng(47);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  random_data(rng, 4, 180, X, y);
  ml::ForestParams params;
  params.n_trees = 33;
  ml::RandomForest forest;
  forest.fit(X, y, params, 21);

  const std::vector<ml::FeatureRow> rows = random_rows(rng, 4, 57);
  std::vector<double> var(rows.size()), mean(rows.size()), scratch;
  forest.flat().jackknife_batch(rows.data(), rows.size(), var.data(), mean.data(), scratch);

  // Also through the backend-routed entry points of both engines.
  std::vector<double> var_flat(rows.size()), mean_flat(rows.size());
  std::vector<double> var_ptr(rows.size()), mean_ptr(rows.size());
  {
    ml::ForestBackendGuard guard(ml::ForestBackend::Flat);
    std::vector<double> s;
    forest.jackknife_batch(rows.data(), rows.size(), var_flat.data(), mean_flat.data(), s);
  }
  {
    ml::ForestBackendGuard guard(ml::ForestBackend::Pointer);
    std::vector<double> s;
    forest.jackknife_batch(rows.data(), rows.size(), var_ptr.data(), mean_ptr.data(), s);
  }

  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double> preds = reference_tree_preds(forest, rows[r]);
    const double want_var = ml::jackknife_variance(preds);
    const double want_mean = reference_mean(preds);
    ASSERT_EQ(var[r], want_var) << "row=" << r;
    ASSERT_EQ(mean[r], want_mean) << "row=" << r;
    ASSERT_EQ(var_flat[r], want_var) << "row=" << r;
    ASSERT_EQ(mean_flat[r], want_mean) << "row=" << r;
    ASSERT_EQ(var_ptr[r], want_var) << "row=" << r;
    ASSERT_EQ(mean_ptr[r], want_mean) << "row=" << r;
  }
}

TEST(FlatForestDifferential, NullOutputsSkipThatReduction) {
  util::Rng rng(3);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  random_data(rng, 3, 60, X, y);
  ml::ForestParams params;
  params.n_trees = 7;
  ml::RandomForest forest;
  forest.fit(X, y, params, 4);

  const std::vector<ml::FeatureRow> rows = random_rows(rng, 3, 11);
  std::vector<double> var(rows.size()), mean(rows.size()), scratch;
  forest.jackknife_batch(rows.data(), rows.size(), var.data(), mean.data(), scratch);

  std::vector<double> var_only(rows.size()), mean_only(rows.size()), s2;
  forest.jackknife_batch(rows.data(), rows.size(), var_only.data(), nullptr, s2);
  forest.jackknife_batch(rows.data(), rows.size(), nullptr, mean_only.data(), s2);
  EXPECT_EQ(var_only, var);
  EXPECT_EQ(mean_only, mean);
  forest.jackknife_batch(rows.data(), 0, nullptr, nullptr, s2);  // no-op
}

TEST(FlatForestDegenerate, SingleLeafTreesPredictTheConstant) {
  // Constant target: every tree collapses to a single leaf (depth 0), the
  // batched kernel's zero-iteration path.
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  util::Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    X.push_back({rng.uniform(), rng.uniform()});
    y.push_back(2.5);
  }
  ml::ForestParams params;
  params.n_trees = 10;
  ml::RandomForest forest;
  forest.fit(X, y, params, 2);

  const std::vector<ml::FeatureRow> rows = random_rows(rng, 2, 19);
  std::vector<double> batched(rows.size() * forest.n_trees());
  forest.flat().predict_trees_batch(rows.data(), rows.size(), batched.data());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double> ref = reference_tree_preds(forest, rows[r]);
    for (std::size_t t = 0; t < forest.n_trees(); ++t) {
      ASSERT_EQ(batched[r * forest.n_trees() + t], ref[t]);
    }
    ASSERT_EQ(forest.predict(rows[r]), reference_mean(ref));
  }
}

TEST(FlatForestDegenerate, ConstantFeaturesAndDuplicateThresholds) {
  // One informative small-integer column among constant columns: splits
  // stack on duplicated thresholds, constant columns are never split on.
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  util::Rng rng(6);
  for (int i = 0; i < 80; ++i) {
    const double v = static_cast<double>(rng.uniform_int(0, 2));
    X.push_back({1.0, v, -7.0});
    y.push_back(v * 3.0 + rng.normal(0.0, 0.01));
  }
  ml::ForestParams params;
  params.n_trees = 12;
  ml::RandomForest forest;
  forest.fit(X, y, params, 13);

  // Probe exactly on the duplicated threshold values (the <= boundary) and
  // on the constant columns' value.
  std::vector<ml::FeatureRow> rows;
  for (double v : {0.0, 0.5, 1.0, 1.5, 2.0, -1.0, 3.0}) {
    rows.push_back({1.0, v, -7.0});
  }
  for (const ml::FeatureRow& row : rows) {
    const std::vector<double> ref = reference_tree_preds(forest, row);
    std::vector<double> flat_preds;
    forest.flat().predict_trees(row, flat_preds);
    ASSERT_EQ(flat_preds, ref);
  }
  std::vector<double> batched(rows.size() * forest.n_trees());
  forest.flat().predict_trees_batch(rows.data(), rows.size(), batched.data());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double> ref = reference_tree_preds(forest, rows[r]);
    for (std::size_t t = 0; t < forest.n_trees(); ++t) {
      ASSERT_EQ(batched[r * forest.n_trees() + t], ref[t]);
    }
  }
}

TEST(FlatForestDegenerate, NanAndExtremeValuesRouteIdentically) {
  util::Rng rng(77);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  random_data(rng, 3, 100, X, y);
  ml::ForestParams params;
  params.n_trees = 15;
  ml::RandomForest forest;
  forest.fit(X, y, params, 3);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const double huge = std::numeric_limits<double>::max();
  const double tiny = std::numeric_limits<double>::denorm_min();
  const std::vector<ml::FeatureRow> rows = {
      {nan, 0.0, 0.0},   {0.0, nan, 1.0},    {nan, nan, nan},
      {inf, -inf, 0.0},  {-inf, inf, nan},   {huge, -huge, tiny},
      {tiny, -tiny, inf}, {0.0, -0.0, nan},
  };
  for (const ml::FeatureRow& row : rows) {
    // NaN fails `x <= threshold`, so both engines must route right at every
    // NaN-featured split — verified against the pointer trees directly.
    const std::vector<double> ref = reference_tree_preds(forest, row);
    std::vector<double> flat_preds;
    forest.flat().predict_trees(row, flat_preds);
    ASSERT_EQ(flat_preds, ref);
    ASSERT_EQ(forest.flat().predict(row), reference_mean(ref));
  }
  std::vector<double> batched(rows.size() * forest.n_trees());
  forest.flat().predict_trees_batch(rows.data(), rows.size(), batched.data());
  std::vector<double> var(rows.size()), mean(rows.size()), scratch;
  forest.flat().jackknife_batch(rows.data(), rows.size(), var.data(), mean.data(), scratch);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<double> ref = reference_tree_preds(forest, rows[r]);
    for (std::size_t t = 0; t < forest.n_trees(); ++t) {
      ASSERT_EQ(batched[r * forest.n_trees() + t], ref[t]);
    }
    ASSERT_EQ(var[r], ml::jackknife_variance(ref));
    ASSERT_EQ(mean[r], reference_mean(ref));
  }
}

TEST(FlatForestSerialization, FromJsonRebuildsTheArena) {
  util::Rng rng(91);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  random_data(rng, 4, 90, X, y);
  ml::ForestParams params;
  params.n_trees = 11;
  ml::RandomForest forest;
  forest.fit(X, y, params, 17);

  const ml::RandomForest restored = ml::RandomForest::from_json(forest.to_json());
  ASSERT_TRUE(restored.flat().built());
  EXPECT_EQ(restored.flat().n_nodes(), forest.flat().n_nodes());
  for (const ml::FeatureRow& row : random_rows(rng, 4, 20)) {
    std::vector<double> a, b;
    forest.flat().predict_trees(row, a);
    restored.flat().predict_trees(row, b);
    ASSERT_EQ(a, b);
  }
}

TEST(FlatForestSerialization, CyclicNodeGraphIsRejectedAtLoadTime) {
  // DecisionTree::from_json only bounds-checks child indices; a cycle used
  // to hang predict(). The arena build's DFS visit bound now rejects it
  // when RandomForest::from_json flattens the trees.
  util::Json tree = util::Json::object();
  tree["n_features"] = 1;
  tree["depth"] = 1;
  tree["feature"] = util::Json::array();
  tree["threshold"] = util::Json::array();
  tree["left"] = util::Json::array();
  tree["right"] = util::Json::array();
  tree["value"] = util::Json::array();
  // Node 0 splits and points both children back at itself.
  tree["feature"].push_back(0);
  tree["threshold"].push_back(0.5);
  tree["left"].push_back(0);
  tree["right"].push_back(0);
  tree["value"].push_back(0.0);

  util::Json doc = util::Json::object();
  doc["model"] = "acclaim-random-forest-v1";
  util::Json trees = util::Json::array();
  trees.push_back(std::move(tree));
  doc["trees"] = std::move(trees);
  EXPECT_THROW(ml::RandomForest::from_json(doc), InvalidArgument);
}

TEST(FlatForestBackend, GuardRestoresThePreviousEngine) {
  const ml::ForestBackend before = ml::forest_backend();
  {
    ml::ForestBackendGuard guard(ml::ForestBackend::Pointer);
    EXPECT_EQ(ml::forest_backend(), ml::ForestBackend::Pointer);
    {
      ml::ForestBackendGuard inner(ml::ForestBackend::Flat);
      EXPECT_EQ(ml::forest_backend(), ml::ForestBackend::Flat);
    }
    EXPECT_EQ(ml::forest_backend(), ml::ForestBackend::Pointer);
  }
  EXPECT_EQ(ml::forest_backend(), before);
}

}  // namespace

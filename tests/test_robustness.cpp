// Robustness tests: malformed external inputs (JSON documents, dataset
// CSVs, config files) must raise typed errors, never crash or silently
// mis-parse. Includes a light mutation fuzz over the JSON parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "benchdata/dataset.hpp"
#include "core/active_learner.hpp"
#include "core/rulegen.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim;

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(JsonFuzz, MutatedDocumentsThrowOrParseButNeverCrash) {
  const std::string base = R"({"format": "acclaim-coll-tuning-v1",
    "collectives": {"bcast": [{"nnodes": 8, "ppn": 16, "rules": [
      {"msg_size_le": 8192, "algorithm": "binomial"},
      {"algorithm": "scatter_ring_allgather"}]}]}})";
  util::Rng rng(2024);
  int parsed = 0;
  int rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = base;
    const int edits = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int e = 0; e < edits; ++e) {
      const std::size_t pos = rng.index(mutated.size());
      switch (rng.uniform_int(0, 2)) {
        case 0: mutated[pos] = static_cast<char>(rng.uniform_int(32, 126)); break;
        case 1: mutated.erase(pos, 1); break;
        default: mutated.insert(pos, 1, static_cast<char>(rng.uniform_int(32, 126)));
      }
    }
    try {
      const util::Json doc = util::Json::parse(mutated);
      // If it still parses, downstream consumption must also either work or
      // throw a typed error.
      try {
        core::rules_from_json(doc);
        // A typed rejection of fuzzed input is a pass. acclaim-lint: allow(hyg-catch-log)
      } catch (const Error&) {
      }
      ++parsed;
      // Counted and asserted on below. acclaim-lint: allow(hyg-catch-log)
    } catch (const Error&) {
      ++rejected;
    }
  }
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 100);  // most single-character mutations break JSON
}

TEST(DatasetRobustness, MissingColumnsAndGarbageRowsThrow) {
  const std::string path = temp_path("acclaim_bad_dataset.csv");
  {
    std::ofstream out(path);
    out << "collective,algorithm,nnodes\nbcast,binomial,4\n";
  }
  EXPECT_THROW(bench::Dataset::load(path), NotFoundError);  // missing columns
  {
    std::ofstream out(path);
    out << "collective,algorithm,nnodes,ppn,msg_bytes,mean_us,stddev_us,iterations,"
           "collect_cost_s\n"
        << "alltoallw,binomial,4,2,64,10,1,100,2\n";  // unknown collective
  }
  EXPECT_THROW(bench::Dataset::load(path), InvalidArgument);
  {
    std::ofstream out(path);
    out << "collective,algorithm,nnodes,ppn,msg_bytes,mean_us,stddev_us,iterations,"
           "collect_cost_s\n"
        << "bcast,ring,4,2,64,10,1,100,2\n";  // bcast has no "ring"
  }
  EXPECT_THROW(bench::Dataset::load(path), NotFoundError);
  std::remove(path.c_str());
}

TEST(ConfigRobustness, SelectionEngineFromFileErrors) {
  EXPECT_THROW(core::SelectionEngine::from_file("/nonexistent/rules.json"), IoError);
  const std::string path = temp_path("acclaim_bad_rules.json");
  {
    std::ofstream out(path);
    out << "{\"format\": \"acclaim-coll-tuning-v1\", \"collectives\": {\"bcast\": "
           "[{\"nnodes\": 4, \"ppn\": 2, \"rules\": []}]}}";
  }
  EXPECT_THROW(core::SelectionEngine::from_file(path), InvalidArgument);  // empty bucket
  std::remove(path.c_str());
}

TEST(LearnerRobustness, MinPointsDelaysConvergence) {
  const bench::Dataset& ds = testing_support::small_dataset();
  const core::FeatureSpace space = testing_support::small_space();
  core::DatasetEnvironment env(ds);
  core::AcclaimAcquisition policy;
  core::ActiveLearnerConfig cfg;
  cfg.forest.n_trees = 30;
  cfg.seed = 2;
  // Absurdly loose criterion: it would fire immediately without the floor.
  cfg.variance_rel_tol = 10.0;
  cfg.patience = 1;
  cfg.min_points = 40;
  core::ActiveLearner learner(coll::Collective::Reduce, space, env, policy, cfg);
  const auto result = learner.run();
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.collected.size(), 40u);
}

TEST(LearnerRobustness, RejectsNonsenseConfigs) {
  const bench::Dataset& ds = testing_support::small_dataset();
  const core::FeatureSpace space = testing_support::small_space();
  core::DatasetEnvironment env(ds);
  core::AcclaimAcquisition policy;
  core::ActiveLearnerConfig cfg;
  cfg.seed_points = 0;
  EXPECT_THROW(core::ActiveLearner(coll::Collective::Bcast, space, env, policy, cfg),
               InvalidArgument);
  cfg.seed_points = 5;
  cfg.refit_every = 0;
  EXPECT_THROW(core::ActiveLearner(coll::Collective::Bcast, space, env, policy, cfg),
               InvalidArgument);
  cfg.refit_every = 1;
  cfg.patience = 0;
  EXPECT_THROW(core::ActiveLearner(coll::Collective::Bcast, space, env, policy, cfg),
               InvalidArgument);
}

TEST(EnvironmentRobustness, DatasetEnvironmentRejectsUnknownPoints) {
  const bench::Dataset& ds = testing_support::small_dataset();
  core::DatasetEnvironment env(ds);
  const bench::BenchmarkPoint missing{{coll::Collective::Bcast, 999, 1, 64},
                                      coll::Algorithm::BcastBinomial};
  EXPECT_THROW(env.measure(missing), NotFoundError);
  // The clock must not advance on a failed measurement.
  EXPECT_DOUBLE_EQ(env.clock_s(), 0.0);
}

}  // namespace

// Tests for the microbenchmark harness, feature grids, and datasets.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "benchdata/dataset.hpp"
#include "benchdata/grid.hpp"
#include "benchdata/microbenchmark.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;
using bench::BenchmarkPoint;
using bench::FeatureGrid;
using bench::Scenario;

TEST(FeatureGrid, P2AxesAreComplete) {
  const FeatureGrid g = FeatureGrid::p2(64, 32, 8, 1 << 20);
  EXPECT_EQ(g.nodes, (std::vector<int>{2, 4, 8, 16, 32, 64}));
  EXPECT_EQ(g.ppns, (std::vector<int>{1, 2, 4, 8, 16, 32}));
  EXPECT_EQ(g.msgs.size(), 18u);
  EXPECT_EQ(g.msgs.front(), 8u);
  EXPECT_EQ(g.msgs.back(), 1u << 20);
  EXPECT_EQ(g.scenario_count(), 6u * 6u * 18u);
}

TEST(FeatureGrid, RejectsNonP2Bounds) {
  EXPECT_THROW(FeatureGrid::p2(48, 32, 8, 1 << 20), InvalidArgument);
  EXPECT_THROW(FeatureGrid::p2(64, 32, 8, 3 << 19), InvalidArgument);
}

TEST(FeatureGrid, PointsCrossAlgorithms) {
  const FeatureGrid g = FeatureGrid::p2(4, 2, 64, 128);
  // bcast has 3 algorithms: 2 nodes x 2 ppn x 2 msgs x 3 algs.
  EXPECT_EQ(g.points(coll::Collective::Bcast).size(), 2u * 2u * 2u * 3u);
  EXPECT_EQ(g.points(coll::Collective::Reduce).size(), 2u * 2u * 2u * 2u);
}

TEST(FeatureGrid, RandomNonP2NearStaysInClosestP2Window) {
  util::Rng rng(5);
  for (std::uint64_t anchor : {4ull, 8ull, 1024ull, 1ull << 20}) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t v = bench::random_nonp2_near(anchor, rng);
      EXPECT_NE(v, anchor);
      EXPECT_GT(v, anchor * 3 / 4);
      EXPECT_LT(v, anchor * 3 / 2);
      // The closest power of two to v must be the anchor itself.
      const std::uint64_t below = util::floor_power_of_two(v);
      const std::uint64_t above = util::ceil_power_of_two(v);
      const std::uint64_t closest =
          (v - below <= above - v) ? below : above;
      EXPECT_EQ(closest, anchor) << "v=" << v;
    }
  }
  EXPECT_THROW(bench::random_nonp2_near(2, rng), InvalidArgument);
  EXPECT_THROW(bench::random_nonp2_near(12, rng), InvalidArgument);
}

TEST(FeatureGrid, NonP2VariantsContainNoPowersOfTwo) {
  util::Rng rng(6);
  const FeatureGrid g = FeatureGrid::p2(16, 8, 64, 1 << 16).with_nonp2_msgs(rng);
  for (std::uint64_t m : g.msgs) {
    EXPECT_FALSE(util::is_power_of_two(m)) << m;
  }
  util::Rng rng2(7);
  const FeatureGrid n = FeatureGrid::p2(16, 8, 64, 1 << 16).with_nonp2_nodes(rng2);
  for (int v : n.nodes) {
    // Anchors below 4 have no non-P2 neighbour and stay unchanged.
    if (v >= 4) {
      EXPECT_FALSE(util::is_power_of_two(static_cast<std::uint64_t>(v))) << v;
    }
  }
}

class MicrobenchTest : public testing::Test {
 protected:
  MicrobenchTest()
      : topo_(testing_support::small_machine()),
        net_(topo_, 3),
        alloc_({0, 1, 2, 3, 4, 5, 6, 7}) {}
  simnet::Topology topo_;
  simnet::NetworkModel net_;
  simnet::Allocation alloc_;
};

TEST_F(MicrobenchTest, MeasurementTracksScheduleTime) {
  const bench::Microbenchmark mb(net_);
  const BenchmarkPoint p{{coll::Collective::Bcast, 8, 2, 4096}, coll::Algorithm::BcastBinomial};
  util::Rng rng(1);
  const bench::Measurement m = mb.run(p, alloc_, rng);
  const double base = mb.schedule_time_us(p, alloc_);
  EXPECT_NEAR(m.mean_us, base, 0.02 * base);  // noise is small and unbiased
  EXPECT_GT(m.stddev_us, 0.0);
  EXPECT_EQ(m.iterations, 1000);
}

TEST_F(MicrobenchTest, IterationCountsFollowOsuTiers) {
  bench::MicrobenchConfig cfg;
  EXPECT_EQ(cfg.timed_iterations(64, 10.0), 1000);
  EXPECT_EQ(cfg.timed_iterations(8 * 1024, 10.0), 1000);
  EXPECT_EQ(cfg.timed_iterations(64 * 1024, 100.0), 100);
  EXPECT_EQ(cfg.timed_iterations(1 << 20, 1000.0), 20);
}

TEST_F(MicrobenchTest, TimeCapShrinksIterationCounts) {
  bench::MicrobenchConfig cfg;  // 2 s cap, min 5 iterations
  // 10 ms per iteration -> 200 iterations fit the cap.
  EXPECT_EQ(cfg.timed_iterations(64, 10000.0), 200);
  // 1 s per iteration -> floor at min_iterations.
  EXPECT_EQ(cfg.timed_iterations(1 << 20, 1e6), 5);
  // Tier caps still apply when time allows more.
  EXPECT_EQ(cfg.timed_iterations(1 << 20, 10.0), 20);
}

TEST_F(MicrobenchTest, CollectionCostIncludesLaunchOverhead) {
  const bench::Microbenchmark mb(net_);
  const BenchmarkPoint p{{coll::Collective::Bcast, 8, 2, 64}, coll::Algorithm::BcastBinomial};
  util::Rng rng(1);
  const bench::Measurement m = mb.run(p, alloc_, rng);
  const auto& cfg = mb.config();
  EXPECT_GT(m.collect_cost_s, cfg.launch_base_s);
  EXPECT_GT(m.collect_cost_s, cfg.launch_per_rank_s * 16);
}

TEST_F(MicrobenchTest, ExternalLoadInflatesMeasurement) {
  const bench::Microbenchmark mb(net_);
  const BenchmarkPoint p{{coll::Collective::Allgather, 8, 2, 1 << 15},
                         coll::Algorithm::AllgatherRing};
  util::Rng rng1(1);
  util::Rng rng2(1);
  const bench::Measurement calm = mb.run(p, alloc_, rng1);
  minimpi::FlowMap rack_flows;
  for (int r = 0; r < topo_.num_racks(); ++r) {
    rack_flows[r] = 32;
  }
  const bench::Measurement congested = mb.run_with_load(p, alloc_, rack_flows, {}, rng2);
  EXPECT_GT(congested.mean_us, 1.5 * calm.mean_us);
}

TEST_F(MicrobenchTest, RejectsTooSmallAllocation) {
  const bench::Microbenchmark mb(net_);
  const BenchmarkPoint p{{coll::Collective::Bcast, 16, 1, 64}, coll::Algorithm::BcastBinomial};
  util::Rng rng(1);
  EXPECT_THROW(mb.run(p, alloc_, rng), InvalidArgument);
}

TEST(Dataset, OracleFindsBestAlgorithm) {
  const bench::Dataset& ds = testing_support::small_dataset();
  for (const Scenario& s : ds.scenarios(coll::Collective::Bcast)) {
    const coll::Algorithm best = ds.best_algorithm(s);
    const double best_us = ds.best_time_us(s);
    for (coll::Algorithm a : coll::algorithms_for(coll::Collective::Bcast)) {
      EXPECT_LE(best_us, ds.time_us(s, a));
    }
    EXPECT_DOUBLE_EQ(ds.time_us(s, best), best_us);
  }
}

TEST(Dataset, LookupErrorsAreDescriptive) {
  const bench::Dataset& ds = testing_support::small_dataset();
  const BenchmarkPoint missing{{coll::Collective::Bcast, 1024, 1, 64},
                               coll::Algorithm::BcastBinomial};
  EXPECT_FALSE(ds.contains(missing));
  try {
    ds.at(missing);
    FAIL() << "expected NotFoundError";
  } catch (const NotFoundError& e) {
    EXPECT_NE(std::string(e.what()).find("bcast"), std::string::npos);
  }
}

TEST(Dataset, SaveLoadRoundTrip) {
  const bench::Dataset& ds = testing_support::small_dataset();
  const std::string path =
      (std::filesystem::temp_directory_path() / "acclaim_ds_test.csv").string();
  ds.save(path);
  const bench::Dataset back = bench::Dataset::load(path);
  EXPECT_EQ(back.size(), ds.size());
  for (const BenchmarkPoint& p : ds.points()) {
    ASSERT_TRUE(back.contains(p)) << p.to_string();
    EXPECT_NEAR(back.at(p).mean_us, ds.at(p).mean_us, 1e-6 * ds.at(p).mean_us);
    EXPECT_EQ(back.at(p).iterations, ds.at(p).iterations);
  }
  std::remove(path.c_str());
}

TEST(Dataset, LoadRejectsMalformedAndOutOfRangeCells) {
  // Regression: numeric CSV cells went straight through std::stoi/std::stod,
  // so a hand-edited dataset with a garbage cell surfaced as a bare
  // std::invalid_argument with no row context — and a negative node count
  // was accepted silently. Every cell now goes through a checked_* parser
  // with explicit bounds.
  const std::string path =
      (std::filesystem::temp_directory_path() / "acclaim_ds_bad_cells.csv").string();
  const auto write = [&](const std::string& row) {
    std::ofstream out(path, std::ios::trunc);
    out << "collective,algorithm,nnodes,ppn,msg_bytes,mean_us,stddev_us,"
           "iterations,collect_cost_s\n"
        << row;
  };

  write("bcast,binomial,4,1,64,12.5,0.5,5,0.001\n");
  EXPECT_NO_THROW(bench::Dataset::load(path));

  write("bcast,binomial,abc,1,64,12.5,0.5,5,0.001\n");
  EXPECT_THROW(bench::Dataset::load(path), ParseError);

  write("bcast,binomial,-4,1,64,12.5,0.5,5,0.001\n");
  EXPECT_THROW(bench::Dataset::load(path), InvalidArgument);

  // Per-field limits pass but the joint product exceeds the rank cap.
  write("bcast,binomial,4194304,65536,64,12.5,0.5,5,0.001\n");
  EXPECT_THROW(bench::Dataset::load(path), InvalidArgument);

  write("bcast,binomial,4,1,64,not_a_number,0.5,5,0.001\n");
  EXPECT_THROW(bench::Dataset::load(path), ParseError);

  write("bcast,binomial,4,1,64,-1.0,0.5,5,0.001\n");
  EXPECT_THROW(bench::Dataset::load(path), ParseError);

  std::remove(path.c_str());
}

TEST(Dataset, LoadOrCollectCaches) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "acclaim_ds_cache_test.csv").string();
  std::remove(path.c_str());
  const bench::FeatureGrid g = bench::FeatureGrid::p2(4, 2, 64, 256);
  const bench::Dataset first = bench::load_or_collect(path, testing_support::small_machine(), g,
                                                      {coll::Collective::Reduce}, 11);
  ASSERT_TRUE(std::filesystem::exists(path));
  const bench::Dataset second = bench::load_or_collect(path, testing_support::small_machine(), g,
                                                       {coll::Collective::Reduce}, 11);
  EXPECT_EQ(first.size(), second.size());
  std::remove(path.c_str());
}

TEST(Dataset, CollectionCostsArePositiveAndSummable) {
  const bench::Dataset& ds = testing_support::small_dataset();
  double total = 0.0;
  for (const BenchmarkPoint& p : ds.points()) {
    EXPECT_GT(ds.at(p).collect_cost_s, 0.0);
    total += ds.at(p).collect_cost_s;
  }
  EXPECT_NEAR(ds.total_collection_cost_s(), total, 1e-9 * total);
}

TEST(Dataset, MessageSizesIncludeNonP2Variants) {
  const bench::Dataset& ds = testing_support::small_dataset();
  const auto msgs = ds.message_sizes(coll::Collective::Bcast);
  int p2 = 0;
  int nonp2 = 0;
  for (std::uint64_t m : msgs) {
    (util::is_power_of_two(m) ? p2 : nonp2)++;
  }
  EXPECT_GT(p2, 5);
  EXPECT_GT(nonp2, 5);
}

}  // namespace

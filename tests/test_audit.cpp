// Decision flight recorder: DecisionRecord JSONL round-trips, AuditLog
// ring/stream lifecycle, explain aggregation/rendering, and the audited
// selection/acquisition paths in core.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "benchdata/point.hpp"
#include "collectives/types.hpp"
#include "core/acquisition.hpp"
#include "core/env.hpp"
#include "core/feature_space.hpp"
#include "core/model.hpp"
#include "core/rulegen.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim;
using telemetry::DecisionKind;
using telemetry::DecisionRecord;

// The audit log is process-wide; every case starts disabled (which also
// resets the sequence counter) so ordering cannot leak across cases.
class AuditTest : public testing::Test {
 protected:
  void SetUp() override {
    telemetry::audit().disable();
    telemetry::metrics().reset();
  }
  void TearDown() override { telemetry::audit().disable(); }
};

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

DecisionRecord sample_selection() {
  DecisionRecord rec;
  rec.kind = DecisionKind::Selection;
  rec.source = "model";
  rec.collective = "bcast";
  rec.nnodes = 8;
  rec.ppn = 16;
  rec.msg_bytes = 4096;
  rec.features = {3.0, 4.0, 12.0, 1.0, 0.0};
  rec.scores = {{"binomial", 2.25, 30}, {"scatter_allgather", 2.5, 20}};
  rec.chosen = "binomial";
  rec.runner_up = "scatter_allgather";
  rec.margin = 0.28;
  rec.variance = 0.0125;
  rec.tree_evals = 100;
  return rec;
}

DecisionRecord sample_acquisition(std::int64_t round) {
  DecisionRecord rec;
  rec.kind = DecisionKind::Acquisition;
  rec.source = "policy";
  rec.collective = "allreduce";
  rec.nnodes = 4;
  rec.ppn = 8;
  rec.msg_bytes = 1024;
  rec.chosen = "recursive_doubling";
  rec.runner_up = "ring";
  rec.margin = 0.4;
  rec.variance = 0.08;
  rec.acq_score = 0.08;
  rec.pool_size = 96;
  rec.round = round;
  rec.nonp2 = (round % 4) == 0;
  rec.batch_size = round % 3 == 0 ? 4 : 0;
  rec.tree_evals = 4800;
  return rec;
}

TEST_F(AuditTest, SelectionRecordJsonRoundTrip) {
  const DecisionRecord rec = sample_selection();
  const DecisionRecord back = DecisionRecord::from_json(rec.to_json());
  EXPECT_EQ(back.kind, rec.kind);
  EXPECT_EQ(back.source, rec.source);
  EXPECT_EQ(back.collective, rec.collective);
  EXPECT_EQ(back.nnodes, rec.nnodes);
  EXPECT_EQ(back.ppn, rec.ppn);
  EXPECT_EQ(back.msg_bytes, rec.msg_bytes);
  EXPECT_EQ(back.features, rec.features);
  EXPECT_EQ(back.scores, rec.scores);
  EXPECT_EQ(back.chosen, rec.chosen);
  EXPECT_EQ(back.runner_up, rec.runner_up);
  EXPECT_DOUBLE_EQ(back.margin, rec.margin);
  EXPECT_DOUBLE_EQ(back.variance, rec.variance);
  EXPECT_EQ(back.tree_evals, rec.tree_evals);
}

TEST_F(AuditTest, AcquisitionRecordJsonRoundTrip) {
  const DecisionRecord rec = sample_acquisition(12);
  const DecisionRecord back = DecisionRecord::from_json(rec.to_json());
  EXPECT_EQ(back.kind, DecisionKind::Acquisition);
  EXPECT_DOUBLE_EQ(back.acq_score, rec.acq_score);
  EXPECT_EQ(back.pool_size, rec.pool_size);
  EXPECT_EQ(back.round, rec.round);
  EXPECT_EQ(back.nonp2, rec.nonp2);
  EXPECT_EQ(back.batch_size, rec.batch_size);
  EXPECT_EQ(back.tree_evals, rec.tree_evals);
}

TEST_F(AuditTest, RecordJsonCarriesNoWallClockFields) {
  // The determinism contract: nothing time-derived may enter the record
  // (wall cost goes to the metrics registry instead).
  const std::string line = sample_acquisition(3).to_json().dump();
  EXPECT_EQ(line.find("wall"), std::string::npos) << line;
  EXPECT_EQ(line.find("_ms"), std::string::npos) << line;
  EXPECT_EQ(line.find("_ns"), std::string::npos) << line;
  EXPECT_EQ(line.find("time"), std::string::npos) << line;
}

TEST_F(AuditTest, FromJsonRejectsUnknownKind) {
  util::Json doc = sample_selection().to_json();
  doc["kind"] = "coin_flip";
  EXPECT_THROW(DecisionRecord::from_json(doc), InvalidArgument);
}

TEST_F(AuditTest, DisabledByDefaultAndRecordIsDropped) {
  EXPECT_FALSE(telemetry::audit().enabled());
  telemetry::audit().record(sample_selection());
  EXPECT_EQ(telemetry::audit().recorded(), 0u);
  EXPECT_TRUE(telemetry::audit().ring_snapshot().empty());
}

TEST_F(AuditTest, RingKeepsMostRecentAndCountsDrops) {
  telemetry::audit().enable_ring(3);
  for (int i = 0; i < 5; ++i) {
    telemetry::audit().record(sample_acquisition(i));
  }
  EXPECT_EQ(telemetry::audit().recorded(), 5u);
  EXPECT_EQ(telemetry::audit().ring_dropped(), 2u);
  const std::vector<DecisionRecord> ring = telemetry::audit().ring_snapshot();
  ASSERT_EQ(ring.size(), 3u);
  // Oldest first; seq assigned by the log in record order.
  EXPECT_EQ(ring[0].seq, 2u);
  EXPECT_EQ(ring[1].seq, 3u);
  EXPECT_EQ(ring[2].seq, 4u);
}

TEST_F(AuditTest, DisableResetsSequenceForReproducibleRuns) {
  telemetry::audit().enable_ring(8);
  telemetry::audit().record(sample_selection());
  telemetry::audit().record(sample_selection());
  EXPECT_EQ(telemetry::audit().recorded(), 2u);
  telemetry::audit().disable();
  telemetry::audit().enable_ring(8);
  telemetry::audit().record(sample_selection());
  EXPECT_EQ(telemetry::audit().ring_snapshot().front().seq, 0u);
}

TEST_F(AuditTest, StreamWritesJsonLinesAndReadsBack) {
  const std::string path = temp_path("audit_roundtrip.jsonl");
  telemetry::audit().open_stream(path);
  telemetry::audit().record(sample_selection());
  telemetry::audit().record(sample_acquisition(1));
  telemetry::audit().close_stream();
  // close_stream with no ring drops back to disabled.
  EXPECT_FALSE(telemetry::audit().enabled());

  const std::vector<DecisionRecord> back = telemetry::read_audit_file(path);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].seq, 0u);
  EXPECT_EQ(back[0].kind, DecisionKind::Selection);
  EXPECT_EQ(back[1].seq, 1u);
  EXPECT_EQ(back[1].kind, DecisionKind::Acquisition);
  EXPECT_EQ(back[1].round, 1);
}

TEST_F(AuditTest, ReadAuditFileErrors) {
  EXPECT_THROW(telemetry::read_audit_file(temp_path("no_such_audit.jsonl")), IoError);

  const std::string path = temp_path("audit_malformed.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    out << sample_selection().to_json().dump() << "\n";
    out << "{not json\n";
  }
  try {
    telemetry::read_audit_file(path);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    // The error names the file and the 1-based line of the bad record.
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos) << e.what();
  }
}

TEST_F(AuditTest, ObserveDecisionCostFeedsMetricsNotRecords) {
  telemetry::observe_decision_cost(1500.0);
  telemetry::observe_decision_cost(2500.0);
  EXPECT_EQ(telemetry::metrics().counter("audit.records").value(), 2u);
  EXPECT_EQ(telemetry::metrics().histogram("audit.decision_wall_ns").count(), 2u);
}

TEST_F(AuditTest, BuildExplainSplitsKindsAndCountsFlips) {
  std::vector<DecisionRecord> records;
  // Same scenario selected three times: A, B, B -> one flip at seq 1.
  for (int i = 0; i < 3; ++i) {
    DecisionRecord rec = sample_selection();
    rec.seq = static_cast<std::uint64_t>(i);
    rec.chosen = i == 0 ? "binomial" : "scatter_allgather";
    records.push_back(rec);
  }
  records.push_back(sample_acquisition(1));

  const telemetry::ExplainReport report = telemetry::build_explain(records);
  EXPECT_EQ(report.selections.size(), 3u);
  EXPECT_EQ(report.acquisitions.size(), 1u);
  ASSERT_EQ(report.flips.size(), 1u);
  EXPECT_EQ(report.flips[0].decisions, 3);
  EXPECT_EQ(report.flips[0].flips, 1);
  EXPECT_EQ(report.flips[0].last_flip_seq, 1u);
  EXPECT_EQ(report.flips[0].last_chosen, "scatter_allgather");
}

TEST_F(AuditTest, RenderExplainShowsVotesMarginVarianceAndConvergence) {
  std::vector<DecisionRecord> records;
  DecisionRecord sel = sample_selection();
  sel.seq = 0;
  records.push_back(sel);
  for (int i = 1; i <= 5; ++i) {
    DecisionRecord acq = sample_acquisition(i);
    acq.seq = static_cast<std::uint64_t>(i);
    records.push_back(acq);
  }

  std::ostringstream os;
  telemetry::render_explain(telemetry::build_explain(records), os);
  const std::string text = os.str();
  EXPECT_NE(text.find("=== audit summary ==="), std::string::npos) << text;
  EXPECT_NE(text.find("=== selection decisions"), std::string::npos);
  EXPECT_NE(text.find("binomial *"), std::string::npos);  // chosen marker
  EXPECT_NE(text.find("runner-up: scatter_allgather"), std::string::npos);
  EXPECT_NE(text.find("jackknife variance"), std::string::npos);
  EXPECT_NE(text.find("votes"), std::string::npos);
  EXPECT_NE(text.find("=== acquisition trend: allreduce"), std::string::npos);
  EXPECT_NE(text.find("=== convergence: selection stability ==="), std::string::npos);
  EXPECT_NE(text.find("never flipped"), std::string::npos);
}

// --- audited core paths ----------------------------------------------------

/// Minimal environment for exercising acquisition policies: no measurements
/// are taken in these tests and no non-P2 sizes exist.
class StubEnvironment final : public core::TuningEnvironment {
 public:
  bench::Measurement measure(const bench::BenchmarkPoint&) override { return {}; }
  std::optional<std::uint64_t> nonp2_msg_near(std::uint64_t, util::Rng&) override {
    return std::nullopt;
  }
};

core::CollectiveModel tiny_trained_model(coll::Collective c) {
  std::vector<core::LabeledPoint> data;
  double t = 10.0;
  for (int n : {2, 4}) {
    for (std::uint64_t msg : {64ull, 1024ull}) {
      for (coll::Algorithm a : coll::algorithms_for(c)) {
        data.push_back({bench::BenchmarkPoint{bench::Scenario{c, n, 4, msg}, a}, t});
        t *= 1.17;
      }
    }
  }
  ml::ForestParams params = core::default_forest_params();
  params.n_trees = 12;
  core::CollectiveModel model(c, params);
  model.fit(data, 99);
  return model;
}

TEST_F(AuditTest, ExplainNamesTheSameArgminAsSelect) {
  const core::CollectiveModel model = tiny_trained_model(coll::Collective::Bcast);
  for (std::uint64_t msg : {64ull, 256ull, 1024ull}) {
    const bench::Scenario s{coll::Collective::Bcast, 4, 4, msg};
    const core::SelectionExplanation ex = model.explain(s);
    EXPECT_EQ(ex.chosen, model.select(s)) << "msg=" << msg;
    EXPECT_TRUE(ex.has_runner_up);
    EXPECT_NE(ex.chosen, ex.runner_up);
    EXPECT_GE(ex.margin, 0.0);
    // Every tree votes exactly once.
    int votes = 0;
    for (const auto& c : ex.candidates) {
      votes += c.votes;
    }
    EXPECT_EQ(votes, static_cast<int>(model.n_trees()));
    EXPECT_EQ(ex.tree_evals,
              static_cast<std::int64_t>(model.n_trees() *
                                        coll::algorithms_for(s.collective).size()));
  }
}

TEST_F(AuditTest, RuleGenerationEmitsSelectionRecords) {
  const core::CollectiveModel model = tiny_trained_model(coll::Collective::Bcast);
  const core::FeatureSpace space({2, 4}, {4}, {64, 256, 1024});

  telemetry::audit().enable_ring(1 << 10);
  const core::RuleTable with_audit = core::RuleGenerator().generate(model, space);
  const std::vector<DecisionRecord> ring = telemetry::audit().ring_snapshot();
  telemetry::audit().disable();
  const core::RuleTable without_audit = core::RuleGenerator().generate(model, space);

  // Auditing must not change the generated rules.
  EXPECT_EQ(with_audit.buckets(), without_audit.buckets());
  // One record per P2 grid query at minimum (2 nodes x 1 ppn x 3 msgs).
  EXPECT_GE(ring.size(), 6u);
  for (const DecisionRecord& rec : ring) {
    EXPECT_EQ(rec.kind, DecisionKind::Selection);
    EXPECT_EQ(rec.source, "model");
    EXPECT_EQ(rec.collective, "bcast");
    EXPECT_FALSE(rec.scores.empty());
    EXPECT_FALSE(rec.chosen.empty());
    EXPECT_GT(rec.tree_evals, 0);
  }
}

TEST_F(AuditTest, SelectionEngineEmitsRuleRecords) {
  const core::CollectiveModel model = tiny_trained_model(coll::Collective::Bcast);
  const core::FeatureSpace space({2, 4}, {4}, {64, 256, 1024});
  const core::RuleTable table = core::RuleGenerator().generate(model, space);
  const core::SelectionEngine engine({table});

  telemetry::audit().enable_ring(16);
  const bench::Scenario s{coll::Collective::Bcast, 4, 4, 300};
  const coll::Algorithm alg = engine.select(s);
  const std::vector<DecisionRecord> ring = telemetry::audit().ring_snapshot();
  ASSERT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring[0].source, "rules");
  EXPECT_EQ(ring[0].chosen, coll::algorithm_info(alg).name);
  EXPECT_EQ(ring[0].msg_bytes, 300u);
  EXPECT_TRUE(ring[0].scores.empty());  // rule lookups carry no candidate scores
}

TEST_F(AuditTest, AcquisitionPolicyEmitsRoundRecords) {
  const coll::Collective c = coll::Collective::Bcast;
  const core::CollectiveModel model = tiny_trained_model(c);
  const core::FeatureSpace space({2, 4}, {4}, {64, 1024});
  const std::vector<bench::BenchmarkPoint> pool = space.candidates(c);
  StubEnvironment env;
  core::AcclaimAcquisition policy;
  util::Rng rng(5);

  telemetry::audit().enable_ring(16);
  const auto pick = policy.next(model, pool, env, rng);
  const std::vector<DecisionRecord> ring = telemetry::audit().ring_snapshot();
  ASSERT_EQ(ring.size(), 1u);
  const DecisionRecord& rec = ring[0];
  EXPECT_EQ(rec.kind, DecisionKind::Acquisition);
  EXPECT_EQ(rec.source, "policy");
  EXPECT_EQ(rec.round, 1);
  EXPECT_EQ(rec.pool_size, static_cast<std::int64_t>(pool.size()));
  EXPECT_EQ(rec.chosen, coll::algorithm_info(pick.point.algorithm).name);
  EXPECT_FALSE(rec.runner_up.empty());
  EXPECT_GE(rec.acq_score, 0.0);
  EXPECT_GT(rec.tree_evals, 0);
  // audit.records metric tracks emission cost observations.
  EXPECT_EQ(telemetry::metrics().counter("audit.records").value(), 1u);
}

}  // namespace

// Golden determinism suite: the parallelized training engine must produce
// bitwise-identical models, predictions, jackknife variances, and
// acquisition rankings for any `--threads` value, and identical results
// across two identically-seeded runs. These tests are the contract behind
// DESIGN.md "Threading & determinism" and run under TSan in CI.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "benchdata/point.hpp"
#include "collectives/types.hpp"
#include "core/acquisition.hpp"
#include "core/env.hpp"
#include "core/model.hpp"
#include "core/pipeline.hpp"
#include "core/scheduler.hpp"
#include "ml/forest.hpp"
#include "simnet/machine.hpp"
#include "simnet/topology.hpp"
#include "telemetry/audit.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#include <cstdio>
#include <fstream>

namespace {

using namespace acclaim;

/// Restores the global pool size on scope exit so test order never leaks.
class ThreadGuard {
 public:
  ThreadGuard() : original_(util::global_threads()) {}
  ~ThreadGuard() { util::set_global_threads(original_); }

 private:
  int original_;
};

constexpr int kThreadCounts[] = {1, 2, 8};

/// Synthetic regression problem with enough structure that trees actually
/// split: y = f(x) + seeded noise over a 3-feature grid.
void synthetic_data(std::vector<ml::FeatureRow>& X, std::vector<double>& y, std::uint64_t seed) {
  util::Rng rng(seed);
  X.clear();
  y.clear();
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform();
    const double b = rng.uniform() * 4.0;
    const double c = static_cast<double>(rng.uniform_int(0, 3));
    X.push_back({a, b, c});
    // c is a categorical feature holding exact small integers. acclaim-lint: allow(hyg-float-eq)
    y.push_back(std::sin(a * 6.0) + 0.5 * b + (c == 2.0 ? 1.5 : 0.0) + 0.05 * rng.uniform());
  }
}

/// Fits a forest at the given thread count and returns its serialized form.
std::string fit_forest_json(int threads, std::uint64_t seed) {
  util::set_global_threads(threads);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  synthetic_data(X, y, seed);
  ml::ForestParams params;
  params.n_trees = 32;
  ml::RandomForest forest;
  forest.fit(X, y, params, seed);
  return forest.to_json().dump();
}

TEST(GoldenDeterminism, ForestFitBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const std::string golden = fit_forest_json(1, 42);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(fit_forest_json(threads, 42), golden) << "threads=" << threads;
  }
}

TEST(GoldenDeterminism, TwoIdenticallySeededRunsIdentical) {
  ThreadGuard guard;
  EXPECT_EQ(fit_forest_json(8, 7), fit_forest_json(8, 7));
  EXPECT_NE(fit_forest_json(8, 7), fit_forest_json(8, 8)) << "seed must matter";
}

TEST(GoldenDeterminism, PredictionsAndJackknifeBitwiseIdentical) {
  ThreadGuard guard;
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  synthetic_data(X, y, 99);
  ml::ForestParams params;
  params.n_trees = 40;

  // Reference: fully sequential.
  util::set_global_threads(1);
  ml::RandomForest ref;
  ref.fit(X, y, params, 99);
  std::vector<std::vector<double>> ref_trees(X.size());
  std::vector<double> ref_mean(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) {
    ref_trees[i] = ref.predict_trees(X[i]);
    ref_mean[i] = ref.predict(X[i]);
  }

  for (int threads : kThreadCounts) {
    util::set_global_threads(threads);
    ml::RandomForest forest;
    forest.fit(X, y, params, 99);
    for (std::size_t i = 0; i < X.size(); ++i) {
      const std::vector<double> trees = forest.predict_trees(X[i]);
      ASSERT_EQ(trees.size(), ref_trees[i].size());
      for (std::size_t t = 0; t < trees.size(); ++t) {
        ASSERT_EQ(trees[t], ref_trees[i][t]) << "threads=" << threads << " row=" << i;
      }
      ASSERT_EQ(forest.predict(X[i]), ref_mean[i]) << "threads=" << threads;
      ASSERT_EQ(ml::jackknife_variance(trees), ml::jackknife_variance(ref_trees[i]));
    }
  }
}

/// Labeled points over every Bcast algorithm and a small scenario grid,
/// with a smooth synthetic cost so the model has signal.
std::vector<core::LabeledPoint> synthetic_bcast_points() {
  std::vector<core::LabeledPoint> data;
  const auto algorithms = coll::algorithms_for(coll::Collective::Bcast);
  for (int nodes : {2, 4, 8, 16}) {
    for (std::uint64_t msg : {64ull, 1024ull, 16384ull}) {
      std::size_t ai = 0;
      for (coll::Algorithm alg : algorithms) {
        core::LabeledPoint p;
        p.point.scenario.collective = coll::Collective::Bcast;
        p.point.scenario.nnodes = nodes;
        p.point.scenario.ppn = 4;
        p.point.scenario.msg_bytes = msg;
        p.point.algorithm = alg;
        p.time_us = 10.0 + static_cast<double>(msg) / 256.0 +
                    2.0 * nodes * (1.0 + 0.3 * static_cast<double>(ai));
        data.push_back(p);
        ++ai;
      }
    }
  }
  return data;
}

TEST(GoldenDeterminism, CollectiveModelVarianceSweepIdenticalAcrossThreads) {
  ThreadGuard guard;
  const std::vector<core::LabeledPoint> data = synthetic_bcast_points();
  std::vector<bench::BenchmarkPoint> pool;
  for (const auto& lp : data) {
    pool.push_back(lp.point);
  }

  util::set_global_threads(1);
  core::CollectiveModel ref(coll::Collective::Bcast);
  ref.fit(data, 1234);
  const std::vector<double> ref_var = ref.jackknife_variances(pool);
  const double ref_cum = ref.cumulative_variance(pool);
  ASSERT_EQ(ref_var.size(), pool.size());

  for (int threads : kThreadCounts) {
    util::set_global_threads(threads);
    core::CollectiveModel model(coll::Collective::Bcast);
    model.fit(data, 1234);
    EXPECT_EQ(model.to_json().dump(), ref.to_json().dump()) << "threads=" << threads;
    const std::vector<double> var = model.jackknife_variances(pool);
    ASSERT_EQ(var.size(), ref_var.size());
    for (std::size_t i = 0; i < var.size(); ++i) {
      ASSERT_EQ(var[i], ref_var[i]) << "threads=" << threads << " candidate=" << i;
    }
    EXPECT_EQ(model.cumulative_variance(pool), ref_cum) << "threads=" << threads;
  }
}

TEST(GoldenDeterminism, AcquisitionRankOrderIdenticalAcrossThreads) {
  ThreadGuard guard;
  const std::vector<core::LabeledPoint> data = synthetic_bcast_points();
  std::vector<bench::BenchmarkPoint> pool;
  for (const auto& lp : data) {
    pool.push_back(lp.point);
  }

  util::set_global_threads(1);
  core::CollectiveModel model(coll::Collective::Bcast);
  model.fit(data, 77);
  const core::AcclaimAcquisition policy;
  const std::vector<std::size_t> ref_rank = policy.rank(model, pool);
  ASSERT_EQ(ref_rank.size(), pool.size());

  for (int threads : kThreadCounts) {
    util::set_global_threads(threads);
    const std::vector<std::size_t> rank = policy.rank(model, pool);
    ASSERT_EQ(rank, ref_rank) << "threads=" << threads;
  }
}

TEST(GoldenDeterminism, EmptyCandidateListStaysLegalUntrained) {
  ThreadGuard guard;
  util::set_global_threads(4);
  const core::CollectiveModel untrained;
  EXPECT_TRUE(untrained.jackknife_variances({}).empty());
  EXPECT_EQ(untrained.cumulative_variance({}), 0.0);
}

/// Exact bit pattern of a double: the byte-compare primitive for values
/// where even 1-ulp drift across thread counts must fail the test.
std::string hex_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  std::ostringstream os;
  os << std::hex << bits;
  return os.str();
}

simnet::MachineConfig golden_machine() {
  simnet::MachineConfig m;
  m.total_nodes = 64;
  m.nodes_per_rack = 4;
  m.racks_per_pair = 2;
  return m;
}

/// A placed batch over the whole allocation: three co-runnable benchmarks of
/// different sizes plus their scheduler inputs.
std::vector<bench::BenchmarkPoint> golden_pool() {
  std::vector<bench::BenchmarkPoint> pool;
  std::size_t ai = 0;
  const auto algorithms = coll::algorithms_for(coll::Collective::Bcast);
  for (int nodes : {8, 4, 2, 4, 8, 2}) {
    bench::BenchmarkPoint p;
    p.scenario.collective = coll::Collective::Bcast;
    p.scenario.nnodes = nodes;
    p.scenario.ppn = 4;
    p.scenario.msg_bytes = 1024u << (ai % 4);
    p.algorithm = algorithms[ai % algorithms.size()];
    pool.push_back(p);
    ++ai;
  }
  return pool;
}

/// Byte-fingerprint of one planned-and-measured batch: every scheduler
/// decision, every predicted cost, and every simulated measurement.
std::string batch_fingerprint(int threads) {
  util::set_global_threads(threads);
  const simnet::Topology topo(golden_machine());
  std::vector<int> ids(32);
  for (int i = 0; i < 32; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  core::LiveEnvironment env(topo, alloc, /*job_seed=*/17);

  const std::vector<bench::BenchmarkPoint> pool = golden_pool();
  std::vector<std::size_t> ranked(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ranked[i] = i;
  }
  const core::CollectionScheduler scheduler;
  const core::CollectionBatch batch =
      scheduler.plan(pool, ranked, topo, alloc, env.solo_cost_oracle());
  const std::vector<bench::Measurement> ms = env.measure_scheduled(batch.items);

  std::ostringstream os;
  for (std::size_t i = 0; i < batch.items.size(); ++i) {
    os << batch.items[i].point.to_string() << "@" << batch.items[i].first_node << ":"
       << hex_bits(batch.predicted_us[i]) << ";";
  }
  os << "makespan=" << hex_bits(batch.predicted_makespan_us)
     << ",longest=" << batch.predicted_longest << "|";
  for (const bench::Measurement& m : ms) {
    os << hex_bits(m.mean_us) << "," << hex_bits(m.stddev_us) << "," << m.iterations << ","
       << hex_bits(m.collect_cost_s) << ";";
  }
  os << "clock=" << hex_bits(env.clock_s());
  return os.str();
}

TEST(GoldenDeterminism, ScheduledBatchBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  const std::string golden = batch_fingerprint(1);
  // The batch actually exercises the parallel paths (several items).
  EXPECT_GT(golden.size(), 100u);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(batch_fingerprint(threads), golden) << "threads=" << threads;
  }
}

/// Byte-fingerprint of a full tune-job run: allocation, per-collective
/// training trajectory, the simulated collection clock, and the generated
/// selection-rule document (which embeds every trained model's decisions).
std::string tune_job_fingerprint(int threads) {
  util::set_global_threads(threads);
  core::ActiveLearnerConfig learner;
  learner.forest.n_trees = 24;
  learner.max_points = 48;
  core::AcclaimPipeline pipeline(golden_machine(), learner);
  core::JobSpec spec;
  spec.collectives = {coll::Collective::Bcast};
  spec.nnodes = 8;
  spec.ppn = 4;
  spec.min_msg = 64;
  spec.max_msg = 16 * 1024;
  spec.job_seed = 9;
  spec.machine_busy_fraction = 0.2;
  const core::PipelineResult r = pipeline.run(spec);

  std::ostringstream os;
  for (int i = 0; i < r.allocation.num_nodes(); ++i) {
    os << r.allocation.node(i) << ",";
  }
  os << "|";
  for (const core::CollectiveTrainingSummary& t : r.training) {
    os << coll::collective_name(t.collective) << ":" << t.points << "," << t.iterations << ","
       << hex_bits(t.train_time_s) << "," << t.converged << "," << t.max_batch << ";";
  }
  os << "total=" << hex_bits(r.total_training_s) << "|" << r.config.dump();
  return os.str();
}

TEST(GoldenDeterminism, FullTuneJobBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  const std::string golden = tune_job_fingerprint(1);
  EXPECT_GT(golden.size(), 500u);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(tune_job_fingerprint(threads), golden) << "threads=" << threads;
  }
}

/// Raw bytes of the audit log a fixed-seed tune-job streams. DecisionRecords
/// carry no wall-clock data and every emission site sits on the serial
/// decision path, so the file must be bitwise-identical for any --threads.
std::string audited_tune_job_log(int threads) {
  util::set_global_threads(threads);
  const std::string path =
      testing::TempDir() + "audit_det_t" + std::to_string(threads) + ".jsonl";
  telemetry::audit().disable();  // resets the sequence counter
  telemetry::audit().open_stream(path);

  core::ActiveLearnerConfig learner;
  learner.forest.n_trees = 24;
  learner.max_points = 48;
  core::AcclaimPipeline pipeline(golden_machine(), learner);
  core::JobSpec spec;
  spec.collectives = {coll::Collective::Bcast};
  spec.nnodes = 8;
  spec.ppn = 4;
  spec.min_msg = 64;
  spec.max_msg = 16 * 1024;
  spec.job_seed = 9;
  spec.machine_busy_fraction = 0.2;
  pipeline.run(spec);

  telemetry::audit().disable();  // flushes and closes the stream
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  std::remove(path.c_str());
  return bytes.str();
}

TEST(GoldenDeterminism, AuditLogBitwiseIdenticalAcrossThreads) {
  ThreadGuard guard;
  const std::string golden = audited_tune_job_log(1);
  // The run must actually have produced decisions (acquisition rounds plus
  // the rule-generation selections).
  EXPECT_GT(golden.size(), 1000u);
  for (int threads : kThreadCounts) {
    EXPECT_EQ(audited_tune_job_log(threads), golden) << "threads=" << threads;
  }
}

// Differential goldens: re-run the same whole-pipeline fingerprints on the
// original pointer-chasing forest engine and byte-compare against the SoA
// default. Passing proves the flat-forest switch changed no selection
// decision, no trained model byte, and no audit-log byte.

TEST(FlatForestGolden, FullTuneJobIdenticalOnBothEngines) {
  ThreadGuard guard;
  std::string flat_fp, ptr_fp;
  {
    ml::ForestBackendGuard backend(ml::ForestBackend::Flat);
    flat_fp = tune_job_fingerprint(4);
  }
  {
    ml::ForestBackendGuard backend(ml::ForestBackend::Pointer);
    ptr_fp = tune_job_fingerprint(4);
  }
  EXPECT_GT(flat_fp.size(), 500u);
  EXPECT_EQ(flat_fp, ptr_fp);
}

TEST(FlatForestGolden, AuditLogIdenticalOnBothEngines) {
  ThreadGuard guard;
  std::string flat_log, ptr_log;
  {
    ml::ForestBackendGuard backend(ml::ForestBackend::Flat);
    flat_log = audited_tune_job_log(4);
  }
  {
    ml::ForestBackendGuard backend(ml::ForestBackend::Pointer);
    ptr_log = audited_tune_job_log(4);
  }
  EXPECT_GT(flat_log.size(), 1000u);
  EXPECT_EQ(flat_log, ptr_log);
}

TEST(FlatForestGolden, VarianceSweepAndSelectionIdenticalOnBothEngines) {
  ThreadGuard guard;
  util::set_global_threads(4);
  const std::vector<core::LabeledPoint> data = synthetic_bcast_points();
  std::vector<bench::BenchmarkPoint> pool;
  std::vector<bench::Scenario> scenarios;
  for (const auto& lp : data) {
    pool.push_back(lp.point);
    scenarios.push_back(lp.point.scenario);
  }
  core::CollectiveModel model(coll::Collective::Bcast);
  model.fit(data, 4321);

  std::vector<double> flat_var, ptr_var;
  std::vector<coll::Algorithm> flat_sel, ptr_sel;
  {
    ml::ForestBackendGuard backend(ml::ForestBackend::Flat);
    flat_var = model.jackknife_variances(pool);
    flat_sel = model.select_batch(scenarios);
  }
  {
    ml::ForestBackendGuard backend(ml::ForestBackend::Pointer);
    ptr_var = model.jackknife_variances(pool);
    ptr_sel = model.select_batch(scenarios);
  }
  ASSERT_EQ(flat_var.size(), pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ASSERT_EQ(flat_var[i], ptr_var[i]) << "candidate=" << i;
  }
  // select_batch is documented to return exactly select() per scenario, on
  // either engine.
  ASSERT_EQ(flat_sel.size(), scenarios.size());
  EXPECT_EQ(flat_sel, ptr_sel);
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_EQ(flat_sel[i], model.select(scenarios[i])) << "scenario=" << i;
  }
}

}  // namespace

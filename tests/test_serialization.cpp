// Tests for model persistence: trees, forests, and collective models must
// round-trip through JSON with bit-identical predictions.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/model.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;

struct Synth {
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
};

Synth make_synth(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Synth s;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0, 8);
    const double b = rng.uniform(0, 4);
    s.X.push_back({a, b});
    s.y.push_back(2.0 * a + (b > 2.0 ? 10.0 : 0.0) + rng.normal(0, 0.1));
  }
  return s;
}

TEST(TreeSerialization, RoundTripPredictionsIdentical) {
  const Synth s = make_synth(300, 1);
  ml::DecisionTree tree;
  util::Rng rng(2);
  tree.fit(s.X, s.y, ml::TreeParams{}, rng);
  const ml::DecisionTree back = ml::DecisionTree::from_json(tree.to_json());
  EXPECT_EQ(back.node_count(), tree.node_count());
  EXPECT_EQ(back.depth(), tree.depth());
  for (const auto& row : s.X) {
    EXPECT_DOUBLE_EQ(back.predict(row), tree.predict(row));
  }
  // Text round trip too.
  const auto reparsed = ml::DecisionTree::from_json(util::Json::parse(tree.to_json().dump()));
  EXPECT_DOUBLE_EQ(reparsed.predict(s.X[0]), tree.predict(s.X[0]));
}

TEST(TreeSerialization, RejectsMalformedDocuments) {
  ml::DecisionTree tree;
  EXPECT_THROW(tree.to_json(), InvalidArgument);  // unfitted
  EXPECT_THROW(ml::DecisionTree::from_json(util::Json::parse("{}")), NotFoundError);
  // Child index out of range.
  const std::string bad = R"({"n_features": 1, "depth": 1,
      "feature": [0], "threshold": [1.0], "left": [5], "right": [0],
      "value": [0.0]})";
  EXPECT_THROW(ml::DecisionTree::from_json(util::Json::parse(bad)), InvalidArgument);
  // Misaligned arrays.
  const std::string ragged = R"({"n_features": 1, "depth": 0,
      "feature": [-1, -1], "threshold": [0.0], "left": [-1], "right": [-1],
      "value": [1.0]})";
  EXPECT_THROW(ml::DecisionTree::from_json(util::Json::parse(ragged)), InvalidArgument);
}

TEST(ForestSerialization, RoundTripPredictionsIdentical) {
  const Synth s = make_synth(300, 3);
  ml::RandomForest forest;
  ml::ForestParams params;
  params.n_trees = 12;
  forest.fit(s.X, s.y, params, 4);
  const ml::RandomForest back = ml::RandomForest::from_json(forest.to_json());
  EXPECT_EQ(back.n_trees(), 12u);
  for (const auto& row : s.X) {
    EXPECT_DOUBLE_EQ(back.predict(row), forest.predict(row));
    EXPECT_EQ(back.predict_trees(row), forest.predict_trees(row));
  }
  EXPECT_THROW(ml::RandomForest::from_json(util::Json::parse("{\"model\": \"x\"}")),
               InvalidArgument);
}

TEST(ModelSerialization, RoundTripSelectionsIdentical) {
  const bench::Dataset& ds = testing_support::small_dataset();
  std::vector<core::LabeledPoint> data;
  for (const auto& p : ds.points(coll::Collective::Bcast)) {
    data.push_back({p, ds.at(p).mean_us});
  }
  core::CollectiveModel model(coll::Collective::Bcast);
  model.fit(data, 5);

  // Through a file, like a job would persist it.
  const std::string path =
      (std::filesystem::temp_directory_path() / "acclaim_model_test.json").string();
  model.to_json().dump_file(path);
  const core::CollectiveModel back =
      core::CollectiveModel::from_json(util::Json::parse_file(path));
  std::remove(path.c_str());

  EXPECT_EQ(back.collective(), coll::Collective::Bcast);
  EXPECT_EQ(back.training_points(), data.size());
  ASSERT_TRUE(back.trained());
  for (const auto& s : testing_support::small_space().scenarios(coll::Collective::Bcast)) {
    EXPECT_EQ(back.select(s), model.select(s)) << s.to_string();
  }
  for (const auto& p : ds.points(coll::Collective::Bcast)) {
    EXPECT_DOUBLE_EQ(back.predict_log_us(p), model.predict_log_us(p));
    EXPECT_DOUBLE_EQ(back.jackknife_variance(p), model.jackknife_variance(p));
  }
}

TEST(ModelSerialization, UntrainedAndWrongFormatRejected) {
  core::CollectiveModel model(coll::Collective::Reduce);
  EXPECT_THROW(model.to_json(), InvalidArgument);
  EXPECT_THROW(core::CollectiveModel::from_json(util::Json::parse("{\"model\": \"other\"}")),
               InvalidArgument);
}

}  // namespace

// Tests for the acclaimd serving core: snapshot publication (copy-on-write,
// concurrent readers), the sharded LRU decision cache, the NDJSON protocol's
// untrusted-input handling, and the serving-vs-direct differential guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "serve/daemon.hpp"
#include "serve/decision_cache.hpp"
#include "serve/model_store.hpp"
#include "serve/protocol.hpp"
#include "serve/serve_core.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

namespace {

using namespace acclaim;

/// A small trained model whose labels depend on `bias` so two fits of the
/// same collective can be told apart by their selections.
core::CollectiveModel trained_model(coll::Collective c, double bias = 2.0) {
  std::vector<core::LabeledPoint> data;
  double t = 10.0;
  int alg_index = 0;
  for (coll::Algorithm a : coll::algorithms_for(c)) {
    ++alg_index;
    for (int n : {2, 4, 8}) {
      for (std::uint64_t msg : {64ull, 1024ull, 65536ull}) {
        // With bias > 1 later algorithms get slower, with bias < 1 faster,
        // flipping which algorithm wins.
        const double cost = t * (bias > 1.0 ? alg_index * bias : 1.0 / (alg_index * -bias));
        data.push_back({bench::BenchmarkPoint{bench::Scenario{c, n, 4, msg}, a}, cost});
        t *= 1.13;
      }
    }
  }
  ml::ForestParams params = core::default_forest_params();
  params.n_trees = 10;
  core::CollectiveModel model(c, params);
  model.fit(data, 17);
  return model;
}

// ---------------------------------------------------------------------------
// Copy-on-write model contract

TEST(ModelCow, CopyKeepsAnsweringFromTheForestItWasCopiedWith) {
  core::CollectiveModel original = trained_model(coll::Collective::Bcast, 2.0);
  const core::CollectiveModel copy = original;  // shares the immutable forest

  const bench::Scenario s{coll::Collective::Bcast, 4, 4, 1024};
  const coll::Algorithm before = copy.select(s);
  EXPECT_EQ(original.select(s), before);

  // Refit the original with inverted labels; the copy must not move.
  core::CollectiveModel refit = trained_model(coll::Collective::Bcast, -2.0);
  std::vector<core::LabeledPoint> data;
  int alg_index = 0;
  for (coll::Algorithm a : coll::algorithms_for(coll::Collective::Bcast)) {
    ++alg_index;
    for (int n : {2, 4, 8}) {
      data.push_back({bench::BenchmarkPoint{bench::Scenario{coll::Collective::Bcast, n, 4, 512}, a},
                      1000.0 / alg_index});
    }
  }
  original.fit(data, 23);
  EXPECT_EQ(copy.select(s), before);
  // And the copy still reports its own training size.
  EXPECT_TRUE(copy.trained());
}

// ---------------------------------------------------------------------------
// Model store

TEST(ModelStore, PublishLookupAndWildcardResolve) {
  serve::ModelStore store(4);
  EXPECT_EQ(store.size(), 0u);
  const serve::ModelKey exact{coll::Collective::Bcast, 32, "default"};
  const serve::ModelKey wildcard{coll::Collective::Bcast, 0, "default"};

  const std::uint64_t v1 = store.publish(wildcard, trained_model(coll::Collective::Bcast));
  EXPECT_GE(v1, 1u);
  EXPECT_EQ(store.size(), 1u);

  // Exact key misses, wildcard fallback answers.
  EXPECT_EQ(store.lookup(exact), nullptr);
  const auto snap = store.resolve(exact);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, v1);
  EXPECT_EQ(snap->key.comm_size, 0);

  // Publishing the exact key shadows the wildcard for that scale.
  const std::uint64_t v2 = store.publish(exact, trained_model(coll::Collective::Bcast));
  EXPECT_GT(v2, v1);
  const auto snap2 = store.resolve(exact);
  ASSERT_NE(snap2, nullptr);
  EXPECT_EQ(snap2->version, v2);
  // Other scales still fall back to the wildcard.
  EXPECT_EQ(store.resolve({coll::Collective::Bcast, 64, "default"})->version, v1);
  // Unknown topology resolves nothing.
  EXPECT_EQ(store.resolve({coll::Collective::Bcast, 32, "torus"}), nullptr);
}

TEST(ModelStore, RejectsUntrainedAndMismatchedModels) {
  serve::ModelStore store(1);
  EXPECT_THROW(store.publish({coll::Collective::Bcast, 0, "default"}, core::CollectiveModel{}),
               InvalidArgument);
  EXPECT_THROW(store.publish({coll::Collective::Allreduce, 0, "default"},
                             trained_model(coll::Collective::Bcast)),
               InvalidArgument);
}

TEST(ModelStore, RepublishKeepsOldSnapshotAliveForHolders) {
  serve::ModelStore store(2);
  const serve::ModelKey key{coll::Collective::Bcast, 0, "default"};
  store.publish(key, trained_model(coll::Collective::Bcast, 2.0));
  const auto old_snap = store.lookup(key);
  ASSERT_NE(old_snap, nullptr);
  const bench::Scenario s{coll::Collective::Bcast, 4, 4, 1024};
  const coll::Algorithm old_answer = old_snap->model.select(s);

  store.publish(key, trained_model(coll::Collective::Bcast, -2.0));
  const auto new_snap = store.lookup(key);
  ASSERT_NE(new_snap, nullptr);
  EXPECT_GT(new_snap->version, old_snap->version);
  // The held snapshot still answers from the forest it was published with.
  EXPECT_EQ(old_snap->model.select(s), old_answer);
}

TEST(ModelStore, ConcurrentReadersNeverSeeATornSnapshot) {
  serve::ModelStore store(2);
  const serve::ModelKey key{coll::Collective::Bcast, 0, "default"};
  const core::CollectiveModel a = trained_model(coll::Collective::Bcast, 2.0);
  const core::CollectiveModel b = trained_model(coll::Collective::Bcast, -2.0);
  store.publish(key, a);

  const bench::Scenario s{coll::Collective::Bcast, 8, 4, 4096};
  const coll::Algorithm answer_a = a.select(s);
  const coll::Algorithm answer_b = b.select(s);

  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = store.resolve(key);
        if (!snap) {
          bad.fetch_add(1);
          continue;
        }
        // Whatever version we got, its selection must be one of the two
        // published models' answers, and the snapshot must be internally
        // consistent (version matches the model's bits).
        const coll::Algorithm got = snap->model.select(s);
        if (got != answer_a && got != answer_b) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (int i = 0; i < 25; ++i) {
    store.publish(key, i % 2 == 0 ? b : a);
  }
  stop.store(true);
  for (auto& r : readers) {
    r.join();
  }
  EXPECT_EQ(bad.load(), 0);
}

TEST(ModelStore, ConcurrentPublishersNeverLeaveAnOlderVersionVisible) {
  // Racing publishers can fetch versions in one order and store in another;
  // the store must keep the highest version visible regardless.
  serve::ModelStore store(2);
  const serve::ModelKey key{coll::Collective::Bcast, 0, "default"};
  const core::CollectiveModel model = trained_model(coll::Collective::Bcast);
  std::atomic<std::uint64_t> max_version{0};
  std::vector<std::thread> publishers;
  for (int t = 0; t < 4; ++t) {
    publishers.emplace_back([&] {
      for (int i = 0; i < 25; ++i) {
        const std::uint64_t v = store.publish(key, model);
        std::uint64_t seen = max_version.load();
        while (seen < v && !max_version.compare_exchange_weak(seen, v)) {
        }
      }
    });
  }
  for (auto& p : publishers) {
    p.join();
  }
  const auto snap = store.lookup(key);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, max_version.load());
}

TEST(ModelStore, KeyDistanceMetric) {
  using coll::Collective;
  const serve::ModelKey want{Collective::Bcast, 32, "bebop"};
  EXPECT_DOUBLE_EQ(serve::model_key_distance(want, want), 0.0);
  // |log2 comm_size| delta between concrete scales.
  EXPECT_DOUBLE_EQ(serve::model_key_distance(want, {Collective::Bcast, 64, "bebop"}), 1.0);
  EXPECT_DOUBLE_EQ(serve::model_key_distance(want, {Collective::Bcast, 8, "bebop"}), 2.0);
  // Wildcard scale transfers, but less sharply than an exact match.
  EXPECT_DOUBLE_EQ(serve::model_key_distance(want, {Collective::Bcast, 0, "bebop"}), 0.5);
  // Cross-topology transfer is a last resort.
  EXPECT_DOUBLE_EQ(serve::model_key_distance(want, {Collective::Bcast, 32, "theta"}), 16.0);
  EXPECT_DOUBLE_EQ(serve::model_key_distance(want, {Collective::Bcast, 64, "theta"}), 17.0);
}

TEST(ModelStore, NearestPicksClosestScaleWithDeterministicTies) {
  serve::ModelStore store;
  const core::CollectiveModel bcast = trained_model(coll::Collective::Bcast);
  store.publish({coll::Collective::Bcast, 8, "bebop"}, bcast);
  store.publish({coll::Collective::Bcast, 32, "bebop"}, bcast);
  store.publish({coll::Collective::Allgather, 16, "bebop"},
                trained_model(coll::Collective::Allgather));

  // Only same-collective snapshots are candidates: the exact-scale allgather
  // model must not shadow the bcast ones.
  const auto near = store.nearest({coll::Collective::Bcast, 16, "bebop"}, 8.0);
  ASSERT_NE(near.snapshot, nullptr);
  EXPECT_EQ(near.snapshot->key.collective, coll::Collective::Bcast);
  EXPECT_DOUBLE_EQ(near.distance, 1.0);
  // Both bcast keys are at distance 1; the tie breaks to the smaller key.
  EXPECT_EQ(near.snapshot->key.comm_size, 8);

  // The cutoff is inclusive and an out-of-range query comes back empty.
  EXPECT_NE(store.nearest({coll::Collective::Bcast, 16, "bebop"}, 1.0).snapshot, nullptr);
  EXPECT_EQ(store.nearest({coll::Collective::Bcast, 16, "bebop"}, 0.5).snapshot, nullptr);
  EXPECT_EQ(store.nearest({coll::Collective::Reduce, 16, "bebop"}, 8.0).snapshot, nullptr);
}

TEST(ModelStore, PublishWithSupportRoundTripsAndRepublishCanDropIt) {
  serve::ModelStore store;
  const serve::ModelKey key{coll::Collective::Bcast, 16, "bebop"};
  const core::CollectiveModel model = trained_model(coll::Collective::Bcast);

  auto support = std::make_shared<std::vector<core::LabeledPoint>>();
  support->push_back({bench::BenchmarkPoint{bench::Scenario{coll::Collective::Bcast, 4, 4, 64},
                                            coll::Algorithm::BcastBinomial},
                      12.5});
  const std::uint64_t v1 = store.publish(key, model, support);
  const auto snap = store.lookup(key);
  ASSERT_NE(snap, nullptr);
  ASSERT_NE(snap->support, nullptr);
  ASSERT_EQ(snap->support->size(), 1u);
  EXPECT_DOUBLE_EQ((*snap->support)[0].time_us, 12.5);

  // A republish without support replaces the payload along with the model.
  const std::uint64_t v2 = store.publish(key, model);
  EXPECT_GT(v2, v1);
  const auto fresh = store.lookup(key);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(fresh->support, nullptr);
  // The old snapshot held by a reader keeps its payload.
  EXPECT_NE(snap->support, nullptr);
}

// ---------------------------------------------------------------------------
// Decision cache

TEST(DecisionCache, QuantizationIsLossless) {
  // Distinct integer scenarios must produce distinct keys — this is what
  // makes cached answers bitwise-identical to direct selection.
  std::set<serve::DecisionKey> keys;
  std::size_t scenarios = 0;
  for (int n : {2, 3, 4, 63, 64}) {
    for (int ppn : {1, 2, 16, 17}) {
      for (std::uint64_t msg : {8ull, 9ull, 1024ull, 123457ull, 1048576ull}) {
        for (coll::Collective c : {coll::Collective::Bcast, coll::Collective::Allreduce}) {
          keys.insert(serve::quantize(1, bench::Scenario{c, n, ppn, msg}));
          ++scenarios;
        }
      }
    }
  }
  EXPECT_EQ(keys.size(), scenarios);
  // A republished snapshot changes the key, invalidating stale decisions.
  const bench::Scenario s{coll::Collective::Bcast, 4, 4, 1024};
  EXPECT_NE(serve::quantize(1, s), serve::quantize(2, s));
}

TEST(DecisionCache, HitMissAndEvictionCounters) {
  serve::DecisionCache cache(4, 1);  // one shard: LRU order is global
  const auto key = [](std::uint64_t msg) {
    return serve::quantize(1, bench::Scenario{coll::Collective::Bcast, 2, 2, msg});
  };
  EXPECT_FALSE(cache.get(key(1)).has_value());
  for (std::uint64_t m = 1; m <= 4; ++m) {
    cache.put(key(m), coll::Algorithm::BcastBinomial);
  }
  EXPECT_TRUE(cache.get(key(1)).has_value());  // refreshes 1 to MRU
  cache.put(key(5), coll::Algorithm::BcastBinomial);  // evicts 2 (LRU), not 1
  EXPECT_TRUE(cache.get(key(1)).has_value());
  EXPECT_FALSE(cache.get(key(2)).has_value());
  EXPECT_TRUE(cache.get(key(5)).has_value());

  const auto st = cache.stats();
  EXPECT_EQ(st.capacity, 4u);
  EXPECT_EQ(st.entries, 4u);
  EXPECT_EQ(st.evictions, 1u);
  EXPECT_EQ(st.hits, 3u);
  EXPECT_EQ(st.misses, 2u);
}

TEST(DecisionCache, CapacityHoldsAcrossShards) {
  serve::DecisionCache cache(64, 8);
  for (std::uint64_t m = 1; m <= 1000; ++m) {
    cache.put(serve::quantize(1, bench::Scenario{coll::Collective::Bcast, 2, 2, m}),
              coll::Algorithm::BcastBinomial);
  }
  const auto st = cache.stats();
  EXPECT_LE(st.entries, 64u);
  EXPECT_GE(st.evictions, 1000u - 64u - 8u);  // slack: per-shard splits round up
}

// ---------------------------------------------------------------------------
// Serving core: differential guarantee

TEST(ServeCore, ServingMatchesDirectSelectionOnHitAndMissPaths) {
  serve::ServeConfig cfg;
  cfg.cache_capacity = 32;  // small enough to force evictions mid-test
  serve::ServeCore core(cfg);
  const core::CollectiveModel model = trained_model(coll::Collective::Bcast);
  core.publish({coll::Collective::Bcast, 0, "default"}, model);

  std::vector<bench::Scenario> scenarios;
  for (int n : {2, 3, 4, 8, 16, 33}) {
    for (int ppn : {1, 4, 16}) {
      for (std::uint64_t msg : {8ull, 100ull, 1024ull, 9999ull, 1048576ull}) {
        scenarios.push_back({coll::Collective::Bcast, n, ppn, msg});
      }
    }
  }
  // Miss path (first pass) and hit path (second pass) both match direct
  // selection bit for bit.
  for (int pass = 0; pass < 2; ++pass) {
    for (const bench::Scenario& s : scenarios) {
      EXPECT_EQ(core.select(s).algorithm, model.select(s)) << s.to_string();
    }
  }
  // Batched path matches too.
  const std::vector<serve::Decision> batched = core.select_batch(scenarios);
  const std::vector<coll::Algorithm> direct = model.select_batch(scenarios);
  ASSERT_EQ(batched.size(), direct.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i].algorithm, direct[i]) << scenarios[i].to_string();
  }
  const auto st = core.cache_stats();
  EXPECT_GT(st.hits, 0u);
  EXPECT_GT(st.misses, 0u);
}

TEST(ServeCore, SecondIdenticalQueryIsACacheHit) {
  serve::ServeCore core;
  core.publish({coll::Collective::Allreduce, 0, "default"},
               trained_model(coll::Collective::Allreduce));
  const bench::Scenario s{coll::Collective::Allreduce, 4, 4, 2048};
  const serve::Decision first = core.select(s);
  EXPECT_FALSE(first.cache_hit);
  const serve::Decision second = core.select(s);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.algorithm, second.algorithm);
  EXPECT_EQ(first.version, second.version);
}

TEST(ServeCore, UnservedScenarioThrowsNotFound) {
  serve::ServeCore core;
  EXPECT_THROW(core.select({coll::Collective::Bcast, 4, 4, 1024}), NotFoundError);
}

// ---------------------------------------------------------------------------
// Protocol: untrusted input never crashes

TEST(Protocol, MalformedRequestsThrowTypedErrors) {
  EXPECT_THROW(serve::parse_request("{bad json"), ParseError);
  EXPECT_THROW(serve::parse_request("[1,2]"), InvalidArgument);
  EXPECT_THROW(serve::parse_request("{}"), InvalidArgument);
  EXPECT_THROW(serve::parse_request(R"({"op":"warp"})"), InvalidArgument);
  EXPECT_THROW(serve::parse_request(R"({"op":"query"})"), InvalidArgument);
  EXPECT_THROW(
      serve::parse_request(R"({"op":"query","collective":"bcast","nodes":0,"ppn":1,"msg":8})"),
      InvalidArgument);
  EXPECT_THROW(
      serve::parse_request(
          R"({"op":"query","collective":"bcast","nodes":4.5,"ppn":1,"msg":8})"),
      InvalidArgument);
  EXPECT_THROW(
      serve::parse_request(
          R"({"op":"query","collective":"bcast","nodes":99999999,"ppn":1,"msg":8})"),
      InvalidArgument);
  EXPECT_THROW(
      serve::parse_request(R"({"op":"query","collective":"nope","nodes":4,"ppn":1,"msg":8})"),
      InvalidArgument);
  EXPECT_THROW(serve::parse_request(R"({"op":"batch","queries":[]})"), InvalidArgument);
  EXPECT_THROW(serve::parse_request(R"({"op":"publish","path":""})"), InvalidArgument);
}

TEST(Protocol, HugeDoublesAreRejectedNotCastToInt) {
  // 1e300 is finite but unrepresentable in int64: the parser must range-check
  // in the double domain, never cast first.
  for (const char* v : {"1e300", "-1e300", "9.3e18", "1e18.5"}) {
    EXPECT_THROW(serve::parse_request(std::string(R"({"op":"query","collective":"bcast",)") +
                                      R"("nodes":)" + v + R"(,"ppn":1,"msg":8})"),
                 acclaim::Error)
        << v;
  }
}

TEST(Protocol, RankProductBeyondCapIsRejected) {
  // nodes and ppn each sit at their individual caps, so only the joint
  // kMaxRanks check keeps Scenario::nranks() (int) from overflowing.
  EXPECT_THROW(serve::parse_request(
                   R"({"op":"query","collective":"bcast","nodes":4194304,"ppn":65536,"msg":8})"),
               InvalidArgument);
  EXPECT_THROW(serve::parse_request(
                   R"({"op":"publish","path":"m.json","nodes":4194304,"ppn":65536})"),
               InvalidArgument);
  // At the cap exactly (2^12 x 2^16 = 2^28 = kMaxRanks) parses fine.
  const serve::Request req = serve::parse_request(
      R"({"op":"query","collective":"bcast","nodes":4096,"ppn":65536,"msg":8})");
  EXPECT_EQ(std::int64_t{req.queries[0].nnodes} * req.queries[0].ppn, serve::kMaxRanks);
}

TEST(Protocol, PublishRequiresNodesAndPpnTogether) {
  // One without the other would silently publish under the wildcard scale.
  EXPECT_THROW(serve::parse_request(R"({"op":"publish","path":"m.json","nodes":4})"),
               InvalidArgument);
  EXPECT_THROW(serve::parse_request(R"({"op":"publish","path":"m.json","ppn":8})"),
               InvalidArgument);
  const serve::Request both =
      serve::parse_request(R"({"op":"publish","path":"m.json","nodes":4,"ppn":8})");
  EXPECT_EQ(both.nodes, 4);
  EXPECT_EQ(both.ppn, 8);
  const serve::Request neither = serve::parse_request(R"({"op":"publish","path":"m.json"})");
  EXPECT_EQ(neither.nodes, 0);
  EXPECT_EQ(neither.ppn, 0);
}

TEST(Protocol, RoundTripsWellFormedRequests) {
  const serve::Request req = serve::parse_request(
      R"({"op":"query","collective":"allreduce","nodes":16,"ppn":32,"msg":65536})");
  EXPECT_EQ(req.op, serve::Op::Query);
  ASSERT_EQ(req.queries.size(), 1u);
  EXPECT_EQ(req.queries[0].collective, coll::Collective::Allreduce);
  EXPECT_EQ(req.queries[0].nnodes, 16);
  EXPECT_EQ(req.queries[0].ppn, 32);
  EXPECT_EQ(req.queries[0].msg_bytes, 65536u);
  // Serialize and reparse.
  const serve::Request again = serve::parse_request(serve::request_to_json(req).dump());
  EXPECT_EQ(again.queries[0].msg_bytes, req.queries[0].msg_bytes);
}

// ---------------------------------------------------------------------------
// Daemon

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() : core_(), daemon_(core_) {
    core_.publish({coll::Collective::Bcast, 0, "default"},
                  trained_model(coll::Collective::Bcast));
  }

  util::Json respond(const std::string& line) {
    return util::Json::parse(daemon_.handle_line(line));
  }

  serve::ServeCore core_;
  serve::Daemon daemon_;
};

TEST_F(DaemonTest, AnswersQueriesWithTheModelsAnswer) {
  const util::Json r =
      respond(R"({"op":"query","collective":"bcast","nodes":4,"ppn":8,"msg":4096})");
  ASSERT_TRUE(r.at("ok").as_bool());
  const bench::Scenario s{coll::Collective::Bcast, 4, 8, 4096};
  const auto snap = core_.store().resolve({coll::Collective::Bcast, 32, "default"});
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(r.at("algorithm").as_string(), coll::algorithm_info(snap->model.select(s)).name);
}

TEST_F(DaemonTest, MalformedLinesBecomeErrorResponsesNotCrashes) {
  for (const char* line :
       {"nonsense", "{", R"({"op":"query"})", R"({"op":"query","collective":"bcast",
        "nodes":-1,"ppn":8,"msg":4096})",
        R"({"op":"publish","path":"/nonexistent/model.json"})"}) {
    const util::Json r = respond(line);
    EXPECT_FALSE(r.at("ok").as_bool()) << line;
    EXPECT_FALSE(r.at("error").as_string().empty()) << line;
  }
  EXPECT_FALSE(daemon_.shutdown_requested());
}

TEST_F(DaemonTest, QueryForUnservedCollectiveIsAnErrorResponse) {
  const util::Json r =
      respond(R"({"op":"query","collective":"reduce","nodes":4,"ppn":8,"msg":4096})");
  EXPECT_FALSE(r.at("ok").as_bool());
}

TEST_F(DaemonTest, BatchReturnsOneResultPerQueryInOrder) {
  const util::Json r = respond(
      R"({"op":"batch","queries":[)"
      R"({"collective":"bcast","nodes":2,"ppn":4,"msg":64},)"
      R"({"collective":"bcast","nodes":8,"ppn":4,"msg":65536}]})");
  ASSERT_TRUE(r.at("ok").as_bool());
  const util::JsonArray& results = r.at("results").as_array();
  ASSERT_EQ(results.size(), 2u);
  const auto snap = core_.store().resolve({coll::Collective::Bcast, 8, "default"});
  EXPECT_EQ(results[0].at("algorithm").as_string(),
            coll::algorithm_info(snap->model.select({coll::Collective::Bcast, 2, 4, 64})).name);
  EXPECT_EQ(
      results[1].at("algorithm").as_string(),
      coll::algorithm_info(snap->model.select({coll::Collective::Bcast, 8, 4, 65536})).name);
}

TEST_F(DaemonTest, StatsReportsCacheCounters) {
  respond(R"({"op":"query","collective":"bcast","nodes":4,"ppn":8,"msg":4096})");
  respond(R"({"op":"query","collective":"bcast","nodes":4,"ppn":8,"msg":4096})");
  const util::Json r = respond(R"({"op":"stats"})");
  ASSERT_TRUE(r.at("ok").as_bool());
  EXPECT_EQ(r.at("models").as_number(), 1.0);
  EXPECT_GE(r.at("cache_hits").as_number(), 1.0);
  EXPECT_GE(r.at("cache_misses").as_number(), 1.0);
}

TEST_F(DaemonTest, UnixSocketRefusesToClobberARegularFile) {
  const std::string path = ::testing::TempDir() + "acclaimd_not_a_socket";
  {
    std::ofstream f(path);
    f << "precious data\n";
  }
  EXPECT_THROW(daemon_.serve_unix_socket(path), IoError);
  // The file survives the refused bind.
  std::ifstream back(path);
  std::string word;
  back >> word;
  EXPECT_EQ(word, "precious");
  std::remove(path.c_str());
}

TEST_F(DaemonTest, ServeStreamHandlesLinesUntilShutdown) {
  std::istringstream in(
      "{\"op\":\"ping\"}\n"
      "not json at all\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"ping\"}\n");  // never reached: shutdown stops the loop
  std::ostringstream out;
  const std::uint64_t handled = daemon_.serve_stream(in, out);
  EXPECT_EQ(handled, 3u);
  EXPECT_TRUE(daemon_.shutdown_requested());
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(util::Json::parse(line).at("ok").as_bool());
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_FALSE(util::Json::parse(line).at("ok").as_bool());
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_TRUE(util::Json::parse(line).at("ok").as_bool());
  EXPECT_FALSE(std::getline(lines, line));
}

}  // namespace

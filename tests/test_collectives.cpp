// Correctness tests for every collective algorithm: schedules are executed
// byte-accurately by the DataExecutor and the final buffers are compared
// against the mathematical definition of the collective. Parameterized over
// algorithm x rank count (power-of-two and non-power-of-two) x element count
// (divisible and ragged) x root.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "collectives/types.hpp"
#include "minimpi/data_executor.hpp"
#include "minimpi/ops.hpp"
#include "util/error.hpp"

namespace {

using acclaim::coll::Algorithm;
using acclaim::coll::algorithm_info;
using acclaim::coll::buffer_requirements;
using acclaim::coll::Collective;
using acclaim::coll::CollParams;
using acclaim::minimpi::BufKind;
using acclaim::minimpi::DataExecutor;
using acclaim::minimpi::ReduceOp;

/// Deterministic per-rank input pattern.
double input_value(int rank, std::uint64_t i) {
  return static_cast<double>(rank + 1) * 1000.0 + static_cast<double>(i);
}

/// Builds the executor, initializes inputs per the collective's buffer
/// convention, runs the schedule, and returns the executor for inspection.
DataExecutor run_collective(Algorithm alg, const CollParams& p, ReduceOp op = ReduceOp::Sum) {
  const Collective c = algorithm_info(alg).collective;
  const auto sizes = buffer_requirements(c, p);
  DataExecutor exec(p.nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes, op);
  if (c == Collective::Bcast) {
    auto& payload = exec.buffer(p.root, BufKind::Recv);
    for (std::uint64_t i = 0; i < p.count; ++i) {
      payload[i] = input_value(p.root, i);
    }
  } else {
    for (int r = 0; r < p.nranks; ++r) {
      auto& send = exec.buffer(r, BufKind::Send);
      for (std::uint64_t i = 0; i < p.count; ++i) {
        send[i] = input_value(r, i);
      }
    }
  }
  build_schedule(alg, p, exec);
  return exec;
}

void expect_bcast_result(const DataExecutor& exec, const CollParams& p) {
  for (int r = 0; r < p.nranks; ++r) {
    const auto& recv = exec.buffer(r, BufKind::Recv);
    for (std::uint64_t i = 0; i < p.count; ++i) {
      ASSERT_DOUBLE_EQ(recv[i], input_value(p.root, i))
          << "rank " << r << " element " << i;
    }
  }
}

void expect_reduce_result(const DataExecutor& exec, const CollParams& p, ReduceOp op,
                          bool everywhere) {
  for (int r = 0; r < p.nranks; ++r) {
    if (!everywhere && r != p.root) {
      continue;
    }
    const auto& recv = exec.buffer(r, BufKind::Recv);
    for (std::uint64_t i = 0; i < p.count; ++i) {
      double expect = acclaim::minimpi::reduce_identity(op);
      for (int s = 0; s < p.nranks; ++s) {
        expect = acclaim::minimpi::reduce_scalar(op, expect, input_value(s, i));
      }
      ASSERT_NEAR(recv[i], expect, 1e-6 * std::abs(expect) + 1e-9)
          << "rank " << r << " element " << i;
    }
  }
}

void expect_allgather_result(const DataExecutor& exec, const CollParams& p) {
  for (int r = 0; r < p.nranks; ++r) {
    const auto& recv = exec.buffer(r, BufKind::Recv);
    for (int s = 0; s < p.nranks; ++s) {
      for (std::uint64_t i = 0; i < p.count; ++i) {
        ASSERT_DOUBLE_EQ(recv[static_cast<std::uint64_t>(s) * p.count + i], input_value(s, i))
            << "rank " << r << " source " << s << " element " << i;
      }
    }
  }
}

struct Case {
  Algorithm alg;
  int nranks;
  std::uint64_t count;
  int root;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  const auto& ai = algorithm_info(c.alg);
  return std::string(acclaim::coll::collective_name(ai.collective)) + "_" + ai.name + "_n" +
         std::to_string(c.nranks) + "_c" + std::to_string(c.count) + "_r" +
         std::to_string(c.root);
}

class CollectiveCorrectness : public testing::TestWithParam<Case> {};

TEST_P(CollectiveCorrectness, ProducesDefinedResult) {
  const Case& c = GetParam();
  CollParams p;
  p.nranks = c.nranks;
  p.count = c.count;
  p.type_size = 8;
  p.root = c.root;
  const Collective coll = algorithm_info(c.alg).collective;
  const DataExecutor exec = run_collective(c.alg, p);
  switch (coll) {
    case Collective::Bcast: expect_bcast_result(exec, p); break;
    case Collective::Reduce: expect_reduce_result(exec, p, ReduceOp::Sum, false); break;
    case Collective::Allreduce: expect_reduce_result(exec, p, ReduceOp::Sum, true); break;
    case Collective::Allgather: expect_allgather_result(exec, p); break;
    default: FAIL() << "unexpected collective in the paper-algorithm fixture";
  }
}

std::vector<Case> make_cases() {
  // Only the paper's ten algorithms use this fixture's buffer conventions;
  // the extended collectives are covered by test_collectives_extended.cpp.
  std::vector<Case> cases;
  const std::vector<int> rank_counts = {1, 2, 3, 4, 5, 7, 8, 11, 13, 16, 17, 24, 32};
  const std::vector<std::uint64_t> counts = {1, 3, 8, 17, 64, 100};
  for (const auto& info : acclaim::coll::all_algorithms()) {
    const auto& paper = acclaim::coll::paper_collectives();
    if (std::find(paper.begin(), paper.end(), info.collective) == paper.end()) {
      continue;
    }
    const bool rooted =
        info.collective == Collective::Bcast || info.collective == Collective::Reduce;
    for (int n : rank_counts) {
      for (std::uint64_t cnt : counts) {
        // Keep the matrix meaningful but bounded: sweep all counts at a few
        // rank counts, and all rank counts at a couple of counts.
        const bool full_count_sweep = (n == 5 || n == 8 || n == 16);
        if (!full_count_sweep && cnt != 8 && cnt != 17) {
          continue;
        }
        cases.push_back({info.alg, n, cnt, 0});
        if (rooted && n >= 3 && (cnt == 8 || cnt == 17)) {
          cases.push_back({info.alg, n, cnt, n / 2});
          cases.push_back({info.alg, n, cnt, n - 1});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CollectiveCorrectness, testing::ValuesIn(make_cases()),
                         case_name);

// Reductions must be correct for every supported op, not just Sum.
using ReduceOpCase = std::tuple<Algorithm, ReduceOp, int>;
class ReduceOps : public testing::TestWithParam<ReduceOpCase> {};

TEST_P(ReduceOps, MatchesScalarOracle) {
  const auto [alg, op, n] = GetParam();
  CollParams p;
  p.nranks = n;
  p.count = 24;
  p.type_size = 8;
  p.root = 0;
  const DataExecutor exec = run_collective(alg, p, op);
  const Collective coll = algorithm_info(alg).collective;
  expect_reduce_result(exec, p, op, coll == Collective::Allreduce);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, ReduceOps,
    testing::Combine(testing::Values(Algorithm::ReduceBinomial, Algorithm::ReduceScatterGather,
                                     Algorithm::AllreduceRecursiveDoubling,
                                     Algorithm::AllreduceReduceScatterAllgather),
                     testing::Values(ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min),
                     testing::Values(6, 8, 13)),
    [](const testing::TestParamInfo<ReduceOpCase>& info) {
      return std::string(algorithm_info(std::get<0>(info.param)).name) + "_" +
             acclaim::minimpi::reduce_op_name(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

TEST(CollectiveRegistry, PaperAlgorithmsAcrossFourCollectives) {
  // The paper's ten algorithms over its four collectives; the library's
  // full registry is larger (see test_collectives_extended.cpp).
  std::size_t paper_algs = 0;
  for (Collective c : acclaim::coll::paper_collectives()) {
    paper_algs += acclaim::coll::algorithms_for(c).size();
  }
  EXPECT_EQ(paper_algs, 10u);
  EXPECT_EQ(acclaim::coll::algorithms_for(Collective::Bcast).size(), 3u);
  EXPECT_EQ(acclaim::coll::algorithms_for(Collective::Reduce).size(), 2u);
  EXPECT_EQ(acclaim::coll::algorithms_for(Collective::Allreduce).size(), 2u);
  EXPECT_EQ(acclaim::coll::algorithms_for(Collective::Allgather).size(), 3u);
}

TEST(CollectiveRegistry, ParseRoundTrips) {
  for (const auto& info : acclaim::coll::all_algorithms()) {
    EXPECT_EQ(acclaim::coll::parse_algorithm(info.collective, info.name), info.alg);
  }
  EXPECT_THROW(acclaim::coll::parse_algorithm(Collective::Bcast, "ring"),
               acclaim::NotFoundError);
  EXPECT_EQ(acclaim::coll::parse_collective("bcast"), Collective::Bcast);
  EXPECT_THROW(acclaim::coll::parse_collective("alltoallv"), acclaim::InvalidArgument);
}

TEST(CollectiveParams, ValidationRejectsBadInputs) {
  CollParams p;
  p.nranks = 0;
  EXPECT_THROW(p.validate(), acclaim::InvalidArgument);
  p.nranks = 4;
  p.count = 0;
  EXPECT_THROW(p.validate(), acclaim::InvalidArgument);
  p.count = 1;
  p.root = 4;
  EXPECT_THROW(p.validate(), acclaim::InvalidArgument);
  p.root = 3;
  EXPECT_NO_THROW(p.validate());
}

}  // namespace

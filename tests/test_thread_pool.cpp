// Unit tests for the compute thread pool: task submission, parallel_for
// coverage, exception propagation, reentrancy, shutdown semantics, stats,
// and the global-pool controls the CLI/bench `--threads` flag drives.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace acclaim;

TEST(ThreadPool, SubmitReturnsValueThroughFuture) {
  util::ThreadPool pool(4);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitRunsInlineWithoutWorkers) {
  util::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
  EXPECT_EQ(pool.stats().tasks_executed, 1u);  // ran inline, still counted
  EXPECT_EQ(pool.stats().queue_peak, 0u);      // but never queued
}

TEST(ThreadPool, SizeClampsToAtLeastOne) {
  util::ThreadPool pool(-3);
  EXPECT_EQ(pool.size(), 1);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    util::ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleRanges) {
  util::ThreadPool pool(4);
  int calls = 0;
  // Ranges of size <= 1 run as a single chunk, so these "shared" writes are
  // exclusive by construction. acclaim-lint: allow(par-shared-write)
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::size_t seen = 0;
  // acclaim-lint: allow(par-shared-write)
  pool.parallel_for(7, 8, [&](std::size_t i) { seen = i; ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, 7u);
}

TEST(ThreadPool, ParallelForRespectsGrain) {
  util::ThreadPool pool(4);
  constexpr std::size_t kN = 256;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) { hits[i].fetch_add(1); }, /*grain=*/32);
  const int total = std::accumulate(hits.begin(), hits.end(), 0,
                                    [](int acc, const std::atomic<int>& h) { return acc + h.load(); });
  EXPECT_EQ(total, static_cast<int>(kN));
}

TEST(ThreadPool, SubmitExceptionSurfacesThroughFuture) {
  util::ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("task boom"); });
  EXPECT_THROW(
      {
        try {
          fut.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task boom");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, ParallelForRethrowsBodyException) {
  for (int threads : {1, 4}) {
    util::ThreadPool pool(threads);
    EXPECT_THROW(
        {
          try {
            pool.parallel_for(0, 100, [](std::size_t i) {
              if (i == 37) {
                throw std::runtime_error("loop boom");
              }
            });
          } catch (const std::runtime_error& e) {
            EXPECT_STREQ(e.what(), "loop boom");
            throw;
          }
        },
        std::runtime_error);
  }
}

TEST(ThreadPool, ParallelForExceptionCancelsRemainingChunks) {
  util::ThreadPool pool(2);
  std::atomic<int> executed{0};
  constexpr std::size_t kN = 100000;
  try {
    pool.parallel_for(0, kN, [&](std::size_t i) {
      if (i == 0) {
        throw std::runtime_error("early");
      }
      executed.fetch_add(1);
    });
    FAIL() << "expected rethrow";
    // Arriving here (instead of FAIL) is the assertion. acclaim-lint: allow(hyg-catch-log)
  } catch (const std::runtime_error&) {
  }
  // The in-flight chunks finish, everything after the cancellation is
  // skipped; with any sensible scheduling most of the range never runs.
  EXPECT_LT(executed.load(), static_cast<int>(kN));
}

TEST(ThreadPool, ReentrantParallelForRunsInline) {
  util::ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for(0, kOuter, [&](std::size_t o) {
    pool.parallel_for(0, kInner, [&](std::size_t i) { hits[o * kInner + i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "flat index " << i;
  }
  // The inner loops must have run inline on their workers — they count as
  // inline runs in the stats.
  EXPECT_GE(pool.stats().inline_runs, 1u);
}

TEST(ThreadPool, InPoolOnlyTrueOnWorkers) {
  util::ThreadPool pool(4);
  EXPECT_FALSE(pool.in_pool());
  auto fut = pool.submit([&] { return pool.in_pool(); });
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPool, ShutdownIsIdempotentAndDestructorSafe) {
  util::ThreadPool pool(4);
  pool.submit([] { return 1; }).get();
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op
  EXPECT_THROW(pool.submit([] { return 2; }), InvalidArgument);
  EXPECT_THROW(pool.parallel_for(0, 4, [](std::size_t) {}), InvalidArgument);
  // destructor runs shutdown a third time on scope exit
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futs;
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      futs.push_back(pool.submit([&] { ran.fetch_add(1); }));
    }
    pool.shutdown();
  }
  for (auto& f : futs) {
    f.get();  // every queued task completed, none dropped
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, StatsCountWork) {
  util::ThreadPool pool(4);
  const auto before = pool.stats();
  EXPECT_EQ(before.threads, 4);
  EXPECT_EQ(before.parallel_fors, 0u);
  pool.parallel_for(0, 64, [](std::size_t) {});
  pool.submit([] {}).get();
  const auto after = pool.stats();
  EXPECT_EQ(after.parallel_fors, 1u);
  EXPECT_GE(after.tasks_executed, 1u);
  EXPECT_GE(after.queue_peak, 0u);
}

TEST(ThreadPool, GlobalPoolResize) {
  const int original = util::global_threads();
  util::set_global_threads(3);
  EXPECT_EQ(util::global_threads(), 3);
  EXPECT_EQ(util::global_pool().size(), 3);
  std::vector<std::atomic<int>> hits(128);
  util::global_pool().parallel_for(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    ASSERT_EQ(h.load(), 1);
  }
  util::set_global_threads(0);  // restore the default
  EXPECT_GE(util::global_threads(), 1);
  util::set_global_threads(original);
}

TEST(ThreadPool, HardwareThreadsPositive) { EXPECT_GE(util::hardware_threads(), 1); }

// Regression: ACCLAIM_THREADS used to go through atoi — garbage fell back
// silently, and trailing junk ("4x") was accepted as 4. Malformed values now
// warn and take the hardware default; well-formed values still apply.
class AcclaimThreadsEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* prior = std::getenv("ACCLAIM_THREADS");
    had_prior_ = prior != nullptr;
    if (had_prior_) {
      prior_ = prior;
    }
  }
  void TearDown() override {
    if (had_prior_) {
      setenv("ACCLAIM_THREADS", prior_.c_str(), 1);
    } else {
      unsetenv("ACCLAIM_THREADS");
    }
    util::set_global_threads(0);
  }

  /// The size the global pool would resolve with the current environment.
  static int resolved() {
    util::set_global_threads(0);  // drop any explicit request, re-read env
    return util::global_threads();
  }

  bool had_prior_ = false;
  std::string prior_;
};

TEST_F(AcclaimThreadsEnv, AcceptsWellFormedValues) {
  setenv("ACCLAIM_THREADS", "3", 1);
  EXPECT_EQ(resolved(), 3);
}

TEST_F(AcclaimThreadsEnv, RejectsTrailingGarbage) {
  setenv("ACCLAIM_THREADS", "4x", 1);
  EXPECT_EQ(resolved(), util::hardware_threads());
}

TEST_F(AcclaimThreadsEnv, RejectsNonNumericNegativeZeroAndAbsurd) {
  for (const char* bad : {"abc", "-2", "0", "1000000", " 8 "}) {
    setenv("ACCLAIM_THREADS", bad, 1);
    EXPECT_EQ(resolved(), util::hardware_threads()) << "ACCLAIM_THREADS=" << bad;
  }
}

TEST(RngStream, PureFunctionOfSeedAndIndex) {
  const auto a = util::Rng::stream(123, 7).next_u64();
  const auto b = util::Rng::stream(123, 7).next_u64();
  EXPECT_EQ(a, b);
  EXPECT_NE(util::Rng::stream(123, 8).next_u64(), a);
  EXPECT_NE(util::Rng::stream(124, 7).next_u64(), a);
}

TEST(RngStream, AdjacentStreamsDecorrelated) {
  // Crude independence check: across 64 adjacent streams, the first draws
  // should not collide and their low bits should look balanced.
  std::vector<std::uint64_t> firsts;
  int low_bits = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t v = util::Rng::stream(0xACC1A1Full, i).next_u64();
    firsts.push_back(v);
    low_bits += static_cast<int>(v & 1u);
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
  EXPECT_GT(low_bits, 16);
  EXPECT_LT(low_bits, 48);
}

}  // namespace

// Cross-cutting property tests: schedule determinism, traffic accounting,
// executor agreement, jackknife algebra, rule-table properties, and
// thread-pool stress over randomized inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "collectives/types.hpp"
#include "core/model.hpp"
#include "core/rulegen.hpp"
#include "minimpi/cost_executor.hpp"
#include "minimpi/data_executor.hpp"
#include "minimpi/schedule.hpp"
#include "ml/forest.hpp"
#include "simnet/allocation.hpp"
#include "simnet/network.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace acclaim;
using coll::CollParams;

CollParams random_params(const coll::AlgorithmInfo& info, util::Rng& rng) {
  CollParams p;
  p.nranks = static_cast<int>(rng.uniform_int(1, 24));
  p.count = static_cast<std::uint64_t>(rng.uniform_int(1, 200));
  p.type_size = 8;
  const bool rooted = info.collective == coll::Collective::Bcast ||
                      info.collective == coll::Collective::Reduce ||
                      info.collective == coll::Collective::Gather ||
                      info.collective == coll::Collective::Scatter;
  p.root = rooted ? static_cast<int>(rng.uniform_int(0, p.nranks - 1)) : 0;
  return p;
}

TEST(ScheduleProperties, BuildingTwiceIsIdentical) {
  util::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const auto& infos = coll::all_algorithms();
    const auto& info = infos[rng.index(infos.size())];
    const CollParams p = random_params(info, rng);
    minimpi::RecordingSink a;
    minimpi::RecordingSink b;
    coll::build_schedule(info.alg, p, a);
    coll::build_schedule(info.alg, p, b);
    ASSERT_EQ(a.rounds().size(), b.rounds().size()) << info.name;
    for (std::size_t r = 0; r < a.rounds().size(); ++r) {
      const auto& ta = a.rounds()[r].transfers;
      const auto& tb = b.rounds()[r].transfers;
      ASSERT_EQ(ta.size(), tb.size());
      for (std::size_t t = 0; t < ta.size(); ++t) {
        EXPECT_EQ(ta[t].src_rank, tb[t].src_rank);
        EXPECT_EQ(ta[t].dst_rank, tb[t].dst_rank);
        EXPECT_EQ(ta[t].src_off, tb[t].src_off);
        EXPECT_EQ(ta[t].dst_off, tb[t].dst_off);
        EXPECT_EQ(ta[t].bytes, tb[t].bytes);
        EXPECT_EQ(ta[t].reduce, tb[t].reduce);
      }
    }
  }
}

TEST(ScheduleProperties, KnownTrafficTotals) {
  // Closed-form network-byte totals for the simplest algorithms.
  const std::uint64_t bs = 64 * 8;
  {
    // Ring allgather: (n-1) rounds x n blocks of bs.
    minimpi::RecordingSink sink;
    CollParams p;
    p.nranks = 12;
    p.count = 64;
    coll::build_schedule(coll::Algorithm::AllgatherRing, p, sink);
    EXPECT_EQ(sink.network_bytes(), 11u * 12u * bs);
  }
  {
    // Linear gather: n-1 remote contributions of bs (the root's own block
    // is a local copy).
    minimpi::RecordingSink sink;
    CollParams p;
    p.nranks = 12;
    p.count = 64;
    coll::build_schedule(coll::Algorithm::GatherLinear, p, sink);
    EXPECT_EQ(sink.network_bytes(), 11u * bs);
  }
  {
    // Pairwise alltoall: every ordered pair exchanges one block.
    minimpi::RecordingSink sink;
    CollParams p;
    p.nranks = 8;
    p.count = 64;
    coll::build_schedule(coll::Algorithm::AlltoallPairwise, p, sink);
    EXPECT_EQ(sink.network_bytes(), 8u * 7u * bs);
  }
}

TEST(ScheduleProperties, TeeSinkFeedsBothExecutorsIdentically) {
  // Cost and data executors consume the same rounds in one pass.
  const simnet::Topology topo(testing_support::small_machine());
  const simnet::NetworkModel net(topo, 3);
  const simnet::Allocation alloc({0, 1, 2, 3, 4, 5});
  const minimpi::RankMap rm(alloc, 2);
  CollParams p;
  p.nranks = 12;
  p.count = 16;
  p.type_size = 8;
  const auto sizes = coll::buffer_requirements(coll::Collective::Allreduce, p);
  minimpi::DataExecutor data(p.nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes);
  minimpi::CostExecutor cost(net, rm);
  minimpi::TeeSink tee({&data, &cost});
  for (int r = 0; r < p.nranks; ++r) {
    auto& send = data.buffer(r, minimpi::BufKind::Send);
    for (auto& v : send) {
      v = 1.0;
    }
  }
  coll::build_schedule(coll::Algorithm::AllreduceRecursiveDoubling, p, tee);
  EXPECT_EQ(data.rounds_executed(), cost.rounds_executed());
  EXPECT_GT(cost.elapsed_us(), 0.0);
  // All-ones inputs sum to nranks everywhere.
  for (int r = 0; r < p.nranks; ++r) {
    EXPECT_DOUBLE_EQ(data.buffer(r, minimpi::BufKind::Recv)[0], 12.0);
  }
}

TEST(JackknifeProperties, AffineTransform) {
  util::Rng rng(5);
  std::vector<double> x(40);
  for (auto& v : x) {
    v = rng.normal(3.0, 2.0);
  }
  std::vector<double> y(x.size());
  const double a = -2.5;
  const double b = 7.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = a * x[i] + b;
  }
  // Variance scales with a^2; the shift is irrelevant.
  EXPECT_NEAR(ml::jackknife_variance(y), a * a * ml::jackknife_variance(x), 1e-9);
}

TEST(JackknifeProperties, PermutationInvariant) {
  util::Rng rng(6);
  std::vector<double> x(25);
  for (auto& v : x) {
    v = rng.uniform(0, 10);
  }
  std::vector<double> shuffled = x;
  rng.shuffle(shuffled);
  EXPECT_NEAR(ml::jackknife_variance(shuffled), ml::jackknife_variance(x), 1e-12);
}

TEST(RuleProperties, GeneratedTablesResolveEveryQuery) {
  // For models trained on random subsets, generated tables must resolve any
  // in-range and out-of-range scenario without throwing and agree with the
  // model on grid points.
  const bench::Dataset& ds = testing_support::small_dataset();
  const core::FeatureSpace space = testing_support::small_space();
  util::Rng rng(9);
  for (int trial = 0; trial < 4; ++trial) {
    const auto all = ds.points(coll::Collective::Reduce);
    std::vector<core::LabeledPoint> data;
    for (const auto& p : all) {
      if (rng.chance(0.4)) {
        data.push_back({p, ds.at(p).mean_us});
      }
    }
    if (data.size() < 10) {
      continue;
    }
    core::CollectiveModel model(coll::Collective::Reduce);
    model.fit(data, rng.next_u64());
    const core::RuleTable table = core::RuleGenerator().generate(model, space);
    EXPECT_NO_THROW(table.validate());
    // Off-grid queries (non-P2 everything, out-of-range sizes) still resolve.
    EXPECT_NO_THROW(table.lookup({coll::Collective::Reduce, 13, 3, 1}));
    EXPECT_NO_THROW(table.lookup({coll::Collective::Reduce, 1000, 100, 1ull << 40}));
    for (const auto& s : space.scenarios(coll::Collective::Reduce)) {
      EXPECT_EQ(table.lookup(s), model.select(s));
    }
  }
}

TEST(ForestProperties, PredictionWithinTrainingRange) {
  // A regression forest predicts means of leaves, so predictions are
  // bounded by the training target range.
  util::Rng rng(10);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    X.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
    y.push_back(rng.uniform(5.0, 9.0));
  }
  ml::RandomForest f;
  ml::ForestParams params;
  params.n_trees = 20;
  f.fit(X, y, params, 3);
  for (int i = 0; i < 100; ++i) {
    const ml::FeatureRow probe{rng.uniform(-5, 15), rng.uniform(-5, 15)};
    const double pred = f.predict(probe);
    EXPECT_GE(pred, 5.0 - 1e-9);
    EXPECT_LE(pred, 9.0 + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Randomized thread-pool stress: hammer the global pool across random pool
// sizes, range shapes, and grains, checking every parallel result against a
// sequential reference computed with the same counter-indexed Rng streams.

class ThreadStress : public ::testing::Test {
 protected:
  void SetUp() override { original_threads_ = util::global_threads(); }
  void TearDown() override { util::set_global_threads(original_threads_); }

 private:
  int original_threads_ = 1;
};

TEST_F(ThreadStress, RandomizedParallelForMatchesSequentialReference) {
  util::Rng meta(0x57E55ull);
  const int thread_choices[] = {1, 2, 4, 8};
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t seed = meta.next_u64();
    const std::size_t n = static_cast<std::size_t>(meta.uniform_int(1, 400));
    const std::size_t grain = static_cast<std::size_t>(meta.uniform_int(1, 17));
    const int threads = thread_choices[meta.index(4)];

    // Sequential reference: one derived stream per index, pure function of
    // (seed, i) — the same scheme the forest uses for per-tree RNGs.
    std::vector<double> expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng r = util::Rng::stream(seed, i);
      expect[i] = r.uniform() + r.uniform(0.0, static_cast<double>(i + 1));
    }

    util::set_global_threads(threads);
    std::vector<double> got(n);
    util::global_pool().parallel_for(
        0, n,
        [&](std::size_t i) {
          util::Rng r = util::Rng::stream(seed, i);
          got[i] = r.uniform() + r.uniform(0.0, static_cast<double>(i + 1));
        },
        grain);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], expect[i])
          << "trial=" << trial << " threads=" << threads << " grain=" << grain << " i=" << i;
    }
  }
}

TEST_F(ThreadStress, RepeatedResizeUnderWork) {
  // Resizing between parallel regions must never lose indices or deadlock.
  util::Rng meta(0xBEEF);
  std::vector<std::atomic<int>> hits(512);
  for (int round = 0; round < 12; ++round) {
    util::set_global_threads(static_cast<int>(meta.uniform_int(1, 8)));
    for (auto& h : hits) {
      h.store(0);
    }
    util::global_pool().parallel_for(0, hits.size(),
                                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round=" << round << " i=" << i;
    }
  }
}

TEST_F(ThreadStress, ForestFitDeterministicUnderRandomDataAndThreads) {
  util::Rng meta(0xF0E57);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t seed = meta.next_u64();
    std::vector<ml::FeatureRow> X;
    std::vector<double> y;
    util::Rng data(seed);
    const int rows = 40 + static_cast<int>(data.uniform_int(0, 80));
    for (int i = 0; i < rows; ++i) {
      X.push_back({data.uniform(0, 8), data.uniform(0, 8), data.uniform(0, 2)});
      y.push_back(data.uniform(0.0, 5.0) + X.back()[0]);
    }
    ml::ForestParams params;
    params.n_trees = 16;

    util::set_global_threads(1);
    ml::RandomForest ref;
    ref.fit(X, y, params, seed);
    const std::string golden = ref.to_json().dump();

    const int threads = 2 + static_cast<int>(meta.uniform_int(0, 6));
    util::set_global_threads(threads);
    ml::RandomForest forest;
    forest.fit(X, y, params, seed);
    ASSERT_EQ(forest.to_json().dump(), golden) << "trial=" << trial << " threads=" << threads;
  }
}

}  // namespace

// Cross-cutting property tests: schedule determinism, traffic accounting,
// executor agreement, jackknife algebra, rule-table properties, and
// thread-pool stress over randomized inputs.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <tuple>

#include "benchdata/dataset.hpp"
#include "collectives/types.hpp"
#include "core/env.hpp"
#include "core/model.hpp"
#include "core/rulegen.hpp"
#include "core/scheduler.hpp"
#include "minimpi/cost_executor.hpp"
#include "minimpi/data_executor.hpp"
#include "minimpi/schedule.hpp"
#include "ml/forest.hpp"
#include "simnet/allocation.hpp"
#include "simnet/network.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace acclaim;
using coll::CollParams;

CollParams random_params(const coll::AlgorithmInfo& info, util::Rng& rng) {
  CollParams p;
  p.nranks = static_cast<int>(rng.uniform_int(1, 24));
  p.count = static_cast<std::uint64_t>(rng.uniform_int(1, 200));
  p.type_size = 8;
  const bool rooted = info.collective == coll::Collective::Bcast ||
                      info.collective == coll::Collective::Reduce ||
                      info.collective == coll::Collective::Gather ||
                      info.collective == coll::Collective::Scatter;
  p.root = rooted ? static_cast<int>(rng.uniform_int(0, p.nranks - 1)) : 0;
  return p;
}

TEST(ScheduleProperties, BuildingTwiceIsIdentical) {
  util::Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const auto& infos = coll::all_algorithms();
    const auto& info = infos[rng.index(infos.size())];
    const CollParams p = random_params(info, rng);
    minimpi::RecordingSink a;
    minimpi::RecordingSink b;
    coll::build_schedule(info.alg, p, a);
    coll::build_schedule(info.alg, p, b);
    ASSERT_EQ(a.rounds().size(), b.rounds().size()) << info.name;
    for (std::size_t r = 0; r < a.rounds().size(); ++r) {
      const auto& ta = a.rounds()[r].transfers;
      const auto& tb = b.rounds()[r].transfers;
      ASSERT_EQ(ta.size(), tb.size());
      for (std::size_t t = 0; t < ta.size(); ++t) {
        EXPECT_EQ(ta[t].src_rank, tb[t].src_rank);
        EXPECT_EQ(ta[t].dst_rank, tb[t].dst_rank);
        EXPECT_EQ(ta[t].src_off, tb[t].src_off);
        EXPECT_EQ(ta[t].dst_off, tb[t].dst_off);
        EXPECT_EQ(ta[t].bytes, tb[t].bytes);
        EXPECT_EQ(ta[t].reduce, tb[t].reduce);
      }
    }
  }
}

TEST(ScheduleProperties, KnownTrafficTotals) {
  // Closed-form network-byte totals for the simplest algorithms.
  const std::uint64_t bs = 64 * 8;
  {
    // Ring allgather: (n-1) rounds x n blocks of bs.
    minimpi::RecordingSink sink;
    CollParams p;
    p.nranks = 12;
    p.count = 64;
    coll::build_schedule(coll::Algorithm::AllgatherRing, p, sink);
    EXPECT_EQ(sink.network_bytes(), 11u * 12u * bs);
  }
  {
    // Linear gather: n-1 remote contributions of bs (the root's own block
    // is a local copy).
    minimpi::RecordingSink sink;
    CollParams p;
    p.nranks = 12;
    p.count = 64;
    coll::build_schedule(coll::Algorithm::GatherLinear, p, sink);
    EXPECT_EQ(sink.network_bytes(), 11u * bs);
  }
  {
    // Pairwise alltoall: every ordered pair exchanges one block.
    minimpi::RecordingSink sink;
    CollParams p;
    p.nranks = 8;
    p.count = 64;
    coll::build_schedule(coll::Algorithm::AlltoallPairwise, p, sink);
    EXPECT_EQ(sink.network_bytes(), 8u * 7u * bs);
  }
}

TEST(ScheduleProperties, TeeSinkFeedsBothExecutorsIdentically) {
  // Cost and data executors consume the same rounds in one pass.
  const simnet::Topology topo(testing_support::small_machine());
  const simnet::NetworkModel net(topo, 3);
  const simnet::Allocation alloc({0, 1, 2, 3, 4, 5});
  const minimpi::RankMap rm(alloc, 2);
  CollParams p;
  p.nranks = 12;
  p.count = 16;
  p.type_size = 8;
  const auto sizes = coll::buffer_requirements(coll::Collective::Allreduce, p);
  minimpi::DataExecutor data(p.nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes);
  minimpi::CostExecutor cost(net, rm);
  minimpi::TeeSink tee({&data, &cost});
  for (int r = 0; r < p.nranks; ++r) {
    auto& send = data.buffer(r, minimpi::BufKind::Send);
    for (auto& v : send) {
      v = 1.0;
    }
  }
  coll::build_schedule(coll::Algorithm::AllreduceRecursiveDoubling, p, tee);
  EXPECT_EQ(data.rounds_executed(), cost.rounds_executed());
  EXPECT_GT(cost.elapsed_us(), 0.0);
  // All-ones inputs sum to nranks everywhere.
  for (int r = 0; r < p.nranks; ++r) {
    EXPECT_DOUBLE_EQ(data.buffer(r, minimpi::BufKind::Recv)[0], 12.0);
  }
}

TEST(JackknifeProperties, AffineTransform) {
  util::Rng rng(5);
  std::vector<double> x(40);
  for (auto& v : x) {
    v = rng.normal(3.0, 2.0);
  }
  std::vector<double> y(x.size());
  const double a = -2.5;
  const double b = 7.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = a * x[i] + b;
  }
  // Variance scales with a^2; the shift is irrelevant.
  EXPECT_NEAR(ml::jackknife_variance(y), a * a * ml::jackknife_variance(x), 1e-9);
}

TEST(JackknifeProperties, PermutationInvariant) {
  util::Rng rng(6);
  std::vector<double> x(25);
  for (auto& v : x) {
    v = rng.uniform(0, 10);
  }
  std::vector<double> shuffled = x;
  rng.shuffle(shuffled);
  EXPECT_NEAR(ml::jackknife_variance(shuffled), ml::jackknife_variance(x), 1e-12);
}

TEST(RuleProperties, GeneratedTablesResolveEveryQuery) {
  // For models trained on random subsets, generated tables must resolve any
  // in-range and out-of-range scenario without throwing and agree with the
  // model on grid points.
  const bench::Dataset& ds = testing_support::small_dataset();
  const core::FeatureSpace space = testing_support::small_space();
  util::Rng rng(9);
  for (int trial = 0; trial < 4; ++trial) {
    const auto all = ds.points(coll::Collective::Reduce);
    std::vector<core::LabeledPoint> data;
    for (const auto& p : all) {
      if (rng.chance(0.4)) {
        data.push_back({p, ds.at(p).mean_us});
      }
    }
    if (data.size() < 10) {
      continue;
    }
    core::CollectiveModel model(coll::Collective::Reduce);
    model.fit(data, rng.next_u64());
    const core::RuleTable table = core::RuleGenerator().generate(model, space);
    EXPECT_NO_THROW(table.validate());
    // Off-grid queries (non-P2 everything, out-of-range sizes) still resolve.
    EXPECT_NO_THROW(table.lookup({coll::Collective::Reduce, 13, 3, 1}));
    EXPECT_NO_THROW(table.lookup({coll::Collective::Reduce, 1000, 100, 1ull << 40}));
    for (const auto& s : space.scenarios(coll::Collective::Reduce)) {
      EXPECT_EQ(table.lookup(s), model.select(s));
    }
  }
}

TEST(ForestProperties, PredictionWithinTrainingRange) {
  // A regression forest predicts means of leaves, so predictions are
  // bounded by the training target range.
  util::Rng rng(10);
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    X.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
    y.push_back(rng.uniform(5.0, 9.0));
  }
  ml::RandomForest f;
  ml::ForestParams params;
  params.n_trees = 20;
  f.fit(X, y, params, 3);
  for (int i = 0; i < 100; ++i) {
    const ml::FeatureRow probe{rng.uniform(-5, 15), rng.uniform(-5, 15)};
    const double pred = f.predict(probe);
    EXPECT_GE(pred, 5.0 - 1e-9);
    EXPECT_LE(pred, 9.0 + 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Randomized thread-pool stress: hammer the global pool across random pool
// sizes, range shapes, and grains, checking every parallel result against a
// sequential reference computed with the same counter-indexed Rng streams.

class ThreadStress : public ::testing::Test {
 protected:
  void SetUp() override { original_threads_ = util::global_threads(); }
  void TearDown() override { util::set_global_threads(original_threads_); }

 private:
  int original_threads_ = 1;
};

TEST_F(ThreadStress, RandomizedParallelForMatchesSequentialReference) {
  util::Rng meta(0x57E55ull);
  const int thread_choices[] = {1, 2, 4, 8};
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t seed = meta.next_u64();
    const std::size_t n = static_cast<std::size_t>(meta.uniform_int(1, 400));
    const std::size_t grain = static_cast<std::size_t>(meta.uniform_int(1, 17));
    const int threads = thread_choices[meta.index(4)];

    // Sequential reference: one derived stream per index, pure function of
    // (seed, i) — the same scheme the forest uses for per-tree RNGs.
    std::vector<double> expect(n);
    for (std::size_t i = 0; i < n; ++i) {
      util::Rng r = util::Rng::stream(seed, i);
      expect[i] = r.uniform() + r.uniform(0.0, static_cast<double>(i + 1));
    }

    util::set_global_threads(threads);
    std::vector<double> got(n);
    util::global_pool().parallel_for(
        0, n,
        [&](std::size_t i) {
          util::Rng r = util::Rng::stream(seed, i);
          got[i] = r.uniform() + r.uniform(0.0, static_cast<double>(i + 1));
        },
        grain);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], expect[i])
          << "trial=" << trial << " threads=" << threads << " grain=" << grain << " i=" << i;
    }
  }
}

TEST_F(ThreadStress, RepeatedResizeUnderWork) {
  // Resizing between parallel regions must never lose indices or deadlock.
  util::Rng meta(0xBEEF);
  std::vector<std::atomic<int>> hits(512);
  for (int round = 0; round < 12; ++round) {
    util::set_global_threads(static_cast<int>(meta.uniform_int(1, 8)));
    for (auto& h : hits) {
      h.store(0);
    }
    util::global_pool().parallel_for(0, hits.size(),
                                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round=" << round << " i=" << i;
    }
  }
}

TEST_F(ThreadStress, ScheduledBatchesDeterministicUnderRandomPoolsAndThreads) {
  // Randomized batches through the §IV-D scheduler + LiveEnvironment: the
  // placements, the parallel predicted-cost scoring, and the concurrently
  // simulated measurements must all match a single-threaded reference run,
  // whatever pool composition or thread count the trial draws.
  util::Rng meta(0x5CED);
  const simnet::MachineConfig machine = testing_support::small_machine();
  const simnet::Topology topo(machine);
  for (int trial = 0; trial < 6; ++trial) {
    const std::uint64_t job_seed = meta.next_u64();
    std::vector<int> ids(static_cast<std::size_t>(machine.total_nodes));
    for (int i = 0; i < machine.total_nodes; ++i) {
      ids[static_cast<std::size_t>(i)] = i;
    }
    const simnet::Allocation alloc(ids);

    std::vector<bench::BenchmarkPoint> pool;
    const auto algorithms = coll::algorithms_for(coll::Collective::Bcast);
    const int pool_size = 3 + static_cast<int>(meta.uniform_int(0, 5));
    for (int i = 0; i < pool_size; ++i) {
      bench::BenchmarkPoint p;
      p.scenario.collective = coll::Collective::Bcast;
      p.scenario.nnodes = 1 << meta.uniform_int(1, 3);
      p.scenario.ppn = 2;
      p.scenario.msg_bytes = 256u << meta.uniform_int(0, 4);
      p.algorithm = algorithms[meta.index(algorithms.size())];
      pool.push_back(p);
    }
    std::vector<std::size_t> ranked(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      ranked[i] = i;
    }

    const core::CollectionScheduler scheduler;
    // `priced` toggles the predicted-cost reuse path (run_priced) against
    // the full schedule rebuild (run_with_load); both must produce bitwise
    // the same measurements.
    auto run_once = [&](bool priced) {
      core::LiveEnvironment env(topo, alloc, job_seed);
      const core::CollectionBatch batch =
          scheduler.plan(pool, ranked, topo, alloc, env.solo_cost_oracle());
      const auto ms = priced ? env.measure_scheduled(batch.items, batch.predicted_us)
                             : env.measure_scheduled(batch.items);
      return std::make_tuple(batch, ms, env.clock_s());
    };

    util::set_global_threads(1);
    const auto [ref_batch, ref_ms, ref_clock] = run_once(false);
    ASSERT_FALSE(ref_batch.items.empty());

    const int threads = 2 + static_cast<int>(meta.uniform_int(0, 6));
    util::set_global_threads(threads);
    const auto [batch, ms, clock] = run_once(true);
    ASSERT_EQ(batch.items.size(), ref_batch.items.size()) << "trial=" << trial;
    for (std::size_t i = 0; i < batch.items.size(); ++i) {
      ASSERT_EQ(batch.items[i].first_node, ref_batch.items[i].first_node);
      ASSERT_EQ(batch.consumed[i], ref_batch.consumed[i]);
      ASSERT_EQ(batch.predicted_us[i], ref_batch.predicted_us[i])
          << "trial=" << trial << " threads=" << threads << " slot=" << i;
      ASSERT_EQ(ms[i].mean_us, ref_ms[i].mean_us);
      ASSERT_EQ(ms[i].stddev_us, ref_ms[i].stddev_us);
      ASSERT_EQ(ms[i].collect_cost_s, ref_ms[i].collect_cost_s);
    }
    ASSERT_EQ(batch.predicted_makespan_us, ref_batch.predicted_makespan_us);
    ASSERT_EQ(batch.predicted_longest, ref_batch.predicted_longest);
    ASSERT_EQ(clock, ref_clock) << "trial=" << trial << " threads=" << threads;
  }
}

TEST_F(ThreadStress, MutatedPointsBetweenPlanAndMeasureInvalidateThePriceHint) {
  // The §IV-B non-P2 cadence rewrites a scheduled item's message size AFTER
  // plan() priced the placements. The active learner zeroes the mutated
  // slot's predicted cost, and measure_scheduled must treat any hint <= 0 as
  // "rebuild from the point" — otherwise the mutated point gets simulated
  // with the schedule time of the original message size and the training row
  // is corrupted. Priced (with invalidated slots) and rebuilt paths must be
  // bitwise-identical.
  const simnet::MachineConfig machine = testing_support::small_machine();
  const simnet::Topology topo(machine);
  std::vector<int> ids(static_cast<std::size_t>(machine.total_nodes));
  for (int i = 0; i < machine.total_nodes; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);

  std::vector<bench::BenchmarkPoint> pool;
  const auto algorithms = coll::algorithms_for(coll::Collective::Bcast);
  for (int i = 0; i < 4; ++i) {
    bench::BenchmarkPoint p;
    p.scenario.collective = coll::Collective::Bcast;
    p.scenario.nnodes = 2;
    p.scenario.ppn = 2;
    p.scenario.msg_bytes = 1024u << i;
    p.algorithm = algorithms[static_cast<std::size_t>(i) % algorithms.size()];
    pool.push_back(p);
  }
  std::vector<std::size_t> ranked(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    ranked[i] = i;
  }

  constexpr std::uint64_t kJobSeed = 0xF00D;
  const core::CollectionScheduler scheduler;
  core::LiveEnvironment plan_env(topo, alloc, kJobSeed);
  core::CollectionBatch batch =
      scheduler.plan(pool, ranked, topo, alloc, plan_env.solo_cost_oracle());
  ASSERT_GE(batch.items.size(), 2u);
  ASSERT_EQ(batch.predicted_us.size(), batch.items.size());

  // Simulate the non-P2 substitution on slot 0: a different (non-P2) message
  // size than the one plan() priced, hint invalidated exactly as the active
  // learner does it.
  batch.items[0].point.scenario.msg_bytes = 1536;  // non-P2 near 1024
  batch.predicted_us[0] = 0.0;

  util::set_global_threads(4);
  core::LiveEnvironment priced_env(topo, alloc, kJobSeed);
  const auto priced = priced_env.measure_scheduled(batch.items, batch.predicted_us);

  util::set_global_threads(1);
  core::LiveEnvironment rebuilt_env(topo, alloc, kJobSeed);
  const auto rebuilt = rebuilt_env.measure_scheduled(batch.items);

  ASSERT_EQ(priced.size(), rebuilt.size());
  for (std::size_t i = 0; i < priced.size(); ++i) {
    ASSERT_EQ(priced[i].mean_us, rebuilt[i].mean_us) << "slot=" << i;
    ASSERT_EQ(priced[i].stddev_us, rebuilt[i].stddev_us) << "slot=" << i;
    ASSERT_EQ(priced[i].collect_cost_s, rebuilt[i].collect_cost_s) << "slot=" << i;
  }
  ASSERT_EQ(priced_env.clock_s(), rebuilt_env.clock_s());
  // The un-mutated slots still carry usable hints, and the stale price for
  // slot 0 (1024 bytes) must NOT equal the rebuilt measurement's schedule
  // base for 1536 bytes — i.e. the hint really was wrong to reuse.
  core::ScheduledBenchmark mutated = batch.items[0];
  ASSERT_NE(rebuilt_env.predicted_solo_us(mutated),
            plan_env.predicted_solo_us({pool[batch.consumed[0]], mutated.first_node}));
}

TEST_F(ThreadStress, PrecollectDeterministicAcrossThreads) {
  // The dataset builder fans the simulated runs out on the pool; the saved
  // measurements must be bitwise-equal to a sequential collection.
  const simnet::MachineConfig machine = testing_support::small_machine();
  bench::FeatureGrid grid;
  grid.nodes = {2, 4};
  grid.ppns = {2};
  grid.msgs = {256, 4096};

  util::set_global_threads(1);
  const bench::Dataset ref =
      bench::precollect(machine, grid, {coll::Collective::Bcast}, 11);

  for (int threads : {2, 8}) {
    util::set_global_threads(threads);
    const bench::Dataset ds =
        bench::precollect(machine, grid, {coll::Collective::Bcast}, 11);
    const auto points = ref.points();
    ASSERT_EQ(ds.points().size(), points.size()) << "threads=" << threads;
    for (const bench::BenchmarkPoint& p : points) {
      ASSERT_EQ(ds.at(p).mean_us, ref.at(p).mean_us) << "threads=" << threads;
      ASSERT_EQ(ds.at(p).stddev_us, ref.at(p).stddev_us);
      ASSERT_EQ(ds.at(p).collect_cost_s, ref.at(p).collect_cost_s);
    }
  }
}

TEST_F(ThreadStress, ForestFitDeterministicUnderRandomDataAndThreads) {
  util::Rng meta(0xF0E57);
  for (int trial = 0; trial < 5; ++trial) {
    const std::uint64_t seed = meta.next_u64();
    std::vector<ml::FeatureRow> X;
    std::vector<double> y;
    util::Rng data(seed);
    const int rows = 40 + static_cast<int>(data.uniform_int(0, 80));
    for (int i = 0; i < rows; ++i) {
      X.push_back({data.uniform(0, 8), data.uniform(0, 8), data.uniform(0, 2)});
      y.push_back(data.uniform(0.0, 5.0) + X.back()[0]);
    }
    ml::ForestParams params;
    params.n_trees = 16;

    util::set_global_threads(1);
    ml::RandomForest ref;
    ref.fit(X, y, params, seed);
    const std::string golden = ref.to_json().dump();

    const int threads = 2 + static_cast<int>(meta.uniform_int(0, 6));
    util::set_global_threads(threads);
    ml::RandomForest forest;
    forest.fit(X, y, params, seed);
    ASSERT_EQ(forest.to_json().dump(), golden) << "trial=" << trial << " threads=" << threads;
  }
}

TEST_F(ThreadStress, BatchedForestEvaluationMatchesScalarUnderRandomBatchesAndThreads) {
  // Property: for any forest, batch size, and thread count, the fused SoA
  // batch kernel agrees bitwise with per-row scalar evaluation on the
  // pointer engine. Exercises batch sizes straddling the lane width and
  // thread counts (threads only affect callers like jackknife_variances;
  // the kernel itself must be a pure function of the rows).
  util::Rng meta(0xF147);
  const int thread_choices[] = {1, 2, 4, 8};
  for (int trial = 0; trial < 10; ++trial) {
    const std::uint64_t seed = meta.next_u64();
    util::Rng data(seed);
    std::vector<ml::FeatureRow> X;
    std::vector<double> y;
    const int n = 30 + static_cast<int>(data.uniform_int(0, 90));
    for (int i = 0; i < n; ++i) {
      X.push_back({data.uniform(0, 8), static_cast<double>(data.uniform_int(0, 3)),
                   data.uniform(-2, 2)});
      y.push_back(X.back()[0] - X.back()[1] + data.normal(0.0, 0.2));
    }
    ml::ForestParams params;
    params.n_trees = 1 + static_cast<int>(data.uniform_int(0, 30));
    util::set_global_threads(thread_choices[meta.index(4)]);
    ml::RandomForest forest;
    forest.fit(X, y, params, seed);
    const std::size_t nt = forest.n_trees();

    const std::size_t n_rows = static_cast<std::size_t>(meta.uniform_int(1, 64));
    std::vector<ml::FeatureRow> rows;
    for (std::size_t r = 0; r < n_rows; ++r) {
      rows.push_back({data.uniform(-10, 10), data.uniform(-10, 10), data.uniform(-10, 10)});
    }

    std::vector<double> var(n_rows), mean(n_rows), scratch;
    {
      ml::ForestBackendGuard guard(ml::ForestBackend::Flat);
      forest.jackknife_batch(rows.data(), n_rows, var.data(), mean.data(), scratch);
    }
    ml::ForestBackendGuard guard(ml::ForestBackend::Pointer);
    std::vector<double> batched(n_rows * nt);
    forest.flat().predict_trees_batch(rows.data(), n_rows, batched.data());
    for (std::size_t r = 0; r < n_rows; ++r) {
      std::vector<double> scalar;
      forest.predict_trees(rows[r], scalar);
      for (std::size_t t = 0; t < nt; ++t) {
        ASSERT_EQ(batched[r * nt + t], scalar[t])
            << "trial=" << trial << " row=" << r << " tree=" << t;
      }
      ASSERT_EQ(var[r], ml::jackknife_variance(scalar)) << "trial=" << trial << " row=" << r;
      double sum = 0.0;
      for (double v : scalar) {
        sum += v;
      }
      ASSERT_EQ(mean[r], sum / static_cast<double>(nt)) << "trial=" << trial << " row=" << r;
    }
  }
}

}  // namespace

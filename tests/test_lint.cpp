// Tests for tools/lint — the project-specific determinism/correctness
// static-analysis pass. Each check gets a positive (fires) and a negative
// (stays quiet on the idiomatic pattern) fixture, plus suppression-comment
// and baseline-ratchet behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace acclaim;
using lint::Finding;
using lint::lint_source;
using lint::LintOptions;

namespace {

std::vector<std::string> ids(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) {
    out.push_back(f.check);
  }
  return out;
}

bool has_check(const std::vector<Finding>& findings, const std::string& id) {
  const std::vector<std::string> v = ids(findings);
  return std::find(v.begin(), v.end(), id) != v.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// det-rand / det-wallclock and layer scoping
// ---------------------------------------------------------------------------

TEST(LintDetLayer, FlagsRandomDeviceInCore) {
  const std::string src = "void f() { std::random_device rd; (void)rd; }\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-rand");
  EXPECT_EQ(findings[0].severity, lint::Severity::Error);
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintDetLayer, FlagsLibcRandAndEngines) {
  EXPECT_TRUE(has_check(lint_source("src/ml/x.cpp", "int f() { return rand(); }\n"),
                        "det-rand"));
  EXPECT_TRUE(has_check(
      lint_source("src/simnet/x.cpp", "void f() { std::mt19937 gen(42); (void)gen; }\n"),
      "det-rand"));
}

TEST(LintDetLayer, FlagsWallClock) {
  EXPECT_TRUE(has_check(
      lint_source("src/benchdata/x.cpp",
                  "auto f() { return std::chrono::system_clock::now(); }\n"),
      "det-wallclock"));
  EXPECT_TRUE(has_check(
      lint_source("src/collectives/x.cpp", "long f() { return time(nullptr); }\n"),
      "det-wallclock"));
}

TEST(LintDetLayer, SteadyClockIsAllowed) {
  const auto findings = lint_source(
      "src/ml/x.cpp", "auto f() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintDetLayer, NonDetLayersMayReadTheClock) {
  const std::string src = "auto f() { return std::chrono::system_clock::now(); }\n";
  EXPECT_TRUE(lint_source("src/util/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/telemetry/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("tools/x.cpp", src).empty());
}

TEST(LintDetLayer, NamesInStringsAndCommentsDoNotFire) {
  const std::string src =
      "// std::random_device in a comment\n"
      "const char* s = \"system_clock and rand()\";\n"
      "/* time(nullptr) */\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintDetLayer, PreprocessorLinesDoNotFire) {
  EXPECT_TRUE(lint_source("src/core/x.cpp", "#include <random>\n#include <ctime>\n").empty());
}

// ---------------------------------------------------------------------------
// det-unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedMember) {
  const std::string src =
      "std::unordered_map<int, int> m_;\n"
      "int f() { int s = 0; for (const auto& [k, v] : m_) { s += v; } return s; }\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-unordered-iter");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintUnorderedIter, CompanionHeaderDeclarationsAreVisible) {
  LintOptions opt;
  opt.companion_header = "class C { std::unordered_map<int, int> flows_; };\n";
  const std::string src = "int C::f() { int s = 0; for (auto& [k, v] : flows_) s += v; return s; }\n";
  EXPECT_TRUE(has_check(lint_source("src/minimpi/x.cpp", src, opt), "det-unordered-iter"));
}

TEST(LintUnorderedIter, OrderedMapIsFine) {
  const std::string src =
      "std::map<int, int> m_;\n"
      "int f() { int s = 0; for (const auto& [k, v] : m_) { s += v; } return s; }\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintUnorderedIter, TestsAreOutOfScope) {
  const std::string src =
      "std::unordered_map<int, int> m;\n"
      "void f() { for (auto& [k, v] : m) { (void)k; (void)v; } }\n";
  EXPECT_TRUE(lint_source("tests/test_x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// det-rng-ref-capture / par-shared-write / par-float-reduction
// ---------------------------------------------------------------------------

TEST(LintParallel, FlagsByRefRngAcrossParallelFor) {
  const std::string src =
      "void f(util::ThreadPool& pool, util::Rng& rng, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = rng.uniform();\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-rng-ref-capture");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintParallel, PreDerivedPerItemRngsAreFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<util::Rng>& rngs,\n"
      "       std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = rngs[i].uniform();\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, RngStreamInsideBodyIsFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    util::Rng item_rng = util::Rng::stream(7, i);\n"
      "    out[i] = item_rng.uniform();\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, FlagsSharedCounterWrite) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<int>& v) {\n"
      "  int done = 0;\n"
      "  pool.parallel_for(0, v.size(), [&](std::size_t i) {\n"
      "    v[i] = 1;\n"
      "    ++done;\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/simnet/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "par-shared-write");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LintParallel, AtomicCounterIsFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<int>& v) {\n"
      "  std::atomic<int> done{0};\n"
      "  pool.parallel_for(0, v.size(), [&](std::size_t i) {\n"
      "    v[i] = 1;\n"
      "    ++done;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/simnet/x.cpp", src).empty());
}

TEST(LintParallel, SlotWritesAndBodyLocalsAreFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    double acc = 0.0;\n"
      "    acc += 1.0;\n"
      "    out[i] = acc;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, FlagsFloatReductionDistinctly) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& v) {\n"
      "  double sum = 0.0;\n"
      "  pool.parallel_for(0, v.size(), [&](std::size_t i) {\n"
      "    sum += v[i];\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/ml/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "par-float-reduction");
}

TEST(LintParallel, SubmitLambdasAreCoveredToo) {
  const std::string src =
      "void f(util::ThreadPool& pool) {\n"
      "  int hits = 0;\n"
      "  auto fut = pool.submit([&] { ++hits; });\n"
      "  fut.get();\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", src), "par-shared-write"));
}

TEST(LintParallel, FusedBlockedJackknifeLoopStaysClean) {
  // Mirror of the fused sweep in core/model.cpp: fixed-size blocks, a
  // thread_local row/scratch buffer, and slot writes through a pointer
  // offset. The reductions happen inside jackknife_batch over
  // thread-private scratch — nothing here may trip par-float-reduction.
  const std::string src =
      "void sweep(util::ThreadPool& pool, const ml::RandomForest& forest,\n"
      "           const std::vector<ml::FeatureRow>& rows, std::vector<double>& out) {\n"
      "  constexpr std::size_t kBlock = 16;\n"
      "  const std::size_t n_blocks = (rows.size() + kBlock - 1) / kBlock;\n"
      "  pool.parallel_for(0, n_blocks, [&](std::size_t b) {\n"
      "    const std::size_t lo = b * kBlock;\n"
      "    const std::size_t hi = std::min(rows.size(), lo + kBlock);\n"
      "    thread_local std::vector<double> scratch;\n"
      "    forest.jackknife_batch(rows.data() + lo, hi - lo, out.data() + lo, nullptr,\n"
      "                           scratch);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, MutatedFusedLoopWithSharedAccumulatorFires) {
  // The same shape gone wrong: accumulating the per-block result into one
  // captured double turns the sweep order-dependent.
  const std::string src =
      "void sweep(util::ThreadPool& pool, const ml::RandomForest& forest,\n"
      "           const std::vector<ml::FeatureRow>& rows, std::vector<double>& out) {\n"
      "  double total = 0.0;\n"
      "  pool.parallel_for(0, rows.size(), [&](std::size_t i) {\n"
      "    total += out[i];\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", src), "par-float-reduction"));
}

TEST(LintParallel, ShippedFusedKernelSourcesCarryNoFloatReductionFindings) {
  // Suppression audit on the real files: the hot fused-jackknife sources
  // must stay free of par-float-reduction findings (no new accumulation,
  // and no acclaim-lint:allow creeping in to silence one).
  for (const char* rel : {"src/core/model.cpp", "src/ml/flat_forest.cpp"}) {
    std::ifstream in(std::string(ACCLAIM_SOURCE_DIR "/") + rel, std::ios::binary);
    ASSERT_TRUE(in.good()) << rel;
    std::ostringstream text;
    text << in.rdbuf();
    ASSERT_GT(text.str().size(), 100u) << rel;
    EXPECT_FALSE(text.str().find("allow(par-float-reduction)") != std::string::npos) << rel;
    EXPECT_FALSE(has_check(lint_source(rel, text.str()), "par-float-reduction")) << rel;
  }
}

// ---------------------------------------------------------------------------
// det-audit-order
// ---------------------------------------------------------------------------

TEST(LintAuditOrder, FlagsAuditEmissionInsideParallelFor) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = 1.0;\n"
      "    telemetry::audit().record(make_record(i));\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-audit-order");
  EXPECT_EQ(findings[0].severity, lint::Severity::Error);
}

TEST(LintAuditOrder, FlagsRecordConstructionAndCostObservationToo) {
  const std::string record_src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    telemetry::DecisionRecord rec;\n"
      "    out[i] = 1.0;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", record_src), "det-audit-order"));

  const std::string cost_src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.submit([&] { telemetry::observe_decision_cost(5.0); });\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", cost_src), "det-audit-order"));
}

TEST(LintAuditOrder, SerialEmissionAfterTheParallelRegionIsFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = 1.0;\n"
      "  });\n"
      "  telemetry::DecisionRecord rec;\n"
      "  telemetry::audit().record(std::move(rec));\n"
      "  telemetry::observe_decision_cost(5.0);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintAuditOrder, UnrelatedAuditIdentifiersDoNotFire) {
  // An identifier that merely contains "audit" (`auditor`) is not the
  // telemetry::audit() emission call.
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = auditor.score(i);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// hygiene checks
// ---------------------------------------------------------------------------

TEST(LintHygiene, FlagsSwallowedCatch) {
  const std::string src =
      "void f() {\n"
      "  try { g(); } catch (const std::exception&) {\n"
      "  }\n"
      "}\n";
  const auto findings = lint_source("src/util/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "hyg-catch-log");
  EXPECT_EQ(findings[0].severity, lint::Severity::Warning);
}

TEST(LintHygiene, LoggingRethrowingOrAssertingCatchIsFine) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "void f() { try { g(); } catch (const std::exception& e) { "
                          "AC_LOG_WARN() << e.what(); } }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "void f() { try { g(); } catch (...) { throw; } }\n")
                  .empty());
  EXPECT_TRUE(lint_source("tests/test_x.cpp",
                          "TEST(A, B) { try { g(); FAIL(); } catch (const Error& e) { "
                          "EXPECT_NE(std::string(e.what()).find(\"x\"), std::string::npos); } }\n")
                  .empty());
}

TEST(LintHygiene, FlagsNakedNewButNotMakeUnique) {
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", "int* f() { return new int(3); }\n"),
                        "hyg-naked-new"));
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "auto f() { return std::make_unique<int>(3); }\n")
                  .empty());
}

TEST(LintHygiene, FlagsFloatLiteralEquality) {
  const auto findings =
      lint_source("src/core/x.cpp", "bool f(double x) { return x == 1.5; }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "hyg-float-eq");
  EXPECT_TRUE(lint_source("src/core/x.cpp", "bool f(double x) { return x < 1.5; }\n").empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp", "bool f(int x) { return x == 2; }\n").empty());
}

// ---------------------------------------------------------------------------
// suppression comments
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesTheCheck) {
  const std::string src =
      "bool f(double x) { return x == 1.5; }  // acclaim-lint: allow(hyg-float-eq)\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppression, PrecedingLineAllowSilencesTheCheck) {
  const std::string src =
      "// exact sentinel. acclaim-lint: allow(hyg-float-eq)\n"
      "bool f(double x) { return x == 1.5; }\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppression, AllowOnlySilencesTheNamedCheck) {
  const std::string src =
      "// acclaim-lint: allow(hyg-naked-new)\n"
      "bool f(double x) { return x == 1.5; }\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", src), "hyg-float-eq"));
}

TEST(LintSuppression, AllowListAcceptsMultipleIds) {
  const std::string src =
      "// acclaim-lint: allow(hyg-float-eq, hyg-naked-new)\n"
      "int* f(double x) { return x == 1.5 ? new int(1) : nullptr; }\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// baseline ratchet
// ---------------------------------------------------------------------------

TEST(LintBaseline, CoversKnownDebtAndFailsNewFindings) {
  const std::string src =
      "bool f(double x) { return x == 1.5; }\n"
      "bool g(double x) { return x != 2.5; }\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 2u);

  lint::Baseline covers_both;
  covers_both.set("hyg-float-eq", "src/core/x.cpp", 2);
  const lint::GateResult ok = lint::apply_baseline(findings, covers_both);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.baselined.size(), 2u);
  EXPECT_TRUE(ok.stale.empty());

  lint::Baseline covers_one;
  covers_one.set("hyg-float-eq", "src/core/x.cpp", 1);
  const lint::GateResult over = lint::apply_baseline(findings, covers_one);
  EXPECT_FALSE(over.ok());
  ASSERT_EQ(over.fresh.size(), 1u);
  EXPECT_EQ(over.fresh[0].check, "hyg-float-eq");
}

TEST(LintBaseline, StaleEntriesAreReportedForRatcheting) {
  lint::Baseline b;
  b.set("hyg-float-eq", "src/core/x.cpp", 3);
  const lint::GateResult gate =
      lint::apply_baseline(lint_source("src/core/x.cpp", "int f() { return 1; }\n"), b);
  EXPECT_TRUE(gate.ok());  // paid-down debt never fails the gate
  ASSERT_EQ(gate.stale.size(), 1u);
  EXPECT_EQ(gate.stale[0].allowed, 3);
  EXPECT_EQ(gate.stale[0].actual, 0);
}

TEST(LintBaseline, JsonRoundTripAndFromFindings) {
  const auto findings = lint_source(
      "src/core/x.cpp", "bool f(double x) { return x == 1.5 || x == 2.5; }\n");
  ASSERT_EQ(findings.size(), 2u);
  const lint::Baseline b = lint::baseline_from_findings(findings);
  EXPECT_EQ(b.allowed("hyg-float-eq", "src/core/x.cpp"), 2);

  const lint::Baseline reparsed = lint::Baseline::from_json(b.to_json());
  EXPECT_EQ(reparsed.allowed("hyg-float-eq", "src/core/x.cpp"), 2);
  EXPECT_TRUE(lint::apply_baseline(findings, reparsed).ok());
}

TEST(LintBaseline, RejectsUnknownCheckIds) {
  util::Json doc = util::Json::parse(
      R"({"version":1,"entries":[{"check":"not-a-check","file":"a.cpp","count":1}]})");
  EXPECT_THROW(lint::Baseline::from_json(doc), NotFoundError);
}

// ---------------------------------------------------------------------------
// registry & report plumbing
// ---------------------------------------------------------------------------

TEST(LintRegistry, EveryCheckHasIdSeverityAndSummary) {
  const auto& checks = lint::all_checks();
  EXPECT_GE(checks.size(), 9u);
  for (const auto& c : checks) {
    EXPECT_FALSE(c.id.empty());
    EXPECT_FALSE(c.summary.empty());
    EXPECT_EQ(lint::check_severity(c.id), c.severity);
  }
  EXPECT_THROW(lint::check_severity("no-such-check"), NotFoundError);
}

TEST(LintReport, JsonCarriesCheckIdsAndOkFlag) {
  const auto findings =
      lint_source("src/core/x.cpp", "void f() { std::random_device rd; (void)rd; }\n");
  const lint::GateResult gate = lint::apply_baseline(findings, {});
  const util::Json doc = lint::report_json(gate, 1);
  EXPECT_FALSE(doc.at("ok").as_bool());
  ASSERT_EQ(doc.at("findings").as_array().size(), 1u);
  EXPECT_EQ(doc.at("findings").as_array()[0].at("check").as_string(), "det-rand");
  EXPECT_EQ(doc.at("findings").as_array()[0].at("severity").as_string(), "error");
}

// ---------------------------------------------------------------------------
// conc-lock-order
// ---------------------------------------------------------------------------

TEST(LintLockOrder, FlagsInvertedAcquisitionAcrossFunctions) {
  const std::string src =
      "class Pair {\n"
      "  void ab() {\n"
      "    std::lock_guard<std::mutex> g1(a_);\n"
      "    std::lock_guard<std::mutex> g2(b_);\n"
      "  }\n"
      "  void ba() {\n"
      "    std::lock_guard<std::mutex> g1(b_);\n"
      "    std::lock_guard<std::mutex> g2(a_);\n"
      "  }\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 2u);  // one per direction, at the inner acquisition
  for (const Finding& f : findings) {
    EXPECT_EQ(f.check, "conc-lock-order");
    EXPECT_EQ(f.severity, lint::Severity::Error);
    EXPECT_FALSE(f.hint.empty());
  }
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_EQ(findings[1].line, 8u);
}

TEST(LintLockOrder, ConsistentOrderAndManualLockPairsAreFine) {
  const std::string consistent =
      "class Pair {\n"
      "  void f() {\n"
      "    std::lock_guard<std::mutex> g1(a_);\n"
      "    std::lock_guard<std::mutex> g2(b_);\n"
      "  }\n"
      "  void g() {\n"
      "    std::lock_guard<std::mutex> g1(a_);\n"
      "    std::lock_guard<std::mutex> g2(b_);\n"
      "  }\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", consistent).empty());

  // Manual lock()/unlock(): the first hold ends before the second begins,
  // so no nesting edge exists in either direction.
  const std::string sequential =
      "class Pair {\n"
      "  void f() { a_.lock(); a_.unlock(); b_.lock(); b_.unlock(); }\n"
      "  void g() { b_.lock(); b_.unlock(); a_.lock(); a_.unlock(); }\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", sequential).empty());
}

TEST(LintLockOrder, FlagsManualLockNestingInversion) {
  const std::string src =
      "class Pair {\n"
      "  void f() { a_.lock(); b_.lock(); b_.unlock(); a_.unlock(); }\n"
      "  void g() { b_.lock(); a_.lock(); a_.unlock(); b_.unlock(); }\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].check, "conc-lock-order");
}

TEST(LintLockOrder, SuppressionSilencesBothDirections) {
  const std::string src =
      "class Pair {\n"
      "  void ab() {\n"
      "    std::lock_guard<std::mutex> g1(a_);\n"
      "    // acclaim-lint: allow(conc-lock-order)\n"
      "    std::lock_guard<std::mutex> g2(b_);\n"
      "  }\n"
      "  void ba() {\n"
      "    std::lock_guard<std::mutex> g1(b_);\n"
      "    // acclaim-lint: allow(conc-lock-order)\n"
      "    std::lock_guard<std::mutex> g2(a_);\n"
      "  }\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintLockOrder, DeferredGuardsDoNotCreateEdges) {
  const std::string src =
      "class Pair {\n"
      "  void ab() {\n"
      "    std::unique_lock<std::mutex> g1(a_);\n"
      "    std::unique_lock<std::mutex> g2(b_, std::defer_lock);\n"
      "  }\n"
      "  void ba() {\n"
      "    std::unique_lock<std::mutex> g1(b_);\n"
      "    std::unique_lock<std::mutex> g2(a_, std::defer_lock);\n"
      "  }\n"
      "  std::mutex a_;\n"
      "  std::mutex b_;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// conc-snapshot-escape
// ---------------------------------------------------------------------------

TEST(LintSnapshotEscape, FlagsReferenceIntoSnapshotInterior) {
  const std::string src =
      "void f(serve::ModelStore& store, serve::ModelKey key) {\n"
      "  const auto& model = store.lookup(key)->model;\n"
      "  use(model);\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "conc-snapshot-escape");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_FALSE(findings[0].hint.empty());
}

TEST(LintSnapshotEscape, FlagsDerefOfSnapshotResult) {
  const std::string src =
      "void f(Cache& cache) {\n"
      "  const Row& row = *cache.snapshot();\n"
      "  use(row);\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", src), "conc-snapshot-escape"));
}

TEST(LintSnapshotEscape, ValueCopiesAndWholeHandleBindsAreFine) {
  // A by-value copy owns its storage.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f(Store& s, Key k) {\n"
                          "  const auto model = s.lookup(k)->model;\n"
                          "  use(model);\n"
                          "}\n")
                  .empty());
  // Binding the whole returned handle keeps the owner alive.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f(Store& s, Key k) {\n"
                          "  const auto& snap = s.lookup(k);\n"
                          "  use(snap->model);\n"
                          "}\n")
                  .empty());
}

TEST(LintSnapshotEscape, SuppressionSilencesTheCheck) {
  const std::string src =
      "void f(Store& s, Key k) {\n"
      "  // acclaim-lint: allow(conc-snapshot-escape) owner outlives this frame\n"
      "  const auto& model = s.lookup(k)->model;\n"
      "  use(model);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// conc-unjoined-thread
// ---------------------------------------------------------------------------

TEST(LintUnjoinedThread, FlagsThreadThatIsNeverJoined) {
  const std::string src =
      "void f() {\n"
      "  std::thread worker(run_job);\n"
      "  do_other_work();\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "conc-unjoined-thread");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].hint.find("join"), std::string::npos);
}

TEST(LintUnjoinedThread, JoinedDetachedOrMovedThreadsAreFine) {
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f() {\n"
                          "  std::thread worker(run_job);\n"
                          "  worker.join();\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f() {\n"
                          "  std::thread bg(run_job);\n"
                          "  bg.detach();\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "std::thread make() {\n"
                          "  std::thread t(run_job);\n"
                          "  return t;\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f(Pool& pool) {\n"
                          "  std::thread t(run_job);\n"
                          "  pool.adopt(std::move(t));\n"
                          "}\n")
                  .empty());
  // std::jthread joins in its destructor by design.
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "void f() { std::jthread worker(run_job); }\n")
                  .empty());
}

TEST(LintUnjoinedThread, SuppressionSilencesTheCheck) {
  const std::string src =
      "void f() {\n"
      "  // acclaim-lint: allow(conc-unjoined-thread) joined by the harness\n"
      "  std::thread worker(run_job);\n"
      "  register_for_shutdown(worker);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// taint-unchecked-arith / taint-narrowing-cast
// ---------------------------------------------------------------------------

TEST(LintTaint, FlagsArithmeticOnRawParse) {
  const std::string src =
      "int f(const std::string& a, const std::string& b) {\n"
      "  return std::stoi(a) * std::stoi(b);\n"
      "}\n";
  const auto findings = lint_source("src/serve/x.cpp", src);
  ASSERT_FALSE(findings.empty());
  for (const Finding& f : findings) {
    EXPECT_EQ(f.check, "taint-unchecked-arith");
    EXPECT_EQ(f.severity, lint::Severity::Error);
    EXPECT_EQ(f.line, 2u);
  }
}

TEST(LintTaint, FlagsAllocationSizeFromTaintedLocal) {
  const std::string src =
      "std::size_t f(const std::string& s, std::vector<int>& v) {\n"
      "  const long n = std::stol(s);\n"
      "  v.resize(n);\n"
      "  return v.size();\n"
      "}\n";
  const auto findings = lint_source("src/serve/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "taint-unchecked-arith");
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("resize"), std::string::npos);
}

TEST(LintTaint, FlagsNewArraySizeFromRawParse) {
  const std::string src =
      "int* f(const std::string& s) {\n"
      "  // acclaim-lint: allow(hyg-naked-new)\n"
      "  return new int[std::stoul(s)];\n"
      "}\n";
  const auto findings = lint_source("src/serve/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "taint-unchecked-arith");
  EXPECT_NE(findings[0].message.find("new[]"), std::string::npos);
}

TEST(LintTaint, SanitizerWrapIsClean) {
  EXPECT_TRUE(lint_source("src/serve/x.cpp",
                          "void f(const std::string& s, std::vector<int>& v) {\n"
                          "  v.resize(checked_size(std::stol(s)));\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/serve/x.cpp",
                          "int f(const std::string& a, const std::string& b) {\n"
                          "  return serve::checked_comm_size(std::stoi(a), std::stoi(b));\n"
                          "}\n")
                  .empty());
}

TEST(LintTaint, RangeComparisonValidatesTheLocal) {
  const std::string src =
      "int f(const std::string& s) {\n"
      "  const int n = std::stoi(s);\n"
      "  if (n < 1 || n > 1024) { return 1; }\n"
      "  return n * 2;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/serve/x.cpp", src).empty());
}

TEST(LintTaint, FlagsNarrowingCastOfWideParse) {
  const std::string src =
      "int f(const std::string& s) {\n"
      "  return static_cast<int>(std::stoll(s));\n"
      "}\n";
  const auto findings = lint_source("src/serve/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "taint-narrowing-cast");
  EXPECT_EQ(findings[0].severity, lint::Severity::Error);
}

TEST(LintTaint, SameWidthAndWideningCastsAreFine) {
  // int-wide parse into an int-wide cast: no narrowing happens.
  EXPECT_TRUE(lint_source("src/serve/x.cpp",
                          "int f(const std::string& s) {\n"
                          "  return static_cast<int>(std::stoi(s));\n"
                          "}\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/serve/x.cpp",
                          "long long f(const std::string& s) {\n"
                          "  return static_cast<long long>(std::stoull(s));\n"
                          "}\n")
                  .empty());
}

TEST(LintTaint, TaintDoesNotPropagateThroughFunctionCalls) {
  // The callee may bound the value; flagging its result would taint half
  // the call graph (this exact shape was a false positive on
  // src/benchdata/microbenchmark.cpp during development).
  const std::string src =
      "int f(const std::string& s) {\n"
      "  const long iters = plan_iterations(std::stol(s));\n"
      "  return static_cast<int>(iters);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/serve/x.cpp", src).empty());
}

TEST(LintTaint, TestSourcesAndOtherLayersAreExempt) {
  const std::string src =
      "int f(const std::string& a, const std::string& b) {\n"
      "  return std::stoi(a) * std::stoi(b);\n"
      "}\n";
  EXPECT_TRUE(lint_source("tests/test_x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/ml/x.cpp", src).empty());
}

TEST(LintTaint, SuppressionSilencesTheCheck) {
  const std::string src =
      "int f(const std::string& a, const std::string& b) {\n"
      "  // acclaim-lint: allow(taint-unchecked-arith) inputs are compile-time constants\n"
      "  return std::stoi(a) * std::stoi(b);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/serve/x.cpp", src).empty());
}

TEST(LintTaint, FieldsTaintedInOneFunctionFlagUsesInAnother) {
  const std::string src =
      "void parse(Limits& lim, const char* s) { lim.cap = std::atol(s); }\n"
      "long scale(const Limits& lim) { return lim.cap * 8; }\n";
  const auto findings = lint_source("src/serve/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "taint-unchecked-arith");
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_NE(findings[0].message.find("cap"), std::string::npos);
}

TEST(LintTaint, SanitizedFieldAssignmentDoesNotTaint) {
  const std::string src =
      "void parse(Limits& lim, const char* s) { lim.cap = checked_cap(std::atol(s)); }\n"
      "long scale(const Limits& lim) { return lim.cap * 8; }\n";
  EXPECT_TRUE(lint_source("src/serve/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// drift-metric-name / drift-trace-event
// ---------------------------------------------------------------------------

namespace {

LintOptions drift_opt() {
  LintOptions opt;
  opt.telemetry_registry = util::Json::parse(
      R"({"metrics":[{"name":"app.requests","kind":"counter"}],)"
      R"("trace_events":["model_refit"]})");
  return opt;
}

}  // namespace

TEST(LintDrift, FlagsMetricMissingFromRegistry) {
  const std::string src =
      "void f() {\n"
      "  telemetry::metrics().counter(\"app.requests\").inc();\n"
      "  telemetry::metrics().counter(\"app.reqs\").inc();\n"
      "  trace(telemetry::EventKind::ModelRefit);\n"
      "}\n";
  const auto findings = lint_source("src/telemetry/x.cpp", src, drift_opt());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "drift-metric-name");
  EXPECT_EQ(findings[0].severity, lint::Severity::Warning);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("app.reqs"), std::string::npos);
}

TEST(LintDrift, FlagsRegistryEntriesNeverEmitted) {
  // The source emits nothing: both registry entries are stale, and the
  // findings attach to the registry file itself.
  const auto findings = lint_source("src/telemetry/x.cpp", "void f() {}\n", drift_opt());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "tools/telemetry_registry.json");
  EXPECT_TRUE(has_check(findings, "drift-metric-name"));
  EXPECT_TRUE(has_check(findings, "drift-trace-event"));
}

TEST(LintDrift, FlagsUnregisteredTraceEvent) {
  const std::string src =
      "void f() {\n"
      "  telemetry::metrics().counter(\"app.requests\").inc();\n"
      "  trace(telemetry::EventKind::ModelRefit);\n"
      "  trace(telemetry::EventKind::BatchScheduled);\n"
      "}\n";
  const auto findings = lint_source("src/telemetry/x.cpp", src, drift_opt());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "drift-trace-event");
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_NE(findings[0].message.find("batch_scheduled"), std::string::npos);
}

TEST(LintDrift, NullRegistryDisablesDriftChecks) {
  const std::string src =
      "void f() { telemetry::metrics().counter(\"totally.unknown\").inc(); }\n";
  EXPECT_TRUE(lint_source("src/telemetry/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// drift-dead-config
// ---------------------------------------------------------------------------

TEST(LintDeadConfig, FlagsConfigFieldNeverReadAnywhere) {
  const std::string src =
      "struct RetryConfig {\n"
      "  int attempts = 3;\n"
      "  double backoff_s = 0.5;\n"
      "};\n"
      "inline int plan(const RetryConfig& c) { return c.attempts; }\n";
  const auto findings = lint_source("src/serve/retry.hpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "drift-dead-config");
  EXPECT_EQ(findings[0].severity, lint::Severity::Warning);
  EXPECT_EQ(findings[0].line, 3u);
  EXPECT_NE(findings[0].message.find("backoff_s"), std::string::npos);
}

TEST(LintDeadConfig, FullyUsedConfigAndNonConfigStructsAreFine) {
  EXPECT_TRUE(lint_source("src/serve/retry.hpp",
                          "struct RetryConfig {\n"
                          "  int attempts = 3;\n"
                          "};\n"
                          "inline int plan(const RetryConfig& c) { return c.attempts; }\n")
                  .empty());
  // Not *Config / *Spec: field liveness is not this check's business.
  EXPECT_TRUE(lint_source("src/serve/retry.hpp",
                          "struct RetryState {\n"
                          "  int attempts = 3;\n"
                          "};\n")
                  .empty());
  // Methods and prototypes inside a config struct are not fields.
  EXPECT_TRUE(lint_source("src/serve/retry.hpp",
                          "struct WireSpec {\n"
                          "  int used = 1;\n"
                          "  int frame_bytes() const { return used; }\n"
                          "};\n"
                          "inline int f(const WireSpec& w) { return w.used; }\n")
                  .empty());
}

TEST(LintDeadConfig, SuppressionSilencesTheCheck) {
  const std::string src =
      "struct RetryConfig {\n"
      "  // acclaim-lint: allow(drift-dead-config) wired up in the next PR\n"
      "  double backoff_s = 0.5;\n"
      "};\n";
  EXPECT_TRUE(lint_source("src/serve/retry.hpp", src).empty());
}

// ---------------------------------------------------------------------------
// statement-extent suppression (an allow above a multi-line statement covers
// every line of the statement, not just the first)
// ---------------------------------------------------------------------------

TEST(LintSuppression, AllowCoversTheFullStatementExtent) {
  const std::string src =
      "bool f(double x, double y) {\n"
      "  // acclaim-lint: allow(hyg-float-eq) calibration table boundary\n"
      "  return x == 1.5 &&\n"
      "         y == 2.5;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());

  // Without the allow, both lines fire — proving the extension did the work.
  const std::string bare =
      "bool f(double x, double y) {\n"
      "  return x == 1.5 &&\n"
      "         y == 2.5;\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", bare);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 2u);
  EXPECT_EQ(findings[1].line, 3u);
}

TEST(LintSuppression, ExtendedAllowStopsAtTheStatementBoundary) {
  const std::string src =
      "bool g(double x) {\n"
      "  // acclaim-lint: allow(hyg-float-eq)\n"
      "  bool a = x ==\n"
      "      1.5;\n"
      "  return x == 2.5;\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 5u);
}

// ---------------------------------------------------------------------------
// lint_files: include-graph decl sharing, dedupe, determinism
// ---------------------------------------------------------------------------

TEST(LintFiles, HeaderDeclarationsReachIncludersWithoutRelexing) {
  const std::vector<lint::SourceFile> files = {
      {"src/core/flows.hpp", "class FlowTable { std::unordered_map<int, int> flows_; };\n"},
      {"src/core/flows.cpp",
       "#include \"core/flows.hpp\"\n"
       "int FlowTable::total() {\n"
       "  int s = 0;\n"
       "  for (auto& [k, v] : flows_) s += v;\n"
       "  return s;\n"
       "}\n"},
  };
  const lint::ProjectReport rep = lint::lint_files(files, {}, 2);
  EXPECT_EQ(rep.files, 2u);
  EXPECT_GT(rep.tokens, 0u);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].check, "det-unordered-iter");
  EXPECT_EQ(rep.findings[0].file, "src/core/flows.cpp");
  EXPECT_EQ(rep.findings[0].line, 4u);
}

TEST(LintFiles, DuplicatePathsAreScannedOnce) {
  const lint::SourceFile f = {"src/core/x.cpp",
                              "bool f(double x) { return x == 1.5; }\n"};
  const lint::ProjectReport rep = lint::lint_files({f, f, f}, {}, 2);
  EXPECT_EQ(rep.files, 1u);
  EXPECT_EQ(rep.findings.size(), 1u);
}

TEST(LintFiles, TaintedFieldsPropagateAcrossFiles) {
  const std::vector<lint::SourceFile> files = {
      {"tools/ingest.cpp",
       "void parse(Opts& o, const char* s) { o.width = std::atoll(s); }\n"},
      {"src/serve/use.cpp", "long f(const Opts& o) { return o.width * 2; }\n"},
  };
  const lint::ProjectReport rep = lint::lint_files(files, {}, 2);
  ASSERT_EQ(rep.findings.size(), 1u);
  EXPECT_EQ(rep.findings[0].check, "taint-unchecked-arith");
  EXPECT_EQ(rep.findings[0].file, "src/serve/use.cpp");
}

TEST(LintFiles, FindingOrderIsDeterministicAcrossThreadCounts) {
  std::vector<lint::SourceFile> files;
  for (char c = 'a'; c <= 'f'; ++c) {
    files.push_back({std::string("src/core/") + c + ".cpp",
                     "bool f(double x) { return x == 1.5; }\n"
                     "void g() { std::random_device rd; (void)rd; }\n"});
  }
  const lint::ProjectReport one = lint::lint_files(files, {}, 1);
  const lint::ProjectReport many = lint::lint_files(files, {}, 8);
  ASSERT_EQ(one.findings.size(), many.findings.size());
  for (std::size_t i = 0; i < one.findings.size(); ++i) {
    EXPECT_EQ(one.findings[i].check, many.findings[i].check);
    EXPECT_EQ(one.findings[i].file, many.findings[i].file);
    EXPECT_EQ(one.findings[i].line, many.findings[i].line);
  }
  // Sorted by (file, line, check, message).
  for (std::size_t i = 1; i < one.findings.size(); ++i) {
    EXPECT_LE(one.findings[i - 1].file, one.findings[i].file);
  }
}

// ---------------------------------------------------------------------------
// SARIF 2.1.0 emission
// ---------------------------------------------------------------------------

TEST(LintSarif, DocumentHasTheGitHubRequiredShape) {
  const auto findings =
      lint_source("src/core/x.cpp", "void f() { std::random_device rd; (void)rd; }\n");
  ASSERT_EQ(findings.size(), 1u);
  const util::Json doc = lint::sarif_report(findings);

  EXPECT_EQ(doc.at("version").as_string(), "2.1.0");
  EXPECT_NE(doc.at("$schema").as_string().find("sarif-schema-2.1.0"), std::string::npos);
  const auto& runs = doc.at("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);

  const util::Json& driver = runs[0].at("tool").at("driver");
  EXPECT_EQ(driver.at("name").as_string(), "acclaim-lint");
  const auto& rules = driver.at("rules").as_array();
  EXPECT_EQ(rules.size(), lint::all_checks().size());
  for (const util::Json& rule : rules) {
    EXPECT_FALSE(rule.at("id").as_string().empty());
    EXPECT_FALSE(rule.at("shortDescription").at("text").as_string().empty());
    const std::string level = rule.at("defaultConfiguration").at("level").as_string();
    EXPECT_TRUE(level == "error" || level == "warning");
  }

  const auto& results = runs[0].at("results").as_array();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].at("ruleId").as_string(), "det-rand");
  const auto idx = static_cast<std::size_t>(results[0].at("ruleIndex").as_int());
  ASSERT_LT(idx, rules.size());
  EXPECT_EQ(rules[idx].at("id").as_string(), "det-rand");
  EXPECT_EQ(results[0].at("level").as_string(), "error");
  EXPECT_FALSE(results[0].at("message").at("text").as_string().empty());
  const util::Json& loc = results[0].at("locations").as_array()[0].at("physicalLocation");
  EXPECT_EQ(loc.at("artifactLocation").at("uri").as_string(), "src/core/x.cpp");
  EXPECT_EQ(loc.at("region").at("startLine").as_int(), 1);
}

TEST(LintSarif, HintsLandInTheResultMessage) {
  const auto findings = lint_source("src/core/x.cpp",
                                    "void f() {\n"
                                    "  std::thread worker(run_job);\n"
                                    "  do_other_work();\n"
                                    "}\n");
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_FALSE(findings[0].hint.empty());
  const util::Json doc = lint::sarif_report(findings);
  const std::string text = doc.at("runs").as_array()[0].at("results").as_array()[0]
                               .at("message").at("text").as_string();
  EXPECT_NE(text.find("[fix:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// whole-repo scan: the shipped tree must be clean against an EMPTY baseline
// ---------------------------------------------------------------------------

TEST(LintRepoScan, ShippedTreeIsCleanAndBaselineStaysEmpty) {
  namespace fs = std::filesystem;
  const fs::path root = ACCLAIM_SOURCE_DIR;
  std::vector<lint::SourceFile> files;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path d = root / dir;
    if (!fs::exists(d)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(d)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      ASSERT_TRUE(in.good()) << entry.path();
      std::ostringstream text;
      text << in.rdbuf();
      files.push_back({fs::relative(entry.path(), root).generic_string(), text.str()});
    }
  }
  ASSERT_GT(files.size(), 50u);

  LintOptions opt;
  const fs::path registry = root / "tools" / "telemetry_registry.json";
  ASSERT_TRUE(fs::exists(registry));
  opt.telemetry_registry = util::Json::parse_file(registry.string());

  const lint::ProjectReport rep = lint::lint_files(files, opt, 4);
  EXPECT_EQ(rep.files, files.size());

  const lint::Baseline baseline =
      lint::Baseline::load((root / "tools" / "lint_baseline.json").string());
  // The ratchet criterion for this repo: no debt, and none hidden behind
  // baseline allowances either.
  EXPECT_TRUE(baseline.empty());
  const lint::GateResult gate = lint::apply_baseline(rep.findings, baseline);
  EXPECT_TRUE(gate.ok());
  for (const Finding& f : gate.fresh) {
    ADD_FAILURE() << f.file << ":" << f.line << " " << f.check << " " << f.message;
  }
}

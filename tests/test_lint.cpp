// Tests for tools/lint — the project-specific determinism/correctness
// static-analysis pass. Each check gets a positive (fires) and a negative
// (stays quiet on the idiomatic pattern) fixture, plus suppression-comment
// and baseline-ratchet behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "lint/lint.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace acclaim;
using lint::Finding;
using lint::lint_source;
using lint::LintOptions;

namespace {

std::vector<std::string> ids(const std::vector<Finding>& findings) {
  std::vector<std::string> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) {
    out.push_back(f.check);
  }
  return out;
}

bool has_check(const std::vector<Finding>& findings, const std::string& id) {
  const std::vector<std::string> v = ids(findings);
  return std::find(v.begin(), v.end(), id) != v.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// det-rand / det-wallclock and layer scoping
// ---------------------------------------------------------------------------

TEST(LintDetLayer, FlagsRandomDeviceInCore) {
  const std::string src = "void f() { std::random_device rd; (void)rd; }\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-rand");
  EXPECT_EQ(findings[0].severity, lint::Severity::Error);
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintDetLayer, FlagsLibcRandAndEngines) {
  EXPECT_TRUE(has_check(lint_source("src/ml/x.cpp", "int f() { return rand(); }\n"),
                        "det-rand"));
  EXPECT_TRUE(has_check(
      lint_source("src/simnet/x.cpp", "void f() { std::mt19937 gen(42); (void)gen; }\n"),
      "det-rand"));
}

TEST(LintDetLayer, FlagsWallClock) {
  EXPECT_TRUE(has_check(
      lint_source("src/benchdata/x.cpp",
                  "auto f() { return std::chrono::system_clock::now(); }\n"),
      "det-wallclock"));
  EXPECT_TRUE(has_check(
      lint_source("src/collectives/x.cpp", "long f() { return time(nullptr); }\n"),
      "det-wallclock"));
}

TEST(LintDetLayer, SteadyClockIsAllowed) {
  const auto findings = lint_source(
      "src/ml/x.cpp", "auto f() { return std::chrono::steady_clock::now(); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintDetLayer, NonDetLayersMayReadTheClock) {
  const std::string src = "auto f() { return std::chrono::system_clock::now(); }\n";
  EXPECT_TRUE(lint_source("src/util/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/telemetry/x.cpp", src).empty());
  EXPECT_TRUE(lint_source("tools/x.cpp", src).empty());
}

TEST(LintDetLayer, NamesInStringsAndCommentsDoNotFire) {
  const std::string src =
      "// std::random_device in a comment\n"
      "const char* s = \"system_clock and rand()\";\n"
      "/* time(nullptr) */\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintDetLayer, PreprocessorLinesDoNotFire) {
  EXPECT_TRUE(lint_source("src/core/x.cpp", "#include <random>\n#include <ctime>\n").empty());
}

// ---------------------------------------------------------------------------
// det-unordered-iter
// ---------------------------------------------------------------------------

TEST(LintUnorderedIter, FlagsRangeForOverUnorderedMember) {
  const std::string src =
      "std::unordered_map<int, int> m_;\n"
      "int f() { int s = 0; for (const auto& [k, v] : m_) { s += v; } return s; }\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-unordered-iter");
  EXPECT_EQ(findings[0].line, 2u);
}

TEST(LintUnorderedIter, CompanionHeaderDeclarationsAreVisible) {
  LintOptions opt;
  opt.companion_header = "class C { std::unordered_map<int, int> flows_; };\n";
  const std::string src = "int C::f() { int s = 0; for (auto& [k, v] : flows_) s += v; return s; }\n";
  EXPECT_TRUE(has_check(lint_source("src/minimpi/x.cpp", src, opt), "det-unordered-iter"));
}

TEST(LintUnorderedIter, OrderedMapIsFine) {
  const std::string src =
      "std::map<int, int> m_;\n"
      "int f() { int s = 0; for (const auto& [k, v] : m_) { s += v; } return s; }\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintUnorderedIter, TestsAreOutOfScope) {
  const std::string src =
      "std::unordered_map<int, int> m;\n"
      "void f() { for (auto& [k, v] : m) { (void)k; (void)v; } }\n";
  EXPECT_TRUE(lint_source("tests/test_x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// det-rng-ref-capture / par-shared-write / par-float-reduction
// ---------------------------------------------------------------------------

TEST(LintParallel, FlagsByRefRngAcrossParallelFor) {
  const std::string src =
      "void f(util::ThreadPool& pool, util::Rng& rng, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = rng.uniform();\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-rng-ref-capture");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(LintParallel, PreDerivedPerItemRngsAreFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<util::Rng>& rngs,\n"
      "       std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = rngs[i].uniform();\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, RngStreamInsideBodyIsFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    util::Rng item_rng = util::Rng::stream(7, i);\n"
      "    out[i] = item_rng.uniform();\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, FlagsSharedCounterWrite) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<int>& v) {\n"
      "  int done = 0;\n"
      "  pool.parallel_for(0, v.size(), [&](std::size_t i) {\n"
      "    v[i] = 1;\n"
      "    ++done;\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/simnet/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "par-shared-write");
  EXPECT_EQ(findings[0].line, 5u);
}

TEST(LintParallel, AtomicCounterIsFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<int>& v) {\n"
      "  std::atomic<int> done{0};\n"
      "  pool.parallel_for(0, v.size(), [&](std::size_t i) {\n"
      "    v[i] = 1;\n"
      "    ++done;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/simnet/x.cpp", src).empty());
}

TEST(LintParallel, SlotWritesAndBodyLocalsAreFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    double acc = 0.0;\n"
      "    acc += 1.0;\n"
      "    out[i] = acc;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, FlagsFloatReductionDistinctly) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& v) {\n"
      "  double sum = 0.0;\n"
      "  pool.parallel_for(0, v.size(), [&](std::size_t i) {\n"
      "    sum += v[i];\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/ml/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "par-float-reduction");
}

TEST(LintParallel, SubmitLambdasAreCoveredToo) {
  const std::string src =
      "void f(util::ThreadPool& pool) {\n"
      "  int hits = 0;\n"
      "  auto fut = pool.submit([&] { ++hits; });\n"
      "  fut.get();\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", src), "par-shared-write"));
}

TEST(LintParallel, FusedBlockedJackknifeLoopStaysClean) {
  // Mirror of the fused sweep in core/model.cpp: fixed-size blocks, a
  // thread_local row/scratch buffer, and slot writes through a pointer
  // offset. The reductions happen inside jackknife_batch over
  // thread-private scratch — nothing here may trip par-float-reduction.
  const std::string src =
      "void sweep(util::ThreadPool& pool, const ml::RandomForest& forest,\n"
      "           const std::vector<ml::FeatureRow>& rows, std::vector<double>& out) {\n"
      "  constexpr std::size_t kBlock = 16;\n"
      "  const std::size_t n_blocks = (rows.size() + kBlock - 1) / kBlock;\n"
      "  pool.parallel_for(0, n_blocks, [&](std::size_t b) {\n"
      "    const std::size_t lo = b * kBlock;\n"
      "    const std::size_t hi = std::min(rows.size(), lo + kBlock);\n"
      "    thread_local std::vector<double> scratch;\n"
      "    forest.jackknife_batch(rows.data() + lo, hi - lo, out.data() + lo, nullptr,\n"
      "                           scratch);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintParallel, MutatedFusedLoopWithSharedAccumulatorFires) {
  // The same shape gone wrong: accumulating the per-block result into one
  // captured double turns the sweep order-dependent.
  const std::string src =
      "void sweep(util::ThreadPool& pool, const ml::RandomForest& forest,\n"
      "           const std::vector<ml::FeatureRow>& rows, std::vector<double>& out) {\n"
      "  double total = 0.0;\n"
      "  pool.parallel_for(0, rows.size(), [&](std::size_t i) {\n"
      "    total += out[i];\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", src), "par-float-reduction"));
}

TEST(LintParallel, ShippedFusedKernelSourcesCarryNoFloatReductionFindings) {
  // Suppression audit on the real files: the hot fused-jackknife sources
  // must stay free of par-float-reduction findings (no new accumulation,
  // and no acclaim-lint:allow creeping in to silence one).
  for (const char* rel : {"src/core/model.cpp", "src/ml/flat_forest.cpp"}) {
    std::ifstream in(std::string(ACCLAIM_SOURCE_DIR "/") + rel, std::ios::binary);
    ASSERT_TRUE(in.good()) << rel;
    std::ostringstream text;
    text << in.rdbuf();
    ASSERT_GT(text.str().size(), 100u) << rel;
    EXPECT_FALSE(text.str().find("allow(par-float-reduction)") != std::string::npos) << rel;
    EXPECT_FALSE(has_check(lint_source(rel, text.str()), "par-float-reduction")) << rel;
  }
}

// ---------------------------------------------------------------------------
// det-audit-order
// ---------------------------------------------------------------------------

TEST(LintAuditOrder, FlagsAuditEmissionInsideParallelFor) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = 1.0;\n"
      "    telemetry::audit().record(make_record(i));\n"
      "  });\n"
      "}\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "det-audit-order");
  EXPECT_EQ(findings[0].severity, lint::Severity::Error);
}

TEST(LintAuditOrder, FlagsRecordConstructionAndCostObservationToo) {
  const std::string record_src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    telemetry::DecisionRecord rec;\n"
      "    out[i] = 1.0;\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", record_src), "det-audit-order"));

  const std::string cost_src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.submit([&] { telemetry::observe_decision_cost(5.0); });\n"
      "}\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", cost_src), "det-audit-order"));
}

TEST(LintAuditOrder, SerialEmissionAfterTheParallelRegionIsFine) {
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = 1.0;\n"
      "  });\n"
      "  telemetry::DecisionRecord rec;\n"
      "  telemetry::audit().record(std::move(rec));\n"
      "  telemetry::observe_decision_cost(5.0);\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintAuditOrder, UnrelatedAuditIdentifiersDoNotFire) {
  // An identifier that merely contains "audit" (`auditor`) is not the
  // telemetry::audit() emission call.
  const std::string src =
      "void f(util::ThreadPool& pool, std::vector<double>& out) {\n"
      "  pool.parallel_for(0, out.size(), [&](std::size_t i) {\n"
      "    out[i] = auditor.score(i);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// hygiene checks
// ---------------------------------------------------------------------------

TEST(LintHygiene, FlagsSwallowedCatch) {
  const std::string src =
      "void f() {\n"
      "  try { g(); } catch (const std::exception&) {\n"
      "  }\n"
      "}\n";
  const auto findings = lint_source("src/util/x.cpp", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "hyg-catch-log");
  EXPECT_EQ(findings[0].severity, lint::Severity::Warning);
}

TEST(LintHygiene, LoggingRethrowingOrAssertingCatchIsFine) {
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "void f() { try { g(); } catch (const std::exception& e) { "
                          "AC_LOG_WARN() << e.what(); } }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/util/x.cpp",
                          "void f() { try { g(); } catch (...) { throw; } }\n")
                  .empty());
  EXPECT_TRUE(lint_source("tests/test_x.cpp",
                          "TEST(A, B) { try { g(); FAIL(); } catch (const Error& e) { "
                          "EXPECT_NE(std::string(e.what()).find(\"x\"), std::string::npos); } }\n")
                  .empty());
}

TEST(LintHygiene, FlagsNakedNewButNotMakeUnique) {
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", "int* f() { return new int(3); }\n"),
                        "hyg-naked-new"));
  EXPECT_TRUE(lint_source("src/core/x.cpp",
                          "auto f() { return std::make_unique<int>(3); }\n")
                  .empty());
}

TEST(LintHygiene, FlagsFloatLiteralEquality) {
  const auto findings =
      lint_source("src/core/x.cpp", "bool f(double x) { return x == 1.5; }\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "hyg-float-eq");
  EXPECT_TRUE(lint_source("src/core/x.cpp", "bool f(double x) { return x < 1.5; }\n").empty());
  EXPECT_TRUE(lint_source("src/core/x.cpp", "bool f(int x) { return x == 2; }\n").empty());
}

// ---------------------------------------------------------------------------
// suppression comments
// ---------------------------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesTheCheck) {
  const std::string src =
      "bool f(double x) { return x == 1.5; }  // acclaim-lint: allow(hyg-float-eq)\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppression, PrecedingLineAllowSilencesTheCheck) {
  const std::string src =
      "// exact sentinel. acclaim-lint: allow(hyg-float-eq)\n"
      "bool f(double x) { return x == 1.5; }\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

TEST(LintSuppression, AllowOnlySilencesTheNamedCheck) {
  const std::string src =
      "// acclaim-lint: allow(hyg-naked-new)\n"
      "bool f(double x) { return x == 1.5; }\n";
  EXPECT_TRUE(has_check(lint_source("src/core/x.cpp", src), "hyg-float-eq"));
}

TEST(LintSuppression, AllowListAcceptsMultipleIds) {
  const std::string src =
      "// acclaim-lint: allow(hyg-float-eq, hyg-naked-new)\n"
      "int* f(double x) { return x == 1.5 ? new int(1) : nullptr; }\n";
  EXPECT_TRUE(lint_source("src/core/x.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// baseline ratchet
// ---------------------------------------------------------------------------

TEST(LintBaseline, CoversKnownDebtAndFailsNewFindings) {
  const std::string src =
      "bool f(double x) { return x == 1.5; }\n"
      "bool g(double x) { return x != 2.5; }\n";
  const auto findings = lint_source("src/core/x.cpp", src);
  ASSERT_EQ(findings.size(), 2u);

  lint::Baseline covers_both;
  covers_both.set("hyg-float-eq", "src/core/x.cpp", 2);
  const lint::GateResult ok = lint::apply_baseline(findings, covers_both);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.baselined.size(), 2u);
  EXPECT_TRUE(ok.stale.empty());

  lint::Baseline covers_one;
  covers_one.set("hyg-float-eq", "src/core/x.cpp", 1);
  const lint::GateResult over = lint::apply_baseline(findings, covers_one);
  EXPECT_FALSE(over.ok());
  ASSERT_EQ(over.fresh.size(), 1u);
  EXPECT_EQ(over.fresh[0].check, "hyg-float-eq");
}

TEST(LintBaseline, StaleEntriesAreReportedForRatcheting) {
  lint::Baseline b;
  b.set("hyg-float-eq", "src/core/x.cpp", 3);
  const lint::GateResult gate =
      lint::apply_baseline(lint_source("src/core/x.cpp", "int f() { return 1; }\n"), b);
  EXPECT_TRUE(gate.ok());  // paid-down debt never fails the gate
  ASSERT_EQ(gate.stale.size(), 1u);
  EXPECT_EQ(gate.stale[0].allowed, 3);
  EXPECT_EQ(gate.stale[0].actual, 0);
}

TEST(LintBaseline, JsonRoundTripAndFromFindings) {
  const auto findings = lint_source(
      "src/core/x.cpp", "bool f(double x) { return x == 1.5 || x == 2.5; }\n");
  ASSERT_EQ(findings.size(), 2u);
  const lint::Baseline b = lint::baseline_from_findings(findings);
  EXPECT_EQ(b.allowed("hyg-float-eq", "src/core/x.cpp"), 2);

  const lint::Baseline reparsed = lint::Baseline::from_json(b.to_json());
  EXPECT_EQ(reparsed.allowed("hyg-float-eq", "src/core/x.cpp"), 2);
  EXPECT_TRUE(lint::apply_baseline(findings, reparsed).ok());
}

TEST(LintBaseline, RejectsUnknownCheckIds) {
  util::Json doc = util::Json::parse(
      R"({"version":1,"entries":[{"check":"not-a-check","file":"a.cpp","count":1}]})");
  EXPECT_THROW(lint::Baseline::from_json(doc), NotFoundError);
}

// ---------------------------------------------------------------------------
// registry & report plumbing
// ---------------------------------------------------------------------------

TEST(LintRegistry, EveryCheckHasIdSeverityAndSummary) {
  const auto& checks = lint::all_checks();
  EXPECT_GE(checks.size(), 9u);
  for (const auto& c : checks) {
    EXPECT_FALSE(c.id.empty());
    EXPECT_FALSE(c.summary.empty());
    EXPECT_EQ(lint::check_severity(c.id), c.severity);
  }
  EXPECT_THROW(lint::check_severity("no-such-check"), NotFoundError);
}

TEST(LintReport, JsonCarriesCheckIdsAndOkFlag) {
  const auto findings =
      lint_source("src/core/x.cpp", "void f() { std::random_device rd; (void)rd; }\n");
  const lint::GateResult gate = lint::apply_baseline(findings, {});
  const util::Json doc = lint::report_json(gate, 1);
  EXPECT_FALSE(doc.at("ok").as_bool());
  ASSERT_EQ(doc.at("findings").as_array().size(), 1u);
  EXPECT_EQ(doc.at("findings").as_array()[0].at("check").as_string(), "det-rand");
  EXPECT_EQ(doc.at("findings").as_array()[0].at("severity").as_string(), "error");
}

// Unit tests for the minimpi layer: schedule IR, data executor semantics,
// cost executor contention behaviour.
#include <gtest/gtest.h>

#include "minimpi/cost_executor.hpp"
#include "minimpi/data_executor.hpp"
#include "minimpi/ops.hpp"
#include "minimpi/schedule.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/network.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim::minimpi;
using acclaim::simnet::Allocation;
using acclaim::simnet::NetworkModel;
using acclaim::simnet::tiny_test_machine;
using acclaim::simnet::Topology;

TEST(Ops, ScalarAndVectorAgree) {
  for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod}) {
    double dst[3] = {1.0, 5.0, -2.0};
    const double src[3] = {4.0, 2.0, -3.0};
    double expect[3];
    for (int i = 0; i < 3; ++i) {
      expect[i] = reduce_scalar(op, dst[i], src[i]);
    }
    apply_reduce(op, dst, src, 3);
    for (int i = 0; i < 3; ++i) {
      EXPECT_DOUBLE_EQ(dst[i], expect[i]) << reduce_op_name(op) << " elem " << i;
    }
  }
}

TEST(Ops, IdentityElements) {
  for (ReduceOp op : {ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::Prod}) {
    EXPECT_DOUBLE_EQ(reduce_scalar(op, reduce_identity(op), 7.5), 7.5);
  }
}

TEST(Schedule, ValidateRejectsBadTransfers) {
  Round r;
  EXPECT_THROW(validate_round(r, 4), acclaim::InvalidArgument);  // empty
  r.add(Round::copy(0, BufKind::Send, 0, 5, BufKind::Recv, 0, 8));
  EXPECT_THROW(validate_round(r, 4), acclaim::InvalidArgument);  // dst out of range
  Round zero;
  zero.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 0));
  EXPECT_THROW(validate_round(zero, 4), acclaim::InvalidArgument);  // zero bytes
  Round ok;
  ok.add(Round::combine(0, BufKind::Send, 8, 1, BufKind::Recv, 0, 16));
  EXPECT_NO_THROW(validate_round(ok, 4));
}

TEST(RecordingSink, CountsTransfersAndNetworkBytes) {
  RecordingSink sink;
  Round r1;
  r1.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 64));
  r1.add(Round::copy(2, BufKind::Send, 0, 2, BufKind::Recv, 0, 128));  // local
  sink.on_round(r1);
  Round r2;
  r2.add(Round::copy(1, BufKind::Recv, 0, 0, BufKind::Recv, 0, 32));
  sink.on_round(r2);
  EXPECT_EQ(sink.rounds().size(), 2u);
  EXPECT_EQ(sink.total_transfers(), 3u);
  EXPECT_EQ(sink.network_bytes(), 96u);
}

TEST(DataExecutor, CopiesBetweenRanks) {
  DataExecutor exec(2, 16, 16, 0);
  exec.buffer(0, BufKind::Send) = {1.5, 2.5};
  Round r;
  r.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 16));
  exec.on_round(r);
  EXPECT_EQ(exec.buffer(1, BufKind::Recv), (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(exec.rounds_executed(), 1u);
}

TEST(DataExecutor, SendrecvReadsPreRoundState) {
  // Ranks 0 and 1 swap simultaneously: both must see the other's pre-round
  // value, not the freshly written one.
  DataExecutor exec(2, 8, 8, 0);
  exec.buffer(0, BufKind::Recv) = {10.0};
  exec.buffer(1, BufKind::Recv) = {20.0};
  Round r;
  r.add(Round::copy(0, BufKind::Recv, 0, 1, BufKind::Recv, 0, 8));
  r.add(Round::copy(1, BufKind::Recv, 0, 0, BufKind::Recv, 0, 8));
  exec.on_round(r);
  EXPECT_DOUBLE_EQ(exec.buffer(0, BufKind::Recv)[0], 20.0);
  EXPECT_DOUBLE_EQ(exec.buffer(1, BufKind::Recv)[0], 10.0);
}

TEST(DataExecutor, ReduceCombines) {
  DataExecutor exec(2, 8, 8, 0, ReduceOp::Sum);
  exec.buffer(0, BufKind::Recv) = {3.0};
  exec.buffer(1, BufKind::Recv) = {4.0};
  Round r;
  r.add(Round::combine(1, BufKind::Recv, 0, 0, BufKind::Recv, 0, 8));
  exec.on_round(r);
  EXPECT_DOUBLE_EQ(exec.buffer(0, BufKind::Recv)[0], 7.0);
  EXPECT_DOUBLE_EQ(exec.buffer(1, BufKind::Recv)[0], 4.0);
}

TEST(DataExecutor, SymmetricReduceExchange) {
  // Both directions of a reducing exchange see pre-round values.
  DataExecutor exec(2, 8, 8, 0, ReduceOp::Sum);
  exec.buffer(0, BufKind::Recv) = {3.0};
  exec.buffer(1, BufKind::Recv) = {4.0};
  Round r;
  r.add(Round::combine(0, BufKind::Recv, 0, 1, BufKind::Recv, 0, 8));
  r.add(Round::combine(1, BufKind::Recv, 0, 0, BufKind::Recv, 0, 8));
  exec.on_round(r);
  EXPECT_DOUBLE_EQ(exec.buffer(0, BufKind::Recv)[0], 7.0);
  EXPECT_DOUBLE_EQ(exec.buffer(1, BufKind::Recv)[0], 7.0);
}

TEST(DataExecutor, RejectsMisalignedTransfers) {
  DataExecutor exec(2, 16, 16, 0);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 4, 1, BufKind::Recv, 0, 8));
  EXPECT_THROW(exec.on_round(r), acclaim::InvalidArgument);
  Round r2;
  r2.add(Round::combine(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 12));
  EXPECT_THROW(exec.on_round(r2), acclaim::InvalidArgument);
}

TEST(DataExecutor, BoundsChecked) {
  DataExecutor exec(2, 16, 16, 0);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 8, 1, BufKind::Recv, 0, 16));  // reads past end
  EXPECT_THROW(exec.on_round(r), acclaim::InvalidArgument);
  Round w;
  w.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 8, 16));  // writes past end
  EXPECT_THROW(exec.on_round(w), acclaim::InvalidArgument);
}

TEST(RankMap, BlockMapping) {
  const Allocation alloc({0, 3});
  const RankMap rm(alloc, 2);
  EXPECT_EQ(rm.nranks(), 4);
  EXPECT_EQ(rm.node_of(0), 0);
  EXPECT_EQ(rm.node_of(1), 0);
  EXPECT_EQ(rm.node_of(2), 3);
  EXPECT_THROW(rm.node_of(4), acclaim::InvalidArgument);
}

class CostExecutorTest : public testing::Test {
 protected:
  CostExecutorTest() : topo_(tiny_test_machine()), net_(topo_, 0) {}
  Topology topo_;
  NetworkModel net_;
};

TEST_F(CostExecutorTest, SingleTransferMatchesNetworkModel) {
  const Allocation alloc({0, 4});  // global link
  const RankMap rm(alloc, 1);
  CostExecutor cost(net_, rm);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 1024));
  cost.on_round(r);
  const double expected =
      net_.transfer_time_us(0, 4, 1024) + net_.params().round_overhead_us;
  EXPECT_NEAR(cost.elapsed_us(), expected, 1e-9);
}

TEST_F(CostExecutorTest, RoundTimeIsMaxOfTransfers) {
  const Allocation alloc({0, 1, 4, 5});
  const RankMap rm(alloc, 1);
  CostExecutor cost(net_, rm);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 64));    // intra-rack, fast
  r.add(Round::copy(2, BufKind::Send, 0, 3, BufKind::Recv, 0, 4096));  // intra-rack, big
  cost.on_round(r);
  const double slow = net_.transfer_time_us(4, 5, 4096);
  EXPECT_NEAR(cost.elapsed_us(), slow + net_.params().round_overhead_us, 1e-9);
}

TEST_F(CostExecutorTest, NicContentionSerializesFanout) {
  const Allocation alloc({0, 1});
  const RankMap rm(alloc, 2);  // ranks 0,1 on node 0; ranks 2,3 on node 1
  // One sender pushing to two receivers on the other node pays 2x on the
  // bytes term compared with a single stream (the fixed alpha/chunking
  // terms are unaffected, so the ratio sits between 1 and 2).
  CostExecutor one(net_, rm);
  Round single;
  single.add(Round::copy(0, BufKind::Send, 0, 2, BufKind::Recv, 0, 100000));
  one.on_round(single);

  CostExecutor two(net_, rm);
  Round fan;
  fan.add(Round::copy(0, BufKind::Send, 0, 2, BufKind::Recv, 0, 100000));
  fan.add(Round::copy(0, BufKind::Send, 0, 3, BufKind::Recv, 0, 100000));
  two.on_round(fan);
  EXPECT_GT(two.elapsed_us(), 1.5 * one.elapsed_us() - net_.params().round_overhead_us);
  EXPECT_LT(two.elapsed_us(), 2.0 * one.elapsed_us());
}

TEST_F(CostExecutorTest, IntraNodeTransfersDoNotLoadNic) {
  const Allocation alloc({0, 1});
  const RankMap rm(alloc, 2);
  // Reference: the cross-node transfer on its own.
  CostExecutor solo(net_, rm);
  Round only_cross;
  only_cross.add(Round::copy(2, BufKind::Send, 0, 0, BufKind::Recv, 0, 100000));
  solo.on_round(only_cross);

  // Adding a shared-memory transfer on the same node must not add NIC
  // contention to the cross-node transfer.
  CostExecutor cost(net_, rm);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 100000));  // same node
  r.add(Round::copy(2, BufKind::Send, 0, 0, BufKind::Recv, 0, 100000));  // cross node
  cost.on_round(r);
  EXPECT_NEAR(cost.elapsed_us(), solo.elapsed_us(), 1e-6);
}

TEST_F(CostExecutorTest, LocalCopiesAreCheap) {
  const Allocation alloc({0});
  const RankMap rm(alloc, 2);
  CostExecutor cost(net_, rm);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 0, 0, BufKind::Recv, 0, 1 << 20));
  cost.on_round(r);
  EXPECT_LT(cost.elapsed_us(), 100.0);
}

TEST_F(CostExecutorTest, ExternalLoadCongestsSharedRacks) {
  const Allocation alloc({0, 2});  // rack 0 -> rack 1, same pair
  const RankMap rm(alloc, 1);
  CostExecutor calm(net_, rm);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 1 << 18));
  calm.on_round(r);

  CostExecutor congested(net_, rm);
  congested.set_external_load({{0, 16}, {1, 16}}, {});
  Round r2;
  r2.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 1 << 18));
  congested.on_round(r2);
  EXPECT_GT(congested.elapsed_us(), 2.0 * calm.elapsed_us());
}

TEST_F(CostExecutorTest, ReduceTransfersChargeComputeTime) {
  const Allocation alloc({0, 4});
  const RankMap rm(alloc, 1);
  CostExecutor plain(net_, rm);
  Round r;
  r.add(Round::copy(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 1 << 16));
  plain.on_round(r);
  CostExecutor reducing(net_, rm);
  Round r2;
  r2.add(Round::combine(0, BufKind::Send, 0, 1, BufKind::Recv, 0, 1 << 16));
  reducing.on_round(r2);
  EXPECT_GT(reducing.elapsed_us(), plain.elapsed_us());
}

}  // namespace

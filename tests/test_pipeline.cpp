// Integration tests: the full ACCLAiM pipeline (train -> rules -> engine ->
// application) on a small simulated machine.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "core/pipeline.hpp"
#include "platform/app_model.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;
using bench::Scenario;
using coll::Collective;

core::ActiveLearnerConfig fast_learner() {
  core::ActiveLearnerConfig cfg;
  cfg.forest.n_trees = 40;
  cfg.max_points = 120;
  return cfg;
}

/// The pipeline run plus the telemetry trace it emitted — the run happens
/// once, with the tracer's in-memory ring active, so the telemetry tests
/// see exactly the events of the run the functional tests assert on.
struct PipelineArtifacts {
  core::PipelineResult result;
  std::vector<telemetry::TraceEvent> trace;
};

class PipelineTest : public testing::Test {
 public:
  static const PipelineArtifacts& artifacts() {
    static const PipelineArtifacts a = [] {
      telemetry::tracer().enable_ring(1 << 16);
      core::AcclaimPipeline pipeline(testing_support::small_machine(), fast_learner());
      core::JobSpec spec;
      spec.collectives = {Collective::Bcast, Collective::Allreduce};
      spec.nnodes = 8;
      spec.ppn = 4;
      spec.min_msg = 64;
      spec.max_msg = 64 * 1024;
      spec.job_seed = 5;
      spec.machine_busy_fraction = 0.2;
      PipelineArtifacts out{pipeline.run(spec), {}};
      out.trace = telemetry::tracer().ring_snapshot();
      telemetry::tracer().disable();
      return out;
    }();
    return a;
  }

  static const core::PipelineResult& result() { return artifacts().result; }
};

TEST_F(PipelineTest, TrainsEveryRequestedCollective) {
  const auto& r = result();
  ASSERT_EQ(r.training.size(), 2u);
  for (const auto& t : r.training) {
    EXPECT_GT(t.points, 0u);
    EXPECT_GT(t.train_time_s, 0.0);
  }
  EXPECT_NEAR(r.total_training_s, r.training[0].train_time_s + r.training[1].train_time_s,
              1e-6);
  EXPECT_EQ(r.allocation.num_nodes(), 8);
}

TEST_F(PipelineTest, UsesParallelCollection) {
  int max_batch = 1;
  for (const auto& t : result().training) {
    max_batch = std::max(max_batch, t.max_batch);
  }
  EXPECT_GT(max_batch, 1);
}

TEST_F(PipelineTest, ProducesValidConfigDocument) {
  const auto& r = result();
  // The document parses, covers exactly the requested collectives, and
  // validates (complete + pruned).
  const auto tables = core::rules_from_json(r.config);
  ASSERT_EQ(tables.size(), 2u);
  const core::SelectionEngine engine = r.engine();
  EXPECT_TRUE(engine.covers(Collective::Bcast));
  EXPECT_TRUE(engine.covers(Collective::Allreduce));
  EXPECT_FALSE(engine.covers(Collective::Reduce));
  // Any scenario inside the tuned ranges resolves.
  EXPECT_NO_THROW(engine.select({Collective::Bcast, 8, 4, 777}));
  EXPECT_NO_THROW(engine.select({Collective::Allreduce, 2, 1, 64 * 1024}));
}

TEST_F(PipelineTest, TunedEngineBeatsDefaultHeuristicOnThisJob) {
  const auto& r = result();
  const core::SelectionEngine engine = r.engine();
  // Ground truth for this job's network: a fresh exhaustive collection with
  // the same job seed and allocation.
  const simnet::Topology topo(testing_support::small_machine());
  bench::FeatureGrid grid = bench::FeatureGrid::p2(8, 4, 64, 64 * 1024);
  core::LiveEnvironment env(topo, r.allocation, r.job_seed);
  bench::Dataset truth;
  for (Collective c : {Collective::Bcast, Collective::Allreduce}) {
    for (const auto& p : grid.points(c)) {
      truth.add(p, env.measure(p));
    }
  }
  const core::Evaluator ev(truth);
  double tuned_total = 0.0;
  double heuristic_total = 0.0;
  for (Collective c : {Collective::Bcast, Collective::Allreduce}) {
    const auto test = grid.scenarios(c);
    const double tuned =
        ev.average_slowdown(test, [&](const Scenario& s) { return engine.select(s); });
    tuned_total += tuned;
    heuristic_total += ev.average_slowdown(test, core::mpich_default_selection);
    // The trained engine must be near-optimal on its own job regardless of
    // how lucky the static defaults got on this network realization.
    EXPECT_LT(tuned, 1.10) << coll::collective_name(c);
  }
  // And never meaningfully worse than the defaults.
  EXPECT_LT(tuned_total, heuristic_total + 0.08);
}

TEST_F(PipelineTest, EmitsTrainingIterationsForEveryCollective) {
  const telemetry::RunReport report = telemetry::build_report(artifacts().trace);
  // At least one training_iteration event per trained collective, with a
  // variance trajectory the report can render.
  ASSERT_EQ(report.trajectories.size(), 2u);
  EXPECT_GE(report.trajectories.at("bcast").size(), 1u);
  EXPECT_GE(report.trajectories.at("allreduce").size(), 1u);
  EXPECT_GT(report.benchmark_runs, 0u);
  EXPECT_GT(report.model_refits, 0u);
  EXPECT_GT(report.points_acquired, 0u);
}

TEST_F(PipelineTest, PhaseSimTimesSumToTotalTraining) {
  const telemetry::RunReport report = telemetry::build_report(artifacts().trace);
  // One phase per collective; their simulated durations are exactly the
  // per-collective training times, so the sum must match the pipeline's
  // total (well inside the 5% acceptance bound).
  ASSERT_EQ(report.phases.size(), 2u);
  for (const auto& p : report.phases) {
    EXPECT_TRUE(p.has_outcome) << p.label;
    EXPECT_GT(p.sim_s, 0.0) << p.label;
    EXPECT_GE(p.wall_ms, 0.0) << p.label;
  }
  const double total = result().total_training_s;
  EXPECT_NEAR(report.total_sim_s, total, 0.05 * total);
}

TEST(Pipeline, RejectsBadJobSpecs) {
  core::AcclaimPipeline pipeline(testing_support::small_machine(), fast_learner());
  core::JobSpec spec;
  spec.collectives = {};
  EXPECT_THROW(pipeline.run(spec), InvalidArgument);
  spec.collectives = {Collective::Bcast};
  spec.nnodes = 1;
  EXPECT_THROW(pipeline.run(spec), InvalidArgument);
  spec.nnodes = 1024;  // larger than the machine
  EXPECT_THROW(pipeline.run(spec), InvalidArgument);
}

TEST(Pipeline, BreakEvenIsHoursForSmallSpeedups) {
  // Fig. 14 + Fig. 15 logic: training minutes => break-even hours at 1.01x.
  const auto& r = PipelineTest::result();
  const double breakeven_h =
      platform::breakeven_runtime_s(r.total_training_s, 1.01) / 3600.0;
  EXPECT_GT(breakeven_h, 0.1);
  EXPECT_LT(breakeven_h, 48.0);
}

}  // namespace

// Property tests on schedule *shape* and *cost*: round counts match the
// textbook complexity of each algorithm, non-power-of-two rank counts pay
// the expected fold/unfold penalty exactly where the paper says they should,
// and costs behave monotonically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "collectives/builders.hpp"
#include "collectives/types.hpp"
#include "minimpi/cost_executor.hpp"
#include "minimpi/schedule.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/network.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim;
using coll::Algorithm;
using coll::CollParams;
using minimpi::RecordingSink;

int log2ceil(int n) {
  int l = 0;
  while ((1 << l) < n) {
    ++l;
  }
  return l;
}

RecordingSink record(Algorithm alg, int nranks, std::uint64_t count = 64) {
  RecordingSink sink;
  CollParams p;
  p.nranks = nranks;
  p.count = count;
  p.type_size = 8;
  coll::build_schedule(alg, p, sink);
  return sink;
}

double cost_of(Algorithm alg, const simnet::Topology& topo, int nnodes, int ppn,
               std::uint64_t msg_bytes, std::uint64_t seed = 0) {
  const simnet::NetworkModel net(topo, seed);
  std::vector<int> node_ids(static_cast<std::size_t>(nnodes));
  for (int i = 0; i < nnodes; ++i) {
    node_ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(node_ids);
  const minimpi::RankMap rm(alloc, ppn);
  minimpi::CostExecutor cost(net, rm);
  CollParams p;
  p.nranks = nnodes * ppn;
  p.type_size = 1;
  p.count = msg_bytes;
  coll::build_schedule(alg, p, cost);
  return cost.elapsed_us();
}

// ---------------------------------------------------------------- shapes

TEST(ScheduleShape, BcastBinomialRoundsAreLogarithmic) {
  for (int n : {2, 3, 8, 13, 16, 33}) {
    const auto sink = record(Algorithm::BcastBinomial, n);
    EXPECT_EQ(static_cast<int>(sink.rounds().size()), log2ceil(n)) << "n=" << n;
  }
}

TEST(ScheduleShape, BcastBinomialMovesFullPayloadPerHop) {
  const auto sink = record(Algorithm::BcastBinomial, 8, 100);
  // 7 receivers x 800 bytes.
  EXPECT_EQ(sink.network_bytes(), 7u * 800u);
}

TEST(ScheduleShape, RingAllgatherHasNMinusOneNetworkRounds) {
  for (int n : {2, 5, 8, 12}) {
    const auto sink = record(Algorithm::AllgatherRing, n);
    // +1 for the initial local staging round.
    EXPECT_EQ(static_cast<int>(sink.rounds().size()), n) << "n=" << n;
  }
}

TEST(ScheduleShape, BruckRoundsAreLogarithmicPlusStagingAndRotation) {
  for (int n : {2, 5, 8, 13, 16}) {
    const auto sink = record(Algorithm::AllgatherBruck, n);
    EXPECT_EQ(static_cast<int>(sink.rounds().size()), log2ceil(n) + 2) << "n=" << n;
  }
}

TEST(ScheduleShape, RecursiveDoublingPaysFoldRoundsOffPowerOfTwo) {
  const auto p2 = record(Algorithm::AllreduceRecursiveDoubling, 16);
  const auto nonp2 = record(Algorithm::AllreduceRecursiveDoubling, 17);
  // P2: staging + log2(16) rounds. Non-P2 adds fold + unfold.
  EXPECT_EQ(p2.rounds().size(), 1u + 4u);
  EXPECT_EQ(nonp2.rounds().size(), 1u + 4u + 2u);
}

TEST(ScheduleShape, RabensseiferTotalTrafficNearOptimal) {
  // Recursive doubling moves n*log2(p) bytes per rank; reduce-scatter +
  // allgather moves ~2n*(p-1)/p per rank. At p=16 the ratio is ~2x.
  const auto rsa = record(Algorithm::AllreduceReduceScatterAllgather, 16, 4096);
  const auto rdb = record(Algorithm::AllreduceRecursiveDoubling, 16, 4096);
  EXPECT_LT(static_cast<double>(rsa.network_bytes()),
            static_cast<double>(rdb.network_bytes()) / 1.9);
}

/// Max bytes *sent by any single rank* — the serialization bottleneck.
std::uint64_t max_rank_tx(const RecordingSink& sink, int nranks) {
  std::vector<std::uint64_t> tx(static_cast<std::size_t>(nranks), 0);
  for (const auto& round : sink.rounds()) {
    for (const auto& t : round.transfers) {
      if (t.src_rank != t.dst_rank) {
        tx[static_cast<std::size_t>(t.src_rank)] += t.bytes;
      }
    }
  }
  return *std::max_element(tx.begin(), tx.end());
}

TEST(ScheduleShape, ScatterVariantsRelieveTheRootBottleneck) {
  // The root of a binomial bcast retransmits the full payload log2(p)
  // times; scatter-based variants spread that load across ranks.
  const auto binomial = record(Algorithm::BcastBinomial, 16, 16384);
  const auto ring = record(Algorithm::BcastScatterRingAllgather, 16, 16384);
  EXPECT_LT(max_rank_tx(ring, 16), max_rank_tx(binomial, 16) / 2);
}

TEST(ScheduleShape, AllRoundsValidateForRandomParams) {
  util::Rng rng(123);
  for (int trial = 0; trial < 40; ++trial) {
    const auto& infos = coll::all_algorithms();
    const auto& info = infos[rng.index(infos.size())];
    CollParams p;
    p.nranks = static_cast<int>(rng.uniform_int(1, 40));
    p.count = static_cast<std::uint64_t>(rng.uniform_int(1, 500));
    p.type_size = 8;
    const bool rooted = info.collective == coll::Collective::Bcast ||
                        info.collective == coll::Collective::Reduce;
    p.root = rooted ? static_cast<int>(rng.uniform_int(0, p.nranks - 1)) : 0;
    RecordingSink sink;
    ASSERT_NO_THROW(coll::build_schedule(info.alg, p, sink))
        << info.name << " n=" << p.nranks << " count=" << p.count;
    for (const auto& round : sink.rounds()) {
      ASSERT_NO_THROW(minimpi::validate_round(round, p.nranks));
    }
  }
}

// ------------------------------------------------------------------ costs

class CollectiveCosts : public testing::Test {
 protected:
  CollectiveCosts() : topo_(simnet::bebop_like()) {}
  simnet::Topology topo_;
};

TEST_F(CollectiveCosts, MonotoneInMessageSize) {
  for (const auto& info : coll::all_algorithms()) {
    double prev = 0.0;
    for (std::uint64_t msg = 64; msg <= (1u << 20); msg <<= 4) {
      const double t = cost_of(info.alg, topo_, 16, 4, msg);
      EXPECT_GT(t, prev * 0.999) << info.name << " msg=" << msg;
      prev = t;
    }
  }
}

TEST_F(CollectiveCosts, PositiveAndFinite) {
  for (const auto& info : coll::all_algorithms()) {
    for (int nodes : {1, 2, 7, 16}) {
      const double t = cost_of(info.alg, topo_, nodes, 2, 1024);
      EXPECT_GT(t, 0.0) << info.name;
      EXPECT_TRUE(std::isfinite(t)) << info.name;
    }
  }
}

TEST_F(CollectiveCosts, BinomialBcastWinsSmallMessages) {
  const double binom = cost_of(Algorithm::BcastBinomial, topo_, 32, 8, 16);
  const double ring = cost_of(Algorithm::BcastScatterRingAllgather, topo_, 32, 8, 16);
  EXPECT_LT(binom, ring);
}

TEST_F(CollectiveCosts, RingBcastWinsVeryLargeMessages) {
  const double binom = cost_of(Algorithm::BcastBinomial, topo_, 32, 8, 1 << 20);
  const double ring = cost_of(Algorithm::BcastScatterRingAllgather, topo_, 32, 8, 1 << 20);
  EXPECT_LT(ring, binom);
}

TEST_F(CollectiveCosts, RecursiveDoublingAllreduceWinsSmallMessages) {
  const double rdb = cost_of(Algorithm::AllreduceRecursiveDoubling, topo_, 32, 4, 64);
  const double rsa = cost_of(Algorithm::AllreduceReduceScatterAllgather, topo_, 32, 4, 64);
  EXPECT_LT(rdb, rsa);
}

TEST_F(CollectiveCosts, RabensseiferAllreduceWinsLargeMessages) {
  const double rdb = cost_of(Algorithm::AllreduceRecursiveDoubling, topo_, 32, 4, 1 << 20);
  const double rsa = cost_of(Algorithm::AllreduceReduceScatterAllgather, topo_, 32, 4, 1 << 20);
  EXPECT_LT(rsa, rdb);
}

TEST_F(CollectiveCosts, P2FavoringAlgorithmsShowNonP2Cliff) {
  // Going from 8 to 9 nodes (both within one rack, so no topology-boundary
  // effect) should hurt a P2-favoring algorithm far more than a
  // P2-insensitive one (paper §III-B). Recursive doubling pays fold/unfold
  // rounds of the full vector; ring only pays one extra ordinary round.
  const double rdb8 = cost_of(Algorithm::AllreduceRecursiveDoubling, topo_, 8, 1, 1 << 16);
  const double rdb9 = cost_of(Algorithm::AllreduceRecursiveDoubling, topo_, 9, 1, 1 << 16);
  const double ring8 = cost_of(Algorithm::AllgatherRing, topo_, 8, 1, 1 << 12);
  const double ring9 = cost_of(Algorithm::AllgatherRing, topo_, 9, 1, 1 << 12);
  const double rdb_penalty = rdb9 / rdb8;
  const double ring_penalty = ring9 / ring8;
  EXPECT_GT(rdb_penalty, 1.3);
  EXPECT_LT(ring_penalty, 1.25);
  EXPECT_GT(rdb_penalty, ring_penalty * 1.15);
}

TEST_F(CollectiveCosts, ScatteredAllocationIsSlower) {
  // The same job on nodes spread across pairs must be slower than packed in
  // one rack (the non-programmatic allocation effect).
  const simnet::NetworkModel net(topo_, 0);
  auto run = [&](const simnet::Allocation& alloc) {
    const minimpi::RankMap rm(alloc, 4);
    minimpi::CostExecutor cost(net, rm);
    CollParams p;
    p.nranks = alloc.num_nodes() * 4;
    p.type_size = 1;
    p.count = 1 << 16;
    coll::build_schedule(Algorithm::AllreduceRecursiveDoubling, p, cost);
    return cost.elapsed_us();
  };
  const double packed = run(simnet::Allocation({0, 1, 2, 3}));
  const double spread = run(simnet::Allocation({0, 16, 32, 48}));
  EXPECT_GT(spread, packed);
}

TEST_F(CollectiveCosts, JobSeedCreatesLatencySpread) {
  double lo = 1e30;
  double hi = 0.0;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const double t = cost_of(Algorithm::BcastBinomial, topo_, 16, 2, 64, seed);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_GT(hi / lo, 1.3);  // different jobs, visibly different latency
}

}  // namespace

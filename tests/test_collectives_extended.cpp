// Correctness tests for the extended collective set: gather, scatter,
// alltoall, reduce_scatter_block, barrier — byte-accurate execution checked
// against each collective's mathematical definition, across P2 and non-P2
// rank counts and roots.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "collectives/types.hpp"
#include "minimpi/data_executor.hpp"
#include "minimpi/ops.hpp"
#include "util/error.hpp"

namespace {

using acclaim::coll::Algorithm;
using acclaim::coll::algorithm_info;
using acclaim::coll::buffer_requirements;
using acclaim::coll::Collective;
using acclaim::coll::CollParams;
using acclaim::minimpi::BufKind;
using acclaim::minimpi::DataExecutor;
using acclaim::minimpi::ReduceOp;

double input_value(int rank, std::uint64_t i) {
  return static_cast<double>(rank + 1) * 1000.0 + static_cast<double>(i);
}

DataExecutor run_collective(Algorithm alg, const CollParams& p) {
  const Collective c = algorithm_info(alg).collective;
  const auto sizes = buffer_requirements(c, p);
  DataExecutor exec(p.nranks, sizes.send_bytes, sizes.recv_bytes, sizes.tmp_bytes,
                    ReduceOp::Sum);
  const std::uint64_t send_elems = sizes.send_bytes / 8;
  for (int r = 0; r < p.nranks; ++r) {
    auto& send = exec.buffer(r, BufKind::Send);
    for (std::uint64_t i = 0; i < send_elems; ++i) {
      send[i] = input_value(r, i);
    }
  }
  build_schedule(alg, p, exec);
  return exec;
}

struct Case {
  Algorithm alg;
  int nranks;
  std::uint64_t count;
  int root;
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  const auto& ai = algorithm_info(c.alg);
  return std::string(acclaim::coll::collective_name(ai.collective)) + "_" + ai.name + "_n" +
         std::to_string(c.nranks) + "_c" + std::to_string(c.count) + "_r" +
         std::to_string(c.root);
}

class ExtendedCollectives : public testing::TestWithParam<Case> {};

TEST_P(ExtendedCollectives, ProducesDefinedResult) {
  const Case& c = GetParam();
  CollParams p;
  p.nranks = c.nranks;
  p.count = c.count;
  p.type_size = 8;
  p.root = c.root;
  const Collective coll = algorithm_info(c.alg).collective;
  const DataExecutor exec = run_collective(c.alg, p);
  const int n = p.nranks;
  switch (coll) {
    case Collective::Gather: {
      // Root's recv = concatenation of every rank's contribution, by rank.
      const auto& recv = exec.buffer(p.root, BufKind::Recv);
      for (int s = 0; s < n; ++s) {
        for (std::uint64_t i = 0; i < p.count; ++i) {
          ASSERT_DOUBLE_EQ(recv[static_cast<std::uint64_t>(s) * p.count + i],
                           input_value(s, i))
              << "source " << s << " elem " << i;
        }
      }
      break;
    }
    case Collective::Scatter: {
      // Rank r's recv = root's block r.
      for (int r = 0; r < n; ++r) {
        const auto& recv = exec.buffer(r, BufKind::Recv);
        for (std::uint64_t i = 0; i < p.count; ++i) {
          ASSERT_DOUBLE_EQ(recv[i],
                           input_value(p.root, static_cast<std::uint64_t>(r) * p.count + i))
              << "rank " << r << " elem " << i;
        }
      }
      break;
    }
    case Collective::Alltoall: {
      // Rank r's recv block s = rank s's send block r.
      for (int r = 0; r < n; ++r) {
        const auto& recv = exec.buffer(r, BufKind::Recv);
        for (int s = 0; s < n; ++s) {
          for (std::uint64_t i = 0; i < p.count; ++i) {
            ASSERT_DOUBLE_EQ(recv[static_cast<std::uint64_t>(s) * p.count + i],
                             input_value(s, static_cast<std::uint64_t>(r) * p.count + i))
                << "rank " << r << " from " << s << " elem " << i;
          }
        }
      }
      break;
    }
    case Collective::ReduceScatterBlock: {
      // Rank r's recv = sum over sources of their block r.
      for (int r = 0; r < n; ++r) {
        const auto& recv = exec.buffer(r, BufKind::Recv);
        for (std::uint64_t i = 0; i < p.count; ++i) {
          double expect = 0.0;
          for (int s = 0; s < n; ++s) {
            expect += input_value(s, static_cast<std::uint64_t>(r) * p.count + i);
          }
          ASSERT_NEAR(recv[i], expect, 1e-6) << "rank " << r << " elem " << i;
        }
      }
      break;
    }
    case Collective::Barrier:
      // No data contract; the schedule executed without violations.
      SUCCEED();
      break;
    default: FAIL() << "not an extended collective";
  }
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const std::vector<Algorithm> algs = {
      Algorithm::GatherBinomial,
      Algorithm::GatherLinear,
      Algorithm::ScatterBinomial,
      Algorithm::ScatterLinear,
      Algorithm::AlltoallBruck,
      Algorithm::AlltoallPairwise,
      Algorithm::ReduceScatterBlockRecursiveHalving,
      Algorithm::ReduceScatterBlockPairwise,
      Algorithm::BarrierDissemination,
      Algorithm::BarrierRecursiveDoubling,
  };
  for (Algorithm alg : algs) {
    const Collective c = algorithm_info(alg).collective;
    const bool rooted = c == Collective::Gather || c == Collective::Scatter;
    for (int n : {1, 2, 3, 5, 8, 11, 16, 21}) {
      for (std::uint64_t cnt : {1ull, 4ull, 9ull}) {
        if (cnt != 4 && n != 5 && n != 8) {
          continue;  // full count sweep only at two rank counts
        }
        cases.push_back({alg, n, cnt, 0});
        if (rooted && n >= 3 && cnt == 4) {
          cases.push_back({alg, n, cnt, n / 2});
          cases.push_back({alg, n, cnt, n - 1});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Extended, ExtendedCollectives, testing::ValuesIn(make_cases()),
                         case_name);

TEST(ExtendedRegistry, FullRegistryAcrossNineCollectives) {
  // 20 standard algorithms + 4 experimental SMP-aware + 2 pipelined chain.
  EXPECT_EQ(acclaim::coll::all_algorithms().size(), 26u);
  EXPECT_EQ(acclaim::coll::all_collectives().size(), 9u);
  EXPECT_EQ(acclaim::coll::paper_collectives().size(), 4u);
  EXPECT_EQ(acclaim::coll::algorithms_for(Collective::Gather).size(), 2u);
  EXPECT_EQ(acclaim::coll::algorithms_for(Collective::Alltoall).size(), 2u);
  EXPECT_EQ(acclaim::coll::algorithms_for(Collective::Barrier).size(), 2u);
  EXPECT_EQ(acclaim::coll::parse_collective("alltoall"), Collective::Alltoall);
  EXPECT_EQ(acclaim::coll::parse_algorithm(Collective::Barrier, "dissemination"),
            Algorithm::BarrierDissemination);
}

TEST(ExtendedShapes, BarrierRoundsAreLogarithmic) {
  for (int n : {2, 3, 8, 13, 16}) {
    acclaim::minimpi::RecordingSink sink;
    CollParams p;
    p.nranks = n;
    p.count = 1;
    build_schedule(Algorithm::BarrierDissemination, p, sink);
    int expected = 0;
    while ((1 << expected) < n) {
      ++expected;
    }
    EXPECT_EQ(static_cast<int>(sink.rounds().size()), expected) << "n=" << n;
  }
}

TEST(ExtendedShapes, LinearGatherSerializesAtTheRoot) {
  // All transfers target the root; the contention model must see fan-in.
  acclaim::minimpi::RecordingSink sink;
  CollParams p;
  p.nranks = 8;
  p.count = 16;
  build_schedule(Algorithm::GatherLinear, p, sink);
  ASSERT_EQ(sink.rounds().size(), 1u);
  for (const auto& t : sink.rounds()[0].transfers) {
    EXPECT_EQ(t.dst_rank, 0);
  }
}

TEST(ExtendedShapes, AlltoallBruckMovesLessThanPairwiseForManyRanks) {
  // Bruck: ~log2(p) rounds; pairwise: p-1 rounds + self round.
  acclaim::minimpi::RecordingSink bruck;
  acclaim::minimpi::RecordingSink pairwise;
  CollParams p;
  p.nranks = 16;
  p.count = 4;
  build_schedule(Algorithm::AlltoallBruck, p, bruck);
  build_schedule(Algorithm::AlltoallPairwise, p, pairwise);
  EXPECT_LT(bruck.rounds().size(), pairwise.rounds().size());
}

}  // namespace

// Tests for rule generation (Fig. 9), the JSON config format, and the
// runtime selection engine.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/rulegen.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;
using bench::BenchmarkPoint;
using bench::Scenario;
using coll::Algorithm;
using coll::Collective;
using core::BucketKey;
using core::kRuleMax;
using core::RuleTable;
using core::SelectionRule;

RuleTable tiny_table() {
  RuleTable t(Collective::Bcast);
  t.set_bucket(BucketKey{4, 2},
               {{1024, Algorithm::BcastBinomial},
                {kRuleMax, Algorithm::BcastScatterRingAllgather}});
  t.set_bucket(BucketKey{16, 8}, {{kRuleMax, Algorithm::BcastBinomial}});
  return t;
}

TEST(RuleTable, LookupWalksThresholds) {
  const RuleTable t = tiny_table();
  EXPECT_EQ(t.lookup({Collective::Bcast, 4, 2, 512}), Algorithm::BcastBinomial);
  EXPECT_EQ(t.lookup({Collective::Bcast, 4, 2, 1024}), Algorithm::BcastBinomial);
  EXPECT_EQ(t.lookup({Collective::Bcast, 4, 2, 1025}), Algorithm::BcastScatterRingAllgather);
}

TEST(RuleTable, LookupFallsBackToNearestBucket) {
  const RuleTable t = tiny_table();
  // (8, 4) is log-equidistant; either bucket is acceptable, but (32, 8) is
  // clearly closest to (16, 8).
  EXPECT_EQ(t.lookup({Collective::Bcast, 32, 8, 1 << 20}), Algorithm::BcastBinomial);
  EXPECT_EQ(t.lookup({Collective::Bcast, 2, 2, 1 << 20}),
            Algorithm::BcastScatterRingAllgather);
}

TEST(RuleTable, ValidateCatchesIncompleteAndUnprunedSets) {
  RuleTable incomplete(Collective::Bcast);
  incomplete.set_bucket(BucketKey{4, 2}, {{1024, Algorithm::BcastBinomial}});
  EXPECT_THROW(incomplete.validate(), InvalidArgument);

  RuleTable unpruned(Collective::Bcast);
  unpruned.set_bucket(BucketKey{4, 2}, {{1024, Algorithm::BcastBinomial},
                                        {kRuleMax, Algorithm::BcastBinomial}});
  EXPECT_THROW(unpruned.validate(), InvalidArgument);

  RuleTable unordered(Collective::Bcast);
  unordered.set_bucket(BucketKey{4, 2},
                       {{2048, Algorithm::BcastBinomial},
                        {1024, Algorithm::BcastScatterRingAllgather},
                        {kRuleMax, Algorithm::BcastBinomial}});
  EXPECT_THROW(unordered.validate(), InvalidArgument);

  RuleTable wrong_coll(Collective::Bcast);
  wrong_coll.set_bucket(BucketKey{4, 2}, {{kRuleMax, Algorithm::AllgatherRing}});
  EXPECT_THROW(wrong_coll.validate(), InvalidArgument);

  EXPECT_NO_THROW(tiny_table().validate());
}

class RuleGenTest : public testing::Test {
 protected:
  RuleGenTest()
      : ds_(testing_support::small_dataset()), space_(testing_support::small_space()) {
    std::vector<core::LabeledPoint> data;
    for (const BenchmarkPoint& p : ds_.points(Collective::Bcast)) {
      data.push_back({p, ds_.at(p).mean_us});
    }
    model_ = core::CollectiveModel(Collective::Bcast);
    model_.fit(data, 3);
  }
  const bench::Dataset& ds_;
  core::FeatureSpace space_;
  core::CollectiveModel model_;
};

TEST_F(RuleGenTest, GeneratedTableIsCompleteAndPruned) {
  core::RuleGeneratorStats stats;
  const RuleTable table = core::RuleGenerator().generate(model_, space_, &stats);
  EXPECT_NO_THROW(table.validate());
  EXPECT_EQ(stats.buckets,
            static_cast<int>(space_.nodes().size() * space_.ppns().size()));
  EXPECT_GT(stats.rules, 0);
}

TEST_F(RuleGenTest, RulesAgreeWithModelOnGridPoints) {
  const RuleTable table = core::RuleGenerator().generate(model_, space_);
  for (const Scenario& s : space_.scenarios(Collective::Bcast)) {
    EXPECT_EQ(table.lookup(s), model_.select(s)) << s.to_string();
  }
}

TEST_F(RuleGenTest, MidpointQueriesPreserveNonP2Selections) {
  core::RuleGeneratorStats stats;
  const RuleTable table = core::RuleGenerator().generate(model_, space_, &stats);
  // Wherever the model changes its mind between adjacent P2 sizes, the
  // midpoint must have been queried and the rule between A and C must match
  // the model's selection at B (Fig. 9 semantics).
  int transitions = 0;
  for (int nnodes : space_.nodes()) {
    for (int ppn : space_.ppns()) {
      const auto& msgs = space_.msgs();
      for (std::size_t i = 1; i < msgs.size(); ++i) {
        const Scenario a{Collective::Bcast, nnodes, ppn, msgs[i - 1]};
        const Scenario c{Collective::Bcast, nnodes, ppn, msgs[i]};
        if (model_.select(a) != model_.select(c)) {
          ++transitions;
          const std::uint64_t bmsg = msgs[i - 1] + (msgs[i] - msgs[i - 1]) / 2;
          const Scenario b{Collective::Bcast, nnodes, ppn, bmsg};
          EXPECT_EQ(table.lookup(b), model_.select(b)) << b.to_string();
        }
      }
    }
  }
  EXPECT_GT(transitions, 0);  // the dataset must exercise the midpoint logic
  EXPECT_EQ(stats.midpoint_queries, transitions);
}

TEST_F(RuleGenTest, JsonRoundTripPreservesSelections) {
  const RuleTable table = core::RuleGenerator().generate(model_, space_);
  const util::Json doc = core::rules_to_json({table});
  EXPECT_EQ(doc.at("format").as_string(), "acclaim-coll-tuning-v1");
  const auto back = core::rules_from_json(doc);
  ASSERT_EQ(back.size(), 1u);
  for (const Scenario& s : space_.scenarios(Collective::Bcast)) {
    EXPECT_EQ(back[0].lookup(s), table.lookup(s));
  }
  // Serialized form parses after a text round trip too.
  const auto reparsed = core::rules_from_json(util::Json::parse(doc.dump(2)));
  EXPECT_EQ(reparsed[0].lookup({Collective::Bcast, 4, 2, 999}),
            table.lookup({Collective::Bcast, 4, 2, 999}));
}

TEST_F(RuleGenTest, SelectionEngineSelectsAndReportsCoverage) {
  const RuleTable table = core::RuleGenerator().generate(model_, space_);
  const core::SelectionEngine engine = core::SelectionEngine::from_json(
      core::rules_to_json({table}));
  EXPECT_TRUE(engine.covers(Collective::Bcast));
  EXPECT_FALSE(engine.covers(Collective::Reduce));
  EXPECT_EQ(engine.select({Collective::Bcast, 4, 2, 256}),
            table.lookup({Collective::Bcast, 4, 2, 256}));
  EXPECT_THROW(engine.select({Collective::Reduce, 4, 2, 256}), NotFoundError);
}

TEST_F(RuleGenTest, EngineSelectionsAreNearOptimal) {
  // End to end: model -> rules -> JSON -> engine; the engine's selections
  // should inherit the model's quality.
  const RuleTable table = core::RuleGenerator().generate(model_, space_);
  const core::SelectionEngine engine = core::SelectionEngine::from_json(
      core::rules_to_json({table}));
  const core::Evaluator ev(ds_);
  const auto test = space_.scenarios(Collective::Bcast);
  const double slow = ev.average_slowdown(
      test, [&](const Scenario& s) { return engine.select(s); });
  EXPECT_LT(slow, 1.05);
}

TEST(SelectionEngine, RejectsMalformedDocuments) {
  EXPECT_THROW(core::rules_from_json(util::Json::parse("{\"format\": \"bogus\"}")),
               InvalidArgument);
  EXPECT_THROW(core::SelectionEngine::from_json(util::Json::parse(
                   R"({"format": "acclaim-coll-tuning-v1",
                       "collectives": {"bcast": [{"nnodes": 4, "ppn": 2,
                         "rules": [{"msg_size_le": 64, "algorithm": "binomial"}]}]}})")),
               InvalidArgument);  // incomplete rule set
}

}  // namespace

// Tests for the ML stack: CART trees, random forests, jackknife variance,
// metrics. Includes property-style parameterized checks on synthetic
// regression targets.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/forest.hpp"
#include "ml/metrics.hpp"
#include "ml/tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim;
using ml::DecisionTree;
using ml::FeatureRow;
using ml::ForestParams;
using ml::RandomForest;
using ml::TreeParams;

struct Synth {
  std::vector<FeatureRow> X;
  std::vector<double> y;
};

/// y = step function of x0 plus linear term of x1 (+ optional noise).
Synth make_synth(std::size_t n, double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  Synth s;
  for (std::size_t i = 0; i < n; ++i) {
    const double x0 = rng.uniform(0, 10);
    const double x1 = rng.uniform(0, 1);
    const double y = (x0 > 5.0 ? 10.0 : 0.0) + 3.0 * x1 + rng.normal(0.0, noise);
    s.X.push_back({x0, x1});
    s.y.push_back(y);
  }
  return s;
}

TEST(DecisionTree, FitsConstantTarget) {
  DecisionTree t;
  util::Rng rng(1);
  t.fit({{0.0}, {1.0}, {2.0}}, {5.0, 5.0, 5.0}, TreeParams{}, rng);
  EXPECT_DOUBLE_EQ(t.predict({0.5}), 5.0);
  EXPECT_DOUBLE_EQ(t.predict({9.0}), 5.0);
  EXPECT_EQ(t.node_count(), 1u);  // pure target -> single leaf
}

TEST(DecisionTree, LearnsStepFunctionExactly) {
  const Synth s = make_synth(400, 0.0, 2);
  DecisionTree t;
  util::Rng rng(1);
  t.fit(s.X, s.y, TreeParams{}, rng);
  for (std::size_t i = 0; i < s.X.size(); ++i) {
    EXPECT_NEAR(t.predict(s.X[i]), s.y[i], 1e-9);
  }
}

TEST(DecisionTree, GeneralizesAStep) {
  const Synth s = make_synth(500, 0.1, 3);
  DecisionTree t;
  util::Rng rng(1);
  TreeParams p;
  p.min_samples_leaf = 5;
  t.fit(s.X, s.y, p, rng);
  EXPECT_NEAR(t.predict({2.0, 0.5}), 1.5, 1.0);
  EXPECT_NEAR(t.predict({8.0, 0.5}), 11.5, 1.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  const Synth s = make_synth(300, 0.0, 4);
  DecisionTree t;
  util::Rng rng(1);
  TreeParams p;
  p.max_depth = 3;
  t.fit(s.X, s.y, p, rng);
  EXPECT_LE(t.depth(), 3);
}

TEST(DecisionTree, MinSamplesLeafBoundsLeafSize) {
  const Synth s = make_synth(128, 0.5, 5);
  DecisionTree deep;
  DecisionTree shallow;
  util::Rng rng(1);
  TreeParams p1;
  p1.min_samples_leaf = 1;
  deep.fit(s.X, s.y, p1, rng);
  TreeParams p2;
  p2.min_samples_leaf = 32;
  shallow.fit(s.X, s.y, p2, rng);
  EXPECT_LT(shallow.node_count(), deep.node_count());
}

TEST(DecisionTree, RejectsBadInput) {
  DecisionTree t;
  util::Rng rng(1);
  EXPECT_THROW(t.fit({}, {}, TreeParams{}, rng), InvalidArgument);
  EXPECT_THROW(t.fit({{1.0}}, {1.0, 2.0}, TreeParams{}, rng), InvalidArgument);
  EXPECT_THROW(t.fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}, TreeParams{}, rng), InvalidArgument);
  EXPECT_THROW(t.predict({1.0}), InvalidArgument);  // not fitted
  t.fit({{1.0}, {2.0}}, {1.0, 2.0}, TreeParams{}, rng);
  EXPECT_THROW(t.predict({1.0, 2.0}), InvalidArgument);  // wrong width
}

TEST(DecisionTree, BootstrapSampleIndicesRespected) {
  // Fitting on indices {0,0,0} must ignore the other rows entirely.
  DecisionTree t;
  util::Rng rng(1);
  t.fit({{1.0}, {2.0}}, {7.0, 99.0}, {0, 0, 0}, TreeParams{}, rng);
  EXPECT_DOUBLE_EQ(t.predict({2.0}), 7.0);
}

TEST(RandomForest, PredictIsMeanOfTrees) {
  const Synth s = make_synth(200, 0.3, 6);
  RandomForest f;
  ForestParams p;
  p.n_trees = 16;
  f.fit(s.X, s.y, p, 9);
  const FeatureRow probe{3.3, 0.7};
  const std::vector<double> preds = f.predict_trees(probe);
  ASSERT_EQ(preds.size(), 16u);
  double mean = 0.0;
  for (double v : preds) {
    mean += v;
  }
  mean /= 16.0;
  EXPECT_NEAR(f.predict(probe), mean, 1e-12);
}

TEST(RandomForest, PredictTreesShrinksAnOversizedOutput) {
  const Synth s = make_synth(120, 0.3, 5);
  RandomForest f;
  ForestParams p;
  p.n_trees = 6;
  f.fit(s.X, s.y, p, 3);
  const FeatureRow probe{1.0, 0.5};
  // The out-parameter contract says "resized to n_trees": a too-large
  // buffer must shrink, never keep stale tail predictions, on both engines.
  for (const ml::ForestBackend backend : {ml::ForestBackend::Flat, ml::ForestBackend::Pointer}) {
    ml::ForestBackendGuard guard(backend);
    std::vector<double> out(64, -1.0);
    f.predict_trees(probe, out);
    ASSERT_EQ(out.size(), 6u);
    EXPECT_EQ(out, f.predict_trees(probe));
  }
}

TEST(RandomForest, DeterministicForSeed) {
  const Synth s = make_synth(200, 0.3, 7);
  RandomForest a;
  RandomForest b;
  ForestParams p;
  p.n_trees = 8;
  a.fit(s.X, s.y, p, 42);
  b.fit(s.X, s.y, p, 42);
  for (int i = 0; i < 20; ++i) {
    const FeatureRow probe{static_cast<double>(i) * 0.5, 0.3};
    EXPECT_DOUBLE_EQ(a.predict(probe), b.predict(probe));
  }
}

TEST(RandomForest, SmoothsNoiseBetterThanSingleTree) {
  const Synth train = make_synth(400, 2.0, 8);
  const Synth test = make_synth(200, 0.0, 9);  // noiseless ground truth
  DecisionTree tree;
  util::Rng rng(1);
  tree.fit(train.X, train.y, TreeParams{}, rng);
  RandomForest forest;
  ForestParams p;
  p.n_trees = 64;
  forest.fit(train.X, train.y, p, 10);
  std::vector<double> tree_pred;
  std::vector<double> forest_pred;
  for (const auto& row : test.X) {
    tree_pred.push_back(tree.predict(row));
    forest_pred.push_back(forest.predict(row));
  }
  EXPECT_LT(ml::rmse(test.y, forest_pred), ml::rmse(test.y, tree_pred));
}

TEST(Jackknife, MatchesPaperFormulaExactly) {
  // Hand-computed: p = {1, 2, 3, 6}; mean = 3.
  // x_i = means with one removed: {11/3, 10/3, 3, 2}.
  // sum((3 - x_i)^2) = (2/3)^2 + (1/3)^2 + 0 + 1 = 14/9; / (n-1) = 14/27.
  EXPECT_NEAR(ml::jackknife_variance({1, 2, 3, 6}), 14.0 / 27.0, 1e-12);
}

TEST(Jackknife, ZeroForAgreementAndDegenerateInput) {
  EXPECT_DOUBLE_EQ(ml::jackknife_variance({5, 5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(ml::jackknife_variance({}), 0.0);
  EXPECT_DOUBLE_EQ(ml::jackknife_variance({3.0}), 0.0);
}

TEST(Jackknife, GrowsWithDisagreement) {
  EXPECT_LT(ml::jackknife_variance({1, 1.1, 0.9, 1}), ml::jackknife_variance({1, 5, -3, 1}));
}

TEST(Jackknife, ForestVarianceShrinksWithTrainingData) {
  // A forest trained on more data should be less uncertain at an
  // interpolated probe point.
  const Synth big = make_synth(500, 0.5, 11);
  const Synth small{std::vector<FeatureRow>(big.X.begin(), big.X.begin() + 12),
                    std::vector<double>(big.y.begin(), big.y.begin() + 12)};
  ForestParams p;
  p.n_trees = 64;
  RandomForest f_small;
  f_small.fit(small.X, small.y, p, 12);
  RandomForest f_big;
  f_big.fit(big.X, big.y, p, 12);
  const FeatureRow probe{5.2, 0.5};  // near the step edge: genuinely uncertain
  EXPECT_LT(ml::jackknife_variance(f_big.predict_trees(probe)),
            ml::jackknife_variance(f_small.predict_trees(probe)));
}

TEST(Metrics, KnownValues) {
  const std::vector<double> truth{1, 2, 3, 4};
  const std::vector<double> pred{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ml::mae(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(ml::rmse(truth, pred), 0.0);
  EXPECT_DOUBLE_EQ(ml::r2(truth, pred), 1.0);
  const std::vector<double> off{2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(ml::mae(truth, off), 1.0);
  EXPECT_DOUBLE_EQ(ml::rmse(truth, off), 1.0);
  // Predicting the mean gives r2 = 0.
  const std::vector<double> mean_pred{2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(ml::r2(truth, mean_pred), 0.0, 1e-12);
  EXPECT_THROW(ml::mae({1.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(ml::r2({}, {}), InvalidArgument);
}

// Property sweep: forests of any size fit their training data reasonably.
class ForestSizes : public testing::TestWithParam<int> {};

TEST_P(ForestSizes, TrainingFitIsReasonable) {
  const Synth s = make_synth(300, 0.2, 13);
  RandomForest f;
  ForestParams p;
  p.n_trees = GetParam();
  f.fit(s.X, s.y, p, 14);
  std::vector<double> pred;
  for (const auto& row : s.X) {
    pred.push_back(f.predict(row));
  }
  EXPECT_GT(ml::r2(s.y, pred), 0.95) << "n_trees=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, ForestSizes, testing::Values(1, 4, 16, 64, 100),
                         [](const testing::TestParamInfo<int>& info) {
                           return "trees" + std::to_string(info.param);
                         });

}  // namespace

// Unit tests for the CLI flag parser.
#include <gtest/gtest.h>

#include <array>

#include "../tools/cli_args.hpp"
#include "util/error.hpp"

namespace {

using acclaim::cli::Args;
using acclaim::cli::split_csv;

Args parse(std::vector<std::string> tokens, const std::vector<std::string>& known) {
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (auto& t : tokens) {
    argv.push_back(t.data());
  }
  return Args(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliArgs, ParsesFlagValuePairs) {
  const Args args = parse({"--nodes", "32", "--out", "x.csv"}, {"nodes", "out", "ppn"});
  EXPECT_TRUE(args.has("nodes"));
  EXPECT_FALSE(args.has("ppn"));
  EXPECT_EQ(args.get("out"), "x.csv");
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("nodes", 1), 32);
  EXPECT_EQ(args.get_int("ppn", 16), 16);
  EXPECT_EQ(args.require_flag("out"), "x.csv");
}

TEST(CliArgs, NumericAndByteConversions) {
  const Args args = parse({"--speedup", "1.05", "--msg", "64K"}, {"speedup", "msg"});
  EXPECT_DOUBLE_EQ(args.get_double("speedup", 0.0), 1.05);
  EXPECT_EQ(args.get_bytes("msg", 0), 65536u);
  EXPECT_EQ(args.get_bytes("other", 128), 128u);
}

// Regression: malformed numeric flag values used to reach std::stoi/std::stod
// unguarded — "--threads 4x" silently parsed as 4, and "--threads abc" threw
// a raw std::invalid_argument that bypassed the CLI's error handler and
// aborted. Every malformed value must now produce one InvalidArgument naming
// the flag and the offending value.
TEST(CliArgs, RejectsTrailingGarbageInIntFlags) {
  const Args args = parse({"--threads", "4x"}, {"threads"});
  try {
    args.get_int("threads", 1);
    FAIL() << "expected InvalidArgument";
  } catch (const acclaim::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find("4x"), std::string::npos) << msg;
  }
}

TEST(CliArgs, RejectsNonNumericIntFlags) {
  const Args args = parse({"--nodes", "abc", "--ppn", ""}, {"nodes", "ppn"});
  EXPECT_THROW(args.get_int("nodes", 1), acclaim::InvalidArgument);
  EXPECT_THROW(args.get_int("ppn", 1), acclaim::InvalidArgument);
}

TEST(CliArgs, RejectsOutOfRangeIntFlags) {
  const Args args = parse({"--seed", "99999999999999999999"}, {"seed"});
  EXPECT_THROW(args.get_int("seed", 1), acclaim::InvalidArgument);
}

TEST(CliArgs, RejectsMalformedDoubleFlags) {
  const Args args =
      parse({"--speedup", "1.5x", "--training", "oops"}, {"speedup", "training"});
  EXPECT_THROW(args.get_double("speedup", 1.0), acclaim::InvalidArgument);
  try {
    args.get_double("training", 1.0);
    FAIL() << "expected InvalidArgument";
  } catch (const acclaim::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--training"), std::string::npos) << msg;
    EXPECT_NE(msg.find("oops"), std::string::npos) << msg;
  }
}

TEST(CliArgs, WrapsByteParseErrorsWithTheFlagName) {
  const Args args = parse({"--msg", "1BB"}, {"msg"});
  try {
    args.get_bytes("msg", 8);
    FAIL() << "expected InvalidArgument";
  } catch (const acclaim::InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("--msg"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1BB"), std::string::npos) << msg;
  }
}

TEST(CliArgs, StillAcceptsWellFormedNumericValues) {
  const Args args = parse({"--threads", "8", "--speedup", "1.25", "--msg", "4KB"},
                          {"threads", "speedup", "msg"});
  EXPECT_EQ(args.get_int("threads", 1), 8);
  EXPECT_DOUBLE_EQ(args.get_double("speedup", 1.0), 1.25);
  EXPECT_EQ(args.get_bytes("msg", 0), 4096u);
}

TEST(CliArgs, RejectsMalformedInput) {
  EXPECT_THROW(parse({"nodes", "32"}, {"nodes"}), acclaim::InvalidArgument);  // no dashes
  EXPECT_THROW(parse({"--bogus", "1"}, {"nodes"}), acclaim::InvalidArgument);  // unknown
  EXPECT_THROW(parse({"--nodes"}, {"nodes"}), acclaim::InvalidArgument);  // missing value
  const Args args = parse({"--nodes", "2"}, {"nodes", "out"});
  try {
    args.require_flag("out");
    FAIL() << "expected throw";
  } catch (const acclaim::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--out"), std::string::npos);
  }
}

TEST(CliArgs, SplitCsv) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("bcast"), (std::vector<std::string>{"bcast"}));
  EXPECT_EQ(split_csv(",a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_csv("").empty());
}

}  // namespace

// Unit tests for the CLI flag parser.
#include <gtest/gtest.h>

#include <array>

#include "../tools/cli_args.hpp"
#include "util/error.hpp"

namespace {

using acclaim::cli::Args;
using acclaim::cli::split_csv;

Args parse(std::vector<std::string> tokens, const std::vector<std::string>& known) {
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (auto& t : tokens) {
    argv.push_back(t.data());
  }
  return Args(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliArgs, ParsesFlagValuePairs) {
  const Args args = parse({"--nodes", "32", "--out", "x.csv"}, {"nodes", "out", "ppn"});
  EXPECT_TRUE(args.has("nodes"));
  EXPECT_FALSE(args.has("ppn"));
  EXPECT_EQ(args.get("out"), "x.csv");
  EXPECT_EQ(args.get("missing", "fallback"), "fallback");
  EXPECT_EQ(args.get_int("nodes", 1), 32);
  EXPECT_EQ(args.get_int("ppn", 16), 16);
  EXPECT_EQ(args.require_flag("out"), "x.csv");
}

TEST(CliArgs, NumericAndByteConversions) {
  const Args args = parse({"--speedup", "1.05", "--msg", "64K"}, {"speedup", "msg"});
  EXPECT_DOUBLE_EQ(args.get_double("speedup", 0.0), 1.05);
  EXPECT_EQ(args.get_bytes("msg", 0), 65536u);
  EXPECT_EQ(args.get_bytes("other", 128), 128u);
}

TEST(CliArgs, RejectsMalformedInput) {
  EXPECT_THROW(parse({"nodes", "32"}, {"nodes"}), acclaim::InvalidArgument);  // no dashes
  EXPECT_THROW(parse({"--bogus", "1"}, {"nodes"}), acclaim::InvalidArgument);  // unknown
  EXPECT_THROW(parse({"--nodes"}, {"nodes"}), acclaim::InvalidArgument);  // missing value
  const Args args = parse({"--nodes", "2"}, {"nodes", "out"});
  try {
    args.require_flag("out");
    FAIL() << "expected throw";
  } catch (const acclaim::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("--out"), std::string::npos);
  }
}

TEST(CliArgs, SplitCsv) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv("bcast"), (std::vector<std::string>{"bcast"}));
  EXPECT_EQ(split_csv(",a,,b,"), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(split_csv("").empty());
}

}  // namespace

// Tests for the core autotuner pieces: feature encoding, environments, the
// collective model, acquisition policies, evaluator, and heuristic.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/acquisition.hpp"
#include "core/env.hpp"
#include "core/evaluator.hpp"
#include "core/feature_space.hpp"
#include "core/heuristic.hpp"
#include "core/model.hpp"
#include "test_helpers.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;
using bench::BenchmarkPoint;
using bench::Scenario;
using coll::Algorithm;
using coll::Collective;

TEST(FeatureEncoding, Log2AndOneHotAlgorithm) {
  const BenchmarkPoint p{{Collective::Bcast, 8, 4, 1024}, Algorithm::BcastScatterRingAllgather};
  const ml::FeatureRow row = core::encode_point(p);
  ASSERT_EQ(row.size(), core::num_features(Collective::Bcast));
  EXPECT_DOUBLE_EQ(row[0], 3.0);
  EXPECT_DOUBLE_EQ(row[1], 2.0);
  EXPECT_DOUBLE_EQ(row[2], 10.0);
  // One-hot over bcast's three algorithms; this is the third.
  EXPECT_DOUBLE_EQ(row[3], 0.0);
  EXPECT_DOUBLE_EQ(row[4], 0.0);
  EXPECT_DOUBLE_EQ(row[5], 1.0);
  EXPECT_EQ(core::num_features(Collective::Reduce), 5u);
}

TEST(FeatureEncoding, RejectsMismatchedAlgorithm) {
  const BenchmarkPoint bad{{Collective::Bcast, 8, 4, 1024}, Algorithm::AllgatherRing};
  EXPECT_THROW(core::encode_point(bad), InvalidArgument);
}

TEST(FeatureSpace, CandidatesAndNeighbors) {
  const core::FeatureSpace space({2, 4, 8}, {1, 2}, {64, 128, 256});
  EXPECT_EQ(space.candidates(Collective::Reduce).size(), 3u * 2u * 3u * 2u);
  EXPECT_EQ(space.scenarios(Collective::Reduce).size(), 3u * 2u * 3u);
  EXPECT_EQ(space.msg_neighbors(128), (std::pair<std::uint64_t, std::uint64_t>{64, 256}));
  EXPECT_EQ(space.msg_neighbors(64).first, 0u);
  EXPECT_EQ(space.msg_neighbors(256).second, 0u);
  EXPECT_EQ(space.msg_neighbors(100), (std::pair<std::uint64_t, std::uint64_t>{64, 128}));
}

TEST(DatasetEnvironment, ChargesRecordedCost) {
  const bench::Dataset& ds = testing_support::small_dataset();
  core::DatasetEnvironment env(ds);
  const BenchmarkPoint p = ds.points(Collective::Bcast).front();
  EXPECT_DOUBLE_EQ(env.clock_s(), 0.0);
  const bench::Measurement m = env.measure(p);
  EXPECT_DOUBLE_EQ(env.clock_s(), m.collect_cost_s);
  env.measure(p);
  EXPECT_DOUBLE_EQ(env.clock_s(), 2 * m.collect_cost_s);
  env.reset_clock();
  EXPECT_DOUBLE_EQ(env.clock_s(), 0.0);
}

TEST(DatasetEnvironment, NonP2NeighborComesFromDataset) {
  const bench::Dataset& ds = testing_support::small_dataset();
  core::DatasetEnvironment env(ds);
  util::Rng rng(3);
  const auto m = env.nonp2_msg_near(1024, rng);
  ASSERT_TRUE(m.has_value());
  EXPECT_FALSE(util::is_power_of_two(*m));
  EXPECT_GT(*m, 1024u * 3 / 4);
  EXPECT_LT(*m, 1024u * 3 / 2);
  // The returned size must actually be measurable.
  const Scenario s{Collective::Bcast, 4, 2, *m};
  EXPECT_TRUE(ds.contains(BenchmarkPoint{s, Algorithm::BcastBinomial}));
}

TEST(LiveEnvironment, MeasuresAndChargesClock) {
  const simnet::Topology topo(testing_support::small_machine());
  const simnet::Allocation alloc({0, 1, 2, 3, 4, 5, 6, 7});
  core::LiveEnvironment env(topo, alloc, 42);
  const BenchmarkPoint p{{Collective::Allreduce, 4, 2, 4096},
                         Algorithm::AllreduceRecursiveDoubling};
  const bench::Measurement m = env.measure(p);
  EXPECT_GT(m.mean_us, 0.0);
  EXPECT_DOUBLE_EQ(env.clock_s(), m.collect_cost_s);
  util::Rng rng(1);
  const auto nonp2 = env.nonp2_msg_near(4096, rng);
  ASSERT_TRUE(nonp2.has_value());
  EXPECT_FALSE(util::is_power_of_two(*nonp2));
}

TEST(LiveEnvironment, ScheduledBatchChargesMakespanNotSum) {
  const simnet::Topology topo(testing_support::small_machine());
  const simnet::Allocation alloc({0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  core::LiveEnvironment env(topo, alloc, 42);
  const BenchmarkPoint p{{Collective::Bcast, 4, 2, 4096}, Algorithm::BcastBinomial};
  // Two rack-disjoint benchmarks (racks of 4 nodes): nodes 0-3 and 4-7.
  const std::vector<core::ScheduledBenchmark> batch = {{p, 0}, {p, 4}};
  const auto ms = env.measure_scheduled(batch);
  ASSERT_EQ(ms.size(), 2u);
  const double makespan = std::max(ms[0].collect_cost_s, ms[1].collect_cost_s);
  EXPECT_NEAR(env.clock_s(), makespan, 1e-9);
  EXPECT_LT(env.clock_s(), ms[0].collect_cost_s + ms[1].collect_cost_s);
}

TEST(LiveEnvironment, SharedRackBatchesInterfere) {
  const simnet::Topology topo(testing_support::small_machine());
  const simnet::Allocation alloc({0, 1, 2, 3, 4, 5, 6, 7});
  core::LiveEnvironment env(topo, alloc, 42);
  const BenchmarkPoint p{{Collective::Allgather, 2, 2, 1 << 14}, Algorithm::AllgatherRing};
  // Alone on nodes 0-1.
  const auto solo = env.measure_scheduled({{p, 0}});
  // Co-scheduled with a neighbour in the SAME rack (nodes 2-3 share rack 0
  // on the 4-node-per-rack test machine).
  const auto shared = env.measure_scheduled({{p, 0}, {p, 2}});
  EXPECT_GT(shared[0].mean_us, 1.05 * solo[0].mean_us);
}

TEST(CollectiveModel, LearnsDatasetAndSelectsWell) {
  const bench::Dataset& ds = testing_support::small_dataset();
  std::vector<core::LabeledPoint> data;
  for (const BenchmarkPoint& p : ds.points(Collective::Allreduce)) {
    if (util::is_power_of_two(p.scenario.msg_bytes)) {
      data.push_back({p, ds.at(p).mean_us});
    }
  }
  core::CollectiveModel model(Collective::Allreduce);
  EXPECT_FALSE(model.trained());
  model.fit(data, 3);
  ASSERT_TRUE(model.trained());
  EXPECT_EQ(model.training_points(), data.size());
  // Trained on everything, selections should be near-optimal.
  const core::Evaluator ev(ds);
  const auto test = testing_support::small_space().scenarios(Collective::Allreduce);
  EXPECT_LT(ev.average_slowdown(test, model), 1.05);
}

TEST(CollectiveModel, PredictionsArePositiveTimes) {
  const bench::Dataset& ds = testing_support::small_dataset();
  std::vector<core::LabeledPoint> data;
  for (const BenchmarkPoint& p : ds.points(Collective::Reduce)) {
    data.push_back({p, ds.at(p).mean_us});
  }
  core::CollectiveModel model(Collective::Reduce);
  model.fit(data, 5);
  for (const BenchmarkPoint& p : ds.points(Collective::Reduce)) {
    EXPECT_GT(model.predict_us(p), 0.0);
    EXPECT_NEAR(std::log(model.predict_us(p)), model.predict_log_us(p), 1e-9);
  }
}

TEST(CollectiveModel, RejectsWrongCollectiveAndEmptyFit) {
  core::CollectiveModel model(Collective::Bcast);
  EXPECT_THROW(model.fit({}, 1), InvalidArgument);
  const BenchmarkPoint wrong{{Collective::Reduce, 4, 2, 64}, Algorithm::ReduceBinomial};
  EXPECT_THROW(model.fit({{wrong, 10.0}}, 1), InvalidArgument);
  EXPECT_THROW(model.predict_us(wrong), InvalidArgument);
  EXPECT_THROW(model.select(Scenario{Collective::Reduce, 4, 2, 64}), InvalidArgument);
}

TEST(CollectiveModel, JackknifeVarianceLowerNearData) {
  const bench::Dataset& ds = testing_support::small_dataset();
  // Train only on msgs <= 1 KiB; variance should be higher at 64 KiB.
  std::vector<core::LabeledPoint> data;
  for (const BenchmarkPoint& p : ds.points(Collective::Bcast)) {
    if (p.scenario.msg_bytes <= 1024 && util::is_power_of_two(p.scenario.msg_bytes)) {
      data.push_back({p, ds.at(p).mean_us});
    }
  }
  core::CollectiveModel model(Collective::Bcast);
  model.fit(data, 6);
  const BenchmarkPoint seen{{Collective::Bcast, 4, 2, 256}, Algorithm::BcastBinomial};
  const BenchmarkPoint unseen{{Collective::Bcast, 4, 2, 64 * 1024},
                              Algorithm::BcastBinomial};
  EXPECT_LE(model.jackknife_variance(seen), model.jackknife_variance(unseen));
  EXPECT_GT(model.cumulative_variance({seen, unseen}), 0.0);
}

// ---------------------------------------------------------------- policies

class PolicyTest : public testing::Test {
 protected:
  PolicyTest() : env_(testing_support::small_dataset()), rng_(17) {
    pool_ = testing_support::small_space().candidates(Collective::Bcast);
    // A partially trained model for variance queries.
    std::vector<core::LabeledPoint> data;
    for (std::size_t i = 0; i < pool_.size(); i += 7) {
      data.push_back({pool_[i], testing_support::small_dataset().at(pool_[i]).mean_us});
    }
    model_ = core::CollectiveModel(Collective::Bcast);
    model_.fit(data, 1);
  }
  core::DatasetEnvironment env_;
  util::Rng rng_;
  std::vector<BenchmarkPoint> pool_;
  core::CollectiveModel model_;
};

TEST_F(PolicyTest, RandomPicksValidIndices) {
  core::RandomAcquisition policy;
  std::set<std::size_t> seen;
  for (int i = 0; i < 50; ++i) {
    const auto pick = policy.next(model_, pool_, env_, rng_);
    ASSERT_LT(pick.pool_index, pool_.size());
    EXPECT_EQ(pick.point, pool_[pick.pool_index]);
    seen.insert(pick.pool_index);
  }
  EXPECT_GT(seen.size(), 20u);
}

TEST_F(PolicyTest, AcclaimArgmaxPicksHighestVariance) {
  // The paper's literal rule, kept as the ablation mode.
  core::AcclaimAcquisition policy(
      core::AcclaimAcquisitionConfig{0, core::VariancePick::Argmax});
  const auto pick = policy.next(model_, pool_, env_, rng_);
  const double picked_var = model_.jackknife_variance(pool_[pick.pool_index]);
  for (const BenchmarkPoint& p : pool_) {
    EXPECT_GE(picked_var, model_.jackknife_variance(p) - 1e-12);
  }
  EXPECT_EQ(pick.point, pool_[pick.pool_index]);
}

TEST_F(PolicyTest, AcclaimWeightedSamplingFavorsHighVariance) {
  // The default mode: picks are random but variance-proportional, so over
  // many draws the mean variance of picks exceeds the pool mean.
  core::AcclaimAcquisition policy(core::AcclaimAcquisitionConfig{0});
  double pool_mean = 0.0;
  for (const BenchmarkPoint& p : pool_) {
    pool_mean += model_.jackknife_variance(p);
  }
  pool_mean /= static_cast<double>(pool_.size());
  double picked_mean = 0.0;
  constexpr int kDraws = 200;
  for (int i = 0; i < kDraws; ++i) {
    const auto pick = policy.next(model_, pool_, env_, rng_);
    picked_mean += model_.jackknife_variance(pool_[pick.pool_index]);
  }
  picked_mean /= kDraws;
  // Variance-weighted expectation is E[V^2]/E[V] = (1 + CV^2) * E[V] > E[V].
  EXPECT_GT(picked_mean, 1.15 * pool_mean);
}

TEST_F(PolicyTest, AcclaimEveryFifthPickIsNonP2) {
  core::AcclaimAcquisition policy(core::AcclaimAcquisitionConfig{5});
  int nonp2 = 0;
  for (int i = 1; i <= 20; ++i) {
    const auto pick = policy.next(model_, pool_, env_, rng_);
    const bool is_nonp2 = !util::is_power_of_two(pick.point.scenario.msg_bytes);
    if (i % 5 == 0) {
      // The 5th/10th/... picks must be non-P2 variants of the anchor.
      EXPECT_TRUE(is_nonp2) << "pick " << i;
      EXPECT_TRUE(util::is_power_of_two(pool_[pick.pool_index].scenario.msg_bytes));
      ++nonp2;
    } else {
      EXPECT_FALSE(is_nonp2) << "pick " << i;
    }
  }
  EXPECT_EQ(nonp2, 4);  // exactly the 80-20 split
}

TEST_F(PolicyTest, AcclaimRankOrdersByVariance) {
  core::AcclaimAcquisition policy;
  const auto order = policy.rank(model_, pool_);
  ASSERT_EQ(order.size(), pool_.size());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(model_.jackknife_variance(pool_[order[i - 1]]),
              model_.jackknife_variance(pool_[order[i]]) - 1e-12);
  }
  // Untrained model cannot rank.
  EXPECT_TRUE(core::AcclaimAcquisition().rank(core::CollectiveModel(Collective::Bcast), pool_)
                  .empty());
}

TEST_F(PolicyTest, SurrogateLearnsFromObservations) {
  core::SurrogateAcquisition policy(Collective::Bcast, 5);
  // Before any observation: random behaviour, no trainings.
  const auto first = policy.next(model_, pool_, env_, rng_);
  EXPECT_LT(first.pool_index, pool_.size());
  EXPECT_EQ(policy.surrogate_trainings(), 0);
  for (int i = 0; i < 10; ++i) {
    const auto& ds = testing_support::small_dataset();
    policy.observe(pool_[static_cast<std::size_t>(i)],
                   ds.at(pool_[static_cast<std::size_t>(i)]).mean_us);
    policy.next(model_, pool_, env_, rng_);
  }
  // FACT's structural cost: the surrogate retrains every iteration.
  EXPECT_GE(policy.surrogate_trainings(), 9);
}

// -------------------------------------------------------------- evaluation

TEST(Evaluator, SlowdownAndOptimalRate) {
  const bench::Dataset& ds = testing_support::small_dataset();
  const core::Evaluator ev(ds);
  const auto test = testing_support::small_space().scenarios(Collective::Bcast);
  // The oracle has slowdown exactly 1 and optimal rate 1.
  const auto oracle = [&](const Scenario& s) { return ds.best_algorithm(s); };
  EXPECT_DOUBLE_EQ(ev.average_slowdown(test, oracle), 1.0);
  EXPECT_DOUBLE_EQ(ev.optimal_rate(test, oracle), 1.0);
  // A deliberately bad selector (always the worst algorithm) is worse.
  const auto pessimal = [&](const Scenario& s) {
    coll::Algorithm worst = coll::algorithms_for(s.collective).front();
    double worst_us = 0.0;
    for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
      if (ds.time_us(s, a) > worst_us) {
        worst_us = ds.time_us(s, a);
        worst = a;
      }
    }
    return worst;
  };
  EXPECT_GT(ev.average_slowdown(test, pessimal), 1.1);
  EXPECT_THROW(ev.average_slowdown({}, oracle), InvalidArgument);
}

TEST(Heuristic, FollowsMpichCutoffs) {
  using core::mpich_default_selection;
  EXPECT_EQ(mpich_default_selection({Collective::Bcast, 16, 2, 64}),
            Algorithm::BcastBinomial);
  EXPECT_EQ(mpich_default_selection({Collective::Bcast, 16, 2, 65536}),
            Algorithm::BcastScatterRecursiveDoublingAllgather);
  EXPECT_EQ(mpich_default_selection({Collective::Bcast, 16, 2, 1 << 20}),
            Algorithm::BcastScatterRingAllgather);
  // Non-P2 communicator avoids the recursive-doubling variant.
  EXPECT_EQ(mpich_default_selection({Collective::Bcast, 12, 1, 65536}),
            Algorithm::BcastScatterRingAllgather);
  EXPECT_EQ(mpich_default_selection({Collective::Allreduce, 8, 4, 512}),
            Algorithm::AllreduceRecursiveDoubling);
  EXPECT_EQ(mpich_default_selection({Collective::Allreduce, 8, 4, 1 << 16}),
            Algorithm::AllreduceReduceScatterAllgather);
  EXPECT_EQ(mpich_default_selection({Collective::Reduce, 8, 4, 512}),
            Algorithm::ReduceBinomial);
  EXPECT_EQ(mpich_default_selection({Collective::Reduce, 8, 4, 1 << 16}),
            Algorithm::ReduceScatterGather);
  EXPECT_EQ(mpich_default_selection({Collective::Allgather, 8, 4, 64}),
            Algorithm::AllgatherRecursiveDoubling);
  EXPECT_EQ(mpich_default_selection({Collective::Allgather, 12, 1, 64}),
            Algorithm::AllgatherBruck);
  EXPECT_EQ(mpich_default_selection({Collective::Allgather, 8, 4, 1 << 16}),
            Algorithm::AllgatherRing);
}

TEST(Heuristic, LeavesPerformanceOnTheTable) {
  // The motivating gap (§II-B1): static defaults are measurably worse than
  // the oracle on our dataset too.
  const bench::Dataset& ds = testing_support::small_dataset();
  const core::Evaluator ev(ds);
  double worst = 0.0;
  for (Collective c : coll::paper_collectives()) {
    const auto test = testing_support::small_space().scenarios(c);
    worst = std::max(worst, ev.average_slowdown(test, core::mpich_default_selection));
  }
  // The gap is modest on the tiny test machine (the bench harnesses measure
  // it at figure scale, where it exceeds 2x for bcast); it must still exist.
  EXPECT_GT(worst, 1.04);
}

}  // namespace

// Unit tests for the simulated machine: topology classification, job
// allocation, network model properties.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/network.hpp"
#include "simnet/topology.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim::simnet;
using acclaim::util::Rng;

TEST(Machine, PresetsValidate) {
  EXPECT_NO_THROW(bebop_like().validate());
  EXPECT_NO_THROW(theta_like().validate());
  EXPECT_NO_THROW(fat_tree_like().validate());
  EXPECT_NO_THROW(tiny_test_machine().validate());
  EXPECT_EQ(bebop_like().total_nodes, 64);
  EXPECT_EQ(theta_like().total_nodes, 4392);
  EXPECT_EQ(theta_like().cores_per_node, 64);
}

TEST(Machine, FatTreeMapsOntoTheHierarchy) {
  const MachineConfig m = fat_tree_like();
  // 1024 nodes over 32-node leaf switches in pods of 4 -> 32 leaves, 8 pods.
  EXPECT_EQ(m.num_racks(), 32);
  EXPECT_EQ(m.num_pairs(), 8);
  const Topology topo(m);
  EXPECT_EQ(topo.link_class(0, 31), LinkClass::IntraRack);   // same leaf
  EXPECT_EQ(topo.link_class(0, 32), LinkClass::IntraPair);   // same pod
  EXPECT_EQ(topo.link_class(0, 128), LinkClass::Global);     // across pods
  // Near-full bisection: far higher upper-layer capacities than Dragonfly.
  EXPECT_GT(m.net.rack_uplink_capacity, theta_like().net.rack_uplink_capacity);
  EXPECT_GT(m.net.global_link_capacity, theta_like().net.global_link_capacity);
}

TEST(Machine, FatTreeSchedulerFindsMoreParallelPods) {
  // The §IV-D greedy works unchanged on the fat tree: one 8-node benchmark
  // per leaf switch, 32 leaves available.
  const Topology topo(fat_tree_like());
  JobScheduler sched(topo, 0.0, Rng(1));
  const Allocation alloc = sched.allocate(256);  // 8 leaves worth of nodes
  EXPECT_EQ(alloc.racks_touched(topo), 8);
}

TEST(Machine, RackArithmetic) {
  MachineConfig m = tiny_test_machine();  // 8 nodes, 2 per rack, 2 racks/pair
  EXPECT_EQ(m.num_racks(), 4);
  EXPECT_EQ(m.num_pairs(), 2);
  m.total_nodes = 9;  // partial last rack
  EXPECT_EQ(m.num_racks(), 5);
  EXPECT_EQ(m.num_pairs(), 3);
}

TEST(Machine, ValidationCatchesBadConfigs) {
  MachineConfig m = tiny_test_machine();
  m.total_nodes = 0;
  EXPECT_THROW(m.validate(), acclaim::InvalidArgument);
  m = tiny_test_machine();
  m.net.bandwidth_Bpus[0] = 0.0;
  EXPECT_THROW(m.validate(), acclaim::InvalidArgument);
}

TEST(Topology, LinkClassification) {
  const Topology topo(tiny_test_machine());  // racks: {0,1},{2,3},{4,5},{6,7}
  EXPECT_EQ(topo.link_class(3, 3), LinkClass::IntraNode);
  EXPECT_EQ(topo.link_class(0, 1), LinkClass::IntraRack);
  EXPECT_EQ(topo.link_class(0, 2), LinkClass::IntraPair);
  EXPECT_EQ(topo.link_class(1, 3), LinkClass::IntraPair);
  EXPECT_EQ(topo.link_class(0, 4), LinkClass::Global);
  EXPECT_EQ(topo.link_class(3, 7), LinkClass::Global);
  EXPECT_THROW(topo.link_class(0, 8), acclaim::InvalidArgument);
}

TEST(Topology, RackAndPairQueries) {
  const Topology topo(tiny_test_machine());
  EXPECT_EQ(topo.rack_of(0), 0);
  EXPECT_EQ(topo.rack_of(7), 3);
  EXPECT_EQ(topo.pair_of(0), 0);
  EXPECT_EQ(topo.pair_of(5), 1);
  EXPECT_EQ(topo.rack_first_node(2), 4);
  EXPECT_EQ(topo.rack_size(3), 2);
}

TEST(Topology, PartialLastRack) {
  MachineConfig m = tiny_test_machine();
  m.total_nodes = 7;
  const Topology topo(m);
  EXPECT_EQ(topo.num_racks(), 4);
  EXPECT_EQ(topo.rack_size(3), 1);
}

TEST(Allocation, RankMappingIsBlockwise) {
  const Allocation a({3, 5, 9});
  EXPECT_EQ(a.num_nodes(), 3);
  EXPECT_EQ(a.node_of_rank(0, 2), 3);
  EXPECT_EQ(a.node_of_rank(1, 2), 3);
  EXPECT_EQ(a.node_of_rank(2, 2), 5);
  EXPECT_EQ(a.node_of_rank(5, 2), 9);
  EXPECT_THROW(a.node_of_rank(6, 2), acclaim::InvalidArgument);
}

TEST(Allocation, RequiresStrictlyIncreasingNodes) {
  EXPECT_THROW(Allocation({3, 3}), acclaim::InvalidArgument);
  EXPECT_THROW(Allocation({5, 2}), acclaim::InvalidArgument);
  EXPECT_THROW(Allocation(std::vector<int>{}), acclaim::InvalidArgument);
}

TEST(Allocation, TouchCounts) {
  const Topology topo(tiny_test_machine());
  EXPECT_EQ(Allocation({0, 1}).racks_touched(topo), 1);
  EXPECT_EQ(Allocation({0, 2}).racks_touched(topo), 2);
  EXPECT_EQ(Allocation({0, 2}).pairs_touched(topo), 1);
  EXPECT_EQ(Allocation({0, 4}).pairs_touched(topo), 2);
}

TEST(Allocation, RegionFootprints) {
  // 8 nodes, 2 per rack, 2 racks per pair: nodes {0,1} rack 0, {2,3} rack 1
  // (same pair), {4,5} rack 2, {6,7} rack 3.
  const Topology topo(tiny_test_machine());
  const Allocation a({0, 1, 2, 3, 4, 5, 6, 7});
  const RegionFootprint first = a.footprint(topo, 0, 3);  // nodes 0..2
  EXPECT_EQ(first.racks, (std::set<int>{0, 1}));
  EXPECT_EQ(first.pairs, (std::set<int>{0}));
  const RegionFootprint second = a.footprint(topo, 4, 2);  // nodes 4..5
  EXPECT_EQ(second.racks, (std::set<int>{2}));
  EXPECT_FALSE(first.shares_rack_with(second));
  EXPECT_FALSE(first.shares_pair_with(second));
  const RegionFootprint overlap = a.footprint(topo, 2, 3);  // nodes 2..4
  EXPECT_TRUE(first.shares_rack_with(overlap));
  EXPECT_TRUE(overlap.shares_pair_with(second));
  EXPECT_THROW(a.footprint(topo, 6, 3), acclaim::InvalidArgument);
  EXPECT_THROW(a.footprint(topo, -1, 1), acclaim::InvalidArgument);
}

TEST(Machine, MaxRackDisjointBenchmarks) {
  const MachineConfig m = tiny_test_machine();  // 8 nodes, 2/rack -> 4 racks
  EXPECT_EQ(max_rack_disjoint_benchmarks(m, 1), 4);
  EXPECT_EQ(max_rack_disjoint_benchmarks(m, 2), 4);
  EXPECT_EQ(max_rack_disjoint_benchmarks(m, 3), 2);  // each needs 2 racks
  EXPECT_EQ(max_rack_disjoint_benchmarks(m, 8), 1);
  EXPECT_EQ(max_rack_disjoint_benchmarks(m, 9), 0);  // doesn't fit at all
  EXPECT_THROW(max_rack_disjoint_benchmarks(m, 0), acclaim::InvalidArgument);
}

TEST(Scheduler, AllocatesLowestFreeNodes) {
  const Topology topo(tiny_test_machine());
  JobScheduler sched(topo, 0.0, Rng(1));
  const Allocation a = sched.allocate(3);
  EXPECT_EQ(a.nodes(), (std::vector<int>{0, 1, 2}));
  const Allocation b = sched.allocate(2);
  EXPECT_EQ(b.nodes(), (std::vector<int>{3, 4}));
  sched.release(a);
  const Allocation c = sched.allocate(4);
  EXPECT_EQ(c.nodes(), (std::vector<int>{0, 1, 2, 5}));
}

TEST(Scheduler, BusyMachineFragmentsAllocations) {
  // A busy machine should usually not hand out a perfectly contiguous
  // block; check statistically across job seeds (any one seed can get
  // lucky and find a contiguous hole).
  const Topology topo{theta_like()};
  int fragmented = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    JobScheduler sched(topo, 0.5, Rng(seed));
    EXPECT_LT(sched.free_nodes(), theta_like().total_nodes);
    const Allocation a = sched.allocate(128);
    EXPECT_EQ(a.num_nodes(), 128);
    if (a.nodes().back() - a.nodes().front() > 127) {
      ++fragmented;
    }
  }
  EXPECT_GE(fragmented, 5);
}

TEST(Scheduler, ThrowsWhenMachineFull) {
  const Topology topo(tiny_test_machine());
  JobScheduler sched(topo, 0.0, Rng(1));
  sched.allocate(8);
  EXPECT_THROW(sched.allocate(1), acclaim::InvalidArgument);
}

TEST(Scheduler, ContiguousAllocation) {
  const Topology topo(tiny_test_machine());
  const JobScheduler sched(topo, 0.0, Rng(1));
  const Allocation a = sched.allocate_contiguous(2, 4);
  EXPECT_EQ(a.nodes(), (std::vector<int>{2, 3, 4, 5}));
  EXPECT_THROW(sched.allocate_contiguous(6, 4), acclaim::InvalidArgument);
}

TEST(Fig13Placements, MatchPaperTopologies) {
  // A machine large enough for all four placements of 8 nodes.
  MachineConfig m = tiny_test_machine();
  m.total_nodes = 256;
  m.nodes_per_rack = 8;
  const Topology topo(m);  // 32 racks, 16 pairs
  const auto single = fig13_placement(topo, "single-rack", 8);
  EXPECT_EQ(single.racks_touched(topo), 1);
  const auto pair = fig13_placement(topo, "single-pair", 8);
  EXPECT_EQ(pair.racks_touched(topo), 2);
  EXPECT_EQ(pair.pairs_touched(topo), 1);
  const auto two = fig13_placement(topo, "two-pairs", 8);
  EXPECT_EQ(two.racks_touched(topo), 4);
  EXPECT_EQ(two.pairs_touched(topo), 2);
  const auto max = fig13_placement(topo, "max-parallel", 8);
  EXPECT_EQ(max.racks_touched(topo), 8);
  EXPECT_EQ(max.pairs_touched(topo), 8);
  EXPECT_THROW(fig13_placement(topo, "bogus", 8), acclaim::InvalidArgument);
}

TEST(Network, AlphaBetaOrderedByDistance) {
  const Topology topo(tiny_test_machine());
  const NetworkModel net(topo, 0);
  EXPECT_LT(net.alpha_us(LinkClass::IntraNode), net.alpha_us(LinkClass::IntraRack));
  EXPECT_LT(net.alpha_us(LinkClass::IntraRack), net.alpha_us(LinkClass::IntraPair));
  EXPECT_LT(net.alpha_us(LinkClass::IntraPair), net.alpha_us(LinkClass::Global));
  EXPECT_GT(net.beta_us_per_byte(LinkClass::Global),
            net.beta_us_per_byte(LinkClass::IntraNode));
}

TEST(Network, TransferTimeMonotoneInSize) {
  const Topology topo(tiny_test_machine());
  const NetworkModel net(topo, 7);
  double prev = 0.0;
  for (std::uint64_t b = 1; b <= (1u << 20); b <<= 2) {
    const double t = net.transfer_time_us(0, 4, b);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Network, JobSeedChangesLatency) {
  MachineConfig m = tiny_test_machine();
  m.net.job_latency_sigma = 0.3;
  const Topology topo(m);
  std::set<long> seen;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const NetworkModel net(topo, seed);
    EXPECT_GE(net.job_latency_multiplier(), 0.7);
    EXPECT_LE(net.job_latency_multiplier(), 2.5);
    seen.insert(std::lround(net.job_latency_multiplier() * 1e6));
  }
  EXPECT_GT(seen.size(), 8u);  // different jobs see different networks
}

TEST(Network, BackgroundCongestionOnlyHurtsGlobal) {
  MachineConfig m = tiny_test_machine();
  m.net.background_congestion_sigma = 0.5;
  const Topology topo(m);
  // Find a seed with noticeable congestion.
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const NetworkModel net(topo, seed);
    if (net.background_global_factor() > 1.2) {
      const NetworkModel calm(Topology(tiny_test_machine()), 0);
      EXPECT_GT(net.beta_us_per_byte(LinkClass::Global),
                calm.beta_us_per_byte(LinkClass::Global));
      return;
    }
  }
  FAIL() << "no seed produced visible congestion";
}

}  // namespace

// Telemetry subsystem: metrics registry arithmetic, histogram bucketing,
// trace ring/stream round-trips, and run-report building/rendering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace acclaim;
using telemetry::EventKind;
using telemetry::TraceEvent;

// The registry and tracer are process-wide; every test starts from a clean
// slate so ordering (and the other suites linked into this binary) cannot
// leak values across cases.
class TelemetryTest : public testing::Test {
 protected:
  void SetUp() override {
    telemetry::tracer().disable();
    telemetry::metrics().reset();
  }
  void TearDown() override { telemetry::tracer().disable(); }
};

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

TEST_F(TelemetryTest, CounterArithmeticAndReset) {
  telemetry::Counter& c = telemetry::metrics().counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name resolves to the same instrument, and reset() keeps the
  // address valid (call sites cache static references).
  telemetry::Counter& again = telemetry::metrics().counter("test.counter");
  EXPECT_EQ(&again, &c);
  telemetry::metrics().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(again.value(), 7u);
}

TEST_F(TelemetryTest, GaugeSetAndAccumulate) {
  telemetry::Gauge& g = telemetry::metrics().gauge("test.gauge");
  g.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.add(0.25);
  g.add(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(TelemetryTest, HistogramBucketEdges) {
  // first_bound = 1.0 keeps every bound exactly representable, so the edge
  // assertions below are fp-exact: bounds 1, 2, 4 plus an overflow bucket.
  telemetry::Histogram h({1.0, 3});
  EXPECT_EQ(h.num_buckets(), 4);
  EXPECT_DOUBLE_EQ(h.bucket_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_bound(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_bound(2), 4.0);
  EXPECT_THROW(h.bucket_bound(3), Error);  // overflow bucket has no bound

  h.observe(0.5);  // below the first bound
  h.observe(1.0);  // exactly on it -> still bucket 0
  h.observe(1.5);
  h.observe(2.0);  // bounds are inclusive
  h.observe(3.0);
  h.observe(4.0);
  h.observe(5.0);    // beyond the last finite bound
  h.observe(1e12);   // deep overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 2u);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e12);
}

TEST_F(TelemetryTest, HistogramStatsAndReset) {
  telemetry::Histogram h({1.0, 8});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), std::numeric_limits<double>::infinity());
  h.observe(2.0);
  h.observe(6.0);
  EXPECT_DOUBLE_EQ(h.sum(), 8.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  for (int i = 0; i < h.num_buckets(); ++i) {
    EXPECT_EQ(h.bucket_count(i), 0u);
  }
}

TEST_F(TelemetryTest, PercentileEmptyHistogramIsNaN) {
  telemetry::Histogram h({1.0, 3});
  EXPECT_TRUE(std::isnan(h.percentile(0.5)));
  EXPECT_TRUE(std::isnan(h.percentile(0.99)));
}

TEST_F(TelemetryTest, PercentileInterpolatesWithinBucket) {
  // Two observations in bucket (1, 2]: the rank interpolation is exact.
  telemetry::Histogram h({1.0, 3});
  h.observe(1.5);
  h.observe(2.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.5);   // rank 1 of 2 -> halfway up the span
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);   // top of the span
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.5);   // clamped to the observed min
}

TEST_F(TelemetryTest, PercentilesMonotoneAndBracketedByMinMax) {
  telemetry::Histogram h({0.01, 32});
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 500; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    h.observe(0.02 + static_cast<double>(state % 10000) / 37.0);
  }
  const double p50 = h.percentile(0.50);
  const double p95 = h.percentile(0.95);
  const double p99 = h.percentile(0.99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, h.max());
}

TEST_F(TelemetryTest, PercentileOverflowBucketClampsToMax) {
  // Everything lands past the last finite bound (4.0): the overflow bucket
  // has no upper bound, so the estimate collapses to the observed max.
  telemetry::Histogram h({1.0, 3});
  h.observe(100.0);
  h.observe(250.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 250.0);
}

TEST_F(TelemetryTest, PercentileFromBucketsMatchesLiveHistogram) {
  // Snapshot-side estimator (what `acclaim report --metrics` uses) agrees
  // with the in-process one for the same sparse bucket list.
  telemetry::Histogram h({1.0, 8});
  for (double v : {0.4, 1.2, 2.7, 3.1, 9.0, 15.0, 120.0, 300.0}) {
    h.observe(v);
  }
  std::vector<telemetry::BucketSlice> slices;
  for (int i = 0; i < h.num_buckets(); ++i) {
    if (h.bucket_count(i) == 0) {
      continue;
    }
    telemetry::BucketSlice s;
    s.le = i < h.num_buckets() - 1 ? h.bucket_bound(i)
                                   : std::numeric_limits<double>::infinity();
    s.n = h.bucket_count(i);
    slices.push_back(s);
  }
  for (double p : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(
        telemetry::percentile_from_buckets(slices, h.count(), h.min(), h.max(), p),
        h.percentile(p))
        << "p=" << p;
  }
}

TEST_F(TelemetryTest, RenderMetricsSummarySmoke) {
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.counter("sum.runs").add(4);
  reg.gauge("threadpool.threads").set(8);
  telemetry::Histogram& h = reg.histogram("sum.latency_ms", {0.01, 32});
  for (int i = 1; i <= 100; ++i) {
    h.observe(static_cast<double>(i) * 0.1);
  }
  std::ostringstream os;
  telemetry::render_metrics_summary(reg.to_json(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("sum.runs"), std::string::npos);
  EXPECT_NE(out.find("threadpool.threads"), std::string::npos);
  EXPECT_NE(out.find("sum.latency_ms"), std::string::npos);
  EXPECT_NE(out.find("p95"), std::string::npos);
}

TEST_F(TelemetryTest, RenderMetricsSummaryRejectsNonSnapshot) {
  std::ostringstream os;
  EXPECT_THROW(telemetry::render_metrics_summary(util::Json::object(), os), Error);
}

TEST_F(TelemetryTest, PublishThreadPoolMetricsSetsGauges) {
  util::global_pool().parallel_for(0, 8, [](std::size_t) {});
  telemetry::publish_thread_pool_metrics();
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  EXPECT_GE(reg.gauge("threadpool.threads").value(), 1.0);
  EXPECT_GE(reg.gauge("threadpool.parallel_fors").value(), 1.0);
}

TEST_F(TelemetryTest, RegistryJsonRoundTrip) {
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.counter("rt.runs").add(3);
  reg.gauge("rt.level").set(2.5);
  reg.histogram("rt.sizes", {1.0, 8}).observe(4.0);

  const std::string path = temp_path("metrics_rt.json");
  reg.dump_file(path);
  const util::Json doc = util::Json::parse_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("counters").at("rt.runs").as_int(), 3);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("rt.level").as_number(), 2.5);
  const util::Json& hist = doc.at("histograms").at("rt.sizes");
  EXPECT_EQ(hist.at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(hist.at("min").as_number(), 4.0);
  // One occupied bucket survives the empty-bucket elision.
  ASSERT_EQ(hist.at("buckets").as_array().size(), 1u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").as_array()[0].at("le").as_number(), 4.0);
}

TEST_F(TelemetryTest, EventKindNamesRoundTrip) {
  for (EventKind k : {EventKind::TrainingIteration, EventKind::PointAcquired,
                      EventKind::BatchScheduled, EventKind::BenchmarkRun,
                      EventKind::ModelRefit, EventKind::ConvergenceCheck, EventKind::Phase}) {
    const auto parsed = telemetry::parse_event_kind(telemetry::event_kind_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(telemetry::parse_event_kind("not_an_event").has_value());
}

TEST_F(TelemetryTest, TraceEventJsonRoundTrip) {
  TraceEvent ev;
  ev.kind = EventKind::PointAcquired;
  ev.label = "bcast";
  ev.t_wall_ms = 12.5;
  ev.fields["nnodes"] = 8;
  ev.fields["algorithm"] = "binomial";
  ev.fields["nonp2"] = true;

  const TraceEvent back = TraceEvent::from_json(ev.to_json());
  EXPECT_EQ(back.kind, EventKind::PointAcquired);
  EXPECT_EQ(back.label, "bcast");
  EXPECT_DOUBLE_EQ(back.t_wall_ms, 12.5);
  EXPECT_EQ(back.fields.at("nnodes").as_int(), 8);
  EXPECT_EQ(back.fields.at("algorithm").as_string(), "binomial");
  EXPECT_TRUE(back.fields.at("nonp2").as_bool());
}

TEST_F(TelemetryTest, RingKeepsNewestEventsOldestFirst) {
  telemetry::Tracer& tr = telemetry::tracer();
  EXPECT_FALSE(tr.enabled());
  tr.enable_ring(4);
  EXPECT_TRUE(tr.enabled());
  for (int i = 0; i < 6; ++i) {
    TraceEvent ev;
    ev.kind = EventKind::ModelRefit;
    ev.label = "ev" + std::to_string(i);
    tr.record(std::move(ev));
  }
  const auto snap = tr.ring_snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().label, "ev2");
  EXPECT_EQ(snap.back().label, "ev5");
  EXPECT_EQ(tr.ring_dropped(), 2u);
  EXPECT_EQ(tr.recorded(), 6u);
  tr.disable();
  EXPECT_FALSE(tr.enabled());
  EXPECT_TRUE(tr.ring_snapshot().empty());
}

TEST_F(TelemetryTest, StreamWritesJsonLinesReadableByReader) {
  const std::string path = temp_path("trace_rt.jsonl");
  telemetry::Tracer& tr = telemetry::tracer();
  tr.open_stream(path);
  for (int i = 0; i < 3; ++i) {
    TraceEvent ev;
    ev.kind = EventKind::BenchmarkRun;
    ev.label = "allreduce";
    ev.fields["cost_s"] = 0.5 * (i + 1);
    tr.record(std::move(ev));
  }
  tr.close_stream();

  const auto events = telemetry::read_trace_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(events.size(), 3u);
  for (const TraceEvent& ev : events) {
    EXPECT_EQ(ev.kind, EventKind::BenchmarkRun);
    EXPECT_EQ(ev.label, "allreduce");
  }
  EXPECT_DOUBLE_EQ(events[2].fields.at("cost_s").as_number(), 1.5);
}

TEST_F(TelemetryTest, ReaderSkipsBlankLinesAndUnknownKinds) {
  const std::string path = temp_path("trace_fwd.jsonl");
  {
    std::ofstream out(path);
    out << R"({"event":"model_refit","t_ms":1.0,"label":"bcast"})" << "\n\n"
        << R"({"event":"from_the_future","t_ms":2.0,"label":"x"})" << "\n";
  }
  const auto events = telemetry::read_trace_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::ModelRefit);
  EXPECT_THROW(telemetry::read_trace_file(temp_path("no_such_trace.jsonl")), IoError);
}

TEST_F(TelemetryTest, ScopedPhaseEmitsWallTimeAndAnnotations) {
  telemetry::Tracer& tr = telemetry::tracer();
  tr.enable_ring(16);
  {
    telemetry::ScopedPhase phase("train:bcast");
    EXPECT_TRUE(phase.active());
    phase.annotate("sim_s", 12.5);
    phase.annotate("points", 40);
  }
  const auto snap = tr.ring_snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, EventKind::Phase);
  EXPECT_EQ(snap[0].label, "train:bcast");
  EXPECT_TRUE(snap[0].fields.contains("wall_ms"));
  EXPECT_GE(snap[0].fields.at("wall_ms").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(snap[0].fields.at("sim_s").as_number(), 12.5);
  EXPECT_EQ(snap[0].fields.at("points").as_int(), 40);
}

TEST_F(TelemetryTest, ScopedPhaseIsInertWhenTracerDisabled) {
  telemetry::ScopedPhase phase("idle");
  EXPECT_FALSE(phase.active());
  phase.annotate("sim_s", 1.0);  // must not crash
  EXPECT_EQ(telemetry::tracer().recorded(), 0u);
}

// --- run reports on a synthetic trace ------------------------------------

TraceEvent make_event(EventKind kind, std::string label) {
  TraceEvent ev;
  ev.kind = kind;
  ev.label = std::move(label);
  return ev;
}

std::vector<TraceEvent> synthetic_trace() {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 5; ++i) {
    TraceEvent it = make_event(EventKind::TrainingIteration, "bcast");
    it.fields["iteration"] = i;
    it.fields["points"] = 4 * (i + 1);
    it.fields["variance"] = 1.0 / (i + 1);
    it.fields["variance_ema"] = 0.8 / (i + 1);
    it.fields["batch_size"] = 4;
    events.push_back(std::move(it));
  }
  for (int size : {4, 4, 2}) {
    TraceEvent b = make_event(EventKind::BatchScheduled, "bcast");
    b.fields["batch_size"] = size;
    events.push_back(std::move(b));
  }
  for (int i = 0; i < 10; ++i) {
    TraceEvent r = make_event(EventKind::BenchmarkRun, "bcast");
    r.fields["cost_s"] = 0.1;
    events.push_back(std::move(r));
  }
  events.push_back(make_event(EventKind::ModelRefit, "bcast"));
  events.push_back(make_event(EventKind::ModelRefit, "bcast"));
  TraceEvent pick = make_event(EventKind::PointAcquired, "bcast");
  pick.fields["nonp2"] = true;
  events.push_back(std::move(pick));
  TraceEvent phase = make_event(EventKind::Phase, "train:bcast");
  phase.fields["sim_s"] = 30.0;
  phase.fields["wall_ms"] = 12.0;
  phase.fields["points"] = 20;
  phase.fields["iterations"] = 5;
  phase.fields["converged"] = true;
  events.push_back(std::move(phase));
  return events;
}

TEST_F(TelemetryTest, BuildReportAggregatesTheTrace) {
  const telemetry::RunReport report = telemetry::build_report(synthetic_trace());
  EXPECT_EQ(report.benchmark_runs, 10u);
  EXPECT_NEAR(report.benchmark_sim_cost_s, 1.0, 1e-9);
  EXPECT_EQ(report.model_refits, 2u);
  EXPECT_EQ(report.points_acquired, 1u);
  EXPECT_EQ(report.nonp2_swaps, 1u);
  ASSERT_EQ(report.phases.size(), 1u);
  EXPECT_EQ(report.phases[0].label, "train:bcast");
  EXPECT_DOUBLE_EQ(report.phases[0].sim_s, 30.0);
  EXPECT_TRUE(report.phases[0].has_outcome);
  EXPECT_TRUE(report.phases[0].converged);
  EXPECT_DOUBLE_EQ(report.total_sim_s, 30.0);
  ASSERT_EQ(report.trajectories.count("bcast"), 1u);
  const auto& traj = report.trajectories.at("bcast");
  ASSERT_EQ(traj.size(), 5u);
  EXPECT_EQ(traj.front().iteration, 0);
  EXPECT_EQ(traj.back().points, 20u);
  EXPECT_EQ(report.batch_histogram.at(4), 2u);
  EXPECT_EQ(report.batch_histogram.at(2), 1u);
  EXPECT_EQ(report.event_counts.at("training_iteration"), 5u);
}

TEST_F(TelemetryTest, RenderReportShowsEverySection) {
  const telemetry::RunReport report = telemetry::build_report(synthetic_trace());
  std::ostringstream os;
  telemetry::render_report(report, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("run summary"), std::string::npos);
  EXPECT_NE(text.find("phase timing"), std::string::npos);
  EXPECT_NE(text.find("train:bcast"), std::string::npos);
  EXPECT_NE(text.find("variance trajectory: bcast"), std::string::npos);
  EXPECT_NE(text.find("scheduler batch occupancy"), std::string::npos);
  EXPECT_NE(text.find("total simulated training"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);  // occupancy bars
}

TEST_F(TelemetryTest, RenderSamplesLongTrajectoriesKeepingEndpoints) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 100; ++i) {
    TraceEvent it = make_event(EventKind::TrainingIteration, "reduce");
    it.fields["iteration"] = i;
    it.fields["points"] = i + 1;
    it.fields["variance"] = 1.0;
    it.fields["variance_ema"] = 1.0;
    events.push_back(std::move(it));
  }
  std::ostringstream os;
  telemetry::render_report(telemetry::build_report(events), os, 5);
  const std::string text = os.str();
  // First and last iterations must survive the down-sampling (table rows
  // are indented two spaces).
  EXPECT_NE(text.find("\n  0 "), std::string::npos);
  EXPECT_NE(text.find("\n  99 "), std::string::npos);
  // Strictly fewer rows than iterations: count newlines in the trajectory
  // table region as a proxy.
  EXPECT_LT(std::count(text.begin(), text.end(), '\n'), 20);
}

// --- chrome://tracing export ---------------------------------------------

TEST_F(TelemetryTest, ChromeTraceConvertsPhasesAndBatchedRunsToSpans) {
  std::vector<TraceEvent> events;
  TraceEvent phase = make_event(EventKind::Phase, "train:bcast");
  phase.t_wall_ms = 100.0;
  phase.fields["wall_ms"] = 40.0;
  phase.fields["sim_s"] = 3.5;
  events.push_back(std::move(phase));
  TraceEvent run = make_event(EventKind::BenchmarkRun, "bcast");
  run.t_wall_ms = 90.0;
  run.fields["slot"] = 2;
  run.fields["wall_ms"] = 5.0;
  events.push_back(std::move(run));
  TraceEvent refit = make_event(EventKind::ModelRefit, "bcast");
  refit.t_wall_ms = 95.0;
  events.push_back(std::move(refit));

  const util::Json doc = telemetry::chrome_trace_json(events);
  ASSERT_TRUE(doc.is_object());
  const util::JsonArray& tev = doc.as_object().at("traceEvents").as_array();
  ASSERT_EQ(tev.size(), 3u);

  const util::JsonObject& p = tev[0].as_object();
  EXPECT_EQ(p.at("name").as_string(), "train:bcast");
  EXPECT_EQ(p.at("ph").as_string(), "X");
  // Span ends at the event timestamp: ts = (100 - 40) ms in microseconds.
  EXPECT_DOUBLE_EQ(p.at("ts").as_number(), 60000.0);
  EXPECT_DOUBLE_EQ(p.at("dur").as_number(), 40000.0);
  EXPECT_EQ(p.at("tid").as_int(), 0);
  EXPECT_DOUBLE_EQ(p.at("args").as_object().at("sim_s").as_number(), 3.5);

  const util::JsonObject& r = tev[1].as_object();
  EXPECT_EQ(r.at("ph").as_string(), "X");
  EXPECT_EQ(r.at("tid").as_int(), 3);  // slot 2 -> lane 3 (lane 0 is phases)
  EXPECT_DOUBLE_EQ(r.at("ts").as_number(), 85000.0);
  EXPECT_DOUBLE_EQ(r.at("dur").as_number(), 5000.0);

  const util::JsonObject& m = tev[2].as_object();
  EXPECT_EQ(m.at("ph").as_string(), "i");
  EXPECT_EQ(m.at("tid").as_int(), 0);
  EXPECT_DOUBLE_EQ(m.at("ts").as_number(), 95000.0);
}

TEST_F(TelemetryTest, ChromeTraceClampsSpansThatPredateTheEpoch) {
  TraceEvent phase = make_event(EventKind::Phase, "p");
  phase.t_wall_ms = 5.0;
  phase.fields["wall_ms"] = 9.0;  // longer than the time since epoch
  const util::Json doc = telemetry::chrome_trace_json({phase});
  const util::JsonObject& p = doc.as_object().at("traceEvents").as_array()[0].as_object();
  EXPECT_DOUBLE_EQ(p.at("ts").as_number(), 0.0);
  // The duration shrinks with the clamp: the span still *ends* at the
  // recorded event time (5 ms), not 4 ms past it.
  EXPECT_DOUBLE_EQ(p.at("dur").as_number(), 5000.0);
}

TEST_F(TelemetryTest, WriteChromeTraceRoundTripsThroughTheParser) {
  const std::string path = "chrome_trace_test.json";
  telemetry::write_chrome_trace(synthetic_trace(), path);
  const util::Json doc = util::Json::parse_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(doc.is_object());
  const util::JsonArray& tev = doc.as_object().at("traceEvents").as_array();
  EXPECT_EQ(tev.size(), synthetic_trace().size());
  for (const util::Json& e : tev) {
    const util::JsonObject& o = e.as_object();
    EXPECT_TRUE(o.contains("name"));
    EXPECT_TRUE(o.contains("ph"));
    EXPECT_TRUE(o.contains("ts"));
    EXPECT_TRUE(o.contains("pid"));
    EXPECT_TRUE(o.contains("tid"));
  }
}

// Golden schema contract for the chrome://tracing export. chrome://tracing
// and Perfetto silently drop (or worse, misrender) events that violate the
// trace-event format, so the exporter pins it here: every event carries
// name/ph/ts/pid/tid, ph is a known phase, timestamps are non-negative, and
// complete spans have a non-negative duration. If this test fails, the
// exporter broke the viewer contract — fix the exporter, not the test.
TEST_F(TelemetryTest, ChromeTraceSchemaGolden) {
  // A trace that exercises every exporter path: phases (spans), batched
  // benchmark runs (slot lanes), instants, and the pre-epoch clamp.
  std::vector<TraceEvent> events = synthetic_trace();
  TraceEvent early = make_event(EventKind::Phase, "clamped");
  early.t_wall_ms = 1.0;
  early.fields["wall_ms"] = 50.0;  // starts before the epoch -> clamped
  events.push_back(std::move(early));

  const util::Json doc = telemetry::chrome_trace_json(events);
  const util::JsonArray& tev = doc.as_object().at("traceEvents").as_array();
  ASSERT_EQ(tev.size(), events.size());
  for (const util::Json& e : tev) {
    const util::JsonObject& o = e.as_object();
    ASSERT_TRUE(o.contains("name"));
    ASSERT_TRUE(o.contains("ph"));
    ASSERT_TRUE(o.contains("ts"));
    ASSERT_TRUE(o.contains("pid"));
    ASSERT_TRUE(o.contains("tid"));
    const std::string ph = o.at("ph").as_string();
    EXPECT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    EXPECT_GE(o.at("ts").as_number(), 0.0);
    if (ph == "X") {
      ASSERT_TRUE(o.contains("dur"));
      EXPECT_GE(o.at("dur").as_number(), 0.0);
    } else {
      // Instant events need a scope for the viewer to draw them.
      EXPECT_EQ(o.at("s").as_string(), "t");
    }
  }
}

// --- prometheus exposition -------------------------------------------------

TEST_F(TelemetryTest, PrometheusTextExposesAllInstrumentKinds) {
  telemetry::MetricsRegistry& reg = telemetry::metrics();
  reg.counter("prom.runs").add(3);
  reg.gauge("prom.level").set(2.5);
  telemetry::Histogram& h = reg.histogram("prom.lat_us", {1.0, 3});
  h.observe(1.5);   // finite bucket (le 2)
  h.observe(100.0); // overflow bucket -> +Inf only

  const std::string text = telemetry::prometheus_text(reg);
  // Names are sanitized ('.' -> '_') and prefixed; counters get _total.
  EXPECT_NE(text.find("# TYPE acclaim_prom_runs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("acclaim_prom_runs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE acclaim_prom_level gauge\n"), std::string::npos);
  EXPECT_NE(text.find("acclaim_prom_level 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE acclaim_prom_lat_us histogram\n"), std::string::npos);
  // Buckets are cumulative and end with +Inf == count.
  EXPECT_NE(text.find("acclaim_prom_lat_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("acclaim_prom_lat_us_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("acclaim_prom_lat_us_sum 101.5\n"), std::string::npos);
  EXPECT_NE(text.find("acclaim_prom_lat_us_count 2\n"), std::string::npos);
}

// --- self-profiler ----------------------------------------------------------

TEST_F(TelemetryTest, ScopedTimerBuildsNestedAttributionPaths) {
  telemetry::profiler().disable();
  telemetry::profiler().enable();
  {
    telemetry::ScopedTimer outer("outer");
    EXPECT_TRUE(outer.active());
    telemetry::ScopedTimer inner("inner");
    EXPECT_TRUE(inner.active());
  }
  const auto snap = telemetry::profiler().snapshot();
  telemetry::profiler().disable();
  ASSERT_EQ(snap.count("outer"), 1u);
  ASSERT_EQ(snap.count("outer;inner"), 1u);
  EXPECT_EQ(snap.at("outer").count, 1u);
  EXPECT_EQ(snap.at("outer;inner").count, 1u);
  // Inclusive times: the parent covers the child.
  EXPECT_GE(snap.at("outer").total_ns, snap.at("outer;inner").total_ns);
}

TEST_F(TelemetryTest, ScopedTimerIsInertWhenProfilerDisabled) {
  telemetry::profiler().disable();
  telemetry::ScopedTimer t("idle");
  EXPECT_FALSE(t.active());
  EXPECT_TRUE(telemetry::profiler().snapshot().empty());
}

TEST_F(TelemetryTest, FoldedStacksExportSelfTimeMinusChildren) {
  telemetry::profiler().disable();
  telemetry::profiler().enable();
  // 10 ms inclusive under "a", of which 4 ms belongs to the direct child
  // "a;b"; the grandchild must NOT be subtracted from "a" again.
  telemetry::profiler().record("a", 10'000'000);
  telemetry::profiler().record("a;b", 4'000'000);
  telemetry::profiler().record("a;b;c", 1'000'000);
  const std::string folded = telemetry::profiler().folded();
  telemetry::profiler().disable();
  EXPECT_NE(folded.find("a 6000\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("a;b 3000\n"), std::string::npos) << folded;
  EXPECT_NE(folded.find("a;b;c 1000\n"), std::string::npos) << folded;
}

TEST_F(TelemetryTest, FoldedClampsOverlappingChildrenAndSkipsZeroSelf) {
  telemetry::profiler().disable();
  telemetry::profiler().enable();
  // Concurrent children can sum past the parent (parallel workers); the
  // parent's self time clamps to zero and its line is elided.
  telemetry::profiler().record("p", 1'000'000);
  telemetry::profiler().record("p;w", 3'000'000);
  const std::string folded = telemetry::profiler().folded();
  telemetry::profiler().disable();
  EXPECT_EQ(folded.find("p "), std::string::npos) << folded;
  EXPECT_NE(folded.find("p;w 3000\n"), std::string::npos) << folded;
}

TEST_F(TelemetryTest, WriteFoldedThrowsOnUnwritablePath) {
  telemetry::profiler().disable();
  EXPECT_THROW(telemetry::profiler().write_folded("/no/such/dir/profile.folded"), IoError);
}

// --- metrics snapshot loading (acclaim report --metrics) --------------------

TEST_F(TelemetryTest, LoadMetricsSnapshotRoundTripsARealSnapshot) {
  telemetry::metrics().counter("load.ok").add(2);
  const std::string path = temp_path("metrics_load.json");
  telemetry::metrics().dump_file(path);
  const util::Json doc = telemetry::load_metrics_snapshot(path);
  std::remove(path.c_str());
  EXPECT_EQ(doc.at("counters").at("load.ok").as_int(), 2);
}

TEST_F(TelemetryTest, LoadMetricsSnapshotErrorsAreOneClearLine) {
  // Missing file.
  try {
    telemetry::load_metrics_snapshot(temp_path("no_such_metrics.json"));
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("metrics file missing or unreadable"), std::string::npos) << what;
    EXPECT_NE(what.find("no_such_metrics.json"), std::string::npos) << what;
    EXPECT_EQ(what.find('\n'), std::string::npos) << what;  // one line
  }

  // Malformed JSON.
  const std::string bad = temp_path("metrics_bad.json");
  {
    std::ofstream out(bad, std::ios::trunc);
    out << "{\"counters\": oops";
  }
  try {
    telemetry::load_metrics_snapshot(bad);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("not valid JSON"), std::string::npos) << e.what();
  }

  // Valid JSON, wrong shape.
  const std::string shape = temp_path("metrics_shape.json");
  {
    std::ofstream out(shape, std::ios::trunc);
    out << "{\"rows\": []}";
  }
  try {
    telemetry::load_metrics_snapshot(shape);
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("not a metrics snapshot"), std::string::npos)
        << e.what();
  }
  std::remove(bad.c_str());
  std::remove(shape.c_str());
}

}  // namespace

// Tests for the synthetic trace generator (Fig. 4 substrate) and the
// application/break-even model (Fig. 15 substrate).
#include <gtest/gtest.h>

#include <cmath>

#include "platform/app_model.hpp"
#include "test_helpers.hpp"
#include "traces/traces.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;

TEST(Traces, FourLlnlLikeApps) {
  const auto apps = traces::llnl_like_apps();
  ASSERT_EQ(apps.size(), 4u);
  int no_large = 0;
  for (const auto& app : apps) {
    EXPECT_FALSE(app.name.empty());
    EXPECT_GT(app.p2_count_prob, 0.5);
    EXPECT_LT(app.p2_count_prob, 1.0);
    if (!app.has_large_scale_data) {
      ++no_large;
    }
  }
  EXPECT_EQ(no_large, 1);  // ParaDis has no 1024-node trace (Fig. 4 note)
}

TEST(Traces, GeneratedSizesAreValidAndMixed) {
  util::Rng rng(1);
  const auto apps = traces::llnl_like_apps();
  const auto trace = traces::generate_trace(apps[1], 128, 20000, rng);
  ASSERT_EQ(trace.size(), 20000u);
  for (const auto& call : trace) {
    EXPECT_GT(call.msg_bytes, 0u);
  }
  const auto profile = traces::profile_trace(trace);
  EXPECT_EQ(profile.total_calls, 20000u);
  EXPECT_GT(profile.calls_per_collective.size(), 1u);  // LAMMPS uses 3 collectives
}

TEST(Traces, AggregateNonP2FractionMatchesPaper) {
  // The paper's headline: 15.7% of message sizes are non-P2 across the four
  // applications. Allow +-3 percentage points for the synthetic stand-in.
  util::Rng rng(2);
  std::size_t total = 0;
  std::size_t nonp2 = 0;
  for (const auto& app : traces::llnl_like_apps()) {
    for (int scale : {128, 1024}) {
      if (scale == 1024 && !app.has_large_scale_data) {
        continue;
      }
      const auto trace = traces::generate_trace(app, scale, 30000, rng);
      const auto p = traces::profile_trace(trace);
      total += p.total_calls;
      nonp2 += p.nonp2_calls;
    }
  }
  const double pct = 100.0 * static_cast<double>(nonp2) / static_cast<double>(total);
  EXPECT_NEAR(pct, 15.7, 3.0);
}

TEST(Traces, NonP2FractionIsNearlyScaleIndependent) {
  util::Rng rng(3);
  for (const auto& app : traces::llnl_like_apps()) {
    const auto small = traces::profile_trace(traces::generate_trace(app, 128, 40000, rng));
    const auto large = traces::profile_trace(traces::generate_trace(app, 1024, 40000, rng));
    EXPECT_NEAR(small.pct_nonp2, large.pct_nonp2, 2.5) << app.name;
  }
}

TEST(Traces, RejectsDegenerateSpecs) {
  util::Rng rng(4);
  traces::AppTraceSpec bad;
  bad.mix.clear();
  EXPECT_THROW(traces::generate_trace(bad, 128, 10, rng), InvalidArgument);
  traces::AppTraceSpec bad2;
  bad2.type_sizes.clear();
  EXPECT_THROW(traces::generate_trace(bad2, 128, 10, rng), InvalidArgument);
  EXPECT_THROW(traces::generate_trace(traces::llnl_like_apps()[0], 0, 10, rng),
               InvalidArgument);
}

TEST(Traces, ProfileArithmetic) {
  const std::vector<traces::CollectiveCall> trace = {
      {coll::Collective::Bcast, 1024},      // P2
      {coll::Collective::Bcast, 1000},      // non-P2
      {coll::Collective::Allreduce, 8},     // P2
      {coll::Collective::Allreduce, 24},    // non-P2
  };
  const auto p = traces::profile_trace(trace);
  EXPECT_EQ(p.total_calls, 4u);
  EXPECT_EQ(p.nonp2_calls, 2u);
  EXPECT_DOUBLE_EQ(p.pct_nonp2, 50.0);
  EXPECT_EQ(p.calls_per_collective.at(coll::Collective::Bcast), 2u);
}

// ----------------------------------------------------------------- platform

TEST(BreakEven, MatchesClosedForm) {
  // R = T * s / (s - 1): with T = 5 min and s = 1.01, R ~ 8.4 h — the
  // paper's "6.4-9.5 hours for a 1.01x speedup" band (Fig. 15).
  const double t = 5.0 * 60.0;
  const double r = platform::breakeven_runtime_s(t, 1.01);
  EXPECT_NEAR(r, t * 1.01 / 0.01, 1e-9);
  EXPECT_GT(r / 3600.0, 6.0);
  EXPECT_LT(r / 3600.0, 10.0);
  // Larger speedups amortize much faster.
  EXPECT_LT(platform::breakeven_runtime_s(t, 1.10), r / 5.0);
  EXPECT_THROW(platform::breakeven_runtime_s(t, 1.0), InvalidArgument);
  EXPECT_THROW(platform::breakeven_runtime_s(-1.0, 1.1), InvalidArgument);
}

class AppModelTest : public testing::Test {
 protected:
  AppModelTest() : ds_(testing_support::small_dataset()) {
    time_us_ = [this](const bench::Scenario& s, coll::Algorithm a) {
      return ds_.time_us(s, a);
    };
    oracle_ = [this](const bench::Scenario& s) { return ds_.best_algorithm(s); };
    pessimal_ = [this](const bench::Scenario& s) {
      coll::Algorithm worst = coll::algorithms_for(s.collective).front();
      double worst_us = 0.0;
      for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
        if (ds_.time_us(s, a) > worst_us) {
          worst_us = ds_.time_us(s, a);
          worst = a;
        }
      }
      return worst;
    };
  }
  const bench::Dataset& ds_;
  platform::TimeSource time_us_;
  core::Selector oracle_;
  core::Selector pessimal_;
};

TEST_F(AppModelTest, IterationTimeDecomposes) {
  platform::ApplicationProfile profile;
  profile.name = "toy";
  profile.compute_s_per_iteration = 2.0;
  profile.collectives = {{bench::Scenario{coll::Collective::Bcast, 4, 2, 1024}, 100.0}};
  const platform::ApplicationModel app(profile);
  const double coll_s = app.collective_s_per_iteration(oracle_, time_us_);
  EXPECT_GT(coll_s, 0.0);
  EXPECT_NEAR(app.iteration_s(oracle_, time_us_), 2.0 + coll_s, 1e-12);
}

TEST_F(AppModelTest, BetterSelectionsYieldSpeedup) {
  platform::ApplicationProfile profile;
  profile.name = "toy";
  profile.compute_s_per_iteration = 0.001;
  for (std::uint64_t msg : {64ull, 4096ull, 65536ull}) {
    profile.collectives.push_back(
        {bench::Scenario{coll::Collective::Allgather, 8, 4, msg}, 50.0});
  }
  const platform::ApplicationModel app(profile);
  const double s = app.speedup(oracle_, pessimal_, time_us_);
  EXPECT_GT(s, 1.05);
  EXPECT_NEAR(app.speedup(oracle_, oracle_, time_us_), 1.0, 1e-12);
}

TEST_F(AppModelTest, SyntheticAppHitsRequestedCollectiveFraction) {
  // Message sizes restricted to what the small test dataset contains.
  const std::vector<std::uint64_t> msgs = {64, 1024, 16384, 65536};
  for (double frac : {0.1, 0.3, 0.6}) {
    const auto profile = platform::make_synthetic_app("synt", coll::Collective::Allreduce, 8, 4,
                                                      frac, time_us_, oracle_, msgs);
    const platform::ApplicationModel app(profile);
    EXPECT_NEAR(app.collective_fraction(oracle_, time_us_), frac, 1e-9);
  }
  EXPECT_THROW(platform::make_synthetic_app("x", coll::Collective::Bcast, 8, 4, 0.0, time_us_,
                                            oracle_, msgs),
               InvalidArgument);
}

}  // namespace

// ---------------------------------------------------------------- replay

#include "platform/trace_replay.hpp"

namespace {

using namespace acclaim;

class ReplayTest : public testing::Test {
 protected:
  ReplayTest() : ds_(testing_support::small_dataset()) {
    time_us_ = [this](const bench::Scenario& s, coll::Algorithm a) {
      return ds_.time_us(s, a);
    };
    oracle_ = [this](const bench::Scenario& s) { return ds_.best_algorithm(s); };
  }

  /// A trace whose sizes all exist in the small dataset.
  std::vector<traces::CollectiveCall> dataset_trace(std::size_t n) const {
    std::vector<traces::CollectiveCall> trace;
    const auto msgs = ds_.message_sizes(coll::Collective::Bcast);
    util::Rng rng(8);
    for (std::size_t i = 0; i < n; ++i) {
      trace.push_back({coll::Collective::Bcast, msgs[rng.index(msgs.size())]});
    }
    return trace;
  }

  const bench::Dataset& ds_;
  platform::TimeSource time_us_;
  core::Selector oracle_;
};

TEST_F(ReplayTest, AccountsEveryCall) {
  const auto trace = dataset_trace(5000);
  const auto r = platform::replay_trace(trace, 8, 4, oracle_, time_us_);
  EXPECT_EQ(r.calls, 5000u);
  EXPECT_GT(r.total_s, 0.0);
  EXPECT_GT(r.distinct_scenarios, 5u);
  EXPECT_LT(r.distinct_scenarios, 40u);  // memoization collapses repeats
  double sum = 0.0;
  for (const auto& [c, s] : r.per_collective_s) {
    sum += s;
  }
  EXPECT_NEAR(sum, r.total_s, 1e-9);
}

TEST_F(ReplayTest, MatchesBruteForcePricing) {
  const auto trace = dataset_trace(300);
  const auto r = platform::replay_trace(trace, 8, 4, oracle_, time_us_);
  double expect_s = 0.0;
  for (const auto& call : trace) {
    const bench::Scenario s{call.collective, 8, 4, call.msg_bytes};
    expect_s += ds_.best_time_us(s) * 1e-6;
  }
  EXPECT_NEAR(r.total_s, expect_s, 1e-9 * expect_s);
}

TEST_F(ReplayTest, OracleNeverLosesToAnySelector) {
  const auto trace = dataset_trace(1000);
  const core::Selector worst = [this](const bench::Scenario& s) {
    coll::Algorithm w = coll::algorithms_for(s.collective).front();
    double wt = 0.0;
    for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
      if (ds_.time_us(s, a) > wt) {
        wt = ds_.time_us(s, a);
        w = a;
      }
    }
    return w;
  };
  const double speedup = platform::replay_speedup(trace, 8, 4, oracle_, worst, time_us_);
  EXPECT_GE(speedup, 1.0);
  EXPECT_THROW(platform::replay_trace({}, 8, 4, oracle_, time_us_), InvalidArgument);
}

}  // namespace

// Tests for the synthetic trace generator (Fig. 4 substrate) and the
// application/break-even model (Fig. 15 substrate).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "platform/app_model.hpp"
#include "test_helpers.hpp"
#include "traces/traces.hpp"
#include "util/error.hpp"

namespace {

using namespace acclaim;

TEST(Traces, FourLlnlLikeApps) {
  const auto apps = traces::llnl_like_apps();
  ASSERT_EQ(apps.size(), 4u);
  int no_large = 0;
  for (const auto& app : apps) {
    EXPECT_FALSE(app.name.empty());
    EXPECT_GT(app.p2_count_prob, 0.5);
    EXPECT_LT(app.p2_count_prob, 1.0);
    if (!app.has_large_scale_data) {
      ++no_large;
    }
  }
  EXPECT_EQ(no_large, 1);  // ParaDis has no 1024-node trace (Fig. 4 note)
}

TEST(Traces, GeneratedSizesAreValidAndMixed) {
  util::Rng rng(1);
  const auto apps = traces::llnl_like_apps();
  const auto trace = traces::generate_trace(apps[1], 128, 20000, rng);
  ASSERT_EQ(trace.size(), 20000u);
  for (const auto& call : trace) {
    EXPECT_GT(call.msg_bytes, 0u);
  }
  const auto profile = traces::profile_trace(trace);
  EXPECT_EQ(profile.total_calls, 20000u);
  EXPECT_GT(profile.calls_per_collective.size(), 1u);  // LAMMPS uses 3 collectives
}

TEST(Traces, AggregateNonP2FractionMatchesPaper) {
  // The paper's headline: 15.7% of message sizes are non-P2 across the four
  // applications. Allow +-3 percentage points for the synthetic stand-in.
  util::Rng rng(2);
  std::size_t total = 0;
  std::size_t nonp2 = 0;
  for (const auto& app : traces::llnl_like_apps()) {
    for (int scale : {128, 1024}) {
      if (scale == 1024 && !app.has_large_scale_data) {
        continue;
      }
      const auto trace = traces::generate_trace(app, scale, 30000, rng);
      const auto p = traces::profile_trace(trace);
      total += p.total_calls;
      nonp2 += p.nonp2_calls;
    }
  }
  const double pct = 100.0 * static_cast<double>(nonp2) / static_cast<double>(total);
  EXPECT_NEAR(pct, 15.7, 3.0);
}

TEST(Traces, NonP2FractionIsNearlyScaleIndependent) {
  util::Rng rng(3);
  for (const auto& app : traces::llnl_like_apps()) {
    const auto small = traces::profile_trace(traces::generate_trace(app, 128, 40000, rng));
    const auto large = traces::profile_trace(traces::generate_trace(app, 1024, 40000, rng));
    EXPECT_NEAR(small.pct_nonp2, large.pct_nonp2, 2.5) << app.name;
  }
}

TEST(Traces, RejectsDegenerateSpecs) {
  util::Rng rng(4);
  traces::AppTraceSpec bad;
  bad.mix.clear();
  EXPECT_THROW(traces::generate_trace(bad, 128, 10, rng), InvalidArgument);
  traces::AppTraceSpec bad2;
  bad2.type_sizes.clear();
  EXPECT_THROW(traces::generate_trace(bad2, 128, 10, rng), InvalidArgument);
  EXPECT_THROW(traces::generate_trace(traces::llnl_like_apps()[0], 0, 10, rng),
               InvalidArgument);
}

TEST(Traces, ProfileArithmetic) {
  const std::vector<traces::CollectiveCall> trace = {
      {coll::Collective::Bcast, 1024},      // P2
      {coll::Collective::Bcast, 1000},      // non-P2
      {coll::Collective::Allreduce, 8},     // P2
      {coll::Collective::Allreduce, 24},    // non-P2
  };
  const auto p = traces::profile_trace(trace);
  EXPECT_EQ(p.total_calls, 4u);
  EXPECT_EQ(p.nonp2_calls, 2u);
  EXPECT_DOUBLE_EQ(p.pct_nonp2, 50.0);
  EXPECT_EQ(p.calls_per_collective.at(coll::Collective::Bcast), 2u);
}

TEST(Traces, ProfileTotalsAreInvariantUnderCallReordering) {
  // profile_trace aggregates per call, so any permutation of the same calls
  // must produce identical statistics.
  util::Rng rng(9);
  const auto apps = traces::llnl_like_apps();
  std::vector<traces::CollectiveCall> trace = traces::generate_trace(apps[3], 64, 5000, rng);
  const auto before = traces::profile_trace(trace);

  std::reverse(trace.begin(), trace.end());
  const auto reversed = traces::profile_trace(trace);
  util::Rng shuffle_rng(10);
  for (std::size_t i = trace.size(); i > 1; --i) {
    std::swap(trace[i - 1], trace[shuffle_rng.index(i)]);
  }
  const auto shuffled = traces::profile_trace(trace);

  for (const auto* p : {&reversed, &shuffled}) {
    EXPECT_EQ(p->total_calls, before.total_calls);
    EXPECT_EQ(p->nonp2_calls, before.nonp2_calls);
    EXPECT_DOUBLE_EQ(p->pct_nonp2, before.pct_nonp2);
    EXPECT_EQ(p->calls_per_collective, before.calls_per_collective);
  }
}

TEST(Traces, MessageSizesAreCountsTimesP2TypeSizes) {
  // The documented size model: every message is a datatype size (P2 by
  // construction) times an element count within the spec's log2 range, so a
  // message is non-P2 exactly when its count is.
  util::Rng rng(11);
  for (const auto& app : traces::llnl_like_apps()) {
    const std::uint64_t min_ts = *std::min_element(app.type_sizes.begin(), app.type_sizes.end());
    const std::uint64_t max_ts = *std::max_element(app.type_sizes.begin(), app.type_sizes.end());
    const std::uint64_t lo = min_ts << app.min_count_log2;
    // Non-P2 counts reach at most 2^(lg+1) - 1 within the top octave.
    const std::uint64_t hi = (max_ts << (app.max_count_log2 + 1)) - 1;
    for (const auto& call : traces::generate_trace(app, 128, 4000, rng)) {
      EXPECT_GE(call.msg_bytes, lo);
      EXPECT_LE(call.msg_bytes, hi);
      // Divisible by at least one of the app's datatype sizes.
      bool divides = false;
      for (const std::uint64_t ts : app.type_sizes) {
        divides = divides || call.msg_bytes % ts == 0;
      }
      EXPECT_TRUE(divides) << app.name << " produced " << call.msg_bytes << " bytes";
    }
  }
}

TEST(Traces, SameSpecScaleAndSeedYieldsByteIdenticalTraces) {
  const auto apps = traces::llnl_like_apps();
  util::Rng rng_a(1234);
  util::Rng rng_b(1234);
  const auto a = traces::generate_trace(apps[1], 256, 3000, rng_a);
  const auto b = traces::generate_trace(apps[1], 256, 3000, rng_b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].collective, b[i].collective) << "call " << i;
    EXPECT_EQ(a[i].msg_bytes, b[i].msg_bytes) << "call " << i;
  }
}

TEST(Traces, JobStreamIsDeterministicAndRespectsItsSpec) {
  traces::JobStreamSpec spec;
  spec.n_jobs = 200;
  spec.mean_interarrival_s = 30.0;
  spec.node_choices = {4, 8, 16};
  spec.ppn_choices = {2, 4};
  spec.seed = 77;
  const auto stream = traces::generate_job_stream(spec);
  const auto again = traces::generate_job_stream(spec);
  ASSERT_EQ(stream.size(), 200u);
  ASSERT_EQ(again.size(), 200u);

  double prev_arrival = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const traces::JobArrival& job = stream[i];
    EXPECT_EQ(job.job_id, i);
    EXPECT_GE(job.arrival_s, prev_arrival);
    prev_arrival = job.arrival_s;
    EXPECT_TRUE(std::find(spec.ppn_choices.begin(), spec.ppn_choices.end(), job.ppn) !=
                spec.ppn_choices.end());
    if (job.app.has_large_scale_data) {
      EXPECT_TRUE(std::find(spec.node_choices.begin(), spec.node_choices.end(), job.nnodes) !=
                  spec.node_choices.end());
    } else {
      // Apps without large-scale trace data (ParaDis) are capped.
      EXPECT_LE(job.nnodes, spec.small_app_max_nodes);
      EXPECT_GE(job.nnodes, 2);
    }
    EXPECT_EQ(job.job_seed % 2, 1u);  // seeds are forced odd (stream-safe)

    // Byte-identical regeneration.
    EXPECT_EQ(again[i].app.name, job.app.name);
    EXPECT_DOUBLE_EQ(again[i].arrival_s, job.arrival_s);
    EXPECT_EQ(again[i].nnodes, job.nnodes);
    EXPECT_EQ(again[i].ppn, job.ppn);
    EXPECT_EQ(again[i].job_seed, job.job_seed);
  }

  traces::JobStreamSpec bad = spec;
  bad.n_jobs = 0;
  EXPECT_THROW(traces::generate_job_stream(bad), InvalidArgument);
  bad = spec;
  bad.node_choices = {1};
  EXPECT_THROW(traces::generate_job_stream(bad), InvalidArgument);
}

// ----------------------------------------------------------------- platform

TEST(BreakEven, MatchesClosedForm) {
  // R = T * s / (s - 1): with T = 5 min and s = 1.01, R ~ 8.4 h — the
  // paper's "6.4-9.5 hours for a 1.01x speedup" band (Fig. 15).
  const double t = 5.0 * 60.0;
  const double r = platform::breakeven_runtime_s(t, 1.01);
  EXPECT_NEAR(r, t * 1.01 / 0.01, 1e-9);
  EXPECT_GT(r / 3600.0, 6.0);
  EXPECT_LT(r / 3600.0, 10.0);
  // Larger speedups amortize much faster.
  EXPECT_LT(platform::breakeven_runtime_s(t, 1.10), r / 5.0);
  EXPECT_THROW(platform::breakeven_runtime_s(t, 1.0), InvalidArgument);
  EXPECT_THROW(platform::breakeven_runtime_s(-1.0, 1.1), InvalidArgument);
}

class AppModelTest : public testing::Test {
 protected:
  AppModelTest() : ds_(testing_support::small_dataset()) {
    time_us_ = [this](const bench::Scenario& s, coll::Algorithm a) {
      return ds_.time_us(s, a);
    };
    oracle_ = [this](const bench::Scenario& s) { return ds_.best_algorithm(s); };
    pessimal_ = [this](const bench::Scenario& s) {
      coll::Algorithm worst = coll::algorithms_for(s.collective).front();
      double worst_us = 0.0;
      for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
        if (ds_.time_us(s, a) > worst_us) {
          worst_us = ds_.time_us(s, a);
          worst = a;
        }
      }
      return worst;
    };
  }
  const bench::Dataset& ds_;
  platform::TimeSource time_us_;
  core::Selector oracle_;
  core::Selector pessimal_;
};

TEST_F(AppModelTest, IterationTimeDecomposes) {
  platform::ApplicationProfile profile;
  profile.name = "toy";
  profile.compute_s_per_iteration = 2.0;
  profile.collectives = {{bench::Scenario{coll::Collective::Bcast, 4, 2, 1024}, 100.0}};
  const platform::ApplicationModel app(profile);
  const double coll_s = app.collective_s_per_iteration(oracle_, time_us_);
  EXPECT_GT(coll_s, 0.0);
  EXPECT_NEAR(app.iteration_s(oracle_, time_us_), 2.0 + coll_s, 1e-12);
}

TEST_F(AppModelTest, BetterSelectionsYieldSpeedup) {
  platform::ApplicationProfile profile;
  profile.name = "toy";
  profile.compute_s_per_iteration = 0.001;
  for (std::uint64_t msg : {64ull, 4096ull, 65536ull}) {
    profile.collectives.push_back(
        {bench::Scenario{coll::Collective::Allgather, 8, 4, msg}, 50.0});
  }
  const platform::ApplicationModel app(profile);
  const double s = app.speedup(oracle_, pessimal_, time_us_);
  EXPECT_GT(s, 1.05);
  EXPECT_NEAR(app.speedup(oracle_, oracle_, time_us_), 1.0, 1e-12);
}

TEST_F(AppModelTest, SyntheticAppHitsRequestedCollectiveFraction) {
  // Message sizes restricted to what the small test dataset contains.
  const std::vector<std::uint64_t> msgs = {64, 1024, 16384, 65536};
  for (double frac : {0.1, 0.3, 0.6}) {
    const auto profile = platform::make_synthetic_app("synt", coll::Collective::Allreduce, 8, 4,
                                                      frac, time_us_, oracle_, msgs);
    const platform::ApplicationModel app(profile);
    EXPECT_NEAR(app.collective_fraction(oracle_, time_us_), frac, 1e-9);
  }
  EXPECT_THROW(platform::make_synthetic_app("x", coll::Collective::Bcast, 8, 4, 0.0, time_us_,
                                            oracle_, msgs),
               InvalidArgument);
}

}  // namespace

// ---------------------------------------------------------------- replay

#include "platform/trace_replay.hpp"

namespace {

using namespace acclaim;

class ReplayTest : public testing::Test {
 protected:
  ReplayTest() : ds_(testing_support::small_dataset()) {
    time_us_ = [this](const bench::Scenario& s, coll::Algorithm a) {
      return ds_.time_us(s, a);
    };
    oracle_ = [this](const bench::Scenario& s) { return ds_.best_algorithm(s); };
  }

  /// A trace whose sizes all exist in the small dataset.
  std::vector<traces::CollectiveCall> dataset_trace(std::size_t n) const {
    std::vector<traces::CollectiveCall> trace;
    const auto msgs = ds_.message_sizes(coll::Collective::Bcast);
    util::Rng rng(8);
    for (std::size_t i = 0; i < n; ++i) {
      trace.push_back({coll::Collective::Bcast, msgs[rng.index(msgs.size())]});
    }
    return trace;
  }

  const bench::Dataset& ds_;
  platform::TimeSource time_us_;
  core::Selector oracle_;
};

TEST_F(ReplayTest, AccountsEveryCall) {
  const auto trace = dataset_trace(5000);
  const auto r = platform::replay_trace(trace, 8, 4, oracle_, time_us_);
  EXPECT_EQ(r.calls, 5000u);
  EXPECT_GT(r.total_s, 0.0);
  EXPECT_GT(r.distinct_scenarios, 5u);
  EXPECT_LT(r.distinct_scenarios, 40u);  // memoization collapses repeats
  double sum = 0.0;
  for (const auto& [c, s] : r.per_collective_s) {
    sum += s;
  }
  EXPECT_NEAR(sum, r.total_s, 1e-9);
}

TEST_F(ReplayTest, MatchesBruteForcePricing) {
  const auto trace = dataset_trace(300);
  const auto r = platform::replay_trace(trace, 8, 4, oracle_, time_us_);
  double expect_s = 0.0;
  for (const auto& call : trace) {
    const bench::Scenario s{call.collective, 8, 4, call.msg_bytes};
    expect_s += ds_.best_time_us(s) * 1e-6;
  }
  EXPECT_NEAR(r.total_s, expect_s, 1e-9 * expect_s);
}

TEST_F(ReplayTest, OracleNeverLosesToAnySelector) {
  const auto trace = dataset_trace(1000);
  const core::Selector worst = [this](const bench::Scenario& s) {
    coll::Algorithm w = coll::algorithms_for(s.collective).front();
    double wt = 0.0;
    for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
      if (ds_.time_us(s, a) > wt) {
        wt = ds_.time_us(s, a);
        w = a;
      }
    }
    return w;
  };
  const double speedup = platform::replay_speedup(trace, 8, 4, oracle_, worst, time_us_);
  EXPECT_GE(speedup, 1.0);
  EXPECT_THROW(platform::replay_trace({}, 8, 4, oracle_, time_us_), InvalidArgument);
}

}  // namespace

// Unit tests for the util library: RNG, statistics, CSV, units, tables.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace acclaim::util;
namespace util = acclaim::util;

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform(3.0, 5.0);
    EXPECT_GE(v, 3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(3, 2), acclaim::InvalidArgument);
}

TEST(Rng, NormalHasRoughMoments) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 20000; ++i) {
    s.add(rng.normal(10.0, 2.0));
  }
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, LognormalMedianRoughlyCorrect) {
  Rng rng(12);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(rng.lognormal_median(3.0, 0.5));
  }
  EXPECT_NEAR(median(xs), 3.0, 0.1);
}

TEST(Rng, SplitStreamsIndependent) {
  Rng a(5);
  Rng b = a.split();
  // The split stream should not replay the parent stream.
  Rng a2(5);
  a2.split();
  EXPECT_NE(b.next_u64(), a2.next_u64() == b.next_u64() ? ~b.next_u64() : a2.next_u64());
  SUCCEED();
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  const auto sample = rng.sample_without_replacement(100, 30);
  std::set<std::size_t> s(sample.begin(), sample.end());
  EXPECT_EQ(s.size(), 30u);
  for (std::size_t v : s) {
    EXPECT_LT(v, 100u);
  }
  EXPECT_THROW(rng.sample_without_replacement(5, 6), acclaim::InvalidArgument);
}

TEST(Rng, PowerOfTwoHelpers) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_EQ(floor_power_of_two(1), 1u);
  EXPECT_EQ(floor_power_of_two(63), 32u);
  EXPECT_EQ(floor_power_of_two(64), 64u);
  EXPECT_EQ(ceil_power_of_two(1), 1u);
  EXPECT_EQ(ceil_power_of_two(33), 64u);
  EXPECT_EQ(ceil_power_of_two(64), 64u);
}

TEST(Stats, RunningStatMatchesBatch) {
  Rng rng(2);
  RunningStat s;
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 20);
    s.add(x);
    xs.push_back(x);
  }
  EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(s.variance(), variance(xs), 1e-7);
  EXPECT_EQ(s.count(), 500u);
}

TEST(Stats, EdgeCases) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(variance({1.0}), 0.0);
  RunningStat s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(4.0);
  EXPECT_EQ(s.min(), 4.0);
  EXPECT_EQ(s.max(), 4.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_THROW(percentile({}, 50), acclaim::InvalidArgument);
}

TEST(Stats, GeomeanAndPearson) {
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW(geomean({1.0, -1.0}), acclaim::InvalidArgument);
  const std::vector<double> a = {1, 2, 3, 4, 5};
  const std::vector<double> b = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
  const std::vector<double> c = {5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(a, c), -1.0, 1e-12);
  EXPECT_EQ(pearson(a, {1, 1, 1, 1, 1}), 0.0);
}

TEST(Csv, WriteReadRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "acclaim_csv_test.csv";
  {
    CsvWriter w(path);
    w.header({"name", "value", "note"});
    w.row({"a", "1.5", "plain"});
    w.row({"b,c", "2", "has, comma"});
    w.row({"q\"q", "3", "line\nbreak"});
  }
  const CsvTable t = read_csv(path);
  ASSERT_EQ(t.columns.size(), 3u);
  EXPECT_EQ(t.column_index("value"), 1u);
  EXPECT_THROW(t.column_index("missing"), acclaim::NotFoundError);
  ASSERT_EQ(t.rows.size(), 3u);
  EXPECT_EQ(t.rows[1][0], "b,c");
  EXPECT_EQ(t.rows[2][0], "q\"q");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthEnforced) {
  const std::string path = std::filesystem::temp_directory_path() / "acclaim_csv_test2.csv";
  CsvWriter w(path);
  w.header({"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), acclaim::InvalidArgument);
  std::remove(path.c_str());
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(64), "64");
  EXPECT_EQ(format_bytes(1024), "1K");
  EXPECT_EQ(format_bytes(1536), "1536");
  EXPECT_EQ(format_bytes(1 << 20), "1M");
  EXPECT_EQ(format_bytes(1ULL << 30), "1G");
}

TEST(Units, ParseBytes) {
  EXPECT_EQ(parse_bytes("64"), 64u);
  EXPECT_EQ(parse_bytes("4K"), 4096u);
  EXPECT_EQ(parse_bytes("1M"), 1048576u);
  EXPECT_EQ(parse_bytes("2KB"), 2048u);
  EXPECT_THROW(parse_bytes("abc"), acclaim::ParseError);
  EXPECT_THROW(parse_bytes(""), acclaim::ParseError);
  // Round trip over the P2 grid.
  for (std::uint64_t b = 1; b <= (1ULL << 20); b <<= 1) {
    EXPECT_EQ(parse_bytes(format_bytes(b)), b);
  }
}

// Regression: "1BB" used to parse as 1 byte (the trailing-'B' branch did not
// check what it followed), and overflowing labels silently wrapped around to
// arbitrary small sizes.
TEST(Units, ParseBytesRejectsMalformedSuffixes) {
  EXPECT_THROW(parse_bytes("1BB"), acclaim::ParseError);
  EXPECT_THROW(parse_bytes("1KBB"), acclaim::ParseError);
  EXPECT_THROW(parse_bytes("4KX"), acclaim::ParseError);
  EXPECT_THROW(parse_bytes("16E"), acclaim::ParseError);
  EXPECT_THROW(parse_bytes("2K2"), acclaim::ParseError);
  // Still-valid forms: bare bytes, scale suffix, scale + trailing B.
  EXPECT_EQ(parse_bytes("10B"), 10u);
  EXPECT_EQ(parse_bytes("4KB"), 4096u);
  EXPECT_EQ(parse_bytes("2gb"), 2ULL << 30);
}

TEST(Units, ParseBytesDetectsOverflow) {
  // Accumulate overflow: more digits than uint64 holds.
  EXPECT_THROW(parse_bytes("99999999999999999999"), acclaim::ParseError);
  // Multiply overflow: the digits fit but the scaled value does not.
  EXPECT_THROW(parse_bytes("99999999999999999G"), acclaim::ParseError);
  // The largest representable scaled values still parse.
  EXPECT_EQ(parse_bytes("17179869183G"), 17179869183ULL << 30);
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(5e-6), "5.0 us");
  EXPECT_EQ(format_seconds(0.25), "250.0 ms");
  EXPECT_EQ(format_seconds(90.0), "90.0 s");
  EXPECT_EQ(format_seconds(600.0), "10.0 min");
  EXPECT_EQ(format_seconds(7200.0), "2.0 h");
}

TEST(Table, PrintsAlignedColumns) {
  TablePrinter t({"metric", "v1", "v2"});
  t.add_row({"slowdown", "1.03", "1.50"});
  t.add_row_numeric("speedup", {2.25, 1.4}, 2);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("metric"), std::string::npos);
  EXPECT_NE(out.find("2.25"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "few"}), acclaim::InvalidArgument);
}

TEST(Error, RequireThrowsWithMessage) {
  EXPECT_NO_THROW(acclaim::require(true, "ok"));
  try {
    acclaim::require(false, "precondition X");
    FAIL() << "expected throw";
  } catch (const acclaim::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("precondition X"), std::string::npos);
  }
}

/// Captures raw messages via set_log_sink and restores the previous sink
/// and level on destruction, so log tests cannot leak state.
class LogCapture {
 public:
  LogCapture()
      : prev_level_(util::log_level()), prev_sink_(util::set_log_sink(
            [this](util::LogLevel level, const std::string& msg) {
              lines_.emplace_back(level, msg);
            })) {}
  ~LogCapture() {
    util::set_log_sink(prev_sink_);
    util::set_log_level(prev_level_);
  }
  const std::vector<std::pair<util::LogLevel, std::string>>& lines() const { return lines_; }

 private:
  util::LogLevel prev_level_;
  util::LogSink prev_sink_;
  std::vector<std::pair<util::LogLevel, std::string>> lines_;
};

TEST(Log, SinkReceivesRawMessagesAboveThreshold) {
  LogCapture capture;
  util::set_log_level(util::LogLevel::Info);
  util::log_debug() << "filtered out";
  util::log_info() << "kept " << 42;
  util::log_warn() << "also kept";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0].first, util::LogLevel::Info);
  EXPECT_EQ(capture.lines()[0].second, "kept 42");
  EXPECT_EQ(capture.lines()[1].first, util::LogLevel::Warn);
}

TEST(Log, MacrosSkipArgumentEvaluationWhenFiltered) {
  LogCapture capture;
  util::set_log_level(util::LogLevel::Warn);
  int evaluations = 0;
  const auto touch = [&evaluations] { return ++evaluations; };
  AC_LOG_DEBUG() << "never " << touch();
  AC_LOG_INFO() << "never " << touch();
  AC_LOG_ERROR() << "emitted " << touch();
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].second, "emitted 1");
}

TEST(Log, FormatLineIsIso8601WithLevelTag) {
  const std::string line = util::format_log_line(util::LogLevel::Warn, "msg body");
  // 2026-08-06T12:34:56.789Z [WARN] msg body
  ASSERT_GE(line.size(), 24u);
  EXPECT_EQ(line[4], '-');
  EXPECT_EQ(line[7], '-');
  EXPECT_EQ(line[10], 'T');
  EXPECT_EQ(line[13], ':');
  EXPECT_EQ(line[16], ':');
  EXPECT_EQ(line[19], '.');
  EXPECT_EQ(line[23], 'Z');
  EXPECT_NE(line.find("[WARN] msg body"), std::string::npos);
}

TEST(Log, ParseLevelStrictAndLenient) {
  EXPECT_EQ(util::parse_log_level("debug"), util::LogLevel::Debug);
  EXPECT_EQ(util::parse_log_level("WARN"), util::LogLevel::Warn);
  EXPECT_EQ(util::parse_log_level("Error"), util::LogLevel::ErrorLevel);
  EXPECT_THROW(util::parse_log_level("loud"), acclaim::InvalidArgument);
  EXPECT_EQ(util::parse_log_level("loud", util::LogLevel::Info), util::LogLevel::Info);
  EXPECT_EQ(util::parse_log_level("off", util::LogLevel::Info), util::LogLevel::Off);
}

TEST(Log, LevelNamesRoundTrip) {
  for (util::LogLevel level : {util::LogLevel::Debug, util::LogLevel::Info,
                               util::LogLevel::Warn, util::LogLevel::ErrorLevel,
                               util::LogLevel::Off}) {
    EXPECT_EQ(util::parse_log_level(util::log_level_name(level)), level);
  }
}

}  // namespace

// Shared fixtures for the higher-layer tests: a small, fast precollected
// dataset over the tiny test machine, built once per process.
#pragma once

#include <algorithm>

#include "benchdata/dataset.hpp"
#include "core/feature_space.hpp"
#include "simnet/machine.hpp"

namespace acclaim::testing_support {

/// 8-node machine, 4 cores — everything below stays in the milliseconds.
inline simnet::MachineConfig small_machine() {
  simnet::MachineConfig m = simnet::tiny_test_machine();
  m.total_nodes = 16;
  m.nodes_per_rack = 4;
  m.cores_per_node = 8;
  return m;
}

/// P2 grid: nodes {2..16}, ppn {1..8}, msgs {64..64K}.
inline bench::FeatureGrid small_p2_grid() {
  return bench::FeatureGrid::p2(16, 8, 64, 64 * 1024);
}

/// The P2 grid plus one non-P2 message variant per anchor, so acquisition
/// policies can exercise the §IV-B rule against a DatasetEnvironment.
inline bench::FeatureGrid small_full_grid() {
  bench::FeatureGrid g = small_p2_grid();
  util::Rng rng(1234);
  const bench::FeatureGrid np2 = g.with_nonp2_msgs(rng);
  g.msgs.insert(g.msgs.end(), np2.msgs.begin(), np2.msgs.end());
  std::sort(g.msgs.begin(), g.msgs.end());
  g.msgs.erase(std::unique(g.msgs.begin(), g.msgs.end()), g.msgs.end());
  return g;
}

/// Process-lifetime dataset over all four collectives (collected once).
inline const bench::Dataset& small_dataset() {
  static const bench::Dataset ds =
      bench::precollect(small_machine(), small_full_grid(), coll::paper_collectives(), 7);
  return ds;
}

inline core::FeatureSpace small_space() {
  return core::FeatureSpace::from_grid(small_p2_grid());
}

}  // namespace acclaim::testing_support

// Quickstart: the ACCLAiM loop end to end on a small simulated cluster.
//
//   1. describe a machine and collect a benchmark dataset,
//   2. train a collective-selection model with jackknife active learning,
//   3. generate the MPICH-style selection rule file,
//   4. select algorithms at "runtime" and compare with the static default.
//
// Runs in a few seconds. See autotune_job.cpp for the production-flow
// example and compare_baselines.cpp for the prior-art comparison.
#include <iostream>

#include "benchdata/dataset.hpp"
#include "core/acquisition.hpp"
#include "core/active_learner.hpp"
#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "core/rulegen.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace acclaim;

int main() {
  // ---- 1. a machine and a precollected dataset ---------------------------
  simnet::MachineConfig machine = simnet::bebop_like();
  machine.total_nodes = 16;  // keep the quickstart quick
  const bench::FeatureGrid grid = bench::FeatureGrid::p2(16, 8, 64, 256 * 1024);
  std::cout << "collecting " << grid.points(coll::Collective::Bcast).size()
            << " bcast benchmark points on " << machine.name << "...\n";
  const bench::Dataset dataset =
      bench::precollect(machine, grid, {coll::Collective::Bcast}, /*seed=*/42);

  // ---- 2. active learning with jackknife point selection -----------------
  const core::FeatureSpace space = core::FeatureSpace::from_grid(grid);
  core::DatasetEnvironment env(dataset);
  core::AcclaimAcquisition policy;  // variance-guided + every-5th non-P2
  core::ActiveLearnerConfig config;
  config.forest.n_trees = 50;
  core::ActiveLearner learner(coll::Collective::Bcast, space, env, policy, config);
  const core::TrainingResult result = learner.run();
  std::cout << "trained on " << result.collected.size() << " points ("
            << util::format_seconds(result.train_time_s) << " of simulated collection), "
            << (result.converged ? "variance-converged" : "stopped at cap") << "\n";

  // ---- 3. the selection rule file ----------------------------------------
  const core::RuleTable rules = core::RuleGenerator().generate(result.model, space);
  const util::Json config_doc = core::rules_to_json({rules});
  config_doc.dump_file("quickstart_tuning.json");
  std::cout << "wrote quickstart_tuning.json ("
            << core::rules_from_json(config_doc).size() << " collective(s))\n\n";

  // ---- 4. runtime selection vs the static default ------------------------
  const core::SelectionEngine engine = core::SelectionEngine::from_json(config_doc);
  const core::Evaluator ev(dataset);
  const auto test = space.scenarios(coll::Collective::Bcast);
  util::TablePrinter table({"selector", "average slowdown vs optimal"});
  table.add_row_numeric("MPICH default heuristic",
                        {ev.average_slowdown(test, core::mpich_default_selection)}, 3);
  table.add_row_numeric(
      "ACCLAiM rules",
      {ev.average_slowdown(test,
                           [&](const bench::Scenario& s) { return engine.select(s); })},
      3);
  table.print(std::cout);

  std::cout << "\nexample selections:\n";
  for (std::uint64_t msg : {64ull, 4096ull, 262144ull}) {
    const bench::Scenario s{coll::Collective::Bcast, 16, 8, msg};
    std::cout << "  bcast " << util::format_bytes(msg) << " on 16x8 ranks -> "
              << coll::algorithm_info(engine.select(s)).name << "\n";
  }
  return 0;
}

// The production flow of Fig. 1(b): submit a job through ACCLAiM.
//
// A user job names the collectives its application predominantly uses; the
// pipeline allocates the job on the (busy) machine, trains per-collective
// models with parallel data collection, writes the MPICH selection JSON, and
// the application then runs with tuned selections. The example finishes with
// the economics: application speedup vs the default heuristic and the
// break-even runtime that amortizes the training cost.
//
// Usage: autotune_job [nnodes] [ppn] [collective ...]
//        defaults: 32 nodes, 16 ppn, allreduce bcast
#include <iostream>
#include <string>
#include <vector>

#include "core/heuristic.hpp"
#include "core/pipeline.hpp"
#include "platform/app_model.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace acclaim;

int main(int argc, char** argv) {
  core::JobSpec spec;
  spec.nnodes = argc > 1 ? std::stoi(argv[1]) : 32;
  spec.ppn = argc > 2 ? std::stoi(argv[2]) : 16;
  for (int i = 3; i < argc; ++i) {
    spec.collectives.push_back(coll::parse_collective(argv[i]));
  }
  if (spec.collectives.empty()) {
    spec.collectives = {coll::Collective::Bcast, coll::Collective::Allreduce};
  }
  spec.max_msg = 1 << 20;
  spec.job_seed = 2026;

  std::cout << "job: " << spec.nnodes << " nodes x " << spec.ppn << " ppn on a "
            << simnet::theta_like().name << " machine; tuning";
  for (coll::Collective c : spec.collectives) {
    std::cout << " " << coll::collective_name(c);
  }
  std::cout << "\n\n== training (runs before the application, inside the allocation) ==\n";

  core::ActiveLearnerConfig learner;
  learner.forest.n_trees = 50;
  learner.max_points = 250;
  const core::AcclaimPipeline pipeline(simnet::theta_like(), learner);
  const core::PipelineResult result = pipeline.run(spec);

  util::TablePrinter training({"collective", "points", "iterations", "time", "max parallel"});
  for (const auto& t : result.training) {
    training.add_row({coll::collective_name(t.collective), std::to_string(t.points),
                      std::to_string(t.iterations), util::format_seconds(t.train_time_s),
                      std::to_string(t.max_batch)});
  }
  training.print(std::cout);
  result.config.dump_file("acclaim_tuning.json");
  std::cout << "total training: " << util::format_seconds(result.total_training_s)
            << " (simulated collection time); wrote acclaim_tuning.json\n";

  std::cout << "\n== application execution (tuned vs default selections) ==\n";
  const core::SelectionEngine engine = result.engine();
  // Ground-truth latencies for this job come from its own live environment.
  const simnet::Topology& topo = pipeline.topology();
  core::LiveEnvironment env(topo, result.allocation, result.job_seed);
  const platform::TimeSource time_us = [&](const bench::Scenario& s, coll::Algorithm a) {
    return env.measure(bench::BenchmarkPoint{s, a}).mean_us;
  };
  const core::Selector tuned = [&](const bench::Scenario& s) { return engine.select(s); };

  const auto profile = platform::make_synthetic_app(
      "synthetic-solver", spec.collectives.front(), spec.nnodes, spec.ppn,
      /*collective_fraction=*/0.4, time_us, core::mpich_default_selection);
  const platform::ApplicationModel app(profile);
  const double speedup = app.speedup(tuned, core::mpich_default_selection, time_us);
  std::cout << "application spends "
            << util::fixed(app.collective_fraction(core::mpich_default_selection, time_us) * 100,
                           0)
            << "% of its time in collectives\n"
            << "speedup with tuned selections: " << util::fixed(speedup, 4) << "x\n";
  if (speedup > 1.0) {
    std::cout << "break-even application runtime: "
              << util::format_seconds(
                     platform::breakeven_runtime_s(result.total_training_s, speedup))
              << " (jobs longer than this come out ahead)\n";
  } else {
    std::cout << "defaults were already optimal for this mix; no training payback needed\n";
  }
  return 0;
}

// Side-by-side comparison of the three autotuner generations on one
// collective: Hunold et al. (random sampling, model per algorithm), FACT
// (surrogate-driven active learning), and ACCLAiM (jackknife variance on the
// primary model + non-P2 sampling + variance convergence).
//
// Usage: compare_baselines [collective] [budget-points]   (default: bcast 150)
#include <iostream>
#include <string>

#include "benchdata/dataset.hpp"
#include "core/acquisition.hpp"
#include "core/active_learner.hpp"
#include "core/baselines.hpp"
#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace acclaim;

int main(int argc, char** argv) {
  const coll::Collective c =
      argc > 1 ? coll::parse_collective(argv[1]) : coll::Collective::Bcast;
  const int budget = argc > 2 ? std::stoi(argv[2]) : 150;

  // A small bebop-like dataset (collected fresh; a few seconds).
  simnet::MachineConfig machine = simnet::bebop_like();
  machine.total_nodes = 32;
  bench::FeatureGrid grid = bench::FeatureGrid::p2(32, 16, 64, 1 << 20);
  util::Rng grng(5);
  const bench::FeatureGrid np2 = grid.with_nonp2_msgs(grng);
  grid.msgs.insert(grid.msgs.end(), np2.msgs.begin(), np2.msgs.end());
  std::sort(grid.msgs.begin(), grid.msgs.end());
  std::cout << "collecting dataset for " << coll::collective_name(c) << " ("
            << grid.points(c).size() << " points)...\n";
  const bench::Dataset ds = bench::precollect(machine, grid, {c}, 11);
  const core::FeatureSpace space =
      core::FeatureSpace::from_grid(bench::FeatureGrid::p2(32, 16, 64, 1 << 20));
  const core::Evaluator ev(ds);
  const auto test = space.scenarios(c);

  ml::ForestParams forest = core::default_forest_params();
  forest.n_trees = 50;

  util::TablePrinter table(
      {"autotuner", "training points", "collection time", "avg slowdown", "optimal rate"});

  // MPICH static default (no training at all).
  table.add_row({"MPICH default heuristic", "0", "0 s",
                 util::fixed(ev.average_slowdown(test, core::mpich_default_selection), 3),
                 util::fixed(ev.optimal_rate(test, core::mpich_default_selection) * 100, 1) +
                     "%"});

  // Hunold: random sample of the same budget.
  {
    core::HunoldAutotuner tuner(c, forest);
    const double fraction =
        static_cast<double>(budget) / static_cast<double>(ds.points(c).size());
    const double cost = tuner.fit(ds, std::min(1.0, fraction), 3);
    const auto select = [&](const bench::Scenario& s) { return tuner.select(s); };
    table.add_row({"Hunold et al. (random)", std::to_string(budget),
                   util::format_seconds(cost), util::fixed(ev.average_slowdown(test, select), 3),
                   util::fixed(ev.optimal_rate(test, select) * 100, 1) + "%"});
  }

  // FACT: surrogate-driven acquisition to the same budget.
  {
    core::DatasetEnvironment env(ds);
    core::SurrogateAcquisitionConfig scfg;
    scfg.surrogate = forest;
    core::SurrogateAcquisition policy(c, 3, scfg);
    core::ActiveLearnerConfig cfg;
    cfg.forest = forest;
    cfg.max_points = budget;
    cfg.patience = 1 << 20;
    core::ActiveLearner learner(c, space, env, policy, cfg);
    const auto result = learner.run();
    const double slow = ev.average_slowdown(test, result.model);
    table.add_row({"FACT (surrogate AL)", std::to_string(result.collected.size()),
                   util::format_seconds(result.train_time_s), util::fixed(slow, 3),
                   util::fixed(ev.optimal_rate(test,
                                               [&](const bench::Scenario& s) {
                                                 return result.model.select(s);
                                               }) *
                                   100,
                               1) +
                       "%"});
  }

  // ACCLAiM: jackknife on the primary model, variance convergence (it may
  // stop before the budget — that is the point).
  {
    core::DatasetEnvironment env(ds);
    core::AcclaimAcquisition policy;
    core::ActiveLearnerConfig cfg;
    cfg.forest = forest;
    cfg.max_points = budget;
    core::ActiveLearner learner(c, space, env, policy, cfg);
    const auto result = learner.run();
    const double slow = ev.average_slowdown(test, result.model);
    table.add_row({std::string("ACCLAiM") + (result.converged ? " (converged)" : ""),
                   std::to_string(result.collected.size()),
                   util::format_seconds(result.train_time_s), util::fixed(slow, 3),
                   util::fixed(ev.optimal_rate(test,
                                               [&](const bench::Scenario& s) {
                                                 return result.model.select(s);
                                               }) *
                                   100,
                               1) +
                       "%"});
  }

  table.print(std::cout);
  std::cout << "\n(1.000 = always picks the measured-optimal algorithm)\n";
  return 0;
}

// Trace analysis: profile an application's collective calls (the Fig. 4
// methodology) and show what that implies for tuning — which scenarios the
// application actually hits, how many are non-power-of-two, and how the
// tuned rule file resolves them.
//
// Usage: trace_analysis [app-name] [scale-nodes]   (default: LAMMPS 128)
#include <iostream>
#include <map>
#include <string>

#include "core/heuristic.hpp"
#include "core/pipeline.hpp"
#include "platform/app_model.hpp"
#include "platform/trace_replay.hpp"
#include "traces/traces.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace acclaim;

int main(int argc, char** argv) {
  const std::string app_name = argc > 1 ? argv[1] : "LAMMPS";
  const int scale = argc > 2 ? std::stoi(argv[2]) : 128;

  const traces::AppTraceSpec* spec = nullptr;
  static const auto apps = traces::llnl_like_apps();
  for (const auto& app : apps) {
    if (app.name == app_name) {
      spec = &app;
    }
  }
  if (spec == nullptr) {
    std::cerr << "unknown application '" << app_name << "'; available:";
    for (const auto& app : apps) {
      std::cerr << " " << app.name;
    }
    std::cerr << "\n";
    return 1;
  }

  util::Rng rng(99);
  const auto trace = traces::generate_trace(*spec, scale, 50000, rng);
  const auto profile = traces::profile_trace(trace);
  std::cout << app_name << " @ " << scale << " nodes: " << profile.total_calls
            << " collective calls, " << util::fixed(profile.pct_nonp2, 1)
            << "% non-power-of-two message sizes\n\n";

  util::TablePrinter mix({"collective", "calls", "share"});
  for (const auto& [c, n] : profile.calls_per_collective) {
    mix.add_row({coll::collective_name(c), std::to_string(n),
                 util::fixed(100.0 * static_cast<double>(n) /
                                 static_cast<double>(profile.total_calls),
                             1) +
                     "%"});
  }
  mix.print(std::cout);

  // Train rules for the collectives the trace actually uses (a 16-node job
  // keeps the example fast), then resolve the trace's hottest sizes.
  std::cout << "\ntraining selection rules for the traced collectives...\n";
  core::JobSpec job;
  for (const auto& [c, n] : profile.calls_per_collective) {
    job.collectives.push_back(c);
  }
  job.nnodes = 16;
  job.ppn = 8;
  job.max_msg = 1 << 20;
  job.job_seed = 7;
  core::ActiveLearnerConfig learner;
  learner.forest.n_trees = 50;
  learner.max_points = 150;
  const core::AcclaimPipeline pipeline(simnet::theta_like(), learner);
  const core::PipelineResult result = pipeline.run(job);
  const core::SelectionEngine engine = result.engine();

  // Histogram the trace by (collective, size octave) and show selections.
  std::map<std::pair<int, int>, std::size_t> hist;
  for (const auto& call : trace) {
    int octave = 0;
    while ((1ull << (octave + 1)) <= call.msg_bytes) {
      ++octave;
    }
    ++hist[{static_cast<int>(call.collective), octave}];
  }
  util::TablePrinter sel({"collective", "size bucket", "calls", "tuned selection",
                          "default selection"});
  for (const auto& [key, count] : hist) {
    if (count < profile.total_calls / 50) {
      continue;  // only the hot buckets
    }
    const auto c = static_cast<coll::Collective>(key.first);
    const std::uint64_t msg = 1ull << key.second;
    const bench::Scenario s{c, job.nnodes, job.ppn, msg};
    sel.add_row({coll::collective_name(c),
                 util::format_bytes(msg) + "-" + util::format_bytes(msg * 2),
                 std::to_string(count), coll::algorithm_info(engine.select(s)).name,
                 coll::algorithm_info(core::mpich_default_selection(s)).name});
  }
  std::cout << "\n";
  sel.print(std::cout);

  // Replay the whole trace under both selectors: what the tuned rules are
  // worth for *this* application's call stream on this job's network.
  const simnet::Topology& topo = pipeline.topology();
  core::LiveEnvironment env(topo, result.allocation, result.job_seed);
  const platform::TimeSource time_us = [&](const bench::Scenario& s, coll::Algorithm a) {
    return env.measure(bench::BenchmarkPoint{s, a}).mean_us;
  };
  const auto tuned_r = platform::replay_trace(
      trace, job.nnodes, job.ppn,
      [&](const bench::Scenario& s) { return engine.select(s); }, time_us);
  const auto default_r = platform::replay_trace(trace, job.nnodes, job.ppn,
                                                core::mpich_default_selection, time_us);
  std::cout << "\ntrace replay (" << tuned_r.calls << " calls, " << tuned_r.distinct_scenarios
            << " distinct cells):\n  default selections: "
            << util::format_seconds(default_r.total_s)
            << "\n  tuned selections:   " << util::format_seconds(tuned_r.total_s)
            << "  (" << util::fixed(default_r.total_s / tuned_r.total_s, 3) << "x)\n"
            << "(total training cost for this job: "
            << util::format_seconds(result.total_training_s) << ", simulated)\n";
  return 0;
}

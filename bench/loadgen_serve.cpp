// loadgen_serve — acclaimd serving-path load generator.
//
// Replays millions of algorithm-selection queries against a ServeCore
// populated with one trained model per collective, mixing two request
// distributions:
//   - a P2 feature-grid sweep (the finite scenario set rule tables cover),
//     which exercises the hot cache-hit path, and
//   - trace-drawn message sizes (traces::generate_trace, ~16% non-P2),
//     which keep producing fresh cache keys and exercise the miss path
//     through the batched forest kernel.
// Requests alternate between single-query select() and batched
// select_batch() so both telemetry histograms (serve.query_us,
// serve.batch_us) fill, then p50/p95/p99 are read back from the log2
// buckets and written to BENCH_serve.json via --json-out.
//
// The run ends with the differential check the serving design promises:
// every distinct scenario seen (up to a cap) is re-asked through the
// ServeCore — cache hits and recomputed misses alike — and compared against
// CollectiveModel::select on the published model. Any mismatch fails the
// binary (exit 1).
//
// Flags (after the shared BenchEnv set: --threads/--metrics-out/
// --audit-out/--json-out):
//   --queries N        total queries to replay (default 1,200,000)
//   --batch B          scenarios per batch request (default 64)
//   --trace-frac F     fraction of queries drawn from traces (default 0.5)
//   --cache-capacity N decision-cache entries (default 65536)
//   --seed K           RNG seed (default 42)
#include <cmath>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common.hpp"
#include "core/model.hpp"
#include "serve/serve_core.hpp"
#include "telemetry/metrics.hpp"
#include "traces/traces.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace acclaim;

namespace {

/// Synthetic training data: a deterministic analytic cost with per-algorithm
/// coefficients, enough structure that different scenarios select different
/// algorithms. The loadgen measures serving throughput, not model quality,
/// so no simulation runs are needed.
core::CollectiveModel loadgen_model(coll::Collective c) {
  std::vector<core::LabeledPoint> data;
  int alg_index = 0;
  for (coll::Algorithm a : coll::algorithms_for(c)) {
    ++alg_index;
    for (int nodes : {2, 4, 8, 16, 32, 64}) {
      for (int ppn : {2, 8, 32}) {
        for (std::uint64_t msg : {64ull, 1024ull, 16384ull, 262144ull}) {
          const double ranks = static_cast<double>(nodes) * ppn;
          const double alpha = 4.0 + 1.3 * alg_index;
          const double beta = 0.004 / alg_index;
          const double t = alpha * std::log2(ranks) + beta * static_cast<double>(msg) +
                           0.1 * alg_index * std::log2(static_cast<double>(msg));
          data.push_back({bench::BenchmarkPoint{bench::Scenario{c, nodes, ppn, msg}, a}, t});
        }
      }
    }
  }
  ml::ForestParams params = core::default_forest_params();
  params.n_trees = 16;
  core::CollectiveModel model(c, params);
  model.fit(data, 7);
  return model;
}

std::uint64_t flag_u64(int argc, char** argv, const char* flag, std::uint64_t def) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(argv[i + 1], &end, 10);
      if (end == argv[i + 1] || *end != '\0') {
        throw acclaim::InvalidArgument(std::string(flag) + " expects an integer, got '" +
                                       argv[i + 1] + "'");
      }
      return v;
    }
  }
  return def;
}

double flag_double(int argc, char** argv, const char* flag, double def) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      char* end = nullptr;
      const double v = std::strtod(argv[i + 1], &end);
      if (end == argv[i + 1] || *end != '\0') {
        throw acclaim::InvalidArgument(std::string(flag) + " expects a number, got '" +
                                       argv[i + 1] + "'");
      }
      return v;
    }
  }
  return def;
}

using ScenarioKey = std::tuple<int, int, int, std::uint64_t>;

ScenarioKey key_of(const bench::Scenario& s) {
  return {static_cast<int>(s.collective), s.nnodes, s.ppn, s.msg_bytes};
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchEnv env(argc, argv);
  env.set_figure("serve");
  const std::uint64_t total_queries = flag_u64(argc, argv, "--queries", 1'200'000);
  const std::size_t batch = static_cast<std::size_t>(flag_u64(argc, argv, "--batch", 64));
  const double trace_frac = flag_double(argc, argv, "--trace-frac", 0.5);
  const std::size_t cache_capacity =
      static_cast<std::size_t>(flag_u64(argc, argv, "--cache-capacity", 1 << 16));
  const std::uint64_t seed = flag_u64(argc, argv, "--seed", 42);

  benchharness::banner("loadgen_serve",
                       "acclaimd serving path sustains millions of queries; cache hits and "
                       "misses both match direct model selection bit for bit");

  serve::ServeConfig cfg;
  cfg.cache_capacity = cache_capacity;
  serve::ServeCore core(cfg);
  std::map<coll::Collective, core::CollectiveModel> models;
  const std::vector<coll::Collective>& collectives = coll::all_collectives();
  for (coll::Collective c : collectives) {
    core::CollectiveModel model = loadgen_model(c);
    models.emplace(c, model);  // cheap: copies share the immutable forest
    core.publish(serve::ModelKey{c, 0, "default"}, std::move(model));
  }
  std::cout << "published " << models.size() << " models (wildcard scale)\n";

  // Trace-drawn message pool, one slice per LLNL-like app.
  util::Rng rng(seed);
  std::vector<traces::CollectiveCall> trace_pool;
  for (const traces::AppTraceSpec& spec : traces::llnl_like_apps()) {
    const auto calls = traces::generate_trace(spec, 64, 4096, rng);
    trace_pool.insert(trace_pool.end(), calls.begin(), calls.end());
  }

  auto draw_scenario = [&]() {
    bench::Scenario s;
    s.nnodes = 1 << rng.uniform_int(1, 6);
    s.ppn = 1 << rng.uniform_int(0, 5);
    if (rng.chance(trace_frac)) {
      const traces::CollectiveCall& call = trace_pool[rng.index(trace_pool.size())];
      s.collective = call.collective;
      s.msg_bytes = call.msg_bytes;
    } else {
      s.collective = collectives[rng.index(collectives.size())];
      s.msg_bytes = std::uint64_t{1} << rng.uniform_int(3, 20);
    }
    return s;
  };

  // Distinct scenarios seen, for the differential pass afterwards.
  constexpr std::size_t kDistinctCap = 50'000;
  std::set<ScenarioKey> seen;
  std::vector<bench::Scenario> distinct;

  std::uint64_t issued = 0;
  std::uint64_t singles = 0;
  std::uint64_t batches = 0;
  std::uint64_t iteration = 0;
  std::vector<bench::Scenario> request;
  while (issued < total_queries) {
    request.clear();
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(batch, total_queries - issued));
    for (std::size_t i = 0; i < want; ++i) {
      request.push_back(draw_scenario());
      if (seen.size() < kDistinctCap && seen.insert(key_of(request.back())).second) {
        distinct.push_back(request.back());
      }
    }
    // Every 8th iteration goes through the scalar path so serve.query_us
    // fills alongside serve.batch_us.
    if (iteration % 8 == 0) {
      for (const bench::Scenario& s : request) {
        core.select(s);
      }
      singles += request.size();
    } else {
      core.select_batch(request);
      ++batches;
    }
    issued += want;
    ++iteration;
    if (issued % 200'000 < batch && issued >= 200'000) {
      const auto st = core.cache_stats();
      std::cout << "  " << issued << " queries, hit rate "
                << util::fixed(100.0 * static_cast<double>(st.hits) /
                                   static_cast<double>(st.hits + st.misses),
                               1)
                << "%\n";
    }
  }

  // Differential check: serving (hit or recomputed miss) must equal direct
  // model selection for every distinct scenario observed.
  std::uint64_t mismatches = 0;
  for (const bench::Scenario& s : distinct) {
    const serve::Decision d = core.select(s);
    const core::CollectiveModel& model = models.at(s.collective);
    if (d.algorithm != model.select(s)) {
      ++mismatches;
      if (mismatches <= 5) {
        std::cerr << "MISMATCH at " << s.to_string() << "\n";
      }
    }
  }

  const auto st = core.cache_stats();
  telemetry::Histogram& query_us =
      telemetry::metrics().histogram("serve.query_us", {1e-3, 48});
  telemetry::Histogram& batch_us =
      telemetry::metrics().histogram("serve.batch_us", {1e-2, 48});

  util::TablePrinter table({"path", "requests", "p50", "p95", "p99"});
  table.add_row({"single query (us)", std::to_string(query_us.count()),
                 util::fixed(query_us.percentile(0.50), 2),
                 util::fixed(query_us.percentile(0.95), 2),
                 util::fixed(query_us.percentile(0.99), 2)});
  table.add_row({"batch of " + std::to_string(batch) + " (us)", std::to_string(batch_us.count()),
                 util::fixed(batch_us.percentile(0.50), 2),
                 util::fixed(batch_us.percentile(0.95), 2),
                 util::fixed(batch_us.percentile(0.99), 2)});
  table.print(std::cout);
  std::cout << "queries " << issued << " (" << singles << " single, " << batches
            << " batches), cache hits " << st.hits << ", misses " << st.misses
            << ", evictions " << st.evictions << ", distinct scenarios checked "
            << distinct.size() << ", mismatches " << mismatches << "\n";

  util::Json row = util::Json::object();
  row["queries"] = issued;
  row["batch"] = batch;
  row["trace_frac"] = trace_frac;
  row["cache_capacity"] = cache_capacity;
  row["cache_hits"] = st.hits;
  row["cache_misses"] = st.misses;
  row["cache_evictions"] = st.evictions;
  row["distinct_checked"] = distinct.size();
  row["mismatches"] = mismatches;
  row["query_p50_us"] = query_us.percentile(0.50);
  row["query_p95_us"] = query_us.percentile(0.95);
  row["query_p99_us"] = query_us.percentile(0.99);
  row["batch_p50_us"] = batch_us.percentile(0.50);
  row["batch_p95_us"] = batch_us.percentile(0.95);
  row["batch_p99_us"] = batch_us.percentile(0.99);
  env.add_row(std::move(row));

  if (mismatches != 0) {
    std::cerr << "differential check FAILED: " << mismatches << " mismatches\n";
    return 1;
  }
  std::cout << "differential check passed: serving == direct selection on all "
            << distinct.size() << " distinct scenarios\n";
  return 0;
}

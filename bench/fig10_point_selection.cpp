// Fig. 10 — Training data collection time: ACCLAiM's jackknife point
// selection vs FACT's surrogate-driven selection, per collective. Paper:
// ACCLAiM converges in up to 2.3x less time (allgather); FACT is slightly
// faster for allreduce and bcast; both converge almost instantly for reduce;
// cumulatively ACCLAiM is 2.25x faster.
//
// --ablation additionally runs random acquisition and the paper-literal
// argmax variant on the same primary model, isolating the value of the
// variance guidance and of the weighted-sampling adaptation (DESIGN.md §5).
#include <cstring>
#include <iostream>
#include <memory>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

namespace {

struct MethodResult {
  std::vector<benchharness::SweepRow> curve;
  double converge_s = -1.0;
};

MethodResult run_one(coll::Collective c, core::AcquisitionPolicy& policy,
                     const std::vector<bench::Scenario>& test, const core::Evaluator& ev,
                     std::uint64_t seed) {
  core::DatasetEnvironment env(bebop_dataset());
  core::TraceConfig tcfg;
  tcfg.forest = benchharness::bench_forest();
  tcfg.refit_every = 5;
  tcfg.seed = seed;
  tcfg.max_points = 600;
  const core::AcquisitionTrace trace =
      core::trace_acquisition(c, benchharness::bebop_space(), env, policy, tcfg);
  // Evaluate prefixes every ~2% of the trace.
  std::vector<double> fractions;
  for (double f = 0.02; f <= 1.0; f += 0.02) {
    fractions.push_back(f);
  }
  MethodResult r;
  r.curve = benchharness::sweep_trace(trace, fractions, test, ev, seed);
  r.converge_s = benchharness::converge_time_s(r.curve);
  return r;
}

/// Mean convergence time over a couple of seeds (single traces are noisy);
/// non-converging seeds count as the full trace cost.
template <typename PolicyFactory>
MethodResult run_method(coll::Collective c, PolicyFactory make_policy,
                        const std::vector<bench::Scenario>& test, const core::Evaluator& ev) {
  constexpr std::uint64_t kSeeds[] = {5, 11};
  MethodResult mean;
  int converged = 0;
  for (std::uint64_t seed : kSeeds) {
    auto policy = make_policy(seed);
    const MethodResult r = run_one(c, *policy, test, ev, seed);
    mean.curve = r.curve;  // keep the last curve for the CSV
    if (r.converge_s > 0) {
      mean.converge_s = (mean.converge_s < 0 ? 0 : mean.converge_s) + r.converge_s;
      ++converged;
    } else if (!r.curve.empty()) {
      mean.converge_s =
          (mean.converge_s < 0 ? 0 : mean.converge_s) + r.curve.back().cost_s;
    }
  }
  if (converged == 0) {
    mean.converge_s = -1.0;
  } else {
    mean.converge_s /= static_cast<double>(std::size(kSeeds));
  }
  return mean;
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  bench_env.set_figure("fig10");
  const bool ablation = argc > 1 && std::strcmp(argv[1], "--ablation") == 0;
  benchharness::banner("Fig. 10: ACCLAiM vs FACT training point selection",
                       "Expectation: ACCLAiM converges faster cumulatively (~2.25x in the paper),"
                       " with per-collective wins and losses");

  const core::Evaluator ev(bebop_dataset());
  util::TablePrinter table({"collective", "ACCLAiM converge", "FACT converge", "speedup"});
  util::CsvWriter csv(benchharness::results_path(ablation ? "fig10_ablation" : "fig10"));
  if (ablation) {
    csv.header({"collective", "acclaim_s", "fact_s", "random_s", "argmax_s"});
  } else {
    csv.header({"collective", "acclaim_s", "fact_s", "speedup"});
  }

  double acclaim_total = 0.0;
  double fact_total = 0.0;
  for (coll::Collective c : coll::paper_collectives()) {
    const auto test = benchharness::p2_test_set(c);
    const MethodResult acclaim = run_method(
        c, [](std::uint64_t) { return std::make_unique<core::AcclaimAcquisition>(); }, test,
        ev);
    const MethodResult fact = run_method(
        c,
        [&](std::uint64_t seed) {
          core::SurrogateAcquisitionConfig scfg;
          scfg.surrogate = benchharness::bench_forest();
          scfg.refresh_every = 5;
          return std::make_unique<core::SurrogateAcquisition>(c, seed, scfg);
        },
        test, ev);

    bool relaxed = false;
    MethodResult acclaim_eff = acclaim;
    MethodResult fact_eff = fact;
    if (acclaim.converge_s < 0 && fact.converge_s < 0) {
      // Neither method reaches 1.03 on this collective within the traced
      // budget (our simulated allgather surface is harder than Theta's);
      // compare time-to-1.10 instead and say so.
      relaxed = true;
      acclaim_eff.converge_s = benchharness::converge_time_s(acclaim.curve, 1.10);
      fact_eff.converge_s = benchharness::converge_time_s(fact.curve, 1.10);
    }
    const bool both = acclaim_eff.converge_s > 0 && fact_eff.converge_s > 0;
    const double speedup = both ? fact_eff.converge_s / acclaim_eff.converge_s : 0.0;
    auto fmt = [&](double s) {
      return s > 0 ? util::format_seconds(s) + (relaxed ? " (@1.10)" : "")
                   : std::string("no convergence");
    };
    table.add_row({coll::collective_name(c), fmt(acclaim_eff.converge_s),
                   fmt(fact_eff.converge_s), both ? util::fixed(speedup, 2) + "x" : "-"});
    if (acclaim_eff.converge_s > 0) {
      acclaim_total += acclaim_eff.converge_s;
    }
    if (fact_eff.converge_s > 0) {
      fact_total += fact_eff.converge_s;
    }

    if (ablation) {
      const MethodResult random = run_method(
          c, [](std::uint64_t) { return std::make_unique<core::RandomAcquisition>(); }, test,
          ev);
      const MethodResult argmax = run_method(
          c,
          [](std::uint64_t) {
            return std::make_unique<core::AcclaimAcquisition>(
                core::AcclaimAcquisitionConfig{5, core::VariancePick::Argmax});
          },
          test, ev);
      csv.row_numeric({static_cast<double>(static_cast<int>(c)), acclaim.converge_s,
                       fact.converge_s, random.converge_s, argmax.converge_s});
      std::cout << "  [ablation] " << coll::collective_name(c) << ": random "
                << fmt(random.converge_s) << ", paper-literal argmax "
                << fmt(argmax.converge_s) << "\n";
    } else {
      csv.row_numeric({static_cast<double>(static_cast<int>(c)), acclaim.converge_s,
                       fact.converge_s, speedup});
    }
    util::Json row = util::Json::object();
    row["collective"] = coll::collective_name(c);
    row["acclaim_s"] = acclaim_eff.converge_s;
    row["fact_s"] = fact_eff.converge_s;
    row["speedup"] = speedup;
    bench_env.add_row(std::move(row));
  }
  table.print(std::cout);
  if (acclaim_total > 0 && fact_total > 0) {
    std::cout << "\nCumulative: ACCLAiM " << util::format_seconds(acclaim_total) << " vs FACT "
              << util::format_seconds(fact_total) << " -> "
              << util::fixed(fact_total / acclaim_total, 2)
              << "x (paper: 2.25x cumulative)\n";
  }
  return 0;
}

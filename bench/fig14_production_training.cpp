// Fig. 14 — ACCLAiM training time on a leadership-class machine. Paper: on
// Theta, for jobs up to 128 nodes (16 ppn, <= 1 MiB messages), training
// converges in minutes — versus the many hours the previous state of the
// art was estimated to need — achieving production practicality.
//
// The `total` column is the simulated collection clock (the paper's
// quantity); `host wall` is this process's model-construction time, the
// part `--threads N` parallelizes (forest fits + jackknife sweeps).
// Compare `--threads 1` against `--threads 8` for the training-phase
// speedup; the trained models are bitwise-identical either way.
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace acclaim;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner("Fig. 14: ACCLAiM training time up to 128 nodes (Theta-like machine)",
                       "Expectation: minutes per job, growing modestly with job size");

  core::ActiveLearnerConfig learner;
  learner.forest = benchharness::bench_forest();
  learner.max_points = 250;
  const core::AcclaimPipeline pipeline(simnet::theta_like(), learner);

  util::TablePrinter table({"job size (nodes)", "allgather", "allreduce", "bcast", "reduce",
                            "total", "host wall", "max batch"});
  // The CSV keeps only the simulated series: it is committed under
  // results/ and must stay deterministic, which host wall time is not.
  util::CsvWriter csv(benchharness::results_path("fig14"));
  csv.header({"nnodes", "allgather_s", "allreduce_s", "bcast_s", "reduce_s", "total_s"});
  double wall_total_s = 0.0;
  for (int nodes : {16, 32, 64, 128}) {
    core::JobSpec spec;
    spec.collectives = coll::paper_collectives();
    spec.nnodes = nodes;
    spec.ppn = 16;
    spec.min_msg = 8;
    spec.max_msg = 1 << 20;
    spec.job_seed = 40 + static_cast<std::uint64_t>(nodes);
    const auto wall_start = std::chrono::steady_clock::now();
    const core::PipelineResult result = pipeline.run(spec);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    wall_total_s += wall_s;

    std::vector<std::string> row = {std::to_string(nodes)};
    std::vector<double> csv_row = {static_cast<double>(nodes)};
    int max_batch = 1;
    for (const auto& t : result.training) {
      row.push_back(util::format_seconds(t.train_time_s));
      csv_row.push_back(t.train_time_s);
      max_batch = std::max(max_batch, t.max_batch);
    }
    row.push_back(util::format_seconds(result.total_training_s));
    row.push_back(util::format_seconds(wall_s));
    row.push_back(std::to_string(max_batch));
    csv_row.push_back(result.total_training_s);
    table.add_row(row);
    csv.row_numeric(csv_row);
    std::cout << "  " << nodes << "-node job trained ("
              << util::format_seconds(result.total_training_s) << " simulated, "
              << util::format_seconds(wall_s) << " host wall)\n";
  }
  table.print(std::cout);
  std::cout << "\ntraining-phase host wall total: " << util::format_seconds(wall_total_s)
            << " at " << util::global_threads() << " thread(s)\n"
            << "(paper: a matter of minutes at 128 nodes; prior art estimated ~24 hours)\n";
  return 0;
}

// Fig. 11 — The P2/non-P2 training-data split for MPI_Bcast. Paper: an
// all-P2 training set fails on non-P2 message sizes; a 50-50 split fixes
// non-P2 but sacrifices P2 performance; ACCLAiM's 80-20 split (every fifth
// point non-P2) keeps P2 performance while dramatically improving non-P2 —
// the "Goldilocks" balance. Includes the cadence ablation (every 2nd / 5th /
// 10th point) DESIGN.md calls out.
#include <iostream>

#include "common.hpp"
#include "util/csv.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

namespace {

/// Trace with a given non-P2 cadence; returns {P2 slowdown, non-P2 slowdown}
/// at each fraction.
struct SplitCurve {
  std::vector<benchharness::SweepRow> p2;
  std::vector<benchharness::SweepRow> nonp2;
};

SplitCurve run_split(int cadence, const std::vector<double>& fractions) {
  const coll::Collective c = coll::Collective::Bcast;
  const core::Evaluator ev(bebop_dataset());
  core::DatasetEnvironment env(bebop_dataset());
  core::AcclaimAcquisition policy(core::AcclaimAcquisitionConfig{cadence});
  core::TraceConfig tcfg;
  tcfg.forest = benchharness::bench_forest();
  tcfg.refit_every = 10;
  tcfg.seed = 9;
  tcfg.max_points = 500;
  const core::AcquisitionTrace trace =
      core::trace_acquisition(c, benchharness::bebop_space(), env, policy, tcfg);
  SplitCurve curve;
  curve.p2 = benchharness::sweep_trace(trace, fractions, benchharness::p2_test_set(c), ev, 9);
  curve.nonp2 =
      benchharness::sweep_trace(trace, fractions, benchharness::nonp2_msg_test_set(c), ev, 9);
  return curve;
}

double mean_slowdown(const std::vector<benchharness::SweepRow>& rows, std::size_t from) {
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t i = from; i < rows.size(); ++i) {
    s += rows[i].slowdown;
    ++n;
  }
  return n ? s / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner(
      "Fig. 11: P2 vs non-P2 training split for MPI_Bcast",
      "Expectation: 80-20 keeps P2 performance while fixing non-P2; 50-50 hurts P2");

  const std::vector<double> fractions = {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  // cadence 0 = all P2; 2 = 50-50; 5 = 80-20 (ACCLAiM); 10 = 90-10 ablation.
  const std::vector<std::pair<int, std::string>> splits = {
      {0, "all-P2"}, {2, "50-50"}, {5, "80-20 (ACCLAiM)"}, {10, "90-10 (ablation)"}};

  util::TablePrinter table({"split", "P2 slowdown (mean, latter half)",
                            "non-P2 msg slowdown (mean, latter half)"});
  util::CsvWriter csv(benchharness::results_path("fig11"));
  csv.header({"split", "fraction", "p2_slowdown", "nonp2_slowdown"});
  for (const auto& [cadence, name] : splits) {
    const SplitCurve curve = run_split(cadence, fractions);
    for (std::size_t i = 0; i < curve.p2.size(); ++i) {
      csv.row({name, util::format_double(curve.p2[i].fraction),
               util::format_double(curve.p2[i].slowdown),
               util::format_double(curve.nonp2[i].slowdown)});
    }
    const std::size_t half = curve.p2.size() / 2;
    table.add_row_numeric(name,
                          {mean_slowdown(curve.p2, half), mean_slowdown(curve.nonp2, half)});
    std::cout << "  swept " << name << "\n";
  }
  table.print(std::cout);
  std::cout << "\n(paper: all-P2 worst on non-P2; 50-50 best on non-P2 but worse on P2;\n"
               " 80-20 preserves P2 while substantially improving non-P2)\n";
  return 0;
}

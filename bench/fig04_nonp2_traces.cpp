// Fig. 4 — Percentage of message sizes that are non-power-of-two in HPC
// applications. Paper: 15.7% of collective calls across four LLNL
// applications use non-P2 message sizes; per-app percentages are nearly
// identical at small (128-node) and large (1024-node) scale; ParaDis has no
// 1024-node trace data.
#include <iostream>

#include "common.hpp"
#include "traces/traces.hpp"
#include "util/csv.hpp"

using namespace acclaim;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner("Fig. 4: non-power-of-two message sizes in application traces",
                       "Expectation: ~15.7% non-P2 overall, scale-independent per app");

  util::Rng rng(2024);
  constexpr std::size_t kCalls = 60000;
  util::TablePrinter table({"application", "128-node non-P2 %", "1024-node non-P2 %"});
  util::CsvWriter csv(benchharness::results_path("fig04"));
  csv.header({"application", "scale_nodes", "pct_nonp2"});

  std::size_t total = 0;
  std::size_t nonp2 = 0;
  for (const auto& app : traces::llnl_like_apps()) {
    std::vector<std::string> row = {app.name};
    for (int scale : {128, 1024}) {
      if (scale == 1024 && !app.has_large_scale_data) {
        row.push_back("n/a");
        continue;
      }
      const auto trace = traces::generate_trace(app, scale, kCalls, rng);
      const auto p = traces::profile_trace(trace);
      total += p.total_calls;
      nonp2 += p.nonp2_calls;
      row.push_back(util::fixed(p.pct_nonp2, 1));
      csv.row({app.name, std::to_string(scale), util::format_double(p.pct_nonp2)});
    }
    table.add_row(row);
  }
  table.print(std::cout);
  const double aggregate = 100.0 * static_cast<double>(nonp2) / static_cast<double>(total);
  std::cout << "\nAggregate non-P2 fraction: " << util::fixed(aggregate, 1)
            << "% (paper: 15.7%)\n";
  return 0;
}

// Fig. 7 — Variance and average slowdown as a function of training time.
// Paper: cumulative jackknife variance correlates with average slowdown —
// both trend downward together, and spikes co-occur — so variance can serve
// as the convergence criterion without a test set.
#include <iostream>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner("Fig. 7: cumulative variance vs average slowdown over training time",
                       "Expectation: the two series trend downward together (positive correlation)");

  const bench::Dataset& ds = bebop_dataset();
  const core::FeatureSpace space = benchharness::bebop_space();
  const core::Evaluator ev(ds);
  const coll::Collective c = coll::Collective::Bcast;
  const auto test = benchharness::p2_test_set(c);

  core::DatasetEnvironment env(ds);
  core::AcclaimAcquisition policy;
  core::ActiveLearnerConfig cfg;
  cfg.forest = benchharness::bench_forest();
  cfg.seed = 5;
  cfg.patience = 1 << 20;  // trace the full window, convergence marked below
  cfg.max_points = 300;
  core::ActiveLearner learner(c, space, env, policy, cfg);
  learner.set_monitor(
      [&](const core::CollectiveModel& m) { return ev.average_slowdown(test, m); });
  const core::TrainingResult result = learner.run();

  util::CsvWriter csv(benchharness::results_path("fig07"));
  csv.header({"time_s", "cumulative_variance", "avg_slowdown"});
  std::vector<double> var_series;
  std::vector<double> slow_series;
  util::TablePrinter table({"time", "cumulative variance", "avg slowdown"});
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    const auto& rec = result.history[i];
    if (!rec.avg_slowdown) {
      continue;
    }
    var_series.push_back(rec.cumulative_variance);
    slow_series.push_back(*rec.avg_slowdown);
    csv.row_numeric({rec.clock_s, rec.cumulative_variance, *rec.avg_slowdown});
    if (i % 20 == 0) {
      table.add_row_numeric(util::format_seconds(rec.clock_s),
                            {rec.cumulative_variance, *rec.avg_slowdown});
    }
  }
  table.print(std::cout);
  // The paper's claim is a joint downward trend with co-occurring spikes:
  // rank correlation captures the monotone co-trend; Pearson is also shown.
  std::cout << "\nSpearman correlation(cumulative variance, avg slowdown) = "
            << util::fixed(util::spearman(var_series, slow_series), 3)
            << "  (paper: visibly correlated; expect > 0.3)\n"
            << "Pearson  correlation                                    = "
            << util::fixed(util::pearson(var_series, slow_series), 3) << "\n";
  return 0;
}

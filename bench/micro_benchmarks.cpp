// Google-benchmark microbenchmarks for the performance-critical substrate:
// schedule construction, cost execution, forest fit/predict, jackknife
// variance, rule lookup, and JSON round trips. These guard the costs that
// determine how long the figure harnesses and the production pipeline take.
//
// `--json-out DIR` switches the binary into regression-gate mode instead of
// running google-benchmark: it times the pointer forest against the fused
// SoA kernel on a fig10/fig12-shaped jackknife sweep, checks the two paths
// bitwise-equal, and writes DIR/BENCH_micro_forest.json for CI to parse.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <limits>
#include <string>

#include "benchdata/dataset.hpp"
#include "collectives/types.hpp"
#include "core/feature_space.hpp"
#include "core/model.hpp"
#include "core/rulegen.hpp"
#include "minimpi/cost_executor.hpp"
#include "minimpi/schedule.hpp"
#include "ml/forest.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/network.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim;

/// Sink that only counts, to benchmark pure schedule construction.
class CountingSink final : public minimpi::RoundSink {
 public:
  void on_round(const minimpi::Round& round) override { transfers_ += round.transfers.size(); }
  std::size_t transfers() const { return transfers_; }

 private:
  std::size_t transfers_ = 0;
};

void BM_ScheduleBuild(benchmark::State& state) {
  const auto alg = static_cast<coll::Algorithm>(state.range(0));
  const int nranks = static_cast<int>(state.range(1));
  coll::CollParams p;
  p.nranks = nranks;
  p.count = 4096;
  p.type_size = 8;
  for (auto _ : state) {
    CountingSink sink;
    coll::build_schedule(alg, p, sink);
    benchmark::DoNotOptimize(sink.transfers());
  }
  state.SetLabel(coll::algorithm_info(alg).name);
}
BENCHMARK(BM_ScheduleBuild)
    ->Args({static_cast<int>(coll::Algorithm::BcastBinomial), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllgatherRing), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllgatherBruck), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllreduceReduceScatterAllgather), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllgatherRing), 1024});

void BM_CostExecution(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const simnet::MachineConfig machine = simnet::bebop_like();
  const simnet::Topology topo(machine);
  const simnet::NetworkModel net(topo, 1);
  const int nodes = std::min(64, nranks);
  std::vector<int> ids(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const minimpi::RankMap rm(alloc, nranks / nodes);
  coll::CollParams p;
  p.nranks = nranks;
  p.count = 65536;
  p.type_size = 1;
  for (auto _ : state) {
    minimpi::CostExecutor cost(net, rm);
    coll::build_schedule(coll::Algorithm::AllgatherRing, p, cost);
    benchmark::DoNotOptimize(cost.elapsed_us());
  }
}
BENCHMARK(BM_CostExecution)->Arg(64)->Arg(256)->Arg(1024);

struct ForestFixture {
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  ForestFixture() {
    util::Rng rng(3);
    for (int i = 0; i < 500; ++i) {
      const double a = rng.uniform(0, 7);
      const double b = rng.uniform(0, 6);
      const double c = rng.uniform(3, 20);
      const double d = rng.uniform(0, 3);
      X.push_back({a, b, c, d});
      y.push_back(a + 0.5 * b + 0.1 * c * c + d + rng.normal(0, 0.3));
    }
  }
};

void BM_ForestFit(benchmark::State& state) {
  static const ForestFixture fx;
  ml::ForestParams params;
  params.n_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest f;
    f.fit(fx.X, fx.y, params, 7);
    benchmark::DoNotOptimize(f.n_trees());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(50)->Arg(100);

void BM_ForestPredictTrees(benchmark::State& state) {
  static const ForestFixture fx;
  ml::ForestParams params;
  params.n_trees = 50;
  ml::RandomForest f;
  f.fit(fx.X, fx.y, params, 7);
  const ml::FeatureRow probe{3.0, 2.0, 10.0, 1.0};
  std::vector<double> out;
  for (auto _ : state) {
    f.predict_trees(probe, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ForestPredictTrees);

void BM_Jackknife(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> preds(static_cast<std::size_t>(state.range(0)));
  for (auto& v : preds) {
    v = rng.normal(10.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::jackknife_variance(preds));
  }
}
BENCHMARK(BM_Jackknife)->Arg(50)->Arg(100);

void BM_JsonRoundTrip(benchmark::State& state) {
  // A realistic selection-config document.
  util::Json doc = util::Json::object();
  doc["format"] = "acclaim-coll-tuning-v1";
  util::Json buckets = util::Json::array();
  for (int n = 2; n <= 64; n *= 2) {
    util::Json bucket = util::Json::object();
    bucket["nnodes"] = n;
    bucket["ppn"] = 16;
    util::Json rules = util::Json::array();
    util::Json r1 = util::Json::object();
    r1["msg_size_le"] = 8192;
    r1["algorithm"] = "binomial";
    rules.push_back(std::move(r1));
    util::Json r2 = util::Json::object();
    r2["algorithm"] = "scatter_ring_allgather";
    rules.push_back(std::move(r2));
    bucket["rules"] = std::move(rules);
    buckets.push_back(std::move(bucket));
  }
  util::Json colls = util::Json::object();
  colls["bcast"] = std::move(buckets);
  doc["collectives"] = std::move(colls);
  const std::string text = doc.dump(2);
  for (auto _ : state) {
    const util::Json parsed = util::Json::parse(text);
    benchmark::DoNotOptimize(parsed.dump().size());
  }
}
BENCHMARK(BM_JsonRoundTrip);

void BM_RuleLookup(benchmark::State& state) {
  core::RuleTable table(coll::Collective::Bcast);
  for (int n = 2; n <= 64; n *= 2) {
    for (int ppn = 1; ppn <= 32; ppn *= 2) {
      table.set_bucket(core::BucketKey{n, ppn},
                       {{8192, coll::Algorithm::BcastBinomial},
                        {core::kRuleMax, coll::Algorithm::BcastScatterRingAllgather}});
    }
  }
  const bench::Scenario s{coll::Collective::Bcast, 16, 8, 4096};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(s));
  }
}
BENCHMARK(BM_RuleLookup);

void BM_EncodePoint(benchmark::State& state) {
  const bench::BenchmarkPoint p{{coll::Collective::Allreduce, 32, 16, 65536},
                                coll::Algorithm::AllreduceReduceScatterAllgather};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode_point(p));
  }
}
BENCHMARK(BM_EncodePoint);

/// A fig10/fig12-shaped forest workload: the full bebop P2 candidate pool of
/// one collective (every scenario x algorithm the jackknife acquisition
/// scores per round), a bench-forest-sized ensemble trained on smooth
/// synthetic log-times over those same encoded features.
struct SweepFixture {
  std::vector<ml::FeatureRow> rows;
  ml::RandomForest forest;

  SweepFixture() {
    std::vector<std::uint64_t> msgs;
    for (std::uint64_t m = 8; m <= (1u << 20); m *= 2) {
      msgs.push_back(m);
    }
    const core::FeatureSpace space({2, 4, 8, 16, 32, 64}, {1, 2, 4, 8, 16, 32}, msgs);
    util::Rng rng(17);
    std::vector<double> y;
    for (const bench::BenchmarkPoint& p : space.candidates(coll::Collective::Allreduce)) {
      const ml::FeatureRow f = core::encode_point(p);
      // log-time surface: latency + bandwidth terms over the log2 axes, a
      // per-algorithm offset from the one-hot block, mild noise.
      double alg_bias = 0.0;
      for (std::size_t i = 3; i < f.size(); ++i) {
        alg_bias += f[i] * 0.2 * static_cast<double>(i - 2);
      }
      y.push_back(0.4 * f[0] + 0.2 * f[1] + 0.15 * f[2] + alg_bias + rng.normal(0.0, 0.05));
      rows.push_back(f);
    }
    ml::ForestParams params;
    params.n_trees = 50;  // the figure harnesses' bench_forest() size
    forest.fit(rows, y, params, 7);
  }

  static const SweepFixture& instance() {
    static const SweepFixture fx;
    return fx;
  }
};

/// One full jackknife sweep over the candidate pool (what jackknife_variances
/// does once per acquisition round) on the original pointer-chasing engine.
void BM_JackknifeSweepPointer(benchmark::State& state) {
  const SweepFixture& fx = SweepFixture::instance();
  ml::ForestBackendGuard guard(ml::ForestBackend::Pointer);
  std::vector<double> var(fx.rows.size());
  std::vector<double> scratch;
  for (auto _ : state) {
    fx.forest.jackknife_batch(fx.rows.data(), fx.rows.size(), var.data(), nullptr, scratch);
    benchmark::DoNotOptimize(var.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.rows.size()));
}
BENCHMARK(BM_JackknifeSweepPointer);

/// The same sweep through the fused SoA batch kernel.
void BM_JackknifeSweepFused(benchmark::State& state) {
  const SweepFixture& fx = SweepFixture::instance();
  ml::ForestBackendGuard guard(ml::ForestBackend::Flat);
  std::vector<double> var(fx.rows.size());
  std::vector<double> scratch;
  for (auto _ : state) {
    fx.forest.jackknife_batch(fx.rows.data(), fx.rows.size(), var.data(), nullptr, scratch);
    benchmark::DoNotOptimize(var.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.rows.size()));
}
BENCHMARK(BM_JackknifeSweepFused);

/// Batched per-tree predictions alone (no jackknife reduction), SoA arena.
void BM_FlatPredictTreesBatch(benchmark::State& state) {
  const SweepFixture& fx = SweepFixture::instance();
  const ml::FlatForest& flat = fx.forest.flat();
  std::vector<double> out(fx.rows.size() * flat.n_trees());
  for (auto _ : state) {
    flat.predict_trees_batch(fx.rows.data(), fx.rows.size(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.rows.size()));
}
BENCHMARK(BM_FlatPredictTreesBatch);

/// Regression-gate mode (`--json-out DIR`): single-threaded pointer-vs-SoA
/// comparison on the SweepFixture workload, bitwise-equality check, and a
/// BENCH_micro_forest.json artifact in the house format (figure/rows/
/// host_wall_s) so CI can fail the PR if the SoA engine ever loses ground.
int run_forest_gate(const std::string& out_dir) {
  const auto wall_start = std::chrono::steady_clock::now();
  const SweepFixture& fx = SweepFixture::instance();
  const std::size_t n = fx.rows.size();

  std::vector<double> var_ptr(n), mean_ptr(n), var_flat(n), mean_flat(n);
  std::vector<double> scratch;
  constexpr int kReps = 7;
  auto time_path = [&](ml::ForestBackend backend, double* var, double* mean) {
    ml::ForestBackendGuard guard(backend);
    double best_s = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {  // first rep doubles as warmup
      const auto t0 = std::chrono::steady_clock::now();
      fx.forest.jackknife_batch(fx.rows.data(), n, var, mean, scratch);
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      if (rep > 0) {
        best_s = std::min(best_s, s);
      }
    }
    return best_s;
  };
  const double ptr_s = time_path(ml::ForestBackend::Pointer, var_ptr.data(), mean_ptr.data());
  const double flat_s =
      time_path(ml::ForestBackend::Flat, var_flat.data(), mean_flat.data());

  const bool bitwise_equal =
      std::memcmp(var_ptr.data(), var_flat.data(), n * sizeof(double)) == 0 &&
      std::memcmp(mean_ptr.data(), mean_flat.data(), n * sizeof(double)) == 0;
  const double speedup = ptr_s / flat_s;

  std::cout << "forest gate: " << n << " rows x " << fx.forest.n_trees() << " trees\n"
            << "  pointer   " << ptr_s * 1e3 << " ms  ("
            << static_cast<double>(n) / ptr_s << " rows/s)\n"
            << "  flat+fuse " << flat_s * 1e3 << " ms  ("
            << static_cast<double>(n) / flat_s << " rows/s)\n"
            << "  speedup   " << speedup << "x, bitwise_equal="
            << (bitwise_equal ? "true" : "false") << "\n";

  util::Json doc = util::Json::object();
  doc["figure"] = "micro_forest";
  util::Json rows = util::Json::array();
  auto make_row = [&](const char* path, double seconds) {
    util::Json row = util::Json::object();
    row["path"] = path;
    row["seconds"] = seconds;
    row["rows_per_s"] = static_cast<double>(n) / seconds;
    return row;
  };
  rows.push_back(make_row("pointer", ptr_s));
  util::Json flat_row = make_row("flat_fused", flat_s);
  flat_row["speedup"] = speedup;
  flat_row["bitwise_equal"] = bitwise_equal;
  rows.push_back(std::move(flat_row));
  doc["rows"] = std::move(rows);
  doc["host_wall_s"] =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::filesystem::create_directories(out_dir);
  doc.dump_file(out_dir + "/BENCH_micro_forest.json");

  if (!bitwise_equal) {
    std::cerr << "forest gate: SoA results diverge from the pointer engine\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Consume `--json-out DIR` before google-benchmark sees the arguments.
  std::string json_out;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json-out") == 0) {
      json_out = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      break;
    }
  }
  if (!json_out.empty()) {
    return run_forest_gate(json_out);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

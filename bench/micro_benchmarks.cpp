// Google-benchmark microbenchmarks for the performance-critical substrate:
// schedule construction, cost execution, forest fit/predict, jackknife
// variance, rule lookup, and JSON round trips. These guard the costs that
// determine how long the figure harnesses and the production pipeline take.
#include <benchmark/benchmark.h>

#include "benchdata/dataset.hpp"
#include "collectives/types.hpp"
#include "core/feature_space.hpp"
#include "core/model.hpp"
#include "core/rulegen.hpp"
#include "minimpi/cost_executor.hpp"
#include "minimpi/schedule.hpp"
#include "ml/forest.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/network.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace acclaim;

/// Sink that only counts, to benchmark pure schedule construction.
class CountingSink final : public minimpi::RoundSink {
 public:
  void on_round(const minimpi::Round& round) override { transfers_ += round.transfers.size(); }
  std::size_t transfers() const { return transfers_; }

 private:
  std::size_t transfers_ = 0;
};

void BM_ScheduleBuild(benchmark::State& state) {
  const auto alg = static_cast<coll::Algorithm>(state.range(0));
  const int nranks = static_cast<int>(state.range(1));
  coll::CollParams p;
  p.nranks = nranks;
  p.count = 4096;
  p.type_size = 8;
  for (auto _ : state) {
    CountingSink sink;
    coll::build_schedule(alg, p, sink);
    benchmark::DoNotOptimize(sink.transfers());
  }
  state.SetLabel(coll::algorithm_info(alg).name);
}
BENCHMARK(BM_ScheduleBuild)
    ->Args({static_cast<int>(coll::Algorithm::BcastBinomial), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllgatherRing), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllgatherBruck), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllreduceReduceScatterAllgather), 256})
    ->Args({static_cast<int>(coll::Algorithm::AllgatherRing), 1024});

void BM_CostExecution(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const simnet::MachineConfig machine = simnet::bebop_like();
  const simnet::Topology topo(machine);
  const simnet::NetworkModel net(topo, 1);
  const int nodes = std::min(64, nranks);
  std::vector<int> ids(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);
  const minimpi::RankMap rm(alloc, nranks / nodes);
  coll::CollParams p;
  p.nranks = nranks;
  p.count = 65536;
  p.type_size = 1;
  for (auto _ : state) {
    minimpi::CostExecutor cost(net, rm);
    coll::build_schedule(coll::Algorithm::AllgatherRing, p, cost);
    benchmark::DoNotOptimize(cost.elapsed_us());
  }
}
BENCHMARK(BM_CostExecution)->Arg(64)->Arg(256)->Arg(1024);

struct ForestFixture {
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  ForestFixture() {
    util::Rng rng(3);
    for (int i = 0; i < 500; ++i) {
      const double a = rng.uniform(0, 7);
      const double b = rng.uniform(0, 6);
      const double c = rng.uniform(3, 20);
      const double d = rng.uniform(0, 3);
      X.push_back({a, b, c, d});
      y.push_back(a + 0.5 * b + 0.1 * c * c + d + rng.normal(0, 0.3));
    }
  }
};

void BM_ForestFit(benchmark::State& state) {
  static const ForestFixture fx;
  ml::ForestParams params;
  params.n_trees = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ml::RandomForest f;
    f.fit(fx.X, fx.y, params, 7);
    benchmark::DoNotOptimize(f.n_trees());
  }
}
BENCHMARK(BM_ForestFit)->Arg(10)->Arg(50)->Arg(100);

void BM_ForestPredictTrees(benchmark::State& state) {
  static const ForestFixture fx;
  ml::ForestParams params;
  params.n_trees = 50;
  ml::RandomForest f;
  f.fit(fx.X, fx.y, params, 7);
  const ml::FeatureRow probe{3.0, 2.0, 10.0, 1.0};
  std::vector<double> out;
  for (auto _ : state) {
    f.predict_trees(probe, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ForestPredictTrees);

void BM_Jackknife(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<double> preds(static_cast<std::size_t>(state.range(0)));
  for (auto& v : preds) {
    v = rng.normal(10.0, 1.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ml::jackknife_variance(preds));
  }
}
BENCHMARK(BM_Jackknife)->Arg(50)->Arg(100);

void BM_JsonRoundTrip(benchmark::State& state) {
  // A realistic selection-config document.
  util::Json doc = util::Json::object();
  doc["format"] = "acclaim-coll-tuning-v1";
  util::Json buckets = util::Json::array();
  for (int n = 2; n <= 64; n *= 2) {
    util::Json bucket = util::Json::object();
    bucket["nnodes"] = n;
    bucket["ppn"] = 16;
    util::Json rules = util::Json::array();
    util::Json r1 = util::Json::object();
    r1["msg_size_le"] = 8192;
    r1["algorithm"] = "binomial";
    rules.push_back(std::move(r1));
    util::Json r2 = util::Json::object();
    r2["algorithm"] = "scatter_ring_allgather";
    rules.push_back(std::move(r2));
    bucket["rules"] = std::move(rules);
    buckets.push_back(std::move(bucket));
  }
  util::Json colls = util::Json::object();
  colls["bcast"] = std::move(buckets);
  doc["collectives"] = std::move(colls);
  const std::string text = doc.dump(2);
  for (auto _ : state) {
    const util::Json parsed = util::Json::parse(text);
    benchmark::DoNotOptimize(parsed.dump().size());
  }
}
BENCHMARK(BM_JsonRoundTrip);

void BM_RuleLookup(benchmark::State& state) {
  core::RuleTable table(coll::Collective::Bcast);
  for (int n = 2; n <= 64; n *= 2) {
    for (int ppn = 1; ppn <= 32; ppn *= 2) {
      table.set_bucket(core::BucketKey{n, ppn},
                       {{8192, coll::Algorithm::BcastBinomial},
                        {core::kRuleMax, coll::Algorithm::BcastScatterRingAllgather}});
    }
  }
  const bench::Scenario s{coll::Collective::Bcast, 16, 8, 4096};
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(s));
  }
}
BENCHMARK(BM_RuleLookup);

void BM_EncodePoint(benchmark::State& state) {
  const bench::BenchmarkPoint p{{coll::Collective::Allreduce, 32, 16, 65536},
                                coll::Algorithm::AllreduceReduceScatterAllgather};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::encode_point(p));
  }
}
BENCHMARK(BM_EncodePoint);

}  // namespace

BENCHMARK_MAIN();

// Fig. 5 — FACT's performance on non-power-of-two test sets for MPI_Bcast.
// Paper: trained on P2 points only, FACT performs near-optimally on the
// all-P2 test set, consistently worse on non-P2 node counts, and fails to
// learn the trends for non-P2 message sizes at all.
#include <iostream>

#include "common.hpp"
#include "util/csv.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner("Fig. 5: FACT (P2-trained) on non-P2 test sets for MPI_Bcast",
                       "Expectation: all-P2 near-optimal > non-P2 nodes > non-P2 msg sizes");

  const bench::Dataset& ds = bebop_dataset();
  const core::FeatureSpace space = benchharness::bebop_space();
  const core::Evaluator ev(ds);
  const coll::Collective c = coll::Collective::Bcast;

  // FACT's P2-only acquisition order.
  core::DatasetEnvironment env(ds);
  core::SurrogateAcquisitionConfig scfg;
  scfg.surrogate = benchharness::bench_forest();
  scfg.refresh_every = 25;
  core::SurrogateAcquisition policy(c, 1, scfg);
  core::TraceConfig tcfg;
  tcfg.forest = benchharness::bench_forest();
  tcfg.refit_every = 50;
  tcfg.max_points = static_cast<int>(0.9 * static_cast<double>(space.candidates(c).size()));
  const core::AcquisitionTrace trace = core::trace_acquisition(c, space, env, policy, tcfg);

  const auto p2 = benchharness::p2_test_set(c);
  const auto np2_nodes = benchharness::nonp2_node_test_set(c);
  const auto np2_msgs = benchharness::nonp2_msg_test_set(c);
  std::cout << "test sets: all-P2 " << p2.size() << ", non-P2 nodes " << np2_nodes.size()
            << ", non-P2 msgs " << np2_msgs.size() << " scenarios\n";

  const std::vector<double> fractions = {0.05, 0.10, 0.20, 0.40, 0.60, 0.80};
  util::TablePrinter table(
      {"% of training points", "All P2", "Non-P2 nodes", "Non-P2 msg size"});
  util::CsvWriter csv(benchharness::results_path("fig05"));
  csv.header({"fraction_pct", "all_p2", "nonp2_nodes", "nonp2_msgs"});
  double gap_nodes = 0.0;
  double gap_msgs = 0.0;
  for (double f : fractions) {
    const auto k = std::max<std::size_t>(
        2, static_cast<std::size_t>(f * static_cast<double>(trace.steps.size())));
    const auto model = core::train_on_prefix(trace, k, benchharness::bench_forest(), 3);
    const double s_p2 = ev.average_slowdown(p2, model);
    const double s_nodes = ev.average_slowdown(np2_nodes, model);
    const double s_msgs = ev.average_slowdown(np2_msgs, model);
    table.add_row_numeric(util::fixed(f * 100, 0), {s_p2, s_nodes, s_msgs});
    csv.row_numeric({f * 100, s_p2, s_nodes, s_msgs});
    gap_nodes += s_nodes - s_p2;
    gap_msgs += s_msgs - s_p2;
  }
  table.print(std::cout);
  std::cout << "\nMean slowdown penalty vs all-P2:  non-P2 nodes +"
            << util::fixed(gap_nodes / static_cast<double>(fractions.size()), 3)
            << ",  non-P2 msg sizes +"
            << util::fixed(gap_msgs / static_cast<double>(fractions.size()), 3)
            << "\n(paper: msg-size penalty is the largest and does not improve with data)\n";
  return 0;
}

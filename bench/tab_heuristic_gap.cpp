// §II-B1 — The motivating gap: static default heuristics vs optimized
// selections. Paper (citing Hunold et al.): tuned selections accelerate
// collectives by 35-40% over library defaults. This harness quantifies the
// same gap on the precollected dataset: default heuristic vs the measured
// oracle vs an ACCLAiM-trained model.
#include <iostream>

#include "common.hpp"
#include "core/heuristic.hpp"
#include "util/csv.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner("Motivating gap: MPICH-default heuristic vs oracle vs ACCLAiM",
                       "Expectation: defaults leave tens of percent on the table; ACCLAiM ~1.0x");

  const bench::Dataset& ds = bebop_dataset();
  const core::FeatureSpace space = benchharness::bebop_space();
  const core::Evaluator ev(ds);

  util::TablePrinter table({"collective", "heuristic slowdown", "ACCLAiM slowdown",
                            "heuristic optimal-rate", "ACCLAiM optimal-rate"});
  util::CsvWriter csv(benchharness::results_path("tab_heuristic_gap"));
  csv.header({"collective", "heuristic_slowdown", "acclaim_slowdown", "heuristic_optrate",
              "acclaim_optrate"});
  double worst = 0.0;
  for (coll::Collective c : coll::paper_collectives()) {
    const auto test = benchharness::full_test_set(c);
    const double h_slow = ev.average_slowdown(test, core::mpich_default_selection);
    const double h_opt = ev.optimal_rate(test, core::mpich_default_selection);

    core::DatasetEnvironment env(ds);
    core::AcclaimAcquisition policy;
    core::ActiveLearnerConfig cfg;
    cfg.forest = benchharness::bench_forest();
    cfg.seed = 5;
    core::ActiveLearner learner(c, space, env, policy, cfg);
    const core::CollectiveModel model = learner.run().model;
    const double a_slow = ev.average_slowdown(test, model);
    const double a_opt =
        ev.optimal_rate(test, [&](const bench::Scenario& s) { return model.select(s); });

    table.add_row({coll::collective_name(c), util::fixed(h_slow, 3), util::fixed(a_slow, 3),
                   util::fixed(h_opt * 100, 1) + "%", util::fixed(a_opt * 100, 1) + "%"});
    csv.row_numeric({static_cast<double>(static_cast<int>(c)), h_slow, a_slow, h_opt, a_opt});
    worst = std::max(worst, h_slow);
  }
  table.print(std::cout);
  std::cout << "\nWorst default-heuristic average slowdown: " << util::fixed(worst, 2)
            << "x (paper's motivation: optimized selections win 35-40% in such cases)\n";
  return 0;
}

// Fig. 13 — Topology-aware parallel data collection. Paper: scheduling
// benchmarks on disjoint racks accelerates collection by 1-1.4x, running 1-4
// benchmarks in parallel, across four placement topologies (single rack,
// single rack pair, two pairs, and "max parallel" = one node per rack, all
// racks in distinct pairs).
//
// --naive additionally runs the rack-sharing ablation scheduler: it packs
// more benchmarks per batch but co-located runs interfere, inflating the
// *measured* latencies — the §III-D hazard the greedy algorithm avoids.
#include <chrono>
#include <cstring>
#include <iostream>

#include "common.hpp"
#include "core/scheduler.hpp"
#include "util/csv.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

namespace {

/// Machine with enough rack pairs for a 64-node "max parallel" placement.
simnet::MachineConfig fig13_machine() {
  simnet::MachineConfig m = simnet::theta_like();
  m.total_nodes = 138 * 64;  // 138 racks of 64 -> 69 pairs
  m.validate();
  return m;
}

struct Replay {
  double sequential_s = 0.0;
  double parallel_s = 0.0;
  double avg_parallelism = 0.0;
  double measurement_inflation = 1.0;  ///< measured/solo latency ratio
  /// Host wall clock spent simulating each path — the real time the thread
  /// pool saves by running batch members concurrently. Not written to the
  /// committed CSV (wall time is machine-dependent, the CSV must stay
  /// deterministic).
  double sequential_wall_s = 0.0;
  double parallel_wall_s = 0.0;
};

Replay replay(const std::vector<bench::BenchmarkPoint>& points, const simnet::Topology& topo,
              const simnet::Allocation& alloc, bool topology_aware) {
  using clock = std::chrono::steady_clock;
  // Sequential baseline.
  core::LiveEnvironment seq_env(topo, alloc, 11);
  std::vector<double> solo_us;
  const auto seq_start = clock::now();
  for (const auto& p : points) {
    solo_us.push_back(seq_env.measure(p).mean_us);
  }
  Replay r;
  r.sequential_wall_s = std::chrono::duration<double>(clock::now() - seq_start).count();
  r.sequential_s = seq_env.clock_s();

  // Parallel batches in the same priority order.
  core::LiveEnvironment par_env(topo, alloc, 11);
  const core::CollectionScheduler sched(
      core::CollectionSchedulerConfig{topology_aware, 1 << 20});
  std::vector<bench::BenchmarkPoint> pool = points;
  std::vector<double> inflation;
  int batches = 0;
  std::size_t done = 0;
  const auto par_start = clock::now();
  while (!pool.empty()) {
    std::vector<std::size_t> ranked(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) {
      ranked[i] = i;
    }
    core::CollectionBatch batch =
        sched.plan(pool, ranked, topo, alloc, par_env.solo_cost_oracle());
    if (batch.items.empty()) {
      break;  // top point does not fit this placement at all
    }
    const auto ms = par_env.measure_scheduled(batch.items, batch.predicted_us);
    for (std::size_t i = 0; i < ms.size(); ++i) {
      inflation.push_back(ms[i].mean_us / solo_us[done + i]);
    }
    done += ms.size();
    ++batches;
    std::vector<std::size_t> consumed = batch.consumed;
    std::sort(consumed.rbegin(), consumed.rend());
    for (std::size_t idx : consumed) {
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    }
  }
  r.parallel_wall_s = std::chrono::duration<double>(clock::now() - par_start).count();
  r.parallel_s = par_env.clock_s();
  r.avg_parallelism = batches ? static_cast<double>(done) / batches : 0.0;
  double infl = 0.0;
  for (double v : inflation) {
    infl += v;
  }
  r.measurement_inflation = inflation.empty() ? 1.0 : infl / static_cast<double>(inflation.size());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  const bool naive = argc > 1 && std::strcmp(argv[1], "--naive") == 0;
  benchharness::banner(
      "Fig. 13: parallel data collection across placement topologies",
      naive ? "Ablation: naive rack-sharing scheduler (expect inflated measurements)"
            : "Expectation: 1-1.4x speedup, 1-4 benchmarks in parallel");

  const simnet::MachineConfig machine = fig13_machine();
  const simnet::Topology topo(machine);

  // The workload: the first 60 points an ACCLAiM run would collect, per
  // collective, in priority order (from the precollected-dataset trace).
  const core::Evaluator ev(bebop_dataset());
  util::TablePrinter table({"collective", "placement", "sequential", "parallel", "speedup",
                            "avg parallel", "meas. inflation", "host wall", "wall speedup"});
  // The committed CSV keeps only the simulated columns: host wall time is
  // machine-dependent and would churn the results on every run.
  util::CsvWriter csv(benchharness::results_path(naive ? "fig13_naive" : "fig13"));
  csv.header({"collective", "placement", "sequential_s", "parallel_s", "speedup",
              "avg_parallelism", "measurement_inflation"});
  const std::vector<std::string> placements = {"single-rack", "single-pair", "two-pairs",
                                               "max-parallel"};
  double wall_seq_total_s = 0.0;
  double wall_par_total_s = 0.0;
  for (coll::Collective c : coll::paper_collectives()) {
    core::DatasetEnvironment denv(bebop_dataset());
    core::AcclaimAcquisition policy;
    core::TraceConfig tcfg;
    tcfg.forest = benchharness::bench_forest();
    tcfg.refit_every = 10;
    tcfg.max_points = 60;
    tcfg.seed = 5;
    const core::AcquisitionTrace trace =
        core::trace_acquisition(c, benchharness::bebop_space(), denv, policy, tcfg);
    std::vector<bench::BenchmarkPoint> points;
    for (const auto& step : trace.steps) {
      points.push_back(step.point.point);
    }

    for (const std::string& placement : placements) {
      const simnet::Allocation alloc = simnet::fig13_placement(topo, placement, 64);
      const Replay r = replay(points, topo, alloc, /*topology_aware=*/!naive);
      const double speedup = r.parallel_s > 0 ? r.sequential_s / r.parallel_s : 1.0;
      const double wall_speedup =
          r.parallel_wall_s > 0 ? r.sequential_wall_s / r.parallel_wall_s : 1.0;
      wall_seq_total_s += r.sequential_wall_s;
      wall_par_total_s += r.parallel_wall_s;
      table.add_row({coll::collective_name(c), placement,
                     util::format_seconds(r.sequential_s), util::format_seconds(r.parallel_s),
                     util::fixed(speedup, 2) + "x", util::fixed(r.avg_parallelism, 2),
                     util::fixed(r.measurement_inflation, 3),
                     util::format_seconds(r.parallel_wall_s),
                     util::fixed(wall_speedup, 2) + "x"});
      csv.row({coll::collective_name(c), placement, util::format_double(r.sequential_s),
               util::format_double(r.parallel_s), util::format_double(speedup),
               util::format_double(r.avg_parallelism),
               util::format_double(r.measurement_inflation)});
    }
  }
  table.print(std::cout);
  std::cout << "\nhost wall (" << util::global_threads() << " threads, "
            << util::hardware_threads() << " hardware): sequential "
            << util::format_seconds(wall_seq_total_s) << ", batched "
            << util::format_seconds(wall_par_total_s) << " ("
            << util::fixed(wall_par_total_s > 0 ? wall_seq_total_s / wall_par_total_s : 1.0, 2)
            << "x aggregate speedup)\n";
  if (util::hardware_threads() < util::global_threads()) {
    std::cout << "(wall speedup is capped by hardware concurrency: the pool's "
              << util::global_threads() << " threads time-slice "
              << util::hardware_threads() << " core(s) on this host)\n";
  }
  if (naive) {
    std::cout << "\n(rack-sharing inflates measured latencies; inflation >> 1 corrupts the\n"
                 " training data, which is why the greedy forbids shared racks)\n";
  } else {
    std::cout << "\n(paper: 1-1.4x speedups; single-rack exposes no parallelism and max-parallel\n"
                 " the most; measurement inflation stays ~1.0 because racks are disjoint)\n";
  }
  return 0;
}

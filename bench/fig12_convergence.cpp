// Fig. 12 — Cumulative-variance convergence vs average-slowdown convergence,
// per collective. Paper: the variance criterion consistently stops training
// at models with low average slowdown; for some collectives it stops
// slightly after the slowdown point (adding ~1.007x time), for others
// slightly before (accepting ~1.04 slowdown), and overall it detects
// convergence 1.19x faster while avoiding the test-set cost entirely.
#include <iostream>
#include <optional>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  bench_env.set_figure("fig12");
  benchharness::banner("Fig. 12: variance convergence vs slowdown convergence",
                       "Expectation: variance stops near the slowdown point with low final slowdown");

  const bench::Dataset& ds = bebop_dataset();
  const core::FeatureSpace space = benchharness::bebop_space();
  const core::Evaluator ev(ds);

  util::TablePrinter table({"collective", "slowdown conv (<=1.03)", "variance conv",
                            "ratio", "slowdown @ variance conv"});
  util::CsvWriter csv(benchharness::results_path("fig12"));
  csv.header({"collective", "slowdown_conv_s", "variance_conv_s", "final_slowdown"});
  double var_total = 0.0;
  double slow_total = 0.0;
  for (coll::Collective c : coll::paper_collectives()) {
    const auto test = benchharness::p2_test_set(c);
    core::DatasetEnvironment env(ds);
    core::AcclaimAcquisition policy;
    core::ActiveLearnerConfig cfg;
    cfg.forest = benchharness::bench_forest();
    cfg.seed = 5;
    core::ActiveLearner learner(c, space, env, policy, cfg);
    learner.set_monitor(
        [&](const core::CollectiveModel& m) { return ev.average_slowdown(test, m); });
    const core::TrainingResult result = learner.run();

    // Slowdown-convergence time: first time the monitored slowdown reaches
    // 1.03 and holds it for a few consecutive iterations (the paper marks
    // the first sustained crossing on its curves).
    double slow_conv = -1.0;
    int held = 0;
    double candidate = -1.0;
    for (const auto& rec : result.history) {
      if (!rec.avg_slowdown) {
        continue;
      }
      if (*rec.avg_slowdown <= benchharness::kConvergence) {
        if (held == 0) {
          candidate = rec.clock_s;
        }
        if (++held >= 3 && slow_conv < 0) {
          slow_conv = candidate;
        }
      } else {
        held = 0;
      }
    }
    const double var_conv = result.converged ? result.train_time_s : -1.0;
    const double final_slow =
        result.history.back().avg_slowdown.value_or(ev.average_slowdown(test, result.model));
    auto fmt = [](double s) {
      return s > 0 ? util::format_seconds(s) : std::string("not reached");
    };
    const bool both = var_conv > 0 && slow_conv > 0;
    table.add_row({coll::collective_name(c), fmt(slow_conv), fmt(var_conv),
                   both ? util::fixed(var_conv / slow_conv, 2) + "x" : "-",
                   util::fixed(final_slow, 3)});
    csv.row_numeric({static_cast<double>(static_cast<int>(c)), slow_conv, var_conv,
                     final_slow});
    {
      util::Json row = util::Json::object();
      row["collective"] = coll::collective_name(c);
      row["slowdown_conv_s"] = slow_conv;
      row["variance_conv_s"] = var_conv;
      row["final_slowdown"] = final_slow;
      bench_env.add_row(std::move(row));
    }
    if (both) {
      var_total += var_conv;
      slow_total += slow_conv;
    }
  }
  table.print(std::cout);
  if (var_total > 0 && slow_total > 0) {
    std::cout << "\nCumulative variance-convergence time is "
              << util::fixed(var_total / slow_total, 2)
              << "x the slowdown-convergence time (paper: close to 1, with the test-set\n"
                 "collection avoided entirely — see Fig. 6 for what that would have cost)\n";
  }
  return 0;
}

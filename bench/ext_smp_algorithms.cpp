// Extension bench — SMP-aware (hierarchical) algorithms vs the flat family.
//
// Not a paper figure: the paper's algorithm set contains no SMP variants,
// so these stay out of the default registry (experimental flag) and out of
// the figure benches. This harness shows what the library's extension buys:
// at high ppn, leader-based inter-node phases beat flat exchanges that
// saturate every NIC, and the autotuner would exploit that once the family
// is enabled.
#include <iostream>

#include "collectives/types.hpp"
#include "common.hpp"
#include "minimpi/cost_executor.hpp"
#include "simnet/allocation.hpp"
#include "simnet/network.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace acclaim;

namespace {

double cost_us(coll::Algorithm alg, const simnet::NetworkModel& net,
               const simnet::Allocation& alloc, int ppn, std::uint64_t msg) {
  const minimpi::RankMap rm(alloc, ppn);
  minimpi::CostExecutor cost(net, rm);
  coll::CollParams p;
  p.nranks = alloc.num_nodes() * ppn;
  p.ppn = ppn;
  p.count = msg;
  p.type_size = 1;
  coll::build_schedule(alg, p, cost);
  return cost.elapsed_us();
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner("Extension: SMP-aware hierarchical algorithms vs flat family",
                       "Expectation: leader-based inter-node phases win at high ppn");

  const simnet::Topology topo(simnet::bebop_like());
  const simnet::NetworkModel net(topo, 3);
  std::vector<int> ids(16);
  for (int i = 0; i < 16; ++i) {
    ids[static_cast<std::size_t>(i)] = i;
  }
  const simnet::Allocation alloc(ids);

  util::TablePrinter table({"collective", "ppn", "msg", "flat counterpart", "flat best", "smp",
                            "vs counterpart", "vs best"});
  util::CsvWriter csv(benchharness::results_path("ext_smp"));
  csv.header({"collective", "ppn", "msg_bytes", "counterpart_us", "flat_best_us", "smp_us",
              "speedup_vs_counterpart", "speedup_vs_best"});
  struct Case {
    coll::Collective collective;
    coll::Algorithm smp;
    coll::Algorithm counterpart;  ///< the flat algorithm of the same family
  };
  const std::vector<Case> cases = {
      {coll::Collective::Bcast, coll::Algorithm::BcastSmpBinomial,
       coll::Algorithm::BcastBinomial},
      {coll::Collective::Reduce, coll::Algorithm::ReduceSmpBinomial,
       coll::Algorithm::ReduceBinomial},
      {coll::Collective::Allreduce, coll::Algorithm::AllreduceSmp,
       coll::Algorithm::AllreduceRecursiveDoubling},
      {coll::Collective::Barrier, coll::Algorithm::BarrierSmp,
       coll::Algorithm::BarrierDissemination},
  };
  for (const Case& c : cases) {
    for (int ppn : {2, 8, 32}) {
      for (std::uint64_t msg : {256ull, 65536ull}) {
        if (c.collective == coll::Collective::Barrier && msg != 256) {
          continue;  // barriers have no payload dimension
        }
        double flat_best = 1e300;
        for (coll::Algorithm a : coll::algorithms_for(c.collective)) {
          flat_best = std::min(flat_best, cost_us(a, net, alloc, ppn, msg));
        }
        const double counterpart = cost_us(c.counterpart, net, alloc, ppn, msg);
        const double smp = cost_us(c.smp, net, alloc, ppn, msg);
        table.add_row({coll::collective_name(c.collective), std::to_string(ppn),
                       util::format_bytes(msg), util::fixed(counterpart, 1) + " us",
                       util::fixed(flat_best, 1) + " us", util::fixed(smp, 1) + " us",
                       util::fixed(counterpart / smp, 2) + "x",
                       util::fixed(flat_best / smp, 2) + "x"});
        csv.row_numeric({static_cast<double>(static_cast<int>(c.collective)),
                         static_cast<double>(ppn), static_cast<double>(msg), counterpart,
                         flat_best, smp, counterpart / smp, flat_best / smp});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(vs counterpart > 1: the hierarchy beats its own flat family, which happens\n"
               " in NIC-bound regimes — high ppn, latency-sensitive exchanges. The oracle-best\n"
               " flat algorithm can still win elsewhere, which is exactly why selection must be\n"
               " tuned rather than hardcoded. Enable via coll::algorithms_for(c, true).)\n";
  return 0;
}

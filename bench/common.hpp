// Shared infrastructure for the figure-reproduction bench harnesses.
//
// Every paper figure gets one binary. Each binary prints the same
// rows/series the paper reports and writes a CSV under ./results/ so the
// series can be re-plotted. The precollected bebop-scale dataset (the
// paper's Fig. 1(a) simulated-experiment input) is collected once and cached
// under the repository's data/ directory.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "benchdata/dataset.hpp"
#include "core/acquisition.hpp"
#include "core/active_learner.hpp"
#include "core/baselines.hpp"
#include "core/evaluator.hpp"
#include "core/feature_space.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace acclaim::benchharness {

/// The paper's convergence criterion.
inline constexpr double kConvergence = 1.03;

/// Forest size used throughout the benches (smaller than the scikit default
/// of 100 to keep every figure harness under a couple of minutes; the
/// comparisons are internally consistent).
ml::ForestParams bench_forest();

/// The precollected simulated-experiment dataset: bebop-like machine,
/// P2 grid (2-64 nodes, 1-32 ppn, 8 B - 1 MiB) plus one non-P2 variant per
/// message-size and node-count anchor, all four collectives. Cached at
/// data/bebop_full.csv; first call collects (~1-2 minutes).
const bench::Dataset& bebop_dataset();

/// The P2 training feature space matching the dataset.
core::FeatureSpace bebop_space();

/// Test scenario slices of the dataset for one collective.
std::vector<bench::Scenario> p2_test_set(coll::Collective c);
std::vector<bench::Scenario> nonp2_msg_test_set(coll::Collective c);
std::vector<bench::Scenario> nonp2_node_test_set(coll::Collective c);
/// Every scenario the dataset holds (P2 and non-P2) — the "full feature
/// space" the FACT test-set protocol samples from.
std::vector<bench::Scenario> full_test_set(coll::Collective c);

/// Ensures ./results exists and returns "results/<name>.csv".
std::string results_path(const std::string& name);

/// Average slowdown of models trained on trace prefixes, one row per
/// requested fraction of the trace.
struct SweepRow {
  double fraction = 0.0;     ///< of the traced points
  std::size_t points = 0;
  double cost_s = 0.0;       ///< collection time of the prefix
  double slowdown = 0.0;
};
std::vector<SweepRow> sweep_trace(const core::AcquisitionTrace& trace,
                                  const std::vector<double>& fractions,
                                  const std::vector<bench::Scenario>& test,
                                  const core::Evaluator& ev, std::uint64_t seed);

/// First collection time at which the slowdown curve reaches `threshold`
/// and holds it for at least one further checkpoint (the paper marks the
/// first sustained crossing on its curves); negative if never.
double converge_time_s(const std::vector<SweepRow>& rows, double threshold = kConvergence);

/// Prints the standard figure banner.
void banner(const std::string& figure, const std::string& claim);

/// Shared bench flags, parsed first thing in every figure main:
///   --threads N         size the global compute pool (default: hardware,
///                       or the ACCLAIM_THREADS environment variable)
///   --metrics-out FILE  write a metrics-registry JSON snapshot on exit
///                       (render with `acclaim report --metrics FILE`)
///   --audit-out FILE    stream per-decision audit records (JSONL) for the
///                       whole run (replay with `acclaim explain FILE`)
///   --json-out DIR      write DIR/BENCH_<figure>.json on exit: figure id,
///                       the key result rows the harness registered with
///                       add_row(), and the host-wall runtime — the
///                       machine-readable artifact CI tracks across PRs
/// Recognized flags (and their values) are consumed from argc/argv so
/// figure-specific positional arguments (--ablation, --naive) keep working.
/// The destructor publishes thread-pool stats and writes the snapshots.
class BenchEnv {
 public:
  BenchEnv(int& argc, char** argv);
  ~BenchEnv();
  BenchEnv(const BenchEnv&) = delete;
  BenchEnv& operator=(const BenchEnv&) = delete;

  /// Names the BENCH_<figure>.json artifact (e.g. "fig12"). Call once,
  /// before the destructor runs; without it --json-out is an error.
  void set_figure(const std::string& id);

  /// Registers one machine-readable result row (a flat JSON object mirroring
  /// what the figure prints/CSVs). Cheap no-op when --json-out is off.
  void add_row(util::Json row);

 private:
  std::string metrics_out_;
  std::string audit_out_;
  std::string json_out_dir_;
  std::string figure_;
  util::Json rows_ = util::Json::array();
  std::chrono::steady_clock::time_point start_;
};

}  // namespace acclaim::benchharness

// Fig. 15 — Minimum application runtime for overall acceleration. Paper:
// given measured training times, an application sped up 1.01x by better
// selections recoups ACCLAiM's cost after 6.4-9.5 hours; larger speedups
// amortize within minutes to an hour, so typical Theta jobs benefit.
#include <filesystem>
#include <iostream>

#include "common.hpp"
#include "core/pipeline.hpp"
#include "platform/app_model.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace acclaim;

namespace {

/// Training-time band (seconds): per-collective training times — an
/// application pays for the collectives it actually uses (most tune one or
/// two), so the paper's band is per-collective, not the four-collective job
/// total. Reads the Fig. 14 results when present; otherwise measures two
/// quick jobs itself.
std::pair<double, double> training_band() {
  const std::string fig14 = "results/fig14.csv";
  if (std::filesystem::exists(fig14)) {
    const util::CsvTable t = util::read_csv(fig14);
    double lo = 1e30;
    double hi = 0.0;
    for (const char* col_name : {"allgather_s", "allreduce_s", "bcast_s", "reduce_s"}) {
      const std::size_t col = t.column_index(col_name);
      for (const auto& row : t.rows) {
        const double v = std::stod(row[col]);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    if (hi > 0.0) {
      std::cout << "(per-collective training times from " << fig14 << ")\n";
      return {lo, hi};
    }
  }
  std::cout << "(results/fig14.csv not found; measuring 32- and 128-node jobs)\n";
  core::ActiveLearnerConfig learner;
  learner.forest = benchharness::bench_forest();
  learner.max_points = 250;
  const core::AcclaimPipeline pipeline(simnet::theta_like(), learner);
  double lo = 1e30;
  double hi = 0.0;
  for (int nodes : {32, 128}) {
    core::JobSpec spec;
    spec.collectives = coll::paper_collectives();
    spec.nnodes = nodes;
    spec.ppn = 16;
    spec.max_msg = 1 << 20;
    spec.job_seed = 40 + static_cast<std::uint64_t>(nodes);
    for (const auto& t : pipeline.run(spec).training) {
      lo = std::min(lo, t.train_time_s);
      hi = std::max(hi, t.train_time_s);
    }
  }
  return {lo, hi};
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  bench_env.set_figure("fig15");
  benchharness::banner("Fig. 15: minimum application runtime for overall acceleration",
                       "Expectation: ~1.01x speedup needs a few hours; >=1.05x well under an hour");

  const auto [lo_s, hi_s] = training_band();
  std::cout << "training-time band: " << util::format_seconds(lo_s) << " .. "
            << util::format_seconds(hi_s) << "\n\n";

  util::TablePrinter table({"application speedup", "min runtime (fast train)",
                            "min runtime (slow train)"});
  util::CsvWriter csv(benchharness::results_path("fig15"));
  csv.header({"speedup", "breakeven_lo_s", "breakeven_hi_s"});
  for (double s : {1.005, 1.01, 1.02, 1.05, 1.10, 1.20}) {
    const double lo = platform::breakeven_runtime_s(lo_s, s);
    const double hi = platform::breakeven_runtime_s(hi_s, s);
    table.add_row({util::fixed(s, 3) + "x", util::format_seconds(lo),
                   util::format_seconds(hi)});
    csv.row_numeric({s, lo, hi});
    util::Json row = util::Json::object();
    row["speedup"] = s;
    row["breakeven_lo_s"] = lo;
    row["breakeven_hi_s"] = hi;
    bench_env.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(paper: 1.01x -> 6.4-9.5 hours, well within common Theta job durations)\n";
  return 0;
}

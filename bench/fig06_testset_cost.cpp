// Fig. 6 — Training-set vs test-set data collection time. Paper: collecting
// the 20%-of-feature-space test set FACT needs for convergence testing costs
// 6-11x the converged training set, per collective.
#include <iostream>

#include "common.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner("Fig. 6: test-set vs training-set collection time (normalized)",
                       "Expectation: the 20% test set costs several times the training set");

  const bench::Dataset& ds = bebop_dataset();
  const core::FeatureSpace space = benchharness::bebop_space();
  const core::Evaluator ev(ds);

  util::TablePrinter table({"collective", "train points", "train time", "test points",
                            "test time", "test/train ratio"});
  util::CsvWriter csv(benchharness::results_path("fig06"));
  csv.header({"collective", "train_points", "train_s", "test_points", "test_s", "ratio"});
  for (coll::Collective c : coll::paper_collectives()) {
    // Converged ACCLAiM training set (variance criterion, no test set).
    core::DatasetEnvironment env(ds);
    core::AcclaimAcquisition policy;
    core::ActiveLearnerConfig cfg;
    cfg.forest = benchharness::bench_forest();
    cfg.seed = 5;
    core::ActiveLearner learner(c, space, env, policy, cfg);
    const core::TrainingResult result = learner.run();

    // The FACT test-set protocol: 20% of the *full* feature space (P2 and
    // non-P2 values), every algorithm benchmarked.
    const auto all = benchharness::full_test_set(c);
    util::Rng rng(17);
    const auto pick = rng.sample_without_replacement(all.size(), all.size() / 5);
    std::vector<bench::Scenario> test;
    for (std::size_t i : pick) {
      test.push_back(all[i]);
    }
    core::DatasetEnvironment test_env(ds);
    const double test_s = core::test_set_collection_cost_s(test, test_env);
    const double ratio = test_s / result.train_time_s;
    table.add_row({coll::collective_name(c), std::to_string(result.collected.size()),
                   util::format_seconds(result.train_time_s),
                   std::to_string(test.size() * coll::algorithms_for(c).size()),
                   util::format_seconds(test_s), util::fixed(ratio, 2) + "x"});
    csv.row_numeric({static_cast<double>(static_cast<int>(c)),
                     static_cast<double>(result.collected.size()), result.train_time_s,
                     static_cast<double>(test.size() * coll::algorithms_for(c).size()), test_s,
                     ratio});
  }
  table.print(std::cout);
  std::cout << "\n(paper: ratios of 6-11x; shape target: test collection dwarfs training)\n";
  return 0;
}

#include "common.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

#ifndef ACCLAIM_DATA_DIR
#define ACCLAIM_DATA_DIR "data"
#endif

namespace acclaim::benchharness {

ml::ForestParams bench_forest() {
  ml::ForestParams p = core::default_forest_params();
  p.n_trees = 50;
  return p;
}

namespace {

bench::FeatureGrid full_grid() {
  bench::FeatureGrid g = bench::FeatureGrid::p2(64, 32, 8, 1 << 20);
  // Deterministic non-P2 variants: one per message anchor, one per node
  // anchor — the "full feature space" production applications actually use.
  util::Rng rng(0xACC1A1Full);
  const bench::FeatureGrid nm = g.with_nonp2_msgs(rng);
  bench::FeatureGrid nn = g.with_nonp2_nodes(rng);
  // Non-P2 node variants must fit the 64-node machine; redraw anything the
  // closest-P2 window pushed above it (anchor 64 draws from (48, 96)).
  for (int& n : nn.nodes) {
    while (n > 64) {
      n = static_cast<int>(rng.uniform_int(49, 63));
    }
  }
  g.msgs.insert(g.msgs.end(), nm.msgs.begin(), nm.msgs.end());
  g.nodes.insert(g.nodes.end(), nn.nodes.begin(), nn.nodes.end());
  std::sort(g.msgs.begin(), g.msgs.end());
  g.msgs.erase(std::unique(g.msgs.begin(), g.msgs.end()), g.msgs.end());
  std::sort(g.nodes.begin(), g.nodes.end());
  g.nodes.erase(std::unique(g.nodes.begin(), g.nodes.end()), g.nodes.end());
  return g;
}

}  // namespace

const bench::Dataset& bebop_dataset() {
  static const bench::Dataset ds = [] {
    const std::string path = std::string(ACCLAIM_DATA_DIR) + "/bebop_full.csv";
    std::cerr << "[dataset] " << path << " (collecting on first run; cached afterwards)\n";
    return bench::load_or_collect(path, simnet::bebop_like(), full_grid(),
                                  coll::paper_collectives(), 7);
  }();
  return ds;
}

core::FeatureSpace bebop_space() {
  return core::FeatureSpace::from_grid(bench::FeatureGrid::p2(64, 32, 8, 1 << 20));
}

std::vector<bench::Scenario> p2_test_set(coll::Collective c) {
  return bebop_space().scenarios(c);
}

namespace {
std::vector<bench::Scenario> filter_scenarios(coll::Collective c, bool want_p2_nodes,
                                              bool want_p2_msgs) {
  std::vector<bench::Scenario> out;
  for (const bench::Scenario& s : bebop_dataset().scenarios(c)) {
    const bool p2n = util::is_power_of_two(static_cast<std::uint64_t>(s.nnodes));
    const bool p2m = util::is_power_of_two(s.msg_bytes);
    if (p2n == want_p2_nodes && p2m == want_p2_msgs) {
      out.push_back(s);
    }
  }
  return out;
}
}  // namespace

std::vector<bench::Scenario> nonp2_msg_test_set(coll::Collective c) {
  return filter_scenarios(c, /*p2 nodes=*/true, /*p2 msgs=*/false);
}

std::vector<bench::Scenario> nonp2_node_test_set(coll::Collective c) {
  return filter_scenarios(c, /*p2 nodes=*/false, /*p2 msgs=*/true);
}

std::vector<bench::Scenario> full_test_set(coll::Collective c) {
  return bebop_dataset().scenarios(c);
}

std::string results_path(const std::string& name) {
  std::filesystem::create_directories("results");
  return "results/" + name + ".csv";
}

std::vector<SweepRow> sweep_trace(const core::AcquisitionTrace& trace,
                                  const std::vector<double>& fractions,
                                  const std::vector<bench::Scenario>& test,
                                  const core::Evaluator& ev, std::uint64_t seed) {
  std::vector<SweepRow> rows;
  for (double f : fractions) {
    const auto k = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::llround(f * static_cast<double>(trace.steps.size()))));
    if (k > trace.steps.size()) {
      break;
    }
    const core::CollectiveModel model = core::train_on_prefix(trace, k, bench_forest(), seed);
    SweepRow row;
    row.fraction = f;
    row.points = k;
    row.cost_s = trace.prefix_cost_s(k);
    row.slowdown = ev.average_slowdown(test, model);
    rows.push_back(row);
  }
  return rows;
}

double converge_time_s(const std::vector<SweepRow>& rows, double threshold) {
  // First crossing that holds for >= 4 consecutive checkpoints (a lucky
  // prefix does not count; demanding it hold forever would penalize
  // ordinary refit noise late in the sweep).
  constexpr std::size_t kHold = 4;
  std::size_t held = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    held = rows[i].slowdown <= threshold ? held + 1 : 0;
    if (held >= kHold) {
      return rows[i + 1 - kHold].cost_s;
    }
  }
  return -1.0;
}

void banner(const std::string& figure, const std::string& claim) {
  // ACCLAIM_TRACE=file.jsonl streams telemetry events from any figure
  // harness without a rebuild. First banner() wins; tracing stays off (a
  // single relaxed load per instrument site) when the variable is unset.
  static const bool traced = [] {
    const char* path = std::getenv("ACCLAIM_TRACE");
    if (path != nullptr && *path != '\0') {
      telemetry::tracer().open_stream(path);
      std::cerr << "[telemetry] streaming trace to " << path << "\n";
      return true;
    }
    return false;
  }();
  (void)traced;
  std::cout << "==============================================================\n"
            << figure << "\n"
            << claim << "\n"
            << "==============================================================\n";
}

BenchEnv::BenchEnv(int& argc, char** argv) : start_(std::chrono::steady_clock::now()) {
  int threads = 0;
  int out = 1;  // argv[0] always survives
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (arg == "--threads" && has_value) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--metrics-out" && has_value) {
      metrics_out_ = argv[++i];
    } else if (arg == "--audit-out" && has_value) {
      audit_out_ = argv[++i];
    } else if (arg == "--json-out" && has_value) {
      json_out_dir_ = argv[++i];
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (threads > 0) {
    util::set_global_threads(threads);
  }
  if (!audit_out_.empty()) {
    telemetry::audit().open_stream(audit_out_);
    std::cerr << "[bench] streaming audit log to " << audit_out_ << "\n";
  }
  std::cerr << "[bench] compute threads: " << util::global_threads() << "\n";
}

void BenchEnv::set_figure(const std::string& id) { figure_ = id; }

void BenchEnv::add_row(util::Json row) {
  if (json_out_dir_.empty()) {
    return;
  }
  rows_.push_back(std::move(row));
}

BenchEnv::~BenchEnv() {
  if (!audit_out_.empty()) {
    const std::size_t n = telemetry::audit().recorded();
    telemetry::audit().disable();  // flushes and closes the stream
    std::cerr << "[bench] wrote audit log to " << audit_out_ << " (" << n << " decisions)\n";
  }
  if (!metrics_out_.empty()) {
    telemetry::publish_thread_pool_metrics();
    try {
      telemetry::metrics().dump_file(metrics_out_);
      std::cerr << "[telemetry] wrote metrics to " << metrics_out_ << "\n";
      // acclaim-lint: allow(hyg-catch-log) destructor must not throw; the
      // stderr note below is the handling (AC_LOG is not wired in bench).
    } catch (const Error& e) {
      std::cerr << "[telemetry] failed to write " << metrics_out_ << ": " << e.what() << "\n";
    }
  }
  if (json_out_dir_.empty()) {
    return;
  }
  // Never let artifact writing turn a passing figure into a failing one —
  // report and continue (the destructor also must not throw).
  try {
    if (figure_.empty()) {
      std::cerr << "[bench] --json-out ignored: harness never called set_figure()\n";
      return;
    }
    std::filesystem::create_directories(json_out_dir_);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
    util::Json doc = util::Json::object();
    doc["figure"] = figure_;
    doc["threads"] = util::global_threads();
    doc["host_wall_s"] = wall_s;
    doc["rows"] = std::move(rows_);
    const std::string path = json_out_dir_ + "/BENCH_" + figure_ + ".json";
    doc.dump_file(path);
    std::cerr << "[bench] wrote " << path << "\n";
    // acclaim-lint: allow(hyg-catch-log) destructor must not throw; the
    // stderr note below is the handling.
  } catch (const std::exception& e) {
    std::cerr << "[bench] failed to write BENCH json: " << e.what() << "\n";
  }
}

}  // namespace acclaim::benchharness

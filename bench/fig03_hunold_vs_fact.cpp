// Fig. 3 — Performance comparison of the two previous state-of-the-art
// autotuners. Paper: FACT stays below the 1.03 average-slowdown convergence
// criterion with far less training data than Hunold et al.'s
// random-sampling, model-per-algorithm design.
#include <iostream>

#include "common.hpp"
#include "util/csv.hpp"

using namespace acclaim;
using benchharness::bebop_dataset;
using benchharness::bebop_space;

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  benchharness::banner(
      "Fig. 3: Hunold et al. vs FACT (average slowdown vs % of training points)",
      "Expectation: FACT stays under 1.03 with far less data than Hunold");

  const bench::Dataset& ds = bebop_dataset();
  const core::FeatureSpace space = bebop_space();
  const core::Evaluator ev(ds);
  const std::vector<double> fractions = {0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80};

  // Aggregate over the four collectives (the paper's Fig. 3 is aggregate).
  std::vector<double> hunold_slow(fractions.size(), 0.0);
  std::vector<double> fact_slow(fractions.size(), 0.0);
  for (coll::Collective c : coll::paper_collectives()) {
    const auto test = benchharness::p2_test_set(c);

    // Hunold: per-algorithm forests on random point samples.
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      double sum = 0.0;
      constexpr int kSeeds = 2;
      for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
        core::HunoldAutotuner tuner(c, benchharness::bench_forest());
        tuner.fit(ds, fractions[i], seed);
        sum += ev.average_slowdown(
            test, [&](const bench::Scenario& s) { return tuner.select(s); });
      }
      hunold_slow[i] += sum / kSeeds;
    }

    // FACT: surrogate-driven acquisition order; prefix-trained primaries.
    // The surrogate refreshes frequently — a stale surrogate under argmax
    // picks long runs of near-identical points, which would understate FACT.
    core::DatasetEnvironment env(ds);
    core::SurrogateAcquisitionConfig scfg;
    scfg.surrogate = benchharness::bench_forest();
    scfg.refresh_every = 5;
    core::SurrogateAcquisition policy(c, 1, scfg);
    core::TraceConfig tcfg;
    tcfg.forest = benchharness::bench_forest();
    tcfg.refit_every = 50;
    tcfg.max_points =
        static_cast<int>(0.8 * static_cast<double>(space.candidates(c).size()));
    const core::AcquisitionTrace trace =
        core::trace_acquisition(c, space, env, policy, tcfg);
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      // Fraction of the candidate pool, expressed as a trace prefix.
      const auto k = std::max<std::size_t>(
          2, static_cast<std::size_t>(fractions[i] *
                                      static_cast<double>(space.candidates(c).size())));
      if (k > trace.steps.size()) {
        fact_slow[i] += fact_slow[i > 0 ? i - 1 : 0];
        continue;
      }
      const auto model = core::train_on_prefix(trace, k, benchharness::bench_forest(), 3);
      fact_slow[i] += ev.average_slowdown(test, model);
    }
    std::cout << "  traced " << coll::collective_name(c) << "\n";
  }

  util::TablePrinter table({"% of training points", "Hunold avg slowdown", "FACT avg slowdown"});
  util::CsvWriter csv(benchharness::results_path("fig03"));
  csv.header({"fraction_pct", "hunold_slowdown", "fact_slowdown"});
  double hunold_first_conv = -1.0;
  double fact_first_conv = -1.0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double h = hunold_slow[i] / 4.0;
    const double f = fact_slow[i] / 4.0;
    table.add_row_numeric(util::fixed(fractions[i] * 100.0, 1), {h, f});
    csv.row_numeric({fractions[i] * 100.0, h, f});
    if (h <= benchharness::kConvergence && hunold_first_conv < 0) {
      hunold_first_conv = fractions[i];
    }
    if (f <= benchharness::kConvergence && fact_first_conv < 0) {
      fact_first_conv = fractions[i];
    }
  }
  table.print(std::cout);
  std::cout << "\nFirst fraction under the 1.03 criterion:  FACT "
            << (fact_first_conv < 0 ? std::string("never")
                                    : util::fixed(fact_first_conv * 100, 1) + "%")
            << "  vs  Hunold "
            << (hunold_first_conv < 0 ? std::string("never")
                                      : util::fixed(hunold_first_conv * 100, 1) + "%")
            << "\n(paper: FACT converges with far less data than Hunold)\n";
  return 0;
}

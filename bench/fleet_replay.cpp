// Fleet-scale trace replay: cold start vs warm-start model transfer.
//
// Not a paper figure — this extends the Fig. 15 amortization story from one
// job to a whole machine's job stream (ROADMAP "fleet-scale trace replay").
// The harness replays the identical arrival stream twice against a fresh
// model store: once with transfer disabled (every job trains from scratch)
// and once with ModelStore::nearest warm starts. The claim under test: at
// fleet scale most jobs find a close donor, so the warm fleet reaches its
// selection quality with measurably less total simulated training time, and
// the fleet-wide mean break-even runtime drops accordingly.
//
// Machine-readable output (--json-out): BENCH_fleet.json with one row per
// arm (cold/warm) carrying the FleetTotals and the replay fingerprint; the
// scheduled CI lane parses it against tools/ci/fleet_thresholds.json.
// Exits non-zero when the warm arm fails to beat the cold arm on total
// training cost or mean speedup — the regression this bench exists to gate.
#include <cstring>
#include <iostream>
#include <string>

#include "common.hpp"
#include "fleet/fleet.hpp"
#include "simnet/machine.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

using namespace acclaim;

namespace {

/// Consumes `--flag value` from argv (BenchEnv already took the shared
/// flags; anything left here is fleet-specific).
bool take_flag(int& argc, char** argv, const char* flag, std::string& value) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      value = argv[i + 1];
      for (int j = i; j + 2 < argc; ++j) {
        argv[j] = argv[j + 2];
      }
      argc -= 2;
      return true;
    }
  }
  return false;
}

fleet::FleetConfig base_config(int jobs, std::uint64_t seed) {
  fleet::FleetConfig config;
  config.machine = simnet::bebop_like();
  config.stream.n_jobs = jobs;
  config.stream.mean_interarrival_s = 45.0;
  config.stream.node_choices = {4, 8, 16};
  config.stream.ppn_choices = {2, 4, 8};
  config.stream.seed = seed;
  // Small forests and point caps keep a >=1000-job replay tractable on one
  // host; the cold/warm comparison is internally consistent.
  config.learner.forest = benchharness::bench_forest();
  config.learner.max_points = 90;
  config.trace_calls = 128;
  return config;
}

util::Json arm_row(const std::string& arm, const fleet::FleetResult& r) {
  util::Json row = util::Json::object();
  row["arm"] = arm;
  row["jobs"] = r.totals.jobs;
  row["warm_jobs"] = r.totals.warm_jobs;
  row["points"] = r.totals.points;
  row["training_s"] = r.totals.training_s;
  row["mean_speedup"] = r.totals.mean_speedup;
  row["mean_breakeven_s"] = r.totals.mean_breakeven_s;
  row["amortizing_jobs"] = r.totals.amortizing_jobs;
  row["mean_transfer_distance"] = r.totals.mean_transfer_distance;
  row["makespan_s"] = r.totals.makespan_s;
  row["fingerprint"] = r.fingerprint;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  benchharness::BenchEnv bench_env(argc, argv);
  bench_env.set_figure("fleet");

  std::string value;
  int jobs = 1000;
  if (take_flag(argc, argv, "--jobs", value)) {
    jobs = std::stoi(value);
  }
  std::uint64_t seed = 7;
  if (take_flag(argc, argv, "--seed", value)) {
    seed = static_cast<std::uint64_t>(std::stoull(value));
  }

  benchharness::banner(
      "Fleet replay: warm-start model transfer vs cold start (" + std::to_string(jobs) + " jobs)",
      "Expectation: the warm fleet trains with measurably less total collection time");

  fleet::FleetConfig cold_cfg = base_config(jobs, seed);
  cold_cfg.warm_start = false;
  serve::ModelStore cold_store;
  const fleet::FleetResult cold = fleet::replay_fleet(cold_cfg, cold_store);

  fleet::FleetConfig warm_cfg = base_config(jobs, seed);
  warm_cfg.warm_start = true;
  serve::ModelStore warm_store;
  const fleet::FleetResult warm = fleet::replay_fleet(warm_cfg, warm_store);

  util::TablePrinter table({"arm", "jobs", "warm", "points", "training", "mean speedup",
                            "mean breakeven", "store keys"});
  const auto add = [&](const char* arm, const fleet::FleetResult& r, std::size_t store_keys) {
    table.add_row({arm, std::to_string(r.totals.jobs), std::to_string(r.totals.warm_jobs),
                   std::to_string(r.totals.points), util::format_seconds(r.totals.training_s),
                   util::fixed(r.totals.mean_speedup, 3) + "x",
                   util::format_seconds(r.totals.mean_breakeven_s), std::to_string(store_keys)});
  };
  add("cold", cold, cold_store.size());
  add("warm", warm, warm_store.size());
  table.print(std::cout);

  util::CsvWriter csv(benchharness::results_path("fleet"));
  csv.header({"arm", "jobs", "warm_jobs", "points", "training_s", "mean_speedup",
              "mean_breakeven_s", "makespan_s"});
  for (const auto* pair : {&cold, &warm}) {
    const fleet::FleetTotals& t = pair->totals;
    csv.row_numeric({pair == &cold ? 0.0 : 1.0, static_cast<double>(t.jobs),
                     static_cast<double>(t.warm_jobs), static_cast<double>(t.points),
                     t.training_s, t.mean_speedup, t.mean_breakeven_s, t.makespan_s});
  }
  bench_env.add_row(arm_row("cold", cold));
  bench_env.add_row(arm_row("warm", warm));

  const double cost_ratio =
      cold.totals.training_s > 0.0 ? warm.totals.training_s / cold.totals.training_s : 1.0;
  std::cout << "\nwarm/cold training-cost ratio: " << util::fixed(cost_ratio, 3)
            << "  (transfer hits: " << warm.totals.warm_jobs << "/" << warm.totals.jobs
            << ", mean distance "
            << util::fixed(warm.totals.mean_transfer_distance, 2) << ")\n";
  std::cout << "fingerprints: cold=" << cold.fingerprint << " warm=" << warm.fingerprint << "\n";

  // The gate: transfer must actually pay. A warm fleet that trains no
  // cheaper than cold, keeps almost no job warm, or gives back the tuned
  // selection quality is a regression.
  bool ok = true;
  if (warm.totals.training_s >= 0.95 * cold.totals.training_s) {
    std::cout << "FAIL: warm fleet did not train measurably cheaper than cold\n";
    ok = false;
  }
  if (warm.totals.warm_jobs * 2 < warm.totals.jobs) {
    std::cout << "FAIL: fewer than half the warm-arm jobs found a transfer donor\n";
    ok = false;
  }
  if (warm.totals.mean_speedup < cold.totals.mean_speedup - 0.02) {
    std::cout << "FAIL: warm fleet gave back tuned selection quality\n";
    ok = false;
  }
  if (warm.totals.amortizing_jobs == 0) {
    std::cout << "FAIL: no warm-arm job reaches a finite break-even runtime\n";
    ok = false;
  }
  if (ok) {
    std::cout << "OK: warm start reaches fleet-wide breakeven cheaper than cold start\n";
  }
  return ok ? 0 : 1;
}

file(REMOVE_RECURSE
  "CMakeFiles/fig14_production_training.dir/fig14_production_training.cpp.o"
  "CMakeFiles/fig14_production_training.dir/fig14_production_training.cpp.o.d"
  "fig14_production_training"
  "fig14_production_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_production_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig14_production_training.
# This may be replaced when dependencies are built.

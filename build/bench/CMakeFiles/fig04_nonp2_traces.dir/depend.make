# Empty dependencies file for fig04_nonp2_traces.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig04_nonp2_traces.dir/fig04_nonp2_traces.cpp.o"
  "CMakeFiles/fig04_nonp2_traces.dir/fig04_nonp2_traces.cpp.o.d"
  "fig04_nonp2_traces"
  "fig04_nonp2_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_nonp2_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig05_fact_nonp2.dir/fig05_fact_nonp2.cpp.o"
  "CMakeFiles/fig05_fact_nonp2.dir/fig05_fact_nonp2.cpp.o.d"
  "fig05_fact_nonp2"
  "fig05_fact_nonp2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fact_nonp2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

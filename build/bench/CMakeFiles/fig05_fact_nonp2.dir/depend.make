# Empty dependencies file for fig05_fact_nonp2.
# This may be replaced when dependencies are built.

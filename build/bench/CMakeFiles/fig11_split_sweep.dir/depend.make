# Empty dependencies file for fig11_split_sweep.
# This may be replaced when dependencies are built.

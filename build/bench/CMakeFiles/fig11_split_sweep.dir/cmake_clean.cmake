file(REMOVE_RECURSE
  "CMakeFiles/fig11_split_sweep.dir/fig11_split_sweep.cpp.o"
  "CMakeFiles/fig11_split_sweep.dir/fig11_split_sweep.cpp.o.d"
  "fig11_split_sweep"
  "fig11_split_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_split_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

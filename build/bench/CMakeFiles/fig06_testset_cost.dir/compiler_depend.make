# Empty compiler generated dependencies file for fig06_testset_cost.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_testset_cost.dir/fig06_testset_cost.cpp.o"
  "CMakeFiles/fig06_testset_cost.dir/fig06_testset_cost.cpp.o.d"
  "fig06_testset_cost"
  "fig06_testset_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_testset_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

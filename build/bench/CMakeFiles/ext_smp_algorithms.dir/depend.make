# Empty dependencies file for ext_smp_algorithms.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_smp_algorithms.dir/ext_smp_algorithms.cpp.o"
  "CMakeFiles/ext_smp_algorithms.dir/ext_smp_algorithms.cpp.o.d"
  "ext_smp_algorithms"
  "ext_smp_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_smp_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

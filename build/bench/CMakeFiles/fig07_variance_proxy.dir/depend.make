# Empty dependencies file for fig07_variance_proxy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_variance_proxy.dir/fig07_variance_proxy.cpp.o"
  "CMakeFiles/fig07_variance_proxy.dir/fig07_variance_proxy.cpp.o.d"
  "fig07_variance_proxy"
  "fig07_variance_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_variance_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

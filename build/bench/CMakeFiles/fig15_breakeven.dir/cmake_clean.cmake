file(REMOVE_RECURSE
  "CMakeFiles/fig15_breakeven.dir/fig15_breakeven.cpp.o"
  "CMakeFiles/fig15_breakeven.dir/fig15_breakeven.cpp.o.d"
  "fig15_breakeven"
  "fig15_breakeven.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig15_breakeven.
# This may be replaced when dependencies are built.

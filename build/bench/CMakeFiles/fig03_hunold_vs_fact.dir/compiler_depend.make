# Empty compiler generated dependencies file for fig03_hunold_vs_fact.
# This may be replaced when dependencies are built.

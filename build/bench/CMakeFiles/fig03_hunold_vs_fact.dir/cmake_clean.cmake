file(REMOVE_RECURSE
  "CMakeFiles/fig03_hunold_vs_fact.dir/fig03_hunold_vs_fact.cpp.o"
  "CMakeFiles/fig03_hunold_vs_fact.dir/fig03_hunold_vs_fact.cpp.o.d"
  "fig03_hunold_vs_fact"
  "fig03_hunold_vs_fact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_hunold_vs_fact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig12_convergence.dir/fig12_convergence.cpp.o"
  "CMakeFiles/fig12_convergence.dir/fig12_convergence.cpp.o.d"
  "fig12_convergence"
  "fig12_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

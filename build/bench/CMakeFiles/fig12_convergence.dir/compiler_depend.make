# Empty compiler generated dependencies file for fig12_convergence.
# This may be replaced when dependencies are built.

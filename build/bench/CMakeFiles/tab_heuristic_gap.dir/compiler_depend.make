# Empty compiler generated dependencies file for tab_heuristic_gap.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab_heuristic_gap.dir/tab_heuristic_gap.cpp.o"
  "CMakeFiles/tab_heuristic_gap.dir/tab_heuristic_gap.cpp.o.d"
  "tab_heuristic_gap"
  "tab_heuristic_gap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_heuristic_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

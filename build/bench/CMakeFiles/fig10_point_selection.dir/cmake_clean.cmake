file(REMOVE_RECURSE
  "CMakeFiles/fig10_point_selection.dir/fig10_point_selection.cpp.o"
  "CMakeFiles/fig10_point_selection.dir/fig10_point_selection.cpp.o.d"
  "fig10_point_selection"
  "fig10_point_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_point_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig10_point_selection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig13_parallel_collection.dir/fig13_parallel_collection.cpp.o"
  "CMakeFiles/fig13_parallel_collection.dir/fig13_parallel_collection.cpp.o.d"
  "fig13_parallel_collection"
  "fig13_parallel_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_parallel_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig13_parallel_collection.
# This may be replaced when dependencies are built.

# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_simnet[1]_include.cmake")
include("/root/repo/build/tests/test_minimpi[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_collective_costs[1]_include.cmake")
include("/root/repo/build/tests/test_collectives_extended[1]_include.cmake")
include("/root/repo/build/tests/test_benchdata[1]_include.cmake")
include("/root/repo/build/tests/test_ml[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_learning[1]_include.cmake")
include("/root/repo/build/tests/test_rulegen[1]_include.cmake")
include("/root/repo/build/tests/test_traces_platform[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_smp[1]_include.cmake")
include("/root/repo/build/tests/test_extended_costs[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_cli_args[1]_include.cmake")

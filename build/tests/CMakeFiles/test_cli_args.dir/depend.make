# Empty dependencies file for test_cli_args.
# This may be replaced when dependencies are built.

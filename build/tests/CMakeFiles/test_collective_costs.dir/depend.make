# Empty dependencies file for test_collective_costs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_collective_costs.dir/test_collective_costs.cpp.o"
  "CMakeFiles/test_collective_costs.dir/test_collective_costs.cpp.o.d"
  "test_collective_costs"
  "test_collective_costs.pdb"
  "test_collective_costs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collective_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_rulegen.dir/test_rulegen.cpp.o"
  "CMakeFiles/test_rulegen.dir/test_rulegen.cpp.o.d"
  "test_rulegen"
  "test_rulegen.pdb"
  "test_rulegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rulegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

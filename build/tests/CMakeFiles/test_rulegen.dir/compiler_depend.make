# Empty compiler generated dependencies file for test_rulegen.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_learning.
# This may be replaced when dependencies are built.

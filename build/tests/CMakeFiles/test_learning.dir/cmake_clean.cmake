file(REMOVE_RECURSE
  "CMakeFiles/test_learning.dir/test_learning.cpp.o"
  "CMakeFiles/test_learning.dir/test_learning.cpp.o.d"
  "test_learning"
  "test_learning.pdb"
  "test_learning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_collectives_extended.
# This may be replaced when dependencies are built.

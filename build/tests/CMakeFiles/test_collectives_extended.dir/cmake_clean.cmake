file(REMOVE_RECURSE
  "CMakeFiles/test_collectives_extended.dir/test_collectives_extended.cpp.o"
  "CMakeFiles/test_collectives_extended.dir/test_collectives_extended.cpp.o.d"
  "test_collectives_extended"
  "test_collectives_extended.pdb"
  "test_collectives_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_collectives_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_extended_costs.dir/test_extended_costs.cpp.o"
  "CMakeFiles/test_extended_costs.dir/test_extended_costs.cpp.o.d"
  "test_extended_costs"
  "test_extended_costs.pdb"
  "test_extended_costs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_extended_costs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_benchdata.dir/test_benchdata.cpp.o"
  "CMakeFiles/test_benchdata.dir/test_benchdata.cpp.o.d"
  "test_benchdata"
  "test_benchdata.pdb"
  "test_benchdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_benchdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

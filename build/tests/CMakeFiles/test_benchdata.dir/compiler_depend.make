# Empty compiler generated dependencies file for test_benchdata.
# This may be replaced when dependencies are built.

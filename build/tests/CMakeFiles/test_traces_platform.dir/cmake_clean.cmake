file(REMOVE_RECURSE
  "CMakeFiles/test_traces_platform.dir/test_traces_platform.cpp.o"
  "CMakeFiles/test_traces_platform.dir/test_traces_platform.cpp.o.d"
  "test_traces_platform"
  "test_traces_platform.pdb"
  "test_traces_platform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traces_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

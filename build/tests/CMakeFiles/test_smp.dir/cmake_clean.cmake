file(REMOVE_RECURSE
  "CMakeFiles/test_smp.dir/test_smp.cpp.o"
  "CMakeFiles/test_smp.dir/test_smp.cpp.o.d"
  "test_smp"
  "test_smp.pdb"
  "test_smp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

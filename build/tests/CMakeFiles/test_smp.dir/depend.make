# Empty dependencies file for test_smp.
# This may be replaced when dependencies are built.

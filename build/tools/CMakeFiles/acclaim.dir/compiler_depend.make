# Empty compiler generated dependencies file for acclaim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/acclaim.dir/acclaim_cli.cpp.o"
  "CMakeFiles/acclaim.dir/acclaim_cli.cpp.o.d"
  "CMakeFiles/acclaim.dir/cli_args.cpp.o"
  "CMakeFiles/acclaim.dir/cli_args.cpp.o.d"
  "acclaim"
  "acclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

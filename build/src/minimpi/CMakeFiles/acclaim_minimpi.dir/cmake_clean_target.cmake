file(REMOVE_RECURSE
  "libacclaim_minimpi.a"
)

# Empty compiler generated dependencies file for acclaim_minimpi.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/acclaim_minimpi.dir/cost_executor.cpp.o"
  "CMakeFiles/acclaim_minimpi.dir/cost_executor.cpp.o.d"
  "CMakeFiles/acclaim_minimpi.dir/data_executor.cpp.o"
  "CMakeFiles/acclaim_minimpi.dir/data_executor.cpp.o.d"
  "CMakeFiles/acclaim_minimpi.dir/ops.cpp.o"
  "CMakeFiles/acclaim_minimpi.dir/ops.cpp.o.d"
  "CMakeFiles/acclaim_minimpi.dir/schedule.cpp.o"
  "CMakeFiles/acclaim_minimpi.dir/schedule.cpp.o.d"
  "libacclaim_minimpi.a"
  "libacclaim_minimpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_minimpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minimpi/cost_executor.cpp" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/cost_executor.cpp.o" "gcc" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/cost_executor.cpp.o.d"
  "/root/repo/src/minimpi/data_executor.cpp" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/data_executor.cpp.o" "gcc" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/data_executor.cpp.o.d"
  "/root/repo/src/minimpi/ops.cpp" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/ops.cpp.o" "gcc" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/ops.cpp.o.d"
  "/root/repo/src/minimpi/schedule.cpp" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/schedule.cpp.o" "gcc" "src/minimpi/CMakeFiles/acclaim_minimpi.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/acclaim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/acclaim_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/acclaim_traces.dir/traces.cpp.o"
  "CMakeFiles/acclaim_traces.dir/traces.cpp.o.d"
  "libacclaim_traces.a"
  "libacclaim_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libacclaim_traces.a"
)

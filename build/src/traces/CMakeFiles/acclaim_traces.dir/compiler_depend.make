# Empty compiler generated dependencies file for acclaim_traces.
# This may be replaced when dependencies are built.

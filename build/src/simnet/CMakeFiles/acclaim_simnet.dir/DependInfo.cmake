
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/allocation.cpp" "src/simnet/CMakeFiles/acclaim_simnet.dir/allocation.cpp.o" "gcc" "src/simnet/CMakeFiles/acclaim_simnet.dir/allocation.cpp.o.d"
  "/root/repo/src/simnet/machine.cpp" "src/simnet/CMakeFiles/acclaim_simnet.dir/machine.cpp.o" "gcc" "src/simnet/CMakeFiles/acclaim_simnet.dir/machine.cpp.o.d"
  "/root/repo/src/simnet/network.cpp" "src/simnet/CMakeFiles/acclaim_simnet.dir/network.cpp.o" "gcc" "src/simnet/CMakeFiles/acclaim_simnet.dir/network.cpp.o.d"
  "/root/repo/src/simnet/topology.cpp" "src/simnet/CMakeFiles/acclaim_simnet.dir/topology.cpp.o" "gcc" "src/simnet/CMakeFiles/acclaim_simnet.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/acclaim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/acclaim_simnet.dir/allocation.cpp.o"
  "CMakeFiles/acclaim_simnet.dir/allocation.cpp.o.d"
  "CMakeFiles/acclaim_simnet.dir/machine.cpp.o"
  "CMakeFiles/acclaim_simnet.dir/machine.cpp.o.d"
  "CMakeFiles/acclaim_simnet.dir/network.cpp.o"
  "CMakeFiles/acclaim_simnet.dir/network.cpp.o.d"
  "CMakeFiles/acclaim_simnet.dir/topology.cpp.o"
  "CMakeFiles/acclaim_simnet.dir/topology.cpp.o.d"
  "libacclaim_simnet.a"
  "libacclaim_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for acclaim_simnet.
# This may be replaced when dependencies are built.

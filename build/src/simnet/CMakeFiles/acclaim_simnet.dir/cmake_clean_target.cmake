file(REMOVE_RECURSE
  "libacclaim_simnet.a"
)

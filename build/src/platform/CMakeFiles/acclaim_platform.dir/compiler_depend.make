# Empty compiler generated dependencies file for acclaim_platform.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/app_model.cpp" "src/platform/CMakeFiles/acclaim_platform.dir/app_model.cpp.o" "gcc" "src/platform/CMakeFiles/acclaim_platform.dir/app_model.cpp.o.d"
  "/root/repo/src/platform/trace_replay.cpp" "src/platform/CMakeFiles/acclaim_platform.dir/trace_replay.cpp.o" "gcc" "src/platform/CMakeFiles/acclaim_platform.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/acclaim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traces/CMakeFiles/acclaim_traces.dir/DependInfo.cmake"
  "/root/repo/build/src/benchdata/CMakeFiles/acclaim_benchdata.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/acclaim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/acclaim_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/acclaim_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/acclaim_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/acclaim_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libacclaim_platform.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/acclaim_platform.dir/app_model.cpp.o"
  "CMakeFiles/acclaim_platform.dir/app_model.cpp.o.d"
  "CMakeFiles/acclaim_platform.dir/trace_replay.cpp.o"
  "CMakeFiles/acclaim_platform.dir/trace_replay.cpp.o.d"
  "libacclaim_platform.a"
  "libacclaim_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

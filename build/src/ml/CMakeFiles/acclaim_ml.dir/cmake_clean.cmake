file(REMOVE_RECURSE
  "CMakeFiles/acclaim_ml.dir/forest.cpp.o"
  "CMakeFiles/acclaim_ml.dir/forest.cpp.o.d"
  "CMakeFiles/acclaim_ml.dir/metrics.cpp.o"
  "CMakeFiles/acclaim_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/acclaim_ml.dir/tree.cpp.o"
  "CMakeFiles/acclaim_ml.dir/tree.cpp.o.d"
  "libacclaim_ml.a"
  "libacclaim_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

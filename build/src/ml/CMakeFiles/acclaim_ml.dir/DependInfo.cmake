
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/forest.cpp" "src/ml/CMakeFiles/acclaim_ml.dir/forest.cpp.o" "gcc" "src/ml/CMakeFiles/acclaim_ml.dir/forest.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/acclaim_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/acclaim_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/acclaim_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/acclaim_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/acclaim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libacclaim_ml.a"
)

# Empty dependencies file for acclaim_ml.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libacclaim_core.a"
)

# Empty compiler generated dependencies file for acclaim_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/acclaim_core.dir/acquisition.cpp.o"
  "CMakeFiles/acclaim_core.dir/acquisition.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/active_learner.cpp.o"
  "CMakeFiles/acclaim_core.dir/active_learner.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/baselines.cpp.o"
  "CMakeFiles/acclaim_core.dir/baselines.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/env.cpp.o"
  "CMakeFiles/acclaim_core.dir/env.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/evaluator.cpp.o"
  "CMakeFiles/acclaim_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/feature_space.cpp.o"
  "CMakeFiles/acclaim_core.dir/feature_space.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/heuristic.cpp.o"
  "CMakeFiles/acclaim_core.dir/heuristic.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/model.cpp.o"
  "CMakeFiles/acclaim_core.dir/model.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/pipeline.cpp.o"
  "CMakeFiles/acclaim_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/rulegen.cpp.o"
  "CMakeFiles/acclaim_core.dir/rulegen.cpp.o.d"
  "CMakeFiles/acclaim_core.dir/scheduler.cpp.o"
  "CMakeFiles/acclaim_core.dir/scheduler.cpp.o.d"
  "libacclaim_core.a"
  "libacclaim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acquisition.cpp" "src/core/CMakeFiles/acclaim_core.dir/acquisition.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/acquisition.cpp.o.d"
  "/root/repo/src/core/active_learner.cpp" "src/core/CMakeFiles/acclaim_core.dir/active_learner.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/active_learner.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/acclaim_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/env.cpp" "src/core/CMakeFiles/acclaim_core.dir/env.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/env.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/acclaim_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/feature_space.cpp" "src/core/CMakeFiles/acclaim_core.dir/feature_space.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/feature_space.cpp.o.d"
  "/root/repo/src/core/heuristic.cpp" "src/core/CMakeFiles/acclaim_core.dir/heuristic.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/heuristic.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/acclaim_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/model.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/acclaim_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/rulegen.cpp" "src/core/CMakeFiles/acclaim_core.dir/rulegen.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/rulegen.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/core/CMakeFiles/acclaim_core.dir/scheduler.cpp.o" "gcc" "src/core/CMakeFiles/acclaim_core.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchdata/CMakeFiles/acclaim_benchdata.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/acclaim_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/acclaim_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/acclaim_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/acclaim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/acclaim_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

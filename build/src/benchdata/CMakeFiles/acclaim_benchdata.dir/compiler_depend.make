# Empty compiler generated dependencies file for acclaim_benchdata.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libacclaim_benchdata.a"
)

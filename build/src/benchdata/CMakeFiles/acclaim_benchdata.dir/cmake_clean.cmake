file(REMOVE_RECURSE
  "CMakeFiles/acclaim_benchdata.dir/dataset.cpp.o"
  "CMakeFiles/acclaim_benchdata.dir/dataset.cpp.o.d"
  "CMakeFiles/acclaim_benchdata.dir/grid.cpp.o"
  "CMakeFiles/acclaim_benchdata.dir/grid.cpp.o.d"
  "CMakeFiles/acclaim_benchdata.dir/microbenchmark.cpp.o"
  "CMakeFiles/acclaim_benchdata.dir/microbenchmark.cpp.o.d"
  "CMakeFiles/acclaim_benchdata.dir/point.cpp.o"
  "CMakeFiles/acclaim_benchdata.dir/point.cpp.o.d"
  "libacclaim_benchdata.a"
  "libacclaim_benchdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_benchdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchdata/dataset.cpp" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/dataset.cpp.o" "gcc" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/dataset.cpp.o.d"
  "/root/repo/src/benchdata/grid.cpp" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/grid.cpp.o" "gcc" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/grid.cpp.o.d"
  "/root/repo/src/benchdata/microbenchmark.cpp" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/microbenchmark.cpp.o" "gcc" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/microbenchmark.cpp.o.d"
  "/root/repo/src/benchdata/point.cpp" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/point.cpp.o" "gcc" "src/benchdata/CMakeFiles/acclaim_benchdata.dir/point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collectives/CMakeFiles/acclaim_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/acclaim_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/acclaim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/minimpi/CMakeFiles/acclaim_minimpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

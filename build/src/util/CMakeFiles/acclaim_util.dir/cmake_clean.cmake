file(REMOVE_RECURSE
  "CMakeFiles/acclaim_util.dir/csv.cpp.o"
  "CMakeFiles/acclaim_util.dir/csv.cpp.o.d"
  "CMakeFiles/acclaim_util.dir/error.cpp.o"
  "CMakeFiles/acclaim_util.dir/error.cpp.o.d"
  "CMakeFiles/acclaim_util.dir/json.cpp.o"
  "CMakeFiles/acclaim_util.dir/json.cpp.o.d"
  "CMakeFiles/acclaim_util.dir/log.cpp.o"
  "CMakeFiles/acclaim_util.dir/log.cpp.o.d"
  "CMakeFiles/acclaim_util.dir/rng.cpp.o"
  "CMakeFiles/acclaim_util.dir/rng.cpp.o.d"
  "CMakeFiles/acclaim_util.dir/stats.cpp.o"
  "CMakeFiles/acclaim_util.dir/stats.cpp.o.d"
  "CMakeFiles/acclaim_util.dir/table.cpp.o"
  "CMakeFiles/acclaim_util.dir/table.cpp.o.d"
  "CMakeFiles/acclaim_util.dir/units.cpp.o"
  "CMakeFiles/acclaim_util.dir/units.cpp.o.d"
  "libacclaim_util.a"
  "libacclaim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

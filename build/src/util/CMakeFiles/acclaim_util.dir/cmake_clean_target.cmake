file(REMOVE_RECURSE
  "libacclaim_util.a"
)

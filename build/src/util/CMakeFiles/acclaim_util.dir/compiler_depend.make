# Empty compiler generated dependencies file for acclaim_util.
# This may be replaced when dependencies are built.

# Empty dependencies file for acclaim_collectives.
# This may be replaced when dependencies are built.

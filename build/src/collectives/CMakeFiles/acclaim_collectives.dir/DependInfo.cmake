
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/collectives/allgather.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/allgather.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/allgather.cpp.o.d"
  "/root/repo/src/collectives/allreduce.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/allreduce.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/allreduce.cpp.o.d"
  "/root/repo/src/collectives/alltoall.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/alltoall.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/alltoall.cpp.o.d"
  "/root/repo/src/collectives/barrier.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/barrier.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/barrier.cpp.o.d"
  "/root/repo/src/collectives/bcast.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/bcast.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/bcast.cpp.o.d"
  "/root/repo/src/collectives/engines.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/engines.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/engines.cpp.o.d"
  "/root/repo/src/collectives/gather_scatter.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/gather_scatter.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/gather_scatter.cpp.o.d"
  "/root/repo/src/collectives/intervals.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/intervals.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/intervals.cpp.o.d"
  "/root/repo/src/collectives/pipeline_chain.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/pipeline_chain.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/pipeline_chain.cpp.o.d"
  "/root/repo/src/collectives/reduce.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/reduce.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/reduce.cpp.o.d"
  "/root/repo/src/collectives/reduce_scatter.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/reduce_scatter.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/reduce_scatter.cpp.o.d"
  "/root/repo/src/collectives/smp.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/smp.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/smp.cpp.o.d"
  "/root/repo/src/collectives/types.cpp" "src/collectives/CMakeFiles/acclaim_collectives.dir/types.cpp.o" "gcc" "src/collectives/CMakeFiles/acclaim_collectives.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minimpi/CMakeFiles/acclaim_minimpi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/acclaim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/acclaim_simnet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/acclaim_collectives.dir/allgather.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/allgather.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/allreduce.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/allreduce.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/alltoall.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/alltoall.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/barrier.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/barrier.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/bcast.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/bcast.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/engines.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/engines.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/gather_scatter.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/gather_scatter.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/intervals.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/intervals.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/pipeline_chain.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/pipeline_chain.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/reduce.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/reduce.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/reduce_scatter.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/reduce_scatter.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/smp.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/smp.cpp.o.d"
  "CMakeFiles/acclaim_collectives.dir/types.cpp.o"
  "CMakeFiles/acclaim_collectives.dir/types.cpp.o.d"
  "libacclaim_collectives.a"
  "libacclaim_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acclaim_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libacclaim_collectives.a"
)

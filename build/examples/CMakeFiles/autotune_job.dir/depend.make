# Empty dependencies file for autotune_job.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autotune_job.dir/autotune_job.cpp.o"
  "CMakeFiles/autotune_job.dir/autotune_job.cpp.o.d"
  "autotune_job"
  "autotune_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// acclaim_lint lexical layer: one C++-shaped token stream per file.
//
// The lexer is deliberately not a preprocessor or a full C++ front end — it
// produces exactly what the semantic layer (sema.hpp) and the checks
// (checks.cpp) need:
//  * identifiers / numbers / punctuation with line numbers;
//  * string literals with their *contents* kept (the drift checks compare
//    metric names against the telemetry registry);
//  * comments and preprocessor lines stripped, except that
//      - `// acclaim-lint: allow(<id>, ...)` comments are recorded as
//        line -> allowed-check-id sets, and
//      - `#include "..."` targets are recorded for the include graph.
//
// An allow comment covers its own line, the line after it, and — once
// extend_allows_to_statements() has run — every physical line of the
// statement that starts under it, so one allow above a multi-line
// parallel_for call suppresses findings anywhere inside the call.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace acclaim::lint {

struct Tok {
  enum class Kind { Ident, Num, Str, Punct };
  Kind kind;
  std::string text;
  std::size_t line;
};

/// line -> check ids allowed on that line ("all" allows everything).
using AllowMap = std::map<std::size_t, std::set<std::string>>;

struct LexedFile {
  std::vector<Tok> toks;
  AllowMap allows;
  /// Statement-extent coverage derived from `allows` by
  /// extend_allows_to_statements(). Kept separate because it is matched on
  /// the exact finding line only: comment lines also cover the line below
  /// them, and folding the extension into `allows` would let a suppression
  /// bleed one line past its statement onto the next one.
  AllowMap extended_allows;
  /// Targets of `#include "..."` directives (quoted form only — angle
  /// includes are system headers the project checks never need).
  std::vector<std::string> includes;
  std::size_t bytes = 0;
  /// Set once extend_allows_to_statements() has run (it must not re-seed
  /// extensions from the lines it added itself).
  bool allows_extended = false;
};

LexedFile lex(const std::string& src);

/// Extends every allow comment's coverage over the full statement that
/// starts on the covered line: scanning forward from the first token at or
/// after the allow line, all lines up to the statement's terminating `;`
/// (or the close of a brace block opened during the scan) inherit the
/// allowed ids. Idempotent; called once per file by the analysis layer.
void extend_allows_to_statements(LexedFile& file);

}  // namespace acclaim::lint

#include "lint/sarif.hpp"

#include <cstddef>
#include <map>
#include <string>

namespace acclaim::lint {

namespace {

const char* sarif_level(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

}  // namespace

util::Json sarif_report(const std::vector<Finding>& findings) {
  util::Json doc = util::Json::object();
  doc["$schema"] =
      "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
      "sarif-schema-2.1.0.json";
  doc["version"] = "2.1.0";

  util::Json driver = util::Json::object();
  driver["name"] = "acclaim-lint";
  driver["informationUri"] = "https://github.com/";
  util::Json rules = util::Json::array();
  std::map<std::string, std::size_t> rule_index;
  for (const CheckInfo& c : all_checks()) {
    util::Json rule = util::Json::object();
    rule["id"] = c.id;
    util::Json text = util::Json::object();
    text["text"] = c.summary;
    rule["shortDescription"] = std::move(text);
    util::Json config = util::Json::object();
    config["level"] = sarif_level(c.severity);
    rule["defaultConfiguration"] = std::move(config);
    rule_index.emplace(c.id, rule_index.size());
    rules.push_back(std::move(rule));
  }
  driver["rules"] = std::move(rules);
  util::Json tool = util::Json::object();
  tool["driver"] = std::move(driver);

  util::Json results = util::Json::array();
  for (const Finding& f : findings) {
    util::Json r = util::Json::object();
    r["ruleId"] = f.check;
    const auto it = rule_index.find(f.check);
    r["ruleIndex"] = static_cast<long long>(it == rule_index.end() ? 0 : it->second);
    r["level"] = sarif_level(f.severity);
    util::Json msg = util::Json::object();
    msg["text"] = f.hint.empty() ? f.message : f.message + " [fix: " + f.hint + "]";
    r["message"] = std::move(msg);
    util::Json artifact = util::Json::object();
    artifact["uri"] = f.file;
    util::Json region = util::Json::object();
    region["startLine"] = static_cast<long long>(f.line == 0 ? 1 : f.line);
    util::Json physical = util::Json::object();
    physical["artifactLocation"] = std::move(artifact);
    physical["region"] = std::move(region);
    util::Json location = util::Json::object();
    location["physicalLocation"] = std::move(physical);
    util::Json locations = util::Json::array();
    locations.push_back(std::move(location));
    r["locations"] = std::move(locations);
    results.push_back(std::move(r));
  }

  util::Json run = util::Json::object();
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);
  util::Json runs = util::Json::array();
  runs.push_back(std::move(run));
  doc["runs"] = std::move(runs);
  return doc;
}

}  // namespace acclaim::lint

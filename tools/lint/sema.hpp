// acclaim_lint semantic layer: scoped token tree + per-file symbol tables.
//
// Built once per file from the lexed token stream (lexer.hpp) and shared by
// every check. The tree is a brace-nesting skeleton — namespaces, classes,
// functions, lambdas, and plain blocks — classified from the statement head
// before each `{`. It is deliberately approximate (no template
// instantiation, no overload resolution): the flow-aware checks only need
// "which function am I in", "when does this guard's block close", and "what
// simplified type does this name have".
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace acclaim::lint {

/// Simplified variable types the checks reason about.
enum class Sym { Rng, Unordered, Float, Atomic, Mutex, Thread };

using DeclMap = std::map<std::string, Sym>;

/// Harvests declarations of the tracked types into `decls` (first
/// declaration of a name wins, matching companion-header precedence).
void harvest_decls(const std::vector<Tok>& toks, DeclMap& decls);

struct Scope {
  enum class Kind { File, Namespace, Class, Function, Lambda, Block };
  Kind kind = Kind::Block;
  /// Unqualified name for Namespace/Class/Function ("" when anonymous or
  /// not syntactically recoverable, e.g. operator overloads).
  std::string name;
  /// Token index of the opening `{` (File: 0) and its matching `}`
  /// (File: toks.size()).
  std::size_t open = 0;
  std::size_t close = 0;
  /// Index into the scope vector; -1 for the File scope.
  int parent = -1;
};

/// One analyzed file: token stream plus the derived semantic structures.
struct FileIndex {
  std::string path;
  LexedFile lex;
  /// scopes[0] is always the File scope; children appear after parents.
  std::vector<Scope> scopes;
  /// File-global declarations (scope-free by design: the legacy checks and
  /// the taint pass both want header members visible inside methods).
  DeclMap decls;
};

/// Builds the scope tree for a token stream.
std::vector<Scope> build_scopes(const std::vector<Tok>& toks);

/// Lexes `content` and derives scopes + declarations. `path` is the
/// repo-relative path used for layer scoping and reporting.
FileIndex build_file_index(std::string path, const std::string& content);

/// Index of the deepest scope whose extent contains token `tok_idx`
/// (always at least 0, the File scope).
int innermost_scope(const std::vector<Scope>& scopes, std::size_t tok_idx);

/// Walks parents from `scope_idx` to the nearest Function or Lambda scope;
/// -1 when the token is at namespace/file level.
int enclosing_function(const std::vector<Scope>& scopes, int scope_idx);

// Token-tree matching helpers shared by the checks (indices are into the
// token vector; a failed match returns toks.size()).
std::size_t match_paren(const std::vector<Tok>& toks, std::size_t open);
std::size_t match_brace(const std::vector<Tok>& toks, std::size_t open);
std::size_t match_bracket(const std::vector<Tok>& toks, std::size_t open);

/// Advances past a balanced <...> starting at toks[i] == "<"; returns the
/// index just after the matching ">". Not confused by "<<" (lexed as one
/// token, which cannot appear inside template arguments in this codebase).
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t i);

}  // namespace acclaim::lint

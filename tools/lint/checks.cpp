#include "lint/checks.hpp"

#include <algorithm>
#include <utility>

namespace acclaim::lint {

namespace {

bool has_prefix(const std::string& path, const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(), [&](const std::string& p) {
    return path.rfind(p, 0) == 0;
  });
}

bool is_test_path(const std::string& path) { return path.rfind("tests/", 0) == 0; }

bool is_p(const Tok& t, const char* text) {
  return t.kind == Tok::Kind::Punct && t.text == text;
}

bool is_id(const Tok& t, const char* text) {
  return t.kind == Tok::Kind::Ident && t.text == text;
}

const std::set<std::string>& rand_idents() {
  static const std::set<std::string> kSet = {
      "random_device", "mt19937",      "mt19937_64",     "minstd_rand",
      "minstd_rand0",  "ranlux24",     "ranlux48",       "knuth_b",
      "default_random_engine",         "uniform_int_distribution",
      "uniform_real_distribution",     "normal_distribution",
      "bernoulli_distribution",        "poisson_distribution",
      "discrete_distribution",
  };
  return kSet;
}

const std::set<std::string>& rand_calls() {
  static const std::set<std::string> kSet = {"rand", "srand", "rand_r", "drand48", "lrand48"};
  return kSet;
}

const std::set<std::string>& wallclock_idents() {
  static const std::set<std::string> kSet = {"system_clock", "gettimeofday", "localtime",
                                             "gmtime", "mktime"};
  return kSet;
}

const std::set<std::string>& wallclock_calls() {
  static const std::set<std::string> kSet = {"time", "clock"};
  return kSet;
}

bool is_unordered_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
         s == "unordered_multiset";
}

bool is_float_literal(const Tok& t) {
  if (t.kind != Tok::Kind::Num) {
    return false;
  }
  if (t.text.size() > 1 && t.text[0] == '0' && (t.text[1] == 'x' || t.text[1] == 'X')) {
    return false;
  }
  return t.text.find('.') != std::string::npos || t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos;
}

// ---------------------------------------------------------------------------
// Taint-lite model
// ---------------------------------------------------------------------------

/// Width class of an untrusted parse: 'i' = int-sized, 'l' = long-sized,
/// 'f' = floating. Narrowing is judged against the width, so
/// `static_cast<int>(std::stoi(s))` stays silent while
/// `static_cast<int>(std::stoull(s))` fires.
char taint_source_kind(const std::string& callee) {
  static const std::map<std::string, char> kSources = {
      {"stoi", 'i'},     {"atoi", 'i'},     {"stol", 'l'},      {"stoll", 'l'},
      {"stoul", 'l'},    {"stoull", 'l'},   {"atol", 'l'},      {"atoll", 'l'},
      {"strtol", 'l'},   {"strtoul", 'l'},  {"strtoll", 'l'},   {"strtoull", 'l'},
      {"parse_bytes", 'l'},
      {"stod", 'f'},     {"stof", 'f'},     {"atof", 'f'},      {"strtod", 'f'},
  };
  const auto it = kSources.find(callee);
  return it == kSources.end() ? '\0' : it->second;
}

/// Functions whose return value counts as range-validated. Prefix families
/// cover the repo's own guards (serve::checked_comm_size, validate_request,
/// require_*); clamp/min/max bound the value by construction; int_field is
/// the NDJSON accessor that range-checks in the double domain.
bool is_sanitizer_name(const std::string& callee) {
  return callee.rfind("checked_", 0) == 0 || callee.rfind("validate", 0) == 0 ||
         callee.rfind("require", 0) == 0 || callee == "int_field" || callee == "clamp" ||
         callee == "min" || callee == "max";
}

bool is_narrow_target(const std::vector<std::string>& type_idents, char kind) {
  static const std::set<std::string> kWide = {"long",   "int64_t", "uint64_t", "size_t",
                                             "double", "int64",   "uint64",   "ptrdiff_t"};
  static const std::set<std::string> kNarrow16 = {"short", "char", "int8_t", "int16_t",
                                                  "uint8_t", "uint16_t", "char8_t"};
  static const std::set<std::string> kNarrow32 = {"int", "unsigned", "int32_t", "uint32_t"};
  for (const std::string& t : type_idents) {
    if (kWide.count(t)) {
      return false;
    }
  }
  for (const std::string& t : type_idents) {
    if (kNarrow16.count(t)) {
      return true;
    }
    if (kNarrow32.count(t) && (kind == 'l' || kind == 'f')) {
      return true;
    }
    if (t == "float" && kind == 'f') {
      return true;
    }
  }
  return false;
}

const std::set<std::string>& alloc_callees() {
  static const std::set<std::string> kSet = {"resize", "reserve", "malloc", "calloc",
                                             "realloc", "alloca"};
  return kSet;
}

/// An unmatched opener (`(` or `[`) still open at `idx`, innermost first.
struct OpenSite {
  std::size_t pos = 0;
  bool bracket = false;
};

std::size_t stmt_begin(const std::vector<Tok>& toks, std::size_t idx) {
  for (std::size_t j = idx; j-- > 0;) {
    if (toks[j].kind == Tok::Kind::Punct &&
        (toks[j].text == ";" || toks[j].text == "{" || toks[j].text == "}")) {
      return j + 1;
    }
  }
  return 0;
}

std::vector<OpenSite> enclosing_opens(const std::vector<Tok>& toks, std::size_t idx,
                                      std::size_t sb) {
  std::vector<OpenSite> opens;
  int paren = 0;
  int bracket = 0;
  for (std::size_t j = idx; j-- > sb;) {
    if (toks[j].kind != Tok::Kind::Punct) {
      continue;
    }
    const std::string& t = toks[j].text;
    if (t == ")") {
      ++paren;
    } else if (t == "(") {
      if (paren == 0) {
        opens.push_back({j, false});
      } else {
        --paren;
      }
    } else if (t == "]") {
      ++bracket;
    } else if (t == "[") {
      if (bracket == 0) {
        opens.push_back({j, true});
      } else {
        --bracket;
      }
    }
  }
  return opens;
}

/// Start of the member chain ending at `idx` (`arrival . nnodes` -> index of
/// `arrival`; `std :: stoi` -> index of `std`).
std::size_t chain_begin(const std::vector<Tok>& toks, std::size_t idx) {
  std::size_t b = idx;
  while (b >= 2 && toks[b - 1].kind == Tok::Kind::Punct &&
         (toks[b - 1].text == "." || toks[b - 1].text == "->" || toks[b - 1].text == "::") &&
         toks[b - 2].kind == Tok::Kind::Ident) {
    b -= 2;
  }
  return b;
}

/// The identifier naming the call whose `(` sits at `open`; walks back over
/// a template argument list (`static_cast<int>(` -> "static_cast").
/// `type_idents`, when non-null, receives the identifiers inside the <...>.
std::string callee_of(const std::vector<Tok>& toks, std::size_t open,
                      std::vector<std::string>* type_idents = nullptr) {
  if (open == 0) {
    return "";
  }
  std::size_t j = open - 1;
  if (is_p(toks[j], ">")) {
    int angle = 0;
    while (true) {
      if (is_p(toks[j], ">")) {
        ++angle;
      } else if (is_p(toks[j], "<")) {
        if (--angle == 0) {
          break;
        }
      } else if (type_idents != nullptr && toks[j].kind == Tok::Kind::Ident) {
        type_idents->push_back(toks[j].text);
      }
      if (j == 0) {
        return "";
      }
      --j;
    }
    if (j == 0) {
      return "";
    }
    --j;
  }
  return toks[j].kind == Tok::Kind::Ident ? toks[j].text : "";
}

bool is_comparison(const Tok& t) {
  return t.kind == Tok::Kind::Punct &&
         (t.text == "<" || t.text == ">" || t.text == "<=" || t.text == ">=" ||
          t.text == "==" || t.text == "!=");
}

bool is_operand_end(const Tok& t) {
  return t.kind == Tok::Kind::Ident || t.kind == Tok::Kind::Num || is_p(t, ")") ||
         is_p(t, "]");
}

bool is_operand_start(const Tok& t) {
  return t.kind == Tok::Kind::Ident || t.kind == Tok::Kind::Num || is_p(t, "(");
}

/// Suppression lookup: an allow comment covers its own line and the line
/// below it; statement-extent coverage (extended_allows) matches the exact
/// finding line only, so it cannot bleed onto the next statement.
bool line_suppressed(const LexedFile& lex, const std::string& check, std::size_t line) {
  for (std::size_t l : {line, line > 0 ? line - 1 : line}) {
    auto it = lex.allows.find(l);
    if (it != lex.allows.end() && (it->second.count(check) || it->second.count("all"))) {
      return true;
    }
  }
  auto it = lex.extended_allows.find(line);
  return it != lex.extended_allows.end() &&
         (it->second.count(check) || it->second.count("all"));
}

/// CamelCase -> snake_case ("TrainingIteration" -> "training_iteration").
std::string snake_case(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c >= 'A' && c <= 'Z') {
      if (!out.empty()) {
        out.push_back('_');
      }
      out.push_back(static_cast<char>(c - 'A' + 'a'));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-file analyzer
// ---------------------------------------------------------------------------

struct Analyzer {
  const FileIndex& file;
  const LintOptions& opt;
  const DeclMap& decls;
  const std::set<std::string>& tainted_fields;
  const std::vector<Tok>& toks;
  std::vector<Finding> findings;

  Analyzer(const FileIndex& f, const LintOptions& o, const DeclMap& d,
           const std::set<std::string>& tf)
      : file(f), opt(o), decls(d), tainted_fields(tf), toks(f.lex.toks) {}

  bool suppressed(const std::string& check, std::size_t line) const {
    return line_suppressed(file.lex, check, line);
  }

  void report(const std::string& check, std::size_t line, const std::string& message,
              const std::string& hint = "") {
    if (suppressed(check, line)) {
      return;
    }
    findings.push_back({check, check_severity(check), file.path, line, message, hint});
  }

  const Tok* prev_tok(std::size_t i) const { return i > 0 ? &toks[i - 1] : nullptr; }
  const Tok* next_tok(std::size_t i) const {
    return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
  }

  bool prev_is_member_or_scope(std::size_t i) const {
    const Tok* p = prev_tok(i);
    return p != nullptr && p->kind == Tok::Kind::Punct &&
           (p->text == "." || p->text == "->" || p->text == "::");
  }

  bool prev_is_member(std::size_t i) const {
    const Tok* p = prev_tok(i);
    return p != nullptr && p->kind == Tok::Kind::Punct && (p->text == "." || p->text == "->");
  }

  // --- det-rand / det-wallclock ------------------------------------------
  void check_det_layer_tokens() {
    if (!has_prefix(file.path, opt.det_layers)) {
      return;
    }
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Ident || prev_is_member(i)) {
        continue;
      }
      const std::string& t = toks[i].text;
      const Tok* nx = next_tok(i);
      const bool call = nx != nullptr && is_p(*nx, "(");
      if (rand_idents().count(t) || (call && rand_calls().count(t))) {
        report("det-rand", toks[i].line,
               "'" + t + "' in deterministic layer; use util::Rng / Rng::stream");
      } else if (wallclock_idents().count(t) || (call && wallclock_calls().count(t))) {
        report("det-wallclock", toks[i].line,
               "'" + t + "' reads the wall clock in a deterministic layer");
      }
    }
  }

  // --- det-unordered-iter -------------------------------------------------
  void check_unordered_iteration() {
    if (!has_prefix(file.path, opt.ordered_iter_layers)) {
      return;
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_id(toks[i], "for") || !is_p(toks[i + 1], "(")) {
        continue;
      }
      const std::size_t close = match_paren(toks, i + 1);
      // Range-for: a ':' at parenthesis depth 1 ("::" lexes as one token).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (toks[j].kind != Tok::Kind::Punct) {
          continue;
        }
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          --depth;
        } else if (toks[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0) {
        continue;
      }
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind != Tok::Kind::Ident) {
          continue;
        }
        auto it = decls.find(toks[j].text);
        const bool unordered_var =
            it != decls.end() && it->second == Sym::Unordered && !prev_is_member(j);
        if (unordered_var || is_unordered_name(toks[j].text)) {
          report("det-unordered-iter", toks[j].line,
                 "range-for over unordered container '" + toks[j].text + "'");
          break;
        }
      }
    }
  }

  // --- parallel-region checks --------------------------------------------
  void check_parallel_regions() {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Ident ||
          (toks[i].text != "parallel_for" && toks[i].text != "submit") ||
          !is_p(toks[i + 1], "(")) {
        continue;
      }
      const std::size_t call_close = match_paren(toks, i + 1);
      // Lambdas are the arguments whose '[' directly follows '(' or ','.
      for (std::size_t j = i + 2; j < call_close; ++j) {
        if (is_p(toks[j], "[") && toks[j - 1].kind == Tok::Kind::Punct &&
            (toks[j - 1].text == "(" || toks[j - 1].text == ",")) {
          analyze_lambda(j, call_close);
        }
      }
    }
  }

  void analyze_lambda(std::size_t capture_open, std::size_t limit) {
    const std::size_t capture_close = match_bracket(toks, capture_open);
    if (capture_close >= limit) {
      return;
    }
    bool default_ref = false;
    std::set<std::string> ref_captures;
    std::set<std::string> locals;
    for (std::size_t j = capture_open + 1; j < capture_close; ++j) {
      if (is_p(toks[j], "&")) {
        const Tok* nx = next_tok(j);
        if (nx != nullptr && nx->kind == Tok::Kind::Ident) {
          ref_captures.insert(nx->text);
        } else {
          default_ref = true;
        }
      }
    }
    // Parameters: idents directly before ',' or ')' inside the param list.
    std::size_t k = capture_close + 1;
    if (k < toks.size() && is_p(toks[k], "(")) {
      const std::size_t param_close = match_paren(toks, k);
      for (std::size_t j = k + 1; j < param_close; ++j) {
        if (toks[j].kind == Tok::Kind::Ident && toks[j + 1].kind == Tok::Kind::Punct &&
            (toks[j + 1].text == "," || toks[j + 1].text == ")")) {
          locals.insert(toks[j].text);
        }
      }
      k = param_close + 1;
    }
    while (k < toks.size() && !is_p(toks[k], "{")) {
      ++k;  // skip mutable / noexcept / -> return-type
    }
    if (k >= toks.size()) {
      return;
    }
    const std::size_t body_open = k;
    const std::size_t body_close = match_brace(toks, body_open);

    // Pass 1: locals declared in the body (type-ish token, then the name,
    // then an initializer/terminator).
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      if (toks[j].kind != Tok::Kind::Ident || j == 0) {
        continue;
      }
      const Tok& p = toks[j - 1];
      const bool typeish =
          p.kind == Tok::Kind::Ident ||
          (p.kind == Tok::Kind::Punct && (p.text == ">" || p.text == "&" || p.text == "*"));
      if (!typeish || (p.kind == Tok::Kind::Ident && j >= 2 && prev_is_member(j - 1))) {
        continue;
      }
      const Tok* nx = next_tok(j);
      if (nx != nullptr && nx->kind == Tok::Kind::Punct &&
          (nx->text == "=" || nx->text == ";" || nx->text == "," || nx->text == ":" ||
           nx->text == "(" || nx->text == "{")) {
        locals.insert(toks[j].text);
      }
    }

    // Pass 1b: audit emission inside a parallel region. The flight
    // recorder's log must be bitwise-identical across thread counts, which
    // holds only if every record is emitted from the serial decision path —
    // records written from worker lambdas interleave by scheduling order.
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      if (toks[j].kind != Tok::Kind::Ident) {
        continue;
      }
      const std::string& t = toks[j].text;
      const Tok* nx = next_tok(j);
      const bool audit_call = t == "audit" && nx != nullptr && is_p(*nx, "(");
      if (audit_call || t == "AuditLog" || t == "DecisionRecord" ||
          t == "observe_decision_cost") {
        report("det-audit-order", toks[j].line,
               "'" + t + "' emits audit records inside a parallel region");
        break;  // one finding per lambda pinpoints the region
      }
    }

    // Pass 2: shared writes and by-ref Rng use.
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      if (toks[j].kind != Tok::Kind::Ident || locals.count(toks[j].text) ||
          prev_is_member_or_scope(j)) {
        continue;
      }
      const std::string& name = toks[j].text;
      const auto decl = decls.find(name);
      const Tok* nx = next_tok(j);

      const bool captured_by_ref = default_ref || ref_captures.count(name) > 0;
      if (captured_by_ref && decl != decls.end() && decl->second == Sym::Rng &&
          nx != nullptr && is_p(*nx, ".")) {
        report("det-rng-ref-capture", toks[j].line,
               "Rng '" + name +
                   "' is used through a by-reference capture inside a parallel region");
        continue;
      }

      if (decl != decls.end() && decl->second == Sym::Atomic) {
        continue;
      }
      const bool pre_incdec = j > 0 && toks[j - 1].kind == Tok::Kind::Punct &&
                              (toks[j - 1].text == "++" || toks[j - 1].text == "--");
      std::string op;
      if (nx != nullptr && nx->kind == Tok::Kind::Punct) {
        static const std::set<std::string> kWriteOps = {"=",  "+=", "-=", "*=",
                                                        "/=", "++", "--"};
        if (kWriteOps.count(nx->text)) {
          op = nx->text;
        }
      }
      if (op.empty() && pre_incdec) {
        op = toks[j - 1].text;
      }
      if (op.empty()) {
        continue;
      }
      if (op == "+=" || op == "-=") {
        if (decl != decls.end() && decl->second == Sym::Float) {
          report("par-float-reduction", toks[j].line,
                 "'" + name + " " + op + "' reduces a float inside a parallel region");
          continue;
        }
      }
      report("par-shared-write", toks[j].line,
             "'" + name + " " + op + "' writes shared state inside a parallel region");
    }
  }

  // --- hygiene ------------------------------------------------------------
  void check_catch_blocks() {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (!is_id(toks[i], "catch") || !is_p(toks[i + 1], "(")) {
        continue;
      }
      std::size_t k = match_paren(toks, i + 1) + 1;
      if (k >= toks.size() || !is_p(toks[k], "{")) {
        continue;
      }
      const std::size_t close = match_brace(toks, k);
      bool handled = false;
      for (std::size_t j = k + 1; j < close; ++j) {
        if (toks[j].kind != Tok::Kind::Ident) {
          continue;
        }
        const std::string& t = toks[j].text;
        // gtest assertions count as handling: a test catch that asserts on
        // the exception is observing it, not swallowing it.
        if (t.rfind("AC_LOG_", 0) == 0 || t.rfind("EXPECT_", 0) == 0 ||
            t.rfind("ASSERT_", 0) == 0 || t == "FAIL" || t == "SUCCEED" ||
            t == "ADD_FAILURE" || t == "throw" || t == "return" ||
            t == "rethrow_exception" || t == "terminate" || t == "abort") {
          handled = true;
          break;
        }
      }
      if (!handled) {
        report("hyg-catch-log", toks[i].line,
               "catch block swallows the exception (no AC_LOG_*, throw, or return)");
      }
    }
  }

  void check_naked_new() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (is_id(toks[i], "new") && !prev_is_member_or_scope(i)) {
        report("hyg-naked-new", toks[i].line, "naked new expression");
      }
    }
  }

  void check_float_eq() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Punct ||
          (toks[i].text != "==" && toks[i].text != "!=")) {
        continue;
      }
      const Tok* p = prev_tok(i);
      const Tok* nx = next_tok(i);
      if ((p != nullptr && is_float_literal(*p)) || (nx != nullptr && is_float_literal(*nx))) {
        report("hyg-float-eq", toks[i].line,
               "'" + toks[i].text + "' compares against a floating-point literal");
      }
    }
  }

  // --- conc-snapshot-escape ----------------------------------------------
  // A pointer or reference declared from the interior of a snapshot-shaped
  // call (store.load()->x, lookup(...).field) outlives the temporary that
  // owns the storage. By-value copies and lifetime-extended references that
  // bind the whole return value stay silent.
  void check_snapshot_escape() {
    static const std::set<std::string> kSnapshotCalls = {
        "load", "lookup", "resolve", "resolve_or_throw", "nearest", "snapshot"};
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Ident ||
          !(is_p(toks[i + 1], "&") || is_p(toks[i + 1], "*")) ||
          toks[i + 2].kind != Tok::Kind::Ident || !is_p(toks[i + 3], "=")) {
        continue;
      }
      // Only local declarations: the "type & name =" shape also matches
      // `a & b =` bitwise-and assignments, which don't occur statement-first.
      const std::size_t sb = stmt_begin(toks, i);
      if (sb != i && !(sb + 1 == i && is_id(toks[sb], "const"))) {
        continue;
      }
      const std::string& name = toks[i + 2].text;
      std::size_t stmt_end = i + 4;
      while (stmt_end < toks.size() && !is_p(toks[stmt_end], ";")) {
        ++stmt_end;
      }
      const bool deref = i + 4 < toks.size() && is_p(toks[i + 4], "*");
      for (std::size_t j = i + 4; j < stmt_end; ++j) {
        if (toks[j].kind != Tok::Kind::Ident || !kSnapshotCalls.count(toks[j].text) ||
            !prev_is_member(j) || j + 1 >= stmt_end || !is_p(toks[j + 1], "(")) {
          continue;
        }
        const std::size_t close = match_paren(toks, j + 1);
        const bool into_member = close + 1 < stmt_end &&
                                 (is_p(toks[close + 1], ".") || is_p(toks[close + 1], "->"));
        if (into_member || deref) {
          report("conc-snapshot-escape", toks[i + 2].line,
                 "'" + name + "' aliases the interior of a '" + toks[j].text +
                     "' result; the temporary dies at the end of this statement",
                 "copy the value out, or keep the owning handle alive in a local");
          break;
        }
      }
    }
  }

  // --- conc-unjoined-thread ----------------------------------------------
  void check_unjoined_threads() {
    for (const Scope& s : file.scopes) {
      if (s.kind != Scope::Kind::Function && s.kind != Scope::Kind::Lambda) {
        continue;
      }
      for (std::size_t i = s.open + 1; i + 2 < s.close; ++i) {
        if (!is_id(toks[i], "thread") || prev_is_member(i) ||
            toks[i + 1].kind != Tok::Kind::Ident) {
          continue;
        }
        // Only declarations inside this function's own body (not a nested
        // lambda's — the inner scope owns those).
        if (enclosing_function(file.scopes, innermost_scope(file.scopes, i)) !=
            static_cast<int>(&s - file.scopes.data())) {
          continue;
        }
        const Tok& after = toks[i + 2];
        if (after.kind != Tok::Kind::Punct ||
            (after.text != "(" && after.text != "{" && after.text != ";" &&
             after.text != "=")) {
          continue;
        }
        const std::string& name = toks[i + 1].text;
        bool handled = false;
        for (std::size_t j = i + 3; j + 1 < s.close; ++j) {
          if (!is_id(toks[j], name.c_str())) {
            // `std::move(name)` / `return name` hand ownership elsewhere.
            continue;
          }
          const Tok& nx = toks[j + 1];
          const bool member = nx.kind == Tok::Kind::Punct && (nx.text == "." || nx.text == "->");
          if (member && j + 2 < s.close && toks[j + 2].kind == Tok::Kind::Ident &&
              (toks[j + 2].text == "join" || toks[j + 2].text == "detach" ||
               toks[j + 2].text == "swap")) {
            handled = true;
            break;
          }
          if (j >= 2 && is_id(toks[j - 2], "move") && is_p(toks[j - 1], "(")) {
            handled = true;
            break;
          }
          if (j >= 1 && is_id(toks[j - 1], "return")) {
            handled = true;
            break;
          }
        }
        if (!handled) {
          report("conc-unjoined-thread", toks[i + 1].line,
                 "std::thread '" + name + "' is neither joined, detached, nor moved "
                 "before scope exit (its destructor calls std::terminate)",
                 "join it on every path, or use std::jthread");
        }
      }
    }
  }

  // --- taint-lite ----------------------------------------------------------
  void check_taint() {
    if (!has_prefix(file.path, opt.taint_layers) || is_test_path(file.path)) {
      return;
    }
    // fn_of[i]: innermost Function/Lambda scope owning token i. Children
    // appear after parents in the scope vector, so later writes win.
    std::vector<int> fn_of(toks.size(), -1);
    for (std::size_t s = 1; s < file.scopes.size(); ++s) {
      const Scope& sc = file.scopes[s];
      if (sc.kind != Scope::Kind::Function && sc.kind != Scope::Kind::Lambda) {
        continue;
      }
      for (std::size_t i = sc.open + 1; i < sc.close && i < toks.size(); ++i) {
        fn_of[i] = static_cast<int>(s);
      }
    }
    int cur_fn = -1;
    bool exempt = false;
    std::map<std::string, char> tainted;  // local name -> width kind
    taint_map = &tainted;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (fn_of[i] != cur_fn) {
        cur_fn = fn_of[i];
        tainted.clear();
        // Sanitizers themselves do raw comparisons and arithmetic on the
        // untrusted value — that is their job.
        exempt = cur_fn >= 0 &&
                 is_sanitizer_name(file.scopes[static_cast<std::size_t>(cur_fn)].name);
      }
      if (cur_fn < 0 || exempt || toks[i].kind != Tok::Kind::Ident) {
        continue;
      }
      const std::string& t = toks[i].text;
      const Tok* nx = next_tok(i);
      const bool call = nx != nullptr && is_p(*nx, "(");
      const char src_kind = call ? taint_source_kind(t) : '\0';
      if (src_kind != '\0' && !prev_is_member(i)) {
        const std::size_t close = match_paren(toks, i + 1);
        handle_tainted_use(chain_begin(toks, i), close, src_kind, "", t);
        continue;
      }
      if (call) {
        continue;  // other calls: the name is a function, not a value
      }
      if (prev_is_member(i)) {
        if (tainted_fields.count(t)) {
          handle_tainted_use(chain_begin(toks, i), i, 'l', t, "");
        }
        continue;
      }
      auto it = tainted.find(t);
      if (it != tainted.end()) {
        if (nx != nullptr && is_p(*nx, "=")) {
          tainted.erase(it);  // plain reassignment; rhs re-taints via capture
          continue;
        }
        handle_tainted_use(i, i, it->second, t, "");
      }
    }
  }

  /// One use of an untrusted value spanning tokens [begin, end]. `name` is
  /// the tainted local/field ("" for a direct source call `src(...)`).
  void handle_tainted_use(std::size_t begin, std::size_t end, char kind,
                          const std::string& name, const std::string& src) {
    if (end >= toks.size()) {
      return;
    }
    const std::size_t sb = stmt_begin(toks, begin);
    const std::vector<OpenSite> opens = enclosing_opens(toks, begin, sb);
    // Sanitized uses are clean — and so is anything assigned from them.
    for (const OpenSite& o : opens) {
      if (!o.bracket && is_sanitizer_name(callee_of(toks, o.pos))) {
        return;
      }
    }
    const std::string what =
        name.empty() ? "'" + src + "(...)'" : "'" + name + "'";
    const Tok* before = begin > 0 ? &toks[begin - 1] : nullptr;
    const Tok* after = end + 1 < toks.size() ? &toks[end + 1] : nullptr;
    // A comparison is the range check the rule asks for; the local is
    // considered validated from here on.
    if ((before != nullptr && is_comparison(*before)) ||
        (after != nullptr && is_comparison(*after))) {
      if (!name.empty()) {
        tainted_erase(name);
      }
      return;
    }
    // Narrowing cast / allocation-size contexts, innermost enclosure first.
    for (const OpenSite& o : opens) {
      if (o.bracket) {
        for (std::size_t j = sb; j < o.pos; ++j) {
          if (is_id(toks[j], "new")) {
            report("taint-unchecked-arith", toks[end].line,
                   what + " flows from an untrusted parse into a new[] size",
                   "bound the value (checked_* / explicit limit) before allocating");
            tainted_erase(name);
            return;
          }
        }
        continue;
      }
      std::vector<std::string> type_idents;
      const std::string callee = callee_of(toks, o.pos, &type_idents);
      if (callee == "static_cast" && is_narrow_target(type_idents, kind)) {
        report("taint-narrowing-cast", toks[end].line,
               what + " flows from an untrusted parse into a narrowing cast",
               "range-check the value (e.g. a checked_* helper) before narrowing");
        tainted_erase(name);
        return;
      }
      if (alloc_callees().count(callee)) {
        report("taint-unchecked-arith", toks[end].line,
               what + " flows from an untrusted parse into '" + callee + "' (allocation size)",
               "bound the value (checked_* / explicit limit) before allocating");
        tainted_erase(name);
        return;
      }
    }
    // Binary arithmetic adjacency: `a * tainted`, `tainted + b`, `x += tainted`.
    static const std::set<std::string> kArithBefore = {"*", "+", "-", "+=", "-=", "*="};
    static const std::set<std::string> kArithAfter = {"*", "+", "-"};
    const bool arith_before = before != nullptr && before->kind == Tok::Kind::Punct &&
                              kArithBefore.count(before->text) && begin >= 2 &&
                              is_operand_end(toks[begin - 2]);
    const bool arith_after = after != nullptr && after->kind == Tok::Kind::Punct &&
                             kArithAfter.count(after->text) && end + 2 < toks.size() &&
                             is_operand_start(toks[end + 2]);
    if (arith_before || arith_after) {
      report("taint-unchecked-arith", toks[end].line,
             what + " flows from an untrusted parse into arithmetic without a range check",
             "validate the value (checked_* / explicit bounds) before computing with it");
      tainted_erase(name);
      return;
    }
    // No violation: if the statement assigns the value to a plain local,
    // the local inherits the taint — but only for direct flows. A value
    // that passes through any function call (`x = f(tainted)`) stops
    // propagating: the callee may bound it, and flagging its result would
    // taint half the call graph.
    for (std::size_t j = sb; j < begin; ++j) {
      if (!is_p(toks[j], "=")) {
        continue;
      }
      bool through_call = false;
      for (const OpenSite& o : opens) {
        if (o.pos > j && (o.bracket || !callee_of(toks, o.pos).empty())) {
          through_call = true;
          break;
        }
      }
      if (!through_call && j > sb && toks[j - 1].kind == Tok::Kind::Ident &&
          !prev_is_member(j - 1)) {
        taint_insert(toks[j - 1].text, kind);
      }
      break;
    }
  }

  // check_taint()'s local map, reachable from handle_tainted_use without
  // threading it through every call.
  std::map<std::string, char>* taint_map = nullptr;
  void tainted_erase(const std::string& name) {
    if (taint_map != nullptr && !name.empty()) {
      taint_map->erase(name);
    }
  }
  void taint_insert(const std::string& name, char kind) {
    if (taint_map != nullptr) {
      taint_map->emplace(name, kind);
    }
  }

  void run() {
    check_det_layer_tokens();
    check_unordered_iteration();
    check_parallel_regions();
    check_catch_blocks();
    check_naked_new();
    check_float_eq();
    check_snapshot_escape();
    check_unjoined_threads();
    check_taint();
    std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
      return std::tie(a.line, a.check, a.message) < std::tie(b.line, b.check, b.message);
    });
  }
};

}  // namespace

std::vector<Finding> run_file_checks(const FileIndex& file, const LintOptions& opt,
                                     const DeclMap& decls,
                                     const std::set<std::string>& tainted_fields) {
  Analyzer az(file, opt, decls, tainted_fields);
  az.run();
  return az.findings;
}

// ---------------------------------------------------------------------------
// Project-wide taint propagation
// ---------------------------------------------------------------------------

namespace {

/// True when the token range [begin, end) contains an unsanitized source
/// call or a read of an already-tainted field.
bool range_carries_taint(const std::vector<Tok>& toks, std::size_t begin, std::size_t end,
                         const std::set<std::string>& fields) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::Kind::Ident) {
      continue;
    }
    const bool member = i > 0 && toks[i - 1].kind == Tok::Kind::Punct &&
                        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    const bool call = i + 1 < end && is_p(toks[i + 1], "(");
    if (!member && call && taint_source_kind(toks[i].text) != '\0' &&
        taint_source_kind(toks[i].text) != 'f') {
      // Check the source isn't wrapped in a sanitizer within the range.
      const std::vector<OpenSite> opens = enclosing_opens(toks, i, begin);
      bool sanitized = false;
      for (const OpenSite& o : opens) {
        if (!o.bracket && is_sanitizer_name(callee_of(toks, o.pos))) {
          sanitized = true;
          break;
        }
      }
      if (!sanitized) {
        return true;
      }
    }
    if (member && !call && fields.count(toks[i].text)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::set<std::string> collect_tainted_fields(const std::vector<const FileIndex*>& files,
                                             const LintOptions& opt) {
  std::set<std::string> fields;
  for (int round = 0; round < 8; ++round) {
    bool grew = false;
    for (const FileIndex* f : files) {
      if (!has_prefix(f->path, opt.taint_layers) || is_test_path(f->path)) {
        continue;
      }
      const std::vector<Tok>& toks = f->lex.toks;
      for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Kind::Ident) {
          continue;
        }
        const bool member = toks[i - 1].kind == Tok::Kind::Punct &&
                            (toks[i - 1].text == "." || toks[i - 1].text == "->");
        if (!member) {
          continue;
        }
        const std::string& field = toks[i].text;
        // `obj.field = <tainted rhs>;`
        if (is_p(toks[i + 1], "=")) {
          std::size_t end = i + 2;
          while (end < toks.size() && !is_p(toks[end], ";")) {
            ++end;
          }
          if (!fields.count(field) && range_carries_taint(toks, i + 2, end, fields)) {
            fields.insert(field);
            grew = true;
          }
          continue;
        }
        // `obj.field.push_back(<tainted>)` / emplace_back.
        if (is_p(toks[i + 1], ".") && i + 3 < toks.size() &&
            (is_id(toks[i + 2], "push_back") || is_id(toks[i + 2], "emplace_back")) &&
            is_p(toks[i + 3], "(")) {
          const std::size_t close = match_paren(toks, i + 3);
          if (!fields.count(field) && range_carries_taint(toks, i + 4, close, fields)) {
            fields.insert(field);
            grew = true;
          }
        }
      }
    }
    if (!grew) {
      break;
    }
  }
  return fields;
}

// ---------------------------------------------------------------------------
// Project-wide passes: lock order, registry drift, dead config fields
// ---------------------------------------------------------------------------

namespace {

bool project_suppressed(const FileIndex& f, const std::string& check, std::size_t line) {
  return line_suppressed(f.lex, check, line);
}

struct LockSite {
  std::string file;
  std::size_t line = 0;
  std::string held;      ///< canonical mutex already held
  std::string acquired;  ///< canonical mutex being acquired here
  const FileIndex* idx = nullptr;
};

/// Canonical name for the mutex expression whose last chain token is at
/// `last`: idents joined with '.', `this->` dropped, a single bare member
/// qualified with the innermost Class name so `a.mu_` in two classes don't
/// collide.
std::string canon_mutex(const FileIndex& f, std::size_t last) {
  const std::vector<Tok>& toks = f.lex.toks;
  std::size_t b = chain_begin(toks, last);
  std::vector<std::string> parts;
  for (std::size_t i = b; i <= last; ++i) {
    if (toks[i].kind == Tok::Kind::Ident && toks[i].text != "this") {
      parts.push_back(toks[i].text);
    }
  }
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) {
      out += ".";
    }
    out += p;
  }
  if (parts.size() == 1) {
    int s = innermost_scope(f.scopes, last);
    while (s >= 0) {
      const Scope& sc = f.scopes[static_cast<std::size_t>(s)];
      if (sc.kind == Scope::Kind::Class && !sc.name.empty()) {
        out = sc.name + "::" + out;
        break;
      }
      s = sc.parent;
    }
  }
  return out;
}

/// One acquisition in a function: canonical mutex + token hold range.
struct Acquisition {
  std::string mutex;
  std::size_t at = 0;     ///< token index of the acquisition
  std::size_t until = 0;  ///< token index where the hold ends
};

void collect_lock_edges(const FileIndex& f, std::vector<LockSite>& edges) {
  static const std::set<std::string> kGuards = {"lock_guard", "unique_lock", "shared_lock"};
  const std::vector<Tok>& toks = f.lex.toks;
  for (const Scope& s : f.scopes) {
    if (s.kind != Scope::Kind::Function && s.kind != Scope::Kind::Lambda) {
      continue;
    }
    // Skip functions that are nested inside another collected function?
    // No: a lambda's acquisitions belong to the lambda; collect per scope
    // but only tokens directly owned by it would over-complicate — guards
    // in a nested lambda still nest lexically, which is what matters for
    // ordering, so collect over the whole extent only for top Functions.
    if (enclosing_function(f.scopes, s.parent) >= 0) {
      continue;  // nested lambda: the enclosing function's pass covers it
    }
    std::vector<Acquisition> acqs;
    for (std::size_t i = s.open + 1; i + 1 < s.close; ++i) {
      if (toks[i].kind != Tok::Kind::Ident) {
        continue;
      }
      const std::string& t = toks[i].text;
      if (kGuards.count(t) && is_p(toks[i + 1], "<")) {
        // `std::lock_guard<std::mutex> g(mu_);`
        std::size_t j = skip_template_args(toks, i + 1);
        if (j >= s.close || toks[j].kind != Tok::Kind::Ident) {
          continue;
        }
        ++j;  // guard variable name
        if (j >= s.close || !is_p(toks[j], "(")) {
          continue;
        }
        const std::size_t close = match_paren(toks, j);
        // defer_lock / try_to_lock guards don't acquire here. The tag is a
        // trailing argument, so scan the whole list for it but take the
        // mutex expression from the first argument only.
        bool deferred = false;
        bool past_first = false;
        std::size_t last_chain = 0;
        int depth = 0;
        for (std::size_t k = j + 1; k < close; ++k) {
          if (is_p(toks[k], "(")) {
            ++depth;
          } else if (is_p(toks[k], ")")) {
            --depth;
          } else if (depth == 0 && toks[k].kind == Tok::Kind::Ident) {
            if (toks[k].text == "defer_lock" || toks[k].text == "try_to_lock" ||
                toks[k].text == "adopt_lock") {
              deferred = true;
            } else if (!past_first && toks[k].text != "this" && toks[k].text != "std") {
              last_chain = k;
            }
          } else if (depth == 0 && is_p(toks[k], ",")) {
            past_first = true;
          }
        }
        if (deferred || last_chain == 0) {
          continue;
        }
        const std::size_t hold_end =
            f.scopes[static_cast<std::size_t>(innermost_scope(f.scopes, i))].close;
        acqs.push_back({canon_mutex(f, last_chain), i, hold_end});
        continue;
      }
      // `mu.lock()` ... `mu.unlock()` manual pairs.
      if (t == "lock" && i > 0 && toks[i - 1].kind == Tok::Kind::Punct &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") && is_p(toks[i + 1], "(") &&
          i >= 2 && toks[i - 2].kind == Tok::Kind::Ident) {
        const std::string m = canon_mutex(f, i - 2);
        std::size_t until = s.close;
        for (std::size_t k = i + 2; k < s.close; ++k) {
          if (is_id(toks[k], "unlock") && k >= 2 && canon_mutex(f, k - 2) == m) {
            until = k;
            break;
          }
        }
        acqs.push_back({m, i, until});
      }
    }
    for (const Acquisition& outer : acqs) {
      for (const Acquisition& inner : acqs) {
        if (inner.at > outer.at && inner.at < outer.until && inner.mutex != outer.mutex) {
          edges.push_back({f.path, toks[inner.at].line, outer.mutex, inner.mutex, &f});
        }
      }
    }
  }
}

std::string metric_key(const std::string& kind, const std::string& name) {
  return kind + ":" + name;
}

}  // namespace

std::vector<Finding> run_project_checks(const std::vector<const FileIndex*>& files,
                                        const LintOptions& opt) {
  std::vector<Finding> out;
  auto emit = [&](const FileIndex* f, const std::string& check, const std::string& file,
                  std::size_t line, const std::string& msg, const std::string& hint) {
    if (f != nullptr && project_suppressed(*f, check, line)) {
      return;
    }
    out.push_back({check, check_severity(check), file, line, msg, hint});
  };

  // --- conc-lock-order ----------------------------------------------------
  std::vector<LockSite> edges;
  for (const FileIndex* f : files) {
    if (is_test_path(f->path)) {
      continue;
    }
    collect_lock_edges(*f, edges);
  }
  std::map<std::pair<std::string, std::string>, std::vector<const LockSite*>> by_pair;
  for (const LockSite& e : edges) {
    by_pair[{e.held, e.acquired}].push_back(&e);
  }
  std::set<std::pair<std::string, std::string>> reported_pairs;
  for (const auto& [pair, sites] : by_pair) {
    const auto rev = by_pair.find({pair.second, pair.first});
    if (rev == by_pair.end()) {
      continue;
    }
    // Report each unordered pair once, at the first site of each direction.
    const auto key = std::minmax(pair.first, pair.second);
    if (!reported_pairs.insert({key.first, key.second}).second) {
      continue;
    }
    auto first_site = [](const std::vector<const LockSite*>& v) {
      const LockSite* best = v.front();
      for (const LockSite* s : v) {
        if (std::tie(s->file, s->line) < std::tie(best->file, best->line)) {
          best = s;
        }
      }
      return best;
    };
    const LockSite* a = first_site(sites);
    const LockSite* b = first_site(rev->second);
    emit(a->idx, "conc-lock-order", a->file, a->line,
         "'" + a->acquired + "' is acquired while holding '" + a->held + "', but " +
             b->file + ":" + std::to_string(b->line) + " acquires them in the opposite order",
         "pick one global acquisition order, or take both with std::scoped_lock");
    emit(b->idx, "conc-lock-order", b->file, b->line,
         "'" + b->acquired + "' is acquired while holding '" + b->held + "', but " +
             a->file + ":" + std::to_string(a->line) + " acquires them in the opposite order",
         "pick one global acquisition order, or take both with std::scoped_lock");
  }

  // --- drift: telemetry registry ------------------------------------------
  if (opt.telemetry_registry.is_object()) {
    std::map<std::string, std::pair<const FileIndex*, std::size_t>> used_metrics;
    std::map<std::string, std::pair<const FileIndex*, std::size_t>> used_events;
    static const std::set<std::string> kMetricCalls = {"counter", "gauge", "histogram"};
    for (const FileIndex* f : files) {
      if (is_test_path(f->path)) {
        continue;
      }
      const bool trace_def = f->path.find("telemetry/trace.") != std::string::npos;
      const std::vector<Tok>& toks = f->lex.toks;
      for (std::size_t i = 1; i + 2 < toks.size(); ++i) {
        if (toks[i].kind != Tok::Kind::Ident) {
          continue;
        }
        if (kMetricCalls.count(toks[i].text) &&
            (is_p(toks[i - 1], ".") || is_p(toks[i - 1], "->")) && is_p(toks[i + 1], "(") &&
            toks[i + 2].kind == Tok::Kind::Str) {
          const std::string key = metric_key(toks[i].text, toks[i + 2].text);
          if (!used_metrics.count(key)) {
            used_metrics.emplace(key, std::make_pair(f, toks[i + 2].line));
          }
        }
        if (!trace_def && toks[i].text == "EventKind" && is_p(toks[i + 1], "::") &&
            toks[i + 2].kind == Tok::Kind::Ident) {
          const std::string ev = snake_case(toks[i + 2].text);
          if (!used_events.count(ev)) {
            used_events.emplace(ev, std::make_pair(f, toks[i + 2].line));
          }
        }
      }
    }
    std::set<std::string> registered_metrics;
    if (opt.telemetry_registry.contains("metrics")) {
      for (const util::Json& m : opt.telemetry_registry.at("metrics").as_array()) {
        registered_metrics.insert(
            metric_key(m.at("kind").as_string(), m.at("name").as_string()));
      }
    }
    std::set<std::string> registered_events;
    if (opt.telemetry_registry.contains("trace_events")) {
      for (const util::Json& e : opt.telemetry_registry.at("trace_events").as_array()) {
        registered_events.insert(e.as_string());
      }
    }
    for (const auto& [key, site] : used_metrics) {
      if (!registered_metrics.count(key)) {
        const std::size_t colon = key.find(':');
        emit(site.first, "drift-metric-name", site.first->path, site.second,
             key.substr(0, colon) + " '" + key.substr(colon + 1) +
                 "' is emitted here but missing from the telemetry registry",
             "add it to " + opt.registry_path + " (or fix the name)");
      }
    }
    for (const std::string& key : registered_metrics) {
      if (!used_metrics.count(key)) {
        const std::size_t colon = key.find(':');
        emit(nullptr, "drift-metric-name", opt.registry_path, 1,
             key.substr(0, colon) + " '" + key.substr(colon + 1) +
                 "' is registered but never emitted anywhere",
             "remove the stale entry from " + opt.registry_path);
      }
    }
    for (const auto& [ev, site] : used_events) {
      if (!registered_events.count(ev)) {
        emit(site.first, "drift-trace-event", site.first->path, site.second,
             "trace event '" + ev + "' is used here but missing from the telemetry registry",
             "add it to " + opt.registry_path + " (or fix the enumerator)");
      }
    }
    for (const std::string& ev : registered_events) {
      if (!used_events.count(ev)) {
        emit(nullptr, "drift-trace-event", opt.registry_path, 1,
             "trace event '" + ev + "' is registered but never used anywhere",
             "remove the stale entry from " + opt.registry_path);
      }
    }
  }

  // --- drift-dead-config --------------------------------------------------
  // Fields of *Config / *Spec structs declared in src headers that no token
  // anywhere else in the project ever names again.
  std::map<std::string, std::size_t> ident_count;
  for (const FileIndex* f : files) {
    for (const Tok& t : f->lex.toks) {
      if (t.kind == Tok::Kind::Ident) {
        ++ident_count[t.text];
      }
    }
  }
  static const std::set<std::string> kNotAField = {"const", "constexpr", "static", "mutable",
                                                   "using",  "typedef",  "inline", "operator",
                                                   "public", "private",  "protected"};
  for (const FileIndex* f : files) {
    if (f->path.rfind("src/", 0) != 0 ||
        (f->path.size() < 4 || f->path.compare(f->path.size() - 4, 4, ".hpp") != 0)) {
      continue;
    }
    const std::vector<Tok>& toks = f->lex.toks;
    for (const Scope& s : f->scopes) {
      if (s.kind != Scope::Kind::Class) {
        continue;
      }
      const bool config_like =
          (s.name.size() >= 6 && s.name.compare(s.name.size() - 6, 6, "Config") == 0) ||
          (s.name.size() >= 4 && s.name.compare(s.name.size() - 4, 4, "Spec") == 0);
      if (!config_like) {
        continue;
      }
      // Walk member statements at class depth 0; skip nested braces. A brace
      // block followed by `;` is an initializer (field stays); one without
      // is a method definition (whole statement discarded).
      std::size_t slice_start = s.open + 1;
      for (std::size_t i = s.open + 1; i < s.close; ++i) {
        if (is_p(toks[i], "{")) {
          const std::size_t close = match_brace(toks, i);
          if (close + 1 < s.close && is_p(toks[close + 1], ";")) {
            i = close;  // braced init: keep the slice, `;` ends it below
            continue;
          }
          i = close;
          slice_start = close + 1;  // method definition: discard the slice
          continue;
        }
        if (!is_p(toks[i], ";")) {
          continue;
        }
        // Slice [slice_start, i): a member declaration unless it has a
        // parameter list (method prototype) or is access-specifier noise.
        const std::size_t begin = slice_start;
        slice_start = i + 1;
        bool has_paren = false;
        std::size_t eq = 0;
        for (std::size_t j = begin; j < i; ++j) {
          if (is_p(toks[j], "(")) {
            has_paren = true;
            break;
          }
          if (eq == 0 && is_p(toks[j], "=")) {
            eq = j;
          }
        }
        if (has_paren || begin >= i) {
          continue;
        }
        std::size_t name_end = eq != 0 ? eq : i;
        // `double x{1.0};` — the name sits before the brace.
        for (std::size_t j = begin; j < name_end; ++j) {
          if (is_p(toks[j], "{")) {
            name_end = j;
            break;
          }
        }
        std::size_t name_idx = toks.size();
        for (std::size_t j = name_end; j-- > begin;) {
          if (toks[j].kind == Tok::Kind::Ident) {
            name_idx = j;
            break;
          }
        }
        if (name_idx >= toks.size() || kNotAField.count(toks[name_idx].text)) {
          continue;
        }
        const std::string& field = toks[name_idx].text;
        if (ident_count[field] <= 1) {
          emit(f, "drift-dead-config", f->path, toks[name_idx].line,
               "field '" + field + "' of " + s.name + " is never read anywhere",
               "wire it up or delete it");
        }
      }
    }
  }

  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.check, a.message) <
           std::tie(b.file, b.line, b.check, b.message);
  });
  return out;
}

}  // namespace acclaim::lint

// acclaim_lint check implementations over the semantic layer.
//
// Two entry points: run_file_checks() analyzes one indexed file (the legacy
// token checks plus the new per-file concurrency and taint-flow checks), and
// run_project_checks() runs the passes that need the whole file set at once
// (lock-order pairing across call sites, telemetry registry drift, dead
// config fields). collect_tainted_fields() is the project-wide taint
// propagation fixpoint feeding the per-file taint pass.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "lint/sema.hpp"

namespace acclaim::lint {

/// Per-file analysis. `decls` is the merged declaration table (companion
/// header + project includes + the file itself); `tainted_fields` are
/// struct member names assigned from untrusted parses anywhere in the
/// project (see collect_tainted_fields).
std::vector<Finding> run_file_checks(const FileIndex& file, const LintOptions& opt,
                                     const DeclMap& decls,
                                     const std::set<std::string>& tainted_fields);

/// Fixpoint over all files in the taint layers: a field is tainted when it
/// is assigned (or push_back'ed) a value derived from a raw parse or from
/// another tainted field, outside checked_*/parse_*/validate* functions.
std::set<std::string> collect_tainted_fields(const std::vector<const FileIndex*>& files,
                                             const LintOptions& opt);

/// Project-wide passes: conc-lock-order (conflicting acquisition orders
/// across every scanned call site), drift-metric-name / drift-trace-event
/// (when opt.telemetry_registry is non-null), drift-dead-config.
std::vector<Finding> run_project_checks(const std::vector<const FileIndex*>& files,
                                        const LintOptions& opt);

}  // namespace acclaim::lint

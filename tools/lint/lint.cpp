#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <ostream>
#include <set>

#include "util/error.hpp"
#include "util/table.hpp"

namespace acclaim::lint {

namespace {

// ---------------------------------------------------------------------------
// Check registry
// ---------------------------------------------------------------------------

std::vector<CheckInfo> make_registry() {
  return {
      {"det-rand", Severity::Error,
       "libc/<random> randomness is forbidden in deterministic layers; use util::Rng "
       "(Rng::stream for parallel work)"},
      {"det-wallclock", Severity::Error,
       "wall-clock reads (system_clock, time(), gettimeofday) are forbidden in deterministic "
       "layers; steady_clock host-wall telemetry is exempt"},
      {"det-rng-ref-capture", Severity::Error,
       "a mutable Rng captured by reference must not cross a parallel_for/submit boundary; "
       "pre-derive per-item RNGs before the loop"},
      {"det-unordered-iter", Severity::Error,
       "iteration over std::unordered_map/unordered_set has hash-dependent order; use "
       "std::map/std::set or sort before iterating"},
      {"par-shared-write", Severity::Error,
       "non-atomic write to shared state inside a parallel_for/submit lambda; write only to "
       "per-index slots"},
      {"par-float-reduction", Severity::Error,
       "+=/-= on a shared floating-point value inside a parallel lambda reorders the "
       "reduction across thread counts; accumulate per-slot and fold serially"},
      {"det-audit-order", Severity::Error,
       "audit-log emission (telemetry::audit(), DecisionRecord, observe_decision_cost) "
       "inside a parallel_for/submit lambda records in thread-dependent order; emit from "
       "the serial decision path only"},
      {"hyg-catch-log", Severity::Warning,
       "catch block neither logs (AC_LOG_*) nor rethrows/returns; a swallowed exception "
       "hides the failure"},
      {"hyg-naked-new", Severity::Warning,
       "naked new expression; use std::make_unique/make_shared or a container"},
      {"hyg-float-eq", Severity::Warning,
       "floating-point literal compared with ==/!=; use an epsilon or an exact integer "
       "representation"},
  };
}

// ---------------------------------------------------------------------------
// Token scanner
// ---------------------------------------------------------------------------

struct Tok {
  enum class Kind { Ident, Num, Str, Punct };
  Kind kind;
  std::string text;
  std::size_t line;
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Multi-char operators the checks care about, longest first.
const char* kPunct2[] = {"::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
                         "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "<<"};

struct ScanResult {
  std::vector<Tok> toks;
  /// line -> check ids allowed by an `acclaim-lint: allow(...)` comment on
  /// that line (a comment also covers the line after it).
  std::map<std::size_t, std::set<std::string>> allows;
};

void record_allows(ScanResult& out, const std::string& comment, std::size_t line) {
  const std::string marker = "acclaim-lint:";
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) {
    return;
  }
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) {
    return;
  }
  pos += 6;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) {
    return;
  }
  std::string id;
  for (std::size_t i = pos; i <= close; ++i) {
    const char c = i < close ? comment[i] : ',';
    if (c == ',' || c == ' ') {
      if (!id.empty()) {
        out.allows[line].insert(id);
        id.clear();
      }
    } else {
      id.push_back(c);
    }
  }
}

ScanResult scan(const std::string& src) {
  ScanResult out;
  std::size_t i = 0;
  std::size_t line = 1;
  bool line_start = true;  // only whitespace seen since the last newline
  const std::size_t n = src.size();

  auto newline = [&] {
    ++line;
    line_start = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the whole (possibly continued) line so
    // `#include <unordered_map>` and macro bodies never produce tokens.
    if (c == '#' && line_start) {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }
    line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') {
        ++i;
      }
      record_allows(out, src.substr(start, i - start), line);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          newline();
        }
        ++i;
      }
      i = std::min(n, i + 2);
      record_allows(out, src.substr(start, i - start), start_line);
      continue;
    }
    // Raw string literal (the R/uR/u8R/LR/UR ident was just emitted).
    if (c == '"' && !out.toks.empty() && out.toks.back().kind == Tok::Kind::Ident) {
      const std::string& prev = out.toks.back().text;
      if (prev == "R" || prev == "uR" || prev == "u8R" || prev == "LR" || prev == "UR") {
        out.toks.pop_back();
        std::size_t j = i + 1;
        std::string delim;
        while (j < n && src[j] != '(') {
          delim.push_back(src[j++]);
        }
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src.find(closer, j);
        const std::size_t stop = end == std::string::npos ? n : end + closer.size();
        for (std::size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') {
            newline();
          }
        }
        out.toks.push_back({Tok::Kind::Str, "", line});
        i = stop;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (src[i] == '\n') {
          newline();
        }
        ++i;
      }
      ++i;
      out.toks.push_back({Tok::Kind::Str, "", line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) {
        ++i;
      }
      out.toks.push_back({Tok::Kind::Ident, src.substr(start, i - start), line});
      continue;
    }
    // Number (incl. 1e-9, 0x1f, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                    src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.toks.push_back({Tok::Kind::Num, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation, two-char operators first.
    if (i + 1 < n) {
      const std::string two = src.substr(i, 2);
      bool matched = false;
      for (const char* op : kPunct2) {
        if (two == op) {
          out.toks.push_back({Tok::Kind::Punct, two, line});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
    }
    out.toks.push_back({Tok::Kind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Declaration harvesting (file-global, intentionally scope-free)
// ---------------------------------------------------------------------------

/// Simplified variable types the checks reason about.
enum class DeclType { Rng, Unordered, Float, Atomic };

using DeclMap = std::map<std::string, DeclType>;

bool is_unordered_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
         s == "unordered_multiset";
}

/// Advances past a balanced <...> starting at toks[i] == "<"; returns the
/// index just after the matching ">". Not confused by "<<" (lexed as one
/// token, which cannot appear inside template arguments in this codebase).
std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (toks[i].kind == Tok::Kind::Punct && t == "<") {
      ++depth;
    } else if (toks[i].kind == Tok::Kind::Punct && t == ">") {
      --depth;
      if (depth == 0) {
        return i + 1;
      }
    } else if (toks[i].kind == Tok::Kind::Punct && (t == ";" || t == "{")) {
      return i;  // malformed / not actually a template — bail out
    }
    ++i;
  }
  return i;
}

void harvest_decls(const std::vector<Tok>& toks, DeclMap& decls) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Ident) {
      continue;
    }
    const std::string& t = toks[i].text;
    const bool member_access =
        i > 0 && toks[i - 1].kind == Tok::Kind::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (member_access) {
      continue;
    }
    DeclType type{};
    std::size_t j = 0;
    if (t == "Rng") {
      type = DeclType::Rng;
      j = i + 1;
    } else if (is_unordered_name(t) || t == "atomic") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "<") {
        continue;
      }
      type = is_unordered_name(t) ? DeclType::Unordered : DeclType::Atomic;
      j = skip_template_args(toks, i + 1);
      // An unordered type nested in an outer template (vector<unordered_map<..>>)
      // still taints the declared variable: close out the outer arguments.
      while (j < toks.size() && toks[j].kind == Tok::Kind::Punct && toks[j].text == ">") {
        ++j;
      }
    } else if (t == "double" || t == "float") {
      if (i > 0 && toks[i - 1].kind == Tok::Kind::Punct &&
          (toks[i - 1].text == "<" || toks[i - 1].text == ",")) {
        continue;  // template argument, not a declaration
      }
      type = DeclType::Float;
      j = i + 1;
    } else {
      continue;
    }
    while (j < toks.size() && toks[j].kind == Tok::Kind::Punct &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::Kind::Ident && toks[j].text == "const") {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::Kind::Ident) {
      decls.emplace(toks[j].text, type);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

bool has_prefix(const std::string& path, const std::vector<std::string>& prefixes) {
  return std::any_of(prefixes.begin(), prefixes.end(), [&](const std::string& p) {
    return path.rfind(p, 0) == 0;
  });
}

const std::set<std::string>& rand_idents() {
  static const std::set<std::string> kSet = {
      "random_device", "mt19937",      "mt19937_64",     "minstd_rand",
      "minstd_rand0",  "ranlux24",     "ranlux48",       "knuth_b",
      "default_random_engine",         "uniform_int_distribution",
      "uniform_real_distribution",     "normal_distribution",
      "bernoulli_distribution",        "poisson_distribution",
      "discrete_distribution",
  };
  return kSet;
}

const std::set<std::string>& rand_calls() {
  static const std::set<std::string> kSet = {"rand", "srand", "rand_r", "drand48", "lrand48"};
  return kSet;
}

const std::set<std::string>& wallclock_idents() {
  static const std::set<std::string> kSet = {"system_clock", "gettimeofday", "localtime",
                                             "gmtime", "mktime"};
  return kSet;
}

const std::set<std::string>& wallclock_calls() {
  static const std::set<std::string> kSet = {"time", "clock"};
  return kSet;
}

bool is_float_literal(const Tok& t) {
  if (t.kind != Tok::Kind::Num) {
    return false;
  }
  if (t.text.size() > 1 && t.text[0] == '0' && (t.text[1] == 'x' || t.text[1] == 'X')) {
    return false;
  }
  return t.text.find('.') != std::string::npos || t.text.find('e') != std::string::npos ||
         t.text.find('E') != std::string::npos;
}

std::size_t match_paren(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Punct) {
      continue;
    }
    if (toks[i].text == "(") {
      ++depth;
    } else if (toks[i].text == ")") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

std::size_t match_brace(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Punct) {
      continue;
    }
    if (toks[i].text == "{") {
      ++depth;
    } else if (toks[i].text == "}") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

std::size_t match_bracket(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Punct) {
      continue;
    }
    if (toks[i].text == "[") {
      ++depth;
    } else if (toks[i].text == "]") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

struct Analyzer {
  const std::string& path;
  const LintOptions& opt;
  const std::vector<Tok>& toks;
  const std::map<std::size_t, std::set<std::string>>& allows;
  DeclMap decls;
  std::vector<Finding> findings;

  bool suppressed(const std::string& check, std::size_t line) const {
    for (std::size_t l : {line, line > 0 ? line - 1 : line}) {
      auto it = allows.find(l);
      if (it != allows.end() && (it->second.count(check) || it->second.count("all"))) {
        return true;
      }
    }
    return false;
  }

  void report(const std::string& check, std::size_t line, const std::string& message) {
    if (suppressed(check, line)) {
      return;
    }
    findings.push_back({check, check_severity(check), path, line, message});
  }

  const Tok* prev_tok(std::size_t i) const { return i > 0 ? &toks[i - 1] : nullptr; }
  const Tok* next_tok(std::size_t i) const {
    return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
  }

  bool prev_is_member_or_scope(std::size_t i) const {
    const Tok* p = prev_tok(i);
    return p != nullptr && p->kind == Tok::Kind::Punct &&
           (p->text == "." || p->text == "->" || p->text == "::");
  }

  bool prev_is_member(std::size_t i) const {
    const Tok* p = prev_tok(i);
    return p != nullptr && p->kind == Tok::Kind::Punct && (p->text == "." || p->text == "->");
  }

  // --- det-rand / det-wallclock ------------------------------------------
  void check_det_layer_tokens() {
    if (!has_prefix(path, opt.det_layers)) {
      return;
    }
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Ident || prev_is_member(i)) {
        continue;
      }
      const std::string& t = toks[i].text;
      const Tok* nx = next_tok(i);
      const bool call = nx != nullptr && nx->kind == Tok::Kind::Punct && nx->text == "(";
      if (rand_idents().count(t) || (call && rand_calls().count(t))) {
        report("det-rand", toks[i].line,
               "'" + t + "' in deterministic layer; use util::Rng / Rng::stream");
      } else if (wallclock_idents().count(t) || (call && wallclock_calls().count(t))) {
        report("det-wallclock", toks[i].line,
               "'" + t + "' reads the wall clock in a deterministic layer");
      }
    }
  }

  // --- det-unordered-iter -------------------------------------------------
  void check_unordered_iteration() {
    if (!has_prefix(path, opt.ordered_iter_layers)) {
      return;
    }
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Ident || toks[i].text != "for" ||
          toks[i + 1].text != "(") {
        continue;
      }
      const std::size_t close = match_paren(toks, i + 1);
      // Range-for: a ':' at parenthesis depth 1 ("::" lexes as one token).
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (toks[j].kind != Tok::Kind::Punct) {
          continue;
        }
        if (toks[j].text == "(") {
          ++depth;
        } else if (toks[j].text == ")") {
          --depth;
        } else if (toks[j].text == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == 0) {
        continue;
      }
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (toks[j].kind != Tok::Kind::Ident) {
          continue;
        }
        auto it = decls.find(toks[j].text);
        const bool unordered_var =
            it != decls.end() && it->second == DeclType::Unordered && !prev_is_member(j);
        if (unordered_var || is_unordered_name(toks[j].text)) {
          report("det-unordered-iter", toks[j].line,
                 "range-for over unordered container '" + toks[j].text + "'");
          break;
        }
      }
    }
  }

  // --- parallel-region checks --------------------------------------------
  void check_parallel_regions() {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Ident ||
          (toks[i].text != "parallel_for" && toks[i].text != "submit") ||
          toks[i + 1].text != "(") {
        continue;
      }
      const std::size_t call_close = match_paren(toks, i + 1);
      // Lambdas are the arguments whose '[' directly follows '(' or ','.
      for (std::size_t j = i + 2; j < call_close; ++j) {
        if (toks[j].kind == Tok::Kind::Punct && toks[j].text == "[" &&
            toks[j - 1].kind == Tok::Kind::Punct &&
            (toks[j - 1].text == "(" || toks[j - 1].text == ",")) {
          analyze_lambda(j, call_close);
        }
      }
    }
  }

  void analyze_lambda(std::size_t capture_open, std::size_t limit) {
    const std::size_t capture_close = match_bracket(toks, capture_open);
    if (capture_close >= limit) {
      return;
    }
    bool default_ref = false;
    std::set<std::string> ref_captures;
    std::set<std::string> locals;
    for (std::size_t j = capture_open + 1; j < capture_close; ++j) {
      if (toks[j].kind == Tok::Kind::Punct && toks[j].text == "&") {
        const Tok* nx = next_tok(j);
        if (nx != nullptr && nx->kind == Tok::Kind::Ident) {
          ref_captures.insert(nx->text);
        } else {
          default_ref = true;
        }
      } else if (toks[j].kind == Tok::Kind::Punct && toks[j].text == "=") {
        // by-value default; init-captures (x = expr) also land here, fine
      }
    }
    // Parameters: idents directly before ',' or ')' inside the param list.
    std::size_t k = capture_close + 1;
    if (k < toks.size() && toks[k].text == "(") {
      const std::size_t param_close = match_paren(toks, k);
      for (std::size_t j = k + 1; j < param_close; ++j) {
        if (toks[j].kind == Tok::Kind::Ident && j + 1 <= param_close &&
            toks[j + 1].kind == Tok::Kind::Punct &&
            (toks[j + 1].text == "," || toks[j + 1].text == ")")) {
          locals.insert(toks[j].text);
        }
      }
      k = param_close + 1;
    }
    while (k < toks.size() && toks[k].text != "{") {
      ++k;  // skip mutable / noexcept / -> return-type
    }
    if (k >= toks.size()) {
      return;
    }
    const std::size_t body_open = k;
    const std::size_t body_close = match_brace(toks, body_open);

    // Pass 1: locals declared in the body (type-ish token, then the name,
    // then an initializer/terminator).
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      if (toks[j].kind != Tok::Kind::Ident || j == 0) {
        continue;
      }
      const Tok& p = toks[j - 1];
      const bool typeish =
          p.kind == Tok::Kind::Ident ||
          (p.kind == Tok::Kind::Punct && (p.text == ">" || p.text == "&" || p.text == "*"));
      if (!typeish || (p.kind == Tok::Kind::Ident && j >= 2 && prev_is_member(j - 1))) {
        continue;
      }
      const Tok* nx = next_tok(j);
      if (nx != nullptr &&
          (nx->text == "=" || nx->text == ";" || nx->text == "," || nx->text == ":" ||
           nx->text == "(" || nx->text == "{")) {
        locals.insert(toks[j].text);
      }
    }

    // Pass 1b: audit emission inside a parallel region. The flight
    // recorder's log must be bitwise-identical across thread counts, which
    // holds only if every record is emitted from the serial decision path —
    // records written from worker lambdas interleave by scheduling order.
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      if (toks[j].kind != Tok::Kind::Ident) {
        continue;
      }
      const std::string& t = toks[j].text;
      const Tok* nx = next_tok(j);
      const bool audit_call =
          t == "audit" && nx != nullptr && nx->kind == Tok::Kind::Punct && nx->text == "(";
      if (audit_call || t == "AuditLog" || t == "DecisionRecord" ||
          t == "observe_decision_cost") {
        report("det-audit-order", toks[j].line,
               "'" + t + "' emits audit records inside a parallel region");
        break;  // one finding per lambda pinpoints the region
      }
    }

    // Pass 2: shared writes and by-ref Rng use.
    for (std::size_t j = body_open + 1; j < body_close; ++j) {
      if (toks[j].kind != Tok::Kind::Ident || locals.count(toks[j].text) ||
          prev_is_member_or_scope(j)) {
        continue;
      }
      const std::string& name = toks[j].text;
      const auto decl = decls.find(name);
      const Tok* nx = next_tok(j);

      const bool captured_by_ref = default_ref || ref_captures.count(name) > 0;
      if (captured_by_ref && decl != decls.end() && decl->second == DeclType::Rng &&
          nx != nullptr && nx->kind == Tok::Kind::Punct && nx->text == ".") {
        report("det-rng-ref-capture", toks[j].line,
               "Rng '" + name +
                   "' is used through a by-reference capture inside a parallel region");
        continue;
      }

      if (decl != decls.end() && decl->second == DeclType::Atomic) {
        continue;
      }
      const bool pre_incdec = j > 0 && toks[j - 1].kind == Tok::Kind::Punct &&
                              (toks[j - 1].text == "++" || toks[j - 1].text == "--");
      std::string op;
      if (nx != nullptr && nx->kind == Tok::Kind::Punct) {
        static const std::set<std::string> kWriteOps = {"=",  "+=", "-=", "*=",
                                                        "/=", "++", "--"};
        if (kWriteOps.count(nx->text)) {
          op = nx->text;
        }
      }
      if (op.empty() && pre_incdec) {
        op = toks[j - 1].text;
      }
      if (op.empty()) {
        continue;
      }
      // `=` directly after a type-ish token is a declaration, not a write;
      // pass 1 catches most, but catch `auto x = ...` patterns it classified
      // as locals already — anything left here is a genuine shared write.
      if (op == "+=" || op == "-=") {
        if (decl != decls.end() && decl->second == DeclType::Float) {
          report("par-float-reduction", toks[j].line,
                 "'" + name + " " + op + "' reduces a float inside a parallel region");
          continue;
        }
      }
      report("par-shared-write", toks[j].line,
             "'" + name + " " + op + "' writes shared state inside a parallel region");
    }
  }

  // --- hygiene ------------------------------------------------------------
  void check_catch_blocks() {
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Ident || toks[i].text != "catch" ||
          toks[i + 1].text != "(") {
        continue;
      }
      std::size_t k = match_paren(toks, i + 1) + 1;
      if (k >= toks.size() || toks[k].text != "{") {
        continue;
      }
      const std::size_t close = match_brace(toks, k);
      bool handled = false;
      for (std::size_t j = k + 1; j < close; ++j) {
        if (toks[j].kind != Tok::Kind::Ident) {
          continue;
        }
        const std::string& t = toks[j].text;
        // gtest assertions count as handling: a test catch that asserts on
        // the exception is observing it, not swallowing it.
        if (t.rfind("AC_LOG_", 0) == 0 || t.rfind("EXPECT_", 0) == 0 ||
            t.rfind("ASSERT_", 0) == 0 || t == "FAIL" || t == "SUCCEED" ||
            t == "ADD_FAILURE" || t == "throw" || t == "return" ||
            t == "rethrow_exception" || t == "terminate" || t == "abort") {
          handled = true;
          break;
        }
      }
      if (!handled) {
        report("hyg-catch-log", toks[i].line,
               "catch block swallows the exception (no AC_LOG_*, throw, or return)");
      }
    }
  }

  void check_naked_new() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind == Tok::Kind::Ident && toks[i].text == "new" &&
          !prev_is_member_or_scope(i)) {
        report("hyg-naked-new", toks[i].line, "naked new expression");
      }
    }
  }

  void check_float_eq() {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].kind != Tok::Kind::Punct ||
          (toks[i].text != "==" && toks[i].text != "!=")) {
        continue;
      }
      const Tok* p = prev_tok(i);
      const Tok* nx = next_tok(i);
      if ((p != nullptr && is_float_literal(*p)) || (nx != nullptr && is_float_literal(*nx))) {
        report("hyg-float-eq", toks[i].line,
               "'" + toks[i].text + "' compares against a floating-point literal");
      }
    }
  }

  void run() {
    check_det_layer_tokens();
    check_unordered_iteration();
    check_parallel_regions();
    check_catch_blocks();
    check_naked_new();
    check_float_eq();
    std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
      return std::tie(a.line, a.check) < std::tie(b.line, b.check);
    });
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const char* severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

const std::vector<CheckInfo>& all_checks() {
  static const std::vector<CheckInfo> kChecks = make_registry();
  return kChecks;
}

Severity check_severity(const std::string& id) {
  for (const CheckInfo& c : all_checks()) {
    if (c.id == id) {
      return c.severity;
    }
  }
  throw NotFoundError("unknown lint check id: " + id);
}

std::vector<std::string> default_det_layers() {
  return {"src/core/", "src/ml/", "src/simnet/", "src/benchdata/", "src/collectives/"};
}

std::vector<Finding> lint_source(const std::string& path, const std::string& content,
                                 const LintOptions& opt) {
  ScanResult scanned = scan(content);
  Analyzer az{path, opt, scanned.toks, scanned.allows, {}, {}};
  if (!opt.companion_header.empty()) {
    ScanResult header = scan(opt.companion_header);
    harvest_decls(header.toks, az.decls);
  }
  harvest_decls(scanned.toks, az.decls);
  az.run();
  return az.findings;
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

Baseline Baseline::from_json(const util::Json& doc) {
  Baseline b;
  for (const util::Json& entry : doc.at("entries").as_array()) {
    const std::string check = entry.at("check").as_string();
    check_severity(check);  // validate the id
    b.set(check, entry.at("file").as_string(), static_cast<int>(entry.at("count").as_int()));
  }
  return b;
}

Baseline Baseline::load(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    return {};
  }
  return from_json(util::Json::parse_file(path));
}

util::Json Baseline::to_json() const {
  util::Json doc = util::Json::object();
  doc["version"] = 1;
  util::Json entries = util::Json::array();
  for (const auto& [key, count] : entries_) {
    util::Json e = util::Json::object();
    e["check"] = key.first;
    e["file"] = key.second;
    e["count"] = count;
    entries.push_back(std::move(e));
  }
  doc["entries"] = std::move(entries);
  return doc;
}

int Baseline::allowed(const std::string& check, const std::string& file) const {
  const auto it = entries_.find({check, file});
  return it == entries_.end() ? 0 : it->second;
}

void Baseline::set(const std::string& check, const std::string& file, int count) {
  entries_[{check, file}] = count;
}

GateResult apply_baseline(const std::vector<Finding>& findings, const Baseline& baseline) {
  GateResult gate;
  std::map<std::pair<std::string, std::string>, int> seen;
  for (const Finding& f : findings) {
    const int used = ++seen[{f.check, f.file}];
    if (used <= baseline.allowed(f.check, f.file)) {
      gate.baselined.push_back(f);
    } else {
      gate.fresh.push_back(f);
    }
  }
  for (const auto& [key, allowed] : baseline.entries()) {
    const auto it = seen.find(key);
    const int actual = it == seen.end() ? 0 : it->second;
    if (actual < allowed) {
      gate.stale.push_back({key.first, key.second, allowed, actual});
    }
  }
  return gate;
}

Baseline baseline_from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : findings) {
    ++counts[{f.check, f.file}];
  }
  for (const auto& [key, count] : counts) {
    b.set(key.first, key.second, count);
  }
  return b;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

namespace {

util::Json finding_json(const Finding& f) {
  util::Json e = util::Json::object();
  e["check"] = f.check;
  e["severity"] = severity_name(f.severity);
  e["file"] = f.file;
  e["line"] = static_cast<long long>(f.line);
  e["message"] = f.message;
  return e;
}

}  // namespace

util::Json report_json(const GateResult& gate, std::size_t files_scanned) {
  util::Json doc = util::Json::object();
  doc["ok"] = gate.ok();
  doc["files_scanned"] = static_cast<long long>(files_scanned);
  util::Json fresh = util::Json::array();
  for (const Finding& f : gate.fresh) {
    fresh.push_back(finding_json(f));
  }
  doc["findings"] = std::move(fresh);
  util::Json baselined = util::Json::array();
  for (const Finding& f : gate.baselined) {
    baselined.push_back(finding_json(f));
  }
  doc["baselined"] = std::move(baselined);
  util::Json stale = util::Json::array();
  for (const GateResult::Stale& s : gate.stale) {
    util::Json e = util::Json::object();
    e["check"] = s.check;
    e["file"] = s.file;
    e["allowed"] = s.allowed;
    e["actual"] = s.actual;
    stale.push_back(std::move(e));
  }
  doc["stale_baseline"] = std::move(stale);
  return doc;
}

void render_report(std::ostream& os, const GateResult& gate, std::size_t files_scanned) {
  if (!gate.fresh.empty()) {
    util::TablePrinter table({"severity", "check", "location", "message"});
    for (const Finding& f : gate.fresh) {
      table.add_row({severity_name(f.severity), f.check,
                     f.file + ":" + std::to_string(f.line), f.message});
    }
    table.print(os);
  }
  std::size_t errors = 0;
  for (const Finding& f : gate.fresh) {
    errors += f.severity == Severity::Error ? 1 : 0;
  }
  os << "acclaim-lint: " << gate.fresh.size() << " finding(s) (" << errors << " error(s), "
     << gate.fresh.size() - errors << " warning(s)), " << gate.baselined.size()
     << " baselined, " << gate.stale.size() << " stale baseline entr"
     << (gate.stale.size() == 1 ? "y" : "ies") << ", " << files_scanned
     << " file(s) scanned\n";
  for (const GateResult::Stale& s : gate.stale) {
    os << "acclaim-lint: stale baseline entry " << s.check << " @ " << s.file << " (allows "
       << s.allowed << ", found " << s.actual
       << ") — ratchet it down with --write-baseline\n";
  }
}

}  // namespace acclaim::lint

#include "lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <ostream>
#include <set>
#include <sstream>

#include "lint/checks.hpp"
#include "lint/sema.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::lint {

namespace {

// ---------------------------------------------------------------------------
// Check registry
// ---------------------------------------------------------------------------

std::vector<CheckInfo> make_registry() {
  return {
      {"det-rand", Severity::Error,
       "libc/<random> randomness is forbidden in deterministic layers; use util::Rng "
       "(Rng::stream for parallel work)"},
      {"det-wallclock", Severity::Error,
       "wall-clock reads (system_clock, time(), gettimeofday) are forbidden in deterministic "
       "layers; steady_clock host-wall telemetry is exempt"},
      {"det-rng-ref-capture", Severity::Error,
       "a mutable Rng captured by reference must not cross a parallel_for/submit boundary; "
       "pre-derive per-item RNGs before the loop"},
      {"det-unordered-iter", Severity::Error,
       "iteration over std::unordered_map/unordered_set has hash-dependent order; use "
       "std::map/std::set or sort before iterating"},
      {"par-shared-write", Severity::Error,
       "non-atomic write to shared state inside a parallel_for/submit lambda; write only to "
       "per-index slots"},
      {"par-float-reduction", Severity::Error,
       "+=/-= on a shared floating-point value inside a parallel lambda reorders the "
       "reduction across thread counts; accumulate per-slot and fold serially"},
      {"det-audit-order", Severity::Error,
       "audit-log emission (telemetry::audit(), DecisionRecord, observe_decision_cost) "
       "inside a parallel_for/submit lambda records in thread-dependent order; emit from "
       "the serial decision path only"},
      {"hyg-catch-log", Severity::Warning,
       "catch block neither logs (AC_LOG_*) nor rethrows/returns; a swallowed exception "
       "hides the failure"},
      {"hyg-naked-new", Severity::Warning,
       "naked new expression; use std::make_unique/make_shared or a container"},
      {"hyg-float-eq", Severity::Warning,
       "floating-point literal compared with ==/!=; use an epsilon or an exact integer "
       "representation"},
      {"conc-lock-order", Severity::Error,
       "two mutexes are acquired in opposite orders at different call sites — a classic "
       "AB/BA deadlock; pick one global order or use std::scoped_lock"},
      {"conc-snapshot-escape", Severity::Error,
       "a raw pointer/reference into a snapshot/lookup temporary outlives the statement "
       "that produced it; copy the value or keep the owning handle alive"},
      {"conc-unjoined-thread", Severity::Error,
       "a std::thread that is neither joined, detached, nor moved before scope exit makes "
       "its destructor call std::terminate"},
      {"taint-unchecked-arith", Severity::Error,
       "a value from an untrusted parse (NDJSON/CLI/env/CSV) reaches arithmetic or an "
       "allocation size without passing a checked_*/range-validated guard"},
      {"taint-narrowing-cast", Severity::Error,
       "a value from an untrusted parse narrows to a smaller integer type without a "
       "range check"},
      {"drift-metric-name", Severity::Warning,
       "metric emission and tools/telemetry_registry.json disagree (emitted-but-"
       "unregistered, or registered-but-never-emitted)"},
      {"drift-trace-event", Severity::Warning,
       "EventKind usage and the trace_events list in tools/telemetry_registry.json "
       "disagree"},
      {"drift-dead-config", Severity::Warning,
       "a field of a *Config/*Spec struct is never read anywhere in the project; wire it "
       "up or delete it"},
  };
}

std::string companion_path_of(const std::string& path) {
  const std::size_t dot = path.rfind('.');
  return dot == std::string::npos ? "" : path.substr(0, dot);
}

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? "" : path.substr(0, slash + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const char* severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

const std::vector<CheckInfo>& all_checks() {
  static const std::vector<CheckInfo> kChecks = make_registry();
  return kChecks;
}

Severity check_severity(const std::string& id) {
  for (const CheckInfo& c : all_checks()) {
    if (c.id == id) {
      return c.severity;
    }
  }
  throw NotFoundError("unknown lint check id: " + id);
}

std::vector<std::string> default_det_layers() {
  return {"src/core/", "src/ml/", "src/simnet/", "src/benchdata/", "src/collectives/"};
}

std::vector<std::string> default_taint_layers() {
  return {"src/serve/", "src/fleet/", "src/traces/", "src/benchdata/", "tools/", "bench/"};
}

std::vector<Finding> lint_source(const std::string& path, const std::string& content,
                                 const LintOptions& opt) {
  FileIndex idx = build_file_index(path, content);
  DeclMap merged;
  if (!opt.companion_header.empty()) {
    LexedFile header = lex(opt.companion_header);
    harvest_decls(header.toks, merged);
  }
  for (const auto& [name, sym] : idx.decls) {
    merged.emplace(name, sym);
  }
  const std::vector<const FileIndex*> just_this = {&idx};
  const std::set<std::string> tainted = collect_tainted_fields(just_this, opt);
  std::vector<Finding> findings = run_file_checks(idx, opt, merged, tainted);
  std::vector<Finding> project = run_project_checks(just_this, opt);
  findings.insert(findings.end(), project.begin(), project.end());
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.check, a.message) <
           std::tie(b.file, b.line, b.check, b.message);
  });
  return findings;
}

ProjectReport lint_files(const std::vector<SourceFile>& files, const LintOptions& opt,
                         int threads) {
  // Deterministic order + one index per distinct path, whatever the caller
  // passed: headers reached through several includers are indexed once.
  std::vector<const SourceFile*> unique;
  {
    std::set<std::string> seen;
    for (const SourceFile& f : files) {
      if (seen.insert(f.path).second) {
        unique.push_back(&f);
      }
    }
    std::sort(unique.begin(), unique.end(),
              [](const SourceFile* a, const SourceFile* b) { return a->path < b->path; });
  }

  std::vector<FileIndex> indices(unique.size());
  util::ThreadPool pool(threads);
  pool.parallel_for(std::size_t{0}, unique.size(), [&](std::size_t i) {
    indices[i] = build_file_index(unique[i]->path, unique[i]->content);
  });

  std::map<std::string, const FileIndex*> by_path;
  for (const FileIndex& idx : indices) {
    by_path.emplace(idx.path, &idx);
  }
  // Merged per-file declaration tables. Precedence mirrors the single-file
  // API: companion header first, then the file's quoted includes (resolved
  // against the scanned set), then the file itself; first declaration wins.
  auto resolve_include = [&](const std::string& from, const std::string& inc)
      -> const FileIndex* {
    for (const std::string& cand :
         {inc, "src/" + inc, "tools/" + inc, dirname_of(from) + inc, "bench/" + inc,
          "tests/" + inc}) {
      const auto it = by_path.find(cand);
      if (it != by_path.end()) {
        return it->second;
      }
    }
    return nullptr;
  };
  std::vector<DeclMap> merged(indices.size());
  pool.parallel_for(std::size_t{0}, indices.size(), [&](std::size_t i) {
    const FileIndex& idx = indices[i];
    DeclMap& out = merged[i];
    const std::string stem = companion_path_of(idx.path);
    if (!stem.empty()) {
      for (const char* ext : {".hpp", ".h"}) {
        const auto it = by_path.find(stem + ext);
        if (it != by_path.end() && it->second != &idx) {
          for (const auto& [name, sym] : it->second->decls) {
            out.emplace(name, sym);
          }
          break;
        }
      }
    }
    for (const std::string& inc : idx.lex.includes) {
      const FileIndex* dep = resolve_include(idx.path, inc);
      if (dep != nullptr && dep != &idx) {
        for (const auto& [name, sym] : dep->decls) {
          out.emplace(name, sym);
        }
      }
    }
    for (const auto& [name, sym] : idx.decls) {
      out.emplace(name, sym);
    }
  });

  std::vector<const FileIndex*> all;
  all.reserve(indices.size());
  for (const FileIndex& idx : indices) {
    all.push_back(&idx);
  }
  const std::set<std::string> tainted = collect_tainted_fields(all, opt);

  std::vector<std::vector<Finding>> slots(indices.size());
  pool.parallel_for(std::size_t{0}, indices.size(), [&](std::size_t i) {
    slots[i] = run_file_checks(indices[i], opt, merged[i], tainted);
  });

  ProjectReport report;
  report.files = indices.size();
  for (const FileIndex& idx : indices) {
    report.tokens += idx.lex.toks.size();
  }
  for (std::vector<Finding>& slot : slots) {
    report.findings.insert(report.findings.end(), slot.begin(), slot.end());
  }
  std::vector<Finding> project = run_project_checks(all, opt);
  report.findings.insert(report.findings.end(), project.begin(), project.end());
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.check, a.message) <
                     std::tie(b.file, b.line, b.check, b.message);
            });
  return report;
}

// ---------------------------------------------------------------------------
// Baseline ratchet
// ---------------------------------------------------------------------------

Baseline Baseline::from_json(const util::Json& doc) {
  Baseline b;
  for (const util::Json& entry : doc.at("entries").as_array()) {
    const std::string check = entry.at("check").as_string();
    check_severity(check);  // validate the id
    b.set(check, entry.at("file").as_string(), static_cast<int>(entry.at("count").as_int()));
  }
  return b;
}

Baseline Baseline::load(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    return {};
  }
  return from_json(util::Json::parse_file(path));
}

util::Json Baseline::to_json() const {
  util::Json doc = util::Json::object();
  doc["version"] = 1;
  util::Json entries = util::Json::array();
  for (const auto& [key, count] : entries_) {
    util::Json e = util::Json::object();
    e["check"] = key.first;
    e["file"] = key.second;
    e["count"] = count;
    entries.push_back(std::move(e));
  }
  doc["entries"] = std::move(entries);
  return doc;
}

int Baseline::allowed(const std::string& check, const std::string& file) const {
  const auto it = entries_.find({check, file});
  return it == entries_.end() ? 0 : it->second;
}

void Baseline::set(const std::string& check, const std::string& file, int count) {
  entries_[{check, file}] = count;
}

GateResult apply_baseline(const std::vector<Finding>& findings, const Baseline& baseline) {
  GateResult gate;
  std::map<std::pair<std::string, std::string>, int> seen;
  for (const Finding& f : findings) {
    const int used = ++seen[{f.check, f.file}];
    if (used <= baseline.allowed(f.check, f.file)) {
      gate.baselined.push_back(f);
    } else {
      gate.fresh.push_back(f);
    }
  }
  for (const auto& [key, allowed] : baseline.entries()) {
    const auto it = seen.find(key);
    const int actual = it == seen.end() ? 0 : it->second;
    if (actual < allowed) {
      gate.stale.push_back({key.first, key.second, allowed, actual});
    }
  }
  return gate;
}

Baseline baseline_from_findings(const std::vector<Finding>& findings) {
  Baseline b;
  std::map<std::pair<std::string, std::string>, int> counts;
  for (const Finding& f : findings) {
    ++counts[{f.check, f.file}];
  }
  for (const auto& [key, count] : counts) {
    b.set(key.first, key.second, count);
  }
  return b;
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

namespace {

util::Json finding_json(const Finding& f) {
  util::Json e = util::Json::object();
  e["check"] = f.check;
  e["severity"] = severity_name(f.severity);
  e["file"] = f.file;
  e["line"] = static_cast<long long>(f.line);
  e["message"] = f.message;
  if (!f.hint.empty()) {
    e["hint"] = f.hint;
  }
  return e;
}

}  // namespace

util::Json report_json(const GateResult& gate, std::size_t files_scanned) {
  util::Json doc = util::Json::object();
  doc["ok"] = gate.ok();
  doc["files_scanned"] = static_cast<long long>(files_scanned);
  util::Json fresh = util::Json::array();
  for (const Finding& f : gate.fresh) {
    fresh.push_back(finding_json(f));
  }
  doc["findings"] = std::move(fresh);
  util::Json baselined = util::Json::array();
  for (const Finding& f : gate.baselined) {
    baselined.push_back(finding_json(f));
  }
  doc["baselined"] = std::move(baselined);
  util::Json stale = util::Json::array();
  for (const GateResult::Stale& s : gate.stale) {
    util::Json e = util::Json::object();
    e["check"] = s.check;
    e["file"] = s.file;
    e["allowed"] = s.allowed;
    e["actual"] = s.actual;
    stale.push_back(std::move(e));
  }
  doc["stale_baseline"] = std::move(stale);
  return doc;
}

void render_report(std::ostream& os, const GateResult& gate, std::size_t files_scanned,
                   double wall_s) {
  if (!gate.fresh.empty()) {
    util::TablePrinter table({"severity", "check", "location", "message"});
    for (const Finding& f : gate.fresh) {
      std::string msg = f.message;
      if (!f.hint.empty()) {
        msg += " [fix: " + f.hint + "]";
      }
      table.add_row({severity_name(f.severity), f.check,
                     f.file + ":" + std::to_string(f.line), msg});
    }
    table.print(os);
  }
  std::size_t errors = 0;
  for (const Finding& f : gate.fresh) {
    errors += f.severity == Severity::Error ? 1 : 0;
  }
  os << "acclaim-lint: " << gate.fresh.size() << " finding(s) (" << errors << " error(s), "
     << gate.fresh.size() - errors << " warning(s)), " << gate.baselined.size()
     << " baselined, " << gate.stale.size() << " stale baseline entr"
     << (gate.stale.size() == 1 ? "y" : "ies") << ", " << files_scanned
     << " file(s) scanned";
  if (wall_s >= 0.0) {
    std::ostringstream wall;
    wall.setf(std::ios::fixed);
    wall.precision(3);
    wall << wall_s;
    os << " in " << wall.str() << "s";
  }
  os << "\n";
  for (const GateResult::Stale& s : gate.stale) {
    os << "acclaim-lint: stale baseline entry " << s.check << " @ " << s.file << " (allows "
       << s.allowed << ", found " << s.actual
       << ") — ratchet it down with --write-baseline\n";
  }
}

}  // namespace acclaim::lint

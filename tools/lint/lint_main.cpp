// acclaim_lint CLI — scans the repo's own sources for determinism and
// correctness rule violations (see lint.hpp for the check catalogue).
//
// usage: acclaim_lint [--root DIR] [--baseline FILE] [--write-baseline]
//                     [--baseline-shrink] [--json] [--sarif FILE]
//                     [--threads N] [--list-checks] [paths...]
//
//   --root DIR        repo root all paths are resolved against (default: .)
//   --baseline FILE   known-debt ratchet file (default: tools/lint_baseline.json
//                     under the root when it exists)
//   --write-baseline  rewrite the baseline to exactly cover today's findings
//   --baseline-shrink ratchet: rewrite the baseline down to today's counts
//                     (only ever shrinks — fresh findings still fail the gate)
//   --json            machine-readable report on stdout instead of a table
//   --sarif FILE      also write a SARIF 2.1.0 report (for code scanning)
//   --threads N       scan concurrency (default: hardware concurrency)
//   --list-checks     print the check catalogue and exit
//   paths             files or directories relative to the root
//                     (default: src tools tests bench)
//
// Exit codes: 0 clean (baselined debt and stale entries do not fail),
// 1 findings above the baseline, 2 usage or I/O error.
//
// Every file is read and tokenized exactly once per scan: headers shared by
// many .cpp files enter the project index a single time and their symbol
// tables are merged into each includer through the include graph.
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lint/lint.hpp"
#include "lint/sarif.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace fs = std::filesystem;
using namespace acclaim;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name.rfind("build", 0) == 0;
}

void collect_files(const fs::path& root, const fs::path& rel, std::vector<std::string>& out) {
  const fs::path abs = root / rel;
  if (fs::is_regular_file(abs)) {
    if (lintable_extension(abs)) {
      out.push_back(rel.generic_string());
    }
    return;
  }
  if (!fs::is_directory(abs)) {
    throw IoError("lint path does not exist: " + abs.string());
  }
  for (fs::recursive_directory_iterator it(abs), end; it != end; ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path())) {
      out.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw IoError("cannot read " + p.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void list_checks(std::ostream& os) {
  util::TablePrinter table({"id", "severity", "rule"});
  for (const lint::CheckInfo& c : lint::all_checks()) {
    table.add_row({c.id, lint::severity_name(c.severity), c.summary});
  }
  table.print(os);
}

/// `::warning` workflow commands surface stale-baseline debt directly in the
/// GitHub Actions run annotations; a plain stderr note elsewhere.
void warn_stale(const lint::GateResult& gate) {
  if (gate.stale.empty()) {
    return;
  }
  const bool actions = std::getenv("GITHUB_ACTIONS") != nullptr;
  for (const lint::GateResult::Stale& s : gate.stale) {
    if (actions) {
      std::cout << "::warning file=" << s.file << "::stale lint baseline entry " << s.check
                << " allows " << s.allowed << " but only " << s.actual
                << " remain; run acclaim_lint --baseline-shrink\n";
    } else {
      std::cerr << "acclaim-lint: baseline is stale (" << s.check << " @ " << s.file
                << "); run --baseline-shrink to ratchet it down\n";
    }
  }
}

int run(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  std::string sarif_path;
  bool write_baseline = false;
  bool baseline_shrink = false;
  bool json = false;
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw InvalidArgument(std::string(flag) + " requires a value");
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--baseline-shrink") {
      baseline_shrink = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--sarif") {
      sarif_path = next("--sarif");
    } else if (arg == "--threads") {
      threads = std::stoi(next("--threads"));
    } else if (arg == "--list-checks") {
      list_checks(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      throw InvalidArgument("unknown flag: " + arg + " (see the header of lint_main.cpp)");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "tools", "tests", "bench"};
  }
  const fs::path root_path(root);
  if (baseline_path.empty()) {
    const fs::path def = root_path / "tools" / "lint_baseline.json";
    if (fs::exists(def)) {
      baseline_path = def.string();
    }
  }

  std::vector<std::string> rels;
  for (const std::string& p : paths) {
    if (!fs::exists(root_path / p) && (p == "bench" || p == "tests")) {
      continue;  // optional default trees
    }
    collect_files(root_path, p, rels);
  }
  std::sort(rels.begin(), rels.end());
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

  lint::LintOptions opt;
  const fs::path registry = root_path / opt.registry_path;
  if (fs::exists(registry)) {
    opt.telemetry_registry = util::Json::parse_file(registry.string());
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<lint::SourceFile> sources;
  sources.reserve(rels.size());
  for (const std::string& rel : rels) {
    sources.push_back({rel, read_file(root_path / rel)});
  }
  const lint::ProjectReport report = lint::lint_files(sources, opt, threads);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const std::string default_baseline =
      (root_path / "tools" / "lint_baseline.json").string();
  if (write_baseline) {
    const std::string out = baseline_path.empty() ? default_baseline : baseline_path;
    lint::baseline_from_findings(report.findings).to_json().dump_file(out);
    std::cerr << "acclaim-lint: wrote baseline (" << report.findings.size()
              << " finding(s)) to " << out << "\n";
    return 0;
  }

  const lint::Baseline baseline =
      baseline_path.empty() ? lint::Baseline{} : lint::Baseline::load(baseline_path);
  const lint::GateResult gate = lint::apply_baseline(report.findings, baseline);

  if (baseline_shrink) {
    // Ratchet: every (check, file) allowance drops to the current count.
    // Fresh findings are NOT absorbed — the gate below still fails on them.
    lint::Baseline shrunk;
    for (const auto& [key, allowed] : baseline.entries()) {
      int actual = 0;
      for (const lint::Finding& f : report.findings) {
        actual += (f.check == key.first && f.file == key.second) ? 1 : 0;
      }
      const int kept = std::min(allowed, actual);
      if (kept > 0) {
        shrunk.set(key.first, key.second, kept);
      }
    }
    const std::string out = baseline_path.empty() ? default_baseline : baseline_path;
    shrunk.to_json().dump_file(out);
    std::cerr << "acclaim-lint: shrank baseline from " << baseline.entries().size()
              << " to " << shrunk.entries().size() << " entr"
              << (shrunk.entries().size() == 1 ? "y" : "ies") << " at " << out << "\n";
  }

  if (!sarif_path.empty()) {
    lint::sarif_report(gate.fresh).dump_file(sarif_path);
  }

  if (json) {
    std::cout << lint::report_json(gate, report.files).dump(2) << "\n";
  } else {
    lint::render_report(std::cout, gate, report.files, wall_s);
  }
  warn_stale(gate);
  return gate.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "acclaim-lint: " << e.what() << "\n";
    return 2;
  }
}

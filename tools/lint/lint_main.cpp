// acclaim_lint CLI — scans the repo's own sources for determinism and
// correctness rule violations (see lint.hpp for the check catalogue).
//
// usage: acclaim_lint [--root DIR] [--baseline FILE] [--write-baseline]
//                     [--json] [--list-checks] [paths...]
//
//   --root DIR        repo root all paths are resolved against (default: .)
//   --baseline FILE   known-debt ratchet file (default: tools/lint_baseline.json
//                     under the root when it exists)
//   --write-baseline  rewrite the baseline to exactly cover today's findings
//   --json            machine-readable report on stdout instead of a table
//   --list-checks     print the check catalogue and exit
//   paths             files or directories relative to the root
//                     (default: src tools tests)
//
// Exit codes: 0 clean (baselined debt and stale entries do not fail),
// 1 findings above the baseline, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

namespace fs = std::filesystem;
using namespace acclaim;

namespace {

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

bool skip_dir(const fs::path& p) {
  const std::string name = p.filename().string();
  return name == ".git" || name.rfind("build", 0) == 0;
}

void collect_files(const fs::path& root, const fs::path& rel, std::vector<std::string>& out) {
  const fs::path abs = root / rel;
  if (fs::is_regular_file(abs)) {
    if (lintable_extension(abs)) {
      out.push_back(rel.generic_string());
    }
    return;
  }
  if (!fs::is_directory(abs)) {
    throw IoError("lint path does not exist: " + abs.string());
  }
  for (fs::recursive_directory_iterator it(abs), end; it != end; ++it) {
    if (it->is_directory() && skip_dir(it->path())) {
      it.disable_recursion_pending();
      continue;
    }
    if (it->is_regular_file() && lintable_extension(it->path())) {
      out.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw IoError("cannot read " + p.string());
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Content of x.hpp / x.h next to x.cpp, so member declarations are visible
/// when linting the implementation file; empty when there is none.
std::string companion_header_content(const fs::path& root, const std::string& rel) {
  const fs::path p = root / rel;
  if (p.extension() != ".cpp" && p.extension() != ".cc" && p.extension() != ".cxx") {
    return {};
  }
  for (const char* ext : {".hpp", ".h"}) {
    fs::path header = p;
    header.replace_extension(ext);
    if (fs::is_regular_file(header)) {
      return read_file(header);
    }
  }
  return {};
}

void list_checks(std::ostream& os) {
  util::TablePrinter table({"id", "severity", "rule"});
  for (const lint::CheckInfo& c : lint::all_checks()) {
    table.add_row({c.id, lint::severity_name(c.severity), c.summary});
  }
  table.print(os);
}

int run(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool write_baseline = false;
  bool json = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw InvalidArgument(std::string(flag) + " requires a value");
      }
      return argv[++i];
    };
    if (arg == "--root") {
      root = next("--root");
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--list-checks") {
      list_checks(std::cout);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      throw InvalidArgument("unknown flag: " + arg + " (see the header of lint_main.cpp)");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "tools", "tests"};
  }
  const fs::path root_path(root);
  if (baseline_path.empty()) {
    const fs::path def = root_path / "tools" / "lint_baseline.json";
    if (fs::exists(def)) {
      baseline_path = def.string();
    }
  }

  std::vector<std::string> files;
  for (const std::string& p : paths) {
    collect_files(root_path, p, files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<lint::Finding> findings;
  for (const std::string& rel : files) {
    lint::LintOptions opt;
    opt.companion_header = companion_header_content(root_path, rel);
    std::vector<lint::Finding> file_findings =
        lint::lint_source(rel, read_file(root_path / rel), opt);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }

  if (write_baseline) {
    const std::string out =
        baseline_path.empty() ? (root_path / "tools" / "lint_baseline.json").string()
                              : baseline_path;
    lint::baseline_from_findings(findings).to_json().dump_file(out);
    std::cerr << "acclaim-lint: wrote baseline (" << findings.size() << " finding(s)) to "
              << out << "\n";
    return 0;
  }

  const lint::Baseline baseline =
      baseline_path.empty() ? lint::Baseline{} : lint::Baseline::load(baseline_path);
  const lint::GateResult gate = lint::apply_baseline(findings, baseline);

  if (json) {
    std::cout << lint::report_json(gate, files.size()).dump(2) << "\n";
  } else {
    lint::render_report(std::cout, gate, files.size());
  }
  return gate.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "acclaim-lint: " << e.what() << "\n";
    return 2;
  }
}

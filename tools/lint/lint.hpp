// acclaim_lint — project-specific determinism & correctness static analysis.
//
// The repo's headline engineering property is bitwise-identical results for
// any --threads. That invariant is enforced dynamically by the golden
// fingerprints in tests/test_determinism.cpp; this linter enforces the coding
// rules behind it *statically*, before anything runs:
//
//   det-rand            no libc/<random> randomness in deterministic layers
//   det-wallclock       no wall-clock reads in deterministic layers
//   det-rng-ref-capture no by-ref Rng crossing a parallel_for/submit boundary
//   det-unordered-iter  no iteration over unordered containers
//   par-shared-write    no non-atomic shared writes in parallel lambdas
//   par-float-reduction no +=/-= float reductions in parallel lambdas
//   det-audit-order     no audit-log emission inside parallel lambdas
//   hyg-catch-log       catch blocks must log, rethrow, or return
//   hyg-naked-new       no naked new
//   hyg-float-eq        no ==/!= against floating-point literals
//
// The scanner is token-level (comments/strings/preprocessor lines are lexed
// away, so rule names inside string literals never fire) with lightweight
// declaration tracking — enough to tell `rngs[i]` (a pre-derived per-item
// stream, fine) from `rng.uniform()` (a shared generator crossing a thread
// boundary, a determinism bug). It is deliberately not a full C++ front end:
// findings err toward silence, and intentional exceptions carry an inline
//     // acclaim-lint: allow(<check-id>)  <reason>
// suppression on the same or preceding line. Remaining debt lives in a
// baseline file (tools/lint_baseline.json) that only ratchets down.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace acclaim::lint {

enum class Severity { Warning, Error };

/// "warning" / "error".
const char* severity_name(Severity s);

/// One registered check: stable id, gate severity, one-line rule statement.
struct CheckInfo {
  std::string id;
  Severity severity = Severity::Error;
  std::string summary;
};

/// Every check the scanner knows, in report order.
const std::vector<CheckInfo>& all_checks();

/// Severity of a check id; throws NotFoundError on unknown ids.
Severity check_severity(const std::string& id);

/// One rule violation at a source location.
struct Finding {
  std::string check;
  Severity severity = Severity::Error;
  std::string file;
  std::size_t line = 0;
  std::string message;
};

/// src/core, src/ml, src/simnet, src/benchdata, src/collectives.
std::vector<std::string> default_det_layers();

struct LintOptions {
  /// Repo-relative path prefixes whose files must be free of wall-clock and
  /// non-Rng randomness (the layers the golden determinism tests fingerprint).
  std::vector<std::string> det_layers = default_det_layers();
  /// Prefixes where unordered-container iteration is an error. Library and
  /// CLI code feeds ordered output (rule files, tables, accumulators); test
  /// fixtures may iterate scratch maps freely.
  std::vector<std::string> ordered_iter_layers = {"src/", "tools/"};
  /// Declarations harvested from a companion header (the CLI passes x.hpp's
  /// content when linting x.cpp, so members declared in the header — e.g. an
  /// unordered_map field iterated in the .cpp — are typed correctly).
  std::string companion_header;
};

/// Lints one translation unit. `path` is the repo-relative path (used for
/// layer scoping and reporting); `content` is the file text.
std::vector<Finding> lint_source(const std::string& path, const std::string& content,
                                 const LintOptions& opt = {});

/// Known-debt ratchet: per (check, file) allowed finding counts.
class Baseline {
 public:
  static Baseline from_json(const util::Json& doc);
  /// Missing file -> empty baseline; malformed file throws.
  static Baseline load(const std::string& path);
  util::Json to_json() const;

  int allowed(const std::string& check, const std::string& file) const;
  void set(const std::string& check, const std::string& file, int count);
  bool empty() const { return entries_.empty(); }

  const std::map<std::pair<std::string, std::string>, int>& entries() const {
    return entries_;
  }

 private:
  std::map<std::pair<std::string, std::string>, int> entries_;
};

/// Outcome of gating findings against a baseline.
struct GateResult {
  std::vector<Finding> fresh;      ///< above-baseline findings; these fail the build
  std::vector<Finding> baselined;  ///< findings covered by baseline allowances
  struct Stale {
    std::string check;
    std::string file;
    int allowed = 0;
    int actual = 0;
  };
  /// Baseline entries whose allowance exceeds the current count — debt was
  /// paid down; the baseline should be ratcheted (rewritten) to match.
  std::vector<Stale> stale;
  bool ok() const { return fresh.empty(); }
};

GateResult apply_baseline(const std::vector<Finding>& findings, const Baseline& baseline);

/// Baseline exactly covering `findings` (what --write-baseline persists).
Baseline baseline_from_findings(const std::vector<Finding>& findings);

/// Machine-readable report: {ok, files_scanned, counts, findings:[...]}.
util::Json report_json(const GateResult& gate, std::size_t files_scanned);

/// Human-readable report: a util::TablePrinter table plus a summary line.
void render_report(std::ostream& os, const GateResult& gate, std::size_t files_scanned);

}  // namespace acclaim::lint

// acclaim_lint — project-specific determinism & correctness static analysis.
//
// The repo's headline engineering property is bitwise-identical results for
// any --threads. That invariant is enforced dynamically by the golden
// fingerprints in tests/test_determinism.cpp; this linter enforces the coding
// rules behind it *statically*, before anything runs:
//
//   det-rand            no libc/<random> randomness in deterministic layers
//   det-wallclock       no wall-clock reads in deterministic layers
//   det-rng-ref-capture no by-ref Rng crossing a parallel_for/submit boundary
//   det-unordered-iter  no iteration over unordered containers
//   par-shared-write    no non-atomic shared writes in parallel lambdas
//   par-float-reduction no +=/-= float reductions in parallel lambdas
//   det-audit-order     no audit-log emission inside parallel lambdas
//   hyg-catch-log       catch blocks must log, rethrow, or return
//   hyg-naked-new       no naked new
//   hyg-float-eq        no ==/!= against floating-point literals
//
// v2 adds a semantic layer (lexer.hpp + sema.hpp: scoped token tree, symbol
// tables, include graph) and three flow-aware check families:
//
//   conc-lock-order       inconsistent mutex acquisition order across sites
//   conc-snapshot-escape  raw pointer/ref into a snapshot temporary
//   conc-unjoined-thread  std::thread neither joined, detached, nor moved
//   taint-unchecked-arith untrusted parse reaches arithmetic / alloc size
//   taint-narrowing-cast  untrusted parse narrows without a range check
//   drift-metric-name     metric names out of sync with the telemetry registry
//   drift-trace-event     EventKind uses out of sync with the registry
//   drift-dead-config     config struct fields never read anywhere
//
// The scanner is token-level (comments/strings/preprocessor lines are lexed
// away, so rule names inside string literals never fire) with lightweight
// declaration tracking — enough to tell `rngs[i]` (a pre-derived per-item
// stream, fine) from `rng.uniform()` (a shared generator crossing a thread
// boundary, a determinism bug). It is deliberately not a full C++ front end:
// findings err toward silence, and intentional exceptions carry an inline
//     // acclaim-lint: allow(<check-id>)  <reason>
// suppression on the same or preceding line (an allow above a multi-line
// statement covers the statement's full extent). Remaining debt lives in a
// baseline file (tools/lint_baseline.json) that only ratchets down.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace acclaim::lint {

enum class Severity { Warning, Error };

/// "warning" / "error".
const char* severity_name(Severity s);

/// One registered check: stable id, gate severity, one-line rule statement.
struct CheckInfo {
  std::string id;
  Severity severity = Severity::Error;
  std::string summary;
};

/// Every check the scanner knows, in report order.
const std::vector<CheckInfo>& all_checks();

/// Severity of a check id; throws NotFoundError on unknown ids.
Severity check_severity(const std::string& id);

/// One rule violation at a source location.
struct Finding {
  std::string check;
  Severity severity = Severity::Error;
  std::string file;
  std::size_t line = 0;
  std::string message;
  /// Optional fix-it guidance ("use std::scoped_lock(a, b)"); shown in the
  /// table/json/SARIF reports when non-empty.
  std::string hint;
};

/// src/core, src/ml, src/simnet, src/benchdata, src/collectives.
std::vector<std::string> default_det_layers();

/// Layers whose values cross a trust boundary (NDJSON, CLI argv, env, CSV):
/// src/serve, src/fleet, src/traces, src/benchdata, tools, bench.
std::vector<std::string> default_taint_layers();

struct LintOptions {
  /// Repo-relative path prefixes whose files must be free of wall-clock and
  /// non-Rng randomness (the layers the golden determinism tests fingerprint).
  std::vector<std::string> det_layers = default_det_layers();
  /// Prefixes where unordered-container iteration is an error. Library and
  /// CLI code feeds ordered output (rule files, tables, accumulators); test
  /// fixtures may iterate scratch maps freely.
  std::vector<std::string> ordered_iter_layers = {"src/", "tools/"};
  /// Prefixes where the taint-lite checks run: values produced by raw
  /// parses (stoi/atoi/strtol/parse_bytes/getenv) must pass through a
  /// checked_*/range-validated function before arithmetic, narrowing casts,
  /// or allocation sizes. Test sources are always exempt.
  std::vector<std::string> taint_layers = default_taint_layers();
  /// Declarations harvested from a companion header (the CLI passes x.hpp's
  /// content when linting x.cpp, so members declared in the header — e.g. an
  /// unordered_map field iterated in the .cpp — are typed correctly).
  std::string companion_header;
  /// Telemetry registry document (metrics + trace event names). Null
  /// disables drift-metric-name / drift-trace-event; the CLI loads it from
  /// tools/telemetry_registry.json.
  util::Json telemetry_registry;
  /// Path registry-side drift findings (unused entries) are attributed to.
  std::string registry_path = "tools/telemetry_registry.json";
};

/// Lints one translation unit. `path` is the repo-relative path (used for
/// layer scoping and reporting); `content` is the file text.
std::vector<Finding> lint_source(const std::string& path, const std::string& content,
                                 const LintOptions& opt = {});

/// One in-memory source for a project scan.
struct SourceFile {
  std::string path;
  std::string content;
};

/// Result of a whole-project scan.
struct ProjectReport {
  std::vector<Finding> findings;  ///< sorted by (file, line, check, message)
  std::size_t files = 0;
  std::size_t tokens = 0;
};

/// Lints a set of files as one project: every file is lexed and indexed
/// exactly once (headers are shared between their includers through the
/// include graph rather than re-tokenized), per-file passes run in parallel
/// over `threads` lanes with deterministic finding order, and the
/// project-wide passes (lock-order pairing, taint field propagation, drift)
/// see the whole file set.
ProjectReport lint_files(const std::vector<SourceFile>& files, const LintOptions& opt = {},
                         int threads = 1);

/// Known-debt ratchet: per (check, file) allowed finding counts.
class Baseline {
 public:
  static Baseline from_json(const util::Json& doc);
  /// Missing file -> empty baseline; malformed file throws.
  static Baseline load(const std::string& path);
  util::Json to_json() const;

  int allowed(const std::string& check, const std::string& file) const;
  void set(const std::string& check, const std::string& file, int count);
  bool empty() const { return entries_.empty(); }

  const std::map<std::pair<std::string, std::string>, int>& entries() const {
    return entries_;
  }

 private:
  std::map<std::pair<std::string, std::string>, int> entries_;
};

/// Outcome of gating findings against a baseline.
struct GateResult {
  std::vector<Finding> fresh;      ///< above-baseline findings; these fail the build
  std::vector<Finding> baselined;  ///< findings covered by baseline allowances
  struct Stale {
    std::string check;
    std::string file;
    int allowed = 0;
    int actual = 0;
  };
  /// Baseline entries whose allowance exceeds the current count — debt was
  /// paid down; the baseline should be ratcheted (rewritten) to match.
  std::vector<Stale> stale;
  bool ok() const { return fresh.empty(); }
};

GateResult apply_baseline(const std::vector<Finding>& findings, const Baseline& baseline);

/// Baseline exactly covering `findings` (what --write-baseline persists).
Baseline baseline_from_findings(const std::vector<Finding>& findings);

/// Machine-readable report: {ok, files_scanned, counts, findings:[...]}.
util::Json report_json(const GateResult& gate, std::size_t files_scanned);

/// Human-readable report: a util::TablePrinter table plus a summary line.
/// `wall_s` >= 0 appends the scan wall time to the summary.
void render_report(std::ostream& os, const GateResult& gate, std::size_t files_scanned,
                   double wall_s = -1.0);

}  // namespace acclaim::lint

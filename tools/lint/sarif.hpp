// SARIF 2.1.0 emission for acclaim_lint findings.
//
// The emitted document is the minimal schema-valid subset GitHub code
// scanning consumes: one run, the full check registry as driver rules
// (so suppressed checks still show their metadata), and one result per
// fresh finding with a physicalLocation anchored at the finding line.
#pragma once

#include <vector>

#include "lint/lint.hpp"
#include "util/json.hpp"

namespace acclaim::lint {

/// SARIF 2.1.0 document for `findings` (normally GateResult::fresh — the
/// baselined findings are debt already acknowledged, not new alerts).
util::Json sarif_report(const std::vector<Finding>& findings);

}  // namespace acclaim::lint

#include "lint/lexer.hpp"

#include <algorithm>
#include <cctype>

namespace acclaim::lint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Multi-char operators the checks care about, longest first.
const char* kPunct2[] = {"::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=",
                         "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "<<"};

void record_allows(AllowMap& allows, const std::string& comment, std::size_t line) {
  const std::string marker = "acclaim-lint:";
  std::size_t pos = comment.find(marker);
  if (pos == std::string::npos) {
    return;
  }
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) {
    return;
  }
  pos += 6;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) {
    return;
  }
  std::string id;
  for (std::size_t i = pos; i <= close; ++i) {
    const char c = i < close ? comment[i] : ',';
    if (c == ',' || c == ' ') {
      if (!id.empty()) {
        allows[line].insert(id);
        id.clear();
      }
    } else {
      id.push_back(c);
    }
  }
}

/// Records the target of `#include "..."` from one preprocessor line.
void record_include(LexedFile& out, const std::string& directive) {
  std::size_t pos = directive.find("include");
  if (pos == std::string::npos) {
    return;
  }
  pos = directive.find('"', pos);
  if (pos == std::string::npos) {
    return;  // angle include — system header, not part of the project graph
  }
  const std::size_t close = directive.find('"', pos + 1);
  if (close == std::string::npos) {
    return;
  }
  out.includes.push_back(directive.substr(pos + 1, close - pos - 1));
}

}  // namespace

LexedFile lex(const std::string& src) {
  LexedFile out;
  out.bytes = src.size();
  std::size_t i = 0;
  std::size_t line = 1;
  bool line_start = true;  // only whitespace seen since the last newline
  const std::size_t n = src.size();

  auto newline = [&] {
    ++line;
    line_start = true;
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip the whole (possibly continued) line so
    // `#include <unordered_map>` and macro bodies never produce tokens, but
    // keep quoted include targets for the project include graph.
    if (c == '#' && line_start) {
      const std::size_t start = i;
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          newline();
          i += 2;
          continue;
        }
        if (src[i] == '\n') {
          break;
        }
        ++i;
      }
      record_include(out, src.substr(start, i - start));
      continue;
    }
    line_start = false;
    // Line comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') {
        ++i;
      }
      record_allows(out.allows, src.substr(start, i - start), line);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t start_line = line;
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') {
          newline();
        }
        ++i;
      }
      i = std::min(n, i + 2);
      record_allows(out.allows, src.substr(start, i - start), start_line);
      continue;
    }
    // Raw string literal (the R/uR/u8R/LR/UR ident was just emitted).
    if (c == '"' && !out.toks.empty() && out.toks.back().kind == Tok::Kind::Ident) {
      const std::string& prev = out.toks.back().text;
      if (prev == "R" || prev == "uR" || prev == "u8R" || prev == "LR" || prev == "UR") {
        out.toks.pop_back();
        std::size_t j = i + 1;
        std::string delim;
        while (j < n && src[j] != '(') {
          delim.push_back(src[j++]);
        }
        const std::string closer = ")" + delim + "\"";
        const std::size_t end = src.find(closer, j);
        const std::size_t stop = end == std::string::npos ? n : end + closer.size();
        for (std::size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') {
            newline();
          }
        }
        const std::size_t body = j + 1;
        const std::size_t body_end = end == std::string::npos ? n : end;
        out.toks.push_back(
            {Tok::Kind::Str, src.substr(body, body_end > body ? body_end - body : 0), line});
        i = stop;
        continue;
      }
    }
    // String / char literal. Contents are kept (the drift checks compare
    // metric/trace names against the registry); every consumer that matches
    // punctuation or identifiers must check Tok::kind, never text alone.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t body = i + 1;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          ++i;
        }
        if (src[i] == '\n') {
          newline();
        }
        ++i;
      }
      const std::size_t body_end = i;
      ++i;
      out.toks.push_back(
          {Tok::Kind::Str, src.substr(body, body_end > body ? body_end - body : 0), line});
      continue;
    }
    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(src[i])) {
        ++i;
      }
      out.toks.push_back({Tok::Kind::Ident, src.substr(start, i - start), line});
      continue;
    }
    // Number (incl. 1e-9, 0x1f, digit separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' || src[i - 1] == 'p' ||
                    src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.toks.push_back({Tok::Kind::Num, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation, two-char operators first.
    if (i + 1 < n) {
      const std::string two = src.substr(i, 2);
      bool matched = false;
      for (const char* op : kPunct2) {
        if (two == op) {
          out.toks.push_back({Tok::Kind::Punct, two, line});
          i += 2;
          matched = true;
          break;
        }
      }
      if (matched) {
        continue;
      }
    }
    out.toks.push_back({Tok::Kind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

void extend_allows_to_statements(LexedFile& file) {
  if (file.allows_extended) {
    return;
  }
  file.allows_extended = true;
  const std::vector<Tok>& toks = file.toks;
  for (const auto& [allow_line, checks] : file.allows) {
    // First token at or after the allow line: either the statement the
    // comment trails, or the statement starting underneath it.
    std::size_t start = toks.size();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].line >= allow_line) {
        start = i;
        break;
      }
    }
    if (start >= toks.size()) {
      continue;
    }
    // Walk forward to the statement's end: the `;` at bracket depth zero
    // relative to the start, or the close of a brace block the statement
    // opened (function/lambda bodies without a trailing `;`). Bounded so a
    // pathological construct cannot swallow the rest of the file.
    constexpr std::size_t kMaxToks = 800;
    int paren = 0;
    int brace = 0;
    std::size_t last_line = toks[start].line;
    for (std::size_t i = start; i < toks.size() && i - start < kMaxToks; ++i) {
      const Tok& t = toks[i];
      if (t.kind == Tok::Kind::Punct) {
        if (t.text == "(" || t.text == "[") {
          ++paren;
        } else if (t.text == ")" || t.text == "]") {
          --paren;
          if (paren < 0) {
            break;  // closing an enclosing call — the statement ended before it
          }
        } else if (t.text == "{") {
          ++brace;
        } else if (t.text == "}") {
          --brace;
          if (brace < 0) {
            break;  // closing an enclosing block
          }
          if (brace == 0 && paren == 0 &&
              (i + 1 >= toks.size() || toks[i + 1].text != ";")) {
            last_line = t.line;  // block-shaped statement without trailing `;`
            break;
          }
        } else if (t.text == ";" && paren == 0 && brace == 0) {
          last_line = t.line;
          break;
        }
      }
      last_line = t.line;
    }
    for (std::size_t l = toks[start].line; l <= last_line; ++l) {
      file.extended_allows[l].insert(checks.begin(), checks.end());
    }
  }
}

}  // namespace acclaim::lint

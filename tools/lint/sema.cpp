#include "lint/sema.hpp"

#include <algorithm>
#include <set>

namespace acclaim::lint {

namespace {

bool is_unordered_name(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" || s == "unordered_multimap" ||
         s == "unordered_multiset";
}

bool is_mutex_name(const std::string& s) {
  return s == "mutex" || s == "shared_mutex" || s == "recursive_mutex" ||
         s == "timed_mutex" || s == "shared_timed_mutex" || s == "recursive_timed_mutex";
}

bool is_punct(const Tok& t, const char* text) {
  return t.kind == Tok::Kind::Punct && t.text == text;
}

}  // namespace

std::size_t match_paren(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Punct) {
      continue;
    }
    if (toks[i].text == "(") {
      ++depth;
    } else if (toks[i].text == ")") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

std::size_t match_brace(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Punct) {
      continue;
    }
    if (toks[i].text == "{") {
      ++depth;
    } else if (toks[i].text == "}") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

std::size_t match_bracket(const std::vector<Tok>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Punct) {
      continue;
    }
    if (toks[i].text == "[") {
      ++depth;
    } else if (toks[i].text == "]") {
      if (--depth == 0) {
        return i;
      }
    }
  }
  return toks.size();
}

std::size_t skip_template_args(const std::vector<Tok>& toks, std::size_t i) {
  int depth = 0;
  while (i < toks.size()) {
    const std::string& t = toks[i].text;
    if (toks[i].kind == Tok::Kind::Punct && t == "<") {
      ++depth;
    } else if (toks[i].kind == Tok::Kind::Punct && t == ">") {
      --depth;
      if (depth == 0) {
        return i + 1;
      }
    } else if (toks[i].kind == Tok::Kind::Punct && (t == ";" || t == "{")) {
      return i;  // malformed / not actually a template — bail out
    }
    ++i;
  }
  return i;
}

void harvest_decls(const std::vector<Tok>& toks, DeclMap& decls) {
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Ident) {
      continue;
    }
    const std::string& t = toks[i].text;
    const bool member_access =
        i > 0 && toks[i - 1].kind == Tok::Kind::Punct &&
        (toks[i - 1].text == "." || toks[i - 1].text == "->");
    if (member_access) {
      continue;
    }
    Sym type{};
    std::size_t j = 0;
    if (t == "Rng") {
      type = Sym::Rng;
      j = i + 1;
    } else if (is_unordered_name(t) || t == "atomic") {
      if (i + 1 >= toks.size() || toks[i + 1].text != "<") {
        continue;
      }
      type = is_unordered_name(t) ? Sym::Unordered : Sym::Atomic;
      j = skip_template_args(toks, i + 1);
      // An unordered type nested in an outer template (vector<unordered_map<..>>)
      // still taints the declared variable: close out the outer arguments.
      while (j < toks.size() && toks[j].kind == Tok::Kind::Punct && toks[j].text == ">") {
        ++j;
      }
    } else if (t == "double" || t == "float") {
      if (i > 0 && toks[i - 1].kind == Tok::Kind::Punct &&
          (toks[i - 1].text == "<" || toks[i - 1].text == ",")) {
        continue;  // template argument, not a declaration
      }
      type = Sym::Float;
      j = i + 1;
    } else if (is_mutex_name(t)) {
      type = Sym::Mutex;
      j = i + 1;
    } else if (t == "thread" || t == "jthread") {
      type = Sym::Thread;
      j = i + 1;
    } else {
      continue;
    }
    while (j < toks.size() && toks[j].kind == Tok::Kind::Punct &&
           (toks[j].text == "&" || toks[j].text == "*")) {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::Kind::Ident && toks[j].text == "const") {
      ++j;
    }
    if (j < toks.size() && toks[j].kind == Tok::Kind::Ident) {
      decls.emplace(toks[j].text, type);
    }
  }
}

namespace {

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kSet = {"if",     "for", "while", "switch",
                                             "do",     "else", "try",  "catch"};
  return kSet;
}

/// Classifies the `{` at `open` from its statement head — the tokens after
/// the previous `;`/`{`/`}` — and extracts a name where one exists.
void classify_brace(const std::vector<Tok>& toks, std::size_t open, Scope& scope) {
  std::size_t head_begin = 0;
  for (std::size_t i = open; i-- > 0;) {
    if (toks[i].kind == Tok::Kind::Punct &&
        (toks[i].text == ";" || toks[i].text == "{" || toks[i].text == "}")) {
      head_begin = i + 1;
      break;
    }
  }
  scope.kind = Scope::Kind::Block;
  if (head_begin >= open) {
    return;  // empty head: a bare block
  }
  const Tok& first = toks[head_begin];
  const Tok& last = toks[open - 1];
  if (first.kind == Tok::Kind::Ident && first.text == "namespace") {
    scope.kind = Scope::Kind::Namespace;
    for (std::size_t i = head_begin + 1; i < open; ++i) {
      if (toks[i].kind == Tok::Kind::Ident) {
        scope.name = toks[i].text;
      }
    }
    return;
  }
  if (first.kind == Tok::Kind::Ident && control_keywords().count(first.text)) {
    return;  // control statement body
  }
  // Brace-init / aggregate literal: `x = {..}`, `f({..})`, `return T{..}`.
  if (is_punct(last, "=") || is_punct(last, ",") || is_punct(last, "(") ||
      is_punct(last, "[") ||
      (last.kind == Tok::Kind::Ident && last.text == "return")) {
    return;
  }
  // Lambda: `[caps] {`, or `[caps](params) [mutable|noexcept|-> T] {`.
  std::size_t probe = open;
  while (probe > head_begin) {
    const Tok& p = toks[probe - 1];
    if (p.kind == Tok::Kind::Ident && (p.text == "mutable" || p.text == "noexcept")) {
      --probe;
      continue;
    }
    break;
  }
  if (probe > head_begin && is_punct(toks[probe - 1], "]")) {
    scope.kind = Scope::Kind::Lambda;
    return;
  }
  if (probe > head_begin && is_punct(toks[probe - 1], ")")) {
    // Find the matching `(` by walking back at depth.
    int depth = 0;
    for (std::size_t i = probe; i-- > head_begin;) {
      if (is_punct(toks[i], ")")) {
        ++depth;
      } else if (is_punct(toks[i], "(")) {
        if (--depth == 0) {
          if (i > head_begin && is_punct(toks[i - 1], "]")) {
            scope.kind = Scope::Kind::Lambda;
            return;
          }
          break;
        }
      }
    }
  }
  // Class/struct/enum definition (possibly after `template <...>`).
  for (std::size_t i = head_begin; i < open; ++i) {
    if (toks[i].kind != Tok::Kind::Ident) {
      continue;
    }
    const std::string& t = toks[i].text;
    if (t == "class" || t == "struct" || t == "union" || t == "enum") {
      // `template <class T>` parameters are inside <...>; a definition
      // keyword sits at angle-bracket depth zero.
      int angle = 0;
      for (std::size_t j = head_begin; j < i; ++j) {
        if (is_punct(toks[j], "<")) {
          ++angle;
        } else if (is_punct(toks[j], ">")) {
          --angle;
        }
      }
      if (angle != 0) {
        continue;
      }
      scope.kind = Scope::Kind::Class;
      std::size_t k = i + 1;
      if (k < open && toks[k].kind == Tok::Kind::Ident && toks[k].text == "class") {
        ++k;  // enum class
      }
      if (k < open && toks[k].kind == Tok::Kind::Ident) {
        scope.name = toks[k].text;
      }
      return;
    }
  }
  // Function definition: a top-level (...) parameter list in the head.
  int depth = 0;
  std::size_t first_open_paren = open;
  for (std::size_t i = head_begin; i < open; ++i) {
    if (is_punct(toks[i], "(")) {
      if (depth == 0 && first_open_paren == open) {
        first_open_paren = i;
      }
      ++depth;
    } else if (is_punct(toks[i], ")")) {
      --depth;
    }
  }
  if (first_open_paren < open) {
    scope.kind = Scope::Kind::Function;
    // Name: the identifier chain directly before the parameter list
    // (`ModelStore::publish` yields "publish"; operators yield "").
    std::size_t i = first_open_paren;
    while (i > head_begin) {
      const Tok& p = toks[i - 1];
      if (p.kind == Tok::Kind::Ident && p.text != "operator") {
        scope.name = p.text;
        break;
      }
      if (is_punct(p, "~")) {
        --i;
        continue;
      }
      break;
    }
  }
}

}  // namespace

std::vector<Scope> build_scopes(const std::vector<Tok>& toks) {
  std::vector<Scope> scopes;
  scopes.push_back({Scope::Kind::File, "", 0, toks.size(), -1});
  std::vector<int> stack = {0};
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::Kind::Punct) {
      continue;
    }
    if (toks[i].text == "{") {
      Scope s;
      s.open = i;
      s.close = toks.size();
      s.parent = stack.back();
      classify_brace(toks, i, s);
      scopes.push_back(s);
      stack.push_back(static_cast<int>(scopes.size()) - 1);
    } else if (toks[i].text == "}") {
      if (stack.size() > 1) {
        scopes[static_cast<std::size_t>(stack.back())].close = i;
        stack.pop_back();
      }
    }
  }
  return scopes;
}

FileIndex build_file_index(std::string path, const std::string& content) {
  FileIndex idx;
  idx.path = std::move(path);
  idx.lex = lex(content);
  extend_allows_to_statements(idx.lex);
  idx.scopes = build_scopes(idx.lex.toks);
  harvest_decls(idx.lex.toks, idx.decls);
  return idx;
}

int innermost_scope(const std::vector<Scope>& scopes, std::size_t tok_idx) {
  int best = 0;
  for (std::size_t s = 1; s < scopes.size(); ++s) {
    if (scopes[s].open < tok_idx && tok_idx < scopes[s].close &&
        scopes[s].open >= scopes[static_cast<std::size_t>(best)].open) {
      best = static_cast<int>(s);
    }
  }
  return best;
}

int enclosing_function(const std::vector<Scope>& scopes, int scope_idx) {
  while (scope_idx >= 0) {
    const Scope& s = scopes[static_cast<std::size_t>(scope_idx)];
    if (s.kind == Scope::Kind::Function || s.kind == Scope::Kind::Lambda) {
      return scope_idx;
    }
    scope_idx = s.parent;
  }
  return -1;
}

}  // namespace acclaim::lint

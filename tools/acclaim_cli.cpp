// acclaim — command-line front end for the ACCLAiM autotuning library.
//
// Subcommands:
//   collectives                         list collectives and their algorithms
//   collect    --machine M --nodes N --ppn P --collectives a,b --out FILE
//              exhaustively benchmark a feature grid into a dataset CSV
//   train      --dataset FILE --collective C [--model OUT] [--rules OUT]
//              active-learning training against a precollected dataset
//   tune-job   --machine M --nodes N --ppn P --collectives a,b --rules OUT
//              the full production pipeline (Fig. 1(b)) on a simulated job
//   select     --rules FILE --collective C --nodes N --ppn P --msg SIZE
//              resolve one scenario through a generated rule file
//   inspect    --dataset FILE           dataset summary (per collective)
//   report     TRACE.jsonl              render a run report from a telemetry trace
//   explain    AUDIT.jsonl              replay a decision audit log (--audit-out)
//   breakeven  --training SECONDS --speedup S
//              minimum application runtime that amortizes training (Fig. 15)
#include <iostream>
#include <algorithm>
#include <fstream>
#include <set>
#include <string>

#include "benchdata/dataset.hpp"
#include "cli_args.hpp"
#include "core/acquisition.hpp"
#include "core/active_learner.hpp"
#include "core/evaluator.hpp"
#include "core/heuristic.hpp"
#include "core/pipeline.hpp"
#include "core/model.hpp"
#include "fleet/fleet.hpp"
#include "platform/app_model.hpp"
#include "serve/daemon.hpp"
#include "serve/protocol.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/report.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace acclaim;

simnet::MachineConfig machine_by_name(const std::string& name) {
  if (name == "bebop") {
    return simnet::bebop_like();
  }
  if (name == "theta") {
    return simnet::theta_like();
  }
  if (name == "fattree") {
    return simnet::fat_tree_like();
  }
  if (name == "tiny") {
    return simnet::tiny_test_machine();
  }
  throw InvalidArgument("unknown machine '" + name + "' (bebop | theta | fattree | tiny)");
}

std::vector<coll::Collective> collectives_from(const std::string& csv) {
  std::vector<coll::Collective> out;
  for (const std::string& name : cli::split_csv(csv)) {
    out.push_back(coll::parse_collective(name));
  }
  if (out.empty()) {
    throw InvalidArgument("--collectives must name at least one collective");
  }
  return out;
}

int cmd_collectives() {
  util::TablePrinter table({"collective", "algorithms", "P2-favoring"});
  for (coll::Collective c : coll::all_collectives()) {
    std::string algs;
    std::string p2;
    for (coll::Algorithm a : coll::algorithms_for(c)) {
      const auto& info = coll::algorithm_info(a);
      algs += (algs.empty() ? "" : ", ") + std::string(info.name);
      p2 += (p2.empty() ? "" : ", ") + std::string(info.p2_favoring ? "yes" : "no");
    }
    table.add_row({coll::collective_name(c), algs, p2});
  }
  table.print(std::cout);
  return 0;
}

int cmd_collect(const cli::Args& args) {
  const simnet::MachineConfig machine = machine_by_name(args.get("machine", "bebop"));
  const int nodes = args.get_int("nodes", 32);
  const int ppn = args.get_int("ppn", 16);
  const std::uint64_t min_msg = args.get_bytes("min-msg", 8);
  const std::uint64_t max_msg = args.get_bytes("max-msg", 1 << 20);
  const std::string out = args.require_flag("out");
  const auto collectives = collectives_from(args.get("collectives", "bcast"));
  bench::FeatureGrid grid = bench::FeatureGrid::p2(nodes, ppn, min_msg, max_msg);
  if (args.get("nonp2", "yes") == "yes") {
    util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 7)));
    const bench::FeatureGrid np2 = grid.with_nonp2_msgs(rng);
    grid.msgs.insert(grid.msgs.end(), np2.msgs.begin(), np2.msgs.end());
    std::sort(grid.msgs.begin(), grid.msgs.end());
  }
  std::size_t total = 0;
  for (coll::Collective c : collectives) {
    total += grid.points(c).size();
  }
  std::cout << "collecting " << total << " points on " << machine.name << "...\n";
  const bench::Dataset ds = bench::precollect(
      machine, grid, collectives, static_cast<std::uint64_t>(args.get_int("seed", 7)));
  ds.save(out);
  std::cout << "wrote " << out << " (" << ds.size() << " measurements, "
            << util::format_seconds(ds.total_collection_cost_s())
            << " of simulated collection)\n";
  return 0;
}

// Shared --trace-out / --metrics-out / --chrome-out / --audit-out /
// --profile-out / --prom-out / --threads handling for the training commands.
// open_telemetry must run before any instrumented work; finish_telemetry
// flushes the metrics snapshot, closes the trace and audit streams, converts
// the run's events to a chrome://tracing document, and writes the profiler
// and Prometheus expositions afterwards.
void open_telemetry(const cli::Args& args) {
  if (args.has("threads")) {
    util::set_global_threads(args.get_int("threads", 0));
  }
  if (args.has("trace-out")) {
    telemetry::tracer().open_stream(args.get("trace-out"));
  }
  if (args.has("chrome-out")) {
    // The chrome export folds the in-memory ring, so it works with or
    // without a JSON-lines stream destination.
    telemetry::tracer().enable_ring(1 << 20);
  }
  if (args.has("audit-out")) {
    telemetry::audit().open_stream(args.get("audit-out"));
  }
  if (args.has("profile-out")) {
    telemetry::profiler().enable();
  }
}

void finish_telemetry(const cli::Args& args) {
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out");
    telemetry::publish_thread_pool_metrics();
    telemetry::metrics().dump_file(path);
    std::cout << "wrote metrics to " << path << "\n";
  }
  if (args.has("prom-out")) {
    const std::string path = args.get("prom-out");
    telemetry::publish_thread_pool_metrics();
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
      throw IoError("cannot open " + path);
    }
    out << telemetry::prometheus_text(telemetry::metrics());
    std::cout << "wrote Prometheus exposition to " << path << "\n";
  }
  if (args.has("chrome-out")) {
    const std::string path = args.get("chrome-out");
    telemetry::write_chrome_trace(telemetry::tracer().ring_snapshot(), path);
    std::cout << "wrote chrome trace to " << path << " (open via chrome://tracing)\n";
  }
  if (args.has("trace-out")) {
    telemetry::tracer().close_stream();
    std::cout << "wrote trace to " << args.get("trace-out") << "\n";
  }
  if (args.has("audit-out")) {
    const std::uint64_t n = telemetry::audit().recorded();
    telemetry::audit().close_stream();
    std::cout << "wrote audit log to " << args.get("audit-out") << " (" << n
              << " decisions; inspect with `acclaim explain`)\n";
  }
  if (args.has("profile-out")) {
    const std::string path = args.get("profile-out");
    telemetry::profiler().write_folded(path);
    std::cout << "wrote folded stacks to " << path
              << " (feed to flamegraph.pl or speedscope)\n";
  }
}

int cmd_train(const cli::Args& args) {
  open_telemetry(args);
  const bench::Dataset ds = bench::Dataset::load(args.require_flag("dataset"));
  const coll::Collective c = coll::parse_collective(args.get("collective", "bcast"));
  // Recover the P2 axes from the dataset itself.
  std::vector<int> nodes;
  std::vector<int> ppns;
  std::vector<std::uint64_t> msgs;
  {
    std::set<int> ns;
    std::set<int> ps;
    std::set<std::uint64_t> ms;
    for (const bench::Scenario& s : ds.scenarios(c)) {
      if (util::is_power_of_two(static_cast<std::uint64_t>(s.nnodes)) &&
          util::is_power_of_two(s.msg_bytes)) {
        ns.insert(s.nnodes);
        ps.insert(s.ppn);
        ms.insert(s.msg_bytes);
      }
    }
    nodes.assign(ns.begin(), ns.end());
    ppns.assign(ps.begin(), ps.end());
    msgs.assign(ms.begin(), ms.end());
  }
  const core::FeatureSpace space(nodes, ppns, msgs);
  core::DatasetEnvironment env(ds);
  core::AcclaimAcquisition policy;
  core::ActiveLearnerConfig cfg;
  cfg.forest.n_trees = args.get_int("trees", 50);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.threads = args.get_int("threads", 0);
  if (args.has("max-points")) {
    cfg.max_points = args.get_int("max-points", -1);
  }
  core::ActiveLearner learner(c, space, env, policy, cfg);
  const core::TrainingResult result = learner.run();
  const core::Evaluator ev(ds);
  const double slow = ev.average_slowdown(space.scenarios(c), result.model);
  std::cout << "trained " << coll::collective_name(c) << ": " << result.collected.size()
            << " points, " << util::format_seconds(result.train_time_s)
            << " simulated collection, " << (result.converged ? "converged" : "stopped")
            << ", avg slowdown " << util::fixed(slow, 3) << "\n";
  if (args.has("model")) {
    result.model.to_json().dump_file(args.get("model"));
    std::cout << "wrote model to " << args.get("model") << "\n";
  }
  if (args.has("rules")) {
    const core::RuleTable table = core::RuleGenerator().generate(result.model, space);
    core::rules_to_json({table}).dump_file(args.get("rules"));
    std::cout << "wrote rules to " << args.get("rules") << "\n";
  }
  finish_telemetry(args);
  return 0;
}

int cmd_tune_job(const cli::Args& args) {
  open_telemetry(args);
  core::JobSpec spec;
  spec.nnodes = args.get_int("nodes", 32);
  spec.ppn = args.get_int("ppn", 16);
  spec.min_msg = args.get_bytes("min-msg", 8);
  spec.max_msg = args.get_bytes("max-msg", 1 << 20);
  spec.job_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  spec.collectives = collectives_from(args.get("collectives", "bcast,allreduce"));
  core::ActiveLearnerConfig learner;
  learner.forest.n_trees = args.get_int("trees", 50);
  learner.max_points = args.get_int("max-points", 250);
  learner.threads = args.get_int("threads", 0);
  const core::AcclaimPipeline pipeline(machine_by_name(args.get("machine", "theta")), learner);
  const core::PipelineResult result = pipeline.run(spec);
  util::TablePrinter table({"collective", "points", "time", "converged"});
  for (const auto& t : result.training) {
    table.add_row({coll::collective_name(t.collective), std::to_string(t.points),
                   util::format_seconds(t.train_time_s), t.converged ? "yes" : "no"});
  }
  table.print(std::cout);
  std::cout << "total training: " << util::format_seconds(result.total_training_s) << "\n";
  const std::string out = args.get("rules", "acclaim_tuning.json");
  result.config.dump_file(out);
  std::cout << "wrote " << out << "\n";
  finish_telemetry(args);
  return 0;
}

int cmd_fleet(const cli::Args& args) {
  open_telemetry(args);
  fleet::FleetConfig config;
  config.machine = machine_by_name(args.get("machine", "bebop"));
  config.stream.n_jobs = args.get_int("jobs", 100);
  config.stream.mean_interarrival_s = std::stod(args.get("mean-interarrival", "45"));
  config.stream.seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  if (args.has("node-choices")) {
    config.stream.node_choices.clear();
    for (const std::string& n : cli::split_csv(args.get("node-choices"))) {
      config.stream.node_choices.push_back(std::stoi(n));
    }
  }
  if (args.has("ppn-choices")) {
    config.stream.ppn_choices.clear();
    for (const std::string& p : cli::split_csv(args.get("ppn-choices"))) {
      config.stream.ppn_choices.push_back(std::stoi(p));
    }
  }
  config.warm_start = args.get("warm", "yes") == "yes";
  config.max_transfer_distance = std::stod(args.get("max-distance", "8"));
  config.collectives_per_job = args.get_int("collectives-per-job", 2);
  config.learner.forest.n_trees = args.get_int("trees", 20);
  config.learner.max_points = args.get_int("max-points", 90);
  config.learner.threads = args.get_int("threads", 0);

  serve::ModelStore store;
  const fleet::FleetResult result = fleet::replay_fleet(config, store);

  util::TablePrinter table({"jobs", "warm", "points", "training", "mean speedup",
                            "mean breakeven", "makespan", "store keys"});
  const fleet::FleetTotals& t = result.totals;
  table.add_row({std::to_string(t.jobs), std::to_string(t.warm_jobs), std::to_string(t.points),
                 util::format_seconds(t.training_s), util::fixed(t.mean_speedup, 3) + "x",
                 t.amortizing_jobs > 0 ? util::format_seconds(t.mean_breakeven_s) : "never",
                 util::format_seconds(t.makespan_s), std::to_string(store.size())});
  table.print(std::cout);
  std::cout << "replay fingerprint: " << result.fingerprint << "\n";

  if (args.has("out")) {
    util::Json doc = util::Json::object();
    doc["jobs"] = t.jobs;
    doc["warm_jobs"] = t.warm_jobs;
    doc["points"] = t.points;
    doc["training_s"] = t.training_s;
    doc["mean_speedup"] = t.mean_speedup;
    doc["mean_breakeven_s"] = t.mean_breakeven_s;
    doc["amortizing_jobs"] = t.amortizing_jobs;
    doc["mean_transfer_distance"] = t.mean_transfer_distance;
    doc["makespan_s"] = t.makespan_s;
    doc["fingerprint"] = result.fingerprint;
    util::Json per_job = util::Json::array();
    for (const fleet::JobOutcome& j : result.jobs) {
      util::Json row = util::Json::object();
      row["job_id"] = j.job_id;
      row["app"] = j.app;
      row["nnodes"] = j.nnodes;
      row["ppn"] = j.ppn;
      row["arrival_s"] = j.arrival_s;
      row["training_s"] = j.training_s;
      row["points"] = j.points;
      row["warm_collectives"] = j.warm_collectives;
      row["transfer_distance"] = j.transfer_distance;
      row["speedup"] = j.speedup;
      row["breakeven_s"] = j.breakeven_s;
      per_job.as_array().push_back(std::move(row));
    }
    doc["jobs_detail"] = std::move(per_job);
    doc.dump_file(args.get("out"));
    std::cout << "wrote " << args.get("out") << "\n";
  }
  finish_telemetry(args);
  return 0;
}

int cmd_report(const cli::Args& args) {
  const bool have_trace = args.has("trace");
  const bool have_metrics = args.has("metrics");
  if (!have_trace && !have_metrics) {
    throw InvalidArgument("report needs a trace path and/or --metrics FILE.json");
  }
  if (have_trace) {
    const std::string path = args.require_flag("trace");
    const auto events = telemetry::read_trace_file(path);
    if (events.empty()) {
      std::cerr << "trace " << path << " holds no recognizable events\n";
      return 1;
    }
    const telemetry::RunReport report = telemetry::build_report(events);
    telemetry::render_report(report, std::cout, args.get_int("rows", 12));
    if (args.has("chrome-out")) {
      const std::string out = args.get("chrome-out");
      telemetry::write_chrome_trace(events, out);
      std::cout << "wrote chrome trace to " << out << " (open via chrome://tracing)\n";
    }
  }
  if (have_metrics) {
    if (have_trace) {
      std::cout << "\n";
    }
    // load_metrics_snapshot turns a missing/empty/malformed file into one
    // clear InvalidArgument line, which main() prints before exiting 1 —
    // instead of rendering a confusing empty report.
    telemetry::render_metrics_summary(telemetry::load_metrics_snapshot(args.get("metrics")),
                                      std::cout);
  }
  return 0;
}

int cmd_explain(const cli::Args& args) {
  const std::string path = args.require_flag("audit");
  const auto records = telemetry::read_audit_file(path);
  if (records.empty()) {
    std::cerr << "audit log " << path << " holds no decision records\n";
    return 1;
  }
  const telemetry::ExplainReport report = telemetry::build_explain(records);
  telemetry::render_explain(report, std::cout, args.get_int("decisions", 4),
                            args.get_int("rows", 12));
  return 0;
}

int cmd_select(const cli::Args& args) {
  const core::SelectionEngine engine =
      core::SelectionEngine::from_file(args.require_flag("rules"));
  bench::Scenario s;
  s.collective = coll::parse_collective(args.require_flag("collective"));
  s.nnodes = args.get_int("nodes", 16);
  s.ppn = args.get_int("ppn", 16);
  s.msg_bytes = args.get_bytes("msg", 1024);
  const coll::Algorithm tuned = engine.select(s);
  const coll::Algorithm fallback = core::mpich_default_selection(s);
  std::cout << s.to_string() << "\n  tuned rules:      " << coll::algorithm_info(tuned).name
            << "\n  MPICH default:    " << coll::algorithm_info(fallback).name << "\n";
  return 0;
}

int cmd_inspect(const cli::Args& args) {
  const bench::Dataset ds = bench::Dataset::load(args.require_flag("dataset"));
  const core::Evaluator ev(ds);
  util::TablePrinter table({"collective", "scenarios", "points", "collection time",
                            "heuristic slowdown"});
  for (coll::Collective c : coll::all_collectives()) {
    const auto scenarios = ds.scenarios(c);
    if (scenarios.empty()) {
      continue;
    }
    double cost = 0.0;
    for (const auto& p : ds.points(c)) {
      cost += ds.at(p).collect_cost_s;
    }
    table.add_row({coll::collective_name(c), std::to_string(scenarios.size()),
                   std::to_string(ds.points(c).size()), util::format_seconds(cost),
                   util::fixed(ev.average_slowdown(scenarios, core::mpich_default_selection),
                               3)});
  }
  table.print(std::cout);
  return 0;
}

// Loads a model JSON file and publishes it into `core` under the scale/
// topology requested on the command line (nodes/ppn 0 = wildcard key that
// serves every scale).
std::uint64_t publish_model_file(serve::ServeCore& core, const std::string& path, int nodes,
                                 int ppn, const std::string& topology) {
  core::CollectiveModel model = core::CollectiveModel::from_json(util::Json::parse_file(path));
  const serve::ModelKey key{model.collective(), serve::checked_comm_size(nodes, ppn), topology};
  const std::uint64_t version = core.publish(key, std::move(model));
  std::cerr << "published " << path << " as " << key.to_string() << " (v" << version << ")\n";
  return version;
}

int cmd_serve(const cli::Args& args) {
  open_telemetry(args);
  serve::ServeConfig cfg;
  cfg.store_shards = args.get_int("store-shards", 8);
  cfg.cache_shards = args.get_int("cache-shards", 8);
  cfg.cache_capacity = static_cast<std::size_t>(args.get_int("cache-capacity", 1 << 16));
  serve::ServeCore core(cfg);
  const int nodes = args.get_int("nodes", 0);
  const int ppn = args.get_int("ppn", 0);
  const std::string topology = args.get("topology", "default");
  for (const std::string& path : cli::split_csv(args.get("model", ""))) {
    publish_model_file(core, path, nodes, ppn, topology);
  }
  serve::Daemon daemon(core);
  std::uint64_t handled = 0;
  if (args.has("socket")) {
    handled = daemon.serve_unix_socket(args.get("socket"));
  } else {
    // Responses go to stdout, so keep chatter on stderr.
    handled = daemon.serve_stream(std::cin, std::cout);
  }
  std::cerr << "acclaimd served " << handled << " requests\n";
  finish_telemetry(args);
  return 0;
}

int cmd_query(const cli::Args& args) {
  const std::string op = args.get("op", "query");
  auto scenario_from_flags = [&args]() {
    bench::Scenario s;
    s.collective = coll::parse_collective(args.require_flag("collective"));
    s.nnodes = args.get_int("nodes", 16);
    s.ppn = args.get_int("ppn", 16);
    s.msg_bytes = args.get_bytes("msg", 1024);
    return s;
  };

  if (args.has("socket")) {
    serve::Request req;
    if (op == "query") {
      req.op = serve::Op::Query;
      req.queries.push_back(scenario_from_flags());
      req.topology = args.get("topology", "default");
    } else if (op == "ping") {
      req.op = serve::Op::Ping;
    } else if (op == "stats") {
      req.op = serve::Op::Stats;
    } else if (op == "shutdown") {
      req.op = serve::Op::Shutdown;
    } else if (op == "publish") {
      req.op = serve::Op::Publish;
      req.path = args.require_flag("path");
      req.nodes = args.get_int("nodes", 0);
      req.ppn = args.get_int("ppn", 0);
      req.topology = args.get("topology", "default");
    } else {
      throw InvalidArgument("unknown --op '" + op +
                            "' (query | ping | stats | shutdown | publish)");
    }
    std::cout << serve::unix_socket_request(args.get("socket"),
                                            serve::request_to_json(req).dump())
              << "\n";
    return 0;
  }

  // Direct mode: answer from the model file in-process, emitting the same
  // response shape as the daemon. The CI smoke test diffs this against the
  // daemon's answer to prove serving is bitwise-faithful to the model.
  if (op != "query") {
    throw InvalidArgument("direct mode (--model) supports only --op query");
  }
  const core::CollectiveModel model =
      core::CollectiveModel::from_json(util::Json::parse_file(args.require_flag("model")));
  const bench::Scenario s = scenario_from_flags();
  if (model.collective() != s.collective) {
    throw InvalidArgument(std::string("model is for ") +
                          coll::collective_name(model.collective()) + ", not " +
                          coll::collective_name(s.collective));
  }
  util::Json doc = util::Json::object();
  doc["ok"] = true;
  doc["op"] = "query";
  doc["algorithm"] = coll::algorithm_info(model.select(s)).name;
  doc["cached"] = false;
  doc["version"] = 0;
  std::cout << doc.dump() << "\n";
  return 0;
}

int cmd_breakeven(const cli::Args& args) {
  const double training_s = args.get_double("training", 300.0);
  if (args.has("speedup")) {
    const double s = args.get_double("speedup", 1.01);
    std::cout << "training " << util::format_seconds(training_s) << " at " << s
              << "x app speedup -> break-even runtime "
              << util::format_seconds(platform::breakeven_runtime_s(training_s, s)) << "\n";
    return 0;
  }
  util::TablePrinter table({"speedup", "break-even runtime"});
  for (double s : {1.005, 1.01, 1.02, 1.05, 1.10, 1.20}) {
    table.add_row({util::fixed(s, 3) + "x",
                   util::format_seconds(platform::breakeven_runtime_s(training_s, s))});
  }
  table.print(std::cout);
  return 0;
}

void usage() {
  std::cout <<
      R"(acclaim — ML-based MPI collective autotuning (CLUSTER'22 reproduction)

usage: acclaim <command> [--flag value ...]

commands:
  collectives   list supported collectives and algorithms
  collect       benchmark a feature grid into a dataset CSV
                  --out FILE [--machine bebop|theta|tiny] [--nodes N] [--ppn P]
                  [--collectives a,b] [--min-msg S] [--max-msg S] [--nonp2 yes|no] [--seed K]
  train         active-learning training from a dataset
                  --dataset FILE [--collective C] [--model OUT] [--rules OUT]
                  [--trees N] [--max-points N] [--seed K] [--threads N]
                  [--trace-out FILE.jsonl] [--metrics-out FILE.json]
                  [--chrome-out FILE.json]   (chrome://tracing timeline)
                  [--audit-out FILE.jsonl]   (decision flight recorder)
                  [--profile-out FILE.folded] [--prom-out FILE.prom]
  tune-job      full pipeline on a simulated job (train + rule file)
                  [--machine theta] [--nodes N] [--ppn P] [--collectives a,b]
                  [--rules OUT] [--max-points N] [--seed K] [--threads N]
                  [--trace-out FILE.jsonl] [--metrics-out FILE.json]
                  [--chrome-out FILE.json]   (chrome://tracing timeline)
                  [--audit-out FILE.jsonl]   (decision flight recorder)
                  [--profile-out FILE.folded] [--prom-out FILE.prom]
  explain       replay an audit log into per-decision "why" reports
                  AUDIT.jsonl | --audit FILE [--decisions N] [--rows N]
  report        render a run report from a trace and/or metrics snapshot
                  TRACE.jsonl | --trace FILE [--rows N]
                  [--metrics FILE.json]   (histogram p50/p95/p99 summaries)
                  [--chrome-out FILE.json]   (convert the trace for chrome://tracing)
  select        resolve a scenario through a rule file
                  --rules FILE --collective C [--nodes N] [--ppn P] [--msg SIZE]
  inspect       summarize a dataset CSV
                  --dataset FILE
  serve         run the acclaimd model-serving daemon (NDJSON protocol)
                  [--model FILE[,FILE...]] [--socket PATH]  (default: stdin/stdout)
                  [--nodes N --ppn P] [--topology T]        (publish key; 0 = any scale)
                  [--cache-capacity N] [--store-shards N] [--cache-shards N]
                  [--threads N] [--metrics-out FILE.json] [--prom-out FILE.prom]
  query         ask a daemon (--socket) or a model file directly (--model)
                  --socket PATH | --model FILE
                  --collective C [--nodes N] [--ppn P] [--msg SIZE] [--topology T]
                  [--op query|ping|stats|shutdown|publish] [--path MODEL.json]
  fleet         replay a job-arrival stream with warm-start model transfer
                  [--machine bebop] [--jobs N] [--mean-interarrival S] [--seed K]
                  [--node-choices 4,8,16] [--ppn-choices 2,4,8] [--warm yes|no]
                  [--max-distance D] [--collectives-per-job K] [--trees N]
                  [--max-points N] [--out SUMMARY.json] [--threads N]
                  [--trace-out FILE.jsonl] [--metrics-out FILE.json]
  breakeven     training-cost amortization (Fig. 15)
                  [--training SECONDS] [--speedup S]
)";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "collectives") {
      return cmd_collectives();
    }
    if (cmd == "collect") {
      return cmd_collect(cli::Args(argc - 2, argv + 2,
                                   {"machine", "nodes", "ppn", "collectives", "min-msg",
                                    "max-msg", "out", "nonp2", "seed"}));
    }
    if (cmd == "train") {
      return cmd_train(cli::Args(argc - 2, argv + 2,
                                 {"dataset", "collective", "model", "rules", "trees",
                                  "max-points", "seed", "threads", "trace-out",
                                  "metrics-out", "chrome-out", "audit-out", "profile-out",
                                  "prom-out"}));
    }
    if (cmd == "tune-job") {
      return cmd_tune_job(cli::Args(argc - 2, argv + 2,
                                    {"machine", "nodes", "ppn", "collectives", "min-msg",
                                     "max-msg", "rules", "trees", "max-points", "seed",
                                     "threads", "trace-out", "metrics-out", "chrome-out",
                                     "audit-out", "profile-out", "prom-out"}));
    }
    if (cmd == "explain") {
      // Accept the audit path positionally (`acclaim explain run.jsonl`) or
      // via --audit, mirroring `report`.
      std::vector<char*> rest(argv + 2, argv + argc);
      std::string positional;
      if (!rest.empty() && rest.front()[0] != '-') {
        positional = rest.front();
        rest.erase(rest.begin());
      }
      cli::Args args(static_cast<int>(rest.size()), rest.data(),
                     {"audit", "decisions", "rows"});
      if (!positional.empty() && args.has("audit")) {
        throw InvalidArgument(
            "explain takes either a positional audit path or --audit, not both");
      }
      if (!positional.empty()) {
        std::vector<char*> fwd;
        std::string audit_flag = "--audit";
        fwd.push_back(audit_flag.data());
        fwd.push_back(positional.data());
        for (char* a : rest) {
          fwd.push_back(a);
        }
        args = cli::Args(static_cast<int>(fwd.size()), fwd.data(),
                         {"audit", "decisions", "rows"});
      }
      return cmd_explain(args);
    }
    if (cmd == "report") {
      // Accept the trace path positionally (`acclaim report t.jsonl`) or
      // via --trace; remaining arguments stay ordinary flags.
      std::vector<char*> rest(argv + 2, argv + argc);
      std::string positional;
      if (!rest.empty() && rest.front()[0] != '-') {
        positional = rest.front();
        rest.erase(rest.begin());
      }
      cli::Args args(static_cast<int>(rest.size()), rest.data(), {"trace", "rows", "metrics", "chrome-out"});
      if (!positional.empty() && args.has("trace")) {
        throw InvalidArgument("report takes either a positional trace path or --trace, not both");
      }
      if (!positional.empty()) {
        std::vector<char*> fwd;
        std::string trace_flag = "--trace";
        fwd.push_back(trace_flag.data());
        fwd.push_back(positional.data());
        for (char* a : rest) {
          fwd.push_back(a);
        }
        args = cli::Args(static_cast<int>(fwd.size()), fwd.data(), {"trace", "rows", "metrics", "chrome-out"});
      }
      return cmd_report(args);
    }
    if (cmd == "select") {
      return cmd_select(
          cli::Args(argc - 2, argv + 2, {"rules", "collective", "nodes", "ppn", "msg"}));
    }
    if (cmd == "inspect") {
      return cmd_inspect(cli::Args(argc - 2, argv + 2, {"dataset"}));
    }
    if (cmd == "serve") {
      return cmd_serve(cli::Args(argc - 2, argv + 2,
                                 {"model", "socket", "nodes", "ppn", "topology",
                                  "store-shards", "cache-shards", "cache-capacity",
                                  "threads", "trace-out", "metrics-out", "chrome-out",
                                  "audit-out", "profile-out", "prom-out"}));
    }
    if (cmd == "query") {
      return cmd_query(cli::Args(argc - 2, argv + 2,
                                 {"socket", "model", "op", "collective", "nodes", "ppn",
                                  "msg", "topology", "path"}));
    }
    if (cmd == "fleet") {
      return cmd_fleet(cli::Args(argc - 2, argv + 2,
                                 {"machine", "jobs", "mean-interarrival", "seed",
                                  "node-choices", "ppn-choices", "warm", "max-distance",
                                  "collectives-per-job", "trees", "max-points", "out",
                                  "threads", "trace-out", "metrics-out", "chrome-out",
                                  "audit-out", "profile-out", "prom-out"}));
    }
    if (cmd == "breakeven") {
      return cmd_breakeven(cli::Args(argc - 2, argv + 2, {"training", "speedup"}));
    }
    if (cmd == "--help" || cmd == "help" || cmd == "-h") {
      usage();
      return 0;
    }
    std::cerr << "unknown command '" << cmd << "'\n\n";
    usage();
    return 2;
  } catch (const acclaim::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

// Minimal flag parser for the acclaim CLI.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace acclaim::cli {

/// Parses `--flag value` pairs after a subcommand. Flags must be known in
/// advance; unknown flags or missing values raise InvalidArgument with a
/// usage-oriented message.
class Args {
 public:
  /// `argv` starting *after* the subcommand token.
  Args(int argc, char** argv, const std::vector<std::string>& known_flags);

  bool has(const std::string& flag) const;
  std::string get(const std::string& flag, const std::string& fallback = "") const;
  /// Throws InvalidArgument naming the flag if absent.
  std::string require_flag(const std::string& flag) const;
  int get_int(const std::string& flag, int fallback) const;
  double get_double(const std::string& flag, double fallback) const;
  std::uint64_t get_bytes(const std::string& flag, std::uint64_t fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// Splits "a,b,c" into {"a","b","c"} (empty pieces dropped).
std::vector<std::string> split_csv(const std::string& s);

}  // namespace acclaim::cli

#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite, then
# (by default) rebuild the threading suites under ThreadSanitizer and run
# the determinism/stress labels as a second configuration.
#
# usage: tools/run_tier1.sh [--sanitize LIST] [--build-dir DIR] [--jobs N]
#                           [--tsan | --skip-tsan]
#   --sanitize LIST   comma-separated sanitizers, e.g. address,undefined
#                     (forwarded as -DACCLAIM_SANITIZE=LIST)
#   --build-dir DIR   build tree location (default: build, or build-san when
#                     sanitizers are on, so the two configurations coexist)
#   --jobs N          parallel build/test jobs (default: nproc)
#   --tsan            run ONLY the TSan configuration (build-tsan tree,
#                     ctest -L "determinism|stress")
#   --skip-tsan       skip the TSan pass after the main suite
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitize=""
build_dir=""
jobs="$(nproc 2>/dev/null || echo 4)"
tsan_mode="after"  # after | only | skip

while [[ $# -gt 0 ]]; do
  case "$1" in
    --sanitize) sanitize="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    --tsan) tsan_mode="only"; shift ;;
    --skip-tsan) tsan_mode="skip"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

run_tsan() {
  # The determinism/stress labels cover every parallel_for call site with
  # 2-8 thread pools; TSan on those suites is the data-race gate. The pool
  # sizes in the tests don't depend on the host's core count, so this is
  # meaningful even on a 1-core CI runner. ACCLAIM_THREADS is cleared so
  # the environment cannot pin the suites back to one thread.
  local tsan_dir="$repo_root/build-tsan"
  echo "=== TSan configuration: determinism + stress suites ==="
  cmake -B "$tsan_dir" -S "$repo_root" -DACCLAIM_SANITIZE=thread
  cmake --build "$tsan_dir" --target test_thread_pool test_determinism test_properties -j "$jobs"
  # --no-tests=error: a label filter that matches nothing must fail loudly,
  # not report success with zero tests run (a renamed label would otherwise
  # silently disable the race gate).
  env -u ACCLAIM_THREADS \
    TSAN_OPTIONS="suppressions=$repo_root/tools/tsan.supp ${TSAN_OPTIONS:-}" \
    ctest --test-dir "$tsan_dir" -L "determinism|stress" --no-tests=error \
    --output-on-failure -j "$jobs"
}

if [[ "$tsan_mode" == "only" ]]; then
  run_tsan
  exit 0
fi

if [[ -z "$build_dir" ]]; then
  build_dir="build"
  [[ -n "$sanitize" ]] && build_dir="build-san"
fi

cmake_flags=()
[[ -n "$sanitize" ]] && cmake_flags+=("-DACCLAIM_SANITIZE=${sanitize}")

cmake -B "$repo_root/$build_dir" -S "$repo_root" "${cmake_flags[@]}"
cmake --build "$repo_root/$build_dir" -j "$jobs"
ctest --test-dir "$repo_root/$build_dir" --no-tests=error --output-on-failure -j "$jobs"

if [[ "$tsan_mode" == "after" && -z "$sanitize" ]]; then
  run_tsan
fi

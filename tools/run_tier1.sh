#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite, then
# (by default) rebuild the threading suites under ThreadSanitizer and run
# the determinism/stress labels as a second configuration. Each stage prints
# a one-line PASS/FAIL summary at the end; the exit code names the first
# failing stage.
#
# usage: tools/run_tier1.sh [--sanitize LIST] [--build-dir DIR] [--jobs N]
#                           [--tsan | --skip-tsan] [--lint]
#   --sanitize LIST   comma-separated sanitizers, e.g. address,undefined
#                     (forwarded as -DACCLAIM_SANITIZE=LIST)
#   --build-dir DIR   build tree location (default: build, or build-san when
#                     sanitizers are on, so the two configurations coexist)
#   --jobs N          parallel build/test jobs (default: nproc)
#   --tsan            run ONLY the TSan configuration (build-tsan tree,
#                     ctest -L "determinism|stress")
#   --skip-tsan       skip the TSan pass after the main suite
#   --lint            run ONLY the static-analysis stages: build and run
#                     acclaim_lint over src/ tools/ tests/ bench/ (the same
#                     scan + summary line CI's lint job gates on), then
#                     clang-tidy via compile_commands.json when clang-tidy
#                     is installed (skipped with a note otherwise — the
#                     gcc-only dev container has no clang)
set -uo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitize=""
build_dir=""
jobs="$(nproc 2>/dev/null || echo 4)"
tsan_mode="after"  # after | only | skip
lint_only=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --sanitize) sanitize="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    --tsan) tsan_mode="only"; shift ;;
    --skip-tsan) tsan_mode="skip"; shift ;;
    --lint) lint_only=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

# --- stage runner -----------------------------------------------------------
# run_stage NAME cmd... executes the command, records PASS/FAIL/SKIP, and
# remembers the first failure. Later stages still run (a lint failure should
# not hide a test failure in the same report), EXCEPT when a stage a later
# stage depends on fails (configure/build short-circuit via `needs`).
stage_names=()
stage_results=()
stage_secs=()
first_failed=""

record_stage() {  # name result seconds
  stage_names+=("$1")
  stage_results+=("$2")
  stage_secs+=("$3")
  if [[ "$2" == FAIL && -z "$first_failed" ]]; then
    first_failed="$1"
  fi
}

run_stage() {  # name cmd...
  local name="$1"; shift
  echo "=== stage: $name ==="
  local start=$SECONDS
  if "$@"; then
    record_stage "$name" PASS $((SECONDS - start))
  else
    record_stage "$name" FAIL $((SECONDS - start))
    return 1
  fi
}

skip_stage() {  # name reason
  echo "=== stage: $1 (skipped: $2) ==="
  record_stage "$1" "SKIP" 0
}

finish() {
  echo
  echo "--- tier-1 summary ---"
  local i
  for i in "${!stage_names[@]}"; do
    printf '%-12s %-4s %4ss\n' "${stage_names[$i]}" "${stage_results[$i]}" "${stage_secs[$i]}"
  done
  if [[ -n "$first_failed" ]]; then
    echo "FAILED at stage: $first_failed"
    exit 1
  fi
  echo "OK"
  exit 0
}

# --- stages -----------------------------------------------------------------

run_tsan() {
  # The determinism/stress labels cover every parallel_for call site with
  # 2-8 thread pools; TSan on those suites is the data-race gate. The pool
  # sizes in the tests don't depend on the host's core count, so this is
  # meaningful even on a 1-core CI runner. ACCLAIM_THREADS is cleared so
  # the environment cannot pin the suites back to one thread.
  local tsan_dir="$repo_root/build-tsan"
  cmake -B "$tsan_dir" -S "$repo_root" -DACCLAIM_SANITIZE=thread &&
  cmake --build "$tsan_dir" --target test_thread_pool test_determinism test_properties -j "$jobs" &&
  # --no-tests=error: a label filter that matches nothing must fail loudly,
  # not report success with zero tests run (a renamed label would otherwise
  # silently disable the race gate).
  env -u ACCLAIM_THREADS \
    TSAN_OPTIONS="suppressions=$repo_root/tools/tsan.supp ${TSAN_OPTIONS:-}" \
    ctest --test-dir "$tsan_dir" -L "determinism|stress" --no-tests=error \
    --output-on-failure -j "$jobs"
}

run_acclaim_lint() {
  # Same invocation CI's lint job uses (minus the SARIF upload): whole-tree
  # scan with the per-file summary line, gated on the ratchet baseline.
  cmake --build "$repo_root/$build_dir" --target acclaim_lint -j "$jobs" &&
  "$repo_root/$build_dir/tools/acclaim_lint" --root "$repo_root" \
    --baseline "$repo_root/tools/lint_baseline.json" src tools tests bench
}

run_clang_tidy() {
  # Driven by the .clang-tidy at the repo root; compile_commands.json comes
  # from the configure stage. Header findings are scoped by HeaderFilterRegex.
  local -a sources
  mapfile -t sources < <(git -C "$repo_root" ls-files 'src/*.cpp' 'tools/*.cpp')
  clang-tidy -p "$repo_root/$build_dir" --quiet "${sources[@]/#/$repo_root/}"
}

if [[ -z "$build_dir" ]]; then
  build_dir="build"
  [[ -n "$sanitize" ]] && build_dir="build-san"
fi

if [[ "$tsan_mode" == "only" && "$lint_only" == 0 ]]; then
  run_stage tsan run_tsan || true
  finish
fi

cmake_flags=(-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)
[[ -n "$sanitize" ]] && cmake_flags+=("-DACCLAIM_SANITIZE=${sanitize}")

if [[ "$lint_only" == 1 ]]; then
  run_stage configure cmake -B "$repo_root/$build_dir" -S "$repo_root" "${cmake_flags[@]}" &&
  run_stage lint run_acclaim_lint || true
  if [[ "${#stage_results[@]}" -gt 0 && "${stage_results[0]}" == PASS ]]; then
    if command -v clang-tidy >/dev/null 2>&1; then
      run_stage clang-tidy run_clang_tidy || true
    else
      skip_stage clang-tidy "clang-tidy not installed (gcc-only container); CI runs it"
    fi
  fi
  finish
fi

if run_stage configure cmake -B "$repo_root/$build_dir" -S "$repo_root" "${cmake_flags[@]}"; then
  if run_stage build cmake --build "$repo_root/$build_dir" -j "$jobs"; then
    run_stage ctest ctest --test-dir "$repo_root/$build_dir" --no-tests=error \
      --output-on-failure -j "$jobs" || true
    run_stage lint run_acclaim_lint || true
  else
    skip_stage ctest "build failed"
    skip_stage lint "build failed"
  fi
else
  skip_stage build "configure failed"
  skip_stage ctest "configure failed"
  skip_stage lint "configure failed"
fi

if [[ "$tsan_mode" == "after" && -z "$sanitize" ]]; then
  run_stage tsan run_tsan || true
else
  skip_stage tsan "$([[ -n "$sanitize" ]] && echo "sanitizer build" || echo "--skip-tsan")"
fi

finish

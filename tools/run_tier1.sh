#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full ctest suite.
#
# usage: tools/run_tier1.sh [--sanitize LIST] [--build-dir DIR] [--jobs N]
#   --sanitize LIST   comma-separated sanitizers, e.g. address,undefined
#                     (forwarded as -DACCLAIM_SANITIZE=LIST)
#   --build-dir DIR   build tree location (default: build, or build-san when
#                     sanitizers are on, so the two configurations coexist)
#   --jobs N          parallel build/test jobs (default: nproc)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
sanitize=""
build_dir=""
jobs="$(nproc 2>/dev/null || echo 4)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --sanitize) sanitize="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --jobs) jobs="$2"; shift 2 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

if [[ -z "$build_dir" ]]; then
  build_dir="build"
  [[ -n "$sanitize" ]] && build_dir="build-san"
fi

cmake_flags=()
[[ -n "$sanitize" ]] && cmake_flags+=("-DACCLAIM_SANITIZE=${sanitize}")

cmake -B "$repo_root/$build_dir" -S "$repo_root" "${cmake_flags[@]}"
cmake --build "$repo_root/$build_dir" -j "$jobs"
ctest --test-dir "$repo_root/$build_dir" --output-on-failure -j "$jobs"

#include "cli_args.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/units.hpp"

namespace acclaim::cli {

Args::Args(int argc, char** argv, const std::vector<std::string>& known_flags) {
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      throw InvalidArgument("expected a --flag, got '" + flag + "'");
    }
    const std::string name = flag.substr(2);
    if (std::find(known_flags.begin(), known_flags.end(), name) == known_flags.end()) {
      throw InvalidArgument("unknown flag '--" + name + "'");
    }
    if (i + 1 >= argc) {
      throw InvalidArgument("flag '--" + name + "' is missing its value");
    }
    values_[name] = argv[++i];
  }
}

bool Args::has(const std::string& flag) const { return values_.count(flag) > 0; }

std::string Args::get(const std::string& flag, const std::string& fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second;
}

std::string Args::require_flag(const std::string& flag) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) {
    throw InvalidArgument("required flag '--" + flag + "' is missing");
  }
  return it->second;
}

int Args::get_int(const std::string& flag, int fallback) const {
  return has(flag) ? std::stoi(values_.at(flag)) : fallback;
}

double Args::get_double(const std::string& flag, double fallback) const {
  return has(flag) ? std::stod(values_.at(flag)) : fallback;
}

std::uint64_t Args::get_bytes(const std::string& flag, std::uint64_t fallback) const {
  return has(flag) ? util::parse_bytes(values_.at(flag)) : fallback;
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace acclaim::cli

#include "cli_args.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>

#include "util/error.hpp"
#include "util/units.hpp"

namespace acclaim::cli {

namespace {

/// One-line usage error for a flag whose value failed to convert. Always
/// names the flag and the offending value so `acclaim train --threads abc`
/// dies with a message the user can act on instead of an uncaught
/// std::invalid_argument abort.
[[noreturn]] void bad_value(const std::string& flag, const std::string& value,
                            const char* expected) {
  throw InvalidArgument("flag '--" + flag + "' expects " + expected + ", got '" + value +
                        "'");
}

/// Strict base-10 integer: the whole token must convert (trailing garbage
/// like "4x" is rejected, unlike std::stoi) and the result must fit int.
int parse_int_value(const std::string& flag, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  errno = 0;
  const long long n = std::strtoll(begin, &end, 10);
  if (end == begin || *end != '\0') {
    bad_value(flag, value, "an integer");
  }
  if (errno == ERANGE || n < std::numeric_limits<int>::min() ||
      n > std::numeric_limits<int>::max()) {
    bad_value(flag, value, "an integer in int range");
  }
  return static_cast<int>(n);
}

/// Strict floating-point: whole-token conversion to a finite double.
double parse_double_value(const std::string& flag, const std::string& value) {
  const char* begin = value.c_str();
  char* end = nullptr;
  errno = 0;
  const double d = std::strtod(begin, &end);
  if (end == begin || *end != '\0') {
    bad_value(flag, value, "a number");
  }
  if (errno == ERANGE) {
    bad_value(flag, value, "a number in double range");
  }
  return d;
}

}  // namespace

Args::Args(int argc, char** argv, const std::vector<std::string>& known_flags) {
  for (int i = 0; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0) {
      throw InvalidArgument("expected a --flag, got '" + flag + "'");
    }
    const std::string name = flag.substr(2);
    if (std::find(known_flags.begin(), known_flags.end(), name) == known_flags.end()) {
      throw InvalidArgument("unknown flag '--" + name + "'");
    }
    if (i + 1 >= argc) {
      throw InvalidArgument("flag '--" + name + "' is missing its value");
    }
    values_[name] = argv[++i];
  }
}

bool Args::has(const std::string& flag) const { return values_.count(flag) > 0; }

std::string Args::get(const std::string& flag, const std::string& fallback) const {
  const auto it = values_.find(flag);
  return it == values_.end() ? fallback : it->second;
}

std::string Args::require_flag(const std::string& flag) const {
  const auto it = values_.find(flag);
  if (it == values_.end()) {
    throw InvalidArgument("required flag '--" + flag + "' is missing");
  }
  return it->second;
}

int Args::get_int(const std::string& flag, int fallback) const {
  return has(flag) ? parse_int_value(flag, values_.at(flag)) : fallback;
}

double Args::get_double(const std::string& flag, double fallback) const {
  return has(flag) ? parse_double_value(flag, values_.at(flag)) : fallback;
}

std::uint64_t Args::get_bytes(const std::string& flag, std::uint64_t fallback) const {
  if (!has(flag)) {
    return fallback;
  }
  const std::string& value = values_.at(flag);
  try {
    return util::parse_bytes(value);
  } catch (const ParseError& e) {
    throw InvalidArgument("flag '--" + flag + "' expects a byte size (e.g. 64, 4K, 1M), got '" +
                          value + "': " + e.what());
  }
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) {
        out.push_back(cur);
        cur.clear();
      }
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace acclaim::cli

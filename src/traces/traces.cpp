#include "traces/traces.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace acclaim::traces {

std::vector<AppTraceSpec> llnl_like_apps() {
  using coll::Collective;
  std::vector<AppTraceSpec> apps;

  // Calibration targets (per-app non-P2 fractions averaging ~15.7%; the
  // aggregate is asserted by tests and reproduced in the Fig. 4 bench).
  AppTraceSpec amg;
  amg.name = "AMG";
  amg.p2_count_prob = 0.88;  // multigrid levels are mostly P2, coarse grids not
  amg.type_sizes = {8};
  amg.min_count_log2 = 0;
  amg.max_count_log2 = 14;
  amg.mix = {{Collective::Allreduce, 0.7}, {Collective::Bcast, 0.3}};
  apps.push_back(amg);

  AppTraceSpec lammps;
  lammps.name = "LAMMPS";
  lammps.p2_count_prob = 0.82;  // per-atom buffers vary with density
  lammps.type_sizes = {4, 8};
  lammps.min_count_log2 = 1;
  lammps.max_count_log2 = 16;
  lammps.mix = {{Collective::Allreduce, 0.55},
                {Collective::Bcast, 0.25},
                {Collective::Allgather, 0.20}};
  apps.push_back(lammps);

  AppTraceSpec nekbone;
  nekbone.name = "Nekbone";
  nekbone.p2_count_prob = 0.90;  // spectral elements: highly regular
  nekbone.type_sizes = {8};
  nekbone.min_count_log2 = 0;
  nekbone.max_count_log2 = 12;
  nekbone.mix = {{Collective::Allreduce, 0.9}, {Collective::Reduce, 0.1}};
  apps.push_back(nekbone);

  AppTraceSpec paradis;
  paradis.name = "ParaDis";
  paradis.p2_count_prob = 0.77;  // dislocation segments: irregular by nature
  paradis.type_sizes = {4, 8};
  paradis.min_count_log2 = 2;
  paradis.max_count_log2 = 17;
  paradis.mix = {{Collective::Allgather, 0.4},
                 {Collective::Allreduce, 0.4},
                 {Collective::Bcast, 0.2}};
  paradis.has_large_scale_data = false;  // 1024-node trace unavailable (Fig. 4)
  apps.push_back(paradis);

  return apps;
}

std::vector<CollectiveCall> generate_trace(const AppTraceSpec& spec, int scale_nodes,
                                           std::size_t n_calls, util::Rng& rng) {
  require(n_calls >= 1, "trace must contain at least one call");
  require(scale_nodes >= 1, "scale must be at least one node");
  require(!spec.mix.empty(), "app spec must name at least one collective");
  require(!spec.type_sizes.empty(), "app spec must have at least one datatype");
  require(spec.min_count_log2 >= 0 && spec.min_count_log2 <= spec.max_count_log2,
          "bad count range");

  double mix_total = 0.0;
  for (const auto& [c, w] : spec.mix) {
    require(w >= 0.0, "mix weights must be non-negative");
    mix_total += w;
  }
  require(mix_total > 0.0, "mix weights must not all be zero");

  // Scale perturbs the P2 probability only marginally (paper: per-app
  // percentages are nearly identical at 128 and 1024 nodes).
  const double scale_shift = 0.004 * std::log2(static_cast<double>(scale_nodes));
  const double p2_prob = std::clamp(spec.p2_count_prob - scale_shift, 0.0, 1.0);

  std::vector<CollectiveCall> trace;
  trace.reserve(n_calls);
  for (std::size_t i = 0; i < n_calls; ++i) {
    // Pick the collective by mix weight.
    double pick = rng.uniform(0.0, mix_total);
    coll::Collective c = spec.mix.begin()->first;
    for (const auto& [cand, w] : spec.mix) {
      if (pick < w) {
        c = cand;
        break;
      }
      pick -= w;
    }
    // Element count: either an exact power of two or an irregular count in
    // the same octave.
    const int lg = static_cast<int>(rng.uniform_int(spec.min_count_log2, spec.max_count_log2));
    std::uint64_t count = 1ULL << lg;
    if (!rng.chance(p2_prob) && lg >= 2) {
      const std::uint64_t lo = count + 1;
      const std::uint64_t hi = count * 2 - 1;
      count = static_cast<std::uint64_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
    }
    const std::uint64_t ts = spec.type_sizes[rng.index(spec.type_sizes.size())];
    trace.push_back(CollectiveCall{c, count * ts});
  }
  return trace;
}

std::vector<JobArrival> generate_job_stream(const JobStreamSpec& spec) {
  require(spec.n_jobs >= 1, "job stream needs at least one job");
  require(spec.mean_interarrival_s > 0.0, "mean inter-arrival must be positive");
  require(!spec.node_choices.empty(), "job stream needs node choices");
  require(!spec.ppn_choices.empty(), "job stream needs ppn choices");
  require(spec.small_app_max_nodes >= 1, "small-app node cap must be at least 1");
  for (int n : spec.node_choices) {
    require(n >= 2, "fleet jobs need at least 2 nodes");
  }
  for (int p : spec.ppn_choices) {
    require(p >= 1, "fleet jobs need at least 1 rank per node");
  }

  const std::vector<AppTraceSpec> apps = llnl_like_apps();
  // One serial generator draws every field in a fixed order, so the stream
  // is a pure function of the spec.
  util::Rng rng(spec.seed * 0x9e3779b97f4a7c15ULL + 0xf1ee7ULL);

  std::vector<JobArrival> stream;
  stream.reserve(static_cast<std::size_t>(spec.n_jobs));
  double clock_s = 0.0;
  for (int i = 0; i < spec.n_jobs; ++i) {
    // Exponential inter-arrival gap (Poisson arrivals); uniform() < 1 keeps
    // the log argument positive.
    clock_s += -spec.mean_interarrival_s * std::log(1.0 - rng.uniform());
    JobArrival job;
    job.job_id = static_cast<std::uint64_t>(i);
    job.arrival_s = clock_s;
    job.app = apps[rng.index(apps.size())];
    job.nnodes = spec.node_choices[rng.index(spec.node_choices.size())];
    if (!job.app.has_large_scale_data) {
      job.nnodes = std::min(job.nnodes, std::max(2, spec.small_app_max_nodes));
    }
    job.ppn = spec.ppn_choices[rng.index(spec.ppn_choices.size())];
    job.job_seed = rng.next_u64() | 1ULL;  // pipeline seeds must be non-zero
    stream.push_back(job);
  }
  return stream;
}

TraceProfile profile_trace(const std::vector<CollectiveCall>& trace) {
  TraceProfile p;
  p.total_calls = trace.size();
  for (const CollectiveCall& call : trace) {
    if (!util::is_power_of_two(call.msg_bytes)) {
      ++p.nonp2_calls;
    }
    ++p.calls_per_collective[call.collective];
  }
  p.pct_nonp2 = p.total_calls == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(p.nonp2_calls) /
                          static_cast<double>(p.total_calls);
  return p;
}

}  // namespace acclaim::traces

// Synthetic application collective-call traces.
//
// Substitution note (see DESIGN.md): the paper profiles collective message
// sizes from LLNL Open Data Initiative traces of four production
// applications at two job scales (Fig. 4) and finds 15.7% of message sizes
// non-power-of-two. Those traces are not available offline, so this module
// generates synthetic traces whose structure matches how the sizes arise in
// practice: datatypes have P2 byte sizes (int, double), so a message is
// non-P2 exactly when the application sends a non-P2 *count* of elements —
// which mesh-derived and irregular workloads frequently do.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "collectives/types.hpp"
#include "util/rng.hpp"

namespace acclaim::traces {

/// One collective invocation observed in a trace.
struct CollectiveCall {
  coll::Collective collective = coll::Collective::Allreduce;
  std::uint64_t msg_bytes = 8;
};

/// Statistical shape of one application's collective usage.
struct AppTraceSpec {
  std::string name;
  /// Probability that a call's element count is an exact power of two
  /// (regular domain decompositions produce P2 counts; halo/irregular
  /// regions do not).
  double p2_count_prob = 0.85;
  /// Element sizes used by the app's datatypes (bytes; P2 by construction).
  std::vector<std::uint64_t> type_sizes = {4, 8};
  /// log2 range of element counts per call.
  int min_count_log2 = 0;
  int max_count_log2 = 17;
  /// Relative frequency of each collective in the app's communication.
  std::map<coll::Collective, double> mix = {{coll::Collective::Allreduce, 1.0}};
  /// Whether the app has large-scale (1024-node) trace data; the paper's
  /// ParaDis does not.
  bool has_large_scale_data = true;
};

/// The four LLNL-like applications of Fig. 4.
std::vector<AppTraceSpec> llnl_like_apps();

/// Generates `n_calls` collective calls for an app at a given job scale.
/// The scale perturbs the count distribution only slightly — the paper
/// observes per-app non-P2 percentages are nearly scale-independent.
std::vector<CollectiveCall> generate_trace(const AppTraceSpec& spec, int scale_nodes,
                                           std::size_t n_calls, util::Rng& rng);

/// Message-size statistics of a trace.
struct TraceProfile {
  std::size_t total_calls = 0;
  std::size_t nonp2_calls = 0;
  double pct_nonp2 = 0.0;
  std::map<coll::Collective, std::size_t> calls_per_collective;
};

TraceProfile profile_trace(const std::vector<CollectiveCall>& trace);

/// One job arriving in a fleet replay: which application it runs, at what
/// scale, and when it shows up on the machine.
struct JobArrival {
  std::uint64_t job_id = 0;
  double arrival_s = 0.0;  ///< simulated submission time, non-decreasing
  AppTraceSpec app;
  int nnodes = 4;
  int ppn = 2;
  /// Seed for the job's allocation/network realization and noise streams.
  std::uint64_t job_seed = 1;
};

/// Shape of a fleet's job mix. Jobs draw an app from llnl_like_apps(), a
/// scale from the choice lists, and exponential inter-arrival gaps.
struct JobStreamSpec {
  int n_jobs = 100;
  double mean_interarrival_s = 60.0;
  std::vector<int> node_choices = {4, 8, 16};
  std::vector<int> ppn_choices = {2, 4, 8};
  /// Apps without large-scale trace data (AppTraceSpec::has_large_scale_data
  /// false, e.g. ParaDis) are capped at this node count, mirroring Fig. 4's
  /// missing 1024-node trace.
  int small_app_max_nodes = 8;
  std::uint64_t seed = 1;
};

/// Generates a fleet's arrival stream. Deterministic: the same spec yields
/// the identical stream (a single serial Rng draws every field), which is
/// what makes fleet replay reproducible end to end. Arrivals come back
/// sorted by (arrival_s, job_id).
std::vector<JobArrival> generate_job_stream(const JobStreamSpec& spec);

}  // namespace acclaim::traces

#include "ml/flat_forest.hpp"

#include <algorithm>
#include <utility>

#include "ml/forest.hpp"  // jackknife_variance span overload
#include "util/error.hpp"

namespace acclaim::ml {

FlatForest FlatForest::build(const std::vector<DecisionTree>& trees) {
  require(!trees.empty(), "FlatForest::build requires at least one tree");
  FlatForest f;
  f.n_features_ = trees.front().n_features();
  std::size_t total = 0;
  for (const DecisionTree& tree : trees) {
    require(tree.fitted(), "FlatForest::build requires fitted trees");
    require(tree.n_features() == f.n_features_,
            "FlatForest::build requires trees over the same feature space");
    total += tree.node_count();
  }
  f.feature_.reserve(total);
  f.threshold_.reserve(total);
  f.left_.reserve(total);
  f.right_.reserve(total);
  f.value_.reserve(total);
  f.roots_.reserve(trees.size());
  f.depth_.reserve(trees.size());
  for (const DecisionTree& tree : trees) {
    const auto base = static_cast<std::int32_t>(f.feature_.size());
    f.roots_.push_back(base);  // each tree's root is its node 0
    std::int32_t arena_index = base;
    for (const DecisionTree::Node& node : tree.nodes()) {
      f.feature_.push_back(node.feature);
      f.threshold_.push_back(node.threshold);
      // Child indices become arena-absolute. Leaves self-loop: stepping a
      // row already at its leaf leaves it there, so the batched kernel can
      // run every row for the tree's full depth unconditionally.
      f.left_.push_back(node.feature < 0 ? arena_index : node.left + base);
      f.right_.push_back(node.feature < 0 ? arena_index : node.right + base);
      f.value_.push_back(node.value);
      ++arena_index;
    }
    // Max root-to-leaf edge count, by explicit DFS (child order in
    // from_json-built trees is only bounds-checked, so no layout assumption;
    // the visit bound rejects cyclic node graphs instead of spinning).
    std::int32_t depth = 0;
    std::size_t visits = 0;
    std::vector<std::pair<std::int32_t, std::int32_t>> stack{{0, 0}};
    while (!stack.empty()) {
      const auto [idx, d] = stack.back();
      stack.pop_back();
      require(++visits <= tree.node_count(), "tree node graph is not a tree");
      const DecisionTree::Node& node = tree.nodes()[static_cast<std::size_t>(idx)];
      if (node.feature < 0) {
        depth = std::max(depth, d);
      } else {
        stack.push_back({node.left, d + 1});
        stack.push_back({node.right, d + 1});
      }
    }
    f.depth_.push_back(depth);
  }
  return f;
}

namespace {

/// One root-to-leaf walk over the arena. The comparison is the same
/// expression DecisionTree::predict evaluates (`x[f] <= threshold`), so NaN
/// features route right in both engines.
inline double walk(const double* x, std::int32_t root, const std::int32_t* feature,
                   const double* threshold, const std::int32_t* left,
                   const std::int32_t* right, const double* value) {
  std::int32_t cur = root;
  std::int32_t f = feature[cur];
  while (f >= 0) {
    cur = x[static_cast<std::size_t>(f)] <= threshold[cur] ? left[cur] : right[cur];
    f = feature[cur];
  }
  return value[cur];
}

}  // namespace

double FlatForest::predict(const FeatureRow& row) const {
  require(built(), "FlatForest::predict called before build");
  require(row.size() == n_features_, "feature count mismatch in predict");
  double sum = 0.0;
  for (const std::int32_t root : roots_) {
    sum += walk(row.data(), root, feature_.data(), threshold_.data(), left_.data(),
                right_.data(), value_.data());
  }
  return sum / static_cast<double>(roots_.size());
}

void FlatForest::predict_trees(const FeatureRow& row, std::vector<double>& out) const {
  require(built(), "FlatForest::predict_trees called before build");
  require(row.size() == n_features_, "feature count mismatch in predict_trees");
  out.resize(roots_.size());
  for (std::size_t t = 0; t < roots_.size(); ++t) {
    out[t] = walk(row.data(), roots_[t], feature_.data(), threshold_.data(), left_.data(),
                  right_.data(), value_.data());
  }
}

void FlatForest::predict_trees_batch(const FeatureRow* rows, std::size_t n_rows,
                                     double* out) const {
  require(built(), "FlatForest::predict_trees_batch called before build");
  for (std::size_t r = 0; r < n_rows; ++r) {
    require(rows[r].size() == n_features_, "feature count mismatch in predict_trees_batch");
  }
  const std::size_t nt = roots_.size();
  const std::int32_t* feature = feature_.data();
  const double* threshold = threshold_.data();
  const std::int32_t* left = left_.data();
  const std::int32_t* right = right_.data();
  const double* value = value_.data();
  // Tree-major: tree t's slice of the arena stays cache-hot while the whole
  // batch of rows walks it; each (tree, row) pair writes its own slot.
  //
  // Rows advance kLanes at a time in lockstep for depth_[t] levels. A single
  // walk is a chain of dependent loads (node -> child -> grandchild), so one
  // row at a time leaves the core idle between hops; kLanes independent
  // chains in flight cover that latency. The per-level step is branchless:
  // leaves self-loop (left == right == self), so a lane that reached its
  // leaf early re-selects the same node — clamping its -1 split feature to
  // 0 only feeds the comparison whose two outcomes are identical. Each lane
  // evaluates the exact `x[f] <= threshold` expression of the scalar walk
  // and lands on the same leaf, so results are bit-identical and
  // independent of the lane count.
  constexpr std::size_t kLanes = 8;
  for (std::size_t t = 0; t < nt; ++t) {
    const std::int32_t root = roots_[t];
    const std::int32_t depth = depth_[t];
    std::size_t r = 0;
    for (; r + kLanes <= n_rows; r += kLanes) {
      std::int32_t cur[kLanes];
      const double* x[kLanes];
      for (std::size_t l = 0; l < kLanes; ++l) {
        cur[l] = root;
        x[l] = rows[r + l].data();
      }
      for (std::int32_t level = 0; level < depth; ++level) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          const std::int32_t c = cur[l];
          const std::int32_t f = std::max(feature[c], 0);
          cur[l] = x[l][static_cast<std::size_t>(f)] <= threshold[c] ? left[c] : right[c];
        }
      }
      for (std::size_t l = 0; l < kLanes; ++l) {
        out[(r + l) * nt + t] = value[cur[l]];
      }
    }
    for (; r < n_rows; ++r) {
      out[r * nt + t] = walk(rows[r].data(), root, feature, threshold, left, right, value);
    }
  }
}

void FlatForest::jackknife_batch(const FeatureRow* rows, std::size_t n_rows,
                                 double* variances, double* means,
                                 std::vector<double>& scratch) const {
  require(built(), "FlatForest::jackknife_batch called before build");
  if (n_rows == 0) {
    return;
  }
  const std::size_t nt = roots_.size();
  if (scratch.size() < n_rows * nt) {
    scratch.resize(n_rows * nt);
  }
  predict_trees_batch(rows, n_rows, scratch.data());
  // Per-row reductions in tree order: the mean accumulation matches
  // RandomForest::predict, the variance matches ml::jackknife_variance —
  // both serially over the same values, so the fusion changes no bit.
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* preds = scratch.data() + r * nt;
    if (variances != nullptr) {
      variances[r] = jackknife_variance(preds, nt);
    }
    if (means != nullptr) {
      double sum = 0.0;
      for (std::size_t t = 0; t < nt; ++t) {
        sum += preds[t];
      }
      means[r] = sum / static_cast<double>(nt);
    }
  }
}

}  // namespace acclaim::ml

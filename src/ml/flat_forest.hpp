// Structure-of-arrays forest inference engine.
//
// The fitted `DecisionTree`s are node-struct vectors: every hop of
// `DecisionTree::predict` loads a 32-byte Node to use at most half of it,
// and a forest prediction chases those pointers once per tree per query.
// Prediction and per-tree jackknife variance dominate every acquisition
// round (PAPER.md §IV; the fig10/fig12 hot paths), so the trees are
// flattened once after fit()/from_json() into one shared arena of parallel
// arrays — split feature, threshold, left child, right child, leaf value —
// and all hot-path evaluation walks the arena instead.
//
// Equivalence contract: flattening copies node fields bit-for-bit and
// preserves node order, traversal uses the same `x[f] <= threshold`
// comparison (NaN routes right in both), and every mean/variance
// accumulates in tree order. Flat results are therefore bitwise-identical
// to the pointer forest — enforced by tests/test_flat_forest.cpp and the
// differential tune-job goldens in test_determinism.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tree.hpp"

namespace acclaim::ml {

class FlatForest {
 public:
  FlatForest() = default;

  /// Flattens fitted trees into one contiguous arena. Node order inside each
  /// tree is preserved (root first), so traversal visits the same nodes and
  /// yields bit-identical leaf values. Throws InvalidArgument on unfitted
  /// trees or mismatched feature counts.
  static FlatForest build(const std::vector<DecisionTree>& trees);

  bool built() const noexcept { return !roots_.empty(); }
  std::size_t n_trees() const noexcept { return roots_.size(); }
  std::size_t n_features() const noexcept { return n_features_; }
  /// Total nodes across all trees (the arena size).
  std::size_t n_nodes() const noexcept { return feature_.size(); }

  /// Mean of the per-tree predictions, accumulated in tree order — bitwise
  /// equal to summing DecisionTree::predict over the source trees.
  double predict(const FeatureRow& row) const;

  /// Per-tree predictions in tree order; `out` is resized to n_trees().
  void predict_trees(const FeatureRow& row, std::vector<double>& out) const;

  /// Batched evaluation: walks `n_rows` rows across all trees tree-major,
  /// so one tree's arrays stay cache-hot while a whole batch of rows runs
  /// through them. `out` is row-major [n_rows x n_trees()]: out[r * n_trees
  /// + t] is tree t's prediction for rows[r]. Requires built() and rows of
  /// n_features() width.
  void predict_trees_batch(const FeatureRow* rows, std::size_t n_rows, double* out) const;

  /// Fused batched predict + jackknife: one tree-major traversal pass fills
  /// a per-row prediction block, then each row's mean and jackknife
  /// variance are reduced from that block in tree order — trees are never
  /// re-traversed, and both reductions are bitwise-identical to
  /// ml::jackknife_variance / predict on the scalar path. `variances` and
  /// `means` each receive n_rows values; either may be null to skip that
  /// reduction. `scratch` is caller-owned working memory (grown to
  /// n_rows * n_trees()), so hot loops can reuse one buffer per thread.
  void jackknife_batch(const FeatureRow* rows, std::size_t n_rows, double* variances,
                       double* means, std::vector<double>& scratch) const;

 private:
  // One arena for all trees; tree t's nodes occupy [roots_[t], roots_[t+1])
  // (with an implicit end at n_nodes() for the last tree). Child indices are
  // arena-absolute, so traversal never consults per-tree offsets. Leaves
  // self-loop (left == right == own index): the batched kernel can then step
  // a whole block of rows through a tree for a fixed number of levels with
  // no per-lane branch — rows that reach their leaf early just spin in
  // place, which changes no bit of the result.
  std::vector<std::int32_t> feature_;  ///< split feature; -1 marks a leaf
  std::vector<double> threshold_;      ///< go left if x[feature] <= threshold
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> value_;          ///< leaf prediction
  std::vector<std::int32_t> roots_;    ///< arena index of each tree's root
  std::vector<std::int32_t> depth_;    ///< max root-to-leaf edges per tree
  std::size_t n_features_ = 0;
};

}  // namespace acclaim::ml

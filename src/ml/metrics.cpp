#include "ml/metrics.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace acclaim::ml {

namespace {
void check(const std::vector<double>& truth, const std::vector<double>& pred) {
  acclaim::require(!truth.empty() && truth.size() == pred.size(),
                   "metrics require equal, non-zero lengths");
}
}  // namespace

double mae(const std::vector<double>& truth, const std::vector<double>& pred) {
  check(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += std::abs(truth[i] - pred[i]);
  }
  return s / static_cast<double>(truth.size());
}

double rmse(const std::vector<double>& truth, const std::vector<double>& pred) {
  check(truth, pred);
  double s = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    s += (truth[i] - pred[i]) * (truth[i] - pred[i]);
  }
  return std::sqrt(s / static_cast<double>(truth.size()));
}

double r2(const std::vector<double>& truth, const std::vector<double>& pred) {
  check(truth, pred);
  const double m = util::mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - pred[i]) * (truth[i] - pred[i]);
    ss_tot += (truth[i] - m) * (truth[i] - m);
  }
  // Exact zero is the degenerate constant-target case, not a tolerance
  // question. acclaim-lint: allow(hyg-float-eq)
  if (ss_tot == 0.0) {
    return ss_res == 0.0 ? 1.0 : 0.0;  // acclaim-lint: allow(hyg-float-eq)
  }
  return 1.0 - ss_res / ss_tot;
}

}  // namespace acclaim::ml

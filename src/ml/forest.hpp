// Random forest regressor (bootstrap-aggregated CART trees).
#pragma once

#include <vector>

#include "ml/flat_forest.hpp"
#include "ml/tree.hpp"

namespace acclaim::ml {

struct ForestParams {
  int n_trees = 64;
  bool bootstrap = true;
  TreeParams tree;
};

/// Which inference engine RandomForest evaluation routes through. The two
/// are bitwise-equivalent by construction; the pointer path exists so the
/// differential test harness (test_flat_forest.cpp, test_determinism.cpp)
/// can re-run whole tune jobs on the original engine and byte-compare every
/// artifact against the SoA path.
enum class ForestBackend {
  Flat,     ///< SoA arena, batched tree-major kernels (the default)
  Pointer,  ///< original node-struct traversal, scalar fallback for batches
};

/// Process-wide backend switch (default Flat). A testing/diagnostics hook:
/// flip it from serial code only (tests, bench setup) — concurrent readers
/// are safe, but mid-sweep flips would mix engines within one result.
void set_forest_backend(ForestBackend backend);
ForestBackend forest_backend() noexcept;

/// Restores the previous backend on scope exit (test helper).
class ForestBackendGuard {
 public:
  explicit ForestBackendGuard(ForestBackend backend)
      : previous_(forest_backend()) {
    set_forest_backend(backend);
  }
  ~ForestBackendGuard() { set_forest_backend(previous_); }
  ForestBackendGuard(const ForestBackendGuard&) = delete;
  ForestBackendGuard& operator=(const ForestBackendGuard&) = delete;

 private:
  ForestBackend previous_;
};

/// scikit-style RandomForestRegressor: each tree fits a bootstrap resample;
/// the forest predicts the mean of the trees. predict_trees() exposes the
/// per-tree predictions the jackknife variance (§IV-A) needs. After fit()
/// or from_json() the trees are additionally flattened into a FlatForest
/// arena; all evaluation entry points route through it (see ForestBackend).
class RandomForest {
 public:
  void fit(const std::vector<FeatureRow>& X, const std::vector<double>& y,
           const ForestParams& params, std::uint64_t seed);

  bool fitted() const noexcept { return !trees_.empty(); }
  std::size_t n_trees() const noexcept { return trees_.size(); }

  /// The fitted pointer trees (serialization source + differential
  /// reference engine).
  const std::vector<DecisionTree>& trees() const noexcept { return trees_; }

  /// The flattened SoA arena shared by all hot-path evaluation.
  const FlatForest& flat() const noexcept { return flat_; }

  /// Mean of the per-tree predictions.
  double predict(const FeatureRow& row) const;

  /// Per-tree predictions, in tree order.
  std::vector<double> predict_trees(const FeatureRow& row) const;

  /// Fills `out` (resized to n_trees, shrinking an over-sized vector) —
  /// allocation-free in hot loops.
  void predict_trees(const FeatureRow& row, std::vector<double>& out) const;

  /// Fused batched predict + jackknife over `n_rows` rows: `variances[r]`
  /// gets the jackknife variance of row r's per-tree predictions and
  /// `means[r]` their tree-order mean — one traversal pass, no per-row
  /// re-walk of the trees. Either output may be null to skip that
  /// reduction. `scratch` is caller-owned working memory (one buffer per
  /// thread in parallel sweeps). Bitwise-identical to predict_trees +
  /// jackknife_variance per row, on either backend.
  void jackknife_batch(const FeatureRow* rows, std::size_t n_rows, double* variances,
                       double* means, std::vector<double>& scratch) const;

  /// Serializes the fitted forest. Requires fitted().
  util::Json to_json() const;
  /// Rebuilds a forest from to_json() output.
  static RandomForest from_json(const util::Json& doc);

 private:
  std::vector<DecisionTree> trees_;
  FlatForest flat_;
};

/// Jackknife variance of a set of values exactly as the paper defines it
/// (§IV-A): the i-th jackknife sample is the mean with value i removed;
/// variance = sum((mean - sample_i)^2) / (n - 1). Returns 0 for n < 2.
double jackknife_variance(const std::vector<double>& values);

/// Span form for the batched sweeps; the vector overload forwards here, so
/// both compute identical floating-point operation sequences.
double jackknife_variance(const double* values, std::size_t n);

/// One-pass summary of a per-tree prediction vector, used by the decision
/// flight recorder to explain what the ensemble saw for one candidate.
struct PredictionStats {
  double mean = 0.0;      ///< sum-in-tree-order / n — bitwise-equal to predict()
  double min = 0.0;
  double max = 0.0;
  double variance = 0.0;  ///< jackknife variance of the per-tree predictions
};

/// Summarizes `tree_preds` (the predict_trees output). The mean accumulates
/// in tree order, so it is bitwise-identical to RandomForest::predict on the
/// same row — an explanation built from these stats names the same argmin
/// the selection path computed. Requires a non-empty vector.
PredictionStats summarize_predictions(const std::vector<double>& tree_preds);

}  // namespace acclaim::ml

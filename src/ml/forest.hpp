// Random forest regressor (bootstrap-aggregated CART trees).
#pragma once

#include <vector>

#include "ml/tree.hpp"

namespace acclaim::ml {

struct ForestParams {
  int n_trees = 64;
  bool bootstrap = true;
  TreeParams tree;
};

/// scikit-style RandomForestRegressor: each tree fits a bootstrap resample;
/// the forest predicts the mean of the trees. predict_trees() exposes the
/// per-tree predictions the jackknife variance (§IV-A) needs.
class RandomForest {
 public:
  void fit(const std::vector<FeatureRow>& X, const std::vector<double>& y,
           const ForestParams& params, std::uint64_t seed);

  bool fitted() const noexcept { return !trees_.empty(); }
  std::size_t n_trees() const noexcept { return trees_.size(); }

  /// Mean of the per-tree predictions.
  double predict(const FeatureRow& row) const;

  /// Per-tree predictions, in tree order.
  std::vector<double> predict_trees(const FeatureRow& row) const;

  /// Fills `out` (resized to n_trees) — allocation-free in hot loops.
  void predict_trees(const FeatureRow& row, std::vector<double>& out) const;

  /// Serializes the fitted forest. Requires fitted().
  util::Json to_json() const;
  /// Rebuilds a forest from to_json() output.
  static RandomForest from_json(const util::Json& doc);

 private:
  std::vector<DecisionTree> trees_;
};

/// Jackknife variance of a set of values exactly as the paper defines it
/// (§IV-A): the i-th jackknife sample is the mean with value i removed;
/// variance = sum((mean - sample_i)^2) / (n - 1). Returns 0 for n < 2.
double jackknife_variance(const std::vector<double>& values);

/// One-pass summary of a per-tree prediction vector, used by the decision
/// flight recorder to explain what the ensemble saw for one candidate.
struct PredictionStats {
  double mean = 0.0;      ///< sum-in-tree-order / n — bitwise-equal to predict()
  double min = 0.0;
  double max = 0.0;
  double variance = 0.0;  ///< jackknife variance of the per-tree predictions
};

/// Summarizes `tree_preds` (the predict_trees output). The mean accumulates
/// in tree order, so it is bitwise-identical to RandomForest::predict on the
/// same row — an explanation built from these stats names the same argmin
/// the selection path computed. Requires a non-empty vector.
PredictionStats summarize_predictions(const std::vector<double>& tree_preds);

}  // namespace acclaim::ml

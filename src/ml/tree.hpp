// CART regression tree.
//
// Splits minimize the weighted sum of child variances (equivalently,
// maximize variance reduction), the criterion scikit-learn's
// DecisionTreeRegressor uses — the paper's model family (§V).
#pragma once

#include <cstddef>
#include <vector>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace acclaim::ml {

using FeatureRow = std::vector<double>;

struct TreeParams {
  int max_depth = 32;
  int min_samples_leaf = 1;
  int min_samples_split = 2;
  /// Features considered per split; -1 means all (scikit default for
  /// regression forests).
  int max_features = -1;
};

/// A fitted regression tree. Fit once, then predict; refitting replaces the
/// model.
class DecisionTree {
 public:
  /// Fits on the rows indexed by `sample_idx` (with repetition allowed — the
  /// forest passes bootstrap samples). All rows must share X[0].size()
  /// features. Throws InvalidArgument on empty/ragged input.
  void fit(const std::vector<FeatureRow>& X, const std::vector<double>& y,
           const std::vector<std::size_t>& sample_idx, const TreeParams& params,
           util::Rng& rng);

  /// Convenience: fit on all rows.
  void fit(const std::vector<FeatureRow>& X, const std::vector<double>& y,
           const TreeParams& params, util::Rng& rng);

  double predict(const FeatureRow& row) const;

  bool fitted() const noexcept { return !nodes_.empty(); }
  std::size_t node_count() const noexcept { return nodes_.size(); }
  int depth() const noexcept { return depth_; }
  std::size_t n_features() const noexcept { return n_features_; }

  struct Node {
    int feature = -1;         ///< -1 marks a leaf
    double threshold = 0.0;   ///< go left if x[feature] <= threshold
    std::int32_t left = -1;
    std::int32_t right = -1;
    double value = 0.0;       ///< leaf prediction (mean of samples)
  };

  /// Read access to the fitted node array (root at index 0) — the source
  /// FlatForest::build flattens into the structure-of-arrays arena.
  const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// Serializes the fitted tree (structure + leaf values). Requires fitted().
  util::Json to_json() const;
  /// Rebuilds a tree from to_json() output; throws InvalidArgument/ParseError
  /// on malformed documents (bad child indices, missing fields).
  static DecisionTree from_json(const util::Json& doc);

 private:

  std::int32_t build(const std::vector<FeatureRow>& X, const std::vector<double>& y,
                     std::vector<std::size_t>& idx, std::size_t begin, std::size_t end,
                     int depth, const TreeParams& params, util::Rng& rng);

  std::vector<Node> nodes_;
  std::size_t n_features_ = 0;
  int depth_ = 0;
};

}  // namespace acclaim::ml

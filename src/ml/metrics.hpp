// Regression quality metrics.
#pragma once

#include <vector>

namespace acclaim::ml {

/// Mean absolute error. Requires equal non-zero lengths.
double mae(const std::vector<double>& truth, const std::vector<double>& pred);

/// Root mean squared error.
double rmse(const std::vector<double>& truth, const std::vector<double>& pred);

/// Coefficient of determination; 1 = perfect, 0 = predicts the mean,
/// negative = worse than the mean. Returns 1 when truth has zero variance
/// and predictions are exact, 0 otherwise.
double r2(const std::vector<double>& truth, const std::vector<double>& pred);

}  // namespace acclaim::ml

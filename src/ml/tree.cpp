#include "ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace acclaim::ml {

void DecisionTree::fit(const std::vector<FeatureRow>& X, const std::vector<double>& y,
                       const TreeParams& params, util::Rng& rng) {
  std::vector<std::size_t> idx(X.size());
  std::iota(idx.begin(), idx.end(), 0);
  fit(X, y, idx, params, rng);
}

void DecisionTree::fit(const std::vector<FeatureRow>& X, const std::vector<double>& y,
                       const std::vector<std::size_t>& sample_idx, const TreeParams& params,
                       util::Rng& rng) {
  require(!X.empty(), "DecisionTree::fit requires at least one row");
  require(X.size() == y.size(), "X and y must have the same length");
  require(!sample_idx.empty(), "DecisionTree::fit requires a non-empty sample");
  n_features_ = X[0].size();
  require(n_features_ >= 1, "rows must have at least one feature");
  for (const auto& row : X) {
    require(row.size() == n_features_, "ragged feature matrix");
  }
  for (std::size_t i : sample_idx) {
    require(i < X.size(), "sample index out of range");
  }
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> idx = sample_idx;
  build(X, y, idx, 0, idx.size(), 0, params, rng);
}

std::int32_t DecisionTree::build(const std::vector<FeatureRow>& X, const std::vector<double>& y,
                                 std::vector<std::size_t>& idx, std::size_t begin,
                                 std::size_t end, int depth, const TreeParams& params,
                                 util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;

  double sum = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    sum += y[idx[i]];
    sum2 += y[idx[i]] * y[idx[i]];
  }
  const double mean = sum / static_cast<double>(n);
  // Total sum of squared deviations (not variance: avoids dividing twice).
  const double sse = sum2 - sum * mean;

  auto make_leaf = [&]() -> std::int32_t {
    Node leaf;
    leaf.value = mean;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  if (depth >= params.max_depth || n < static_cast<std::size_t>(params.min_samples_split) ||
      sse <= 1e-12) {
    return make_leaf();
  }

  // Candidate features: all, or a uniform subset of size max_features.
  std::vector<int> features;
  if (params.max_features < 0 ||
      params.max_features >= static_cast<int>(n_features_)) {
    features.resize(n_features_);
    std::iota(features.begin(), features.end(), 0);
  } else {
    const auto pick = rng.sample_without_replacement(
        n_features_, static_cast<std::size_t>(params.max_features));
    for (std::size_t f : pick) {
      features.push_back(static_cast<int>(f));
    }
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_score = -1e-12;  // require a strictly positive reduction
  std::vector<std::size_t> order(idx.begin() + static_cast<std::ptrdiff_t>(begin),
                                 idx.begin() + static_cast<std::ptrdiff_t>(end));
  for (int f : features) {
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return X[a][static_cast<std::size_t>(f)] < X[b][static_cast<std::size_t>(f)];
    });
    double left_sum = 0.0;
    double left_sum2 = 0.0;
    for (std::size_t k = 0; k + 1 < n; ++k) {
      const double yi = y[order[k]];
      left_sum += yi;
      left_sum2 += yi * yi;
      const double xv = X[order[k]][static_cast<std::size_t>(f)];
      const double xn = X[order[k + 1]][static_cast<std::size_t>(f)];
      if (xn <= xv) {
        continue;  // no valid threshold between identical values
      }
      const std::size_t nl = k + 1;
      const std::size_t nr = n - nl;
      if (nl < static_cast<std::size_t>(params.min_samples_leaf) ||
          nr < static_cast<std::size_t>(params.min_samples_leaf)) {
        continue;
      }
      const double right_sum = sum - left_sum;
      const double right_sum2 = sum2 - left_sum2;
      const double sse_l = left_sum2 - left_sum * left_sum / static_cast<double>(nl);
      const double sse_r = right_sum2 - right_sum * right_sum / static_cast<double>(nr);
      const double score = sse - sse_l - sse_r;  // variance reduction
      if (score > best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (xv + xn);
      }
    }
  }

  if (best_feature < 0) {
    return make_leaf();
  }

  // Partition [begin, end) of idx in place around the threshold.
  const auto mid_it = std::partition(
      idx.begin() + static_cast<std::ptrdiff_t>(begin),
      idx.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t i) {
        return X[i][static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) {
    return make_leaf();  // numeric degeneracy; refuse an empty child
  }

  // Reserve this node's slot before recursing (children append after it).
  nodes_.emplace_back();
  const auto self = static_cast<std::int32_t>(nodes_.size() - 1);
  const std::int32_t left = build(X, y, idx, begin, mid, depth + 1, params, rng);
  const std::int32_t right = build(X, y, idx, mid, end, depth + 1, params, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

util::Json DecisionTree::to_json() const {
  require(fitted(), "cannot serialize an unfitted tree");
  util::Json doc = util::Json::object();
  doc["n_features"] = static_cast<double>(n_features_);
  doc["depth"] = depth_;
  // Column-wise arrays keep the document compact and fast to parse.
  util::Json feature = util::Json::array();
  util::Json threshold = util::Json::array();
  util::Json left = util::Json::array();
  util::Json right = util::Json::array();
  util::Json value = util::Json::array();
  for (const Node& node : nodes_) {
    feature.push_back(node.feature);
    threshold.push_back(node.threshold);
    left.push_back(node.left);
    right.push_back(node.right);
    value.push_back(node.value);
  }
  doc["feature"] = std::move(feature);
  doc["threshold"] = std::move(threshold);
  doc["left"] = std::move(left);
  doc["right"] = std::move(right);
  doc["value"] = std::move(value);
  return doc;
}

DecisionTree DecisionTree::from_json(const util::Json& doc) {
  DecisionTree tree;
  tree.n_features_ = static_cast<std::size_t>(doc.at("n_features").as_int());
  tree.depth_ = static_cast<int>(doc.at("depth").as_int());
  require(tree.n_features_ >= 1, "serialized tree must have features");
  const auto& feature = doc.at("feature").as_array();
  const auto& threshold = doc.at("threshold").as_array();
  const auto& left = doc.at("left").as_array();
  const auto& right = doc.at("right").as_array();
  const auto& value = doc.at("value").as_array();
  const std::size_t n = feature.size();
  require(n >= 1 && threshold.size() == n && left.size() == n && right.size() == n &&
              value.size() == n,
          "serialized tree arrays must be non-empty and aligned");
  tree.nodes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Node& node = tree.nodes_[i];
    node.feature = static_cast<int>(feature[i].as_int());
    node.threshold = threshold[i].as_number();
    node.left = static_cast<std::int32_t>(left[i].as_int());
    node.right = static_cast<std::int32_t>(right[i].as_int());
    node.value = value[i].as_number();
    require(node.feature < static_cast<int>(tree.n_features_),
            "serialized tree references a feature out of range");
    if (node.feature >= 0) {
      require(node.left >= 0 && node.left < static_cast<std::int32_t>(n) && node.right >= 0 &&
                  node.right < static_cast<std::int32_t>(n),
              "serialized tree has child indices out of range");
    }
  }
  return tree;
}

double DecisionTree::predict(const FeatureRow& row) const {
  require(fitted(), "DecisionTree::predict called before fit");
  require(row.size() == n_features_, "feature count mismatch in predict");
  std::int32_t cur = 0;
  while (true) {
    const Node& node = nodes_[static_cast<std::size_t>(cur)];
    if (node.feature < 0) {
      return node.value;
    }
    cur = row[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left : node.right;
  }
}

}  // namespace acclaim::ml

#include "ml/forest.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::ml {

namespace {

std::atomic<ForestBackend> g_backend{ForestBackend::Flat};

}  // namespace

void set_forest_backend(ForestBackend backend) {
  g_backend.store(backend, std::memory_order_relaxed);
}

ForestBackend forest_backend() noexcept {
  return g_backend.load(std::memory_order_relaxed);
}

void RandomForest::fit(const std::vector<FeatureRow>& X, const std::vector<double>& y,
                       const ForestParams& params, std::uint64_t seed) {
  require(params.n_trees >= 1, "forest requires at least one tree");
  require(!X.empty() && X.size() == y.size(), "forest requires non-empty, aligned X/y");
  telemetry::ScopedTimer timer("forest.fit");
  const auto start = std::chrono::steady_clock::now();
  trees_.assign(static_cast<std::size_t>(params.n_trees), DecisionTree{});
  // One independent stream per tree, derived from the run seed *before* the
  // parallel region. Tree i always sees the i-th derived seed, so the forest
  // is bitwise-identical for any thread count (and identical to the old
  // sequential rng.split() chain, which produced exactly these seeds).
  util::Rng rng(seed);
  std::vector<std::uint64_t> tree_seeds(trees_.size());
  for (std::uint64_t& s : tree_seeds) {
    s = rng.next_u64();
  }
  util::global_pool().parallel_for(0, trees_.size(), [&](std::size_t i) {
    util::Rng tree_rng(tree_seeds[i]);
    if (params.bootstrap) {
      std::vector<std::size_t> sample(X.size());
      for (auto& s : sample) {
        s = tree_rng.index(X.size());
      }
      trees_[i].fit(X, y, sample, params.tree, tree_rng);
    } else {
      trees_[i].fit(X, y, params.tree, tree_rng);
    }
  });
  // Flatten once per fit: the SoA arena is immutable until the next fit,
  // so every prediction from here on is a pure read.
  flat_ = FlatForest::build(trees_);
  static telemetry::Counter& fits = telemetry::metrics().counter("ml.forest.fits");
  static telemetry::Histogram& fit_ms =
      telemetry::metrics().histogram("ml.forest.fit_ms", {0.01, 32});
  fits.add();
  fit_ms.observe(std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                           start)
                     .count());
}

double RandomForest::predict(const FeatureRow& row) const {
  require(fitted(), "RandomForest::predict called before fit");
  if (forest_backend() == ForestBackend::Flat) {
    return flat_.predict(row);
  }
  double sum = 0.0;
  for (const auto& tree : trees_) {
    sum += tree.predict(row);
  }
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict_trees(const FeatureRow& row) const {
  std::vector<double> out;
  predict_trees(row, out);
  return out;
}

void RandomForest::predict_trees(const FeatureRow& row, std::vector<double>& out) const {
  require(fitted(), "RandomForest::predict_trees called before fit");
  if (forest_backend() == ForestBackend::Flat) {
    // The flat walk is a serial sweep over the arena: for the 24-100 tree
    // forests the pipeline runs, one cache-friendly pass beats farming
    // per-tree tasks out to the pool (and is trivially thread-invariant).
    flat_.predict_trees(row, out);
  } else {
    out.resize(trees_.size());
    for (std::size_t i = 0; i < trees_.size(); ++i) {
      out[i] = trees_[i].predict(row);
    }
  }
  // Hot path (jackknife variance sweeps call this per candidate per
  // iteration): a relaxed increment only, no clock reads.
  static telemetry::Counter& predicts = telemetry::metrics().counter("ml.forest.predicts");
  predicts.add();
}

void RandomForest::jackknife_batch(const FeatureRow* rows, std::size_t n_rows,
                                   double* variances, double* means,
                                   std::vector<double>& scratch) const {
  require(fitted(), "RandomForest::jackknife_batch called before fit");
  if (n_rows == 0) {
    return;
  }
  if (forest_backend() == ForestBackend::Flat) {
    flat_.jackknife_batch(rows, n_rows, variances, means, scratch);
  } else {
    // Reference engine: scalar per-row pointer traversal, same reductions.
    const std::size_t nt = trees_.size();
    if (scratch.size() < nt) {
      scratch.resize(nt);
    }
    for (std::size_t r = 0; r < n_rows; ++r) {
      for (std::size_t t = 0; t < nt; ++t) {
        scratch[t] = trees_[t].predict(rows[r]);
      }
      if (variances != nullptr) {
        variances[r] = jackknife_variance(scratch.data(), nt);
      }
      if (means != nullptr) {
        double sum = 0.0;
        for (std::size_t t = 0; t < nt; ++t) {
          sum += scratch[t];
        }
        means[r] = sum / static_cast<double>(nt);
      }
    }
  }
  // One "predict" per row keeps the counter's meaning (forest evaluations)
  // identical between the scalar and batched entry points.
  static telemetry::Counter& predicts = telemetry::metrics().counter("ml.forest.predicts");
  static telemetry::Counter& batched = telemetry::metrics().counter("ml.forest.batched_rows");
  predicts.add(n_rows);
  batched.add(n_rows);
}

util::Json RandomForest::to_json() const {
  require(fitted(), "cannot serialize an unfitted forest");
  util::Json doc = util::Json::object();
  doc["model"] = "acclaim-random-forest-v1";
  util::Json trees = util::Json::array();
  for (const DecisionTree& tree : trees_) {
    trees.push_back(tree.to_json());
  }
  doc["trees"] = std::move(trees);
  return doc;
}

RandomForest RandomForest::from_json(const util::Json& doc) {
  require(doc.contains("model") && doc.at("model").as_string() == "acclaim-random-forest-v1",
          "unknown forest serialization format");
  RandomForest forest;
  for (const util::Json& tree : doc.at("trees").as_array()) {
    forest.trees_.push_back(DecisionTree::from_json(tree));
  }
  require(forest.fitted(), "serialized forest must contain at least one tree");
  forest.flat_ = FlatForest::build(forest.trees_);
  return forest;
}

PredictionStats summarize_predictions(const std::vector<double>& tree_preds) {
  require(!tree_preds.empty(), "summarize_predictions requires at least one prediction");
  PredictionStats stats;
  stats.min = tree_preds.front();
  stats.max = tree_preds.front();
  double sum = 0.0;
  for (double v : tree_preds) {
    sum += v;  // tree order, matching RandomForest::predict exactly
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
  }
  stats.mean = sum / static_cast<double>(tree_preds.size());
  stats.variance = jackknife_variance(tree_preds);
  return stats;
}

double jackknife_variance(const std::vector<double>& values) {
  return jackknife_variance(values.data(), values.size());
}

double jackknife_variance(const double* values, std::size_t n) {
  if (n < 2) {
    return 0.0;
  }
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += values[i];
  }
  const double mean = sum / static_cast<double>(n);
  // The i-th jackknife sample is (sum - v_i) / (n - 1), so
  // mean - sample_i = (v_i - mean) / (n - 1).
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = (values[i] - mean) / static_cast<double>(n - 1);
    acc += d * d;
  }
  return acc / static_cast<double>(n - 1);
}

}  // namespace acclaim::ml

#include "core/active_learner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <utility>

#include "core/feature_space.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::core {

ActiveLearner::ActiveLearner(coll::Collective collective, const FeatureSpace& space,
                             TuningEnvironment& env, AcquisitionPolicy& policy,
                             ActiveLearnerConfig config)
    : collective_(collective), space_(space), env_(env), policy_(policy), config_(config) {
  require(config_.seed_points >= 1, "need at least one seed point");
  require(config_.refit_every >= 1, "refit_every must be >= 1");
  require(config_.patience >= 1, "patience must be >= 1");
}

void ActiveLearner::set_monitor(std::function<double(const CollectiveModel&)> probe) {
  monitor_ = std::move(probe);
}

void ActiveLearner::set_warm_start(WarmStart warm) {
  require(warm.model.trained(), "warm start requires a trained model");
  require(warm.model.collective() == collective_,
          "warm-start model is for a different collective");
  require(warm.min_new_points >= 1, "warm start needs min_new_points >= 1");
  require(warm.patience >= 1, "warm start needs patience >= 1");
  for (const LabeledPoint& lp : warm.support) {
    require(lp.point.scenario.collective == collective_,
            "warm-start support point is for a different collective");
  }
  warm_ = std::move(warm);
}

TrainingResult ActiveLearner::run() {
  telemetry::ScopedTimer timer("learner.run");
  if (config_.threads > 0) {
    util::set_global_threads(config_.threads);
  }
  const std::vector<bench::BenchmarkPoint> candidates = space_.candidates(collective_);
  std::vector<bench::BenchmarkPoint> pool = candidates;
  const std::size_t cap = config_.max_points < 0
                              ? candidates.size()
                              : std::min<std::size_t>(candidates.size(),
                                                      static_cast<std::size_t>(config_.max_points));

  TrainingResult result;
  result.model = CollectiveModel(collective_, config_.forest);
  if (warm_) {
    // Transfer: start answering (and ranking acquisition candidates) from
    // the donor job's forest instead of the random seed phase.
    result.model = warm_->model;
    result.warm_started = true;
  }
  // Convergence floor: a cold run must collect config_.min_points before the
  // variance criterion may fire; a warm run only needs enough fresh points
  // to have patched the transferred model's disagreement region.
  const std::size_t min_points =
      static_cast<std::size_t>(warm_ ? warm_->min_new_points : config_.min_points);
  // Same split for the criterion's window: a warm run's variance is already
  // calm, so it only needs WarmStart::patience confirming checks.
  const int patience = warm_ ? warm_->patience : config_.patience;
  util::Rng rng(config_.seed);
  const double clock_start_s = env_.clock_s();

  // Convergence state: an exponential moving average smooths the cumulative
  // variance; the criterion compares the smoothed value against its value
  // `patience` iterations earlier.
  double ema = -1.0;
  std::vector<double> ema_history;
  int calm_iters = 0;
  std::size_t points_at_last_fit = 0;
  int nonp2_counter = 0;

  const CollectionScheduler scheduler(
      CollectionSchedulerConfig{config_.topology_aware, 1 << 20});
  const bool can_parallel = config_.parallel_collection && env_.topology() != nullptr &&
                            env_.allocation() != nullptr;

  // The warm path refits on the fresh measurements plus the transferred
  // support set, minus any support point a fresh measurement overrides (same
  // scenario and algorithm): the prior keeps covering the regions this job
  // never measures, the measurements win wherever the model disagreed enough
  // with this job's network to get sampled.
  auto fit_points = [&]() {
    std::vector<LabeledPoint> data = result.collected;
    if (warm_) {
      std::set<std::pair<bench::Scenario, coll::Algorithm>> measured;
      for (const LabeledPoint& lp : result.collected) {
        measured.emplace(lp.point.scenario, lp.point.algorithm);
      }
      for (const LabeledPoint& lp : warm_->support) {
        if (!measured.contains({lp.point.scenario, lp.point.algorithm})) {
          data.push_back(lp);
        }
      }
    }
    return data;
  };
  // A warm run refits from the first fresh point (the support set already
  // carries enough rows); a cold run waits for the random seed phase.
  const std::size_t refit_floor =
      warm_ ? 1u : static_cast<std::size_t>(config_.seed_points);
  static telemetry::Counter& refit_counter = telemetry::metrics().counter("model_refits");
  auto refit = [&](bool force) {
    const bool due = result.collected.size() >= points_at_last_fit +
                                                    static_cast<std::size_t>(config_.refit_every);
    if (result.collected.size() >= refit_floor && (force || due)) {
      // A constant seed keeps consecutive refits highly correlated (most
      // bootstrap draws coincide), so the cumulative-variance signal tracks
      // the *data*, not resampling jitter.
      result.model.fit(fit_points(), config_.seed);
      points_at_last_fit = result.collected.size();
      refit_counter.add();
      if (telemetry::tracer().enabled()) {
        telemetry::TraceEvent ev;
        ev.kind = telemetry::EventKind::ModelRefit;
        ev.label = coll::collective_name(collective_);
        ev.fields["points"] = result.collected.size();
        telemetry::tracer().record(std::move(ev));
      }
    }
  };

  while (!pool.empty() && result.collected.size() < cap) {
    ++result.iterations;
    int batch_size = 1;
    bool collected_this_iter = false;

    if (can_parallel && result.model.trained()) {
      const std::vector<std::size_t> ranked = policy_.rank(result.model, pool);
      if (!ranked.empty()) {
        CollectionBatch batch = scheduler.plan(pool, ranked, *env_.topology(),
                                               *env_.allocation(), env_.solo_cost_oracle());
        if (!batch.items.empty()) {
          // Apply the non-P2 cadence across scheduled items (§IV-B). The
          // substitution changes the message size *after* plan() priced the
          // placement, so the slot's predicted cost no longer describes the
          // point; zeroing it forces the environment to rebuild the schedule
          // for the substituted size instead of reusing the stale price.
          for (std::size_t i = 0; i < batch.items.size(); ++i) {
            auto& item = batch.items[i];
            ++nonp2_counter;
            if (config_.parallel_nonp2_cadence > 0 &&
                nonp2_counter % config_.parallel_nonp2_cadence == 0) {
              if (const auto m = env_.nonp2_msg_near(item.point.scenario.msg_bytes, rng)) {
                item.point.scenario.msg_bytes = *m;
                if (i < batch.predicted_us.size()) {
                  batch.predicted_us[i] = 0.0;
                }
              }
            }
          }
          const auto measurements = env_.measure_scheduled(batch.items, batch.predicted_us);
          for (std::size_t i = 0; i < batch.items.size(); ++i) {
            result.collected.push_back({batch.items[i].point, measurements[i].mean_us});
            policy_.observe(batch.items[i].point, measurements[i].mean_us);
            // The batch path bypasses policy_.next(), so it must emit its
            // own point_acquired events to keep the trace's acquisition
            // count equal to the points actually collected.
            if (telemetry::tracer().enabled()) {
              const bench::BenchmarkPoint& point = batch.items[i].point;
              telemetry::TraceEvent ev;
              ev.kind = telemetry::EventKind::PointAcquired;
              ev.label = coll::collective_name(collective_);
              ev.fields["nnodes"] = point.scenario.nnodes;
              ev.fields["ppn"] = point.scenario.ppn;
              ev.fields["msg_bytes"] = point.scenario.msg_bytes;
              ev.fields["algorithm"] = coll::algorithm_info(point.algorithm).name;
              ev.fields["batched"] = true;
              telemetry::tracer().record(std::move(ev));
            }
          }
          if (telemetry::audit().enabled()) {
            // One record per batch round (the batch path bypasses
            // policy_.next(), which covers the sequential path). Emitted on
            // the learner's serial loop — det-audit-order.
            const auto start = std::chrono::steady_clock::now();
            const bench::BenchmarkPoint& top = batch.items.front().point;
            telemetry::DecisionRecord rec;
            rec.kind = telemetry::DecisionKind::Acquisition;
            rec.source = "policy";
            rec.collective = coll::collective_name(collective_);
            rec.nnodes = top.scenario.nnodes;
            rec.ppn = top.scenario.ppn;
            rec.msg_bytes = top.scenario.msg_bytes;
            rec.features = encode_point(top);
            rec.chosen = coll::algorithm_info(top.algorithm).name;
            if (batch.items.size() > 1) {
              rec.runner_up = coll::algorithm_info(batch.items[1].point.algorithm).name;
            }
            // One extra forest query prices the batch's top pick; a full
            // pool sweep here would double the acquisition cost.
            rec.variance = result.model.jackknife_variance(top);
            rec.acq_score = rec.variance;
            rec.pool_size = static_cast<std::int64_t>(pool.size());
            rec.round = static_cast<std::int64_t>(result.iterations);
            rec.batch_size = static_cast<std::int64_t>(batch.items.size());
            rec.tree_evals = static_cast<std::int64_t>(result.model.n_trees());
            telemetry::audit().record(std::move(rec));
            telemetry::observe_decision_cost(
                std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() -
                                                         start)
                    .count());
          }
          // Erase consumed pool entries (descending index order).
          std::vector<std::size_t> consumed = batch.consumed;
          std::sort(consumed.rbegin(), consumed.rend());
          for (std::size_t idx : consumed) {
            pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
          }
          batch_size = static_cast<int>(batch.items.size());
          collected_this_iter = true;
        }
      }
    }

    if (!collected_this_iter) {
      // Sequential path (also the seed phase and the rank-less fallback).
      const AcquisitionPolicy::Pick pick = policy_.next(result.model, pool, env_, rng);
      require(pick.pool_index < pool.size(), "acquisition returned bad pool index");
      const bench::Measurement m = env_.measure(pick.point);
      result.collected.push_back({pick.point, m.mean_us});
      policy_.observe(pick.point, m.mean_us);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick.pool_index));
    }

    refit(/*force=*/false);

    IterationRecord rec;
    rec.iteration = result.iterations;
    rec.points_collected = result.collected.size();
    rec.clock_s = env_.clock_s() - clock_start_s;
    rec.batch_size = batch_size;
    if (result.model.trained()) {
      rec.cumulative_variance = result.model.cumulative_variance(candidates);
      if (monitor_) {
        rec.avg_slowdown = monitor_(result.model);
      }
      // Variance convergence (§IV-C): the change of the smoothed cumulative
      // variance over a `patience`-iteration window must stay below
      // abs_tol + rel_tol * reference, for `patience` consecutive checks.
      constexpr double kEmaAlpha = 0.25;
      ema = ema < 0.0 ? rec.cumulative_variance
                      : kEmaAlpha * rec.cumulative_variance + (1.0 - kEmaAlpha) * ema;
      ema_history.push_back(ema);
      if (ema_history.size() > static_cast<std::size_t>(patience)) {
        const double ref =
            ema_history[ema_history.size() - 1 - static_cast<std::size_t>(patience)];
        const double delta = std::abs(ema - ref);
        const double tol = config_.variance_abs_tol + config_.variance_rel_tol * std::abs(ref);
        calm_iters = delta < tol ? calm_iters + 1 : 0;
        if (telemetry::tracer().enabled()) {
          telemetry::TraceEvent ev;
          ev.kind = telemetry::EventKind::ConvergenceCheck;
          ev.label = coll::collective_name(collective_);
          ev.fields["iteration"] = rec.iteration;
          ev.fields["delta"] = delta;
          ev.fields["tol"] = tol;
          ev.fields["calm_iters"] = calm_iters;
          telemetry::tracer().record(std::move(ev));
        }
      }
      rec.cumulative_variance_ema = ema;
    }
    result.history.push_back(rec);
    if (telemetry::tracer().enabled()) {
      telemetry::TraceEvent ev;
      ev.kind = telemetry::EventKind::TrainingIteration;
      ev.label = coll::collective_name(collective_);
      ev.fields["iteration"] = rec.iteration;
      ev.fields["points"] = rec.points_collected;
      ev.fields["variance"] = rec.cumulative_variance;
      ev.fields["variance_ema"] = rec.cumulative_variance_ema;
      ev.fields["batch_size"] = rec.batch_size;
      ev.fields["clock_s"] = rec.clock_s;
      ev.fields["converged"] = calm_iters >= patience &&
                               rec.points_collected >= min_points;
      telemetry::tracer().record(std::move(ev));
    }

    if (calm_iters >= patience && result.collected.size() >= min_points) {
      result.converged = true;
      break;
    }
  }

  refit(/*force=*/true);
  result.train_time_s = env_.clock_s() - clock_start_s;
  static telemetry::Counter& runs = telemetry::metrics().counter("learner.runs");
  static telemetry::Counter& iters = telemetry::metrics().counter("learner.iterations");
  static telemetry::Histogram& points_hist =
      telemetry::metrics().histogram("learner.points_per_run", {1.0, 16});
  runs.add();
  iters.add(static_cast<std::uint64_t>(result.iterations));
  points_hist.observe(static_cast<double>(result.collected.size()));
  AC_LOG_INFO() << "active learner (" << coll::collective_name(collective_) << ", "
                << policy_.name() << "): " << result.collected.size() << " points, "
                << result.iterations << " iterations, "
                << (result.converged ? "converged" : "stopped") << " after "
                << result.train_time_s << " s of collection";
  return result;
}

}  // namespace acclaim::core

#include "core/acquisition.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>

#include "core/feature_space.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace acclaim::core {

void AcquisitionPolicy::observe(const bench::BenchmarkPoint&, double) {}

std::vector<std::size_t> AcquisitionPolicy::rank(const CollectiveModel&,
                                                 const std::vector<bench::BenchmarkPoint>&) const {
  return {};
}

AcquisitionPolicy::Pick RandomAcquisition::next(const CollectiveModel&,
                                                const std::vector<bench::BenchmarkPoint>& pool,
                                                TuningEnvironment&, util::Rng& rng) {
  require(!pool.empty(), "acquisition requires a non-empty pool");
  const std::size_t i = rng.index(pool.size());
  return {i, pool[i]};
}

namespace {

/// Shared variance-to-pick logic for both variance-guided policies. The
/// candidate sweep (jackknife_variances: fixed-size blocks of pool entries
/// through the fused SoA predict+jackknife kernel) runs on the global
/// thread pool; the pick itself — argmax scan or the single weighted draw —
/// stays sequential over the in-order variance vector, so the chosen index
/// and the rng stream are independent of the thread count.
std::size_t pick_from_variances(const std::vector<double>& var, VariancePick mode,
                                util::Rng& rng) {
  if (mode == VariancePick::Argmax) {
    std::size_t best = 0;
    double best_var = -1.0;
    for (std::size_t i = 0; i < var.size(); ++i) {
      if (var[i] > best_var) {
        best_var = var[i];
        best = i;
      }
    }
    return best;
  }
  // Weighted sampling: probability proportional to jackknife variance.
  double total = 0.0;
  for (double v : var) {
    total += v + 1e-12;
  }
  double pick = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < var.size(); ++i) {
    const double w = var[i] + 1e-12;
    if (pick < w) {
      return i;
    }
    pick -= w;
  }
  return var.size() - 1;
}

std::size_t pick_by_variance(const CollectiveModel& model,
                             const std::vector<bench::BenchmarkPoint>& pool, VariancePick mode,
                             util::Rng& rng) {
  return pick_from_variances(model.jackknife_variances(pool), mode, rng);
}

}  // namespace

AcclaimAcquisition::AcclaimAcquisition(AcclaimAcquisitionConfig config) : config_(config) {}

std::vector<std::size_t> AcclaimAcquisition::rank(
    const CollectiveModel& model, const std::vector<bench::BenchmarkPoint>& pool) const {
  if (!model.trained()) {
    return {};
  }
  const std::vector<double> var = model.jackknife_variances(pool);
  std::vector<std::size_t> order(pool.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return var[a] > var[b]; });
  return order;
}

AcquisitionPolicy::Pick AcclaimAcquisition::next(const CollectiveModel& model,
                                                 const std::vector<bench::BenchmarkPoint>& pool,
                                                 TuningEnvironment& env, util::Rng& rng) {
  require(!pool.empty(), "acquisition requires a non-empty pool");
  ++picks_;
  // The variance sweep is kept (not recomputed) so the audit record can name
  // the runner-up candidate without a second forest pass.
  std::vector<double> var;
  std::size_t best;
  if (model.trained()) {
    var = model.jackknife_variances(pool);
    best = pick_from_variances(var, config_.pick, rng);
  } else {
    best = rng.index(pool.size());
  }
  bench::BenchmarkPoint point = pool[best];
  const bool nonp2_turn = config_.nonp2_cadence > 0 && picks_ % config_.nonp2_cadence == 0;
  bool swapped = false;
  if (nonp2_turn) {
    // Swap the message size for a random non-P2 size whose closest P2 value
    // is the selected one (§IV-B).
    if (const auto m = env.nonp2_msg_near(point.scenario.msg_bytes, rng)) {
      point.scenario.msg_bytes = *m;
      swapped = true;
    }
  }
  static telemetry::Counter& picks = telemetry::metrics().counter("acquisition.picks");
  static telemetry::Counter& swaps = telemetry::metrics().counter("acquisition.nonp2_swaps");
  picks.add();
  if (swapped) {
    swaps.add();
  }
  if (telemetry::tracer().enabled()) {
    telemetry::TraceEvent ev;
    ev.kind = telemetry::EventKind::PointAcquired;
    ev.label = coll::collective_name(point.scenario.collective);
    ev.fields["nnodes"] = point.scenario.nnodes;
    ev.fields["ppn"] = point.scenario.ppn;
    ev.fields["msg_bytes"] = point.scenario.msg_bytes;
    ev.fields["algorithm"] = coll::algorithm_info(point.algorithm).name;
    // The signal that drove the pick: the chosen point's jackknife variance
    // under the current model (0 during the random seed phase).
    ev.fields["variance"] = var.empty() ? 0.0 : var[best];
    ev.fields["nonp2"] = swapped;
    telemetry::tracer().record(std::move(ev));
  }
  if (telemetry::audit().enabled()) {
    // This site sits on the learner's serial loop (det-audit-order): one
    // next() call per acquisition round, never inside a parallel_for.
    const auto start = std::chrono::steady_clock::now();
    telemetry::DecisionRecord rec;
    rec.kind = telemetry::DecisionKind::Acquisition;
    rec.source = "policy";
    rec.collective = coll::collective_name(point.scenario.collective);
    rec.nnodes = point.scenario.nnodes;
    rec.ppn = point.scenario.ppn;
    rec.msg_bytes = point.scenario.msg_bytes;
    rec.features = encode_point(point);
    rec.chosen = coll::algorithm_info(point.algorithm).name;
    if (!var.empty()) {
      rec.variance = var[best];
      rec.acq_score = var[best];
      std::size_t second = best == 0 ? (var.size() > 1 ? 1 : 0) : 0;
      for (std::size_t i = 0; i < var.size(); ++i) {
        if (i != best && var[i] > var[second]) {
          second = i;
        }
      }
      if (second != best) {
        rec.runner_up = coll::algorithm_info(pool[second].algorithm).name;
        // Relative score gap: how much more informative the pick looked than
        // the next-best candidate (negative under weighted sampling when a
        // lower-variance point won the draw).
        rec.margin = var[second] > 0.0 ? var[best] / var[second] - 1.0 : 0.0;
      }
      rec.tree_evals =
          static_cast<std::int64_t>(pool.size()) * static_cast<std::int64_t>(model.n_trees());
    }
    rec.pool_size = static_cast<std::int64_t>(pool.size());
    rec.round = static_cast<std::int64_t>(picks_);
    rec.nonp2 = swapped;
    telemetry::audit().record(std::move(rec));
    telemetry::observe_decision_cost(
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return {best, point};
}

SurrogateAcquisition::SurrogateAcquisition(coll::Collective c, std::uint64_t seed,
                                           SurrogateAcquisitionConfig config)
    : surrogate_(c, config.surrogate), config_(config), seed_(seed) {
  require(config_.refresh_every >= 1, "surrogate refresh_every must be >= 1");
}

void SurrogateAcquisition::observe(const bench::BenchmarkPoint& point, double time_us) {
  seen_.push_back({point, time_us});
  ++since_refresh_;
}

void SurrogateAcquisition::maybe_refresh() {
  if (seen_.empty()) {
    return;
  }
  if (!surrogate_.trained() || since_refresh_ >= config_.refresh_every) {
    surrogate_.fit(seen_, seed_ + static_cast<std::uint64_t>(trainings_));
    ++trainings_;
    since_refresh_ = 0;
  }
}

AcquisitionPolicy::Pick SurrogateAcquisition::next(
    const CollectiveModel& /*primary — deliberately unused: FACT's selections
                             are blind to the model they serve (§III-A)*/,
    const std::vector<bench::BenchmarkPoint>& pool, TuningEnvironment&, util::Rng& rng) {
  require(!pool.empty(), "acquisition requires a non-empty pool");
  maybe_refresh();
  if (!surrogate_.trained()) {
    const std::size_t i = rng.index(pool.size());
    return {i, pool[i]};
  }
  const std::size_t best = pick_by_variance(surrogate_, pool, config_.pick, rng);
  return {best, pool[best]};
}

}  // namespace acclaim::core

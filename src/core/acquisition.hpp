// Training-point acquisition policies.
//
//  * AcclaimAcquisition — the paper's contribution (§IV-A/§IV-B): jackknife
//    variance on the *primary* model's own trees picks the highest-variance
//    uncollected point; every `nonp2_cadence`-th pick swaps the point's
//    message size for a random non-P2 size adjacent to it (80-20 split).
//  * SurrogateAcquisition — the FACT baseline (§III-A): a *second*,
//    independently trained forest (standing in for the DeepHyper surrogate)
//    is retrained on everything collected so far and its own jackknife
//    variance drives the selection; the primary model never informs it.
//  * RandomAcquisition — Hunold-style random sampling, also the ablation
//    contrast that isolates the value of variance-guided selection.
#pragma once

#include <memory>
#include <vector>

#include "core/env.hpp"
#include "core/model.hpp"

namespace acclaim::core {

/// Strategy interface. The learner calls next() with the current primary
/// model and the uncollected candidate pool; the policy returns the pool
/// index to collect and may rewrite the point (non-P2 variant). observe()
/// reports every measurement so stateful policies (the surrogate) can learn.
class AcquisitionPolicy {
 public:
  virtual ~AcquisitionPolicy() = default;

  struct Pick {
    std::size_t pool_index = 0;          ///< candidate consumed from the pool
    bench::BenchmarkPoint point;         ///< point to actually benchmark
  };

  /// Requires a non-empty pool.
  virtual Pick next(const CollectiveModel& model,
                    const std::vector<bench::BenchmarkPoint>& pool, TuningEnvironment& env,
                    util::Rng& rng) = 0;

  virtual void observe(const bench::BenchmarkPoint& point, double time_us);

  /// Pool indices in decreasing priority order, for batch (parallel)
  /// collection. An empty result means the policy cannot rank (the learner
  /// then falls back to sequential next() calls).
  virtual std::vector<std::size_t> rank(const CollectiveModel& model,
                                        const std::vector<bench::BenchmarkPoint>& pool) const;

  virtual const char* name() const = 0;
};

class RandomAcquisition final : public AcquisitionPolicy {
 public:
  Pick next(const CollectiveModel& model, const std::vector<bench::BenchmarkPoint>& pool,
            TuningEnvironment& env, util::Rng& rng) override;
  const char* name() const override { return "random"; }
};

/// How a variance-guided policy turns per-candidate variances into a pick.
///
/// The paper states "select the point with highest variance" (Argmax). On
/// our simulated machine the measured response surface has sharper cliffs
/// than Theta's, and pure argmax exhibits the classic noise-chasing failure:
/// it drills into intrinsically rough regions and starves the rest of the
/// space. WeightedSampling draws the next point with probability
/// proportional to its variance — the same signal, robust to roughness —
/// and is the default; Argmax remains available for the ablation bench.
/// (See DESIGN.md "deviations".)
enum class VariancePick { WeightedSampling, Argmax };

struct AcclaimAcquisitionConfig {
  /// Every n-th pick becomes a non-P2 message-size variant; 5 gives the
  /// paper's 80-20 split, 0 disables non-P2 sampling entirely.
  int nonp2_cadence = 5;
  VariancePick pick = VariancePick::WeightedSampling;
};

class AcclaimAcquisition final : public AcquisitionPolicy {
 public:
  explicit AcclaimAcquisition(AcclaimAcquisitionConfig config = {});

  Pick next(const CollectiveModel& model, const std::vector<bench::BenchmarkPoint>& pool,
            TuningEnvironment& env, util::Rng& rng) override;
  const char* name() const override { return "acclaim-jackknife"; }

  /// Ranks the whole pool by decreasing jackknife variance (used by the
  /// parallel-collection scheduler, which wants a list, not one point).
  std::vector<std::size_t> rank(const CollectiveModel& model,
                                const std::vector<bench::BenchmarkPoint>& pool) const override;

 private:
  AcclaimAcquisitionConfig config_;
  int picks_ = 0;
};

struct SurrogateAcquisitionConfig {
  ml::ForestParams surrogate = default_forest_params();
  /// Retrain the surrogate after this many new observations (1 = every
  /// iteration, matching FACT; larger values trade fidelity for speed in
  /// long traces).
  int refresh_every = 1;
  /// FACT is modeled as published: DeepHyper hands back the maximizer of
  /// its acquisition, so Argmax is the default here (unlike ACCLAiM's
  /// weighted adaptation — see DESIGN.md deviations).
  VariancePick pick = VariancePick::Argmax;
};

class SurrogateAcquisition final : public AcquisitionPolicy {
 public:
  SurrogateAcquisition(coll::Collective c, std::uint64_t seed,
                       SurrogateAcquisitionConfig config = {});

  Pick next(const CollectiveModel& model, const std::vector<bench::BenchmarkPoint>& pool,
            TuningEnvironment& env, util::Rng& rng) override;
  void observe(const bench::BenchmarkPoint& point, double time_us) override;
  const char* name() const override { return "fact-surrogate"; }

  /// Number of times the surrogate has been (re)trained — FACT's structural
  /// overhead, visible to the benches.
  int surrogate_trainings() const noexcept { return trainings_; }

 private:
  void maybe_refresh();

  CollectiveModel surrogate_;
  std::vector<LabeledPoint> seen_;
  SurrogateAcquisitionConfig config_;
  std::uint64_t seed_;
  int since_refresh_ = 0;
  int trainings_ = 0;
};

}  // namespace acclaim::core

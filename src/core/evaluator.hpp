// The paper's evaluation metric: average slowdown of a selector's choices
// versus the measured-optimal algorithm (§II-C2). 1.0 = always optimal;
// the convergence standard is average slowdown <= 1.03.
#pragma once

#include <functional>
#include <vector>

#include "benchdata/dataset.hpp"
#include "core/model.hpp"

namespace acclaim::core {

/// The paper's convergence criterion on average slowdown.
inline constexpr double kSlowdownConvergence = 1.03;

using Selector = std::function<coll::Algorithm(const bench::Scenario&)>;

class Evaluator {
 public:
  /// `truth` provides measured times for every (scenario, algorithm) pair
  /// being evaluated; it must outlive the evaluator.
  explicit Evaluator(const bench::Dataset& truth);

  /// Mean over test scenarios of time(selected) / time(best). Scenarios the
  /// dataset lacks entirely are an error (NotFoundError).
  double average_slowdown(const std::vector<bench::Scenario>& test,
                          const Selector& select) const;

  /// Convenience: evaluate a trained model.
  double average_slowdown(const std::vector<bench::Scenario>& test,
                          const CollectiveModel& model) const;

  /// Fraction of scenarios where the selection is exactly optimal.
  double optimal_rate(const std::vector<bench::Scenario>& test, const Selector& select) const;

  const bench::Dataset& truth() const noexcept { return truth_; }

 private:
  const bench::Dataset& truth_;
};

}  // namespace acclaim::core

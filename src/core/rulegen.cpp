#include "core/rulegen.hpp"

#include <chrono>
#include <cmath>
#include <fstream>
#include <limits>

#include "core/heuristic.hpp"
#include "telemetry/audit.hpp"
#include "telemetry/profiler.hpp"
#include "util/error.hpp"

namespace acclaim::core {

namespace {

/// Flattens a model explanation into the telemetry layer's string-and-number
/// DecisionRecord shape (telemetry sits below core and cannot see coll::
/// types). Scenario fields and seq are filled by the caller / the log.
telemetry::DecisionRecord selection_record(const SelectionExplanation& ex) {
  telemetry::DecisionRecord rec;
  rec.kind = telemetry::DecisionKind::Selection;
  rec.source = "model";
  rec.features = ex.features;
  rec.scores.reserve(ex.candidates.size());
  for (const SelectionExplanation::Candidate& c : ex.candidates) {
    rec.scores.push_back({coll::algorithm_info(c.algorithm).name, c.predicted_log_us, c.votes});
  }
  rec.chosen = coll::algorithm_info(ex.chosen).name;
  if (ex.has_runner_up) {
    rec.runner_up = coll::algorithm_info(ex.runner_up).name;
    rec.margin = ex.margin;
  }
  rec.variance = ex.variance;
  rec.tree_evals = ex.tree_evals;
  return rec;
}

}  // namespace

void RuleTable::set_bucket(BucketKey key, std::vector<SelectionRule> rules) {
  require(!rules.empty(), "bucket must contain at least one rule");
  buckets_[key] = std::move(rules);
}

coll::Algorithm RuleTable::lookup(const bench::Scenario& s) const {
  require(s.collective == collective_, "scenario collective does not match rule table");
  require(!buckets_.empty(), "rule table has no buckets");
  // Exact bucket, else nearest in log2 space (ties -> smaller key, which
  // std::map iteration order provides).
  const BucketKey want{s.nnodes, s.ppn};
  auto it = buckets_.find(want);
  if (it == buckets_.end()) {
    double best = std::numeric_limits<double>::infinity();
    for (auto cand = buckets_.begin(); cand != buckets_.end(); ++cand) {
      const double d =
          std::abs(std::log2(static_cast<double>(cand->first.nnodes)) -
                   std::log2(static_cast<double>(want.nnodes))) +
          std::abs(std::log2(static_cast<double>(cand->first.ppn)) -
                   std::log2(static_cast<double>(want.ppn)));
      if (d < best) {
        best = d;
        it = cand;
      }
    }
  }
  for (const SelectionRule& rule : it->second) {
    if (s.msg_bytes <= rule.msg_le) {
      return rule.alg;
    }
  }
  // Unreachable for validated tables (terminal rule is kRuleMax).
  return it->second.back().alg;
}

void RuleTable::validate() const {
  require(!buckets_.empty(), "rule table has no buckets");
  for (const auto& [key, rules] : buckets_) {
    require(!rules.empty(), "empty rule bucket");
    require(rules.back().msg_le == kRuleMax,
            "rule set is not complete: terminal rule must cover all sizes");
    for (std::size_t i = 0; i < rules.size(); ++i) {
      require(coll::algorithm_info(rules[i].alg).collective == collective_,
              "rule algorithm does not implement the table's collective");
      if (i > 0) {
        require(rules[i].msg_le > rules[i - 1].msg_le,
                "rule thresholds must be strictly increasing");
        require(rules[i].alg != rules[i - 1].alg,
                "rule set is not pruned: consecutive rules share an algorithm");
      }
    }
  }
}

RuleTable RuleGenerator::generate(const CollectiveModel& model, const FeatureSpace& space,
                                  RuleGeneratorStats* stats) const {
  require(model.trained(), "rule generation requires a trained model");
  telemetry::ScopedTimer timer("rulegen.generate");
  const coll::Collective c = model.collective();
  RuleTable table(c);
  RuleGeneratorStats local;
  // Audited selection: when the flight recorder is on, every model query the
  // grid walk makes becomes one Selection record with the full per-candidate
  // breakdown (explain() is guaranteed to name select()'s argmin). The walk
  // is serial, so record order is thread-count-independent
  // (det-audit-order); when auditing is off this is exactly model.select().
  auto select_audited = [&](const bench::Scenario& s) {
    if (!telemetry::audit().enabled()) {
      return model.select(s);
    }
    const auto start = std::chrono::steady_clock::now();
    const SelectionExplanation ex = model.explain(s);
    telemetry::DecisionRecord rec = selection_record(ex);
    rec.collective = coll::collective_name(s.collective);
    rec.nnodes = s.nnodes;
    rec.ppn = s.ppn;
    rec.msg_bytes = s.msg_bytes;
    telemetry::audit().record(std::move(rec));
    telemetry::observe_decision_cost(
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
            .count());
    return ex.chosen;
  };
  // Default guard (see RuleGeneratorConfig): revert a cell to the MPICH
  // default algorithm when the model's own predictions put the tuned pick
  // within the confidence margin of it. Queries are serial, so audit-record
  // order stays thread-count-independent.
  auto guarded = [&](const bench::Scenario& s, coll::Algorithm tuned) {
    if (config_.default_guard_margin <= 0.0) {
      return tuned;
    }
    const coll::Algorithm def = mpich_default_selection(s);
    if (def == tuned) {
      return tuned;
    }
    const double tuned_log = model.predict_log_us({s, tuned});
    const double def_log = model.predict_log_us({s, def});
    if (std::exp(def_log - tuned_log) < 1.0 + config_.default_guard_margin) {
      ++local.default_guards;
      return def;
    }
    return tuned;
  };
  for (int nnodes : space.nodes()) {
    for (int ppn : space.ppns()) {
      const auto& msgs = space.msgs();
      std::vector<SelectionRule> rules;
      auto scenario = [&](std::uint64_t msg) {
        return bench::Scenario{c, nnodes, ppn, msg};
      };
      // Batched grid sweep: with the flight recorder off, the bucket's whole
      // msg grid goes through one select_batch call (fused SoA kernel, one
      // parallel sweep) — guaranteed to return exactly select() per scenario,
      // so the emitted rules are unchanged. With auditing on, the walk stays
      // serial per query so record order and bytes are untouched.
      std::vector<coll::Algorithm> grid;
      if (!telemetry::audit().enabled()) {
        std::vector<bench::Scenario> scenarios;
        scenarios.reserve(msgs.size());
        for (std::uint64_t msg : msgs) {
          scenarios.push_back(scenario(msg));
        }
        grid = model.select_batch(scenarios);
      }
      auto grid_select = [&](std::size_t i) {
        return guarded(scenario(msgs[i]),
                       grid.empty() ? select_audited(scenario(msgs[i])) : grid[i]);
      };
      coll::Algorithm current = grid_select(0);
      for (std::size_t i = 1; i < msgs.size(); ++i) {
        const coll::Algorithm next = grid_select(i);
        if (next == current) {
          continue;
        }
        // Selection changes between A = msgs[i-1] and C = msgs[i]: re-query
        // the model at the non-P2 midpoint B (Fig. 9).
        const std::uint64_t a = msgs[i - 1];
        const std::uint64_t cm = msgs[i];
        const std::uint64_t b = a + (cm - a) / 2;
        const coll::Algorithm alg_b = guarded(scenario(b), select_audited(scenario(b)));
        ++local.midpoint_queries;
        rules.push_back({a, current});
        rules.push_back({cm - 1, alg_b});
        current = next;
      }
      rules.push_back({kRuleMax, current});

      // Prune: merge consecutive rules resolving to the same algorithm
      // (covers both the ALG-A == ALG-B and ALG-B == ALG-C cases).
      std::vector<SelectionRule> pruned;
      for (const SelectionRule& r : rules) {
        if (!pruned.empty() && pruned.back().alg == r.alg) {
          pruned.back().msg_le = r.msg_le;
          ++local.merges;
        } else {
          pruned.push_back(r);
        }
      }
      local.rules += static_cast<int>(pruned.size());
      ++local.buckets;
      table.set_bucket(BucketKey{nnodes, ppn}, std::move(pruned));
    }
  }
  table.validate();
  if (stats != nullptr) {
    *stats = local;
  }
  return table;
}

util::Json rules_to_json(const std::vector<RuleTable>& tables) {
  util::Json doc = util::Json::object();
  doc["format"] = "acclaim-coll-tuning-v1";
  util::Json colls = util::Json::object();
  for (const RuleTable& table : tables) {
    table.validate();
    util::Json buckets = util::Json::array();
    for (const auto& [key, rules] : table.buckets()) {
      util::Json bucket = util::Json::object();
      bucket["nnodes"] = key.nnodes;
      bucket["ppn"] = key.ppn;
      util::Json jrules = util::Json::array();
      for (const SelectionRule& r : rules) {
        util::Json jr = util::Json::object();
        if (r.msg_le != kRuleMax) {
          jr["msg_size_le"] = static_cast<double>(r.msg_le);
        }
        jr["algorithm"] = coll::algorithm_info(r.alg).name;
        jrules.push_back(std::move(jr));
      }
      bucket["rules"] = std::move(jrules);
      buckets.push_back(std::move(bucket));
    }
    colls[coll::collective_name(table.collective())] = std::move(buckets);
  }
  doc["collectives"] = std::move(colls);
  return doc;
}

std::vector<RuleTable> rules_from_json(const util::Json& doc) {
  require(doc.contains("format") && doc.at("format").as_string() == "acclaim-coll-tuning-v1",
          "unknown selection-config format");
  std::vector<RuleTable> tables;
  for (const auto& [cname, buckets] : doc.at("collectives").as_object()) {
    const coll::Collective c = coll::parse_collective(cname);
    RuleTable table(c);
    for (const util::Json& bucket : buckets.as_array()) {
      std::vector<SelectionRule> rules;
      for (const util::Json& jr : bucket.at("rules").as_array()) {
        SelectionRule r;
        r.msg_le = jr.contains("msg_size_le")
                       ? static_cast<std::uint64_t>(jr.at("msg_size_le").as_number())
                       : kRuleMax;
        r.alg = coll::parse_algorithm(c, jr.at("algorithm").as_string());
        rules.push_back(r);
      }
      table.set_bucket(
          BucketKey{static_cast<int>(bucket.at("nnodes").as_int()),
                    static_cast<int>(bucket.at("ppn").as_int())},
          std::move(rules));
    }
    table.validate();
    tables.push_back(std::move(table));
  }
  return tables;
}

SelectionEngine::SelectionEngine(std::vector<RuleTable> tables) {
  for (RuleTable& t : tables) {
    t.validate();
    const int key = static_cast<int>(t.collective());
    require(tables_.find(key) == tables_.end(), "duplicate rule table for a collective");
    tables_.emplace(key, std::move(t));
  }
}

SelectionEngine SelectionEngine::from_json(const util::Json& doc) {
  return SelectionEngine(rules_from_json(doc));
}

SelectionEngine SelectionEngine::from_file(const std::string& path) {
  return from_json(util::Json::parse_file(path));
}

bool SelectionEngine::covers(coll::Collective c) const {
  return tables_.count(static_cast<int>(c)) > 0;
}

coll::Algorithm SelectionEngine::select(const bench::Scenario& s) const {
  const auto it = tables_.find(static_cast<int>(s.collective));
  if (it == tables_.end()) {
    throw NotFoundError(std::string("selection engine has no rules for ") +
                        coll::collective_name(s.collective));
  }
  const coll::Algorithm alg = it->second.lookup(s);
  if (telemetry::audit().enabled()) {
    // Rule lookups have no candidate scores (the table already collapsed
    // them); the record still captures what was asked and what was served —
    // the runtime-selection half of the flight recorder.
    const auto start = std::chrono::steady_clock::now();
    telemetry::DecisionRecord rec;
    rec.kind = telemetry::DecisionKind::Selection;
    rec.source = "rules";
    rec.collective = coll::collective_name(s.collective);
    rec.nnodes = s.nnodes;
    rec.ppn = s.ppn;
    rec.msg_bytes = s.msg_bytes;
    rec.chosen = coll::algorithm_info(alg).name;
    telemetry::audit().record(std::move(rec));
    telemetry::observe_decision_cost(
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return alg;
}

}  // namespace acclaim::core

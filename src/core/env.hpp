// Tuning environments: where benchmark measurements come from and how their
// collection time is accounted.
//
// The paper uses two settings (Fig. 1):
//  (a) simulated experiments that look results up in a precollected dataset
//      (DatasetEnvironment), charging the recorded collection cost, and
//  (b) production runs that execute microbenchmarks inside the job's
//      allocation (LiveEnvironment), optionally several in parallel on
//      disjoint machine regions (§IV-D).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "benchdata/dataset.hpp"
#include "benchdata/microbenchmark.hpp"
#include "benchdata/point.hpp"
#include "simnet/allocation.hpp"
#include "simnet/network.hpp"
#include "simnet/topology.hpp"
#include "util/rng.hpp"

namespace acclaim::core {

/// One benchmark placed at a node offset within the job allocation (the
/// output of the topology-aware CollectionScheduler).
struct ScheduledBenchmark {
  bench::BenchmarkPoint point;
  int first_node = 0;  ///< index into the job allocation's node list
};

/// Predicted solo runtime (microseconds) of one placed benchmark. Installed
/// by environments that can price a communication schedule without running
/// it (LiveEnvironment builds the schedule against the cost model). Must be
/// a pure, thread-safe function of its argument: the CollectionScheduler
/// evaluates all placements of a batch concurrently, one result slot per
/// candidate.
using SoloCostFn = std::function<double(const ScheduledBenchmark&)>;

/// Abstract measurement source with a collection-time clock.
class TuningEnvironment {
 public:
  virtual ~TuningEnvironment() = default;

  /// Benchmarks one point and advances the collection clock by its cost.
  virtual bench::Measurement measure(const bench::BenchmarkPoint& point) = 0;

  /// Runs a pre-placed batch concurrently if the environment supports it;
  /// the clock advances by the batch *makespan*, not the cost sum. The
  /// default implementation measures sequentially.
  virtual std::vector<bench::Measurement> measure_scheduled(
      const std::vector<ScheduledBenchmark>& batch);

  /// As above, with the scheduler's predicted solo costs
  /// (CollectionBatch::predicted_us, parallel to `batch`, or empty when the
  /// plan was unscored). Environments that price schedules (LiveEnvironment)
  /// reuse the prediction instead of rebuilding the schedule — bitwise the
  /// same measurements, roughly half the host work. A slot whose prediction
  /// is <= 0 carries no usable hint (the caller mutated the point after
  /// plan() priced it, or the placement priced degenerate) and is rebuilt
  /// from the point. The default forwards to the single-argument overload,
  /// ignoring the hint.
  virtual std::vector<bench::Measurement> measure_scheduled(
      const std::vector<ScheduledBenchmark>& batch,
      const std::vector<double>& predicted_solo_us);

  /// Accumulated collection time in seconds.
  double clock_s() const noexcept { return clock_s_; }
  void reset_clock() noexcept { clock_s_ = 0.0; }

  /// A measurable non-power-of-two message size whose closest P2 value is
  /// `p2_anchor` (§IV-B), or nullopt if the environment has none.
  virtual std::optional<std::uint64_t> nonp2_msg_near(std::uint64_t p2_anchor,
                                                      util::Rng& rng) = 0;

  /// Topology/allocation context for the parallel-collection scheduler;
  /// nullptr when the environment cannot co-schedule (dataset lookups).
  virtual const simnet::Topology* topology() const { return nullptr; }
  virtual const simnet::Allocation* allocation() const { return nullptr; }

  /// Cost oracle for the scheduler's parallel placement scoring; an empty
  /// function when the environment cannot price schedules without running
  /// them (dataset lookups).
  virtual SoloCostFn solo_cost_oracle() const { return {}; }

 protected:
  void charge_s(double seconds) { clock_s_ += seconds; }

 private:
  double clock_s_ = 0.0;
};

/// Fig. 1(a): measurements come from a precollected dataset.
class DatasetEnvironment final : public TuningEnvironment {
 public:
  explicit DatasetEnvironment(const bench::Dataset& dataset);

  bench::Measurement measure(const bench::BenchmarkPoint& point) override;
  std::optional<std::uint64_t> nonp2_msg_near(std::uint64_t p2_anchor,
                                              util::Rng& rng) override;

  const bench::Dataset& dataset() const noexcept { return dataset_; }

 private:
  const bench::Dataset& dataset_;
  // Message sizes per collective, cached sorted. Ordered map: the non-P2
  // candidate pool is built by iterating this container, so its traversal
  // order must not depend on hashing (det-unordered-iter).
  std::map<int, std::vector<std::uint64_t>> msgs_;
};

struct LiveEnvironmentConfig {
  bench::MicrobenchConfig microbench;
  /// Extra concurrent flows each co-running benchmark injects into a rack
  /// uplink / global pair it touches (used when a schedule violates the
  /// disjointness rules, e.g. the naive ablation scheduler).
  int interference_flows = 6;
};

/// Fig. 1(b): measurements execute on the simulated machine inside the job's
/// allocation; co-scheduled batches run concurrently and interfere when they
/// share racks or pairs.
///
/// Threading: measure_scheduled() runs the batch's simulated microbenchmarks
/// concurrently on the global thread pool — the placements are disjoint node
/// regions, so each item only reads the shared (immutable) NetworkModel and
/// writes its own result slot. Measurement noise comes from counter-derived
/// per-measurement streams (Rng::stream over a serial measurement sequence
/// number), so every measured value is bitwise-identical for any thread
/// count and for a sequential re-run of the same seed.
class LiveEnvironment final : public TuningEnvironment {
 public:
  /// The environment references `topo` and `alloc`; both must outlive it.
  /// `job_seed` fixes this job's network realization and noise streams.
  LiveEnvironment(const simnet::Topology& topo, const simnet::Allocation& alloc,
                  std::uint64_t job_seed, LiveEnvironmentConfig config = {});

  bench::Measurement measure(const bench::BenchmarkPoint& point) override;
  std::vector<bench::Measurement> measure_scheduled(
      const std::vector<ScheduledBenchmark>& batch) override;
  std::vector<bench::Measurement> measure_scheduled(
      const std::vector<ScheduledBenchmark>& batch,
      const std::vector<double>& predicted_solo_us) override;
  std::optional<std::uint64_t> nonp2_msg_near(std::uint64_t p2_anchor,
                                              util::Rng& rng) override;

  const simnet::Topology* topology() const override { return &topo_; }
  const simnet::Allocation* allocation() const override { return &alloc_; }
  SoloCostFn solo_cost_oracle() const override;
  const simnet::NetworkModel& network() const noexcept { return net_; }

  /// Deterministic predicted solo runtime of one placed benchmark (the
  /// schedule priced against this job's network, no noise, no launch cost).
  double predicted_solo_us(const ScheduledBenchmark& item) const;

 private:
  const simnet::Topology& topo_;
  const simnet::Allocation& alloc_;
  simnet::NetworkModel net_;
  bench::Microbenchmark mb_;
  LiveEnvironmentConfig config_;
  std::uint64_t noise_seed_ = 0;
  /// Serial measurement sequence number: stream ids are handed out in batch
  /// order *before* the parallel loop runs, which is what pins the noise to
  /// the measurement, not to the thread schedule.
  std::uint64_t measure_seq_ = 0;
};

}  // namespace acclaim::core

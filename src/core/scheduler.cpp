#include "core/scheduler.hpp"

#include <map>

#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::core {

CollectionScheduler::CollectionScheduler(CollectionSchedulerConfig config) : config_(config) {
  require(config_.max_batch >= 1, "scheduler batch cap must be >= 1");
}

CollectionBatch CollectionScheduler::plan(const std::vector<bench::BenchmarkPoint>& pool,
                                          const std::vector<std::size_t>& ranked,
                                          const simnet::Topology& topo,
                                          const simnet::Allocation& alloc,
                                          const SoloCostFn& solo_cost) const {
  telemetry::ScopedTimer timer("scheduler.plan");
  CollectionBatch batch;
  // Nodes are consumed strictly left-to-right in allocation order, so the
  // used region is always a prefix and `cursor` fully describes it.
  int cursor = 0;
  for (std::size_t pri : ranked) {
    if (static_cast<int>(batch.items.size()) >= config_.max_batch) {
      break;
    }
    require(pri < pool.size(), "ranked index out of pool range");
    const int need = pool[pri].scenario.nnodes;
    if (cursor + need > alloc.num_nodes()) {
      break;  // the paper's greedy stops at the first misfit
    }
    batch.items.push_back(ScheduledBenchmark{pool[pri], cursor});
    batch.consumed.push_back(pri);
    cursor += need;
    if (config_.topology_aware) {
      // Retire the remaining nodes of every rack the placement touched:
      // advance past all allocation nodes whose rack is <= the last rack
      // used. (Node ids — and hence racks — increase with allocation index.)
      const int last_rack = topo.rack_of(alloc.node(cursor - 1));
      while (cursor < alloc.num_nodes() && topo.rack_of(alloc.node(cursor)) <= last_rack) {
        ++cursor;
      }
    }
  }

  // Parallel placement scoring: each accepted candidate's solo schedule is
  // priced concurrently (the expensive part — building the communication
  // schedule against the cost model), one slot per candidate. The argmax
  // fold below runs serially in slot order, so the predicted makespan and
  // its witness are independent of the chunk-to-thread schedule.
  if (solo_cost && !batch.items.empty()) {
    batch.predicted_us.assign(batch.items.size(), 0.0);
    util::global_pool().parallel_for(0, batch.items.size(), [&](std::size_t i) {
      batch.predicted_us[i] = solo_cost(batch.items[i]);
    });
    for (std::size_t i = 0; i < batch.predicted_us.size(); ++i) {
      if (batch.predicted_longest < 0 ||
          batch.predicted_us[i] > batch.predicted_makespan_us) {
        batch.predicted_makespan_us = batch.predicted_us[i];
        batch.predicted_longest = static_cast<int>(i);
      }
    }
  }

  static telemetry::Counter& candidates =
      telemetry::metrics().counter("scheduler.candidates_considered");
  candidates.add(static_cast<std::uint64_t>(ranked.size()));
  if (!batch.items.empty()) {
    static telemetry::Counter& batches = telemetry::metrics().counter("scheduler.batches");
    static telemetry::Counter& placed = telemetry::metrics().counter("scheduler.placements");
    static telemetry::Histogram& sizes =
        telemetry::metrics().histogram("scheduler.batch_size", {1.0, 12});
    static telemetry::Histogram& occupancy =
        telemetry::metrics().histogram("scheduler.batch_occupancy", {1.0 / 256, 10});
    batches.add();
    placed.add(static_cast<std::uint64_t>(batch.items.size()));
    sizes.observe(static_cast<double>(batch.items.size()));
    int occupied = 0;
    for (const ScheduledBenchmark& item : batch.items) {
      occupied += item.point.scenario.nnodes;
    }
    occupancy.observe(static_cast<double>(occupied) /
                      static_cast<double>(alloc.num_nodes()));
    if (!batch.predicted_us.empty()) {
      static telemetry::Gauge& makespan =
          telemetry::metrics().gauge("scheduler.predicted_makespan_us");
      makespan.set(batch.predicted_makespan_us);
    }
    if (telemetry::tracer().enabled()) {
      int nodes_used = 0;
      // Allocation fragments: maximal runs of consecutively-placed
      // benchmarks; gaps come from whole-rack retirement.
      int fragments = 0;
      int expected_next = -1;
      for (const ScheduledBenchmark& item : batch.items) {
        nodes_used += item.point.scenario.nnodes;
        if (item.first_node != expected_next) {
          ++fragments;
        }
        expected_next = item.first_node + item.point.scenario.nnodes;
      }
      // Contention estimate: racks touched by more than one co-running
      // benchmark (always 0 for the topology-aware greedy, the §III-D
      // hazard count for the naive ablation).
      int shared_racks = 0;
      std::map<int, bool> rack_seen;
      for (const ScheduledBenchmark& item : batch.items) {
        std::map<int, bool> mine;
        for (int k = 0; k < item.point.scenario.nnodes; ++k) {
          mine[topo.rack_of(alloc.node(item.first_node + k))] = true;
        }
        for (const auto& [rack, _] : mine) {
          if (rack_seen[rack]) {
            ++shared_racks;
          }
          rack_seen[rack] = true;
        }
      }
      telemetry::TraceEvent ev;
      ev.kind = telemetry::EventKind::BatchScheduled;
      ev.fields["batch_size"] = batch.items.size();
      ev.fields["nodes_used"] = nodes_used;
      ev.fields["nodes_retired"] = cursor - nodes_used;
      ev.fields["alloc_nodes"] = alloc.num_nodes();
      ev.fields["fragments"] = fragments;
      ev.fields["shared_racks"] = shared_racks;
      ev.fields["topology_aware"] = config_.topology_aware;
      ev.fields["candidates"] = ranked.size();
      if (!batch.predicted_us.empty()) {
        ev.fields["predicted_makespan_us"] = batch.predicted_makespan_us;
        ev.fields["predicted_longest"] = batch.predicted_longest;
      }
      telemetry::tracer().record(std::move(ev));
    }
  }
  return batch;
}

}  // namespace acclaim::core

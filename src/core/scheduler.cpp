#include "core/scheduler.hpp"

#include "util/error.hpp"

namespace acclaim::core {

CollectionScheduler::CollectionScheduler(CollectionSchedulerConfig config) : config_(config) {
  require(config_.max_batch >= 1, "scheduler batch cap must be >= 1");
}

CollectionBatch CollectionScheduler::plan(const std::vector<bench::BenchmarkPoint>& pool,
                                          const std::vector<std::size_t>& ranked,
                                          const simnet::Topology& topo,
                                          const simnet::Allocation& alloc) const {
  CollectionBatch batch;
  // Nodes are consumed strictly left-to-right in allocation order, so the
  // used region is always a prefix and `cursor` fully describes it.
  int cursor = 0;
  for (std::size_t pri : ranked) {
    if (static_cast<int>(batch.items.size()) >= config_.max_batch) {
      break;
    }
    require(pri < pool.size(), "ranked index out of pool range");
    const int need = pool[pri].scenario.nnodes;
    if (cursor + need > alloc.num_nodes()) {
      break;  // the paper's greedy stops at the first misfit
    }
    batch.items.push_back(ScheduledBenchmark{pool[pri], cursor});
    batch.consumed.push_back(pri);
    cursor += need;
    if (config_.topology_aware) {
      // Retire the remaining nodes of every rack the placement touched:
      // advance past all allocation nodes whose rack is <= the last rack
      // used. (Node ids — and hence racks — increase with allocation index.)
      const int last_rack = topo.rack_of(alloc.node(cursor - 1));
      while (cursor < alloc.num_nodes() && topo.rack_of(alloc.node(cursor)) <= last_rack) {
        ++cursor;
      }
    }
  }
  return batch;
}

}  // namespace acclaim::core

// The autotuner's feature space and its ML encoding.
//
// Features are the paper's three programmatic variables — number of nodes,
// processes per node, message size — plus (following §V) "algorithm" as an
// additional feature so one random forest per collective covers all of that
// collective's algorithms. Axis values are log2-transformed, which makes the
// doubling grids equidistant for the trees.
#pragma once

#include <cstdint>
#include <vector>

#include "benchdata/grid.hpp"
#include "benchdata/point.hpp"
#include "ml/tree.hpp"

namespace acclaim::core {

/// Encodes a benchmark point as {log2 nodes, log2 ppn, log2 msg} followed by
/// a one-hot block over the collective's algorithms.
ml::FeatureRow encode_point(const bench::BenchmarkPoint& p);

/// Number of features produced by encode_point for a collective.
inline std::size_t num_features(coll::Collective c) {
  return 3 + coll::algorithms_for(c).size();
}

/// The power-of-two training-candidate axes. The jackknife acquisition only
/// scores P2 points ("we include P2 feature values only when using jackknife
/// to limit the number of calculations", §IV-A); non-P2 variants are derived
/// on demand from these anchors.
class FeatureSpace {
 public:
  FeatureSpace(std::vector<int> nodes, std::vector<int> ppns,
               std::vector<std::uint64_t> msgs);

  /// Uses the grid's axes directly (they should be the P2 axes).
  static FeatureSpace from_grid(const bench::FeatureGrid& grid);

  const std::vector<int>& nodes() const noexcept { return nodes_; }
  const std::vector<int>& ppns() const noexcept { return ppns_; }
  const std::vector<std::uint64_t>& msgs() const noexcept { return msgs_; }

  /// All candidate training points of one collective (scenario x algorithm).
  std::vector<bench::BenchmarkPoint> candidates(coll::Collective c) const;

  /// All scenarios of one collective.
  std::vector<bench::Scenario> scenarios(coll::Collective c) const;

  /// The P2 message sizes adjacent to `msg` in this space: the largest axis
  /// value < msg and the smallest > msg (0 if none).
  std::pair<std::uint64_t, std::uint64_t> msg_neighbors(std::uint64_t msg) const;

 private:
  std::vector<int> nodes_;
  std::vector<int> ppns_;
  std::vector<std::uint64_t> msgs_;
};

}  // namespace acclaim::core

#include "core/model.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>

#include "telemetry/metrics.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::core {

ml::ForestParams default_forest_params() {
  ml::ForestParams p;
  p.n_trees = 100;
  p.bootstrap = true;
  p.tree.max_depth = 32;
  p.tree.min_samples_leaf = 1;
  p.tree.min_samples_split = 2;
  p.tree.max_features = -1;
  return p;
}

CollectiveModel::CollectiveModel(coll::Collective c, ml::ForestParams params)
    : collective_(c), params_(params) {}

void CollectiveModel::fit(const std::vector<LabeledPoint>& data, std::uint64_t seed) {
  require(!data.empty(), "CollectiveModel::fit requires at least one point");
  std::vector<ml::FeatureRow> X;
  std::vector<double> y;
  X.reserve(data.size());
  y.reserve(data.size());
  for (const LabeledPoint& lp : data) {
    require(lp.point.scenario.collective == collective_,
            "training point belongs to a different collective");
    require(lp.time_us > 0.0, "training time must be positive");
    X.push_back(encode_point(lp.point));
    y.push_back(std::log(lp.time_us));
  }
  // Copy-on-write publication: fit into a fresh forest and swap the shared
  // pointer. Snapshots holding the previous forest keep it alive and
  // unchanged; readers of *this* model see old-or-new, never a mid-fit state.
  auto next = std::make_shared<ml::RandomForest>();
  next->fit(X, y, params_, seed);
  forest_ = std::move(next);
  n_points_ = data.size();
}

double CollectiveModel::predict_log_us(const bench::BenchmarkPoint& point) const {
  require(trained(), "model not trained");
  return forest_->predict(encode_point(point));
}

double CollectiveModel::predict_us(const bench::BenchmarkPoint& point) const {
  return std::exp(predict_log_us(point));
}

double CollectiveModel::jackknife_variance(const bench::BenchmarkPoint& point) const {
  require(trained(), "model not trained");
  thread_local std::vector<double> preds;
  forest_->predict_trees(encode_point(point), preds);
  return ml::jackknife_variance(preds);
}

namespace {

/// Rows per fused predict+jackknife kernel call. Fixed (never derived from
/// the thread count or pool state) so the block a point lands in — and with
/// it every floating-point reduction — is identical for any `--threads`.
/// 16 rows x 100 trees of doubles is a 12.5 KiB scratch block: deep in L1,
/// and enough rows for the tree-major walk to amortize its arena scans.
constexpr std::size_t kJackknifeBlock = 16;

}  // namespace

std::vector<double> CollectiveModel::jackknife_variances(
    const std::vector<bench::BenchmarkPoint>& points) const {
  if (points.empty()) {
    return {};
  }
  require(trained(), "model not trained");
  const auto start = std::chrono::steady_clock::now();
  std::vector<double> out(points.size(), 0.0);
  const std::size_t n_blocks = (points.size() + kJackknifeBlock - 1) / kJackknifeBlock;
  util::global_pool().parallel_for(0, n_blocks, [&](std::size_t b) {
    const std::size_t lo = b * kJackknifeBlock;
    const std::size_t hi = std::min(points.size(), lo + kJackknifeBlock);
    thread_local std::vector<ml::FeatureRow> rows;
    thread_local std::vector<double> scratch;
    rows.resize(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) {
      rows[i - lo] = encode_point(points[i]);
    }
    forest_->jackknife_batch(rows.data(), hi - lo, out.data() + lo, nullptr, scratch);
  });
  static telemetry::Histogram& sweep_ms =
      telemetry::metrics().histogram("model.variance_sweep_ms", {0.01, 32});
  sweep_ms.observe(
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count());
  return out;
}

double CollectiveModel::cumulative_variance(
    const std::vector<bench::BenchmarkPoint>& candidates) const {
  const std::vector<double> var = jackknife_variances(candidates);
  double sum = 0.0;
  for (double v : var) {
    sum += v;
  }
  return sum;
}

util::Json CollectiveModel::to_json() const {
  require(trained(), "cannot serialize an untrained model");
  util::Json doc = util::Json::object();
  doc["model"] = "acclaim-collective-model-v1";
  doc["collective"] = coll::collective_name(collective_);
  doc["training_points"] = static_cast<double>(n_points_);
  doc["forest"] = forest_->to_json();
  return doc;
}

CollectiveModel CollectiveModel::from_json(const util::Json& doc) {
  require(doc.contains("model") &&
              doc.at("model").as_string() == "acclaim-collective-model-v1",
          "unknown model serialization format");
  CollectiveModel model(coll::parse_collective(doc.at("collective").as_string()));
  model.forest_ =
      std::make_shared<const ml::RandomForest>(ml::RandomForest::from_json(doc.at("forest")));
  model.n_points_ = static_cast<std::size_t>(doc.at("training_points").as_int());
  return model;
}

coll::Algorithm CollectiveModel::select(const bench::Scenario& s) const {
  require(s.collective == collective_, "scenario belongs to a different collective");
  coll::Algorithm best = coll::algorithms_for(collective_).front();
  double best_log = std::numeric_limits<double>::infinity();
  for (coll::Algorithm a : coll::algorithms_for(collective_)) {
    const double t = predict_log_us(bench::BenchmarkPoint{s, a});
    if (t < best_log) {
      best_log = t;
      best = a;
    }
  }
  return best;
}

std::vector<coll::Algorithm> CollectiveModel::select_batch(
    const std::vector<bench::Scenario>& scenarios) const {
  if (scenarios.empty()) {
    return {};
  }
  require(trained(), "model not trained");
  const auto algorithms = coll::algorithms_for(collective_);
  const std::size_t n_algs = algorithms.size();
  std::vector<coll::Algorithm> out(scenarios.size(), algorithms.front());
  // One scenario per slot: each evaluates its candidate block through the
  // fused kernel and scans the means with select()'s strict `<` tie-break,
  // so the result is the per-scenario select() bit for bit.
  util::global_pool().parallel_for(0, scenarios.size(), [&](std::size_t i) {
    require(scenarios[i].collective == collective_,
            "scenario belongs to a different collective");
    thread_local std::vector<ml::FeatureRow> rows;
    thread_local std::vector<double> means;
    thread_local std::vector<double> variances;
    thread_local std::vector<double> scratch;
    rows.resize(n_algs);
    means.resize(n_algs);
    variances.resize(n_algs);
    for (std::size_t a = 0; a < n_algs; ++a) {
      rows[a] = encode_point(bench::BenchmarkPoint{scenarios[i], algorithms[a]});
    }
    forest_->jackknife_batch(rows.data(), n_algs, variances.data(), means.data(), scratch);
    std::size_t best = 0;
    for (std::size_t a = 1; a < n_algs; ++a) {
      if (means[a] < means[best]) {
        best = a;
      }
    }
    out[i] = algorithms[best];
  });
  return out;
}

SelectionExplanation CollectiveModel::explain(const bench::Scenario& s) const {
  require(trained(), "model not trained");
  require(s.collective == collective_, "scenario belongs to a different collective");
  const auto algorithms = coll::algorithms_for(collective_);

  SelectionExplanation ex;
  ex.candidates.reserve(algorithms.size());
  // Per-candidate per-tree predictions; kept so votes and the chosen
  // candidate's variance come from one prediction pass.
  std::vector<std::vector<double>> tree_preds;
  tree_preds.reserve(algorithms.size());
  for (coll::Algorithm a : algorithms) {
    thread_local std::vector<double> preds;
    forest_->predict_trees(encode_point(bench::BenchmarkPoint{s, a}), preds);
    const ml::PredictionStats stats = ml::summarize_predictions(preds);
    SelectionExplanation::Candidate c;
    c.algorithm = a;
    c.predicted_log_us = stats.mean;  // bitwise-equal to predict_log_us
    ex.candidates.push_back(c);
    tree_preds.push_back(preds);
  }
  ex.tree_evals = static_cast<std::int64_t>(algorithms.size() * forest_->n_trees());

  // Per-tree votes: each tree votes for the candidate it scored strictly
  // fastest (ties keep the earlier candidate, matching select()'s `<`).
  for (std::size_t t = 0; t < forest_->n_trees(); ++t) {
    std::size_t best = 0;
    for (std::size_t c = 1; c < tree_preds.size(); ++c) {
      if (tree_preds[c][t] < tree_preds[best][t]) {
        best = c;
      }
    }
    ++ex.candidates[best].votes;
  }

  // Argmin / runner-up over the candidate means, with select()'s tie-break.
  std::size_t chosen = 0;
  for (std::size_t c = 1; c < ex.candidates.size(); ++c) {
    if (ex.candidates[c].predicted_log_us < ex.candidates[chosen].predicted_log_us) {
      chosen = c;
    }
  }
  ex.chosen = ex.candidates[chosen].algorithm;
  ex.runner_up = ex.chosen;
  if (ex.candidates.size() > 1) {
    std::size_t second = chosen == 0 ? 1 : 0;
    for (std::size_t c = 0; c < ex.candidates.size(); ++c) {
      if (c != chosen &&
          ex.candidates[c].predicted_log_us < ex.candidates[second].predicted_log_us) {
        second = c;
      }
    }
    ex.runner_up = ex.candidates[second].algorithm;
    ex.has_runner_up = true;
    ex.margin = std::exp(ex.candidates[second].predicted_log_us -
                         ex.candidates[chosen].predicted_log_us) -
                1.0;
  }
  ex.variance = ml::jackknife_variance(tree_preds[chosen]);
  ex.features = encode_point(bench::BenchmarkPoint{s, ex.chosen});
  return ex;
}

}  // namespace acclaim::core

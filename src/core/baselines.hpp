// The two prior-art autotuners the paper compares against.
//
//  * Hunold et al. (CLUSTER'20): one random forest *per algorithm*, trained
//    on a uniform random sample of the feature space.
//  * FACT (ExaMPI'21): active learning driven by a separate surrogate model
//    (SurrogateAcquisition), P2 feature values only, convergence tested on a
//    collected test set covering ~20% of the feature space (§III-C) — the
//    cost ACCLAiM eliminates.
#pragma once

#include <map>
#include <vector>

#include "benchdata/dataset.hpp"
#include "core/acquisition.hpp"
#include "core/active_learner.hpp"
#include "core/env.hpp"
#include "core/feature_space.hpp"
#include "core/model.hpp"

namespace acclaim::core {

/// Hunold-style autotuner: per-algorithm forests over {log nodes, log ppn,
/// log msg}, trained from a random fraction of the available points.
class HunoldAutotuner {
 public:
  explicit HunoldAutotuner(coll::Collective c, ml::ForestParams params = default_forest_params());

  /// Samples `fraction` of the dataset's points for this collective
  /// uniformly at random and fits the per-algorithm models.
  /// Returns the collection cost (s) of the sampled points.
  double fit(const bench::Dataset& data, double fraction, std::uint64_t seed);

  bool trained() const noexcept { return !models_.empty(); }

  /// Predicted time of one algorithm (microseconds).
  double predict_us(const bench::Scenario& s, coll::Algorithm a) const;

  /// Lowest-prediction algorithm. Algorithms that received no training data
  /// at all are skipped (with all of them empty, throws).
  coll::Algorithm select(const bench::Scenario& s) const;

  coll::Collective collective() const noexcept { return collective_; }

 private:
  coll::Collective collective_;
  ml::ForestParams params_;
  std::map<coll::Algorithm, ml::RandomForest> models_;
};

/// One acquisition step of a recorded trace.
struct TraceStep {
  LabeledPoint point;
  double cum_cost_s = 0.0;  ///< collection clock after this point
};

/// The full acquisition ordering a policy would produce, with measured
/// values and cumulative collection costs. Prefixes of a trace reproduce
/// "trained with the first X% of points" sweeps (Figs. 3, 5, 11).
struct AcquisitionTrace {
  coll::Collective collective = coll::Collective::Bcast;
  std::vector<TraceStep> steps;

  /// Points of the first `k` steps.
  std::vector<LabeledPoint> prefix(std::size_t k) const;

  /// Collection cost of the first `k` steps.
  double prefix_cost_s(std::size_t k) const;
};

struct TraceConfig {
  ml::ForestParams forest = default_forest_params();
  int seed_points = 5;
  int max_points = -1;
  /// Primary-model refit cadence during tracing (AcclaimAcquisition needs
  /// the model; batches speed up long traces).
  int refit_every = 5;
  std::uint64_t seed = 1;
};

/// Runs the acquisition loop to `max_points` (or pool exhaustion) and
/// records the order. Wraps ActiveLearner with convergence disabled.
AcquisitionTrace trace_acquisition(coll::Collective c, const FeatureSpace& space,
                                   TuningEnvironment& env, AcquisitionPolicy& policy,
                                   const TraceConfig& config);

/// Fits a fresh primary model on a trace prefix.
CollectiveModel train_on_prefix(const AcquisitionTrace& trace, std::size_t k,
                                ml::ForestParams params, std::uint64_t seed);

/// The FACT test-set protocol: the scenarios FACT must additionally
/// benchmark to compute average slowdown during training — `fraction`
/// (default 20%, §III-C) of the feature-space scenarios, chosen at random.
std::vector<bench::Scenario> fact_test_scenarios(const FeatureSpace& space, coll::Collective c,
                                                 double fraction, std::uint64_t seed);

/// Collection cost of benchmarking every algorithm of every test scenario
/// (what Fig. 6 compares against the training-set cost).
double test_set_collection_cost_s(const std::vector<bench::Scenario>& test,
                                  TuningEnvironment& env);

}  // namespace acclaim::core

// Configuration-file generation (§V, Fig. 9) and runtime selection.
//
// MPICH consumes algorithm selections as a JSON rule file. The generator
// walks the trained model's selections over the P2 message grid for every
// (nodes, ppn) bucket; where the selection changes between adjacent P2
// points A < C it re-queries the model at the non-P2 midpoint B and emits
// three rules (<=A, (A,C), >=C), so the model's non-P2 knowledge survives
// into the rule file. Rules are then pruned: consecutive rules that resolve
// to the same algorithm merge, minimizing selection delay.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "benchdata/point.hpp"
#include "core/feature_space.hpp"
#include "core/model.hpp"
#include "util/json.hpp"

namespace acclaim::core {

/// "Use `alg` for message sizes <= msg_le." The terminal rule of a bucket
/// has msg_le == kRuleMax, making the rule set complete by construction.
struct SelectionRule {
  std::uint64_t msg_le = 0;
  coll::Algorithm alg = coll::Algorithm::BcastBinomial;

  bool operator==(const SelectionRule&) const = default;
};

inline constexpr std::uint64_t kRuleMax = ~std::uint64_t{0};

struct BucketKey {
  int nnodes = 0;
  int ppn = 0;
  auto operator<=>(const BucketKey&) const = default;
};

/// Per-collective rule set, bucketed by (nodes, ppn).
class RuleTable {
 public:
  RuleTable() = default;
  explicit RuleTable(coll::Collective c) : collective_(c) {}

  coll::Collective collective() const noexcept { return collective_; }

  void set_bucket(BucketKey key, std::vector<SelectionRule> rules);
  const std::map<BucketKey, std::vector<SelectionRule>>& buckets() const noexcept {
    return buckets_;
  }

  /// Selects for a scenario: exact (nodes, ppn) bucket if present, else the
  /// nearest bucket in log2 space; then first rule with msg <= msg_le.
  coll::Algorithm lookup(const bench::Scenario& s) const;

  /// Checks invariants: non-empty buckets, strictly increasing msg_le,
  /// terminal kRuleMax rule ("complete"), and no two consecutive rules with
  /// the same algorithm ("pruned"). Throws InvalidArgument on violation.
  void validate() const;

 private:
  coll::Collective collective_ = coll::Collective::Bcast;
  std::map<BucketKey, std::vector<SelectionRule>> buckets_;
};

struct RuleGeneratorStats {
  int buckets = 0;
  int rules = 0;
  int midpoint_queries = 0;  ///< non-P2 model re-queries (point B of Fig. 9)
  int merges = 0;            ///< rules removed by pruning
  int default_guards = 0;    ///< cells the default guard reverted (see config)
};

struct RuleGeneratorConfig {
  /// When > 0, each grid cell keeps the MPICH default algorithm unless the
  /// model predicts the tuned pick beats it by more than this fraction
  /// (predicted default/tuned time ratio must exceed 1 + margin). Sparse
  /// models trained on noisy measurements suffer the winner's curse on
  /// near-tie scenarios — the "fastest measured" algorithm regresses to
  /// slightly worse than a near-optimal default — so fleet-scale tuning
  /// trades those coin-flip cells for the default and keeps only selections
  /// the model is confident about. 0 (the default) emits the model's argmin
  /// unconditionally, the paper's Fig. 9 behavior.
  double default_guard_margin = 0.0;
};

class RuleGenerator {
 public:
  RuleGenerator() = default;
  explicit RuleGenerator(RuleGeneratorConfig config) : config_(config) {}

  /// Generates the rule table for `model`'s collective over the space's
  /// (nodes, ppn, msg) axes.
  RuleTable generate(const CollectiveModel& model, const FeatureSpace& space,
                     RuleGeneratorStats* stats = nullptr) const;

 private:
  RuleGeneratorConfig config_;
};

/// Serializes rule tables (one per tuned collective) into the MPICH-style
/// JSON configuration document.
util::Json rules_to_json(const std::vector<RuleTable>& tables);

/// Parses a configuration document back. Throws ParseError/InvalidArgument
/// on malformed input.
std::vector<RuleTable> rules_from_json(const util::Json& doc);

/// Runtime selection from a configuration document — the piece MPICH
/// executes inside MPI_Bcast & friends once ACCLAiM has written the file.
class SelectionEngine {
 public:
  explicit SelectionEngine(std::vector<RuleTable> tables);
  static SelectionEngine from_json(const util::Json& doc);
  static SelectionEngine from_file(const std::string& path);

  /// True if the engine has rules for the collective.
  bool covers(coll::Collective c) const;

  /// Selects an algorithm; throws NotFoundError if the collective is not
  /// covered (callers fall back to the default heuristic).
  coll::Algorithm select(const bench::Scenario& s) const;

 private:
  std::map<int, RuleTable> tables_;  // keyed by collective id
};

}  // namespace acclaim::core

// The ACCLAiM system end-to-end (Fig. 1(b), §V).
//
// User input: the job (nodes, ppn) and the list of collectives the
// application predominantly uses. The pipeline allocates the job on the
// machine, trains one model per requested collective with jackknife
// acquisition + variance convergence + topology-aware parallel collection,
// generates the MPICH-style selection JSON, and hands back an engine the
// application run then uses — all transparent to the user.
#pragma once

#include <string>
#include <vector>

#include "core/active_learner.hpp"
#include "core/rulegen.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/topology.hpp"
#include "util/json.hpp"

namespace acclaim::core {

struct JobSpec {
  /// Collectives the application predominantly uses (the only extra user
  /// input ACCLAiM requires).
  std::vector<coll::Collective> collectives;
  int nnodes = 16;
  int ppn = 16;
  std::uint64_t min_msg = 8;
  std::uint64_t max_msg = 1 << 20;
  /// Determines the allocation and this job's network realization.
  std::uint64_t job_seed = 1;
  /// Fraction of the machine occupied by other users when the job starts.
  double machine_busy_fraction = 0.3;
};

struct CollectiveTrainingSummary {
  coll::Collective collective = coll::Collective::Bcast;
  std::size_t points = 0;
  int iterations = 0;
  double train_time_s = 0.0;
  bool converged = false;
  int max_batch = 1;  ///< largest parallel collection batch observed
};

struct PipelineResult {
  util::Json config;  ///< the generated selection rule document
  std::vector<CollectiveTrainingSummary> training;
  double total_training_s = 0.0;
  simnet::Allocation allocation;
  std::uint64_t job_seed = 0;

  SelectionEngine engine() const { return SelectionEngine::from_json(config); }
};

class AcclaimPipeline {
 public:
  explicit AcclaimPipeline(simnet::MachineConfig machine, ActiveLearnerConfig learner = {});

  /// Runs training + config generation for a job. Throws InvalidArgument if
  /// the job does not fit the machine.
  PipelineResult run(const JobSpec& spec) const;

  const simnet::Topology& topology() const noexcept { return topo_; }

 private:
  simnet::Topology topo_;
  ActiveLearnerConfig learner_;
};

}  // namespace acclaim::core

// The ACCLAiM system end-to-end (Fig. 1(b), §V).
//
// User input: the job (nodes, ppn) and the list of collectives the
// application predominantly uses. The pipeline allocates the job on the
// machine, trains one model per requested collective with jackknife
// acquisition + variance convergence + topology-aware parallel collection,
// generates the MPICH-style selection JSON, and hands back an engine the
// application run then uses — all transparent to the user.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/active_learner.hpp"
#include "core/rulegen.hpp"
#include "simnet/allocation.hpp"
#include "simnet/machine.hpp"
#include "simnet/topology.hpp"
#include "util/json.hpp"

namespace acclaim::core {

struct JobSpec {
  /// Collectives the application predominantly uses (the only extra user
  /// input ACCLAiM requires).
  std::vector<coll::Collective> collectives;
  int nnodes = 16;
  int ppn = 16;
  std::uint64_t min_msg = 8;
  std::uint64_t max_msg = 1 << 20;
  /// Determines the allocation and this job's network realization.
  std::uint64_t job_seed = 1;
  /// Fraction of the machine occupied by other users when the job starts.
  double machine_busy_fraction = 0.3;
};

struct CollectiveTrainingSummary {
  coll::Collective collective = coll::Collective::Bcast;
  std::size_t points = 0;
  int iterations = 0;
  double train_time_s = 0.0;
  bool converged = false;
  int max_batch = 1;  ///< largest parallel collection batch observed
  bool warm_started = false;  ///< training was seeded from a WarmStart
};

/// Final model of one collective plus the points this run actually measured
/// (warm-start support excluded) — the payload a fleet publishes into the
/// model store so later jobs can warm-start from it.
struct TrainedCollective {
  CollectiveModel model;
  std::vector<LabeledPoint> points;
};

/// Per-collective warm-start inputs for a job; may cover any subset of the
/// job's collectives (uncovered ones train cold).
using WarmStartMap = std::map<coll::Collective, WarmStart>;

struct PipelineResult {
  util::Json config;  ///< the generated selection rule document
  std::vector<CollectiveTrainingSummary> training;
  /// Parallel to `training`: the trained models and their fresh points.
  std::vector<TrainedCollective> trained;
  double total_training_s = 0.0;
  simnet::Allocation allocation;
  std::uint64_t job_seed = 0;

  SelectionEngine engine() const { return SelectionEngine::from_json(config); }
};

class AcclaimPipeline {
 public:
  explicit AcclaimPipeline(simnet::MachineConfig machine, ActiveLearnerConfig learner = {},
                           RuleGeneratorConfig rulegen = {});

  /// Runs training + config generation for a job. Throws InvalidArgument if
  /// the job does not fit the machine.
  PipelineResult run(const JobSpec& spec) const;

  /// As run(spec), with per-collective warm-start transfer: a collective
  /// listed in `warm` seeds its ActiveLearner from the donor model and only
  /// patches the disagreement region (see core::WarmStart).
  PipelineResult run(const JobSpec& spec, const WarmStartMap& warm) const;

  const simnet::Topology& topology() const noexcept { return topo_; }

 private:
  simnet::Topology topo_;
  ActiveLearnerConfig learner_;
  RuleGeneratorConfig rulegen_;
};

}  // namespace acclaim::core

// Topology-aware parallel data collection (§IV-D).
//
// Given a variance-ranked list of pending benchmark points and the job's
// allocation on a Dragonfly machine, the greedy algorithm packs benchmarks
// onto disjoint node ranges such that no two benchmarks share a rack:
//   1. take the highest-variance uncollected point p (needs n nodes);
//   2. try to place p on the next n unused sequential nodes;
//   3. if it fits, mark those nodes — and all remaining nodes of the racks
//      they touch — used, and repeat;
//   4. if it does not fit, stop and run the scheduled batch in parallel.
// Sequential placement plus whole-rack retirement is what prevents layer-1
// and layer-2 congestion between co-running benchmarks.
#pragma once

#include <functional>
#include <vector>

#include "core/env.hpp"
#include "simnet/allocation.hpp"
#include "simnet/topology.hpp"

namespace acclaim::core {

struct CollectionBatch {
  std::vector<ScheduledBenchmark> items;
  /// Pool indices consumed, aligned with `items`.
  std::vector<std::size_t> consumed;
  /// Predicted solo runtime per item (parallel-scored when a SoloCostFn was
  /// supplied to plan(); empty otherwise).
  std::vector<double> predicted_us;
  /// max(predicted_us): the batch's predicted makespan. The batch clock
  /// advances by the *measured* makespan; the predicted one is what the
  /// occupancy telemetry and trace events report before anything runs.
  double predicted_makespan_us = 0.0;
  /// Index of the predicted-longest item (first such index: the argmax
  /// reduction runs in fixed slot order, so ties break deterministically
  /// regardless of which thread scored which candidate). -1 when unscored.
  int predicted_longest = -1;
};

struct CollectionSchedulerConfig {
  /// false = the naive ablation: pack sequentially with no rack
  /// disjointness, so co-running benchmarks interfere (§III-D hazard).
  bool topology_aware = true;
  /// Cap on benchmarks per batch (the paper has none; kept as a safety).
  int max_batch = 1 << 20;
};

class CollectionScheduler {
 public:
  explicit CollectionScheduler(CollectionSchedulerConfig config = {});

  /// Plans one batch. `ranked` lists pool indices in decreasing priority
  /// (variance) order. Returns at least one item if the top point fits in
  /// the allocation at all.
  ///
  /// When `solo_cost` is supplied, every accepted (benchmark, slot)
  /// placement is scored concurrently on the global thread pool — each
  /// candidate writes only its own predicted_us slot — and the batch's
  /// predicted makespan is folded with a fixed-order argmax, so the result
  /// is bitwise-identical for any thread count. Scoring never changes which
  /// placements are chosen (the greedy walk itself is the paper's, and
  /// stays serial: it is a handful of integer comparisons).
  CollectionBatch plan(const std::vector<bench::BenchmarkPoint>& pool,
                       const std::vector<std::size_t>& ranked, const simnet::Topology& topo,
                       const simnet::Allocation& alloc, const SoloCostFn& solo_cost = {}) const;

 private:
  CollectionSchedulerConfig config_;
};

}  // namespace acclaim::core

#include "core/env.hpp"

#include <algorithm>
#include <chrono>
#include <set>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::core {

namespace {

/// Shared benchmark accounting for every environment implementation: the
/// `benchmark_runs` counter / cost gauge the CLI exports and the per-run
/// trace event the report builder folds into its totals. `slot` >= 0 marks
/// a batched run and becomes the trace viewer's lane id; `wall_ms` >= 0
/// attaches the item's host execution time (span duration in the
/// chrome://tracing export).
void note_benchmark(const char* source, const bench::BenchmarkPoint& point,
                    const bench::Measurement& m, int slot = -1, double wall_ms = -1.0) {
  static telemetry::Counter& runs = telemetry::metrics().counter("benchmark_runs");
  static telemetry::Gauge& cost = telemetry::metrics().gauge("benchmark_sim_cost_s");
  runs.add();
  cost.add(m.collect_cost_s);
  if (telemetry::tracer().enabled()) {
    telemetry::TraceEvent ev;
    ev.kind = telemetry::EventKind::BenchmarkRun;
    ev.label = coll::collective_name(point.scenario.collective);
    ev.fields["source"] = source;
    ev.fields["nnodes"] = point.scenario.nnodes;
    ev.fields["ppn"] = point.scenario.ppn;
    ev.fields["msg_bytes"] = point.scenario.msg_bytes;
    ev.fields["mean_us"] = m.mean_us;
    ev.fields["cost_s"] = m.collect_cost_s;
    if (slot >= 0) {
      ev.fields["slot"] = slot;
    }
    if (wall_ms >= 0.0) {
      ev.fields["wall_ms"] = wall_ms;
    }
    telemetry::tracer().record(std::move(ev));
  }
}

}  // namespace

std::vector<bench::Measurement> TuningEnvironment::measure_scheduled(
    const std::vector<ScheduledBenchmark>& batch) {
  std::vector<bench::Measurement> out;
  out.reserve(batch.size());
  for (const ScheduledBenchmark& item : batch) {
    out.push_back(measure(item.point));
  }
  return out;
}

std::vector<bench::Measurement> TuningEnvironment::measure_scheduled(
    const std::vector<ScheduledBenchmark>& batch, const std::vector<double>& /*predicted*/) {
  return measure_scheduled(batch);
}

namespace {

/// Random non-P2 value near the anchor drawn from an explicit pool.
std::optional<std::uint64_t> pick_nonp2_from(const std::vector<std::uint64_t>& sorted_msgs,
                                             std::uint64_t p2_anchor, util::Rng& rng) {
  // Same closest-P2 window as bench::random_nonp2_near.
  const std::uint64_t lo = p2_anchor * 3 / 4;
  const std::uint64_t hi = p2_anchor * 3 / 2;
  std::vector<std::uint64_t> pool;
  for (std::uint64_t m : sorted_msgs) {
    if (m > lo && m < hi && m != p2_anchor) {
      pool.push_back(m);
    }
  }
  if (pool.empty()) {
    return std::nullopt;
  }
  return pool[rng.index(pool.size())];
}

}  // namespace

DatasetEnvironment::DatasetEnvironment(const bench::Dataset& dataset) : dataset_(dataset) {
  for (coll::Collective c : coll::all_collectives()) {
    msgs_[static_cast<int>(c)] = dataset.message_sizes(c);
  }
}

bench::Measurement DatasetEnvironment::measure(const bench::BenchmarkPoint& point) {
  const bench::Measurement& m = dataset_.at(point);  // throws if absent
  charge_s(m.collect_cost_s);
  note_benchmark("dataset", point, m);
  return m;
}

std::optional<std::uint64_t> DatasetEnvironment::nonp2_msg_near(std::uint64_t p2_anchor,
                                                                util::Rng& rng) {
  // Use the union over collectives: message axes are shared in our datasets.
  std::set<std::uint64_t> all;
  for (const auto& [c, msgs] : msgs_) {
    all.insert(msgs.begin(), msgs.end());
  }
  const std::vector<std::uint64_t> sorted(all.begin(), all.end());
  return pick_nonp2_from(sorted, p2_anchor, rng);
}

LiveEnvironment::LiveEnvironment(const simnet::Topology& topo, const simnet::Allocation& alloc,
                                 std::uint64_t job_seed, LiveEnvironmentConfig config)
    : topo_(topo),
      alloc_(alloc),
      net_(topo, job_seed),
      mb_(net_, config.microbench),
      config_(config),
      noise_seed_(job_seed ^ 0xa5a5a5a5deadbeefULL) {}

bench::Measurement LiveEnvironment::measure(const bench::BenchmarkPoint& point) {
  util::Rng point_rng = util::Rng::stream(noise_seed_, measure_seq_++);
  const bench::Measurement m = mb_.run(point, alloc_, point_rng);
  charge_s(m.collect_cost_s);
  note_benchmark("live", point, m);
  return m;
}

std::vector<bench::Measurement> LiveEnvironment::measure_scheduled(
    const std::vector<ScheduledBenchmark>& batch) {
  return measure_scheduled(batch, {});
}

std::vector<bench::Measurement> LiveEnvironment::measure_scheduled(
    const std::vector<ScheduledBenchmark>& batch, const std::vector<double>& predicted) {
  require(!batch.empty(), "measure_scheduled requires a non-empty batch");
  require(predicted.empty() || predicted.size() == batch.size(),
          "predicted solo costs must be empty or parallel to the batch");

  // Which racks / pairs each co-running benchmark occupies, plus the
  // interference flows concurrent benchmarks inject into every rack / pair
  // they share with it. A disjoint schedule (the §IV-D greedy guarantees
  // rack disjointness) sees none of this. Everything here is precomputed
  // serially so the parallel bodies below are read-only on shared state.
  std::vector<simnet::RegionFootprint> feet(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& item = batch[i];
    require(item.first_node >= 0 &&
                item.first_node + item.point.scenario.nnodes <= alloc_.num_nodes(),
            "scheduled benchmark exceeds the job allocation");
    feet[i] = alloc_.footprint(topo_, item.first_node, item.point.scenario.nnodes);
  }
  std::vector<minimpi::FlowMap> rack_flows(batch.size());
  std::vector<minimpi::FlowMap> pair_flows(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (j == i) {
        continue;
      }
      for (int r : feet[j].racks) {
        if (feet[i].racks.count(r)) {
          rack_flows[i][r] += config_.interference_flows;
        }
      }
      for (int p : feet[j].pairs) {
        if (feet[i].pairs.count(p)) {
          pair_flows[i][p] += config_.interference_flows;
        }
      }
    }
  }

  // Noise streams are assigned in batch order *before* the parallel loop:
  // measurement i always consumes stream measure_seq_+i no matter which
  // thread runs it, which is what makes the measured values bitwise-equal to
  // a sequential run of the same seed.
  std::vector<util::Rng> rngs;
  rngs.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    rngs.push_back(util::Rng::stream(noise_seed_, measure_seq_++));
  }

  // Run the batch's simulated microbenchmarks concurrently across their
  // disjoint allocation slices. Each body reads only immutable shared state
  // (network model, allocation, precomputed flow maps) and writes only its
  // own slots.
  std::vector<bench::Measurement> out(batch.size());
  std::vector<double> item_wall_ms(batch.size(), 0.0);
  const auto batch_start = std::chrono::steady_clock::now();
  util::global_pool().parallel_for(0, batch.size(), [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    // An interference-free item whose placement the scheduler already priced
    // reuses that schedule time (run_with_load with empty flow maps computes
    // exactly predicted_solo_us, so the measurements are bitwise-identical);
    // rebuilding the schedule would double the batched path's host cost. A
    // non-positive prediction means "no usable hint" — either the caller
    // invalidated the slot after mutating the point (non-P2 substitution) or
    // a degenerate placement priced to zero — and takes the rebuild path.
    if (!predicted.empty() && predicted[i] > 0.0 && rack_flows[i].empty() &&
        pair_flows[i].empty()) {
      out[i] = mb_.run_priced(batch[i].point, predicted[i], rngs[i]);
    } else {
      const simnet::Allocation sub =
          alloc_.slice(batch[i].first_node, batch[i].point.scenario.nnodes);
      out[i] = mb_.run_with_load(batch[i].point, sub, rack_flows[i], pair_flows[i], rngs[i]);
    }
    item_wall_ms[i] =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
  });
  const double batch_wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - batch_start)
          .count();

  // Serial fold in slot order: clock accounting, telemetry, trace events.
  double makespan_s = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    makespan_s = std::max(makespan_s, out[i].collect_cost_s);
    note_benchmark("live-parallel", batch[i].point, out[i], static_cast<int>(i),
                   item_wall_ms[i]);
  }
  charge_s(makespan_s);

  static telemetry::Counter& batches = telemetry::metrics().counter("simnet.parallel_batches");
  static telemetry::Counter& items = telemetry::metrics().counter("simnet.batch_items");
  static telemetry::Histogram& wall =
      telemetry::metrics().histogram("simnet.batch_wall_ms", {1.0 / 16, 16});
  batches.add();
  items.add(static_cast<std::uint64_t>(batch.size()));
  wall.observe(batch_wall_ms);
  return out;
}

double LiveEnvironment::predicted_solo_us(const ScheduledBenchmark& item) const {
  require(item.first_node >= 0 &&
              item.first_node + item.point.scenario.nnodes <= alloc_.num_nodes(),
          "scheduled benchmark exceeds the job allocation");
  const simnet::Allocation sub = alloc_.slice(item.first_node, item.point.scenario.nnodes);
  return mb_.schedule_time_us(item.point, sub);
}

SoloCostFn LiveEnvironment::solo_cost_oracle() const {
  return [this](const ScheduledBenchmark& item) { return predicted_solo_us(item); };
}

std::optional<std::uint64_t> LiveEnvironment::nonp2_msg_near(std::uint64_t p2_anchor,
                                                             util::Rng& rng) {
  if (p2_anchor < 4) {
    return std::nullopt;
  }
  return bench::random_nonp2_near(p2_anchor, rng);
}

}  // namespace acclaim::core

#include "core/env.hpp"

#include <algorithm>
#include <set>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"

namespace acclaim::core {

namespace {

/// Shared benchmark accounting for every environment implementation: the
/// `benchmark_runs` counter / cost gauge the CLI exports and the per-run
/// trace event the report builder folds into its totals.
void note_benchmark(const char* source, const bench::BenchmarkPoint& point,
                    const bench::Measurement& m) {
  static telemetry::Counter& runs = telemetry::metrics().counter("benchmark_runs");
  static telemetry::Gauge& cost = telemetry::metrics().gauge("benchmark_sim_cost_s");
  runs.add();
  cost.add(m.collect_cost_s);
  if (telemetry::tracer().enabled()) {
    telemetry::TraceEvent ev;
    ev.kind = telemetry::EventKind::BenchmarkRun;
    ev.label = coll::collective_name(point.scenario.collective);
    ev.fields["source"] = source;
    ev.fields["nnodes"] = point.scenario.nnodes;
    ev.fields["ppn"] = point.scenario.ppn;
    ev.fields["msg_bytes"] = point.scenario.msg_bytes;
    ev.fields["mean_us"] = m.mean_us;
    ev.fields["cost_s"] = m.collect_cost_s;
    telemetry::tracer().record(std::move(ev));
  }
}

}  // namespace

std::vector<bench::Measurement> TuningEnvironment::measure_scheduled(
    const std::vector<ScheduledBenchmark>& batch) {
  std::vector<bench::Measurement> out;
  out.reserve(batch.size());
  for (const ScheduledBenchmark& item : batch) {
    out.push_back(measure(item.point));
  }
  return out;
}

namespace {

/// Random non-P2 value near the anchor drawn from an explicit pool.
std::optional<std::uint64_t> pick_nonp2_from(const std::vector<std::uint64_t>& sorted_msgs,
                                             std::uint64_t p2_anchor, util::Rng& rng) {
  // Same closest-P2 window as bench::random_nonp2_near.
  const std::uint64_t lo = p2_anchor * 3 / 4;
  const std::uint64_t hi = p2_anchor * 3 / 2;
  std::vector<std::uint64_t> pool;
  for (std::uint64_t m : sorted_msgs) {
    if (m > lo && m < hi && m != p2_anchor) {
      pool.push_back(m);
    }
  }
  if (pool.empty()) {
    return std::nullopt;
  }
  return pool[rng.index(pool.size())];
}

}  // namespace

DatasetEnvironment::DatasetEnvironment(const bench::Dataset& dataset) : dataset_(dataset) {
  for (coll::Collective c : coll::all_collectives()) {
    msgs_[static_cast<int>(c)] = dataset.message_sizes(c);
  }
}

bench::Measurement DatasetEnvironment::measure(const bench::BenchmarkPoint& point) {
  const bench::Measurement& m = dataset_.at(point);  // throws if absent
  charge_s(m.collect_cost_s);
  note_benchmark("dataset", point, m);
  return m;
}

std::optional<std::uint64_t> DatasetEnvironment::nonp2_msg_near(std::uint64_t p2_anchor,
                                                                util::Rng& rng) {
  // Use the union over collectives: message axes are shared in our datasets.
  std::set<std::uint64_t> all;
  for (const auto& [c, msgs] : msgs_) {
    all.insert(msgs.begin(), msgs.end());
  }
  const std::vector<std::uint64_t> sorted(all.begin(), all.end());
  return pick_nonp2_from(sorted, p2_anchor, rng);
}

LiveEnvironment::LiveEnvironment(const simnet::Topology& topo, const simnet::Allocation& alloc,
                                 std::uint64_t job_seed, LiveEnvironmentConfig config)
    : topo_(topo),
      alloc_(alloc),
      net_(topo, job_seed),
      mb_(net_, config.microbench),
      config_(config),
      rng_(job_seed ^ 0xa5a5a5a5deadbeefULL) {}

bench::Measurement LiveEnvironment::measure(const bench::BenchmarkPoint& point) {
  util::Rng point_rng = rng_.split();
  const bench::Measurement m = mb_.run(point, alloc_, point_rng);
  charge_s(m.collect_cost_s);
  note_benchmark("live", point, m);
  return m;
}

std::vector<bench::Measurement> LiveEnvironment::measure_scheduled(
    const std::vector<ScheduledBenchmark>& batch) {
  require(!batch.empty(), "measure_scheduled requires a non-empty batch");

  // Which racks / pairs each co-running benchmark occupies.
  struct Footprint {
    std::set<int> racks;
    std::set<int> pairs;
  };
  std::vector<Footprint> feet(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& item = batch[i];
    require(item.first_node >= 0 &&
                item.first_node + item.point.scenario.nnodes <= alloc_.num_nodes(),
            "scheduled benchmark exceeds the job allocation");
    for (int k = 0; k < item.point.scenario.nnodes; ++k) {
      const int node = alloc_.node(item.first_node + k);
      feet[i].racks.insert(topo_.rack_of(node));
      feet[i].pairs.insert(topo_.pair_of(node));
    }
  }

  std::vector<bench::Measurement> out;
  out.reserve(batch.size());
  double makespan_s = 0.0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // Interference: concurrent benchmarks inject flows into every rack /
    // pair they share with this one. A disjoint schedule (the §IV-D greedy
    // guarantees rack disjointness) sees none of this.
    std::unordered_map<int, int> rack_flows;
    std::unordered_map<int, int> pair_flows;
    for (std::size_t j = 0; j < batch.size(); ++j) {
      if (j == i) {
        continue;
      }
      for (int r : feet[j].racks) {
        if (feet[i].racks.count(r)) {
          rack_flows[r] += config_.interference_flows;
        }
      }
      for (int p : feet[j].pairs) {
        if (feet[i].pairs.count(p)) {
          pair_flows[p] += config_.interference_flows;
        }
      }
    }
    const simnet::Allocation sub =
        alloc_.slice(batch[i].first_node, batch[i].point.scenario.nnodes);
    util::Rng point_rng = rng_.split();
    const bench::Measurement m =
        mb_.run_with_load(batch[i].point, sub, rack_flows, pair_flows, point_rng);
    makespan_s = std::max(makespan_s, m.collect_cost_s);
    note_benchmark("live-parallel", batch[i].point, m);
    out.push_back(m);
  }
  charge_s(makespan_s);
  return out;
}

std::optional<std::uint64_t> LiveEnvironment::nonp2_msg_near(std::uint64_t p2_anchor,
                                                             util::Rng& rng) {
  if (p2_anchor < 4) {
    return std::nullopt;
  }
  return bench::random_nonp2_near(p2_anchor, rng);
}

}  // namespace acclaim::core

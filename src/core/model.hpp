// The autotuner's performance model: one random forest per collective with
// "algorithm" as a feature (§V), trained on log execution time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "benchdata/point.hpp"
#include "core/feature_space.hpp"
#include "ml/forest.hpp"

namespace acclaim::core {

/// One collected training example.
struct LabeledPoint {
  bench::BenchmarkPoint point;
  double time_us = 0.0;
};

/// Forest defaults matching scikit-learn's RandomForestRegressor as the
/// paper uses it (100 estimators, unlimited depth, bootstrap).
ml::ForestParams default_forest_params();

/// A fully-explained selection decision, produced by CollectiveModel::explain
/// for the decision flight recorder. Candidates appear in algorithms_for()
/// order; `chosen` names the same argmin select() computes (the per-candidate
/// means accumulate per-tree predictions in tree order, which is bitwise-
/// identical to RandomForest::predict).
struct SelectionExplanation {
  struct Candidate {
    coll::Algorithm algorithm;
    double predicted_log_us = 0.0;
    int votes = 0;  ///< trees that scored this algorithm (strictly) fastest
  };
  std::vector<Candidate> candidates;
  std::vector<double> features;  ///< encoded row of the chosen candidate
  coll::Algorithm chosen;
  coll::Algorithm runner_up;  ///< == chosen when there is only one candidate
  bool has_runner_up = false;
  /// exp(runner_log - chosen_log) - 1: how much slower the second-best
  /// algorithm is predicted to be. 0 without a runner-up.
  double margin = 0.0;
  /// Jackknife variance of the chosen candidate's per-tree predictions.
  double variance = 0.0;
  /// Virtual decision cost: tree evaluations spent (candidates x trees).
  std::int64_t tree_evals = 0;
};

/// Predicts per-algorithm execution time for a collective and selects the
/// algorithm with the lowest prediction.
///
/// Training state vs. serving snapshots: the fitted forest lives behind a
/// shared_ptr-to-const. fit() builds a *new* forest and swaps the pointer in,
/// never mutating the one it replaces, so copying a trained CollectiveModel
/// is O(1) (the copies share the immutable forest) and a copy taken before a
/// re-fit keeps answering from the forest it was copied with. This is the
/// copy-on-write contract the acclaimd model store builds snapshot
/// publication on (serve::ModelStore).
class CollectiveModel {
 public:
  CollectiveModel() = default;
  explicit CollectiveModel(coll::Collective c, ml::ForestParams params = default_forest_params());

  coll::Collective collective() const noexcept { return collective_; }
  bool trained() const noexcept { return forest_ != nullptr && forest_->fitted(); }
  std::size_t training_points() const noexcept { return n_points_; }
  /// Ensemble size (0 before training) — the audit log's virtual-cost unit.
  std::size_t n_trees() const noexcept { return forest_ ? forest_->n_trees() : 0; }

  /// (Re)fits the forest on the collected points. Throws InvalidArgument on
  /// an empty set or on points of a different collective.
  void fit(const std::vector<LabeledPoint>& data, std::uint64_t seed);

  /// Predicted execution time in microseconds.
  double predict_us(const bench::BenchmarkPoint& point) const;

  /// Predicted log(time_us) — the model's native output space.
  double predict_log_us(const bench::BenchmarkPoint& point) const;

  /// Jackknife variance of the per-tree log-time predictions (§IV-A).
  double jackknife_variance(const bench::BenchmarkPoint& point) const;

  /// Jackknife variance for every point, in order — the batch form the
  /// acquisition sweep and the convergence proxy share. Fixed-size blocks
  /// of candidates run the forest's fused SoA predict+jackknife kernel on
  /// the global thread pool, one result slot per point; per-point values
  /// are a pure function of the point, so the vector is bitwise-identical
  /// for any thread count (and to the scalar per-point path).
  std::vector<double> jackknife_variances(
      const std::vector<bench::BenchmarkPoint>& points) const;

  /// Sum of jackknife variances over a candidate set — the cumulative
  /// variance used as the test-set-free convergence proxy (§IV-C). The
  /// per-candidate sweep is parallel; the reduction is a fixed-order serial
  /// sum (a parallel reduction would change the floating-point result with
  /// the thread count).
  double cumulative_variance(const std::vector<bench::BenchmarkPoint>& candidates) const;

  /// The algorithm with the lowest predicted time for the scenario.
  coll::Algorithm select(const bench::Scenario& s) const;

  /// select() for a batch of scenarios in one fused forest pass: all
  /// (scenario x algorithm) rows are evaluated through the batched SoA
  /// kernel, then each scenario's argmin uses select()'s `<` tie-break.
  /// Guaranteed to return exactly select(s) per scenario; the rule
  /// generator's grid sweep runs on this when the flight recorder is off.
  std::vector<coll::Algorithm> select_batch(const std::vector<bench::Scenario>& scenarios) const;

  /// select() with its work shown: per-candidate mean predictions and tree
  /// votes, runner-up and margin, and the chosen candidate's jackknife
  /// variance. Guaranteed to choose the same algorithm as select() for the
  /// same scenario. Serial and deterministic — safe to feed the audit log.
  SelectionExplanation explain(const bench::Scenario& s) const;

  /// Serializes the trained model (collective + forest) so a job can reuse
  /// it or inspect it offline. Requires trained().
  util::Json to_json() const;
  static CollectiveModel from_json(const util::Json& doc);

 private:
  coll::Collective collective_ = coll::Collective::Bcast;
  ml::ForestParams params_;
  /// Immutable once published: fit() replaces the pointer, never the forest.
  std::shared_ptr<const ml::RandomForest> forest_;
  std::size_t n_points_ = 0;
};

}  // namespace acclaim::core

#include "core/feature_space.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace acclaim::core {

ml::FeatureRow encode_point(const bench::BenchmarkPoint& p) {
  const auto algs = coll::algorithms_for(p.scenario.collective);
  int alg_index = -1;
  for (std::size_t i = 0; i < algs.size(); ++i) {
    if (algs[i] == p.algorithm) {
      alg_index = static_cast<int>(i);
      break;
    }
  }
  require(alg_index >= 0, "algorithm does not implement the point's collective");
  // Log2 axes plus a one-hot algorithm block: one-hot lets a tree isolate
  // any algorithm with a single split, which matters because algorithms of
  // the same collective can differ by an order of magnitude at the same
  // (nodes, ppn, msg) point.
  ml::FeatureRow row = {std::log2(static_cast<double>(p.scenario.nnodes)),
                        std::log2(static_cast<double>(p.scenario.ppn)),
                        std::log2(static_cast<double>(p.scenario.msg_bytes))};
  for (std::size_t i = 0; i < algs.size(); ++i) {
    row.push_back(i == static_cast<std::size_t>(alg_index) ? 1.0 : 0.0);
  }
  return row;
}

FeatureSpace::FeatureSpace(std::vector<int> nodes, std::vector<int> ppns,
                           std::vector<std::uint64_t> msgs)
    : nodes_(std::move(nodes)), ppns_(std::move(ppns)), msgs_(std::move(msgs)) {
  require(!nodes_.empty() && !ppns_.empty() && !msgs_.empty(),
          "feature space requires non-empty axes");
  std::sort(nodes_.begin(), nodes_.end());
  std::sort(ppns_.begin(), ppns_.end());
  std::sort(msgs_.begin(), msgs_.end());
}

FeatureSpace FeatureSpace::from_grid(const bench::FeatureGrid& grid) {
  return FeatureSpace(grid.nodes, grid.ppns, grid.msgs);
}

std::vector<bench::BenchmarkPoint> FeatureSpace::candidates(coll::Collective c) const {
  bench::FeatureGrid g;
  g.nodes = nodes_;
  g.ppns = ppns_;
  g.msgs = msgs_;
  return g.points(c);
}

std::vector<bench::Scenario> FeatureSpace::scenarios(coll::Collective c) const {
  bench::FeatureGrid g;
  g.nodes = nodes_;
  g.ppns = ppns_;
  g.msgs = msgs_;
  return g.scenarios(c);
}

std::pair<std::uint64_t, std::uint64_t> FeatureSpace::msg_neighbors(std::uint64_t msg) const {
  std::uint64_t below = 0;
  std::uint64_t above = 0;
  for (std::uint64_t m : msgs_) {
    if (m < msg) {
      below = m;
    } else if (m > msg) {
      above = m;
      break;
    }
  }
  return {below, above};
}

}  // namespace acclaim::core

#include "core/pipeline.hpp"

#include <algorithm>

#include "core/acquisition.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace acclaim::core {

AcclaimPipeline::AcclaimPipeline(simnet::MachineConfig machine, ActiveLearnerConfig learner,
                                 RuleGeneratorConfig rulegen)
    : topo_(std::move(machine)), learner_(learner), rulegen_(rulegen) {
  // Production runs default to the full ACCLAiM configuration.
  learner_.parallel_collection = true;
  learner_.topology_aware = true;
}

PipelineResult AcclaimPipeline::run(const JobSpec& spec) const { return run(spec, {}); }

PipelineResult AcclaimPipeline::run(const JobSpec& spec, const WarmStartMap& warm) const {
  telemetry::ScopedTimer timer("pipeline.run");
  require(!spec.collectives.empty(), "job must name at least one collective to tune");
  require(spec.nnodes >= 2 && spec.ppn >= 1, "job needs at least 2 nodes and 1 ppn");
  require(spec.min_msg >= 1 && spec.min_msg <= spec.max_msg, "bad message-size range");

  // Best-effort allocation on the (partially busy) machine.
  simnet::JobScheduler sched(topo_, spec.machine_busy_fraction,
                             util::Rng(spec.job_seed * 0x9e3779b97f4a7c15ULL + 1));
  const simnet::Allocation alloc = sched.allocate(spec.nnodes);

  // P2 training axes bounded by the job (the model must cover everything
  // the application may invoke inside this allocation).
  std::vector<int> nodes;
  for (int n = 2; n <= spec.nnodes; n *= 2) {
    nodes.push_back(n);
  }
  std::vector<int> ppns;
  for (int p = 1; p <= spec.ppn; p *= 2) {
    ppns.push_back(p);
  }
  std::vector<std::uint64_t> msgs;
  for (std::uint64_t m = spec.min_msg; m <= spec.max_msg; m *= 2) {
    msgs.push_back(m);
  }
  const FeatureSpace space(nodes, ppns, msgs);

  LiveEnvironment env(topo_, alloc, spec.job_seed);

  PipelineResult result;
  result.allocation = alloc;
  result.job_seed = spec.job_seed;
  std::vector<RuleTable> tables;
  for (coll::Collective c : spec.collectives) {
    AcclaimAcquisition policy;
    ActiveLearnerConfig cfg = learner_;
    cfg.seed = spec.job_seed ^ (static_cast<std::uint64_t>(c) + 0x51ULL);
    ActiveLearner learner(c, space, env, policy, cfg);
    if (const auto it = warm.find(c); it != warm.end()) {
      learner.set_warm_start(it->second);
    }
    telemetry::ScopedTimer coll_timer(coll::collective_name(c));
    telemetry::ScopedPhase phase(std::string("train:") + coll::collective_name(c));
    const double before_s = env.clock_s();
    TrainingResult tr = learner.run();

    CollectiveTrainingSummary summary;
    summary.collective = c;
    summary.points = tr.collected.size();
    summary.iterations = tr.iterations;
    summary.train_time_s = env.clock_s() - before_s;
    summary.converged = tr.converged;
    summary.warm_started = tr.warm_started;
    for (const IterationRecord& rec : tr.history) {
      summary.max_batch = std::max(summary.max_batch, rec.batch_size);
    }
    result.training.push_back(summary);
    result.trained.push_back(TrainedCollective{tr.model, std::move(tr.collected)});
    // The report's phase-timing table runs on the simulated collection
    // clock (the quantity the paper's Fig. 14/15 amortization argument is
    // about), so attach it alongside the wall time ScopedPhase records.
    phase.annotate("sim_s", summary.train_time_s);
    phase.annotate("threads", util::global_threads());
    phase.annotate("points", summary.points);
    phase.annotate("iterations", summary.iterations);
    phase.annotate("converged", summary.converged);
    phase.annotate("max_batch", summary.max_batch);

    const RuleGenerator gen(rulegen_);
    tables.push_back(gen.generate(tr.model, space));
  }
  result.total_training_s = env.clock_s();
  result.config = rules_to_json(tables);
  static telemetry::Counter& jobs = telemetry::metrics().counter("pipeline.jobs");
  static telemetry::Gauge& sim_total = telemetry::metrics().gauge("pipeline.sim_training_s");
  jobs.add();
  sim_total.add(result.total_training_s);
  AC_LOG_INFO() << "pipeline: trained " << spec.collectives.size() << " collectives in "
                << result.total_training_s << " s (simulated collection time)";
  return result;
}

}  // namespace acclaim::core

#include "core/heuristic.hpp"

#include "util/rng.hpp"

namespace acclaim::core {

coll::Algorithm mpich_default_selection(const bench::Scenario& s) {
  using coll::Algorithm;
  const std::uint64_t msg = s.msg_bytes;
  const int p = s.nranks();
  const bool p2 = util::is_power_of_two(static_cast<std::uint64_t>(p));
  switch (s.collective) {
    case coll::Collective::Bcast:
      // MPICH: binomial below 12 KiB or tiny communicators; scatter +
      // recursive-doubling allgather for medium sizes on P2 communicators;
      // scatter + ring allgather otherwise.
      if (msg < 12288 || p < 8) {
        return Algorithm::BcastBinomial;
      }
      if (msg < 524288 && p2) {
        return Algorithm::BcastScatterRecursiveDoublingAllgather;
      }
      return Algorithm::BcastScatterRingAllgather;
    case coll::Collective::Reduce:
      // MPICH: reduce_scatter_gather for large commutative reductions,
      // binomial otherwise (2 KiB cutoff).
      if (msg > 2048) {
        return Algorithm::ReduceScatterGather;
      }
      return Algorithm::ReduceBinomial;
    case coll::Collective::Allreduce:
      // MPICH: recursive doubling below 2 KiB, Rabenseifner above.
      if (msg <= 2048) {
        return Algorithm::AllreduceRecursiveDoubling;
      }
      return Algorithm::AllreduceReduceScatterAllgather;
    case coll::Collective::Allgather:
      // MPICH: total data < 80 KiB -> recursive doubling (P2) or bruck
      // (non-P2); ring for large totals.
      if (msg * static_cast<std::uint64_t>(p) < 81920) {
        return p2 ? Algorithm::AllgatherRecursiveDoubling : Algorithm::AllgatherBruck;
      }
      return Algorithm::AllgatherRing;
    case coll::Collective::Gather:
      // Direct sends win only for tiny fan-in; MPICH defaults to binomial.
      return p <= 4 ? Algorithm::GatherLinear : Algorithm::GatherBinomial;
    case coll::Collective::Scatter:
      return p <= 4 ? Algorithm::ScatterLinear : Algorithm::ScatterBinomial;
    case coll::Collective::Alltoall:
      // MPICH: bruck for short messages (<= 256 B/block), pairwise beyond.
      return msg <= 256 ? Algorithm::AlltoallBruck : Algorithm::AlltoallPairwise;
    case coll::Collective::ReduceScatterBlock:
      // MPICH: recursive halving for short commutative, pairwise for long.
      return msg * static_cast<std::uint64_t>(p) <= 524288
                 ? Algorithm::ReduceScatterBlockRecursiveHalving
                 : Algorithm::ReduceScatterBlockPairwise;
    case coll::Collective::Barrier:
      return Algorithm::BarrierDissemination;
  }
  return Algorithm::BcastBinomial;  // unreachable
}

}  // namespace acclaim::core

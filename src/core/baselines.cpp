#include "core/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace acclaim::core {

HunoldAutotuner::HunoldAutotuner(coll::Collective c, ml::ForestParams params)
    : collective_(c), params_(params) {}

namespace {
ml::FeatureRow encode_scenario(const bench::Scenario& s) {
  return {std::log2(static_cast<double>(s.nnodes)), std::log2(static_cast<double>(s.ppn)),
          std::log2(static_cast<double>(s.msg_bytes))};
}
}  // namespace

double HunoldAutotuner::fit(const bench::Dataset& data, double fraction, std::uint64_t seed) {
  require(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0, 1]");
  const std::vector<bench::BenchmarkPoint> all = data.points(collective_);
  require(!all.empty(), "dataset has no points for this collective");
  util::Rng rng(seed);
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(fraction * static_cast<double>(all.size()))));
  const auto pick = rng.sample_without_replacement(all.size(), k);

  std::map<coll::Algorithm, std::pair<std::vector<ml::FeatureRow>, std::vector<double>>> rows;
  double cost_s = 0.0;
  for (std::size_t i : pick) {
    const bench::BenchmarkPoint& p = all[i];
    const bench::Measurement& m = data.at(p);
    rows[p.algorithm].first.push_back(encode_scenario(p.scenario));
    rows[p.algorithm].second.push_back(std::log(m.mean_us));
    cost_s += m.collect_cost_s;
  }
  models_.clear();
  for (auto& [alg, xy] : rows) {
    ml::RandomForest forest;
    forest.fit(xy.first, xy.second, params_, seed ^ static_cast<std::uint64_t>(alg));
    models_.emplace(alg, std::move(forest));
  }
  require(!models_.empty(), "sampled fraction produced no training data");
  return cost_s;
}

double HunoldAutotuner::predict_us(const bench::Scenario& s, coll::Algorithm a) const {
  const auto it = models_.find(a);
  if (it == models_.end()) {
    throw NotFoundError("Hunold autotuner has no model for algorithm " +
                        std::string(coll::algorithm_info(a).name));
  }
  return std::exp(it->second.predict(encode_scenario(s)));
}

coll::Algorithm HunoldAutotuner::select(const bench::Scenario& s) const {
  require(trained(), "HunoldAutotuner::select called before fit");
  coll::Algorithm best = models_.begin()->first;
  double best_us = std::numeric_limits<double>::infinity();
  for (const auto& [alg, forest] : models_) {
    const double t = std::exp(forest.predict(encode_scenario(s)));
    if (t < best_us) {
      best_us = t;
      best = alg;
    }
  }
  return best;
}

std::vector<LabeledPoint> AcquisitionTrace::prefix(std::size_t k) const {
  require(k >= 1 && k <= steps.size(), "trace prefix length out of range");
  std::vector<LabeledPoint> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    out.push_back(steps[i].point);
  }
  return out;
}

double AcquisitionTrace::prefix_cost_s(std::size_t k) const {
  require(k <= steps.size(), "trace prefix length out of range");
  return k == 0 ? 0.0 : steps[k - 1].cum_cost_s;
}

AcquisitionTrace trace_acquisition(coll::Collective c, const FeatureSpace& space,
                                   TuningEnvironment& env, AcquisitionPolicy& policy,
                                   const TraceConfig& config) {
  ActiveLearnerConfig al;
  al.forest = config.forest;
  al.seed_points = config.seed_points;
  al.max_points = config.max_points;
  al.refit_every = config.refit_every;
  al.patience = std::numeric_limits<int>::max();  // disable convergence: trace everything
  al.seed = config.seed;
  const double clock_before = env.clock_s();
  ActiveLearner learner(c, space, env, policy, al);
  const TrainingResult result = learner.run();

  AcquisitionTrace trace;
  trace.collective = c;
  trace.steps.reserve(result.collected.size());
  // Costs are reconstructed per point from the history; with sequential
  // collection each iteration adds exactly one point.
  double cum = 0.0;
  std::size_t hist = 0;
  for (std::size_t i = 0; i < result.collected.size(); ++i) {
    if (hist < result.history.size()) {
      cum = result.history[hist].clock_s;
      ++hist;
    } else {
      cum = env.clock_s() - clock_before;
    }
    trace.steps.push_back({result.collected[i], cum});
  }
  return trace;
}

CollectiveModel train_on_prefix(const AcquisitionTrace& trace, std::size_t k,
                                ml::ForestParams params, std::uint64_t seed) {
  CollectiveModel model(trace.collective, params);
  model.fit(trace.prefix(k), seed);
  return model;
}

std::vector<bench::Scenario> fact_test_scenarios(const FeatureSpace& space, coll::Collective c,
                                                 double fraction, std::uint64_t seed) {
  require(fraction > 0.0 && fraction <= 1.0, "test fraction must be in (0, 1]");
  const std::vector<bench::Scenario> all = space.scenarios(c);
  util::Rng rng(seed);
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(fraction * static_cast<double>(all.size()))));
  const auto pick = rng.sample_without_replacement(all.size(), k);
  std::vector<bench::Scenario> out;
  out.reserve(k);
  for (std::size_t i : pick) {
    out.push_back(all[i]);
  }
  return out;
}

double test_set_collection_cost_s(const std::vector<bench::Scenario>& test,
                                  TuningEnvironment& env) {
  const double before = env.clock_s();
  for (const bench::Scenario& s : test) {
    for (coll::Algorithm a : coll::algorithms_for(s.collective)) {
      env.measure(bench::BenchmarkPoint{s, a});
    }
  }
  return env.clock_s() - before;
}

}  // namespace acclaim::core

// The active-learning training loop (Fig. 2(b)).
//
// Each iteration: the acquisition policy picks the next benchmark point(s),
// the environment measures them (sequentially, or in parallel through the
// topology-aware CollectionScheduler), the primary model is retrained, and
// convergence is tested on the cumulative jackknife variance — no test set
// is ever collected (§IV-C).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/acquisition.hpp"
#include "core/env.hpp"
#include "core/feature_space.hpp"
#include "core/model.hpp"
#include "core/scheduler.hpp"

namespace acclaim::core {

struct ActiveLearnerConfig {
  ml::ForestParams forest = default_forest_params();
  /// Points collected (randomly) before the first model fit.
  int seed_points = 5;
  /// Hard cap on collected points; -1 = entire candidate pool.
  int max_points = -1;
  /// Refit the primary model only after this many new points (1 = every
  /// iteration; larger values speed up long acquisition traces).
  int refit_every = 1;
  /// Variance-convergence criterion (§IV-C): an EMA of the cumulative
  /// variance must move less than abs_tol + rel_tol * reference over a
  /// `patience`-iteration window, for `patience` consecutive checks. The
  /// paper uses an absolute 1e-9 on its variance scale; the relative term
  /// makes the criterion scale-free for our log-time variance (see
  /// EXPERIMENTS.md for the calibration).
  double variance_abs_tol = 1e-9;
  double variance_rel_tol = 0.015;
  int patience = 5;
  /// Convergence cannot fire before this many points are collected (guards
  /// against spuriously calm variance in the cold-start region).
  int min_points = 60;
  /// Collect whole variance-ranked batches in parallel via the §IV-D greedy
  /// scheduler (requires an environment with topology context).
  bool parallel_collection = false;
  bool topology_aware = true;
  /// Non-P2 cadence applied in *parallel* mode (sequential mode delegates
  /// this to the acquisition policy).
  int parallel_nonp2_cadence = 5;
  /// Size of the compute thread pool used for forest fits, jackknife
  /// sweeps, and acquisition scoring. 0 leaves the global pool as it is
  /// (default: hardware concurrency, or the ACCLAIM_THREADS environment
  /// variable). Any value yields bitwise-identical models — the per-tree
  /// RNG streams are derived from `seed`, not from the schedule.
  int threads = 0;
  std::uint64_t seed = 1;
};

/// Warm-start transfer input (fleet replay, ROADMAP "fleet-scale trace
/// replay with warm-start transfer"): a trained model of the same collective
/// from a previously tuned job, plus the labeled points that trained it.
/// The learner starts from `model` instead of the random seed phase, keeps
/// `support` in every refit so the transferred knowledge survives fits on
/// the few freshly measured points, and lets a fresh measurement *override*
/// a support point at the same (scenario, algorithm) — active learning
/// patches the disagreement region instead of retraining from zero.
struct WarmStart {
  CollectiveModel model;
  std::vector<LabeledPoint> support;
  /// Convergence floor on freshly measured points (replaces
  /// ActiveLearnerConfig::min_points, which guards the cold-start regime).
  int min_new_points = 16;
  /// Convergence window for warm runs (replaces ActiveLearnerConfig::
  /// patience). A cold run's criterion waits for a from-scratch model to
  /// stabilize; a warm run only tests that fresh measurements did *not*
  /// perturb the transferred model, which an already-calm variance shows
  /// within a couple of checks.
  int patience = 2;
};

struct IterationRecord {
  int iteration = 0;
  std::size_t points_collected = 0;
  double clock_s = 0.0;                 ///< env collection clock after the iteration
  double cumulative_variance = 0.0;     ///< over all P2 candidates (§IV-C proxy)
  double cumulative_variance_ema = 0.0; ///< smoothed value the criterion tests
  /// Average slowdown at this iteration, if a monitor probe was installed
  /// (simulation-only instrumentation; production runs have no oracle).
  std::optional<double> avg_slowdown;
  int batch_size = 1;                   ///< benchmarks run this iteration
};

struct TrainingResult {
  CollectiveModel model;
  std::vector<LabeledPoint> collected;
  std::vector<IterationRecord> history;
  double train_time_s = 0.0;  ///< env clock consumed by this run
  int iterations = 0;
  bool converged = false;
  bool warm_started = false;  ///< run was seeded from a WarmStart
};

class ActiveLearner {
 public:
  /// References must outlive run().
  ActiveLearner(coll::Collective collective, const FeatureSpace& space, TuningEnvironment& env,
                AcquisitionPolicy& policy, ActiveLearnerConfig config = {});

  /// Optional oracle probe recorded into the history (e.g. average slowdown
  /// against a precollected dataset) — never influences training.
  void set_monitor(std::function<double(const CollectiveModel&)> probe);

  /// Seeds the run from a previously trained model (see WarmStart). Throws
  /// InvalidArgument if the model is untrained or for another collective.
  void set_warm_start(WarmStart warm);

  TrainingResult run();

 private:
  coll::Collective collective_;
  const FeatureSpace& space_;
  TuningEnvironment& env_;
  AcquisitionPolicy& policy_;
  ActiveLearnerConfig config_;
  std::function<double(const CollectiveModel&)> monitor_;
  std::optional<WarmStart> warm_;
};

}  // namespace acclaim::core

// The MPICH-style static default selection — the baseline the paper's
// optimized selections beat by 35-40% in the worst cases (§II-B1).
//
// Cutoffs follow MPICH's internal heuristics (MPIR_* _intra_auto): message
// size and communicator-size thresholds plus power-of-two checks. These are
// compiled-in constants, blind to the actual machine — precisely why they
// leave performance on the table.
#pragma once

#include "benchdata/point.hpp"

namespace acclaim::core {

/// The algorithm MPICH's default heuristic would pick for the scenario.
coll::Algorithm mpich_default_selection(const bench::Scenario& s);

}  // namespace acclaim::core

#include "core/evaluator.hpp"

#include "util/error.hpp"

namespace acclaim::core {

Evaluator::Evaluator(const bench::Dataset& truth) : truth_(truth) {}

double Evaluator::average_slowdown(const std::vector<bench::Scenario>& test,
                                   const Selector& select) const {
  require(!test.empty(), "average_slowdown requires at least one test scenario");
  double sum = 0.0;
  for (const bench::Scenario& s : test) {
    const double best = truth_.best_time_us(s);
    const double chosen = truth_.time_us(s, select(s));
    sum += chosen / best;
  }
  return sum / static_cast<double>(test.size());
}

double Evaluator::average_slowdown(const std::vector<bench::Scenario>& test,
                                   const CollectiveModel& model) const {
  return average_slowdown(test, [&](const bench::Scenario& s) { return model.select(s); });
}

double Evaluator::optimal_rate(const std::vector<bench::Scenario>& test,
                               const Selector& select) const {
  require(!test.empty(), "optimal_rate requires at least one test scenario");
  int hits = 0;
  for (const bench::Scenario& s : test) {
    if (select(s) == truth_.best_algorithm(s)) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace acclaim::core

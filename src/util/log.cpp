#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <iostream>

#include "util/error.hpp"

namespace acclaim::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::ErrorLevel: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

LogLevel parse_log_level(const std::string& s) {
  std::string t = s;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (t == "debug") return LogLevel::Debug;
  if (t == "info") return LogLevel::Info;
  if (t == "warn") return LogLevel::Warn;
  if (t == "error") return LogLevel::ErrorLevel;
  if (t == "off") return LogLevel::Off;
  throw InvalidArgument("unknown log level '" + s + "'");
}

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  if (level < g_level.load() || level == LogLevel::Off) {
    return;
  }
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace acclaim::util

#include "util/log.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>
#include <utility>

#include "util/error.hpp"

namespace acclaim::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};

// Sink replacement is rare (tests); emission takes the mutex only to read
// the sink pointer consistently.
std::mutex g_sink_mu;
LogSink g_sink;  // empty = default stderr sink

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::ErrorLevel: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::ErrorLevel: return "error";
    case LogLevel::Off: return "off";
  }
  return "?";
}

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

bool log_enabled(LogLevel level) {
  return level != LogLevel::Off && level >= g_level.load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
  std::string t = s;
  std::transform(t.begin(), t.end(), t.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (t == "debug") return LogLevel::Debug;
  if (t == "info") return LogLevel::Info;
  if (t == "warn") return LogLevel::Warn;
  if (t == "error") return LogLevel::ErrorLevel;
  if (t == "off") return LogLevel::Off;
  throw InvalidArgument("unknown log level '" + s + "'");
}

LogLevel parse_log_level(const std::string& s, LogLevel fallback) noexcept {
  try {
    return parse_log_level(s);
  } catch (const InvalidArgument&) {
    return fallback;
  }
}

LogSink set_log_sink(LogSink sink) {
  std::lock_guard lock(g_sink_mu);
  LogSink prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

std::string format_log_line(LogLevel level, const std::string& msg) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char stamp[96];  // roomy enough that -Wformat-truncation stays quiet
  std::snprintf(stamp, sizeof stamp, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                tm.tm_sec, static_cast<int>(ms));
  return std::string(stamp) + " [" + level_tag(level) + "] " + msg;
}

namespace detail {
void emit(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) {
    return;
  }
  LogSink sink;
  {
    std::lock_guard lock(g_sink_mu);
    sink = g_sink;
  }
  if (sink) {
    sink(level, msg);
  } else {
    std::cerr << format_log_line(level, msg) << '\n';
  }
}
}  // namespace detail

}  // namespace acclaim::util

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace acclaim::util {

std::string fixed(double v, int places) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", places, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> columns) : columns_(std::move(columns)) {
  require(!columns_.empty(), "TablePrinter requires at least one column");
}

void TablePrinter::add_row(std::vector<std::string> fields) {
  require(fields.size() == columns_.size(), "table row width does not match columns");
  rows_.push_back(std::move(fields));
}

void TablePrinter::add_row_numeric(const std::string& label, const std::vector<double>& values,
                                   int precision) {
  std::vector<std::string> fields;
  fields.reserve(values.size() + 1);
  fields.push_back(label);
  for (double v : values) {
    fields.push_back(fixed(v, precision));
  }
  add_row(std::move(fields));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = columns_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << "  " << row[i] << std::string(widths[i] - row[i].size(), ' ');
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 2;
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
}

}  // namespace acclaim::util

// Human-readable unit formatting (bytes, seconds) for report output.
#pragma once

#include <cstdint>
#include <string>

namespace acclaim::util {

/// "64", "4K", "1M" — the power-of-two byte labels used on paper axes.
std::string format_bytes(std::uint64_t bytes);

/// "13.2 us", "4.7 ms", "2.1 s", "3.4 min", "1.2 h" — picks a sensible unit.
std::string format_seconds(double seconds);

/// Parses "4K"/"1M"-style byte labels back to a count. Throws ParseError.
std::uint64_t parse_bytes(const std::string& label);

}  // namespace acclaim::util

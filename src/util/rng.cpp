#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace acclaim::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "Rng::uniform_int requires lo <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_median(double median, double sigma_log) {
  return median * std::exp(sigma_log * normal());
}

bool Rng::chance(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  require(n > 0, "Rng::index requires n > 0");
  return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream) {
  // Two dependent splitmix passes decorrelate (seed, stream) pairs; the
  // result seeds the usual splitmix->xoshiro expansion in the constructor.
  std::uint64_t x = seed;
  std::uint64_t mixed = splitmix64(x);
  x ^= stream * 0x94d049bb133111ebULL + 0x9e3779b97f4a7c15ULL;
  mixed ^= splitmix64(x);
  return Rng(mixed);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  require(k <= n, "sample_without_replacement requires k <= n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) {
    pool[i] = i;
  }
  // Partial Fisher-Yates: only the first k slots need to be finalized.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::uint64_t floor_power_of_two(std::uint64_t v) {
  require(v >= 1, "floor_power_of_two requires v >= 1");
  std::uint64_t p = 1;
  while (p * 2 <= v && p * 2 != 0) {
    p *= 2;
  }
  return p;
}

std::uint64_t ceil_power_of_two(std::uint64_t v) {
  require(v >= 1, "ceil_power_of_two requires v >= 1");
  std::uint64_t p = 1;
  while (p < v) {
    p *= 2;
  }
  return p;
}

}  // namespace acclaim::util

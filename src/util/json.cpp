#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace acclaim::util {

// ---------------------------------------------------------------- JsonObject

bool JsonObject::contains(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) {
      return true;
    }
  }
  return false;
}

Json& JsonObject::operator[](const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      return v;
    }
  }
  entries_.emplace_back(key, Json());
  return entries_.back().second;
}

const Json& JsonObject::at(const std::string& key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) {
      return v;
    }
  }
  throw NotFoundError("JSON object has no key '" + key + "'");
}

Json& JsonObject::at(const std::string& key) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      return v;
    }
  }
  throw NotFoundError("JSON object has no key '" + key + "'");
}

// ---------------------------------------------------------------- accessors

bool Json::as_bool() const {
  if (!is_bool()) {
    throw InvalidArgument("JSON value is not a bool");
  }
  return std::get<bool>(value_);
}

double Json::as_number() const {
  if (!is_number()) {
    throw InvalidArgument("JSON value is not a number");
  }
  return std::get<double>(value_);
}

std::int64_t Json::as_int() const {
  const double d = as_number();
  const auto i = static_cast<std::int64_t>(std::llround(d));
  if (std::abs(d - static_cast<double>(i)) > 1e-9) {
    throw InvalidArgument("JSON number is not integral");
  }
  return i;
}

const std::string& Json::as_string() const {
  if (!is_string()) {
    throw InvalidArgument("JSON value is not a string");
  }
  return std::get<std::string>(value_);
}

const JsonArray& Json::as_array() const {
  if (!is_array()) {
    throw InvalidArgument("JSON value is not an array");
  }
  return std::get<JsonArray>(value_);
}

JsonArray& Json::as_array() {
  if (!is_array()) {
    throw InvalidArgument("JSON value is not an array");
  }
  return std::get<JsonArray>(value_);
}

const JsonObject& Json::as_object() const {
  if (!is_object()) {
    throw InvalidArgument("JSON value is not an object");
  }
  return std::get<JsonObject>(value_);
}

JsonObject& Json::as_object() {
  if (!is_object()) {
    throw InvalidArgument("JSON value is not an object");
  }
  return std::get<JsonObject>(value_);
}

Json& Json::operator[](const std::string& key) { return as_object()[key]; }

const Json& Json::at(const std::string& key) const { return as_object().at(key); }

bool Json::contains(const std::string& key) const {
  return is_object() && as_object().contains(key);
}

void Json::push_back(Json v) { as_array().push_back(std::move(v)); }

bool Json::operator==(const Json& other) const {
  if (value_.index() != other.value_.index()) {
    return false;
  }
  if (is_null()) {
    return true;
  }
  if (is_bool()) {
    return as_bool() == other.as_bool();
  }
  if (is_number()) {
    return as_number() == other.as_number();
  }
  if (is_string()) {
    return as_string() == other.as_string();
  }
  if (is_array()) {
    const auto& a = as_array();
    const auto& b = other.as_array();
    if (a.size() != b.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) {
        return false;
      }
    }
    return true;
  }
  const auto& a = as_object();
  const auto& b = other.as_object();
  if (a.size() != b.size()) {
    return false;
  }
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first || !(ita->second == itb->second)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------- serializer

namespace {

void escape_to(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void number_to(double d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  // Recursive lambda over the variant.
  auto emit = [&](auto&& self, const Json& j, int depth) -> void {
    const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
    const std::string pad_in =
        indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
    const char* nl = indent > 0 ? "\n" : "";
    if (j.is_null()) {
      out += "null";
    } else if (j.is_bool()) {
      out += j.as_bool() ? "true" : "false";
    } else if (j.is_number()) {
      number_to(j.as_number(), out);
    } else if (j.is_string()) {
      escape_to(j.as_string(), out);
    } else if (j.is_array()) {
      const auto& a = j.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < a.size(); ++i) {
        out += pad_in;
        self(self, a[i], depth + 1);
        if (i + 1 < a.size()) {
          out += ',';
        }
        out += nl;
      }
      out += pad;
      out += ']';
    } else {
      const auto& o = j.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      out += nl;
      std::size_t i = 0;
      for (const auto& [k, v] : o) {
        out += pad_in;
        escape_to(k, out);
        out += indent > 0 ? ": " : ":";
        self(self, v, depth + 1);
        if (++i < o.size()) {
          out += ',';
        }
        out += nl;
      }
      out += pad;
      out += '}';
    }
  };
  emit(emit, *this, 0);
  return out;
}

// ------------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after JSON document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const { throw ParseError(msg, line_, col_); }

  char peek() const {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (advance() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }

  void expect_word(const char* w) {
    for (const char* p = w; *p; ++p) {
      if (pos_ >= text_.size() || advance() != *p) {
        fail(std::string("expected literal '") + w + "'");
      }
    }
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': expect_word("true"); return Json(true);
      case 'f': expect_word("false"); return Json(false);
      case 'n': expect_word("null"); return Json(nullptr);
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    JsonObject o;
    skip_ws();
    if (peek() == '}') {
      advance();
      return Json(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[key] = parse_value();
      skip_ws();
      const char c = advance();
      if (c == '}') {
        break;
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
    return Json(std::move(o));
  }

  Json parse_array() {
    expect('[');
    JsonArray a;
    skip_ws();
    if (peek() == ']') {
      advance();
      return Json(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      const char c = advance();
      if (c == ']') {
        break;
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
    return Json(std::move(a));
  }

  std::string parse_string() {
    expect('"');
    std::string s;
    while (true) {
      const char c = advance();
      if (c == '"') {
        break;
      }
      if (c == '\\') {
        const char e = advance();
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = advance();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape");
              }
            }
            // Encode the BMP code point as UTF-8.
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("invalid escape sequence");
        }
      } else {
        s += c;
      }
    }
    return s;
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      advance();
    }
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                                   text_[pos_] == '+' || text_[pos_] == '-')) {
      advance();
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t consumed = 0;
      const double d = std::stod(token, &consumed);
      if (consumed != token.size()) {
        fail("invalid number '" + token + "'");
      }
      return Json(d);
      // fail() throws ParseError. acclaim-lint: allow(hyg-catch-log)
    } catch (const std::logic_error&) {
      fail("invalid number '" + token + "'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
  std::size_t col_ = 1;
};

}  // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw IoError("cannot open JSON file '" + path + "'");
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void Json::dump_file(const std::string& path, int indent) const {
  std::ofstream out(path);
  if (!out) {
    throw IoError("cannot write JSON file '" + path + "'");
  }
  out << dump(indent) << '\n';
}

}  // namespace acclaim::util

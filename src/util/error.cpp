#include "util/error.hpp"

namespace acclaim {

ParseError::ParseError(const std::string& what, std::size_t line, std::size_t col)
    : Error(what + " (line " + std::to_string(line) + ", column " + std::to_string(col) + ")"),
      line_(line),
      col_(col) {}

void require(bool cond, const std::string& msg) {
  if (!cond) {
    throw InvalidArgument(msg);
  }
}

}  // namespace acclaim

#include "util/thread_pool.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>

#include "util/error.hpp"
#include "util/log.hpp"

namespace acclaim::util {

namespace {

/// Set for the duration of worker_loop so in_pool() (and therefore the
/// reentrancy guard in parallel_for) can identify pool threads without a
/// registry lookup.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int total = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(total - 1));
  for (int i = 0; i < total - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mu_);
    if (stop_) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

bool ThreadPool::in_pool() const noexcept { return t_current_pool == this; }

void ThreadPool::enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    // No workers: run inline so a size-1 pool still honors submit().
    {
      std::lock_guard lock(mu_);
      require(!stop_, "ThreadPool::submit after shutdown");
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    require(!stop_, "ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
    queue_peak_ = std::max<std::uint64_t>(queue_peak_, queue_.size());
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  t_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        break;  // stop_ set and the queue drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    task();
  }
  t_current_pool = nullptr;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body, std::size_t grain) {
  if (begin >= end) {
    return;
  }
  parallel_fors_.fetch_add(1, std::memory_order_relaxed);
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  // Sequential fallbacks: nested calls run inline on the current worker
  // (fanning out again could deadlock once every worker waits on a nested
  // loop), and a 1-lane pool or single-chunk range gains nothing from the
  // queue. The inline loop is the 1-thread schedule, so results match the
  // parallel path bitwise whenever body(i) only writes state owned by i.
  if (in_pool() || workers_.empty() || chunks <= 1) {
    {
      std::lock_guard lock(mu_);
      require(!stop_, "ThreadPool::parallel_for after shutdown");
    }
    inline_runs_.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = begin; i < end; ++i) {
      body(i);
    }
    return;
  }

  struct SweepState {
    std::atomic<std::size_t> next;
    std::size_t end = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t)>* body = nullptr;
    std::atomic<bool> cancelled{false};
    std::mutex emu;
    std::exception_ptr eptr;
  };
  auto state = std::make_shared<SweepState>();
  state->next.store(begin, std::memory_order_relaxed);
  state->end = end;
  state->grain = grain;
  state->body = &body;

  const auto run_chunks = [](SweepState& st) {
    while (!st.cancelled.load(std::memory_order_relaxed)) {
      const std::size_t lo = st.next.fetch_add(st.grain, std::memory_order_relaxed);
      if (lo >= st.end) {
        return;
      }
      const std::size_t hi = std::min(st.end, lo + st.grain);
      try {
        for (std::size_t i = lo; i < hi; ++i) {
          (*st.body)(i);
        }
        // Stores the first exception; parallel_for rethrows it on the
        // calling thread after the loop quiesces. acclaim-lint: allow(hyg-catch-log)
      } catch (...) {
        std::lock_guard lock(st.emu);
        if (!st.eptr) {
          st.eptr = std::current_exception();
        }
        st.cancelled.store(true, std::memory_order_relaxed);
      }
    }
  };

  // One helper per worker, capped at chunks-1 (the caller takes a lane).
  const std::size_t helpers = std::min(workers_.size(), chunks - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) {
    pending.push_back(submit([state, run_chunks] { run_chunks(*state); }));
  }
  run_chunks(*state);
  for (std::future<void>& f : pending) {
    f.get();  // body exceptions land in state->eptr, never here
  }
  if (state->eptr) {
    std::rethrow_exception(state->eptr);
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats st;
  st.threads = size();
  st.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  st.parallel_fors = parallel_fors_.load(std::memory_order_relaxed);
  st.inline_runs = inline_runs_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    st.queue_peak = queue_peak_;
  }
  return st;
}

int hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
int g_requested = 0;  ///< 0 = env / hardware default

/// Cap on ACCLAIM_THREADS: far above any real machine, low enough that a
/// typo ("16000" for "16") cannot make the pool spawn thousands of workers.
constexpr long kMaxEnvThreads = 1024;

int default_threads() {
  if (const char* env = std::getenv("ACCLAIM_THREADS"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(env, &end, 10);
    const bool numeric = end != env && *end == '\0' && errno != ERANGE;
    if (numeric && n >= 1 && n <= kMaxEnvThreads) {
      return static_cast<int>(n);
    }
    // Garbage ("abc"), trailing junk ("4x"), non-positive, or absurd values
    // must not silently become some other thread count: warn and take the
    // hardware default instead.
    AC_LOG_WARN() << "ignoring ACCLAIM_THREADS='" << env << "': expected an integer in [1, "
                  << kMaxEnvThreads << "]; using hardware default ("
                  << hardware_threads() << ")";
  }
  return hardware_threads();
}

int resolved_threads() { return g_requested > 0 ? g_requested : default_threads(); }

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard lock(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(resolved_threads());
  }
  return *g_pool;
}

void set_global_threads(int n) {
  std::lock_guard lock(g_pool_mu);
  g_requested = std::max(n, 0);
  if (g_pool && g_pool->size() != resolved_threads()) {
    g_pool.reset();  // joins workers; recreated lazily at the new size
  }
}

int global_threads() {
  std::lock_guard lock(g_pool_mu);
  return g_pool ? g_pool->size() : resolved_threads();
}

}  // namespace acclaim::util

// Small statistics toolkit used by the measurement and ML layers.
#pragma once

#include <cstddef>
#include <vector>

namespace acclaim::util {

/// Welford online accumulator for mean/variance/min/max.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for empty input.
double mean(const std::vector<double>& v);

/// Sample variance (n-1 denominator); 0 for fewer than 2 values.
double variance(const std::vector<double>& v);

double stddev(const std::vector<double>& v);

/// Geometric mean; requires all values > 0. 0 for empty input.
double geomean(const std::vector<double>& v);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double percentile(std::vector<double> v, double p);

double median(std::vector<double> v);

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series has zero variance.
double pearson(const std::vector<double>& a, const std::vector<double>& b);

/// Spearman rank correlation (Pearson on average ranks; ties averaged).
/// Robust to monotone-but-nonlinear co-trends.
double spearman(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace acclaim::util

// Aligned plain-text table printing for bench harness output.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace acclaim::util {

/// Collects rows and prints them with column alignment, matching the
/// "rows/series the paper reports" style used by the bench binaries.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  void add_row(std::vector<std::string> fields);

  /// Convenience for numeric rows; doubles are formatted with the given
  /// precision (default 4 significant decimal digits).
  void add_row_numeric(const std::string& label, const std::vector<double>& values,
                       int precision = 4);

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed decimal places.
std::string fixed(double v, int places);

}  // namespace acclaim::util

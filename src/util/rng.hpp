// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components in the reproduction (network jitter, measurement
// noise, bootstrap sampling, random acquisition baselines) draw from Rng so
// experiments are reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64, the standard pairing recommended by the
// xoshiro authors.
#pragma once

#include <cstdint>
#include <vector>

namespace acclaim::util {

/// xoshiro256** PRNG. Cheap to copy; `split()` derives an independent stream
/// so parallel components never share a sequence.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state trivially
  /// copyable and streams reproducible after split()).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal such that the *median* of the distribution is `median` and
  /// the underlying normal has standard deviation `sigma_log`.
  double lognormal_median(double median, double sigma_log);

  /// Bernoulli trial.
  bool chance(double p);

  /// Uniformly pick an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Derive an independent generator (jump-free splitting via splitmix).
  Rng split();

  /// Counter-based stream derivation: an independent generator for stream
  /// index `stream` under `seed`. Unlike split(), which advances the parent
  /// and therefore depends on call order, stream(seed, i) is a pure function
  /// of its arguments — the i-th tree/candidate of a parallel sweep sees the
  /// same sequence no matter which thread reaches it first.
  static Rng stream(std::uint64_t seed, std::uint64_t stream);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

/// True if v is a power of two (v > 0).
constexpr bool is_power_of_two(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Largest power of two <= v. Requires v >= 1.
std::uint64_t floor_power_of_two(std::uint64_t v);

/// Smallest power of two >= v. Requires v >= 1.
std::uint64_t ceil_power_of_two(std::uint64_t v);

}  // namespace acclaim::util

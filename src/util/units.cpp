#include "util/units.hpp"

#include <cctype>
#include <cstdio>

#include "util/error.hpp"

namespace acclaim::util {

std::string format_bytes(std::uint64_t bytes) {
  constexpr std::uint64_t kKiB = 1024;
  constexpr std::uint64_t kMiB = 1024 * 1024;
  constexpr std::uint64_t kGiB = 1024ULL * 1024 * 1024;
  char buf[32];
  if (bytes >= kGiB && bytes % kGiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluG", static_cast<unsigned long long>(bytes / kGiB));
  } else if (bytes >= kMiB && bytes % kMiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluM", static_cast<unsigned long long>(bytes / kMiB));
  } else if (bytes >= kKiB && bytes % kKiB == 0) {
    std::snprintf(buf, sizeof buf, "%lluK", static_cast<unsigned long long>(bytes / kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[48];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof buf, "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof buf, "%.1f s", seconds);
  } else if (seconds < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof buf, "%.1f min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f h", seconds / 3600.0);
  }
  return buf;
}

std::uint64_t parse_bytes(const std::string& label) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  if (label.empty()) {
    throw ParseError("empty byte label", 1, 1);
  }
  std::size_t i = 0;
  std::uint64_t value = 0;
  bool any = false;
  while (i < label.size() && std::isdigit(static_cast<unsigned char>(label[i]))) {
    const auto digit = static_cast<std::uint64_t>(label[i] - '0');
    // Accumulate-overflow guard: a label like "99999999999999999999" must
    // fail loudly, not wrap around to an arbitrary small size.
    if (value > (kMax - digit) / 10) {
      throw ParseError("byte label overflows 64 bits: '" + label + "'", 1, i + 1);
    }
    value = value * 10 + digit;
    ++i;
    any = true;
  }
  if (!any) {
    throw ParseError("byte label must start with digits: '" + label + "'", 1, 1);
  }
  if (i == label.size()) {
    return value;
  }
  const char suffix = static_cast<char>(std::toupper(static_cast<unsigned char>(label[i])));
  std::uint64_t mult = 0;
  switch (suffix) {
    case 'K': mult = 1024ULL; break;
    case 'M': mult = 1024ULL * 1024; break;
    case 'G': mult = 1024ULL * 1024 * 1024; break;
    case 'B': mult = 1; break;
    default: throw ParseError("invalid byte suffix in '" + label + "'", 1, i + 1);
  }
  ++i;
  // An optional trailing 'B' is allowed after a scale suffix ("64KB"), but a
  // bare 'B' takes nothing after it: "1BB" (and any longer tail) is malformed.
  if (i < label.size()) {
    const char tail = static_cast<char>(std::toupper(static_cast<unsigned char>(label[i])));
    if (mult == 1 || tail != 'B' || i + 1 != label.size()) {
      throw ParseError("invalid byte label '" + label + "'", 1, i + 1);
    }
    ++i;
  }
  // Multiply-overflow guard for huge scaled labels ("1000000000000G").
  if (mult > 1 && value > kMax / mult) {
    throw ParseError("byte label overflows 64 bits: '" + label + "'", 1, 1);
  }
  return value * mult;
}

}  // namespace acclaim::util

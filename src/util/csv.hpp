// CSV writing/reading for dataset persistence and figure-series output.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace acclaim::util {

/// Streams rows to a CSV file. Fields containing commas/quotes/newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) the file; throws IoError on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row; must be called before any data row.
  void header(const std::vector<std::string>& columns);

  /// Writes one data row; size must match the header if one was written.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats doubles with %.9g.
  void row_numeric(const std::vector<double>& fields);

  const std::string& path() const noexcept { return path_; }

 private:
  void write_fields(const std::vector<std::string>& fields);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_ = 0;
  bool wrote_header_ = false;
};

/// Fully parsed CSV table (small files only: datasets, figure output).
struct CsvTable {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  /// Index of the named column; throws NotFoundError if absent.
  std::size_t column_index(const std::string& name) const;
};

/// Reads a CSV file written by CsvWriter (first row = header).
CsvTable read_csv(const std::string& path);

/// Formats a double like CsvWriter::row_numeric does.
std::string format_double(double v);

}  // namespace acclaim::util

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace acclaim::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double mean(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) {
    return 0.0;
  }
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) {
    s += (x - m) * (x - m);
  }
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double geomean(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double x : v) {
    require(x > 0.0, "geomean requires strictly positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(v.size()));
}

double percentile(std::vector<double> v, double p) {
  require(!v.empty(), "percentile requires a non-empty vector");
  require(p >= 0.0 && p <= 100.0, "percentile requires p in [0, 100]");
  std::sort(v.begin(), v.end());
  if (v.size() == 1) {
    return v[0];
  }
  const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::vector<double> v) { return percentile(std::move(v), 50.0); }

namespace {
std::vector<double> average_ranks(const std::vector<double>& v) {
  std::vector<std::size_t> order(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
  std::vector<double> ranks(v.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() && v[order[j + 1]] == v[order[i]]) {
      ++j;
    }
    const double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) {
      ranks[order[k]] = avg;
    }
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "spearman requires equal-length series");
  if (a.size() < 2) {
    return 0.0;
  }
  return pearson(average_ranks(a), average_ranks(b));
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  require(a.size() == b.size(), "pearson requires equal-length series");
  if (a.size() < 2) {
    return 0.0;
  }
  const double ma = mean(a);
  const double mb = mean(b);
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += (a[i] - ma) * (b[i] - mb);
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  // Exact zero variance means correlation is undefined; a tolerance would
  // misclassify near-constant series. acclaim-lint: allow(hyg-float-eq)
  if (da == 0.0 || db == 0.0) {
    return 0.0;
  }
  return num / std::sqrt(da * db);
}

}  // namespace acclaim::util

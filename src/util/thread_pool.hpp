// Fixed-size thread pool for the autotuner's compute hot loops.
//
// Design constraints, in order:
//  * deterministic parallelism — parallel_for hands out index chunks from a
//    shared counter, but every index writes only its own result slot, so the
//    output of a parallel sweep is bitwise-identical for any thread count
//    (the seeding scheme that makes the *randomized* loops deterministic
//    lives with the callers: one counter-indexed Rng stream per tree, see
//    Rng::stream());
//  * no work stealing, no growth — `threads` is the total concurrency
//    including the calling thread, so a pool of size 1 has zero workers and
//    runs everything inline (a sequential run is the 1-thread parallel run);
//  * exceptions propagate — the first exception a parallel_for body throws
//    cancels the remaining chunks and is rethrown on the calling thread;
//    submit() surfaces task exceptions through the returned future;
//  * reentrancy-safe — parallel_for called from inside a pool task runs the
//    nested loop inline on that worker (no nested fan-out, no deadlock);
//  * clean shutdown — shutdown() drains queued tasks, joins all workers, and
//    is idempotent; the destructor calls it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace acclaim::util {

/// Monotonic usage counters, snapshotted by ThreadPool::stats(). The
/// telemetry registry publishes these as gauges (telemetry cannot be linked
/// from util without a layering cycle, so the pool only counts).
struct ThreadPoolStats {
  int threads = 1;                      ///< total concurrency (workers + caller)
  std::uint64_t tasks_executed = 0;     ///< submitted tasks run (queued or inline)
  std::uint64_t parallel_fors = 0;      ///< parallel_for invocations (incl. inline)
  std::uint64_t inline_runs = 0;        ///< parallel_fors that ran sequentially
  std::uint64_t queue_peak = 0;         ///< high-water mark of the task queue
};

class ThreadPool {
 public:
  /// `threads` is the total concurrency; values < 1 are clamped to 1.
  /// A pool of size n spawns n-1 workers (the caller is the n-th lane).
  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (workers + the calling thread).
  int size() const noexcept { return static_cast<int>(workers_.size()) + 1; }

  /// Drains the queue, joins all workers. Idempotent; safe to call twice
  /// and again from the destructor. submit()/parallel_for() after shutdown
  /// throw InvalidArgument.
  void shutdown();

  /// Schedules `fn` on a worker (or runs it inline when the pool has no
  /// workers) and returns a future for its result. Task exceptions surface
  /// through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Runs body(i) for every i in [begin, end), splitting the range into
  /// `grain`-sized chunks shared between the workers and the calling thread.
  /// Chunk-to-thread assignment is nondeterministic; callers must make
  /// body(i) write only to state owned by index i. Rethrows the first body
  /// exception after the loop quiesces. Nested calls (from a pool worker)
  /// and pools of size 1 run the loop inline.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body, std::size_t grain = 1);

  /// True when the calling thread is one of this pool's workers.
  bool in_pool() const noexcept;

  ThreadPoolStats stats() const;

 private:
  void enqueue(std::function<void()> task);
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  std::uint64_t queue_peak_ = 0;  ///< guarded by mu_
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::atomic<std::uint64_t> parallel_fors_{0};
  std::atomic<std::uint64_t> inline_runs_{0};
};

/// std::thread::hardware_concurrency with a floor of 1.
int hardware_threads() noexcept;

/// The process-wide pool every parallel hot loop (forest fit/predict,
/// jackknife sweeps, acquisition scoring) runs on. Created on first use
/// with set_global_threads()'s last value, else the ACCLAIM_THREADS
/// environment variable, else hardware_threads().
ThreadPool& global_pool();

/// Resizes the global pool by tearing it down (joining its workers) and
/// recreating it lazily; n <= 0 restores the default (env / hardware).
/// Not safe to call while another thread is using global_pool() — call it
/// between parallel regions (CLI startup, bench setup, test SetUp).
void set_global_threads(int n);

/// The size the global pool has (or would be created with).
int global_threads();

}  // namespace acclaim::util

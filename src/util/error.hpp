// Error types shared across the ACCLAiM libraries.
//
// We follow the C++ Core Guidelines (E.14): throw purpose-designed,
// exception-hierarchy types rather than raw std::runtime_error so callers
// can discriminate failure classes.
#pragma once

#include <stdexcept>
#include <string>

namespace acclaim {

/// Base class for all ACCLAiM errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated an API precondition (bad argument, bad state).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Parsing of an external artifact (JSON config, dataset file) failed.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, std::size_t line, std::size_t col);
  std::size_t line() const noexcept { return line_; }
  std::size_t column() const noexcept { return col_; }

 private:
  std::size_t line_;
  std::size_t col_;
};

/// I/O failure (missing file, unwritable path).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// A lookup into a dataset or registry found no entry.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// Throw InvalidArgument if `cond` is false. `msg` should name the violated
/// precondition from the caller's perspective.
void require(bool cond, const std::string& msg);

/// Literal-message overload: avoids constructing a std::string on the
/// passing path (require() sits on simulator hot paths).
inline void require(bool cond, const char* msg) {
  if (!cond) {
    throw InvalidArgument(msg);
  }
}

}  // namespace acclaim
